// Table III — Memory configuration.
//
// Prints every DRAM preset's channel/width/rate figures with the derived
// peak bandwidth (which must reproduce the paper's Table III numbers), then
// *measures* streaming bandwidth through the full MemCtrl + DramTiming
// stack with a traffic generator, reporting achieved efficiency.
#include <algorithm>
#include <cstdio>

#include "mem/dram_config.hh"
#include "mem/mem_ctrl.hh"
#include "mem/traffic_gen.hh"

#include "bench_util.hh"
#include "sim/simulator.hh"

using namespace accesys;

namespace {

double measured_stream_gbps(const mem::DramParams& dram)
{
    Simulator sim;
    mem::MemCtrlParams mp;
    mp.dram = dram;
    mem::MemCtrl ctrl(sim, "mem", mp, mem::AddrRange(0, 256 * kMiB));

    mem::TrafficGenParams tp;
    tp.total_bytes = 8 * kMiB;
    tp.working_set = 64 * kMiB;
    // Stream at the device's access granularity (one full burst per
    // request) with enough outstanding requests to cover the latency.
    tp.req_bytes = std::max<std::uint32_t>(64, dram.burst_bytes());
    tp.window = 64;
    mem::TrafficGen gen(sim, "gen", tp);
    gen.port().bind(ctrl.port());

    sim.startup();
    gen.start([&sim] { sim.request_exit("done"); });
    sim.run();
    return gen.achieved_gbps();
}

} // namespace

int main(int argc, char** argv)
{
    benchutil::install_wall_watchdog(argc, argv);
    std::printf("Table III — memory configuration (presets + measured)\n\n");
    std::printf("%-10s %8s %10s %12s %10s %12s %10s\n", "Component",
                "Channel", "Width", "Peak GB/s", "MT/s", "Meas. GB/s",
                "Effic.");

    for (const auto& name : mem::dram_preset_names()) {
        const auto p = mem::dram_params_by_name(name);
        const double meas = measured_stream_gbps(p);
        std::printf("%-10s %8u %10u %12.1f %10u %12.2f %9.0f%%\n",
                    p.name.c_str(), p.channels, p.data_width_bits,
                    p.peak_gbps(), p.data_rate_mts, meas,
                    meas / p.peak_gbps() * 100.0);
    }

    std::printf("\npaper Table III peak figures: DDR3 12.8, DDR4 19.2, "
                "DDR5 25.6, HBM2 64, GDDR6 32 GB/s.\n");
    return 0;
}
