// Fig. 7 — Transformer (ViT) performance across memory locations and
// interconnects.
//
// Four system configurations, as in §V-C:
//   PCIe-2GB  : host DDR4,  2 GB/s PCIe, 256 B packets
//   PCIe-8GB  : host DDR4,  8 GB/s PCIe, 256 B packets
//   PCIe-64GB : host HBM2, 64 GB/s PCIe, 256 B packets
//   DevMem    : device-side HBM2, 64 B packets
// Reported as speedup over PCIe-2GB. Expected: PCIe-64GB reaches ~2.5-3.4x;
// DevMem lands slightly *below* PCIe-64GB because Non-GEMM work suffers the
// NUMA penalty of device memory.
#include "bench_util.hh"

using namespace accesys;

namespace {

struct ConfigPoint {
    const char* label;
    core::Placement place;
    core::SystemConfig cfg;
};

std::vector<ConfigPoint> fig7_configs()
{
    std::vector<ConfigPoint> pts;

    core::SystemConfig pcie2 = core::SystemConfig::paper_default();
    pcie2.set_host_dram("DDR4");
    pcie2.set_pcie_target_gbps(2.0, 4);
    pcie2.set_packet_size(256);
    pts.push_back({"PCIe-2GB", core::Placement::host, pcie2});

    core::SystemConfig pcie8 = core::SystemConfig::paper_default();
    pcie8.set_host_dram("DDR4");
    pcie8.set_pcie_target_gbps(8.0, 8);
    pcie8.set_packet_size(256);
    pts.push_back({"PCIe-8GB", core::Placement::host, pcie8});

    core::SystemConfig pcie64 = core::SystemConfig::paper_default();
    pcie64.set_host_dram("HBM2");
    pcie64.set_pcie_target_gbps(64.0, 16);
    pcie64.set_packet_size(256);
    pts.push_back({"PCIe-64GB", core::Placement::host, pcie64});

    core::SystemConfig devmem = core::SystemConfig::paper_default();
    devmem.set_devmem("HBM2");
    devmem.set_packet_size(64);
    // The DevMem system keeps a fast link for control and CPU NUMA traffic
    // (data transfers bypass PCIe entirely via the device-side memory).
    devmem.set_pcie_target_gbps(64.0, 16);
    pts.push_back({"DevMem", core::Placement::devmem, devmem});

    return pts;
}

} // namespace

int main(int argc, char** argv)
{
    benchutil::install_wall_watchdog(argc, argv);
    const bool quick = benchutil::quick_mode(argc, argv);
    benchutil::header("bench_fig7_transformer", "paper Fig. 7",
                      "ViT inference across PCIe-2GB / 8GB / 64GB / DevMem");

    std::vector<workload::VitConfig> models = {workload::VitConfig::base(),
                                               workload::VitConfig::large(),
                                               workload::VitConfig::huge()};
    if (quick) {
        models = {workload::VitConfig::base()};
    }

    auto configs = fig7_configs();

    std::printf("%-10s", "model");
    for (const auto& c : configs) {
        std::printf(" %12s", c.label);
    }
    std::printf("   (speedup vs PCIe-2GB; exec ms in parens)\n");

    for (const auto& model : models) {
        std::printf("%-10s", model.name.c_str());
        double base_ms = -1.0;
        for (const auto& c : configs) {
            core::System sys(c.cfg);
            benchutil::WatchScope watch(sys);
            core::Runner runner(sys);
            const auto res = runner.run_vit(model, c.place);
            if (base_ms < 0) {
                base_ms = res.ms();
            }
            std::printf(" %7.2fx(%0.0f)", base_ms / res.ms(), res.ms());
        }
        std::printf("\n");
    }

    std::printf("\npaper: PCIe-64GB 2.5-3.4x over PCIe-2GB; DevMem slightly "
                "below PCIe-64GB.\n");
    return 0;
}
