// Table II — System configuration.
//
// Prints the default configuration and asserts that it matches the paper's
// Table II values, so drift in defaults is caught mechanically.
#include <cstdio>

#include "core/system.hh"
#include "sim/error.hh"

#include "bench_util.hh"

using namespace accesys;

int main(int argc, char** argv)
{
    benchutil::install_wall_watchdog(argc, argv);
    const core::SystemConfig cfg = core::SystemConfig::paper_default();

    std::printf("Table II — system configuration (paper defaults)\n\n");
    std::printf("%-22s %s\n", "Component", "Specification");
    std::printf("%-22s ARM-class, %.0f GHz\n", "CPU", cfg.cpu.freq_ghz);
    std::printf("%-22s %llu kB\n", "Data Cache",
                static_cast<unsigned long long>(cfg.l1d.size_bytes / kKiB));
    std::printf("%-22s %llu kB (modelled as config only)\n",
                "Instruction Cache", 32ULL);
    std::printf("%-22s %llu MB\n", "Last Level Cache",
                static_cast<unsigned long long>(cfg.llc.size_bytes / kMiB));
    std::printf("%-22s %llu kB\n", "IOCache",
                static_cast<unsigned long long>(cfg.iocache.size_bytes /
                                                kKiB));
    std::printf("%-22s %s, %llu GB\n", "Memory",
                cfg.host_mem.dram.name.c_str(),
                static_cast<unsigned long long>(cfg.host_dram_bytes / kGiB));
    std::printf("%-22s %s, %.0f Gb/s per lane, %u lanes (%.2f GB/s eff.)\n",
                "PCIe Link", to_string(cfg.pcie.gen), cfg.pcie.lane_gbps,
                cfg.pcie.lanes, cfg.pcie.effective_gbps());
    std::printf("%-22s %.0f ns latency\n", "PCIe RootComplex",
                cfg.rc.latency_ns);
    std::printf("%-22s %.0f ns latency\n", "PCIe Switch",
                cfg.pcie_switch.latency_ns);

    // Mechanical checks against the paper's numbers.
    ensure(cfg.cpu.freq_ghz == 1.0, "CPU must be 1 GHz");
    ensure(cfg.l1d.size_bytes == 64 * kKiB, "D$ must be 64 kB");
    ensure(cfg.llc.size_bytes == 2 * kMiB, "LLC must be 2 MB");
    ensure(cfg.iocache.size_bytes == 32 * kKiB, "IOCache must be 32 kB");
    ensure(cfg.host_mem.dram.name == "DDR3-1600", "memory must be DDR3-1600");
    ensure(cfg.pcie.lanes == 4 && cfg.pcie.lane_gbps == 4.0,
           "PCIe must be 4 lanes at 4 Gb/s");
    ensure(cfg.rc.latency_ns == 150.0, "RC latency must be 150 ns");
    ensure(cfg.pcie_switch.latency_ns == 50.0,
           "switch latency must be 50 ns");

    std::printf("\nall Table II values verified against "
                "SystemConfig::paper_default().\n");
    return 0;
}
