// Fig. 8 — GEMM vs Non-GEMM phase split of the Transformer workload.
//
// Same four configurations as Fig. 7, but runtime is split into the GEMM
// (offload) and Non-GEMM (CPU vector op) phases. Expected: DevMem has the
// best GEMM phase (highest local bandwidth) but by far the worst Non-GEMM
// phase — the CPU reaches device memory across PCIe (NUMA), costing up to
// several hundred percent versus host-memory configurations.
#include "bench_util.hh"

using namespace accesys;

int main(int argc, char** argv)
{
    benchutil::install_wall_watchdog(argc, argv);
    const bool quick = benchutil::quick_mode(argc, argv);
    benchutil::header("bench_fig8_gemm_nongemm", "paper Fig. 8",
                      "ViT phase split: GEMM vs Non-GEMM per configuration");

    std::vector<workload::VitConfig> models = {workload::VitConfig::base(),
                                               workload::VitConfig::large(),
                                               workload::VitConfig::huge()};
    if (quick) {
        models = {workload::VitConfig::base()};
    }

    struct Point {
        const char* label;
        core::Placement place;
        double pcie_gbps;
        const char* mem;
        std::uint32_t pkt;
    };
    const std::vector<Point> points = {
        {"PCIe-2GB", core::Placement::host, 2.0, "DDR4", 256},
        {"PCIe-8GB", core::Placement::host, 8.0, "DDR4", 256},
        {"PCIe-64GB", core::Placement::host, 64.0, "HBM2", 256},
        {"DevMem", core::Placement::devmem, 0.0, "HBM2", 64},
    };

    for (const auto& model : models) {
        std::printf("\n%s (times in ms)\n", model.name.c_str());
        std::printf("%-10s %10s %10s %10s %10s\n", "config", "total", "gemm",
                    "nongemm", "other");
        double host_nongemm = -1.0;
        double devmem_nongemm = -1.0;
        for (const auto& p : points) {
            core::SystemConfig cfg = core::SystemConfig::paper_default();
            cfg.set_packet_size(p.pkt);
            if (p.place == core::Placement::host) {
                cfg.set_host_dram(p.mem);
                cfg.set_pcie_target_gbps(p.pcie_gbps);
            } else {
                cfg.set_devmem(p.mem);
                // Control/NUMA link stays fast; data bypasses PCIe.
                cfg.set_pcie_target_gbps(64.0, 16);
            }
            core::System sys(cfg);
            benchutil::WatchScope watch(sys);
            core::Runner runner(sys);
            const auto res = runner.run_vit(model, p.place);
            const double ng = ticks_to_ms(res.nongemm_ticks);
            if (p.place == core::Placement::host && host_nongemm < 0) {
                host_nongemm = ng;
            }
            if (p.place == core::Placement::devmem) {
                devmem_nongemm = ng;
            }
            std::printf("%-10s %10.1f %10.1f %10.1f %10.1f\n", p.label,
                        res.ms(), ticks_to_ms(res.gemm_ticks), ng,
                        ticks_to_ms(res.other_ticks()));
        }
        std::printf("DevMem Non-GEMM overhead vs PCIe configs: +%.0f%% "
                    "(paper: up to +500%%)\n",
                    (devmem_nongemm / host_nongemm - 1.0) * 100.0);
    }
    return 0;
}
