// Micro-benchmarks (google-benchmark) for the simulation substrates:
// event-queue throughput, cache lookups, DRAM timing, TLB, PCIe link
// serialization and the systolic-array functional kernel. These guard the
// simulator's own performance, which bounds how large a sweep the figure
// benches can afford.
#include <benchmark/benchmark.h>

#include "accel/systolic_array.hh"
#include "cache/cache.hh"
#include "mem/dram_timing.hh"
#include "mem/mem_ctrl.hh"
#include "mem/packet.hh"
#include "mem/traffic_gen.hh"
#include "mem/xbar.hh"
#include "pcie/link.hh"
#include "pcie/tlp.hh"
#include "sim/simulator.hh"
#include "smmu/tlb.hh"

using namespace accesys;

namespace {

void bm_event_queue(benchmark::State& state)
{
    EventQueue q;
    const int fanout = static_cast<int>(state.range(0));
    std::vector<std::unique_ptr<Event>> events;
    std::uint64_t fired = 0;
    for (int i = 0; i < fanout; ++i) {
        events.push_back(std::make_unique<Event>(
            "e" + std::to_string(i), [&fired] { ++fired; }));
    }
    for (auto _ : state) {
        for (int i = 0; i < fanout; ++i) {
            q.schedule(*events[i], q.now() + 1 + static_cast<Tick>(i % 7));
        }
        while (q.step()) {
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(fired));
}
BENCHMARK(bm_event_queue)->Arg(16)->Arg(256)->Arg(4096);

void bm_packet_alloc(benchmark::State& state)
{
    // Pooled transaction-object churn: the per-hop make/route/response/
    // recycle pattern of the fabric. Steady state does zero heap work.
    std::uint64_t i = 0;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        auto pkt = mem::packet_pool().make_read(0x1000 + (i % 4096) * 64, 64);
        pkt->push_route(1);
        pkt->push_route(3);
        pkt->make_response();
        sink += pkt->pop_route();
        auto tlp = pcie::tlp_pool().make_mem_write(0x2000 + (i % 1024) * 8,
                                                   8, 1);
        sink += tlp->length;
        ++i;
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(static_cast<std::int64_t>(2 * state.iterations()));
}
BENCHMARK(bm_packet_alloc);

void bm_xbar_forward(benchmark::State& state)
{
    // Steady-state timing forwarding: TrafficGen -> Xbar -> SimpleMem.
    for (auto _ : state) {
        Simulator sim;
        mem::Xbar xbar(sim, "xbar", mem::XbarParams{});
        mem::SimpleMemParams smp;
        const mem::AddrRange range(0, 64 * kMiB);
        mem::SimpleMem memory(sim, "mem", smp, range);
        mem::TrafficGenParams tp;
        tp.total_bytes = 4 * kMiB;
        tp.req_bytes = 64;
        tp.window = 32;
        mem::TrafficGen gen(sim, "gen", tp);
        gen.port().bind(xbar.add_upstream("cpu"));
        xbar.add_downstream("mem", range).bind(memory.port());
        sim.startup();
        gen.start([&sim] { sim.request_exit("done"); });
        benchmark::DoNotOptimize(sim.run().events);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            (4 * kMiB / 64));
}
BENCHMARK(bm_xbar_forward);

void bm_dram_stream(benchmark::State& state)
{
    mem::DramTiming dram(mem::ddr4_2400());
    Tick t = 0;
    Addr addr = 0;
    for (auto _ : state) {
        const auto acc = dram.access(addr, false, t);
        t = acc.bus_busy_until;
        addr += 64;
        benchmark::DoNotOptimize(acc.data_ready);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_dram_stream);

void bm_tlb_lookup(benchmark::State& state)
{
    smmu::Tlb tlb(1024, 4);
    for (std::uint64_t vpn = 0; vpn < 1024; ++vpn) {
        tlb.insert(vpn, vpn + 100);
    }
    std::uint64_t vpn = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.lookup(vpn % 1024));
        ++vpn;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_tlb_lookup);

void bm_systolic_tile(benchmark::State& state)
{
    mem::BackingStore store;
    const std::uint32_t k = static_cast<std::uint32_t>(state.range(0));
    std::vector<std::int8_t> data(16 * k, 3);
    store.write(0x1000, data.data(), data.size());
    store.write(0x100000, data.data(), data.size());
    for (auto _ : state) {
        accel::SystolicArray::compute_strip(store, 0x1000, 0x100000,
                                            0x200000, 16, 16, k, 16);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            16 * 16 * k);
}
BENCHMARK(bm_systolic_tile)->Arg(64)->Arg(256)->Arg(1024);

void bm_memctrl_traffic(benchmark::State& state)
{
    for (auto _ : state) {
        Simulator sim;
        mem::MemCtrlParams mp;
        mp.dram = mem::ddr4_2400();
        mem::MemCtrl ctrl(sim, "mem", mp, mem::AddrRange(0, 64 * kMiB));
        mem::TrafficGenParams tp;
        tp.total_bytes = 256 * kKiB;
        tp.req_bytes = 64;
        mem::TrafficGen gen(sim, "gen", tp);
        gen.port().bind(ctrl.port());
        sim.startup();
        gen.start([&sim] { sim.request_exit("done"); });
        sim.run();
        benchmark::DoNotOptimize(gen.achieved_gbps());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            (256 * kKiB / 64));
}
BENCHMARK(bm_memctrl_traffic);

void bm_pcie_serialize(benchmark::State& state)
{
    pcie::LinkParams lp;
    lp.lanes = 16;
    lp.lane_gbps = 16;
    std::uint64_t bytes = 64;
    for (auto _ : state) {
        benchmark::DoNotOptimize(lp.serialize_ticks(bytes));
        bytes = (bytes * 7 + 3) % 4096 + 1;
    }
}
BENCHMARK(bm_pcie_serialize);

} // namespace

BENCHMARK_MAIN();
