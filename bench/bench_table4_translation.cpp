// Table IV — Address-translation behaviour across matrix sizes.
//
// For GEMM sizes 64..2048, reports the SMMU metrics the paper tabulates:
// memory footprint in pages, translation count and mean latency, page-table
// walk count and mean latency, uTLB lookups/misses, and the translation
// overhead as a fraction of execution time. Expected shape: overhead is
// elevated for tiny matrices (fixed costs), reaches its minimum near 1024,
// and spikes at 2048 when the working set exceeds the main TLB (PTW storm).
#include "bench_util.hh"

using namespace accesys;

int main(int argc, char** argv)
{
    benchutil::install_wall_watchdog(argc, argv);
    const bool quick = benchutil::quick_mode(argc, argv);
    benchutil::header("bench_table4_translation", "paper Table IV",
                      "GEMM size sweep; SMMU translation statistics");

    std::vector<std::uint32_t> sizes = {64, 128, 256, 512, 1024, 2048};
    if (quick) {
        sizes = {64, 256, 1024};
    }

    std::printf("%-22s", "Metric");
    for (const auto s : sizes) {
        std::printf(" %14u", s);
    }
    std::printf("\n");

    struct Row {
        double footprint_pages, translations, trans_mean_cyc, ptw,
            ptw_mean_cyc, utlb_lookups, utlb_misses, overhead_pct;
    };
    std::vector<Row> rows;

    for (const auto size : sizes) {
        const workload::GemmSpec spec{size, size, size, 7};

        // Reference run with translation disabled (devices issue physical
        // addresses): the overhead column is the wall-time delta, i.e. the
        // translation cost that actually lands on the critical path.
        double ideal_ms = 0.0;
        {
            core::SystemConfig cfg = core::SystemConfig::paper_default();
            cfg.set_pcie_target_gbps(8.0);
            cfg.smmu.enabled = false;
            core::System sys(cfg);
            benchutil::WatchScope watch(sys);
            core::Runner runner(sys);
            ideal_ms = runner.run_gemm(spec, core::Placement::host).ms();
        }

        core::SystemConfig cfg = core::SystemConfig::paper_default();
        cfg.set_pcie_target_gbps(8.0);
        core::System sys(cfg);
        benchutil::WatchScope watch(sys);
        core::Runner runner(sys);
        const auto res = runner.run_gemm(spec, core::Placement::host);

        const auto& smmu = sys.smmu();
        Row r{};
        r.footprint_pages =
            static_cast<double>(sys.page_table().pages_mapped());
        r.translations = static_cast<double>(smmu.translations());
        // 1 GHz CPU clock: 1 cycle == 1 ns.
        r.trans_mean_cyc = smmu.translations() == 0
                               ? 0.0
                               : smmu.total_translation_ns() /
                                     static_cast<double>(smmu.translations());
        r.ptw = static_cast<double>(smmu.ptw_count());
        r.ptw_mean_cyc = smmu.ptw_count() == 0
                             ? 0.0
                             : smmu.total_ptw_ns() /
                                   static_cast<double>(smmu.ptw_count());
        r.utlb_lookups = static_cast<double>(smmu.utlb_lookups());
        r.utlb_misses = static_cast<double>(smmu.utlb_misses());
        r.overhead_pct = (res.ms() / ideal_ms - 1.0) * 100.0;
        rows.push_back(r);
    }

    auto print_row = [&](const char* label, double Row::*field,
                         const char* fmt) {
        std::printf("%-22s", label);
        for (const auto& r : rows) {
            std::printf(fmt, r.*field);
        }
        std::printf("\n");
    };
    print_row("Footprint (Pages)", &Row::footprint_pages, " %14.0f");
    print_row("Translation Times", &Row::translations, " %14.0f");
    print_row("Trans Mean Time", &Row::trans_mean_cyc, " %14.2f");
    print_row("PTW Times", &Row::ptw, " %14.0f");
    print_row("PTW Mean Time", &Row::ptw_mean_cyc, " %14.2f");
    print_row("uTLB Lookups", &Row::utlb_lookups, " %14.0f");
    print_row("uTLB Misses", &Row::utlb_misses, " %14.0f");
    print_row("Trans Overhead (%)", &Row::overhead_pct, " %14.2f");

    std::printf("\npaper shape: overhead 6.02%% @64, minimum ~1.0%% @1024, "
                "spike to 6.49%% @2048 (TLB capacity exceeded).\n");
    return 0;
}
