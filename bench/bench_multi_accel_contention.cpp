// Multi-accelerator uplink contention: sweep 1..4 MatrixFlow endpoints
// behind one PCIe switch sharing the x4 uplink, each running the same GEMM
// concurrently, and report per-device and aggregate bandwidth plus uplink
// utilization — the scenario family the single-device paper topology
// cannot express.
//
// Expected shape: the uplink direction toward the devices saturates, so
// per-device bandwidth falls roughly as 1/N while aggregate bandwidth and
// utilization plateau; completion-time skew between devices stays small
// because the switch round-robins ingress fairly.
// Checkpoint round-trip mode (CI): `--devices N` runs one scenario only;
// `--ckpt-at-ns T --ckpt PATH` snapshots mid-run and exits 3;
// `--restore PATH` resumes a snapshot; `--stats-out PATH` writes the final
// stats registry as JSON. A straight run and a split-at-T run must produce
// byte-identical stats files (the bit-identity contract).
#include "bench_util.hh"

#include <fstream>
#include <vector>

int main(int argc, char** argv)
{
    benchutil::install_wall_watchdog(argc, argv);
    using namespace accesys;
    const bool quick = benchutil::quick_mode(argc, argv);
    const std::uint32_t size = quick ? 128 : 512;
    const std::size_t max_devices = 4;
    const auto only = static_cast<std::size_t>(
        benchutil::arg_ll(argc, argv, "--devices", 0));
    const long long ckpt_at_ns =
        benchutil::arg_ll(argc, argv, "--ckpt-at-ns", 0);
    const std::string ckpt_path =
        benchutil::arg_str(argc, argv, "--ckpt", "contention.ckpt");
    const std::string restore =
        benchutil::arg_str(argc, argv, "--restore", "");
    const std::string stats_out =
        benchutil::arg_str(argc, argv, "--stats-out", "");

    benchutil::header("bench_multi_accel_contention",
                      "multi-accelerator extension of Fig. 3",
                      "N endpoints sharing the PCIe 2.0 x4 uplink, one "
                      "concurrent GEMM each");

    std::printf("GEMM per device: %ux%ux%u int8\n\n", size, size, size);
    std::printf("%2s %10s %12s %12s %12s %10s %8s\n", "N", "time(ms)",
                "dev BW(GB/s)", "agg BW(GB/s)", "agg GMAC/s", "uplink%",
                "skew(us)");

    double solo_gbps = 0.0;
    for (std::size_t n = 1; n <= max_devices; ++n) {
        if (only != 0 && n != only) {
            continue;
        }
        core::SystemConfig cfg = core::SystemConfig::paper_default();
        cfg.set_num_devices(n);
        core::System sys(cfg);
        benchutil::WatchScope watch(sys);
        core::Runner runner(sys);

        if (ckpt_at_ns > 0) {
            sys.sim().request_checkpoint_at(ckpt_path,
                                            ticks_from_ns(ckpt_at_ns));
        }
        if (!restore.empty()) {
            runner.set_restore_path(restore);
        }

        const workload::GemmSpec spec{size, size, size, /*seed=*/3};
        for (std::size_t d = 0; d < n; ++d) {
            runner.dispatch(d, spec, core::Placement::host);
        }
        const auto res = runner.run_dispatched();
        if (res.checkpointed) {
            std::printf("checkpoint written to %s at tick %llu\n",
                        ckpt_path.c_str(),
                        static_cast<unsigned long long>(res.end));
            return 3;
        }
        if (ckpt_at_ns > 0) {
            std::fprintf(stderr,
                         "error: run completed before --ckpt-at-ns %lld\n",
                         ckpt_at_ns);
            return 4;
        }
        if (!stats_out.empty()) {
            std::ofstream out(stats_out);
            sys.stats().write_json(out);
        }

        Tick first_done = res.devices.front().done;
        Tick last_done = res.devices.front().done;
        double sum_gbps = 0.0;
        for (const auto& d : res.devices) {
            sum_gbps += d.gbps(res.elapsed());
            first_done = std::min(first_done, d.done);
            last_done = std::max(last_done, d.done);
        }
        const double per_dev = sum_gbps / static_cast<double>(n);
        if (n == 1) {
            solo_gbps = per_dev;
        }

        std::printf("%2zu %10.3f %12.2f %12.2f %12.2f %9.1f%% %8.1f\n", n,
                    res.ms(), per_dev, res.aggregate_gbps(),
                    res.aggregate_gmacs(),
                    100.0 * sys.pcie_uplink().utilization(0),
                    ticks_to_us(last_done - first_done));
    }

    if (solo_gbps > 0.0) {
        std::printf("\n(1-device DMA bandwidth %.2f GB/s is the contention "
                    "baseline)\n",
                    solo_gbps);
    }
    return 0;
}
