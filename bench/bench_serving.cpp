// Open-loop serving under overload: latency-vs-offered-load and goodput
// curves on the 4-endpoint config (ROADMAP "Serving under overload").
//
// Each point drives a seeded two-tenant Poisson arrival schedule through
// Runner::serve with a bounded admission queue, sweeping the offered load
// from well below to 2x the fleet's service capacity for two shedding
// policies (reject_new and shed_oldest) plus a deadline_aware point at the
// heaviest load. Expected shape: below saturation every policy completes
// everything and latency sits at the service floor; past saturation
// goodput flattens at fleet capacity while the queue-bound policies part
// ways — reject_new keeps queueing delay bounded by refusing at
// admission, shed_oldest admits everything and evicts the stalest queue
// entries, and deadline_aware converts the overload into early sheds of
// jobs whose SLO is already blown.
//
// The final section composes overload with an endpoint fault — a
// permanent hang on mf1 at 1.5x offered load — and verifies the
// robustness contract: the wedged endpoint is quarantined, every
// dispatched job completes via failover (zero failures), every offered
// request is accounted, and the process exits nonzero otherwise.
//
// Serving golden mode (CI): `--serving-golden PATH` skips the sweeps and
// runs one pinned overload scenario; the full stats registry (admission
// counters, per-tenant p50/p99 split into queueing vs service time,
// goodput) is written to PATH as JSON for a byte-compare against the
// committed golden at ACCESYS_THREADS 1 and 4.
#include "bench_util.hh"

#include <fstream>
#include <string>
#include <vector>

#include "workload/request_gen.hh"

namespace {

using accesys::core::Runner;
using accesys::core::ServingConfig;
using accesys::core::ServingResult;
using accesys::core::ShedPolicy;
using accesys::core::System;
using accesys::core::SystemConfig;
using accesys::workload::GemmSpec;
using accesys::workload::RequestGen;
using accesys::workload::RequestGenConfig;
using accesys::workload::TenantSpec;

/// Two-tenant Poisson mix totalling `rate_jobs_per_s` over `horizon_ns`:
/// 2/3 interactive small GEMMs (with an SLO), 1/3 batch medium GEMMs.
RequestGenConfig mix_config(double rate_jobs_per_s, double horizon_ns,
                            double interactive_deadline_ns)
{
    RequestGenConfig gcfg;
    gcfg.seed = 11;
    gcfg.horizon_ns = horizon_ns;
    TenantSpec interactive;
    interactive.name = "interactive";
    interactive.rate_jobs_per_s = rate_jobs_per_s * 2.0 / 3.0;
    interactive.mix = {GemmSpec{16, 16, 16}, GemmSpec{32, 32, 32}};
    interactive.deadline_ns = interactive_deadline_ns;
    TenantSpec batch;
    batch.name = "batch";
    batch.rate_jobs_per_s = rate_jobs_per_s / 3.0;
    batch.mix = {GemmSpec{48, 48, 48}};
    gcfg.tenants.push_back(interactive);
    gcfg.tenants.push_back(batch);
    return gcfg;
}

const char* policy_name(ShedPolicy p)
{
    switch (p) {
    case ShedPolicy::reject_new:
        return "reject_new";
    case ShedPolicy::shed_oldest:
        return "shed_oldest";
    case ShedPolicy::deadline_aware:
        return "deadline";
    }
    return "?";
}

struct PointResult {
    ServingResult res;
    double p99_e2e_us = 0.0; ///< worst tenant
    bool ok = true;
};

PointResult run_point(const SystemConfig& cfg, const RequestGenConfig& gcfg,
                      const ServingConfig& scfg)
{
    System sys(cfg);
    benchutil::WatchScope watch(sys);
    RequestGen gen(sys.sim(), gcfg);
    Runner runner(sys);
    PointResult pt;
    pt.res = runner.serve(gen, scfg);
    pt.ok = pt.res.accounted();
    for (const auto& t : pt.res.tenants) {
        pt.p99_e2e_us = std::max(pt.p99_e2e_us, t.p99_e2e_ns / 1e3);
    }
    for (const auto& j : pt.res.jobs) {
        if (j.status == accesys::core::JobStatus::ok && !j.verified) {
            pt.ok = false;
        }
    }
    return pt;
}

} // namespace

int main(int argc, char** argv)
{
    benchutil::install_wall_watchdog(argc, argv);
    const bool quick = benchutil::quick_mode(argc, argv);
    const std::string golden_out =
        benchutil::arg_str(argc, argv, "--serving-golden", "");
    const std::size_t devices = 4;

    if (!golden_out.empty()) {
        // Pinned CI scenario: 1.5x overload, shed_oldest, bounded queue.
        // Counts and per-tenant percentiles land in the stats registry,
        // which is byte-compared across ACCESYS_THREADS values.
        SystemConfig cfg = SystemConfig::paper_default();
        cfg.set_num_devices(devices);
        System sys(cfg);
        benchutil::WatchScope watch(sys);
        RequestGen gen(sys.sim(), mix_config(6e5, 1e5, 0.0));
        ServingConfig scfg;
        scfg.policy = ShedPolicy::shed_oldest;
        scfg.queue_capacity = 8;
        Runner runner(sys);
        const ServingResult res = runner.serve(gen, scfg);
        if (!res.accounted() || res.failed != 0) {
            std::fprintf(stderr,
                         "error: serving accounting broken (offered %llu "
                         "admitted %llu rejected %llu shed %llu completed "
                         "%llu failed %llu)\n",
                         static_cast<unsigned long long>(res.offered),
                         static_cast<unsigned long long>(res.admitted),
                         static_cast<unsigned long long>(res.rejected),
                         static_cast<unsigned long long>(res.shed),
                         static_cast<unsigned long long>(res.completed),
                         static_cast<unsigned long long>(res.failed));
            return 5;
        }
        if (res.shed == 0) {
            std::fprintf(stderr, "error: pinned scenario did not overload "
                                 "— golden would not pin shedding\n");
            return 5;
        }
        std::ofstream out(golden_out);
        sys.stats().write_json(out);
        std::printf("serving golden: %llu offered, %llu completed, %llu "
                    "shed, goodput %.1f jobs/s; stats -> %s\n",
                    static_cast<unsigned long long>(res.offered),
                    static_cast<unsigned long long>(res.completed),
                    static_cast<unsigned long long>(res.shed),
                    res.goodput_jobs_per_s(), golden_out.c_str());
        return 0;
    }

    benchutil::header("bench_serving",
                      "the serving-under-overload robustness scenario",
                      "open-loop latency vs offered load and goodput, 4 "
                      "endpoints, bounded admission + load shedding");

    // The sweep brackets the fleet's saturation knee: 0.5x of this base
    // rate completes everything with an empty queue, 1x and above drive
    // the bounded queue into rejection/shedding.
    const double nominal = 4e5;
    const double horizon_ns = quick ? 5e4 : 2e5;
    std::printf("two-tenant Poisson mix (2/3 interactive 16^3/32^3, 1/3 "
                "batch 48^3),\nhorizon %.0f us, queue capacity 8, verify "
                "on\n\n",
                horizon_ns / 1e3);
    std::printf("%12s %6s %8s %8s %8s %8s %8s %14s %10s\n", "policy",
                "load", "offered", "admit", "reject", "shed", "done",
                "goodput(job/s)", "p99(us)");

    bool all_ok = true;
    for (const ShedPolicy policy :
         {ShedPolicy::reject_new, ShedPolicy::shed_oldest}) {
        for (const double mult : {0.5, 1.0, 1.5, 2.0}) {
            SystemConfig cfg = SystemConfig::paper_default();
            cfg.set_num_devices(devices);
            ServingConfig scfg;
            scfg.policy = policy;
            scfg.queue_capacity = 8;
            const PointResult pt = run_point(
                cfg, mix_config(nominal * mult, horizon_ns, 0.0), scfg);
            all_ok &= pt.ok;
            std::printf("%12s %5.2gx %8llu %8llu %8llu %8llu %8llu %14.0f "
                        "%10.1f%s\n",
                        policy_name(policy), mult,
                        static_cast<unsigned long long>(pt.res.offered),
                        static_cast<unsigned long long>(pt.res.admitted),
                        static_cast<unsigned long long>(pt.res.rejected),
                        static_cast<unsigned long long>(pt.res.shed),
                        static_cast<unsigned long long>(pt.res.completed),
                        pt.res.goodput_jobs_per_s(), pt.p99_e2e_us,
                        pt.ok ? "" : "  ACCOUNTING-BROKEN");
        }
        std::printf("\n");
    }

    // deadline_aware at the heaviest load: the interactive tenant's SLO
    // lets the queue shed early instead of serving already-dead work.
    {
        SystemConfig cfg = SystemConfig::paper_default();
        cfg.set_num_devices(devices);
        ServingConfig scfg;
        scfg.policy = ShedPolicy::deadline_aware;
        scfg.queue_capacity = 8;
        const PointResult pt = run_point(
            cfg, mix_config(nominal * 2.0, horizon_ns, 5e4), scfg);
        all_ok &= pt.ok;
        std::printf("%12s %5.2gx %8llu %8llu %8llu %8llu %8llu %14.0f "
                    "%10.1f  (interactive SLO 50 us)%s\n\n",
                    policy_name(ShedPolicy::deadline_aware), 2.0,
                    static_cast<unsigned long long>(pt.res.offered),
                    static_cast<unsigned long long>(pt.res.admitted),
                    static_cast<unsigned long long>(pt.res.rejected),
                    static_cast<unsigned long long>(pt.res.shed),
                    static_cast<unsigned long long>(pt.res.completed),
                    pt.res.goodput_jobs_per_s(), pt.p99_e2e_us,
                    pt.ok ? "" : "  ACCOUNTING-BROKEN");
    }

    // --- composed fault + overload ------------------------------------
    std::printf("----------------------------------------------------------------\n");
    std::printf("composed: permanent hang on mf1 at 1.5x offered load "
                "(failover armed)\n\n");
    {
        SystemConfig cfg = SystemConfig::paper_default();
        cfg.set_num_devices(devices);
        cfg.fault_plan.seed = 7;
        cfg.fault_plan.hang_rate = 1.0;
        cfg.fault_plan.hang_site = "mf1";
        cfg.fault_plan.job_timeout_ns = quick ? 1e5 : 2e5;
        cfg.fault_plan.job_max_attempts = 3;
        cfg.fault_plan.quarantine_failures = 2;
        ServingConfig scfg;
        scfg.policy = ShedPolicy::shed_oldest;
        scfg.queue_capacity = 8;
        const PointResult pt = run_point(
            cfg, mix_config(nominal * 1.5, horizon_ns * 2.0, 0.0), scfg);
        const bool quarantined =
            pt.res.health.size() == devices &&
            pt.res.health[1] == accesys::core::EndpointHealth::quarantined;
        std::printf("offered %llu  admitted %llu  shed %llu  completed "
                    "%llu  failed %llu\nredispatches %llu  FLRs %llu  "
                    "mf1 %s  goodput %.0f jobs/s  p99 %.1f us\n",
                    static_cast<unsigned long long>(pt.res.offered),
                    static_cast<unsigned long long>(pt.res.admitted),
                    static_cast<unsigned long long>(pt.res.shed),
                    static_cast<unsigned long long>(pt.res.completed),
                    static_cast<unsigned long long>(pt.res.failed),
                    static_cast<unsigned long long>(pt.res.redispatches),
                    static_cast<unsigned long long>(pt.res.flrs),
                    quarantined ? "quarantined" : "NOT QUARANTINED",
                    pt.res.goodput_jobs_per_s(), pt.p99_e2e_us);
        if (!pt.ok || pt.res.failed != 0 || !quarantined ||
            pt.res.redispatches == 0) {
            std::fprintf(stderr, "error: composed fault+overload run "
                                 "violated the robustness contract\n");
            all_ok = false;
        }
    }

    if (!all_ok) {
        std::fprintf(stderr,
                     "error: a serving invariant was violated (see above)\n");
        return 1;
    }
    std::printf("\n(every offered request is accounted at every point: "
                "admitted + rejected == offered\nand completed + shed + "
                "failed == admitted; all completed jobs verify)\n");
    return 0;
}
