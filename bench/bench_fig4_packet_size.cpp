// Fig. 4 — Execution time under different DMA request (packet) sizes for
// several PCIe bandwidths.
//
// The paper reports a convex curve with the minimum near 256 B: 64 B
// packets cost ~12% extra (per-TLP header and processing overhead) and
// 4096 B packets ~36% extra (store-and-forward stalls at the switch and
// root complex, plus chunkier flow control).
#include "bench_util.hh"

using namespace accesys;

int main(int argc, char** argv)
{
    benchutil::install_wall_watchdog(argc, argv);
    const bool quick = benchutil::quick_mode(argc, argv);
    benchutil::header(
        "bench_fig4_packet_size", "paper Fig. 4",
        "GEMM 1024^3, packet size 64..4096 B at 4..64 GB/s PCIe");

    const std::uint32_t size = quick ? 512 : 1024;
    const workload::GemmSpec spec{size, size, size, 7};

    std::vector<double> bandwidths = {4, 8, 16, 32, 64};
    std::vector<std::uint32_t> packets = {64, 128, 256, 512, 1024, 2048, 4096};
    if (quick) {
        bandwidths = {4, 64};
        packets = {64, 256, 4096};
    }

    std::printf("%10s", "pkt\\GBps");
    for (const double bw : bandwidths) {
        std::printf(" %9.0f", bw);
    }
    std::printf("   (execution time, ms)\n");

    // rows[packet] per bandwidth, for the overhead summary.
    std::vector<std::vector<double>> rows;
    for (const std::uint32_t pkt : packets) {
        std::printf("%10u", pkt);
        rows.emplace_back();
        for (const double bw : bandwidths) {
            core::SystemConfig cfg = core::SystemConfig::paper_default();
            cfg.set_pcie_target_gbps(bw);
            cfg.set_packet_size(pkt);
            const double ms =
                benchutil::gemm_ms(cfg, spec, core::Placement::host);
            rows.back().push_back(ms);
            std::printf(" %9.2f", ms);
        }
        std::printf("\n");
    }

    // Overhead of the extreme packet sizes vs the per-bandwidth optimum.
    std::printf("\noverhead vs best packet size per bandwidth:\n");
    for (std::size_t b = 0; b < bandwidths.size(); ++b) {
        double best = 1e300;
        for (const auto& r : rows) {
            best = std::min(best, r[b]);
        }
        std::printf("  %5.0f GB/s: 64B %+6.1f%%   %uB %+6.1f%%\n",
                    bandwidths[b], (rows.front()[b] / best - 1.0) * 100.0,
                    packets.back(), (rows.back()[b] / best - 1.0) * 100.0);
    }
    std::printf("paper: +12%% at 64 B and +36%% at 4096 B vs 256 B.\n");
    return 0;
}
