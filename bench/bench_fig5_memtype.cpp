// Fig. 5 — Impact of DRAM type and location.
//
// Compares device-side memory against host-side memory behind a 2 GB/s and
// a 64 GB/s PCIe link for several DRAM technologies. Speedups are
// normalized to DDR4 device-side, as in the paper. Expected shape: DevMem
// wins everywhere; host@64GB/s reaches ~80% of DevMem; the gap grows for
// the faster technologies (GDDR/HBM).
#include "bench_util.hh"

using namespace accesys;

int main(int argc, char** argv)
{
    benchutil::install_wall_watchdog(argc, argv);
    const bool quick = benchutil::quick_mode(argc, argv);
    benchutil::header("bench_fig5_memtype", "paper Fig. 5",
                      "GEMM, {DDR4, LPDDR5, GDDR5, HBM2} x "
                      "{DevMem, host@2GB/s, host@64GB/s}");

    const std::uint32_t size = quick ? 256 : 1024;
    const workload::GemmSpec spec{size, size, size, 7};

    const std::vector<std::string> mems = {"DDR4", "LPDDR5", "GDDR5", "HBM2"};

    auto devmem_ms = [&](const std::string& mem) {
        core::SystemConfig cfg = core::SystemConfig::paper_default();
        cfg.set_devmem(mem);
        return benchutil::gemm_ms(cfg, spec, core::Placement::devmem);
    };
    auto host_ms = [&](const std::string& mem, double gbps) {
        core::SystemConfig cfg = core::SystemConfig::paper_default();
        cfg.set_host_dram(mem);
        cfg.set_pcie_target_gbps(gbps);
        return benchutil::gemm_ms(cfg, spec, core::Placement::host);
    };

    const double ref = devmem_ms("DDR4"); // normalization baseline

    std::printf("%10s %14s %16s %16s   (speedup vs DDR4 device-side)\n",
                "memory", "device-side", "host@2GB/s", "host@64GB/s");
    for (const auto& mem : mems) {
        const double dev = devmem_ms(mem);
        const double h2 = host_ms(mem, 2.0);
        const double h64 = host_ms(mem, 64.0);
        std::printf("%10s %14.3f %16.3f %16.3f\n", mem.c_str(), ref / dev,
                    ref / h2, ref / h64);
        std::printf("%10s %14s %16.1f%% %15.1f%%  (of same-tech DevMem)\n",
                    "", "100%", dev / h2 * 100.0, dev / h64 * 100.0);
    }
    std::printf("\npaper: host@64GB/s reaches ~78%% of device-side; DevMem "
                "up to ~2x over other configs.\n");
    return 0;
}
