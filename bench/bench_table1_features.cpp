// Table I — Comparison of gem5-based frameworks for hardware accelerator
// simulation.
//
// The paper's columns for prior frameworks are literature facts; the
// AcceSys column is *derived from this repository*: each feature is backed
// by the module that implements it, so the table doubles as a checked
// inventory of the reproduction.
#include <cstdio>
#include <vector>

#include "core/system.hh"

#include "bench_util.hh"

using namespace accesys;

namespace {

struct FeatureRow {
    const char* feature;
    const char* aladdin;
    const char* salam;
    const char* rtl;
    const char* gem5x;
    const char* accesys;
    const char* evidence; ///< module that implements the AcceSys cell
};

} // namespace

int main(int argc, char** argv)
{
    benchutil::install_wall_watchdog(argc, argv);
    std::printf("Table I — framework feature comparison "
                "(AcceSys column backed by this repo)\n\n");

    const std::vector<FeatureRow> rows = {
        {"Acce Design Level", "C++", "LLVM IR", "RTL", "C++", "C++ (cycle model)",
         "src/accel/systolic_array"},
        {"Interconnect", "Basic buses", "Basic buses", "Basic buses",
         "Basic buses", "Buses + PCIe", "src/pcie (link/RC/switch)"},
        {"Acce Addr Translation", "Yes", "No", "No", "No", "Yes (SMMU)",
         "src/smmu"},
        {"External Mem Simulator", "No", "No", "No", "No",
         "Bank-state DRAM model", "src/mem/dram_timing"},
        {"Kernel Driver Support", "No", "No", "No", "Limited",
         "Yes (descriptor+doorbell)", "src/core/runner"},
        {"Multi-Channel DMA", "Yes", "No", "No", "No", "Yes",
         "src/dma/dma_engine"},
        {"Device-Side Memory", "No", "No", "No", "Yes", "Yes",
         "src/accel/data_mover + devmem ctrl"},
        {"Full-System Simulation", "Yes", "Bare-metal", "Yes", "Yes", "Yes",
         "src/core/system"},
        {"Acce Process Model", "Integrated", "Integrated", "Integrated",
         "Integrated", "Event-driven endpoint", "src/accel/matrixflow"},
    };

    std::printf("%-24s %-12s %-10s %-8s %-9s %-26s %s\n", "Feature",
                "Aladdin", "SALAM", "RTL", "Gem5-X", "AcceSys (this repo)",
                "evidence");
    for (const auto& r : rows) {
        std::printf("%-24s %-12s %-10s %-8s %-9s %-26s %s\n", r.feature,
                    r.aladdin, r.salam, r.rtl, r.gem5x, r.accesys,
                    r.evidence);
    }

    // Light verification that the claimed features really construct.
    core::SystemConfig cfg = core::SystemConfig::paper_default();
    cfg.set_devmem("HBM2");
    core::System sys(cfg);
    benchutil::WatchScope watch(sys);
    std::printf("\nverification: full system with PCIe+SMMU+DMA+DevMem "
                "constructed OK (%zu stats registered).\n",
                sys.stats().size());
    return 0;
}
