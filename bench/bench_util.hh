// Shared helpers for the figure/table reproduction benches.
//
// Every bench binary is self-contained: it builds fresh System instances,
// runs the paper's sweep, and prints the same rows/series the paper
// reports. Pass --quick for a reduced sweep (smaller matrices / fewer
// points) when iterating.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include <unistd.h>

#include "core/runner.hh"

namespace benchutil {

inline bool flag_present(int argc, char** argv, const char* flag)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0) {
            return true;
        }
    }
    return false;
}

inline bool quick_mode(int argc, char** argv)
{
    return flag_present(argc, argv, "--quick");
}

/// Value of `--<flag> N` or `--<flag>=N`, or `fallback` when absent.
inline long long arg_ll(int argc, char** argv, const char* flag,
                        long long fallback)
{
    const std::size_t len = std::strlen(flag);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
            return std::atoll(argv[i + 1]);
        }
        if (std::strncmp(argv[i], flag, len) == 0 && argv[i][len] == '=') {
            return std::atoll(argv[i] + len + 1);
        }
    }
    return fallback;
}

/// `--max-wall-ms N` watchdog: a detached thread hard-exits the process
/// (status 124, like timeout(1)) if the bench is still running after N
/// milliseconds of wall time. A wedged simulation — e.g. a fault sweep
/// that deadlocks instead of degrading — then fails CI loudly instead of
/// hanging it. No-op when the flag is absent.
inline void install_wall_watchdog(int argc, char** argv)
{
    const long long ms = arg_ll(argc, argv, "--max-wall-ms", 0);
    if (ms <= 0) {
        return;
    }
    std::thread([ms] {
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
        std::fprintf(stderr,
                     "bench watchdog: still running after %lld ms, "
                     "aborting\n",
                     ms);
        std::fflush(nullptr);
        _exit(124);
    }).detach();
}

inline void header(const char* bench, const char* paper_artefact,
                   const char* what)
{
    std::printf("================================================================\n");
    std::printf("%s — reproduces %s\n", bench, paper_artefact);
    std::printf("%s\n", what);
    std::printf("================================================================\n");
}

/// Build a system, offload one timing-only GEMM, tear down; returns the
/// offload latency in milliseconds.
inline double gemm_ms(const accesys::core::SystemConfig& cfg,
                      const accesys::workload::GemmSpec& spec,
                      accesys::core::Placement place)
{
    accesys::core::System sys(cfg);
    accesys::core::Runner runner(sys);
    return runner.run_gemm(spec, place).ms();
}

} // namespace benchutil
