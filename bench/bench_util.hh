// Shared helpers for the figure/table reproduction benches.
//
// Every bench binary is self-contained: it builds fresh System instances,
// runs the paper's sweep, and prints the same rows/series the paper
// reports. Pass --quick for a reduced sweep (smaller matrices / fewer
// points) when iterating.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

#include "core/runner.hh"

namespace benchutil {

inline bool flag_present(int argc, char** argv, const char* flag)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0) {
            return true;
        }
    }
    return false;
}

inline bool quick_mode(int argc, char** argv)
{
    return flag_present(argc, argv, "--quick");
}

inline void header(const char* bench, const char* paper_artefact,
                   const char* what)
{
    std::printf("================================================================\n");
    std::printf("%s — reproduces %s\n", bench, paper_artefact);
    std::printf("%s\n", what);
    std::printf("================================================================\n");
}

/// Build a system, offload one timing-only GEMM, tear down; returns the
/// offload latency in milliseconds.
inline double gemm_ms(const accesys::core::SystemConfig& cfg,
                      const accesys::workload::GemmSpec& spec,
                      accesys::core::Placement place)
{
    accesys::core::System sys(cfg);
    accesys::core::Runner runner(sys);
    return runner.run_gemm(spec, place).ms();
}

} // namespace benchutil
