// Shared helpers for the figure/table reproduction benches.
//
// Every bench binary is self-contained: it builds fresh System instances,
// runs the paper's sweep, and prints the same rows/series the paper
// reports. Pass --quick for a reduced sweep (smaller matrices / fewer
// points) when iterating.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include <unistd.h>

#include "core/runner.hh"
#include "sim/env_flags.hh"

namespace benchutil {

/// The System the wall watchdog snapshots on expiry (see WatchScope).
inline std::atomic<accesys::core::System*> g_watch_sys{nullptr};

/// Register `sys` as the watchdog's snapshot target for one run. Arms the
/// interrupt-checkpoint path so expiry needs only flag writes: the run
/// loop writes the checkpoint at its next quiescent point and returns
/// ExitCause::checkpointed, and a later invocation can resume from it.
class WatchScope {
  public:
    explicit WatchScope(accesys::core::System& sys,
                        std::string ckpt_path = "bench_watchdog.ckpt")
    {
        if (accesys::env_flags().ckpt) {
            sys.sim().arm_interrupt_checkpoint(std::move(ckpt_path));
        }
        g_watch_sys.store(&sys, std::memory_order_release);
    }
    WatchScope(const WatchScope&) = delete;
    WatchScope& operator=(const WatchScope&) = delete;
    ~WatchScope() { g_watch_sys.store(nullptr, std::memory_order_release); }
};

inline bool flag_present(int argc, char** argv, const char* flag)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0) {
            return true;
        }
    }
    return false;
}

inline bool quick_mode(int argc, char** argv)
{
    return flag_present(argc, argv, "--quick");
}

/// Value of `--<flag> S` or `--<flag>=S`, or `fallback` when absent.
inline std::string arg_str(int argc, char** argv, const char* flag,
                           const char* fallback)
{
    const std::size_t len = std::strlen(flag);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
            return argv[i + 1];
        }
        if (std::strncmp(argv[i], flag, len) == 0 && argv[i][len] == '=') {
            return argv[i] + len + 1;
        }
    }
    return fallback;
}

/// Value of `--<flag> N` or `--<flag>=N`, or `fallback` when absent.
inline long long arg_ll(int argc, char** argv, const char* flag,
                        long long fallback)
{
    const std::size_t len = std::strlen(flag);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
            return std::atoll(argv[i + 1]);
        }
        if (std::strncmp(argv[i], flag, len) == 0 && argv[i][len] == '=') {
            return std::atoll(argv[i] + len + 1);
        }
    }
    return fallback;
}

/// `--max-wall-ms N` watchdog: a detached thread hard-exits the process
/// (status 124, like timeout(1)) if the bench is still running after N
/// milliseconds of wall time. A wedged simulation — e.g. a fault sweep
/// that deadlocks instead of degrading — then fails CI loudly instead of
/// hanging it. No-op when the flag is absent.
///
/// Before exiting, the watchdog posts an interrupt on the registered
/// System (WatchScope): the run loop writes the armed checkpoint at its
/// next quiescent point, so the aborted run is resumable, and after a
/// grace window the registry's partial stats are flushed to stderr so the
/// wedged state is diagnosable. A simulation stuck *below* run() (never
/// reaching an event boundary) still exits 124, just without a snapshot.
inline void install_wall_watchdog(int argc, char** argv)
{
    const long long ms = arg_ll(argc, argv, "--max-wall-ms", 0);
    if (ms <= 0) {
        return;
    }
    std::thread([ms] {
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
        accesys::core::System* sys =
            g_watch_sys.load(std::memory_order_acquire);
        if (sys != nullptr) {
            sys->sim().post_interrupt(); // flag writes only
            // Grace window: the run loop checkpoints and the bench
            // unregisters (WatchScope destructor) on its way out.
            for (int i = 0;
                 i < 20 && g_watch_sys.load(std::memory_order_acquire) !=
                               nullptr;
                 ++i) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(100));
            }
        }
        std::fprintf(stderr,
                     "bench watchdog: still running after %lld ms, "
                     "aborting\n",
                     ms);
        sys = g_watch_sys.load(std::memory_order_acquire);
        if (sys != nullptr) {
            // Best-effort diagnostics: after the grace window the sim is
            // quiesced (checkpoint written) unless it is wedged below
            // run(); a torn line in that case beats no dump at all.
            std::fprintf(stderr, "bench watchdog: partial stats dump:\n");
            sys->stats().write_text(std::cerr);
        }
        std::fflush(nullptr);
        _exit(124);
    }).detach();
}

inline void header(const char* bench, const char* paper_artefact,
                   const char* what)
{
    std::printf("================================================================\n");
    std::printf("%s — reproduces %s\n", bench, paper_artefact);
    std::printf("%s\n", what);
    std::printf("================================================================\n");
}

/// Build a system, offload one timing-only GEMM, tear down; returns the
/// offload latency in milliseconds.
inline double gemm_ms(const accesys::core::SystemConfig& cfg,
                      const accesys::workload::GemmSpec& spec,
                      accesys::core::Placement place)
{
    accesys::core::System sys(cfg);
    WatchScope watch(sys);
    accesys::core::Runner runner(sys);
    return runner.run_gemm(spec, place).ms();
}

} // namespace benchutil
