// Ablation: MatrixFlow dataflow blocking width (max_block_cols).
//
// The paper's memory-sensitivity results imply a streaming dataflow with
// ~16 B/cycle arithmetic intensity (one 16-column B panel at a time). This
// ablation widens the panel until the scratchpad is full, which multiplies
// operand reuse and collapses the PCIe sensitivity — showing why the
// narrow-panel default is the right model of the paper's accelerator, and
// quantifying what a reuse-optimised controller would buy.
#include "bench_util.hh"

using namespace accesys;

int main(int argc, char** argv)
{
    benchutil::install_wall_watchdog(argc, argv);
    const bool quick = benchutil::quick_mode(argc, argv);
    benchutil::header("bench_ablation_blocking", "DESIGN.md ablation",
                      "B-panel width (reuse) x PCIe bandwidth");

    const std::uint32_t size = quick ? 256 : 1024;
    const workload::GemmSpec spec{size, size, size, 7};

    const std::vector<std::uint32_t> widths = {16, 64, 0}; // 0 = auto-fit
    const std::vector<double> bandwidths = {2, 8, 64};

    std::printf("%16s", "panel\\PCIe");
    for (const double bw : bandwidths) {
        std::printf(" %8.0fGB", bw);
    }
    std::printf("   (execution time, ms)\n");

    for (const std::uint32_t w : widths) {
        std::printf("%16s",
                    w == 0 ? "auto(widest)" :
                             (std::to_string(w) + " cols").c_str());
        for (const double bw : bandwidths) {
            core::SystemConfig cfg = core::SystemConfig::paper_default();
            cfg.set_pcie_target_gbps(bw);
            cfg.accel.max_block_cols = w;
            std::printf(" %10.3f",
                        benchutil::gemm_ms(cfg, spec,
                                           core::Placement::host));
        }
        std::printf("\n");
    }

    std::printf("\nExpected: wider panels divide operand traffic (roughly\n"
                "by panels/16) and flatten the bandwidth sensitivity; the\n"
                "16-column default keeps the paper's memory-bound regime.\n");
    return 0;
}
