// Fault-injection sweep: error rate vs goodput and latency under the
// 4-endpoint contention scenario. Each point runs the same concurrent
// GEMM batch with a seeded Bernoulli TLP-corruption rate applied at every
// link transmitter; the data-link replay protocol recovers every hit, so
// functional results stay bit-exact while NAK/replay traffic eats into
// wire goodput and stretches completion latency.
//
// Expected shape: rates up to ~1e-6 are free (few or no hits per run);
// from ~1e-5 the replay overhead becomes visible in both aggregate
// bandwidth and wall time, and recovery_ns grows with the hit count.
#include "bench_util.hh"

#include <vector>

int main(int argc, char** argv)
{
    benchutil::install_wall_watchdog(argc, argv);
    using namespace accesys;
    const bool quick = benchutil::quick_mode(argc, argv);
    const std::uint32_t size = quick ? 128 : 512;
    const std::size_t devices = 4;

    benchutil::header("bench_fault_recovery",
                      "robustness extension of the contention scenario",
                      "seeded TLP corruption vs goodput/latency, 4 "
                      "endpoints, link-level replay recovery");

    std::printf("GEMM per device: %ux%ux%u int8, corruption at every link "
                "transmitter (seed 1)\n\n",
                size, size, size);
    std::printf("%10s %10s %12s %8s %8s %8s %12s %6s\n", "rate",
                "time(ms)", "agg BW(GB/s)", "corrupt", "NAKs", "replays",
                "recovery(us)", "ok");

    double clean_ms = 0.0;
    for (const double rate : {0.0, 1e-7, 1e-6, 1e-5, 1e-4}) {
        core::SystemConfig cfg = core::SystemConfig::paper_default();
        cfg.set_num_devices(devices);
        cfg.fault_plan.seed = 1;
        cfg.fault_plan.corrupt_rate = rate;
        // A generous replay budget: this sweep measures recovery cost,
        // not graceful degradation, so no TLP may die even at 1e-4.
        cfg.fault_plan.max_replays = 64;

        core::System sys(cfg);
        benchutil::WatchScope watch(sys);
        core::Runner runner(sys);
        const workload::GemmSpec spec{size, size, size, /*seed=*/3};
        for (std::size_t d = 0; d < devices; ++d) {
            runner.dispatch(d, spec, core::Placement::host,
                            /*verify=*/true);
        }
        const auto res = runner.run_dispatched();
        if (rate == 0.0) {
            clean_ms = res.ms();
        }

        double corrupted = 0.0;
        double naks = 0.0;
        double replays = 0.0;
        double recovery_ns = 0.0;
        if (rate > 0.0) {
            for (const auto* stat :
                 {"link_up", "link_dn", "link_dn1", "link_dn2", "link_dn3"}) {
                corrupted +=
                    sys.stat(std::string(stat) + ".link_corrupted_tlps");
                naks += sys.stat(std::string(stat) + ".link_nak_count");
                replays += sys.stat(std::string(stat) + ".link_replays");
                recovery_ns += sys.stat(std::string(stat) + ".recovery_ns");
            }
        }

        std::printf("%10.0e %10.3f %12.2f %8.0f %8.0f %8.0f %12.2f %6s\n",
                    rate, res.ms(), res.aggregate_gbps(), corrupted, naks,
                    replays, recovery_ns / 1e3,
                    res.all_verified() ? "yes" : "NO");
    }

    if (clean_ms > 0.0) {
        std::printf("\n(rate 0 is the fault-free baseline: %.3f ms; the "
                    "plan is inactive there, so the run takes the clean "
                    "hot path)\n",
                    clean_ms);
    }
    return 0;
}
