// Fault-injection sweep: error rate vs goodput and latency under the
// 4-endpoint contention scenario. Each point runs the same concurrent
// GEMM batch with a seeded Bernoulli TLP-corruption rate applied at every
// link transmitter; the data-link replay protocol recovers every hit, so
// functional results stay bit-exact while NAK/replay traffic eats into
// wire goodput and stretches completion latency.
//
// Expected shape: rates up to ~1e-6 are free (few or no hits per run);
// from ~1e-5 the replay overhead becomes visible in both aggregate
// bandwidth and wall time, and recovery_ns grows with the hit count.
// The second sweep extends the scenario to endpoint-level faults:
// accelerator hangs (per-command Bernoulli) plus poisoned DMA completions,
// with the Runner's health-tracked failover either disarmed (a failed job
// stays failed) or armed (timeout -> FLR -> re-dispatch to the least-loaded
// healthy endpoint). Goodput counts *verified* completed GEMMs per second;
// p99 job latency is measured from batch start to device-side completion.
//
// Failover golden mode (CI): `--failover-golden PATH` skips the sweeps and
// runs the acceptance scenario instead — a seeded permanent hang on
// endpoint mf1 of the 4-endpoint config with failover armed. Every job
// must complete and verify via re-dispatch (exit 5 otherwise) and the
// final stats registry is written to PATH as JSON for a byte-compare
// against the committed golden.
#include "bench_util.hh"

#include <algorithm>
#include <fstream>
#include <vector>

namespace {

struct FleetPoint {
    double elapsed_ms = 0.0;
    unsigned jobs_ok = 0;
    unsigned jobs_total = 0;
    std::uint64_t redispatches = 0;
    std::uint64_t flrs = 0;
    bool all_ok_verified = true;
    std::vector<double> latencies_us; ///< ok jobs only
};

double p99_us(std::vector<double>& lat)
{
    if (lat.empty()) {
        return 0.0;
    }
    std::sort(lat.begin(), lat.end());
    const std::size_t idx =
        (lat.size() * 99 + 99) / 100 == 0 ? 0 : (lat.size() * 99) / 100;
    return lat[std::min(idx, lat.size() - 1)];
}

} // namespace

int main(int argc, char** argv)
{
    benchutil::install_wall_watchdog(argc, argv);
    using namespace accesys;
    const bool quick = benchutil::quick_mode(argc, argv);
    const std::uint32_t size = quick ? 128 : 512;
    const std::size_t devices = 4;
    const std::string golden_out =
        benchutil::arg_str(argc, argv, "--failover-golden", "");

    if (!golden_out.empty()) {
        core::SystemConfig cfg = core::SystemConfig::paper_default();
        cfg.set_num_devices(devices);
        cfg.fault_plan.seed = 7;
        cfg.fault_plan.hang_rate = 1.0;
        cfg.fault_plan.hang_site = "mf1";
        cfg.fault_plan.job_timeout_ns = 2e6;
        cfg.fault_plan.job_max_attempts = 3;

        core::System sys(cfg);
        benchutil::WatchScope watch(sys);
        core::Runner runner(sys);
        const workload::GemmSpec spec{48, 48, 48, /*seed=*/3};
        for (std::size_t d = 0; d < devices; ++d) {
            runner.dispatch(d, spec, core::Placement::host, /*verify=*/true);
        }
        const auto res = runner.run_dispatched();
        for (const auto& d : res.devices) {
            if (!d.ok() || !d.verified) {
                std::fprintf(stderr,
                             "error: a job did not complete and verify "
                             "despite failover\n");
                return 5;
            }
        }
        if (res.redispatches == 0) {
            std::fprintf(stderr,
                         "error: permanent hang on mf1 produced no "
                         "re-dispatch — scenario did not exercise failover\n");
            return 5;
        }
        std::ofstream out(golden_out);
        sys.stats().write_json(out);
        std::printf("failover golden: %llu re-dispatch(es), %llu FLR(s), "
                    "all %zu jobs verified; stats -> %s\n",
                    static_cast<unsigned long long>(res.redispatches),
                    static_cast<unsigned long long>(res.flrs),
                    res.devices.size(), golden_out.c_str());
        return 0;
    }

    benchutil::header("bench_fault_recovery",
                      "robustness extension of the contention scenario",
                      "seeded TLP corruption vs goodput/latency, 4 "
                      "endpoints, link-level replay recovery");

    std::printf("GEMM per device: %ux%ux%u int8, corruption at every link "
                "transmitter (seed 1)\n\n",
                size, size, size);
    std::printf("%10s %10s %12s %8s %8s %8s %12s %6s\n", "rate",
                "time(ms)", "agg BW(GB/s)", "corrupt", "NAKs", "replays",
                "recovery(us)", "ok");

    double clean_ms = 0.0;
    for (const double rate : {0.0, 1e-7, 1e-6, 1e-5, 1e-4}) {
        core::SystemConfig cfg = core::SystemConfig::paper_default();
        cfg.set_num_devices(devices);
        cfg.fault_plan.seed = 1;
        cfg.fault_plan.corrupt_rate = rate;
        // A generous replay budget: this sweep measures recovery cost,
        // not graceful degradation, so no TLP may die even at 1e-4.
        cfg.fault_plan.max_replays = 64;

        core::System sys(cfg);
        benchutil::WatchScope watch(sys);
        core::Runner runner(sys);
        const workload::GemmSpec spec{size, size, size, /*seed=*/3};
        for (std::size_t d = 0; d < devices; ++d) {
            runner.dispatch(d, spec, core::Placement::host,
                            /*verify=*/true);
        }
        const auto res = runner.run_dispatched();
        if (rate == 0.0) {
            clean_ms = res.ms();
        }

        double corrupted = 0.0;
        double naks = 0.0;
        double replays = 0.0;
        double recovery_ns = 0.0;
        if (rate > 0.0) {
            for (const auto* stat :
                 {"link_up", "link_dn", "link_dn1", "link_dn2", "link_dn3"}) {
                corrupted +=
                    sys.stat(std::string(stat) + ".link_corrupted_tlps");
                naks += sys.stat(std::string(stat) + ".link_nak_count");
                replays += sys.stat(std::string(stat) + ".link_replays");
                recovery_ns += sys.stat(std::string(stat) + ".recovery_ns");
            }
        }

        std::printf("%10.0e %10.3f %12.2f %8.0f %8.0f %8.0f %12.2f %6s\n",
                    rate, res.ms(), res.aggregate_gbps(), corrupted, naks,
                    replays, recovery_ns / 1e3,
                    res.all_verified() ? "yes" : "NO");
    }

    if (clean_ms > 0.0) {
        std::printf("\n(rate 0 is the fault-free baseline: %.3f ms; the "
                    "plan is inactive there, so the run takes the clean "
                    "hot path)\n",
                    clean_ms);
    }

    // --- fleet resilience: endpoint hangs + poisoned completions --------
    const std::uint32_t fsize = quick ? 48 : 128;
    const unsigned repeats = quick ? 2 : 4;
    const double job_timeout_ns = quick ? 2e6 : 4e6;

    std::printf("\n----------------------------------------------------------------\n");
    std::printf("fleet resilience: endpoint hang/poison vs health-tracked "
                "failover\n");
    std::printf("GEMM per device: %ux%ux%u int8, %u batch(es), hang rate "
                "per command,\npoison rate = hang/100 per completion, "
                "job timeout %.1f ms, FLR on failure\n\n",
                fsize, fsize, fsize, repeats, job_timeout_ns / 1e6);
    std::printf("%8s %9s %10s %8s %14s %10s %7s %5s %6s\n", "hang", "failover",
                "time(ms)", "jobs ok", "goodput(job/s)", "p99(us)", "redisp",
                "FLRs", "ok");

    for (const double rate : {0.0, 0.05, 0.2, 0.5}) {
        for (const bool failover : {false, true}) {
            FleetPoint pt;
            for (unsigned r = 0; r < repeats; ++r) {
                core::SystemConfig cfg = core::SystemConfig::paper_default();
                cfg.set_num_devices(devices);
                cfg.fault_plan.seed = 40 + r;
                cfg.fault_plan.hang_rate = rate;
                cfg.fault_plan.poison_rate = rate / 100.0;
                cfg.fault_plan.job_timeout_ns = job_timeout_ns;
                cfg.fault_plan.job_max_attempts = failover ? 3 : 1;

                core::System sys(cfg);
                benchutil::WatchScope watch(sys);
                core::Runner runner(sys);
                const workload::GemmSpec spec{fsize, fsize, fsize,
                                              /*seed=*/3};
                for (std::size_t d = 0; d < devices; ++d) {
                    runner.dispatch(d, spec, core::Placement::host,
                                    /*verify=*/true);
                }
                const auto res = runner.run_dispatched();
                pt.elapsed_ms += res.ms();
                pt.redispatches += res.redispatches;
                pt.flrs += res.flrs;
                for (const auto& d : res.devices) {
                    ++pt.jobs_total;
                    if (!d.ok()) {
                        continue;
                    }
                    ++pt.jobs_ok;
                    pt.all_ok_verified &= d.verified;
                    pt.latencies_us.push_back(
                        ticks_to_ms(d.done - res.start) * 1e3);
                }
            }
            const double goodput =
                pt.elapsed_ms > 0.0
                    ? static_cast<double>(pt.jobs_ok) /
                          (pt.elapsed_ms / 1e3)
                    : 0.0;
            std::printf("%8.2f %9s %10.3f %4u/%-3u %14.1f %10.1f %7llu "
                        "%5llu %6s\n",
                        rate, failover ? "on" : "off", pt.elapsed_ms,
                        pt.jobs_ok, pt.jobs_total, goodput,
                        p99_us(pt.latencies_us),
                        static_cast<unsigned long long>(pt.redispatches),
                        static_cast<unsigned long long>(pt.flrs),
                        pt.all_ok_verified ? "yes" : "NO");
        }
    }
    std::printf("\n(every completed job is verified against the golden "
                "model at every point;\nfailover turns hung-endpoint "
                "timeouts into re-dispatched completions at the cost\nof "
                "the extra round trip — goodput recovers while p99 "
                "absorbs the retry)\n");
    return 0;
}
