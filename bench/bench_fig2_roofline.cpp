// Fig. 2 — Roofline model of the accelerator system.
//
// PCIe bandwidth fixed at 8 GB/s; the systolic array's per-tile compute
// time is swept via the override knob. Below the knee the system is
// transfer-bound (normalized execution time plateaus); above it, execution
// time grows linearly with compute time. The analytic roofline
// (src/analytic) is printed alongside the simulation.
#include "analytic/roofline.hh"
#include "bench_util.hh"

using namespace accesys;

int main(int argc, char** argv)
{
    benchutil::install_wall_watchdog(argc, argv);
    const bool quick = benchutil::quick_mode(argc, argv);
    benchutil::header("bench_fig2_roofline", "paper Fig. 2",
                      "GEMM 1024^3, PCIe 8 GB/s, sweep per-tile compute time");

    const std::uint32_t size = quick ? 512 : 1024;
    const workload::GemmSpec spec{size, size, size, 7};

    std::vector<double> compute_ns = {100,  200,  400,  800,  1200, 1600,
                                      2000, 2400, 3200, 4800, 6400, 9600};
    if (quick) {
        compute_ns = {200, 800, 1600, 2400, 4800, 9600};
    }

    // Analytic overlay: one tile moves one A strip (16*K) plus its C slice.
    analytic::RooflineParams roof;
    roof.bytes_per_tile = 16.0 * spec.k + 16 * 16 * 4;
    roof.bandwidth_gbps = 8.0;

    std::printf("%12s %16s %16s %18s\n", "compute_ns", "exec_ms",
                "norm_exec", "analytic_norm");

    double base_ms = -1.0;
    double base_pred = -1.0;
    for (const double cns : compute_ns) {
        core::SystemConfig cfg = core::SystemConfig::paper_default();
        cfg.set_pcie_target_gbps(8.0);
        cfg.accel.sa.compute_time_override_ns = cns;
        const double ms = benchutil::gemm_ms(cfg, spec,
                                             core::Placement::host);
        const double pred = analytic::tile_time_ns(roof, cns);
        if (base_ms < 0) {
            base_ms = ms;
            base_pred = pred;
        }
        std::printf("%12.0f %16.3f %16.3f %18.3f\n", cns, ms, ms / base_ms,
                    pred / base_pred);
    }

    std::printf("\nanalytic knee (transfer-bound -> compute-bound): %.0f ns\n",
                analytic::knee_compute_ns(roof));
    std::printf("paper marks the transition near 1500 ns.\n");
    return 0;
}
