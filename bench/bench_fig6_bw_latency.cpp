// Fig. 6 — Impact of memory bandwidth (a) and memory latency (b).
//
// As in the paper, the memory under test uses a simple bandwidth/latency
// model (gem5's "simple" DRAM equivalent) so one parameter can be swept
// while the other stays fixed. Data is device-side so PCIe cannot mask the
// memory. Expected: strong bandwidth sensitivity that saturates (~60%
// improvement, then plateau with only ~1.7% more from 50 to 256 GB/s);
// latency 1 -> 36 ns costs only a few percent (~4.9%).
#include "bench_util.hh"

using namespace accesys;

namespace {

double run_point(const workload::GemmSpec& spec, double gbps,
                 double latency_ns)
{
    core::SystemConfig cfg = core::SystemConfig::paper_default();
    cfg.enable_devmem = true;
    cfg.devmem_simple = true;
    cfg.devmem_simple_mem.bandwidth_gbps = gbps;
    cfg.devmem_simple_mem.latency_ns = latency_ns;
    return benchutil::gemm_ms(cfg, spec, core::Placement::devmem);
}

} // namespace

int main(int argc, char** argv)
{
    benchutil::install_wall_watchdog(argc, argv);
    const bool quick = benchutil::quick_mode(argc, argv);
    benchutil::header("bench_fig6_bw_latency", "paper Fig. 6",
                      "GEMM on device-side simple memory; sweep bandwidth "
                      "at fixed latency, then latency at fixed bandwidth");

    const std::uint32_t size = quick ? 256 : 1024;
    const workload::GemmSpec spec{size, size, size, 7};

    std::vector<double> bws = {8, 12, 16, 24, 32, 50, 64, 100, 128, 256};
    std::vector<double> lats = {1, 2, 4, 8, 12, 16, 24, 36};
    if (quick) {
        bws = {8, 32, 256};
        lats = {1, 12, 36};
    }

    std::printf("(a) bandwidth sweep at 12 ns latency\n");
    std::printf("%12s %12s %12s\n", "GB/s", "exec_ms", "norm");
    double first = -1;
    double at50 = -1;
    double last = -1;
    for (const double bw : bws) {
        const double ms = run_point(spec, bw, 12.0);
        if (first < 0) {
            first = ms;
        }
        if (bw >= 50 && at50 < 0) {
            at50 = ms;
        }
        last = ms;
        std::printf("%12.0f %12.3f %12.3f\n", bw, ms, ms / first);
    }
    std::printf("improvement to 50 GB/s: %.1f%% (paper ~60%%); "
                "50 -> %.0f GB/s: %.1f%% (paper ~1.7%%)\n\n",
                (1.0 - at50 / first) * 100.0, bws.back(),
                (1.0 - last / at50) * 100.0);

    std::printf("(b) latency sweep at 64 GB/s bandwidth\n");
    std::printf("%12s %12s %12s\n", "ns", "exec_ms", "norm");
    double lat_first = -1;
    double lat_last = -1;
    for (const double lat : lats) {
        const double ms = run_point(spec, 64.0, lat);
        if (lat_first < 0) {
            lat_first = ms;
        }
        lat_last = ms;
        std::printf("%12.0f %12.3f %12.3f\n", lat, ms, ms / lat_first);
    }
    std::printf("latency 1 -> %.0f ns overhead: %.1f%% (paper ~4.9%%)\n",
                lats.back(), (lat_last / lat_first - 1.0) * 100.0);
    return 0;
}
