// Fig. 9 — Overall Transformer performance as a function of the Non-GEMM
// workload fraction, and the DevMem-vs-PCIe crossover thresholds.
//
// Phase throughputs (P_GEMM, P_NonGEMM) are *measured* by simulating
// ViT-Base on each configuration; the composition model
//   T(w) = T_other + (1-w)/P_GEMM + w/P_NonGEMM
// then sweeps the Non-GEMM fraction and the closed-form solver reports the
// GEMM-fraction threshold above which DevMem wins. Paper thresholds:
// 34.31% (2 GB/s), 10.16% (8 GB/s), 4.27% (64 GB/s).
#include "analytic/composition.hh"
#include "bench_util.hh"

using namespace accesys;

namespace {

struct Measured {
    const char* label;
    analytic::SystemPerf perf;
};

Measured measure(const char* label, core::Placement place, double pcie_gbps,
                 const char* mem, std::uint32_t pkt,
                 const workload::VitConfig& model)
{
    core::SystemConfig cfg = core::SystemConfig::paper_default();
    cfg.set_packet_size(pkt);
    if (place == core::Placement::host) {
        cfg.set_host_dram(mem);
        cfg.set_pcie_target_gbps(pcie_gbps);
    } else {
        cfg.set_devmem(mem);
        // Control/NUMA link stays fast; data bypasses PCIe.
        cfg.set_pcie_target_gbps(64.0, 16);
    }
    core::System sys(cfg);
    benchutil::WatchScope watch(sys);
    core::Runner runner(sys);
    const auto res = runner.run_vit(model, place);

    // Unit work = one ViT inference's GEMM (resp. Non-GEMM) phase.
    analytic::SystemPerf perf;
    perf.p_gemm = 1.0 / ticks_to_ms(res.gemm_ticks);
    perf.p_nongemm = 1.0 / ticks_to_ms(res.nongemm_ticks);
    perf.t_other = ticks_to_ms(res.other_ticks());
    return Measured{label, perf};
}

} // namespace

int main(int argc, char** argv)
{
    benchutil::install_wall_watchdog(argc, argv);
    const bool quick = benchutil::quick_mode(argc, argv);
    benchutil::header("bench_fig9_crossover", "paper Fig. 9",
                      "composition model sweep of the Non-GEMM fraction; "
                      "DevMem-vs-PCIe crossovers");

    const auto model = workload::VitConfig::base();
    (void)quick;

    const Measured devmem =
        measure("DevMem", core::Placement::devmem, 0.0, "HBM2", 64, model);
    const std::vector<Measured> pcie = {
        measure("PCIe-2GB", core::Placement::host, 2.0, "DDR4", 256, model),
        measure("PCIe-8GB", core::Placement::host, 8.0, "DDR4", 256, model),
        measure("PCIe-64GB", core::Placement::host, 64.0, "HBM2", 256,
                model),
    };

    std::printf("%-10s %14s %14s   (measured phase throughputs, 1/ms)\n",
                "config", "P_GEMM", "P_NonGEMM");
    std::printf("%-10s %14.4f %14.4f\n", devmem.label, devmem.perf.p_gemm,
                devmem.perf.p_nongemm);
    for (const auto& m : pcie) {
        std::printf("%-10s %14.4f %14.4f\n", m.label, m.perf.p_gemm,
                    m.perf.p_nongemm);
    }

    std::printf("\n%8s", "w_nonG");
    std::printf(" %12s", devmem.label);
    for (const auto& m : pcie) {
        std::printf(" %12s", m.label);
    }
    std::printf("   (T_overall, ms)\n");
    for (double w = 0.0; w <= 1.0001; w += 0.1) {
        std::printf("%8.1f %12.2f", w, analytic::exec_time(devmem.perf, w));
        for (const auto& m : pcie) {
            std::printf(" %12.2f", analytic::exec_time(m.perf, w));
        }
        std::printf("\n");
    }

    std::printf("\nDevMem-vs-PCIe crossovers (DevMem wins below the "
                "Non-GEMM threshold):\n");
    // Note: the paper quotes "DevMem preferable when W_GEMM exceeds
    // 34.31/10.16/4.27%" but its own prose ("...unless the workload is
    // overwhelmingly dominated by GEMM") matches those numbers only if
    // they are read as *Non-GEMM* thresholds; both views are printed.
    const std::vector<double> paper_thresholds = {34.31, 10.16, 4.27};
    for (std::size_t i = 0; i < pcie.size(); ++i) {
        const auto w = analytic::crossover_nongemm_frac(devmem.perf,
                                                        pcie[i].perf);
        if (w.has_value()) {
            std::printf("  vs %-10s Non-GEMM < %6.2f%% (= GEMM > %6.2f%%)  "
                        "paper quotes %5.2f%%\n",
                        pcie[i].label, *w * 100.0,
                        analytic::as_gemm_threshold(*w) * 100.0,
                        paper_thresholds[i]);
        } else {
            std::printf("  vs %-10s no crossover in (0,1)\n", pcie[i].label);
        }
    }
    return 0;
}
