// Fig. 3 — Execution time for matrix size 2048 under varying per-lane
// bandwidth and lane count.
//
// The paper sweeps 2/4/8/16 lanes at 2..64 Gbps per lane and reports that
// the best configuration outperforms the worst by ~1109.9%, with scaling
// saturating once the system turns compute-bound at high lane counts.
#include "bench_util.hh"

using namespace accesys;

int main(int argc, char** argv)
{
    benchutil::install_wall_watchdog(argc, argv);
    const bool quick = benchutil::quick_mode(argc, argv);
    benchutil::header("bench_fig3_bandwidth", "paper Fig. 3",
                      "GEMM 2048^3, lanes x lane-speed sweep, 256 B packets");

    const std::uint32_t size = quick ? 512 : 2048;
    const workload::GemmSpec spec{size, size, size, 7};

    const std::vector<unsigned> lanes = {2, 4, 8, 16};
    std::vector<double> speeds = {2, 4, 8, 16, 32, 64};
    if (quick) {
        speeds = {2, 8, 64};
    }

    std::printf("%8s", "Gbps\\ln");
    for (const unsigned l : lanes) {
        std::printf(" %11s%-2u", "x", l);
    }
    std::printf("   (execution time, ms)\n");

    double worst = 0.0;
    double best = 1e300;
    for (const double s : speeds) {
        std::printf("%8.0f", s);
        for (const unsigned l : lanes) {
            core::SystemConfig cfg = core::SystemConfig::paper_default();
            cfg.pcie.lanes = l;
            cfg.pcie.lane_gbps = s;
            cfg.pcie.gen = pcie::Gen::gen3;
            const double ms =
                benchutil::gemm_ms(cfg, spec, core::Placement::host);
            worst = std::max(worst, ms);
            best = std::min(best, ms);
            std::printf(" %13.2f", ms);
        }
        std::printf("\n");
    }

    std::printf("\nworst/best execution-time ratio: %.1fx (paper: ~12.1x "
                "i.e. +1109.9%%)\n",
                worst / best);
    return 0;
}
