// Tracked perf-regression harness for the simulator's transaction hot path.
//
// Runs self-timed micro-benches (event queue, packet/TLP allocation, xbar
// forwarding) plus two end-to-end sims (a fixed 256x256x256 GEMM offload and
// the 4-endpoint contention config from bench_multi_accel_contention) and
// writes the results as flat JSON. Timed sections use best-of-N to shed
// scheduler noise. The pool counters are sampled across the measured window
// so the "zero steady-state allocation" property is recorded (and gated)
// alongside the throughput numbers.
//
// The committed BENCH_hotpath.json at the repo root records the
// before/after trajectory of each optimisation PR; `--check <that file>`
// compares the current build against the committed "after" numbers and
// exits non-zero on a >tolerance events/sec regression or any steady-state
// pool allocation. The cmake `perf_report` target runs it at the strict
// same-host default (20%); the CI perf-smoke job uses a looser tolerance
// because shared runners differ from the baseline host in absolute speed.
//
// `--profile` runs the 4-endpoint contention config with a dispatch
// observer installed and prints per-event-name and per-component event
// counts and (inclusive) time shares, plus event-queue bucket counters —
// so future perf PRs can cite the profile from the tool instead of ad-hoc
// perf runs. `--only SUBSTR` restricts the run to matching benches for
// fast iteration (not valid together with --check).
//
// Usage:
//   perf_baseline [--out FILE] [--check BASELINE.json] [--tolerance PCT]
//                 [--only SUBSTR] [--profile]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "../bench/bench_util.hh"
#include "cache/cache.hh"
#include "core/runner.hh"
#include "mem/dram_timing.hh"
#include "mem/mem_ctrl.hh"
#include "mem/packet.hh"
#include "mem/traffic_gen.hh"
#include "mem/xbar.hh"
#include "pcie/link.hh"
#include "pcie/tlp.hh"
#include "sim/simulator.hh"
#include "workload/request_gen.hh"

namespace {

using namespace accesys;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// One measured metric, emitted as `"name": value` JSON.
struct Metric {
    std::string name;
    double value;
};

std::vector<Metric> g_metrics;

void record(const std::string& name, double value)
{
    g_metrics.push_back(Metric{name, value});
    std::printf("  %-44s %14.0f\n", name.c_str(), value);
}

/// Combined heap allocations of every transaction pool in the process —
/// the per-domain pools included — so the zero-steady-state-allocation
/// gate holds for parallel runs too.
std::uint64_t pool_allocs()
{
    return mem::PacketPool::lifetime_allocs() +
           pcie::TlpPool::lifetime_allocs();
}

/// --threads override for the end-to-end benches (0 = ACCESYS_THREADS /
/// config default). The committed --check gates assume the serial default.
unsigned g_threads = 0;

// --- bm_event_queue ---------------------------------------------------------
// Two traffic shapes through a bare EventQueue, reported separately so the
// regression gate reflects both:
//   * burst: wide same-window fanouts with reschedule/deschedule churn (the
//     retry/backpressure pattern) drained through step() — heap-heavy;
//   * steady: a small set of self-rescheduling events drained through
//     run() — the link/egress ping-pong pattern real sim traffic is made
//     of, which exercises the cached-top and same-tick batch paths.
void bm_event_queue()
{
    constexpr int kFanout = 256;
    constexpr std::uint64_t kTarget = 4'000'000;

    {
        EventQueue q;
        std::uint64_t fired = 0;
        std::vector<std::unique_ptr<Event>> events;
        events.reserve(kFanout);
        for (int i = 0; i < kFanout; ++i) {
            events.push_back(std::make_unique<Event>(
                "e" + std::to_string(i), [&fired] { ++fired; }));
        }
        const auto t0 = Clock::now();
        while (fired < kTarget) {
            for (int i = 0; i < kFanout; ++i) {
                q.schedule(*events[i],
                           q.now() + 1 + static_cast<Tick>(i % 7));
            }
            // Reschedule a slice before running (retry/backpressure).
            for (int i = 0; i < kFanout; i += 8) {
                q.reschedule(*events[i], q.now() + 9);
            }
            while (q.step()) {
            }
        }
        record("bm_event_queue.burst_events_per_sec",
               static_cast<double>(fired) / seconds_since(t0));
    }

    {
        // Steady: 8 events that keep rescheduling themselves a few ticks
        // out, plus one same-tick responder each (the schedule_now chain).
        constexpr int kChains = 8;
        EventQueue q;
        std::uint64_t fired = 0;
        struct Chain {
            EventQueue* q;
            std::uint64_t* fired;
            Event tick_ev;
            Event resp_ev;
        };
        std::vector<std::unique_ptr<Chain>> chains;
        for (int i = 0; i < kChains; ++i) {
            auto c = std::make_unique<Chain>();
            c->q = &q;
            c->fired = &fired;
            c->tick_ev.set_name("tick" + std::to_string(i));
            c->tick_ev.set_raw_callback(
                [](void* p) {
                    auto* ch = static_cast<Chain*>(p);
                    ++*ch->fired;
                    ch->q->schedule_at_current_tick(ch->resp_ev);
                },
                c.get());
            c->resp_ev.set_name("resp" + std::to_string(i));
            c->resp_ev.set_raw_callback(
                [](void* p) {
                    auto* ch = static_cast<Chain*>(p);
                    ++*ch->fired;
                    ch->q->schedule(ch->tick_ev,
                                    ch->q->now() + 3);
                },
                c.get());
            chains.push_back(std::move(c));
        }
        const auto t0 = Clock::now();
        for (auto& c : chains) {
            q.schedule(c->tick_ev, q.now() + 1);
        }
        while (fired < kTarget) {
            (void)q.run(q.now() + 1024);
        }
        record("bm_event_queue.steady_events_per_sec",
               static_cast<double>(fired) / seconds_since(t0));
    }
}

// --- bm_packet_alloc --------------------------------------------------------
// Allocate/release mem::Packet and pcie::Tlp objects the way the fabric hot
// path does: route pushes, small MMIO payloads, response conversion. With
// the pools warm this is pure recycle traffic.
void bm_packet_alloc()
{
    constexpr std::uint64_t kIters = 2'000'000;
    std::uint64_t sink = 0;

    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < kIters; ++i) {
        auto pkt = mem::packet_pool().make_read(0x1000 + (i % 4096) * 64, 64);
        pkt->push_route(1);
        pkt->push_route(3);
        pkt->make_response();
        sink += pkt->pop_route();
        sink += pkt->pop_route();

        auto tlp = pcie::tlp_pool().make_mem_write(0x2000 + (i % 1024) * 8,
                                                   8, 1);
        sink += tlp->length;
    }
    const double secs = seconds_since(t0);
    if (sink == 0) { // defeat whole-loop elision
        std::printf("(unreachable)\n");
    }
    record("bm_packet_alloc.items_per_sec",
           static_cast<double>(2 * kIters) / secs);
}

// --- bm_xbar_forward --------------------------------------------------------
// Steady-state timing forwarding: TrafficGen -> Xbar -> SimpleMem, the
// minimal request/response round trip every larger topology is made of.
// Runs twice: the first pass warms the pools, the second asserts that
// forwarding performs zero pool heap allocations.
void bm_xbar_forward()
{
    double best_secs = 1e100;
    std::uint64_t events = 0;
    std::uint64_t steady_allocs = 0;
    constexpr int kPasses = 3;
    mem::TrafficGenParams tp;
    tp.total_bytes = 16 * kMiB;
    tp.req_bytes = 64;
    tp.window = 32;

    for (int pass = 0; pass < kPasses; ++pass) {
        Simulator sim;
        mem::Xbar xbar(sim, "xbar", mem::XbarParams{});
        mem::SimpleMemParams smp;
        const mem::AddrRange range(0, 64 * kMiB);
        mem::SimpleMem memory(sim, "mem", smp, range);
        mem::TrafficGen gen(sim, "gen", tp);

        gen.port().bind(xbar.add_upstream("cpu"));
        xbar.add_downstream("mem", range).bind(memory.port());
        sim.startup();

        const std::uint64_t allocs0 = pool_allocs();
        const auto t0 = Clock::now();
        gen.start([&sim] { sim.request_exit("done"); });
        const auto res = sim.run();
        const double secs = seconds_since(t0);
        if (pass > 0) { // pools warm: measure
            best_secs = std::min(best_secs, secs);
            events = res.events;
            steady_allocs = pool_allocs() - allocs0;
        }
    }

    const double reqs = static_cast<double>(tp.total_bytes / tp.req_bytes);
    record("bm_xbar_forward.reqs_per_sec", reqs / best_secs);
    record("bm_xbar_forward.events_per_sec",
           static_cast<double>(events) / best_secs);
    record("bm_xbar_forward.steady_pool_allocs",
           static_cast<double>(steady_allocs));
}

// --- bm_cache_fill ----------------------------------------------------------
// Cache fill/evict model under a streaming DMA shape: a demand-miss train
// (line-sized reads over a footprint larger than the cache, so every fill
// victimises a line) interleaved with whole-line write phases that install
// dirty lines and drive eviction/writeback churn on the following read
// pass. TrafficGen -> Cache -> SimpleMem; exercises the MSHR pool, the
// slot-tagged fill completion, victim selection and the batched writeback
// flush. First pass warms the pools; the zero steady-state allocation
// invariant is recorded like the other forwarding benches.
void bm_cache_fill()
{
    double best_secs = 1e100;
    std::uint64_t fills = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t steady_allocs = 0;
    constexpr int kPasses = 3;

    cache::CacheParams cp;
    cp.size_bytes = 64 * kKiB;
    cp.assoc = 8;
    cp.line_bytes = 64;
    cp.mshrs = 16;

    mem::TrafficGenParams read_tp;
    read_tp.total_bytes = 8 * kMiB;
    read_tp.working_set = 8 * kMiB; // 128x the cache: every read misses
    read_tp.req_bytes = 64;
    read_tp.window = 16;

    mem::TrafficGenParams write_tp = read_tp;
    write_tp.write_fraction = 1.0; // whole-line writes: install + evict

    for (int pass = 0; pass < kPasses; ++pass) {
        const std::uint64_t allocs0 = pool_allocs();
        double secs = 0.0;
        std::uint64_t pass_fills = 0;
        std::uint64_t pass_wbs = 0;
        for (const auto* tp : {&write_tp, &read_tp}) {
            Simulator sim;
            cache::Cache c(sim, "c", cp);
            const mem::AddrRange range(0, 64 * kMiB);
            mem::SimpleMemParams smp;
            mem::SimpleMem memory(sim, "mem", smp, range);
            mem::TrafficGen gen(sim, "gen", *tp);
            gen.port().bind(c.cpu_side());
            c.mem_side().bind(memory.port());
            sim.startup();
            const auto t0 = Clock::now();
            gen.start([&sim] { sim.request_exit("done"); });
            (void)sim.run();
            secs += seconds_since(t0);
            pass_fills += c.misses();
            pass_wbs += static_cast<std::uint64_t>(
                sim.stats().value("c.writebacks"));
        }
        if (pass > 0) { // pools warm: measure
            if (secs < best_secs) {
                best_secs = secs;
                fills = pass_fills;
                writebacks = pass_wbs;
            }
            steady_allocs += pool_allocs() - allocs0;
        }
    }

    record("bm_cache_fill.lines_per_sec",
           static_cast<double>(fills + writebacks) / best_secs);
    record("bm_cache_fill.steady_pool_allocs",
           static_cast<double>(steady_allocs));
}

// --- bm_dram_stream ---------------------------------------------------------
// DramTiming component model alone: streaming multi-burst access_run walks
// (the MemCtrl::service_dram pattern) plus a row-conflict-heavy random
// pattern. Measures the bank-state machine itself — no events, no ports.
void bm_dram_stream()
{
    mem::DramParams p = mem::ddr4_2400();
    mem::DramTiming dram(p);
    const std::uint32_t atom = p.burst_bytes();
    constexpr std::uint64_t kRuns = 400'000;
    constexpr std::uint64_t kBurstsPerRun = 8; // a 512 B DMA chunk
    std::uint64_t sink = 0;

    const auto t0 = Clock::now();
    Tick t = 0;
    Addr a = 0;
    for (std::uint64_t i = 0; i < kRuns; ++i) {
        // Mostly-sequential stream with a periodic row jump (the FR-FCFS
        // fallback shape): one access_run per 8-burst chunk.
        const auto acc = dram.access_run(a, kBurstsPerRun, (i & 7) == 7, t);
        sink += acc.data_ready;
        t = acc.data_ready;
        a += atom * kBurstsPerRun;
        if ((i & 63) == 63) {
            a += p.row_bytes * p.banks; // force a bank conflict
        }
    }
    const double secs = seconds_since(t0);
    if (sink == 0) {
        std::printf("(unreachable)\n");
    }
    record("bm_dram_stream.bursts_per_sec",
           static_cast<double>(kRuns * kBurstsPerRun) / secs);
}

// --- bm_link_credit ---------------------------------------------------------
// Credit-gated link throughput: a saturating sender pushes MWr TLPs through
// a PcieLink into a consuming node that releases ingress immediately. With
// lazy credit accounting the uncongested direction elides every credit
// event; the sender still stalls (and is kicked) whenever the in-flight
// window exceeds the advertised credits, so both paths are exercised.
void bm_link_credit()
{
    struct Consumer final : pcie::PcieNode {
        Simulator* sim = nullptr;
        pcie::PciePort* port = nullptr;
        std::uint64_t received = 0;
        std::uint64_t target = 0;
        void recv_tlp(unsigned, pcie::TlpPtr tlp) override
        {
            port->release_ingress(tlp->payload_bytes());
            if (++received >= target) {
                sim->request_exit("done");
            }
        }
    };
    struct Sender final : pcie::PcieNode {
        pcie::PciePort* port = nullptr;
        std::uint64_t sent = 0;
        std::uint64_t target = 0;
        void pump()
        {
            while (sent < target) {
                auto tlp = pcie::tlp_pool().make_mem_write(
                    0x1000 + (sent % 512) * 64, 64, 1);
                if (!port->can_send(*tlp)) {
                    return; // starved: credit_avail will kick us
                }
                port->send(std::move(tlp));
                ++sent;
            }
        }
        void recv_tlp(unsigned, pcie::TlpPtr) override {}
        void credit_avail(unsigned) override { pump(); }
    };

    constexpr std::uint64_t kTlps = 400'000;
    double best = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
        Simulator sim;
        pcie::LinkParams lp; // gen2 x4, 16 KiB data credits
        pcie::PcieLink link(sim, "link", lp);
        Sender tx;
        Consumer rx;
        tx.port = &link.end_a();
        rx.sim = &sim;
        rx.port = &link.end_b();
        link.end_a().attach(tx, 0);
        link.end_b().attach(rx, 0);
        tx.target = kTlps;
        rx.target = kTlps;
        sim.startup();
        const auto t0 = Clock::now();
        tx.pump();
        (void)sim.run();
        const double secs = seconds_since(t0);
        best = std::min(best, secs);
        if (rx.received < kTlps) {
            // A short run means the credit path stalled — the exact
            // regression this bench exists to catch. Dividing the full
            // target by a truncated wall time would *inflate* the metric,
            // so fail hard instead of recording a lie.
            std::fprintf(stderr,
                         "bm_link_credit: credit flow stalled after %llu of "
                         "%llu TLPs — aborting\n",
                         static_cast<unsigned long long>(rx.received),
                         static_cast<unsigned long long>(kTlps));
            std::exit(3);
        }
    }
    record("bm_link_credit.tlps_per_sec",
           static_cast<double>(kTlps) / best);
}

// --- end-to-end GEMM --------------------------------------------------------
void e2e_gemm_256()
{
    constexpr int kRepeats = 4;
    double best = 1e100;
    std::uint64_t events = 0;
    for (int r = 0; r < kRepeats; ++r) {
        core::SystemConfig cfg = core::SystemConfig::paper_default();
        if (g_threads != 0) {
            cfg.threads = g_threads;
        }
        core::System sys(cfg);
        benchutil::WatchScope watch(sys);
        core::Runner runner(sys);
        const auto t0 = Clock::now();
        (void)runner.run_gemm(workload::GemmSpec{256, 256, 256, 3},
                              core::Placement::host);
        const double secs = seconds_since(t0);
        if (secs < best) {
            best = secs;
            events = sys.sim().queue().events_processed();
        }
    }
    record("e2e_gemm_256.wall_ms", best * 1000.0);
    record("e2e_gemm_256.events_per_sec", static_cast<double>(events) / best);
}

// --- dispatch profiler (--profile) ------------------------------------------
// Records per-event-name dispatch counts and inclusive wall time (the
// interval from one dispatch to the next is attributed to the earlier
// event: callback + schedule + queue machinery). Aggregates by component
// (name prefix up to the first '.').
class Profiler final : public EventQueue::DispatchObserver {
  public:
    void on_dispatch(const Event& ev) override
    {
        const auto t = Clock::now();
        if (last_ != nullptr) {
            Slot& s = slots_[*last_];
            ++s.count;
            s.secs += std::chrono::duration<double>(t - last_t_).count();
        }
        last_ = &ev.name();
        last_t_ = t;
    }

    void report() const
    {
        struct Row {
            std::string name;
            std::uint64_t count;
            double secs;
        };
        double total = 0.0;
        std::uint64_t events = 0;
        std::map<std::string, Row> components;
        std::vector<Row> rows;
        for (const auto& [name, slot] : slots_) {
            rows.push_back(Row{name, slot.count, slot.secs});
            total += slot.secs;
            events += slot.count;
            const std::string comp = name.substr(0, name.find('.'));
            Row& c = components[comp];
            c.name = comp;
            c.count += slot.count;
            c.secs += slot.secs;
        }
        const auto by_time = [](const Row& a, const Row& b) {
            return a.secs > b.secs;
        };
        std::sort(rows.begin(), rows.end(), by_time);
        std::vector<Row> comp_rows;
        for (const auto& [_, row] : components) {
            comp_rows.push_back(row);
        }
        std::sort(comp_rows.begin(), comp_rows.end(), by_time);

        std::printf("\nprofile: %llu dispatches, %.3f s attributed\n",
                    static_cast<unsigned long long>(events), total);
        std::printf("\n  %-36s %12s %9s %7s\n", "component", "events",
                    "ms", "share");
        for (const auto& r : comp_rows) {
            std::printf("  %-36s %12llu %9.1f %6.1f%%\n", r.name.c_str(),
                        static_cast<unsigned long long>(r.count),
                        r.secs * 1e3, 100.0 * r.secs / total);
        }
        std::printf("\n  %-36s %12s %9s %7s\n", "event (top 24)", "events",
                    "ms", "share");
        for (std::size_t i = 0; i < rows.size() && i < 24; ++i) {
            const Row& r = rows[i];
            std::printf("  %-36s %12llu %9.1f %6.1f%%\n", r.name.c_str(),
                        static_cast<unsigned long long>(r.count),
                        r.secs * 1e3, 100.0 * r.secs / total);
        }
    }

  private:
    struct Slot {
        std::uint64_t count = 0;
        double secs = 0.0;
    };
    std::map<std::string, Slot> slots_;
    const std::string* last_ = nullptr;
    Clock::time_point last_t_;
};

/// One profiled contention run (4 endpoints, size^3 GEMMs): per-component
/// event counts and time shares from the dispatch observer.
void profile_contention(std::uint32_t size)
{
    core::SystemConfig cfg = core::SystemConfig::paper_default();
    cfg.set_num_devices(4);
    if (g_threads != 0) {
        cfg.threads = g_threads;
    }
    core::System sys(cfg);
    benchutil::WatchScope watch(sys);
    core::Runner runner(sys);
    const workload::GemmSpec spec{size, size, size, 3};
    for (std::size_t d = 0; d < 4; ++d) {
        runner.dispatch(d, spec, core::Placement::host);
    }
    Profiler prof;
    sys.sim().queue().set_dispatch_observer(&prof);
    (void)runner.run_dispatched();
    sys.sim().queue().set_dispatch_observer(nullptr);
    std::printf("\nprofile of contention_4ep (%ux%ux%u):\n", size, size,
                size);
    prof.report();
    const auto& q = sys.sim().queue();
    std::printf("\nevent-queue buckets: %llu scheduled, %llu dispatched, "
                "%llu express hits, %llu express spills\n",
                static_cast<unsigned long long>(q.events_scheduled()),
                static_cast<unsigned long long>(q.events_processed()),
                static_cast<unsigned long long>(q.express_hits()),
                static_cast<unsigned long long>(q.express_spills()));
    std::printf("event-core counters: %llu heap pushes, %llu near-ring "
                "hits, %llu express dispatches\n",
                static_cast<unsigned long long>(q.heap_pushes()),
                static_cast<unsigned long long>(q.near_ring_hits()),
                static_cast<unsigned long long>(q.express_hits()));
    std::printf("parallel core: %llu barrier waits, %llu cross-domain "
                "handoffs, %llu read fences (threads=%u, %zu domains)\n",
                static_cast<unsigned long long>(sys.sim().barrier_waits()),
                static_cast<unsigned long long>(sys.sim().handoffs()),
                static_cast<unsigned long long>(sys.sim().fence_waits()),
                sys.sim().threads(), sys.sim().domain_count());
}

// --- 4-endpoint contention config -------------------------------------------
// Mirrors bench_multi_accel_contention's N=4 row: four MatrixFlow endpoints
// behind one switch on the shared x4 uplink, one concurrent GEMM each. The
// first repeat warms the pools; steady_pool_allocs reports the heap
// allocations the pools performed across the later (measured) repeats.
void contention_4ep(const char* label, std::uint32_t size, int repeats,
                    unsigned threads = 0, double corrupt_rate = 0.0)
{
    double best = 1e100;
    std::uint64_t events = 0;
    std::uint64_t steady_allocs = 0;
    for (int r = 0; r < repeats; ++r) {
        core::SystemConfig cfg = core::SystemConfig::paper_default();
        cfg.set_num_devices(4);
        cfg.threads = threads != 0 ? threads
                                   : g_threads != 0 ? g_threads
                                                    : cfg.threads;
        if (corrupt_rate > 0.0) {
            cfg.fault_plan.seed = 1;
            cfg.fault_plan.corrupt_rate = corrupt_rate;
            cfg.fault_plan.max_replays = 64;
        }
        core::System sys(cfg);
        benchutil::WatchScope watch(sys);
        core::Runner runner(sys);
        const workload::GemmSpec spec{size, size, size, 3};
        for (std::size_t d = 0; d < 4; ++d) {
            runner.dispatch(d, spec, core::Placement::host);
        }
        const std::uint64_t allocs0 = pool_allocs();
        const auto t0 = Clock::now();
        (void)runner.run_dispatched();
        const double secs = seconds_since(t0);
        if (r > 0) {
            steady_allocs += pool_allocs() - allocs0;
            if (secs < best) {
                best = secs;
                events = sys.sim().queue().events_processed();
            }
        }
    }
    const std::string prefix = label;
    if (corrupt_rate > 0.0) {
        // Faulty leg: the fault plan activates replay-buffer accounting on
        // every link, so this measures the whole error-recovery tax under
        // contention. Informational, never --check gated: the clean-path
        // metrics above already gate the zero-fault-tax contract, and
        // replay TLP clones legitimately warm the TLP pool in-run.
        record(prefix + ".wall_ms_faulty", best * 1000.0);
        return;
    }
    if (threads != 0) {
        // Parallel leg: each repeat constructs a fresh System whose
        // per-domain pools start cold, so in-run allocations here are
        // construction warm-up, not steady-state violations — record the
        // wall time only. The metric is informational and never --check
        // gated: the tN/t1 ratio is a property of the host's core count.
        record(prefix + ".wall_ms_t" + std::to_string(threads),
               best * 1000.0);
        return;
    }
    record(prefix + ".wall_ms", best * 1000.0);
    record(prefix + ".events_per_sec", static_cast<double>(events) / best);
    record(prefix + ".steady_pool_allocs",
           static_cast<double>(steady_allocs));
}

// --- checkpoint round-trip cost ---------------------------------------------
// Wall cost of writing and re-loading a mid-run snapshot of the 4-endpoint
// contention config, plus its size on disk — the robustness tax a long run
// pays per checkpoint interval. Informational, never --check gated: file
// IO on shared runners is far noisier than the event-loop metrics, and
// the zero-clean-path-tax contract is enforced by the gated metrics above
// (checkpointing costs nothing until a snapshot is actually requested).
void ckpt_cost_4ep()
{
    core::SystemConfig cfg = core::SystemConfig::paper_default();
    cfg.set_num_devices(4);
    if (g_threads != 0) {
        cfg.threads = g_threads;
    }
    const workload::GemmSpec spec{256, 256, 256, 3};
    const std::string path = "perf_ckpt.ckpt";

    Tick end = 0;
    {
        core::System sys(cfg);
        benchutil::WatchScope watch(sys);
        core::Runner runner(sys);
        for (std::size_t d = 0; d < 4; ++d) {
            runner.dispatch(d, spec, core::Placement::host);
        }
        (void)runner.run_dispatched();
        end = sys.sim().now();
    }

    {
        core::System sys(cfg);
        benchutil::WatchScope watch(sys);
        core::Runner runner(sys);
        for (std::size_t d = 0; d < 4; ++d) {
            runner.dispatch(d, spec, core::Placement::host);
        }
        sys.sim().request_checkpoint_at(path, end / 2);
        const auto res = runner.run_dispatched();
        if (!res.checkpointed) {
            std::fprintf(stderr,
                         "ckpt_cost_4ep: run finished before the midpoint "
                         "checkpoint — skipping\n");
            return;
        }
        // The run loop already wrote the armed snapshot; re-write it at
        // the same quiescent point, timed, best-of-3.
        double best = 1e100;
        for (int r = 0; r < 3; ++r) {
            const auto t0 = Clock::now();
            sys.sim().checkpoint(path);
            best = std::min(best, seconds_since(t0));
        }
        record("ckpt_4ep_256.save_ms", best * 1000.0);
        std::ifstream f(path, std::ios::binary | std::ios::ate);
        record("ckpt_4ep_256.bytes", static_cast<double>(f.tellg()));
    }

    // Restore cost: deserialization + event re-insertion into a freshly
    // built System with the identical dispatch re-staged (the restore
    // protocol's precondition). One restore per System (a second would
    // double-insert the checkpointed events), so best-of-3 constructs
    // three.
    double best = 1e100;
    for (int r = 0; r < 3; ++r) {
        core::System sys(cfg);
        benchutil::WatchScope watch(sys);
        core::Runner runner(sys);
        for (std::size_t d = 0; d < 4; ++d) {
            runner.dispatch(d, spec, core::Placement::host);
        }
        const auto t0 = Clock::now();
        runner.restore_dispatched(path);
        best = std::min(best, seconds_since(t0));
    }
    record("ckpt_4ep_256.restore_ms", best * 1000.0);
    std::remove(path.c_str());
}

// --- serving overload goodput -----------------------------------------------
// The pinned serving scenario from bench_serving's golden mode: a seeded
// two-tenant Poisson mix at 1.5x the 4-endpoint fleet's capacity through
// Runner::serve with a bounded shed_oldest admission queue. Records the
// fleet's goodput under overload — the jobs/s of useful completions once
// shedding is active. Informational, never --check gated: goodput tracks
// the serving policy and service-time model rather than the event-loop
// hot path, and the scenario's bit-exact behavior is already locked by
// the committed GOLDEN_serving.json byte-compare in CI.
void serving_overload()
{
    core::SystemConfig cfg = core::SystemConfig::paper_default();
    cfg.set_num_devices(4);
    if (g_threads != 0) {
        cfg.threads = g_threads;
    }
    workload::RequestGenConfig gcfg;
    gcfg.seed = 11;
    gcfg.horizon_ns = 1e5;
    workload::TenantSpec interactive;
    interactive.name = "interactive";
    interactive.rate_jobs_per_s = 6e5 * 2.0 / 3.0;
    interactive.mix = {workload::GemmSpec{16, 16, 16},
                       workload::GemmSpec{32, 32, 32}};
    workload::TenantSpec batch;
    batch.name = "batch";
    batch.rate_jobs_per_s = 6e5 / 3.0;
    batch.mix = {workload::GemmSpec{48, 48, 48}};
    gcfg.tenants.push_back(interactive);
    gcfg.tenants.push_back(batch);

    core::System sys(cfg);
    benchutil::WatchScope watch(sys);
    workload::RequestGen gen(sys.sim(), gcfg);
    core::Runner runner(sys);
    core::ServingConfig scfg;
    scfg.policy = core::ShedPolicy::shed_oldest;
    scfg.queue_capacity = 8;
    const auto res = runner.serve(gen, scfg);
    if (!res.accounted() || res.shed == 0) {
        std::fprintf(stderr,
                     "serving_overload: scenario lost its overload or its "
                     "accounting — metric skipped\n");
        return;
    }
    record("serving_overload.goodput_jobs_per_s",
           res.goodput_jobs_per_s());
}

// --- JSON out / regression check --------------------------------------------

void write_json(const std::string& path)
{
    std::ofstream os(path);
    os << "{\n  \"schema\": \"accesys-perf-hotpath-v1\",\n";
    for (std::size_t i = 0; i < g_metrics.size(); ++i) {
        os << "  \"" << g_metrics[i].name << "\": " << g_metrics[i].value
           << (i + 1 < g_metrics.size() ? "," : "") << "\n";
    }
    os << "}\n";
    std::printf("\nwrote %s\n", path.c_str());
}

/// Find `"key"` inside `text` at or after `from` and parse the number that
/// follows its ':'. Returns false when absent. Tolerant by design: the
/// committed baseline nests the same flat metric names under "before"/
/// "after" objects, so the caller anchors `from` at the section first.
bool find_number(const std::string& text, const std::string& key,
                 std::size_t from, double& out)
{
    const std::string needle = "\"" + key + "\"";
    const std::size_t k = text.find(needle, from);
    if (k == std::string::npos) {
        return false;
    }
    const std::size_t colon = text.find(':', k + needle.size());
    if (colon == std::string::npos) {
        return false;
    }
    out = std::strtod(text.c_str() + colon + 1, nullptr);
    return true;
}

/// Compare current events/sec-style metrics against the committed baseline's
/// "after" section; a drop beyond `tolerance` (fraction) fails the check, as
/// does any steady-state pool heap allocation in the current run.
int check_against(const std::string& baseline_path, double tolerance)
{
    std::ifstream is(baseline_path);
    if (!is) {
        std::fprintf(stderr, "check: cannot read %s\n",
                     baseline_path.c_str());
        return 2;
    }
    std::stringstream ss;
    ss << is.rdbuf();
    const std::string text = ss.str();

    // Throughput metrics gate the check. Wall time is additionally gated
    // (lower is better) for the flagship contention config: event-eliding
    // optimizations (lazy credits, egress fusion) lower events/sec while
    // making the simulator *faster*, so the events/sec gates alone would
    // punish exactly the changes that matter — wall time is the
    // first-class metric that rewards them.
    struct Gate {
        const char* name;
        bool lower_is_better; ///< wall time: fail above baseline*(1+tol)
    };
    const Gate gated[] = {
        {"bm_event_queue.burst_events_per_sec", false},
        {"bm_event_queue.steady_events_per_sec", false},
        {"bm_packet_alloc.items_per_sec", false},
        {"bm_xbar_forward.events_per_sec", false},
        {"bm_cache_fill.lines_per_sec", false},
        {"bm_dram_stream.bursts_per_sec", false},
        {"bm_link_credit.tlps_per_sec", false},
        {"e2e_gemm_256.events_per_sec", false},
        {"contention_4ep.events_per_sec", false},
        {"contention_4ep_512.events_per_sec", false},
        {"contention_4ep_512.wall_ms", true},
    };

    std::size_t anchor = text.find("\"after\"");
    if (anchor == std::string::npos) {
        anchor = 0; // flat file: metrics at top level
    }

    int failures = 0;
    for (const Gate& gate : gated) {
        double want = 0.0;
        if (!find_number(text, gate.name, anchor, want) || want <= 0.0) {
            std::fprintf(stderr, "check: baseline lacks %s — skipping\n",
                         gate.name);
            continue;
        }
        double got = 0.0;
        for (const Metric& m : g_metrics) {
            if (m.name == gate.name) {
                got = m.value;
            }
        }
        const bool ok = gate.lower_is_better
                            ? got > 0.0 && got <= want * (1.0 + tolerance)
                            : got >= want * (1.0 - tolerance);
        std::printf("  check %-42s %14.1f vs baseline %14.1f %s\n",
                    gate.name, got, want, ok ? "ok" : "REGRESSED");
        if (!ok) {
            ++failures;
        }
    }

    // Machine-independent invariant: steady-state forwarding allocates no
    // packet/TLP heap memory.
    for (const Metric& m : g_metrics) {
        if (m.name.find("steady_pool_allocs") != std::string::npos &&
            m.value != 0.0) {
            std::printf("  check %-42s %14.0f expected 0 REGRESSED\n",
                        m.name.c_str(), m.value);
            ++failures;
        }
    }
    return failures == 0 ? 0 : 1;
}

} // namespace

int main(int argc, char** argv)
{
    benchutil::install_wall_watchdog(argc, argv);
    std::string out_path = "BENCH_hotpath.json";
    std::string check_path;
    std::string only;
    bool profile = false;
    double tolerance = 0.20;
    int attempts = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
            check_path = argv[++i];
        } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
            tolerance = std::strtod(argv[++i], nullptr) / 100.0;
        } else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc) {
            only = argv[++i];
        } else if (std::strcmp(argv[i], "--profile") == 0) {
            profile = true;
        } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            g_threads = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--attempts") == 0 && i + 1 < argc) {
            attempts = std::atoi(argv[++i]);
            if (attempts < 1) {
                attempts = 1;
            }
        } else if (std::strcmp(argv[i], "--max-wall-ms") == 0 &&
                   i + 1 < argc) {
            ++i; // consumed by install_wall_watchdog above
        } else if (std::strncmp(argv[i], "--max-wall-ms=", 14) == 0) {
            // consumed by install_wall_watchdog above
        } else {
            std::fprintf(stderr,
                         "usage: %s [--out FILE] [--check BASELINE.json] "
                         "[--tolerance PCT] [--only SUBSTR] [--profile] "
                         "[--threads N] [--attempts N]\n"
                         "  --out FILE        write metrics JSON to FILE "
                         "(default BENCH_hotpath.json)\n"
                         "  --check BASELINE  compare against BASELINE's "
                         "\"after\" section; non-zero exit on a "
                         "regression beyond the tolerance\n"
                         "  --tolerance PCT   regression tolerance in "
                         "percent (default 20)\n"
                         "  --only SUBSTR     run only benches whose name "
                         "contains SUBSTR (not valid with --check)\n"
                         "  --profile         run the 4-endpoint contention "
                         "config under the dispatch observer and print "
                         "per-event/per-component counts and time shares\n"
                         "  --threads N       worker-thread budget for the "
                         "end-to-end benches (default: ACCESYS_THREADS; "
                         "--check gates assume the serial default)\n"
                         "  --attempts N      re-run the suite up to N "
                         "times, keeping each metric's best (CI flake "
                         "hardening; wall times keep their fastest)\n"
                         "  --max-wall-ms N   watchdog: hard-exit with "
                         "status 124 if the whole run exceeds N ms of "
                         "wall time\n",
                         argv[0]);
            return 2;
        }
    }
    if (!only.empty() && !check_path.empty()) {
        std::fprintf(stderr,
                     "--only skips benches, so --check would compare "
                     "against missing metrics; use one or the other\n");
        return 2;
    }

    if (profile) {
        profile_contention(256);
        return 0;
    }

    const auto want = [&only](const char* name) {
        return only.empty() || std::string(name).find(only)
                                   != std::string::npos;
    };

    const auto run_suite = [&want] {
        if (want("bm_event_queue")) {
            bm_event_queue();
        }
        if (want("bm_packet_alloc")) {
            bm_packet_alloc();
        }
        if (want("bm_xbar_forward")) {
            bm_xbar_forward();
        }
        if (want("bm_cache_fill")) {
            bm_cache_fill();
        }
        if (want("bm_dram_stream")) {
            bm_dram_stream();
        }
        if (want("bm_link_credit")) {
            bm_link_credit();
        }
        if (want("e2e_gemm_256")) {
            e2e_gemm_256();
        }
        // The contention bench's 4-endpoint rows: quick (256) and the
        // full 512^3 configuration bench_multi_accel_contention reports.
        if (want("contention_4ep")) {
            contention_4ep("contention_4ep", 256, 4);
        }
        if (want("contention_4ep_512")) {
            contention_4ep("contention_4ep_512", 512, 3);
        }
        // The same flagship config on a 4-thread worker budget — the
        // parallel event core's speedup metric. Recorded, not gated by
        // --check: the t4/t1 ratio is a property of the host's core
        // count (see the note in BENCH_hotpath.json).
        if (want("contention_4ep_512_t4")) {
            contention_4ep("contention_4ep_512", 512, 3, 4);
        }
        // The flagship config with a fixed 1e-6 seeded TLP-corruption
        // rate: the link-level replay protocol's overhead under
        // contention. Informational, never --check gated.
        if (want("contention_4ep_512_faulty")) {
            contention_4ep("contention_4ep_512", 512, 3, 0, 1e-6);
        }
        // Checkpoint save/restore wall cost + snapshot size on the
        // contention config. Informational, never --check gated.
        if (want("ckpt_cost_4ep")) {
            ckpt_cost_4ep();
        }
        // Goodput of the pinned serving-under-overload scenario.
        // Informational, never --check gated.
        if (want("serving_overload")) {
            serving_overload();
        }
    };

    // Flake hardening: up to `attempts` full suite runs, with the check
    // re-evaluated after each one, so a noisy window on a shared runner
    // retries instead of failing a good build. Throughput metrics keep
    // their best value across attempts (each bench is already an internal
    // best-of-repeats, so the gate compares a best-of-attempts over
    // best-of-repeats against the baseline floor). steady_pool_allocs
    // also keeps its max — which for an invariant that must be zero is
    // the *worst* value: noise can never mask a real allocation.
    int rc = 0;
    for (int attempt = 1; attempt <= attempts; ++attempt) {
        std::printf("perf_baseline: simulator hot-path benchmarks%s\n\n",
                    attempt > 1 ? " (retry)" : "");
        const std::vector<Metric> prev = std::move(g_metrics);
        g_metrics.clear();
        run_suite();
        for (const Metric& old : prev) {
            for (Metric& m : g_metrics) {
                if (m.name == old.name) {
                    // wall_ms is lower-is-better (keep the fastest run);
                    // throughput keeps its best and the zero-allocation
                    // invariant its worst — both are max.
                    m.value = m.name.find("wall_ms") != std::string::npos
                                  ? std::min(m.value, old.value)
                                  : std::max(m.value, old.value);
                }
            }
        }
        write_json(out_path);
        if (check_path.empty()) {
            return 0;
        }
        std::printf("\nregression check vs %s (tolerance %.0f%%, "
                    "attempt %d/%d)\n",
                    check_path.c_str(), tolerance * 100.0, attempt,
                    attempts);
        rc = check_against(check_path, tolerance);
        if (rc == 0) {
            return 0;
        }
        if (attempt < attempts) {
            std::printf("\ncheck failed — retrying (noisy host?)\n\n");
        }
    }
    return rc;
}
