// Checkpoint inspection tool.
//
//   ckpt_tool inspect  <file>      header + per-section name/size/CRC
//   ckpt_tool validate <file>      structural check: magic, version, every
//                                  section CRC recomputed over its payload
//   ckpt_tool diff     <a> <b>     compare two checkpoints section by
//                                  section (first differing byte offset)
//
// Exit status: 0 on success / checkpoints identical, 1 on validation
// failure or any difference, 2 on usage/IO errors.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "sim/serialize.hh"

namespace {

using accesys::Ckpt;

int cmd_inspect(const std::string& path)
{
    const Ckpt ck = Ckpt::load_file_unchecked(path);
    std::printf("%s\n", path.c_str());
    std::printf("  format version : %u\n", ck.format_version());
    std::printf("  config hash    : %016" PRIx64 "\n", ck.config_hash());
    std::printf("  sections       : %zu\n", ck.sections().size());
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < ck.sections().size(); ++i) {
        const Ckpt::Section& s = ck.sections()[i];
        std::printf("  [%3zu] %-28s %12" PRIu64 " bytes  crc %08x\n", i,
                    s.name.c_str(), s.size, s.crc);
        total += s.size;
    }
    std::printf("  payload total  : %" PRIu64 " bytes\n", total);
    return 0;
}

int cmd_validate(const std::string& path)
{
    const Ckpt ck = Ckpt::load_file_unchecked(path);
    int bad = 0;
    for (std::size_t i = 0; i < ck.sections().size(); ++i) {
        const Ckpt::Section& s = ck.sections()[i];
        const std::uint32_t crc = accesys::crc32(ck.section_data(i), s.size);
        if (crc != s.crc) {
            std::printf("FAIL  section '%s': stored crc %08x, computed "
                        "%08x\n",
                        s.name.c_str(), s.crc, crc);
            ++bad;
        }
    }
    if (bad == 0) {
        std::printf("OK  %s: %zu sections, all CRCs match (format v%u, "
                    "config %016" PRIx64 ")\n",
                    path.c_str(), ck.sections().size(), ck.format_version(),
                    ck.config_hash());
    }
    return bad == 0 ? 0 : 1;
}

int cmd_diff(const std::string& pa, const std::string& pb)
{
    const Ckpt a = Ckpt::load_file_unchecked(pa);
    const Ckpt b = Ckpt::load_file_unchecked(pb);
    int diffs = 0;
    if (a.format_version() != b.format_version()) {
        std::printf("format version: %u vs %u\n", a.format_version(),
                    b.format_version());
        ++diffs;
    }
    if (a.config_hash() != b.config_hash()) {
        std::printf("config hash: %016" PRIx64 " vs %016" PRIx64 "\n",
                    a.config_hash(), b.config_hash());
        ++diffs;
    }
    // Sections are written in a deterministic order, so compare by name
    // against B's index and also report ordering changes.
    for (std::size_t i = 0; i < a.sections().size(); ++i) {
        const Ckpt::Section& sa = a.sections()[i];
        const Ckpt::Section* sb = nullptr;
        std::size_t bi = 0;
        for (std::size_t j = 0; j < b.sections().size(); ++j) {
            if (b.sections()[j].name == sa.name) {
                sb = &b.sections()[j];
                bi = j;
                break;
            }
        }
        if (sb == nullptr) {
            std::printf("section '%s': only in %s\n", sa.name.c_str(),
                        pa.c_str());
            ++diffs;
            continue;
        }
        if (bi != i) {
            std::printf("section '%s': index %zu vs %zu\n", sa.name.c_str(),
                        i, bi);
            ++diffs;
        }
        if (sa.size != sb->size) {
            std::printf("section '%s': %" PRIu64 " vs %" PRIu64 " bytes\n",
                        sa.name.c_str(), sa.size, sb->size);
            ++diffs;
            continue;
        }
        const std::uint8_t* da = a.section_data(i);
        const std::uint8_t* db = b.section_data(bi);
        if (std::memcmp(da, db, sa.size) != 0) {
            std::uint64_t off = 0;
            while (da[off] == db[off]) {
                ++off;
            }
            std::printf("section '%s': %" PRIu64 " bytes differ, first at "
                        "offset %" PRIu64 "\n",
                        sa.name.c_str(), sa.size, off);
            ++diffs;
        }
    }
    for (const Ckpt::Section& sb : b.sections()) {
        bool found = false;
        for (const Ckpt::Section& sa : a.sections()) {
            if (sa.name == sb.name) {
                found = true;
                break;
            }
        }
        if (!found) {
            std::printf("section '%s': only in %s\n", sb.name.c_str(),
                        pb.c_str());
            ++diffs;
        }
    }
    if (diffs == 0) {
        std::printf("identical: %zu sections\n", a.sections().size());
    }
    return diffs == 0 ? 0 : 1;
}

int usage()
{
    std::fprintf(stderr, "usage: ckpt_tool inspect <file>\n"
                         "       ckpt_tool validate <file>\n"
                         "       ckpt_tool diff <a> <b>\n");
    return 2;
}

} // namespace

int main(int argc, char** argv)
{
    if (argc < 3) {
        return usage();
    }
    const std::string cmd = argv[1];
    try {
        if (cmd == "inspect") {
            return cmd_inspect(argv[2]);
        }
        if (cmd == "validate") {
            return cmd_validate(argv[2]);
        }
        if (cmd == "diff" && argc >= 4) {
            return cmd_diff(argv[2], argv[3]);
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "ckpt_tool: %s\n", e.what());
        return 2;
    }
    return usage();
}
