#include <cstdio>
#include "core/runner.hh"
using namespace accesys;
int main(int argc, char** argv)
{
    setvbuf(stdout, nullptr, _IONBF, 0);
    workload::VitConfig tiny{"ViT-Tiny", 1, 192, 3, 4, 197};
    const int which = argc > 1 ? atoi(argv[1]) : 0;
    struct P { const char* label; core::Placement pl; double bw; const char* mem; unsigned pkt; };
    P pts[4] = {
        {"PCIe-2GB", core::Placement::host, 2.0, "DDR4", 256},
        {"PCIe-8GB", core::Placement::host, 8.0, "DDR4", 256},
        {"PCIe-64GB", core::Placement::host, 64.0, "HBM2", 256},
        {"DevMem", core::Placement::devmem, 0.0, "HBM2", 64},
    };
    for (int i = (which ? which-1 : 0); i < (which ? which : 4); ++i) {
        const P& p = pts[i];
        printf("config %s...\n", p.label);
        core::SystemConfig cfg = core::SystemConfig::paper_default();
        cfg.set_packet_size(p.pkt);
        if (p.pl == core::Placement::host) { cfg.set_host_dram(p.mem); cfg.set_pcie_target_gbps(p.bw); }
        else { cfg.set_devmem(p.mem); if (getenv("FASTCTL")) cfg.set_pcie_target_gbps(64.0); }
        core::System sys(cfg);
        core::Runner runner(sys);
        const auto res = runner.run_vit(tiny, p.pl);
        printf("  total=%.3fms gemm=%.3f nongemm=%.3f cmds=%llu vops=%llu\n",
               res.ms(), ticks_to_ms(res.gemm_ticks), ticks_to_ms(res.nongemm_ticks),
               (unsigned long long)res.gemm_cmds, (unsigned long long)res.vector_ops);
        printf("  compute_busy=%.3fms dma_rd=%.0f dma_wr=%.0f dma_bytes=%.1fKB up_payload=%.0fKB\n",
               ticks_to_ms(sys.accelerator().compute_busy_ticks()),
               sys.stat("mf.dma.reads_issued"), sys.stat("mf.dma.writes_issued"),
               (sys.stat("mf.dma.bytes_read")+sys.stat("mf.dma.bytes_written"))/1024.0,
               sys.stat("link_up.payload_bytes")/1024.0);
        if (p.pl == core::Placement::devmem)
            printf("  devmem: mover_rd=%.0f mover_wr=%.0f bytes=%.1fKB aperture_rd=%.0f\n",
                   sys.stat("mf.devmem_mover.reads"), sys.stat("mf.devmem_mover.writes"),
                   sys.stat("mf.devmem_mover.bytes")/1024.0, sys.stat("mf.aperture_reads"));
    }
    return 0;
}
