#include <cstdio>
#include <map>
#include "core/runner.hh"
using namespace accesys;
int main()
{
    setvbuf(stdout, nullptr, _IONBF, 0);
    core::SystemConfig cfg = core::SystemConfig::paper_default();
    core::System sys(cfg);

    const workload::GemmSpec spec{64, 64, 64, 42};
    const Addr a = sys.alloc_host(spec.a_bytes());
    const Addr bt = sys.alloc_host(spec.b_bytes());
    const Addr c = sys.alloc_host(spec.c_bytes());
    const Addr flag = sys.alloc_host(64);
    const Addr desc = sys.alloc_host(64);
    sys.map_host_pages(flag, 8); sys.map_host_pages(desc, 64);
    sys.map_host_pages(a, spec.a_bytes()); sys.map_host_pages(bt, spec.b_bytes());
    sys.map_host_pages(c, spec.c_bytes());

    accel::GemmCommand cmd;
    cmd.m = cmd.n = cmd.k = 64;
    cmd.addr_a = a; cmd.addr_b = bt; cmd.addr_c = c;
    cmd.flag_addr = flag; cmd.flag_value = 1;

    std::vector<cpu::CpuOp> prog;
    prog.push_back(cpu::Call{[&] { sys.store().write_obj(desc, cmd); }});
    prog.push_back(cpu::MmioWrite{cfg.accel.bar0_base + accel::kRegDoorbell, desc});
    prog.push_back(cpu::PollFlag{flag, 1});
    bool done = false;
    sys.host_cpu().run_program(std::move(prog), [&] { done = true; });

    sys.sim().startup();
    std::map<std::string, std::uint64_t> hist;
    for (std::uint64_t n = 0; n < 500000 && !done; ++n) {
        const std::string name = sys.sim().queue().next_event_name();
        if (name.empty()) { printf("drained at n=%llu t=%.1fns\n", (unsigned long long)n, ticks_to_ns(sys.sim().now())); break; }
        ++hist[name];
        sys.sim().queue().step();
    }
    printf("t=%.1fus done=%d\n", ticks_to_us(sys.sim().now()), done?1:0);
    // top events
    std::vector<std::pair<std::uint64_t,std::string>> v;
    for (auto& [k,c2] : hist) v.push_back({c2,k});
    std::sort(v.rbegin(), v.rend());
    for (size_t i = 0; i < v.size() && i < 12; ++i) printf("%10llu  %s\n", (unsigned long long)v[i].first, v[i].second.c_str());
    printf("rc_mrd=%.0f cpl=%.0f dma_rd=%.0f tlps_up=%.0f tlps_dn=%.0f smmu=%.0f host_rd=%.0f polls=%.0f cmds=%.0f\n",
        sys.stat("rc.inbound_read_tlps"), sys.stat("rc.completions_sent"), sys.stat("mf.dma.reads_issued"),
        sys.stat("link_up.tlps"), sys.stat("link_dn.tlps"), sys.stat("smmu.translations"),
        sys.stat("hostmem.reads"), sys.stat("cpu0.polls"), sys.stat("mf.commands"));
    return 0;
}
