// Tests for the multi-channel DMA engine against a mock PCIe port.
#include <gtest/gtest.h>

#include <deque>

#include "dma/dma_engine.hh"
#include "sim/simulator.hh"

namespace accesys::dma {
namespace {

/// Captures outgoing TLPs; the test plays root-complex and answers reads.
struct MockPort : DmaPort {
    struct Sent {
        pcie::TlpPtr tlp;
        pcie::SentHook on_sent;
    };

    void dma_send(pcie::TlpPtr tlp, pcie::SentHook on_sent) override
    {
        sent.push_back(Sent{std::move(tlp), on_sent});
    }
    std::size_t dma_egress_depth() const override { return egress_depth; }
    std::uint16_t dma_device_id() const override { return 1; }

    /// Fire the wire-departure callback for every staged TLP.
    void flush_sent_callbacks()
    {
        for (auto& s : sent) {
            if (s.on_sent) {
                const auto cb = s.on_sent;
                s.on_sent = {};
                cb();
            }
        }
    }

    std::deque<Sent> sent;
    std::size_t egress_depth = 0;
};

/// Records completion continuations by arg (the descriptor-based
/// replacement for the old capture-a-bool closures).
struct Recorder final : TransferListener {
    std::vector<std::uint32_t> fired;
    void transfer_done(std::uint8_t, std::uint32_t arg) override
    {
        fired.push_back(arg);
    }
    Continuation cont(std::uint32_t arg = 0) { return {this, 0, arg}; }
    [[nodiscard]] bool done() const { return !fired.empty(); }
};

struct DmaFixture : ::testing::Test {
    Simulator sim;
    mem::BackingStore store;
    DmaParams params;
    MockPort port;
    Recorder rec;

    std::unique_ptr<DmaEngine> make()
    {
        return std::make_unique<DmaEngine>(sim, "dma", params, port, store);
    }

    /// Complete the oldest outstanding MRd with a single full completion.
    void complete_one(DmaEngine& dma)
    {
        ASSERT_FALSE(port.sent.empty());
        auto tlp = std::move(port.sent.front().tlp);
        port.sent.pop_front();
        ASSERT_EQ(tlp->type, pcie::TlpType::mem_read);
        auto cpl = pcie::make_completion(tlp->length, tlp->tag, 1, 0, true);
        dma.on_completion(*cpl);
    }
};

TEST_F(DmaFixture, ReadJobChunksAtRequestSize)
{
    params.request_bytes = 256;
    params.window_bytes = 64 * kKiB;
    auto dma = make();
    dma->submit(DmaJob{DmaJob::Dir::host_to_dev, 0x1000, 0x700000, 1024,
                       rec.cont()});
    ASSERT_EQ(port.sent.size(), 4u);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(port.sent[i].tlp->addr, 0x1000u + i * 256);
        EXPECT_EQ(port.sent[i].tlp->length, 256u);
    }
    while (!port.sent.empty()) {
        complete_one(*dma);
    }
    EXPECT_TRUE(rec.done());
    EXPECT_TRUE(dma->idle());
}

TEST_F(DmaFixture, WindowLimitsOutstandingReads)
{
    params.request_bytes = 256;
    params.window_bytes = 512; // 2 requests
    auto dma = make();
    dma->submit(DmaJob{DmaJob::Dir::host_to_dev, 0, 0x700000, 2048, {}});
    EXPECT_EQ(port.sent.size(), 2u);
    complete_one(*dma);
    EXPECT_EQ(port.sent.size(), 2u); // window freed -> next issued
}

TEST_F(DmaFixture, TagLimitBounds)
{
    params.request_bytes = 64;
    params.window_bytes = 64 * kKiB;
    params.max_tags = 4;
    auto dma = make();
    dma->submit(DmaJob{DmaJob::Dir::host_to_dev, 0, 0x700000, 4096, {}});
    EXPECT_EQ(port.sent.size(), 4u);
    // Tags must be distinct.
    std::set<int> tags;
    for (auto& s : port.sent) {
        tags.insert(s.tlp->tag);
    }
    EXPECT_EQ(tags.size(), 4u);
}

TEST_F(DmaFixture, ReadCopiesDataOnCompletion)
{
    params.request_bytes = 128;
    auto dma = make();
    const char msg[] = "dma payload check";
    store.write(0x2000, msg, sizeof(msg));
    dma->submit(DmaJob{DmaJob::Dir::host_to_dev, 0x2000, 0x700000, 128,
                       rec.cont()});
    complete_one(*dma);
    ASSERT_TRUE(rec.done());
    char out[sizeof(msg)] = {};
    store.read(0x700000, out, sizeof(msg));
    EXPECT_STREQ(out, msg);
}

TEST_F(DmaFixture, PartialCompletionsWaitForLast)
{
    params.request_bytes = 256;
    auto dma = make();
    dma->submit(DmaJob{DmaJob::Dir::host_to_dev, 0, 0x700000, 256,
                       rec.cont()});
    ASSERT_EQ(port.sent.size(), 1u);
    const auto tag = port.sent[0].tlp->tag;
    port.sent.pop_front();

    auto c1 = pcie::make_completion(128, tag, 1, 0, false);
    dma->on_completion(*c1);
    EXPECT_FALSE(rec.done());
    auto c2 = pcie::make_completion(128, tag, 1, 128, true);
    dma->on_completion(*c2);
    EXPECT_TRUE(rec.done());
}

TEST_F(DmaFixture, WriteJobSnapshotsAndPostsChunks)
{
    params.write_bytes = 256;
    auto dma = make();
    const char msg[] = "write me to host";
    store.write(0x700000, msg, sizeof(msg));
    dma->submit(DmaJob{DmaJob::Dir::dev_to_host, 0x5000, 0x700000, 512,
                       rec.cont()});
    // Functional data lands at submit (drain-FIFO semantics).
    char out[sizeof(msg)] = {};
    store.read(0x5000, out, sizeof(msg));
    EXPECT_STREQ(out, msg);

    ASSERT_EQ(port.sent.size(), 2u);
    EXPECT_EQ(port.sent[0].tlp->type, pcie::TlpType::mem_write);
    EXPECT_FALSE(rec.done());
    port.flush_sent_callbacks(); // both hit the wire
    EXPECT_TRUE(rec.done());
}

TEST_F(DmaFixture, WriteGatedByEgressDepth)
{
    params.write_bytes = 64;
    params.max_egress = 2;
    auto dma = make();
    port.egress_depth = 2; // endpoint backlog
    dma->submit(DmaJob{DmaJob::Dir::dev_to_host, 0x5000, 0x700000, 512, {}});
    EXPECT_EQ(port.sent.size(), 0u);
    port.egress_depth = 0;
    dma->on_tx_ready();
    EXPECT_EQ(port.sent.size(), 8u);
}

TEST_F(DmaFixture, ChannelsRunJobsConcurrently)
{
    params.channels = 2;
    params.request_bytes = 256;
    params.window_bytes = 64 * kKiB;
    auto dma = make();
    dma->submit(DmaJob{DmaJob::Dir::host_to_dev, 0x0, 0x700000, 256, {}});
    dma->submit(DmaJob{DmaJob::Dir::host_to_dev, 0x10000, 0x710000, 256, {}});
    dma->submit(DmaJob{DmaJob::Dir::host_to_dev, 0x20000, 0x720000, 256, {}});
    // Two channels: first two jobs issue, third queues.
    EXPECT_EQ(port.sent.size(), 2u);
    EXPECT_EQ(dma->jobs_in_flight(), 3u);
    complete_one(*dma);
    EXPECT_EQ(port.sent.size(), 2u); // third job admitted
}

TEST_F(DmaFixture, CompletionOrderCallbacksInOrder)
{
    params.channels = 1;
    auto dma = make();
    dma->submit(DmaJob{DmaJob::Dir::host_to_dev, 0, 0x700000, 256,
                       rec.cont(1)});
    dma->submit(DmaJob{DmaJob::Dir::host_to_dev, 0x1000, 0x710000, 256,
                       rec.cont(2)});
    complete_one(*dma);
    complete_one(*dma);
    EXPECT_EQ(rec.fired, (std::vector<std::uint32_t>{1, 2}));
}

TEST_F(DmaFixture, SetRequestBytesOnlyWhenIdle)
{
    auto dma = make();
    dma->set_request_bytes(512);
    EXPECT_EQ(dma->params().request_bytes, 512u);
    dma->submit(DmaJob{DmaJob::Dir::host_to_dev, 0, 0x700000, 512, {}});
    EXPECT_THROW(dma->set_request_bytes(128), SimError);
}

TEST_F(DmaFixture, ZeroLengthJobRejected)
{
    auto dma = make();
    EXPECT_THROW(dma->submit(DmaJob{}), SimError);
}

TEST(DmaParams, Validation)
{
    DmaParams p;
    p.request_bytes = 100; // not a power of two
    EXPECT_THROW(p.validate(), ConfigError);
    p = {};
    p.window_bytes = 64;
    p.request_bytes = 256;
    EXPECT_THROW(p.validate(), ConfigError);
    p = {};
    p.max_tags = 300;
    EXPECT_THROW(p.validate(), ConfigError);
}

} // namespace
} // namespace accesys::dma
