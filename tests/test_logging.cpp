// Tests for the trace-logging facility.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/error.hh"
#include "sim/logging.hh"

namespace accesys {
namespace {

struct LogFixture : ::testing::Test {
    std::ostringstream sink;

    void SetUp() override
    {
        log::set_sink(&sink);
        log::set_level(log::Level::warn);
    }
    void TearDown() override
    {
        log::set_sink(nullptr);
        log::set_level(log::Level::warn);
    }
};

TEST_F(LogFixture, SuppressedBelowLevel)
{
    log::set_level(log::Level::warn);
    log::write(log::Level::debug, 123, "comp", "hidden");
    EXPECT_TRUE(sink.str().empty());
}

TEST_F(LogFixture, EmittedAtOrAboveLevel)
{
    log::set_level(log::Level::debug);
    log::write(log::Level::debug, 123, "comp", "visible ", 42);
    const auto out = sink.str();
    EXPECT_NE(out.find("123"), std::string::npos);
    EXPECT_NE(out.find("comp"), std::string::npos);
    EXPECT_NE(out.find("visible 42"), std::string::npos);
    EXPECT_NE(out.find("[debug]"), std::string::npos);
}

TEST_F(LogFixture, OffSilencesEverything)
{
    log::set_level(log::Level::off);
    log::write(log::Level::warn, 1, "c", "nope");
    EXPECT_TRUE(sink.str().empty());
}

TEST_F(LogFixture, EnabledPredicateMatchesLevel)
{
    log::set_level(log::Level::info);
    EXPECT_TRUE(log::enabled(log::Level::warn));
    EXPECT_TRUE(log::enabled(log::Level::info));
    EXPECT_FALSE(log::enabled(log::Level::debug));
}

TEST(ErrorHelpers, EnsurePassesAndThrows)
{
    EXPECT_NO_THROW(ensure(true, "fine"));
    EXPECT_THROW(ensure(false, "bad thing ", 7), SimError);
    try {
        ensure(false, "bad thing ", 7);
    } catch (const SimError& e) {
        EXPECT_NE(std::string(e.what()).find("bad thing 7"),
                  std::string::npos);
    }
}

TEST(ErrorHelpers, PanicAlwaysThrows)
{
    EXPECT_THROW(panic("unreachable ", 1), SimError);
}

TEST(ErrorHelpers, RequireCfgThrowsConfigError)
{
    EXPECT_NO_THROW(require_cfg(true, "ok"));
    EXPECT_THROW(require_cfg(false, "bad config"), ConfigError);
}

TEST(ErrorHelpers, StrcatMsgFormats)
{
    EXPECT_EQ(strcat_msg("a=", 1, " b=", 2.5), "a=1 b=2.5");
}

} // namespace
} // namespace accesys
