// Pooling must be invisible to simulation results: running the same sim
// twice in one process — first with cold (empty) Packet/TLP pools, then
// with pools warmed by the first run's recycled objects — must produce
// bit-identical stats registries and end ticks. Any field the pools fail
// to re-initialise on reuse would show up here as a diverging counter.
// The same contract extends to the parallel event core: a run carved
// into per-endpoint domains on N worker threads must be bit-identical
// to the serial run.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "core/runner.hh"
#include "mem/packet.hh"
#include "pcie/tlp.hh"
#include "sim/env_flags.hh"

namespace accesys {
namespace {

/// RAII override of the process-wide EnvFlags snapshot. Components capture
/// flag values at construction, so the swap is only valid between Simulator
/// lifetimes — which is exactly how these tests use it.
class ScopedEnvFlags {
  public:
    template <typename Fn>
    explicit ScopedEnvFlags(Fn tweak) : saved_(env_flags())
    {
        EnvFlags flags = saved_;
        tweak(flags);
        EnvFlags::set_for_test(flags);
    }
    ~ScopedEnvFlags() { EnvFlags::set_for_test(saved_); }
    ScopedEnvFlags(const ScopedEnvFlags&) = delete;
    ScopedEnvFlags& operator=(const ScopedEnvFlags&) = delete;

  private:
    EnvFlags saved_;
};

struct SimSnapshot {
    std::string stats_text;
    std::string stats_json;
    Tick end_tick = 0;
    std::uint64_t events = 0;
    bool verified = false;
};

/// `threads` == 0 leaves the config default (the ACCESYS_THREADS
/// snapshot) in place; any other value pins the worker budget. A non-null
/// `fault` installs that FaultPlan on the config.
SimSnapshot run_gemm_sim(std::size_t devices, std::uint32_t size,
                         unsigned threads = 0,
                         const FaultPlan* fault = nullptr)
{
    core::SystemConfig cfg = core::SystemConfig::paper_default();
    if (devices > 1) {
        cfg.set_num_devices(devices);
    }
    if (threads != 0) {
        cfg.threads = threads;
    }
    if (fault != nullptr) {
        cfg.fault_plan = *fault;
    }
    core::System sys(cfg);
    core::Runner runner(sys);
    const workload::GemmSpec spec{size, size, size, /*seed=*/3};
    for (std::size_t d = 0; d < devices; ++d) {
        runner.dispatch(d, spec, core::Placement::host, /*verify=*/true);
    }
    const auto res = runner.run_dispatched();

    SimSnapshot snap;
    snap.end_tick = sys.sim().now();
    snap.events = sys.sim().queue().events_processed();
    snap.verified = res.all_verified();
    std::ostringstream text;
    sys.stats().write_text(text);
    snap.stats_text = text.str();
    std::ostringstream json;
    sys.stats().write_json(json);
    snap.stats_json = json.str();
    return snap;
}

/// Split-at-`ckpt_at` variant of run_gemm_sim: one System runs until the
/// scheduled checkpoint fires and exits, then a *fresh* System is built
/// from the same config, the identical dispatch sequence is re-run (the
/// restore protocol: programs and closures are reconstructed, not
/// serialized), the snapshot overwrites its dynamic state, and the run
/// finishes. The returned snapshot must be bit-identical to the straight
/// run's. Saving and resuming may use different worker budgets — the
/// config hash deliberately excludes `threads`.
SimSnapshot run_gemm_split(std::size_t devices, std::uint32_t size,
                           unsigned save_threads, unsigned restore_threads,
                           const FaultPlan* fault, Tick ckpt_at,
                           const std::string& path)
{
    const workload::GemmSpec spec{size, size, size, /*seed=*/3};
    auto make_cfg = [&](unsigned threads) {
        core::SystemConfig cfg = core::SystemConfig::paper_default();
        if (devices > 1) {
            cfg.set_num_devices(devices);
        }
        if (threads != 0) {
            cfg.threads = threads;
        }
        if (fault != nullptr) {
            cfg.fault_plan = *fault;
        }
        return cfg;
    };

    {
        core::System sys(make_cfg(save_threads));
        core::Runner runner(sys);
        for (std::size_t d = 0; d < devices; ++d) {
            runner.dispatch(d, spec, core::Placement::host, /*verify=*/true);
        }
        sys.sim().request_checkpoint_at(path, ckpt_at);
        const auto res = runner.run_dispatched();
        EXPECT_TRUE(res.checkpointed)
            << "run finished at " << res.end
            << " before the checkpoint tick " << ckpt_at;
    }

    core::System sys(make_cfg(restore_threads));
    core::Runner runner(sys);
    for (std::size_t d = 0; d < devices; ++d) {
        runner.dispatch(d, spec, core::Placement::host, /*verify=*/true);
    }
    runner.set_restore_path(path);
    const auto res = runner.run_dispatched();
    std::remove(path.c_str());

    SimSnapshot snap;
    snap.end_tick = sys.sim().now();
    snap.events = sys.sim().queue().events_processed();
    snap.verified = res.all_verified();
    std::ostringstream text;
    sys.stats().write_text(text);
    snap.stats_text = text.str();
    std::ostringstream json;
    sys.stats().write_json(json);
    snap.stats_json = json.str();
    return snap;
}

TEST(PoolDeterminism, ColdVsWarmPoolsAreBitIdentical)
{
    // First run: the global pools start cold (or in whatever state earlier
    // tests left them); it both produces the reference and warms the pools.
    const SimSnapshot cold = run_gemm_sim(1, 48);
    EXPECT_TRUE(cold.verified);
    EXPECT_GT(mem::packet_pool().free_count(), 0u);
    EXPECT_GT(pcie::tlp_pool().free_count(), 0u);

    // Second run: every packet/TLP is now a recycled object.
    const SimSnapshot warm = run_gemm_sim(1, 48);
    EXPECT_TRUE(warm.verified);
    EXPECT_EQ(cold.end_tick, warm.end_tick);
    EXPECT_EQ(cold.events, warm.events);
    EXPECT_EQ(cold.stats_text, warm.stats_text);
    EXPECT_EQ(cold.stats_json, warm.stats_json);
}

TEST(PoolDeterminism, MultiDeviceWarmRerunIsBitIdentical)
{
    const SimSnapshot first = run_gemm_sim(2, 32);
    const SimSnapshot second = run_gemm_sim(2, 32);
    EXPECT_TRUE(first.verified);
    EXPECT_EQ(first.end_tick, second.end_tick);
    EXPECT_EQ(first.events, second.events);
    EXPECT_EQ(first.stats_text, second.stats_text);
}

TEST(PoolDeterminism, ParallelDomainsMatchSerialBitIdentical)
{
    // The parallel event core's determinism contract: carving each
    // endpoint subtree into its own quantum-synchronized domain thread
    // (cfg.threads >= 2) must be invisible to simulation results — the
    // end tick and both stats dumps are bit-identical to the serial run
    // for any worker count. Each parallel System constructs cold
    // per-domain Packet/TLP pools, so the first run is the cold case and
    // the rerun checks run-to-run stability on warmed global pools.
    // Event *counts* are not compared: the root queue's dispatch counter
    // covers only the root domain in parallel runs, and cross-domain
    // handoffs re-arm delivery events at barriers.
    const SimSnapshot serial = run_gemm_sim(4, 32, /*threads=*/1);
    EXPECT_TRUE(serial.verified);

    for (const unsigned threads : {2U, 4U}) {
        const SimSnapshot cold = run_gemm_sim(4, 32, threads);
        EXPECT_TRUE(cold.verified) << "threads=" << threads;
        EXPECT_EQ(serial.end_tick, cold.end_tick) << "threads=" << threads;
        EXPECT_EQ(serial.stats_text, cold.stats_text)
            << "threads=" << threads;
        EXPECT_EQ(serial.stats_json, cold.stats_json)
            << "threads=" << threads;

        const SimSnapshot warm = run_gemm_sim(4, 32, threads);
        EXPECT_TRUE(warm.verified) << "threads=" << threads;
        EXPECT_EQ(serial.end_tick, warm.end_tick) << "threads=" << threads;
        EXPECT_EQ(serial.stats_text, warm.stats_text)
            << "threads=" << threads;
        EXPECT_EQ(serial.stats_json, warm.stats_json)
            << "threads=" << threads;
    }
}

TEST(PoolDeterminism, BatchedDispatchMatchesUnbatchedBitExactly)
{
    // Same-tick batch dispatch and same-resolved-tick egress fusion
    // (sim/event.hh, mem/port.hh) must be invisible to simulation results:
    // a run with the ACCESYS_NO_BATCH escape hatch set — forcing the
    // one-event-at-a-time path and disabling queue fusion — must produce
    // the same end tick and bit-identical stats dumps as the default
    // batched run. Event *counts* may differ (fusion elides self-events),
    // so they are deliberately not compared. Components capture the flag
    // at EventQueue construction, so the snapshot override swaps modes
    // between Simulator lifetimes within one process.
    const SimSnapshot batched = run_gemm_sim(2, 48);
    EXPECT_TRUE(batched.verified);

    SimSnapshot unbatched;
    {
        const ScopedEnvFlags override_flags(
            [](EnvFlags& f) { f.no_batch = true; });
        unbatched = run_gemm_sim(2, 48);
    }
    EXPECT_TRUE(unbatched.verified);

    EXPECT_EQ(batched.end_tick, unbatched.end_tick);
    EXPECT_EQ(batched.stats_text, unbatched.stats_text);
    EXPECT_EQ(batched.stats_json, unbatched.stats_json);
    EXPECT_GE(unbatched.events, batched.events)
        << "fusion may only remove self-events, never add them";
}

TEST(PoolDeterminism, HopFusionExpressLaneMatchesDisabledBitExactly)
{
    // The memory-hierarchy express lane (sim/event.hh schedule_express)
    // stages hop events in a one-slot lane and dispatches them straight
    // from it when they are the earliest pending work. The staged entry
    // carries the same (tick, priority, sequence) key a plain schedule()
    // would have produced, so dispatch order — and with it every stat and
    // the end tick — must be identical with no_hop_fusion set (which
    // degrades every schedule_express to schedule()). Unlike batch fusion
    // and lazy credits, the lane elides no events, so the counts must
    // match exactly as well.
    const SimSnapshot fused = run_gemm_sim(2, 48);
    EXPECT_TRUE(fused.verified);

    SimSnapshot plain;
    {
        const ScopedEnvFlags override_flags(
            [](EnvFlags& f) { f.no_hop_fusion = true; });
        plain = run_gemm_sim(2, 48);
    }
    EXPECT_TRUE(plain.verified);

    EXPECT_EQ(fused.end_tick, plain.end_tick);
    EXPECT_EQ(fused.events, plain.events)
        << "the express lane must dispatch, not elide";
    EXPECT_EQ(fused.stats_text, plain.stats_text);
    EXPECT_EQ(fused.stats_json, plain.stats_json);
}

TEST(PoolDeterminism, LazyCreditsMatchEagerBitExactly)
{
    // Lazy link-credit accounting (pcie/link.cc) elides the per-TLP
    // credit-return event on unstarved directions; a starved sender's kick
    // is scheduled for the exact tick the eager model would have fired it.
    // A run with eager_credits set — restoring the per-return event —
    // must therefore produce the same end tick and bit-identical stats
    // dumps. Event *counts* may differ (the elided kicks were no-ops), so
    // they are deliberately not compared. PcieLink captures the flag at
    // construction; the snapshot override swaps modes between Simulator
    // lifetimes within one process.
    const SimSnapshot lazy = run_gemm_sim(2, 48);
    EXPECT_TRUE(lazy.verified);

    SimSnapshot eager;
    {
        const ScopedEnvFlags override_flags(
            [](EnvFlags& f) { f.eager_credits = true; });
        eager = run_gemm_sim(2, 48);
    }
    EXPECT_TRUE(eager.verified);

    EXPECT_EQ(lazy.end_tick, eager.end_tick);
    EXPECT_EQ(lazy.stats_text, eager.stats_text);
    EXPECT_EQ(lazy.stats_json, eager.stats_json);
    EXPECT_GE(eager.events, lazy.events)
        << "lazy accounting may only elide credit events, never add them";
}

TEST(PoolDeterminism, SeededFaultPlanBitIdenticalAcrossThreads)
{
    // The fault-injection determinism contract: per-(site, direction)
    // corruption streams are keyed by topology registration order — which
    // is single-threaded — and each stream is drawn only by the domain
    // thread owning that direction's transmitter, so a fixed seeded plan
    // (Bernoulli corruption everywhere plus a mid-run link-down window)
    // is bit-identical for any ACCESYS_THREADS worker count.
    FaultPlan plan;
    plan.seed = 11;
    plan.corrupt_rate = 0.01;
    FaultEvent down;
    down.kind = FaultKind::link_down;
    down.site = "link_dn2";
    down.at_ns = 5000.0;
    down.duration_ns = 10000.0;
    plan.events.push_back(down);
    plan.max_replays = 16;
    plan.replay_timeout_ns = 3000.0;

    const SimSnapshot serial = run_gemm_sim(4, 32, /*threads=*/1, &plan);
    EXPECT_TRUE(serial.verified) << "replay must recover every corruption";

    for (const unsigned threads : {2U, 4U}) {
        const SimSnapshot par = run_gemm_sim(4, 32, threads, &plan);
        EXPECT_TRUE(par.verified) << "threads=" << threads;
        EXPECT_EQ(serial.end_tick, par.end_tick) << "threads=" << threads;
        EXPECT_EQ(serial.stats_text, par.stats_text)
            << "threads=" << threads;
        EXPECT_EQ(serial.stats_json, par.stats_json)
            << "threads=" << threads;
    }
}

TEST(PoolDeterminism, DegradedRunBitIdenticalAcrossThreads)
{
    // Graceful degradation must also be deterministic: with one endpoint's
    // link dead from tick 0 and completion/job timeouts armed, the failed
    // job's give-up path and the surviving endpoints' completions land on
    // the same ticks for any worker count.
    FaultPlan plan;
    FaultEvent down;
    down.kind = FaultKind::link_down;
    down.site = "link_dn1";
    down.at_ns = 0.0;
    down.duration_ns = 1e12;
    plan.events.push_back(down);
    plan.max_replays = 4;
    plan.replay_timeout_ns = 2000.0;
    plan.completion_timeout_ns = 50000.0;
    plan.job_timeout_ns = 2e6;

    const SimSnapshot serial = run_gemm_sim(4, 32, /*threads=*/1, &plan);
    EXPECT_FALSE(serial.verified) << "device 1's job must have timed out";

    for (const unsigned threads : {2U, 4U}) {
        const SimSnapshot par = run_gemm_sim(4, 32, threads, &plan);
        EXPECT_EQ(serial.end_tick, par.end_tick) << "threads=" << threads;
        EXPECT_EQ(serial.stats_text, par.stats_text)
            << "threads=" << threads;
        EXPECT_EQ(serial.stats_json, par.stats_json)
            << "threads=" << threads;
    }
}

TEST(PoolDeterminism, DisabledFaultsMatchEmptyPlanBitExactly)
{
    // ACCESYS_FAULTS=0 is the escape hatch: a populated FaultPlan must
    // then behave exactly like an absent one — no fault state allocated,
    // no fault stats registered, and both dumps bit-identical to a run
    // with the default (inactive) plan.
    const SimSnapshot clean = run_gemm_sim(2, 32);
    EXPECT_TRUE(clean.verified);

    FaultPlan plan;
    plan.seed = 17;
    plan.corrupt_rate = 0.05;
    plan.completion_timeout_ns = 50000.0;
    plan.job_timeout_ns = 1e6;

    SimSnapshot disabled;
    {
        const ScopedEnvFlags override_flags(
            [](EnvFlags& f) { f.faults = false; });
        disabled = run_gemm_sim(2, 32, /*threads=*/0, &plan);
    }
    EXPECT_TRUE(disabled.verified);
    EXPECT_EQ(clean.end_tick, disabled.end_tick);
    EXPECT_EQ(clean.events, disabled.events);
    EXPECT_EQ(clean.stats_text, disabled.stats_text);
    EXPECT_EQ(clean.stats_json, disabled.stats_json);
}

TEST(CheckpointRoundTrip, SplitRunBitIdenticalAcrossThreads)
{
    // The checkpoint/restore bit-identity contract: a run checkpointed at
    // its midpoint and resumed in a fresh System — for any worker count —
    // must finish with the same end tick and byte-identical stats dumps
    // as the uninterrupted run.
    const SimSnapshot straight = run_gemm_sim(4, 32, /*threads=*/1);
    ASSERT_TRUE(straight.verified);
    const Tick mid = straight.end_tick / 2;
    ASSERT_GT(mid, 0u);

    for (const unsigned threads : {1U, 2U, 4U}) {
        const std::string path = ::testing::TempDir() + "roundtrip_t" +
                                 std::to_string(threads) + ".ckpt";
        const SimSnapshot split =
            run_gemm_split(4, 32, threads, threads, nullptr, mid, path);
        EXPECT_TRUE(split.verified) << "threads=" << threads;
        EXPECT_EQ(straight.end_tick, split.end_tick)
            << "threads=" << threads;
        EXPECT_EQ(straight.stats_text, split.stats_text)
            << "threads=" << threads;
        EXPECT_EQ(straight.stats_json, split.stats_json)
            << "threads=" << threads;
    }
}

TEST(CheckpointRoundTrip, SaveSerialRestoreParallel)
{
    // The config hash deliberately excludes the worker budget: a snapshot
    // written by a serial run must resume bit-identically on 4 domain
    // threads (and the barrier-tick legality rule makes the snapshot
    // thread-count-neutral by construction).
    const SimSnapshot straight = run_gemm_sim(4, 32, /*threads=*/1);
    ASSERT_TRUE(straight.verified);
    const std::string path = ::testing::TempDir() + "roundtrip_1to4.ckpt";

    const SimSnapshot split = run_gemm_split(
        4, 32, /*save_threads=*/1, /*restore_threads=*/4, nullptr,
        straight.end_tick / 2, path);
    EXPECT_TRUE(split.verified);
    EXPECT_EQ(straight.end_tick, split.end_tick);
    EXPECT_EQ(straight.stats_text, split.stats_text);
    EXPECT_EQ(straight.stats_json, split.stats_json);
}

TEST(CheckpointRoundTrip, MidLinkDownWindowWithSeededCorruption)
{
    // Hardest restore case: checkpoint inside an active link_down window
    // of a seeded plan with Bernoulli corruption everywhere. The snapshot
    // must carry the replay buffers, ACK/NAK state, down-window cursors,
    // and — critically — the per-(site, direction) RNG stream positions,
    // so the resumed run draws the exact corruption sequence the straight
    // run drew.
    FaultPlan plan;
    plan.seed = 11;
    plan.corrupt_rate = 0.01;
    FaultEvent down;
    down.kind = FaultKind::link_down;
    down.site = "link_dn2";
    down.at_ns = 5000.0;
    down.duration_ns = 10000.0;
    plan.events.push_back(down);
    plan.max_replays = 16;
    plan.replay_timeout_ns = 3000.0;

    const SimSnapshot straight = run_gemm_sim(4, 32, /*threads=*/1, &plan);
    ASSERT_TRUE(straight.verified);
    const Tick in_window = ticks_from_ns(8000.0); // 5000 + 10000 window
    ASSERT_GT(straight.end_tick, in_window)
        << "run must outlast the checkpoint point";

    for (const unsigned threads : {1U, 2U}) {
        const std::string path = ::testing::TempDir() + "roundtrip_fault_t" +
                                 std::to_string(threads) + ".ckpt";
        const SimSnapshot split =
            run_gemm_split(4, 32, threads, threads, &plan, in_window, path);
        EXPECT_TRUE(split.verified) << "threads=" << threads;
        EXPECT_EQ(straight.end_tick, split.end_tick)
            << "threads=" << threads;
        EXPECT_EQ(straight.stats_text, split.stats_text)
            << "threads=" << threads;
        EXPECT_EQ(straight.stats_json, split.stats_json)
            << "threads=" << threads;
    }
}

TEST(PoolDeterminism, FailoverHangPoisonFlrBitIdenticalAcrossThreads)
{
    // The endpoint-level fault contract: device-fault streams (hang,
    // poison) are keyed by (site, channel) in topology registration
    // order and drawn only by the owning endpoint's domain thread, and
    // the Runner's failover rounds (timeout -> FLR -> re-dispatch) are
    // host-driven, so a seeded hang+poison plan with failover armed is
    // bit-identical for any ACCESYS_THREADS worker count.
    FaultPlan plan;
    plan.seed = 23;
    plan.poison_rate = 0.005;
    FaultEvent hang;
    hang.kind = FaultKind::accel_hang;
    hang.site = "mf1"; // endpoint 1's first command freezes its FSM
    hang.at_ns = 0.0;
    plan.events.push_back(hang);
    plan.job_timeout_ns = 2e6;
    plan.job_max_attempts = 3;
    plan.flr_ns = 2000.0;

    const SimSnapshot serial = run_gemm_sim(4, 32, /*threads=*/1, &plan);
    EXPECT_TRUE(serial.verified)
        << "failover must re-dispatch every failed job to completion";

    for (const unsigned threads : {2U, 4U}) {
        const SimSnapshot par = run_gemm_sim(4, 32, threads, &plan);
        EXPECT_TRUE(par.verified) << "threads=" << threads;
        EXPECT_EQ(serial.end_tick, par.end_tick) << "threads=" << threads;
        EXPECT_EQ(serial.stats_text, par.stats_text)
            << "threads=" << threads;
        EXPECT_EQ(serial.stats_json, par.stats_json)
            << "threads=" << threads;
    }
}

TEST(CheckpointRoundTrip, MidFlrCheckpointRoundTripsBitIdentical)
{
    // Checkpoint taken *inside* a function-level reset window: the
    // snapshot must carry the endpoint's flr_until horizon, the hung-flag
    // clear, the drained DMA/command state and the deferred doorbell
    // kick, so the resumed run re-arms the endpoint on the same tick and
    // finishes byte-identical to the straight run. The failover path
    // stays disarmed (job_max_attempts = 1): the test drives the
    // hang -> FLR -> re-ring sequence manually in two classic rounds so
    // the restore protocol (re-run the identical dispatch, then overwrite
    // dynamic state) applies to the round containing the checkpoint.
    auto make_cfg = [] {
        core::SystemConfig cfg = core::SystemConfig::paper_default();
        cfg.set_num_devices(2);
        FaultEvent hang;
        hang.kind = FaultKind::accel_hang;
        hang.site = "mf1";
        hang.at_ns = 0.0;
        cfg.fault_plan.events.push_back(hang);
        cfg.fault_plan.job_timeout_ns = 1e6;
        return cfg;
    };
    const workload::GemmSpec spec{32, 32, 32, 3};
    const double flr_ns = 4000.0;

    // One leg = round 1 (endpoint 1 hangs, its job times out), a manual
    // FLR, then round 2 (both jobs complete). `ckpt_at`, when non-zero,
    // schedules a checkpoint halfway into the FLR window and the leg
    // stops there; `restore` resumes round 2 from that snapshot.
    struct LegResult {
        SimSnapshot snap;
        Tick ckpt_at = 0;
    };
    auto run_leg = [&](Tick ckpt_at, const std::string& ckpt_path,
                       const std::string& restore) {
        core::System sys(make_cfg());
        core::Runner runner(sys);
        runner.dispatch(0, spec, core::Placement::host, /*verify=*/true);
        runner.dispatch(1, spec, core::Placement::host, /*verify=*/true);
        const auto r1 = runner.run_dispatched();
        EXPECT_EQ(r1.devices[0].status, core::JobStatus::ok);
        EXPECT_EQ(r1.devices[1].status, core::JobStatus::timed_out);

        const Tick flr_start = sys.sim().now();
        sys.accelerator(1).begin_flr(ticks_from_ns(flr_ns));

        LegResult leg;
        leg.ckpt_at = flr_start + ticks_from_ns(flr_ns / 2);
        runner.dispatch(0, spec, core::Placement::host, /*verify=*/true);
        runner.dispatch(1, spec, core::Placement::host, /*verify=*/true);
        if (ckpt_at != 0) {
            sys.sim().request_checkpoint_at(ckpt_path, ckpt_at);
        }
        if (!restore.empty()) {
            runner.set_restore_path(restore);
        }
        const auto r2 = runner.run_dispatched();
        if (ckpt_at != 0) {
            EXPECT_TRUE(r2.checkpointed)
                << "round 2 finished before the mid-FLR checkpoint";
        } else {
            EXPECT_TRUE(r2.all_verified())
                << "FLR must have unwedged endpoint 1";
        }

        leg.snap.end_tick = sys.sim().now();
        std::ostringstream text;
        sys.stats().write_text(text);
        leg.snap.stats_text = text.str();
        std::ostringstream json;
        sys.stats().write_json(json);
        leg.snap.stats_json = json.str();
        return leg;
    };

    const LegResult straight = run_leg(0, "", "");
    const std::string path = ::testing::TempDir() + "mid_flr.ckpt";
    const LegResult save = run_leg(straight.ckpt_at, path, "");
    const LegResult resumed = run_leg(0, "", path);
    std::remove(path.c_str());

    EXPECT_EQ(straight.snap.end_tick, resumed.snap.end_tick);
    EXPECT_EQ(straight.snap.stats_text, resumed.snap.stats_text);
    EXPECT_EQ(straight.snap.stats_json, resumed.snap.stats_json);
    EXPECT_LT(save.snap.end_tick, straight.snap.end_tick)
        << "the save leg must have stopped at the mid-FLR checkpoint";
}

TEST(PoolDeterminism, SteadyStateForwardingAllocatesNothing)
{
    // Warm-up run, then measure: the second identical sim must not grow
    // either pool's heap-allocation counter — every transaction object is
    // served from the free lists. Lifetime counters sum the global pools
    // and every per-domain pool. Pinned to the serial path: parallel
    // Systems own their domain pools, so a *fresh* parallel System always
    // re-warms them — the parallel steady state holds within a System
    // (exercised by perf_baseline's gated contention metric), not across
    // System lifetimes.
    (void)run_gemm_sim(1, 48, /*threads=*/1);
    const std::uint64_t pkt_allocs = mem::PacketPool::lifetime_allocs();
    const std::uint64_t tlp_allocs = pcie::TlpPool::lifetime_allocs();
    (void)run_gemm_sim(1, 48, /*threads=*/1);
    EXPECT_EQ(mem::PacketPool::lifetime_allocs(), pkt_allocs);
    EXPECT_EQ(pcie::TlpPool::lifetime_allocs(), tlp_allocs);
}

} // namespace
} // namespace accesys
