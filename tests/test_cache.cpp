// Tests for the set-associative write-back cache.
#include "test_util.hh"

#include <cstdlib>
#include <sstream>
#include <tuple>

#include "cache/cache.hh"
#include "mem/mem_ctrl.hh"
#include "mem/traffic_gen.hh"

namespace accesys::cache {
namespace {

using mem::Packet;
using test::MockRequestor;
using test::MockResponder;

struct CacheFixture : ::testing::Test {
    Simulator sim;
    CacheParams params;
    MockRequestor cpu{"cpu"};
    MockResponder memory{"mem"};

    CacheFixture()
    {
        params.size_bytes = 4 * kKiB;
        params.assoc = 2;
        params.line_bytes = 64;
        params.mshrs = 4;
    }

    std::unique_ptr<Cache> make()
    {
        auto cache = std::make_unique<Cache>(sim, "cache", params);
        cpu.port().bind(cache->cpu_side());
        cache->mem_side().bind(memory.port());
        return cache;
    }

    /// Serve all outstanding fill requests from the mock memory.
    void serve_memory()
    {
        test::drain(sim);
        while (!memory.requests.empty()) {
            ASSERT_TRUE(memory.answer_one());
            test::drain(sim);
        }
    }
};

TEST_F(CacheFixture, ColdMissFetchesLine)
{
    auto cache = make();
    auto pkt = Packet::make_read(0x100, 8);
    ASSERT_TRUE(cpu.port().send_req(pkt));
    test::drain(sim);

    ASSERT_EQ(memory.requests.size(), 1u);
    EXPECT_EQ(memory.requests.front()->addr(), 0x100u); // line-aligned
    EXPECT_EQ(memory.requests.front()->size(), 64u);

    serve_memory();
    ASSERT_EQ(cpu.responses.size(), 1u);
    EXPECT_EQ(cache->misses(), 1u);
    EXPECT_TRUE(cache->contains_line(0x100));
}

TEST_F(CacheFixture, SecondAccessHits)
{
    auto cache = make();
    auto p1 = Packet::make_read(0x100, 8);
    ASSERT_TRUE(cpu.port().send_req(p1));
    serve_memory();

    auto p2 = Packet::make_read(0x108, 8); // same line
    ASSERT_TRUE(cpu.port().send_req(p2));
    test::drain(sim);
    EXPECT_EQ(cpu.responses.size(), 2u);
    EXPECT_EQ(cache->hits(), 1u);
    EXPECT_EQ(memory.requests.size(), 0u); // no new fill
}

TEST_F(CacheFixture, WriteHitMarksDirty)
{
    auto cache = make();
    auto p1 = Packet::make_read(0x100, 8);
    ASSERT_TRUE(cpu.port().send_req(p1));
    serve_memory();

    auto p2 = Packet::make_write(0x100, 8);
    ASSERT_TRUE(cpu.port().send_req(p2));
    test::drain(sim);
    EXPECT_TRUE(cache->line_dirty(0x100));
}

TEST_F(CacheFixture, WholeLineWriteSkipsFill)
{
    auto cache = make();
    auto pkt = Packet::make_write(0x200, 64);
    ASSERT_TRUE(cpu.port().send_req(pkt));
    test::drain(sim);
    EXPECT_EQ(memory.requests.size(), 0u); // no fill read
    EXPECT_TRUE(cache->contains_line(0x200));
    EXPECT_TRUE(cache->line_dirty(0x200));
    EXPECT_EQ(cpu.responses.size(), 1u);
}

TEST_F(CacheFixture, PartialWriteMissFillsThenDirties)
{
    auto cache = make();
    auto pkt = Packet::make_write(0x200, 8);
    ASSERT_TRUE(cpu.port().send_req(pkt));
    test::drain(sim);
    ASSERT_EQ(memory.requests.size(), 1u); // fill read required
    serve_memory();
    EXPECT_TRUE(cache->line_dirty(0x200));
}

TEST_F(CacheFixture, DirtyEvictionWritesBack)
{
    auto cache = make();
    // Set count = 4KiB / 64 / 2 = 32 sets. Two lines mapping to set 0:
    const Addr a = 0;
    const Addr b = 32 * 64;
    const Addr c = 2 * 32 * 64;

    auto w = Packet::make_write(a, 64);
    ASSERT_TRUE(cpu.port().send_req(w));
    auto w2 = Packet::make_write(b, 64);
    ASSERT_TRUE(cpu.port().send_req(w2));
    test::drain(sim);

    // Third line in the same set evicts LRU (line a, dirty).
    auto w3 = Packet::make_write(c, 64);
    ASSERT_TRUE(cpu.port().send_req(w3));
    test::drain(sim);

    ASSERT_EQ(memory.requests.size(), 1u);
    EXPECT_TRUE(memory.requests.front()->is_write());
    EXPECT_EQ(memory.requests.front()->addr(), a);
    EXPECT_TRUE(memory.requests.front()->flags.posted);
    EXPECT_FALSE(cache->contains_line(a));
}

TEST_F(CacheFixture, LruKeepsRecentlyUsed)
{
    auto cache = make();
    const Addr a = 0;
    const Addr b = 32 * 64;
    const Addr c = 2 * 32 * 64;
    for (const Addr addr : {a, b}) {
        auto p = Packet::make_read(addr, 8);
        ASSERT_TRUE(cpu.port().send_req(p));
        serve_memory();
    }
    // Touch `a` so `b` becomes LRU.
    auto touch = Packet::make_read(a, 8);
    ASSERT_TRUE(cpu.port().send_req(touch));
    test::drain(sim);

    auto p = Packet::make_read(c, 8);
    ASSERT_TRUE(cpu.port().send_req(p));
    serve_memory();
    EXPECT_TRUE(cache->contains_line(a));
    EXPECT_FALSE(cache->contains_line(b));
    EXPECT_TRUE(cache->contains_line(c));
}

TEST_F(CacheFixture, MshrCoalescesSameLine)
{
    auto cache = make();
    auto p1 = Packet::make_read(0x100, 8);
    auto p2 = Packet::make_read(0x120, 8); // same line
    ASSERT_TRUE(cpu.port().send_req(p1));
    ASSERT_TRUE(cpu.port().send_req(p2));
    test::drain(sim);
    EXPECT_EQ(memory.requests.size(), 1u); // one fill for both
    serve_memory();
    EXPECT_EQ(cpu.responses.size(), 2u);
}

TEST_F(CacheFixture, MshrExhaustionBackpressures)
{
    params.mshrs = 2;
    auto cache = make();
    int accepted = 0;
    for (int i = 0; i < 4; ++i) {
        auto p = Packet::make_read(static_cast<Addr>(i) * 64, 8);
        if (!cpu.port().send_req(p)) {
            break;
        }
        ++accepted;
    }
    EXPECT_EQ(accepted, 2);
    serve_memory();
    EXPECT_GE(cpu.req_retries, 1u);
}

TEST_F(CacheFixture, UncacheableBypasses)
{
    auto cache = make();
    auto p = Packet::make_read(0x300, 8);
    p->flags.uncacheable = true;
    ASSERT_TRUE(cpu.port().send_req(p));
    test::drain(sim);
    ASSERT_EQ(memory.requests.size(), 1u);
    EXPECT_EQ(memory.requests.front()->size(), 8u); // not line-expanded
    serve_memory();
    ASSERT_EQ(cpu.responses.size(), 1u);
    EXPECT_FALSE(cache->contains_line(0x300));
}

TEST_F(CacheFixture, UncacheableWriteInvalidatesCachedLine)
{
    auto cache = make();
    auto p1 = Packet::make_read(0x100, 8);
    ASSERT_TRUE(cpu.port().send_req(p1));
    serve_memory();
    ASSERT_TRUE(cache->contains_line(0x100));

    auto p2 = Packet::make_write(0x100, 8);
    p2->flags.uncacheable = true;
    p2->flags.posted = true;
    ASSERT_TRUE(cpu.port().send_req(p2));
    test::drain(sim);
    EXPECT_FALSE(cache->contains_line(0x100));
}

TEST_F(CacheFixture, SnoopInvalidateDropsLine)
{
    auto cache = make();
    auto p = Packet::make_write(0x100, 64);
    ASSERT_TRUE(cpu.port().send_req(p));
    test::drain(sim);
    ASSERT_TRUE(cache->line_dirty(0x100));

    cache->snoop_invalidate(0x100, 64);
    EXPECT_FALSE(cache->contains_line(0x100));
}

TEST_F(CacheFixture, SnoopCleanDemotesDirty)
{
    auto cache = make();
    auto p = Packet::make_write(0x100, 64);
    ASSERT_TRUE(cpu.port().send_req(p));
    test::drain(sim);

    cache->snoop_clean(0x100, 64);
    EXPECT_TRUE(cache->contains_line(0x100));
    EXPECT_FALSE(cache->line_dirty(0x100));
}

TEST_F(CacheFixture, StraddlingRequestPanics)
{
    auto cache = make();
    auto p = Packet::make_read(0x3C, 16); // crosses 0x40
    EXPECT_THROW((void)cpu.port().send_req(p), SimError);
}

TEST_F(CacheFixture, PostedWriteHitAbsorbedSilently)
{
    auto cache = make();
    auto fill = Packet::make_read(0x100, 8);
    ASSERT_TRUE(cpu.port().send_req(fill));
    serve_memory();
    const auto responses_before = cpu.responses.size();

    auto p = Packet::make_write(0x100, 8);
    p->flags.posted = true;
    ASSERT_TRUE(cpu.port().send_req(p));
    test::drain(sim);
    EXPECT_EQ(cpu.responses.size(), responses_before);
    EXPECT_TRUE(cache->line_dirty(0x100));
}

TEST(CacheParams, Validation)
{
    CacheParams p;
    p.line_bytes = 48;
    EXPECT_THROW(p.validate(), ConfigError);
    p = {};
    p.size_bytes = 1000; // not a multiple of line*assoc
    EXPECT_THROW(p.validate(), ConfigError);
    p = {};
    p.mshrs = 0;
    EXPECT_THROW(p.validate(), ConfigError);
    p = {};
    p.mshrs = 128; // > 64: exceeds the free-slot bitmap
    EXPECT_THROW(p.validate(), ConfigError);
    p = {};
    p.line_bytes = 16;
    p.mshrs = 32; // > line_bytes: slot index no longer fits the fill tag
    EXPECT_THROW(p.validate(), ConfigError);
}

// Property sweep: for several geometries, a working set exactly matching
// capacity (touched twice, sequentially) must hit on the second pass.
struct Geometry {
    std::uint64_t size;
    unsigned assoc;
};

class CacheGeometry : public ::testing::TestWithParam<Geometry> {};

TEST_P(CacheGeometry, CapacityWorkingSetHitsOnSecondPass)
{
    Simulator sim;
    CacheParams params;
    params.size_bytes = GetParam().size;
    params.assoc = GetParam().assoc;
    params.mshrs = 8;
    Cache cache(sim, "cache", params);
    MockRequestor cpu("cpu");
    MockResponder memory("mem");
    cpu.port().bind(cache.cpu_side());
    cache.mem_side().bind(memory.port());

    auto serve = [&] {
        sim.run(sim.now() + kTicksPerMs);
        while (!memory.requests.empty()) {
            ASSERT_TRUE(memory.answer_one());
            sim.run(sim.now() + kTicksPerMs);
        }
    };

    const std::uint64_t lines = params.size_bytes / params.line_bytes;
    for (int pass = 0; pass < 2; ++pass) {
        for (std::uint64_t i = 0; i < lines; ++i) {
            auto p = mem::Packet::make_read(i * params.line_bytes, 8);
            if (!cpu.port().send_req(p)) {
                serve();
                auto retry = mem::Packet::make_read(i * params.line_bytes, 8);
                ASSERT_TRUE(cpu.port().send_req(retry));
            }
            serve();
        }
    }
    EXPECT_EQ(cache.misses(), lines);
    EXPECT_EQ(cache.hits(), lines);
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheGeometry,
                         ::testing::Values(Geometry{4 * kKiB, 1},
                                           Geometry{4 * kKiB, 4},
                                           Geometry{32 * kKiB, 4},
                                           Geometry{32 * kKiB, 8},
                                           Geometry{64 * kKiB, 16}));

// --- whole-line write run form ----------------------------------------------
// A write spanning several aligned whole lines is accepted as a run: one
// tag-array walk, per-line hit/miss accounting identical to the 64 B split
// train a bridge would otherwise send, and dirty victims flushed as one
// writeback batch.

TEST_F(CacheFixture, MultiLineWholeLineWriteRunMatchesSplitTrain)
{
    // Twin caches: one receives a single 4-line write run, the other the
    // equivalent four line-sized writes. Same installs, same dirt, same
    // writebacks (after forcing evictions with a conflicting run).
    auto run_one = [&](bool as_run) {
        Simulator s;
        CacheParams p = params;
        Cache cache(s, "c", p);
        MockRequestor drv("drv");
        MockResponder mem("mem");
        drv.port().bind(cache.cpu_side());
        cache.mem_side().bind(mem.port());

        auto write_span = [&](Addr base) {
            if (as_run) {
                auto w = Packet::make_write(base, 4 * 64);
                w->flags.posted = true;
                ASSERT_TRUE(drv.port().send_req(w));
            } else {
                for (int i = 0; i < 4; ++i) {
                    auto w = Packet::make_write(base + 64ull * i, 64);
                    w->flags.posted = true;
                    ASSERT_TRUE(drv.port().send_req(w));
                }
            }
            s.run(s.now() + kTicksPerMs);
        };
        write_span(0x0000);
        write_span(0x0000);  // second pass: pure hits
        // Conflicting span (same sets, 2-way cache, third distinct tag
        // after the fill reads' interference-free installs): evicts the
        // dirty lines -> posted writebacks downstream.
        write_span(0x10000);
        write_span(0x20000);
        s.run(s.now() + kTicksPerMs);

        std::size_t wbs = 0;
        for (const auto& req : mem.requests) {
            wbs += req->is_write() ? 1 : 0;
        }
        return std::tuple{cache.hits(), cache.misses(), wbs};
    };

    const auto run = run_one(true);
    const auto split = run_one(false);
    EXPECT_EQ(std::get<0>(run), std::get<0>(split));
    EXPECT_EQ(std::get<1>(run), std::get<1>(split));
    EXPECT_EQ(std::get<2>(run), std::get<2>(split));
    EXPECT_GT(std::get<2>(run), 0u); // the scenario really evicted dirt
}

TEST_F(CacheFixture, WholeLineWriteUnderPendingFillJoinsTheMiss)
{
    // A whole-line write arriving while a fill for the same line is in
    // flight must not install immediately — the landing fill would
    // re-install the line as a duplicate tag. It joins the miss instead;
    // the fill lands dirty, and exactly one copy of the line exists
    // (a snoop invalidate leaves nothing behind).
    auto cache = make();
    auto rd = Packet::make_read(0x100, 8);
    ASSERT_TRUE(cpu.port().send_req(rd));
    test::drain(sim);
    ASSERT_EQ(memory.requests.size(), 1u); // fill outstanding, unserved

    auto wr = Packet::make_write(0x100, 64);
    wr->flags.posted = true;
    ASSERT_TRUE(cpu.port().send_req(wr));
    test::drain(sim);
    EXPECT_FALSE(cache->contains_line(0x100)); // not installed early

    serve_memory();
    EXPECT_EQ(cpu.responses.size(), 1u); // the read's response
    ASSERT_TRUE(cache->contains_line(0x100));
    EXPECT_TRUE(cache->line_dirty(0x100));
    cache->snoop_invalidate(0x100, 64);
    EXPECT_FALSE(cache->contains_line(0x100)) << "duplicate tag installed";
}

TEST_F(CacheFixture, MultiLineRejectsNonRunShapes)
{
    auto cache = make();
    auto unaligned = Packet::make_write(0x20, 128); // straddles, not a run
    unaligned->flags.posted = true;
    EXPECT_THROW((void)cpu.port().send_req(unaligned), SimError);
    auto read = Packet::make_read(0x0, 128); // reads have no run form
    EXPECT_THROW((void)cpu.port().send_req(read), SimError);
    // Non-posted runs are rejected too: their completion would have to
    // wait on in-flight fills (split-train semantics) and no bridge
    // emits them.
    auto nonposted = Packet::make_write(0x0, 128);
    EXPECT_THROW((void)cpu.port().send_req(nonposted), SimError);
}

// --- hop-fusion determinism -------------------------------------------------
// A dirty-victim miss train (streaming whole-line writes over a footprint
// larger than the cache, then a conflicting read pass that forces dirty
// evictions and fills) must produce bit-identical stats dumps and end
// ticks with the memory-hierarchy express lane on and off
// (ACCESYS_NO_HOP_FUSION=1 — read at EventQueue construction, so toggling
// between Simulator lifetimes switches modes in-process).

struct TrainSnapshot {
    std::string stats;
    Tick end_tick = 0;
};

TrainSnapshot run_dirty_victim_train()
{
    Simulator sim;
    CacheParams cp;
    cp.size_bytes = 8 * kKiB;
    cp.assoc = 2;
    cp.line_bytes = 64;
    cp.mshrs = 8;
    Cache cache(sim, "c", cp);
    mem::SimpleMemParams smp;
    const mem::AddrRange range(0, 4 * kMiB);
    mem::SimpleMem memory(sim, "mem", smp, range);

    mem::TrafficGenParams tp;
    tp.total_bytes = 256 * kKiB;
    tp.working_set = 64 * kKiB; // 8x the cache: every wrap evicts
    tp.req_bytes = 64;
    tp.window = 8;
    tp.write_fraction = 0.7; // writes install dirt; reads fill over it
    mem::TrafficGen gen(sim, "gen", tp);

    gen.port().bind(cache.cpu_side());
    cache.mem_side().bind(memory.port());
    sim.startup();
    gen.start([&sim] { sim.request_exit("done"); });
    (void)sim.run();

    TrainSnapshot snap;
    snap.end_tick = sim.now();
    std::ostringstream os;
    sim.stats().write_text(os);
    snap.stats = os.str();
    return snap;
}

TEST(CacheHopFusion, DirtyVictimMissTrainBitIdenticalFusionOnOff)
{
    const TrainSnapshot fused = run_dirty_victim_train();
    ::setenv("ACCESYS_NO_HOP_FUSION", "1", 1);
    const TrainSnapshot plain = run_dirty_victim_train();
    ::unsetenv("ACCESYS_NO_HOP_FUSION");

    EXPECT_EQ(fused.end_tick, plain.end_tick);
    EXPECT_EQ(fused.stats, plain.stats);
    const std::string wb_line = "c.writebacks";
    EXPECT_NE(fused.stats.find(wb_line), std::string::npos)
        << "scenario must actually exercise the writeback path";
}

} // namespace
} // namespace accesys::cache
