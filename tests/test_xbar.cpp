// Tests for the crossbar: routing, response return, backpressure, snooping.
#include "test_util.hh"

#include "mem/xbar.hh"

namespace accesys::mem {
namespace {

using test::MockRequestor;
using test::MockResponder;

struct XbarFixture : ::testing::Test {
    Simulator sim;
    XbarParams params;
};

TEST_F(XbarFixture, RoutesByAddressRange)
{
    Xbar xbar(sim, "xbar", params);
    MockRequestor cpu("cpu");
    MockResponder memA("memA");
    MockResponder memB("memB");

    cpu.port().bind(xbar.add_upstream("cpu"));
    xbar.add_downstream("a", AddrRange(0, 0x1000)).bind(memA.port());
    xbar.add_downstream("b", AddrRange(0x1000, 0x2000)).bind(memB.port());
    sim.startup();

    auto p1 = Packet::make_read(0x10, 4);
    auto p2 = Packet::make_read(0x1800, 4);
    ASSERT_TRUE(cpu.port().send_req(p1));
    ASSERT_TRUE(cpu.port().send_req(p2));
    test::drain(sim);

    EXPECT_EQ(memA.requests.size(), 1u);
    EXPECT_EQ(memB.requests.size(), 1u);
    EXPECT_EQ(memB.requests.front()->addr(), 0x1800u);
}

TEST_F(XbarFixture, DefaultRouteCatchesUnmatched)
{
    Xbar xbar(sim, "xbar", params);
    MockRequestor cpu("cpu");
    MockResponder memory("mem");
    MockResponder pcie("pcie");

    cpu.port().bind(xbar.add_upstream("cpu"));
    xbar.add_downstream("mem", AddrRange(0, 0x1000)).bind(memory.port());
    xbar.add_default_downstream("pcie").bind(pcie.port());
    sim.startup();

    auto p = Packet::make_read(0x999999, 4);
    ASSERT_TRUE(cpu.port().send_req(p));
    test::drain(sim);
    EXPECT_EQ(pcie.requests.size(), 1u);
}

TEST_F(XbarFixture, NoRoutePanics)
{
    Xbar xbar(sim, "xbar", params);
    MockRequestor cpu("cpu");
    MockResponder memory("mem");
    cpu.port().bind(xbar.add_upstream("cpu"));
    xbar.add_downstream("mem", AddrRange(0, 0x1000)).bind(memory.port());
    sim.startup();
    auto p = Packet::make_read(0x5000, 4);
    EXPECT_THROW((void)cpu.port().send_req(p), SimError);
}

TEST_F(XbarFixture, OverlappingRangesRejectedAtStartup)
{
    Xbar xbar(sim, "xbar", params);
    MockRequestor cpu("cpu");
    MockResponder a("a");
    MockResponder b("b");
    cpu.port().bind(xbar.add_upstream("cpu"));
    xbar.add_downstream("a", AddrRange(0, 0x1000)).bind(a.port());
    xbar.add_downstream("b", AddrRange(0x800, 0x1800)).bind(b.port());
    EXPECT_THROW(sim.startup(), ConfigError);
}

TEST_F(XbarFixture, ResponsesReturnToOriginatingPort)
{
    Xbar xbar(sim, "xbar", params);
    MockRequestor cpu0("cpu0");
    MockRequestor cpu1("cpu1");
    MockResponder memory("mem");

    cpu0.port().bind(xbar.add_upstream("cpu0"));
    cpu1.port().bind(xbar.add_upstream("cpu1"));
    xbar.add_downstream("mem", AddrRange(0, kMiB)).bind(memory.port());
    sim.startup();

    auto p0 = Packet::make_read(0x100, 4);
    auto p1 = Packet::make_read(0x200, 4);
    ASSERT_TRUE(cpu0.port().send_req(p0));
    ASSERT_TRUE(cpu1.port().send_req(p1));
    test::drain(sim);
    ASSERT_EQ(memory.requests.size(), 2u);

    // Answer in reverse order; each response must find its own origin.
    while (!memory.requests.empty()) {
        mem::PacketPtr pkt = std::move(memory.requests.back());
        memory.requests.pop_back();
        pkt->make_response();
        ASSERT_TRUE(memory.port().send_resp(pkt));
    }
    test::drain(sim);
    ASSERT_EQ(cpu0.responses.size(), 1u);
    ASSERT_EQ(cpu1.responses.size(), 1u);
    EXPECT_EQ(cpu0.responses[0]->addr(), 0x100u);
    EXPECT_EQ(cpu1.responses[0]->addr(), 0x200u);
}

TEST_F(XbarFixture, RequestLatencyApplied)
{
    params.request_latency_ns = 10.0;
    Xbar xbar(sim, "xbar", params);
    MockRequestor cpu("cpu");
    MockResponder memory("mem");
    cpu.port().bind(xbar.add_upstream("cpu"));
    xbar.add_downstream("mem", AddrRange(0, kMiB)).bind(memory.port());
    sim.startup();
    auto p = Packet::make_read(0, 4);
    ASSERT_TRUE(cpu.port().send_req(p));
    test::drain(sim);
    EXPECT_GE(sim.now(), ticks_from_ns(10.0));
}

TEST_F(XbarFixture, BoundedQueueBackpressuresAndRecovers)
{
    params.queue_capacity = 2;
    Xbar xbar(sim, "xbar", params);
    MockRequestor cpu("cpu");
    MockResponder memory("mem");
    cpu.port().bind(xbar.add_upstream("cpu"));
    xbar.add_downstream("mem", AddrRange(0, kMiB)).bind(memory.port());
    sim.startup();

    int accepted = 0;
    for (int i = 0; i < 5; ++i) {
        auto p = Packet::make_read(static_cast<Addr>(i) * 64, 4);
        if (!cpu.port().send_req(p)) {
            break;
        }
        ++accepted;
    }
    EXPECT_EQ(accepted, 2);
    test::drain(sim);
    EXPECT_GE(cpu.req_retries, 1u);
    EXPECT_EQ(memory.requests.size(), 2u);
}

struct RecordingSnooper : Snooper {
    void snoop_invalidate(Addr addr, std::uint32_t size) override
    {
        invalidations.push_back({addr, size});
    }
    void snoop_clean(Addr addr, std::uint32_t size) override
    {
        cleans.push_back({addr, size});
    }
    std::vector<std::pair<Addr, std::uint32_t>> invalidations;
    std::vector<std::pair<Addr, std::uint32_t>> cleans;
};

TEST_F(XbarFixture, CoherentBusDistributesSnoops)
{
    params.coherent = true;
    Xbar xbar(sim, "bus", params);
    MockRequestor cpu("cpu");
    MockRequestor io("io");
    MockResponder memory("mem");

    auto& cpu_up = xbar.add_upstream("cpu");
    auto& io_up = xbar.add_upstream("io");
    cpu.port().bind(cpu_up);
    io.port().bind(io_up);
    xbar.add_downstream("mem", AddrRange(0, kMiB)).bind(memory.port());

    RecordingSnooper cpu_snoop;
    RecordingSnooper io_snoop;
    xbar.register_snooper(cpu_snoop, cpu_up);
    xbar.register_snooper(io_snoop, io_up);
    sim.startup();

    // IO write: must invalidate the CPU snooper only (not reflect to IO).
    auto w = Packet::make_write(0x400, 64);
    ASSERT_TRUE(io.port().send_req(w));
    EXPECT_EQ(cpu_snoop.invalidations.size(), 1u);
    EXPECT_EQ(io_snoop.invalidations.size(), 0u);
    EXPECT_EQ(cpu_snoop.invalidations[0].first, 0x400u);

    // CPU read: demotes dirty lines elsewhere.
    auto r = Packet::make_read(0x800, 64);
    ASSERT_TRUE(cpu.port().send_req(r));
    EXPECT_EQ(io_snoop.cleans.size(), 1u);
    EXPECT_EQ(cpu_snoop.cleans.size(), 0u);
    test::drain(sim);
}

TEST_F(XbarFixture, UncacheableTrafficSkipsSnoops)
{
    params.coherent = true;
    Xbar xbar(sim, "bus", params);
    MockRequestor cpu("cpu");
    MockRequestor io("io");
    MockResponder memory("mem");
    auto& cpu_up = xbar.add_upstream("cpu");
    auto& io_up = xbar.add_upstream("io");
    cpu.port().bind(cpu_up);
    io.port().bind(io_up);
    xbar.add_downstream("mem", AddrRange(0, kMiB)).bind(memory.port());
    RecordingSnooper cpu_snoop;
    xbar.register_snooper(cpu_snoop, cpu_up);
    sim.startup();

    auto w = Packet::make_write(0x400, 64);
    w->flags.uncacheable = true;
    ASSERT_TRUE(io.port().send_req(w));
    EXPECT_EQ(cpu_snoop.invalidations.size(), 0u);
    test::drain(sim);
}

TEST_F(XbarFixture, SnooperMustBeRegisteredOnOwnPort)
{
    Xbar xbar(sim, "bus", params);
    MockRequestor cpu("cpu");
    cpu.port().bind(xbar.add_upstream("cpu"));

    Xbar other(sim, "other", params);
    MockRequestor foreign("foreign");
    auto& foreign_up = other.add_upstream("x");
    foreign.port().bind(foreign_up);

    RecordingSnooper snoop;
    EXPECT_THROW(xbar.register_snooper(snoop, foreign_up), ConfigError);
}

// --- one-entry route memo audit ---------------------------------------------
// The xbar memoises the last (range, port) routing answer. These tests pin
// the hazards that could make a memo stale: alternating targets, ports
// added after traffic has already populated the memo, and default-routed
// addresses (which must never be memoised as a range answer).

TEST_F(XbarFixture, RouteMemoAlternatingTargetsStaysExact)
{
    Xbar xbar(sim, "xbar", params);
    MockRequestor cpu("cpu");
    MockResponder memA("memA");
    MockResponder memB("memB");
    cpu.port().bind(xbar.add_upstream("cpu"));
    xbar.add_downstream("a", AddrRange(0, 0x1000)).bind(memA.port());
    xbar.add_downstream("b", AddrRange(0x1000, 0x2000)).bind(memB.port());
    sim.startup();

    // A, B, A, B, A: every flip must re-route; a sticky memo would
    // misdeliver the alternation.
    for (int i = 0; i < 5; ++i) {
        auto p = Packet::make_read(i % 2 == 0 ? 0x10 : 0x1800, 4);
        ASSERT_TRUE(cpu.port().send_req(p));
        test::drain(sim);
    }
    EXPECT_EQ(memA.requests.size(), 3u);
    EXPECT_EQ(memB.requests.size(), 2u);
}

TEST_F(XbarFixture, RouteMemoInvalidatedByLatePortAddition)
{
    Xbar xbar(sim, "xbar", params);
    MockRequestor cpu("cpu");
    MockResponder memA("memA");
    MockResponder late("late");
    MockResponder fallback("fallback");
    cpu.port().bind(xbar.add_upstream("cpu"));
    xbar.add_downstream("a", AddrRange(0, 0x1000)).bind(memA.port());
    xbar.add_default_downstream("dflt").bind(fallback.port());
    sim.startup();

    // Populate the memo with range A, and send an unclaimed address (must
    // reach the default port and must NOT be memoised as a range answer).
    auto p1 = Packet::make_read(0x20, 4);
    auto p2 = Packet::make_read(0x5000, 4);
    ASSERT_TRUE(cpu.port().send_req(p1));
    ASSERT_TRUE(cpu.port().send_req(p2));
    test::drain(sim);
    EXPECT_EQ(memA.requests.size(), 1u);
    EXPECT_EQ(fallback.requests.size(), 1u);

    // Add a port claiming the formerly-default address: the memo is
    // dropped, so the same address now routes to the new port.
    xbar.add_downstream("late", AddrRange(0x5000, 0x6000)).bind(late.port());
    auto p3 = Packet::make_read(0x5000, 4);
    auto p4 = Packet::make_read(0x20, 4); // the old memoised range as well
    ASSERT_TRUE(cpu.port().send_req(p3));
    ASSERT_TRUE(cpu.port().send_req(p4));
    test::drain(sim);
    EXPECT_EQ(late.requests.size(), 1u);
    EXPECT_EQ(fallback.requests.size(), 1u); // unchanged
    EXPECT_EQ(memA.requests.size(), 2u);
}

TEST_F(XbarFixture, OverlappingRangesStillRejectedAtStartup)
{
    // The memo's correctness argument leans on startup()'s disjointness
    // check (a memoised answer must be the answer the scan would give);
    // make sure overlap keeps failing loudly.
    Xbar xbar(sim, "xbar", params);
    MockRequestor cpu("cpu");
    MockResponder memA("memA");
    MockResponder memB("memB");
    cpu.port().bind(xbar.add_upstream("cpu"));
    xbar.add_downstream("a", AddrRange(0, 0x1000)).bind(memA.port());
    xbar.add_downstream("b", AddrRange(0x800, 0x1800)).bind(memB.port());
    EXPECT_THROW(sim.startup(), ConfigError);
}

} // namespace
} // namespace accesys::mem
