// Tests for the analytic models (roofline + composition).
#include <gtest/gtest.h>

#include "analytic/composition.hh"
#include "analytic/roofline.hh"

namespace accesys::analytic {
namespace {

TEST(Roofline, TransferFloor)
{
    RooflineParams p;
    p.bytes_per_tile = 16384;
    p.bandwidth_gbps = 8.0;
    EXPECT_DOUBLE_EQ(transfer_ns_per_tile(p), 2048.0);
    EXPECT_DOUBLE_EQ(knee_compute_ns(p), 2048.0);
}

TEST(Roofline, PlateauBelowKneeLinearAbove)
{
    RooflineParams p;
    p.bytes_per_tile = 8000;
    p.bandwidth_gbps = 8.0; // floor = 1000 ns
    EXPECT_DOUBLE_EQ(tile_time_ns(p, 100), 1000.0);
    EXPECT_DOUBLE_EQ(tile_time_ns(p, 999), 1000.0);
    EXPECT_DOUBLE_EQ(tile_time_ns(p, 2000), 2000.0);
    EXPECT_DOUBLE_EQ(tile_time_ns(p, 4000), 4000.0);
}

TEST(Roofline, FixedOverheadAdds)
{
    RooflineParams p;
    p.bytes_per_tile = 800;
    p.bandwidth_gbps = 8.0;
    p.fixed_overhead_ns = 50.0;
    EXPECT_DOUBLE_EQ(tile_time_ns(p, 10), 150.0);
}

TEST(Roofline, SeriesMatchesPointEvaluation)
{
    RooflineParams p;
    p.bytes_per_tile = 1600;
    p.bandwidth_gbps = 16.0;
    const auto series = roofline_series(p, {10, 100, 1000});
    ASSERT_EQ(series.size(), 3u);
    for (const auto& pt : series) {
        EXPECT_DOUBLE_EQ(pt.predicted_tile_ns, tile_time_ns(p, pt.compute_ns));
    }
}

TEST(Roofline, Validation)
{
    RooflineParams p;
    p.bytes_per_tile = 0;
    EXPECT_THROW(p.validate(), ConfigError);
}

TEST(Composition, PureGemmAndPureNonGemm)
{
    SystemPerf sys{0.5, 2.0, 0.25};
    EXPECT_DOUBLE_EQ(exec_time(sys, 0.0), 0.5 + 1.0 / 2.0);
    EXPECT_DOUBLE_EQ(exec_time(sys, 1.0), 0.5 + 1.0 / 0.25);
}

TEST(Composition, LinearInFraction)
{
    SystemPerf sys{0.0, 1.0, 0.5};
    const double t0 = exec_time(sys, 0.2);
    const double t1 = exec_time(sys, 0.4);
    const double t2 = exec_time(sys, 0.6);
    EXPECT_NEAR(t1 - t0, t2 - t1, 1e-12);
}

TEST(Composition, OutOfRangeFractionThrows)
{
    SystemPerf sys{0, 1, 1};
    EXPECT_THROW(exec_time(sys, -0.1), ConfigError);
    EXPECT_THROW(exec_time(sys, 1.1), ConfigError);
    SystemPerf bad{0, 0, 1};
    EXPECT_THROW(exec_time(bad, 0.5), ConfigError);
}

TEST(Composition, CrossoverClosedFormMatchesScan)
{
    // DevMem-like: fast GEMM, slow Non-GEMM. PCIe-like: the reverse.
    SystemPerf devmem{0.0, 4.0, 0.5};
    SystemPerf pcie{0.0, 1.0, 2.0};
    const auto w = crossover_nongemm_frac(devmem, pcie);
    ASSERT_TRUE(w.has_value());
    // Verify by bisection-style scan.
    double scan = -1;
    for (double x = 0.0005; x < 1.0; x += 0.001) {
        const double d = exec_time(devmem, x) - exec_time(pcie, x);
        if (d >= 0) {
            scan = x;
            break;
        }
    }
    ASSERT_GT(scan, 0);
    EXPECT_NEAR(*w, scan, 0.002);
    // Below the crossover DevMem wins, above it PCIe wins.
    EXPECT_LT(exec_time(devmem, *w - 0.05), exec_time(pcie, *w - 0.05));
    EXPECT_GT(exec_time(devmem, *w + 0.05), exec_time(pcie, *w + 0.05));
}

TEST(Composition, NoCrossoverWhenDominated)
{
    SystemPerf fast{0.0, 2.0, 2.0};
    SystemPerf slow{0.0, 1.0, 1.0};
    EXPECT_FALSE(crossover_nongemm_frac(fast, slow).has_value());
}

TEST(Composition, ParallelLinesNoUniqueCrossover)
{
    SystemPerf a{0.0, 1.0, 0.5};
    SystemPerf b{0.1, 1.0, 0.5};
    EXPECT_FALSE(crossover_nongemm_frac(a, b).has_value());
}

TEST(Composition, GemmThresholdConversion)
{
    EXPECT_DOUBLE_EQ(as_gemm_threshold(0.3), 0.7);
}

// Property: the paper's monotonicity claim — as the PCIe system's GEMM
// throughput grows, the Non-GEMM fraction below which DevMem wins shrinks.
class CrossoverMonotonic : public ::testing::TestWithParam<double> {};

TEST_P(CrossoverMonotonic, FasterPcieShrinksDevMemRegion)
{
    SystemPerf devmem{0.0, 4.0, 0.25};
    SystemPerf pcie_slow{0.0, GetParam(), 1.0};
    SystemPerf pcie_fast{0.0, GetParam() * 2.0, 1.0};
    const auto w_slow = crossover_nongemm_frac(devmem, pcie_slow);
    const auto w_fast = crossover_nongemm_frac(devmem, pcie_fast);
    ASSERT_TRUE(w_slow.has_value());
    ASSERT_TRUE(w_fast.has_value());
    EXPECT_LT(*w_fast, *w_slow);
}

INSTANTIATE_TEST_SUITE_P(Rates, CrossoverMonotonic,
                         ::testing::Values(0.5, 1.0, 1.5));

} // namespace
} // namespace accesys::analytic
