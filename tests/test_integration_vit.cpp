// Integration tests: ViT inference across the paper's four system
// configurations, checking phase accounting and the qualitative orderings
// the evaluation section reports.
#include <gtest/gtest.h>

#include "core/runner.hh"

namespace accesys::core {
namespace {

workload::VitConfig tiny_vit()
{
    // One encoder layer with small hidden size: exercises the whole driver
    // and both op kinds while staying fast enough for CI.
    return workload::VitConfig{"ViT-Test", 1, 192, 3, 4, 197};
}

struct VitPoint {
    const char* label;
    Placement place;
    double pcie_gbps;
    const char* mem;
    std::uint32_t pkt;
};

VitRunResult run_point(const VitPoint& p, const workload::VitConfig& model)
{
    SystemConfig cfg = SystemConfig::paper_default();
    cfg.set_packet_size(p.pkt);
    if (p.place == Placement::host) {
        cfg.set_host_dram(p.mem);
        cfg.set_pcie_target_gbps(p.pcie_gbps);
    } else {
        cfg.set_devmem(p.mem);
        cfg.set_pcie_target_gbps(64.0, 16);
    }
    System sys(cfg);
    Runner runner(sys);
    return runner.run_vit(model, p.place);
}

TEST(IntegrationVit, PhaseAccountingConsistent)
{
    const auto model = tiny_vit();
    const auto res = run_point(
        VitPoint{"PCIe-8GB", Placement::host, 8.0, "DDR4", 256}, model);

    const auto sum = workload::summarize(workload::lower_vit(model));
    EXPECT_EQ(res.gemm_cmds, sum.gemm_count);
    EXPECT_EQ(res.vector_ops, sum.vector_count);
    EXPECT_GT(res.gemm_ticks, 0u);
    EXPECT_GT(res.nongemm_ticks, 0u);
    EXPECT_LE(res.gemm_ticks + res.nongemm_ticks, res.elapsed());
    // "Other" (driver glue) must be a small remainder.
    EXPECT_LT(res.other_ticks(), res.elapsed() / 4);
}

TEST(IntegrationVit, BandwidthOrderingHolds)
{
    const auto model = tiny_vit();
    const auto r2 = run_point(
        VitPoint{"PCIe-2GB", Placement::host, 2.0, "DDR4", 256}, model);
    const auto r8 = run_point(
        VitPoint{"PCIe-8GB", Placement::host, 8.0, "DDR4", 256}, model);
    const auto r64 = run_point(
        VitPoint{"PCIe-64GB", Placement::host, 64.0, "HBM2", 256}, model);

    // Paper Fig. 7: more PCIe bandwidth, faster inference.
    EXPECT_GT(r2.elapsed(), r8.elapsed());
    EXPECT_GT(r8.elapsed(), r64.elapsed());
    // Non-GEMM work runs on the CPU from host memory: roughly constant.
    const double ng2 = ticks_to_ms(r2.nongemm_ticks);
    const double ng64 = ticks_to_ms(r64.nongemm_ticks);
    EXPECT_NEAR(ng2, ng64, 0.25 * ng2);
}

TEST(IntegrationVit, DevMemTradeoffMatchesFig8)
{
    const auto model = tiny_vit();
    const auto pcie64 = run_point(
        VitPoint{"PCIe-64GB", Placement::host, 64.0, "HBM2", 256}, model);
    const auto devmem = run_point(
        VitPoint{"DevMem", Placement::devmem, 0.0, "HBM2", 64}, model);

    // Paper Fig. 8: DevMem wins the GEMM phase...
    EXPECT_LT(devmem.gemm_ticks, pcie64.gemm_ticks);
    // ...but loses Non-GEMM badly (NUMA penalty), by a multi-x factor.
    EXPECT_GT(devmem.nongemm_ticks, 2 * pcie64.nongemm_ticks);
    // Paper Fig. 7: overall, DevMem lands behind PCIe-64GB.
    EXPECT_GT(devmem.elapsed(), pcie64.elapsed());
}

TEST(IntegrationVit, CommandsMatchAcceleratorCounters)
{
    const auto model = tiny_vit();
    SystemConfig cfg = SystemConfig::paper_default();
    cfg.set_pcie_target_gbps(8.0);
    System sys(cfg);
    Runner runner(sys);
    const auto res = runner.run_vit(model, Placement::host);
    EXPECT_EQ(sys.stat("mf.commands"), static_cast<double>(res.gemm_cmds));
    EXPECT_EQ(sys.stat("cpu0.vector_ops"),
              static_cast<double>(res.vector_ops));
    // Every command polls at least once.
    EXPECT_GE(sys.stat("cpu0.polls"), static_cast<double>(res.gemm_cmds));
}

TEST(IntegrationVit, DevMemUsesAperture)
{
    const auto model = tiny_vit();
    SystemConfig cfg = SystemConfig::paper_default();
    cfg.set_devmem("HBM2");
    cfg.set_packet_size(64);
    System sys(cfg);
    Runner runner(sys);
    (void)runner.run_vit(model, Placement::devmem);
    // CPU Non-GEMM reads crossed PCIe into device memory.
    EXPECT_GT(sys.stat("mf.aperture_reads"), 0.0);
    EXPECT_GT(sys.stat("mf.aperture_writes"), 0.0);
}

} // namespace
} // namespace accesys::core
