// Unit tests for mem::Packet and the address-range helpers.
#include <gtest/gtest.h>

#include "mem/addr_range.hh"
#include "mem/backing_store.hh"
#include "mem/packet.hh"

namespace accesys::mem {
namespace {

TEST(Packet, FactoryAndPredicates)
{
    auto rd = Packet::make_read(0x1000, 64);
    EXPECT_TRUE(rd->is_read());
    EXPECT_TRUE(rd->is_request());
    EXPECT_FALSE(rd->is_response());
    EXPECT_EQ(rd->addr(), 0x1000u);
    EXPECT_EQ(rd->size(), 64u);
    EXPECT_EQ(rd->end_addr(), 0x1040u);

    auto wr = Packet::make_write(0x2000, 8);
    EXPECT_TRUE(wr->is_write());
    EXPECT_TRUE(wr->is_request());
}

TEST(Packet, MakeResponseFlipsCommand)
{
    auto rd = Packet::make_read(0, 4);
    rd->make_response();
    EXPECT_EQ(rd->cmd(), MemCmd::read_resp);
    EXPECT_TRUE(rd->is_response());
    EXPECT_THROW(rd->make_response(), SimError);

    auto wr = Packet::make_write(0, 4);
    wr->make_response();
    EXPECT_EQ(wr->cmd(), MemCmd::write_resp);
}

TEST(Packet, RouteStackLifo)
{
    auto p = Packet::make_read(0, 4);
    p->push_route(3);
    p->push_route(7);
    EXPECT_EQ(p->route_depth(), 2u);
    EXPECT_EQ(p->pop_route(), 7);
    EXPECT_EQ(p->pop_route(), 3);
    EXPECT_THROW(p->pop_route(), SimError);
}

TEST(Packet, TranslationRecordsOriginal)
{
    auto p = Packet::make_read(0x5123, 8);
    p->flags.needs_translation = true;
    p->record_translation(0x9123);
    EXPECT_EQ(p->addr(), 0x9123u);
    EXPECT_EQ(p->orig_addr(), 0x5123u);
    EXPECT_FALSE(p->flags.needs_translation);
}

TEST(Packet, PayloadRoundTrip)
{
    auto p = Packet::make_write(0, 8);
    EXPECT_FALSE(p->has_payload());
    p->set_payload_value<std::uint64_t>(0xDEADBEEFCAFEF00DULL);
    EXPECT_TRUE(p->has_payload());
    EXPECT_EQ(p->payload_value<std::uint64_t>(), 0xDEADBEEFCAFEF00DULL);
}

TEST(Packet, DescribeMentionsKeyFields)
{
    auto p = Packet::make_read(0xABC, 32);
    p->flags.uncacheable = true;
    const auto s = p->describe();
    EXPECT_NE(s.find("ReadReq"), std::string::npos);
    EXPECT_NE(s.find("abc"), std::string::npos);
    EXPECT_NE(s.find("UC"), std::string::npos);
}

TEST(Packet, RequestorIdsUnique)
{
    const auto a = alloc_requestor_id();
    const auto b = alloc_requestor_id();
    EXPECT_NE(a, b);
}

TEST(AddrRange, ContainsAndOverlaps)
{
    const AddrRange r(0x1000, 0x2000);
    EXPECT_TRUE(r.contains(0x1000));
    EXPECT_TRUE(r.contains(0x1FFF));
    EXPECT_FALSE(r.contains(0x2000));
    EXPECT_TRUE(r.contains(0x1800, 0x800));
    EXPECT_FALSE(r.contains(0x1801, 0x800));
    EXPECT_TRUE(r.overlaps(AddrRange(0x1FFF, 0x3000)));
    EXPECT_FALSE(r.overlaps(AddrRange(0x2000, 0x3000)));
    EXPECT_EQ(r.size(), 0x1000u);
}

TEST(AddrRange, WithSizeAndOffset)
{
    const auto r = AddrRange::with_size(0x4000, 0x100);
    EXPECT_EQ(r.end(), 0x4100u);
    EXPECT_EQ(r.offset(0x4080), 0x80u);
    EXPECT_THROW((void)r.offset(0x4100), SimError);
}

TEST(AddrRange, CheckDisjoint)
{
    EXPECT_NO_THROW(check_disjoint(
        {AddrRange(0, 10), AddrRange(10, 20), AddrRange(30, 40)}));
    EXPECT_THROW(check_disjoint({AddrRange(0, 10), AddrRange(5, 15)}),
                 ConfigError);
}

TEST(AddrRange, BadBoundsThrow)
{
    EXPECT_THROW(AddrRange(10, 5), ConfigError);
}

TEST(BackingStore, ReadBackWritten)
{
    BackingStore store;
    const std::uint32_t v = 0x12345678;
    store.write_obj(0x1000, v);
    EXPECT_EQ(store.read_obj<std::uint32_t>(0x1000), v);
}

TEST(BackingStore, UntouchedReadsZero)
{
    BackingStore store;
    EXPECT_EQ(store.read_obj<std::uint64_t>(0x123456789ULL), 0u);
    EXPECT_EQ(store.chunks_allocated(), 0u);
}

TEST(Packet, RouteOverflowThrows)
{
    auto p = Packet::make_read(0, 4);
    for (std::size_t i = 0; i < Packet::kMaxRouteDepth; ++i) {
        p->push_route(static_cast<std::uint16_t>(i));
    }
    EXPECT_EQ(p->route_depth(), Packet::kMaxRouteDepth);
    EXPECT_THROW(p->push_route(99), SimError);
}

TEST(Packet, PayloadOverflowThrows)
{
    auto p = Packet::make_write(0, 64);
    std::vector<std::uint8_t> big(Packet::kMaxInlinePayload + 1, 0xAB);
    EXPECT_THROW(p->set_payload(big.data(), big.size()), SimError);
    p->set_payload(big.data(), Packet::kMaxInlinePayload); // exactly fits
    EXPECT_EQ(p->payload_size(), Packet::kMaxInlinePayload);
}

TEST(PacketPool, RecyclesStorageAndResetsState)
{
    PacketPool pool;
    const Packet* first = nullptr;
    {
        auto p = pool.make_read(0x1000, 64);
        first = p.get();
        p->push_route(5);
        p->set_payload_value<std::uint64_t>(0x1234);
        p->set_requestor(7);
        p->set_tag(42);
        p->flags.uncacheable = true;
    }
    EXPECT_EQ(pool.allocs_total(), 1u);
    EXPECT_EQ(pool.recycles_total(), 1u);
    EXPECT_EQ(pool.free_count(), 1u);

    // The same storage comes back, fully re-initialised.
    auto q = pool.make_write(0x2000, 8);
    EXPECT_EQ(q.get(), first);
    EXPECT_EQ(pool.allocs_total(), 1u); // no new heap allocation
    EXPECT_EQ(pool.acquires_total(), 2u);
    EXPECT_EQ(q->route_depth(), 0u);
    EXPECT_FALSE(q->has_payload());
    EXPECT_EQ(q->requestor(), 0u);
    EXPECT_EQ(q->tag(), 0u);
    EXPECT_FALSE(q->flags.uncacheable);
    EXPECT_EQ(q->addr(), 0x2000u);
    EXPECT_TRUE(q->is_write());
}

TEST(PacketPool, AllocsStayFlatUnderChurn)
{
    PacketPool pool;
    pool.reserve(4);
    const auto baseline = pool.allocs_total();
    for (int i = 0; i < 10000; ++i) {
        auto a = pool.make_read(static_cast<Addr>(i) * 64, 64);
        auto b = pool.make_write(static_cast<Addr>(i) * 64, 64);
        a->push_route(1);
        b->make_response();
    }
    EXPECT_EQ(pool.allocs_total(), baseline); // steady state: zero news
    EXPECT_EQ(pool.acquires_total(), 20000u);
    EXPECT_EQ(pool.live(), 0u);
}

TEST(PacketPool, GlobalFactoriesDrawFromGlobalPool)
{
    auto& pool = packet_pool();
    const auto acquires = pool.acquires_total();
    auto p = Packet::make_read(0x10, 4);
    EXPECT_EQ(pool.acquires_total(), acquires + 1);
}

TEST(BackingStore, CrossChunkAccess)
{
    BackingStore store;
    std::vector<std::uint8_t> data(3 * BackingStore::kChunkBytes);
    for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::uint8_t>(i * 7);
    }
    // Deliberately offset so the write straddles chunk boundaries.
    const Addr base = BackingStore::kChunkBytes / 2 + 13;
    store.write(base, data.data(), data.size());
    std::vector<std::uint8_t> back(data.size());
    store.read(base, back.data(), back.size());
    EXPECT_EQ(back, data);
}

TEST(BackingStore, CopyMovesBytes)
{
    BackingStore store;
    const char msg[] = "hello accelerator";
    store.write(0x100, msg, sizeof(msg));
    store.copy(0x900000, 0x100, sizeof(msg));
    char out[sizeof(msg)] = {};
    store.read(0x900000, out, sizeof(msg));
    EXPECT_STREQ(out, msg);
}

TEST(BackingStore, SparseAllocationOnlyTouched)
{
    BackingStore store;
    store.write_obj<std::uint8_t>(0, 1);
    store.write_obj<std::uint8_t>(10 * kGiB, 1);
    EXPECT_EQ(store.chunks_allocated(), 2u);
}

} // namespace
} // namespace accesys::mem
