// Tests for the System builder: address map, allocators, page mapping and
// the Runner's input validation.
#include <gtest/gtest.h>

#include "core/runner.hh"

namespace accesys::core {
namespace {

TEST(System, BuildsPaperDefault)
{
    System sys(SystemConfig::paper_default());
    EXPECT_EQ(sys.host_range().start(), 0u);
    EXPECT_EQ(sys.host_range().size(), 4 * kGiB);
    EXPECT_GT(sys.stats().size(), 50u); // components registered their stats
}

TEST(System, HostAllocatorAlignsAndAdvances)
{
    System sys(SystemConfig::paper_default());
    const Addr a = sys.alloc_host(100);
    const Addr b = sys.alloc_host(100);
    EXPECT_EQ(a % 4096, 0u);
    EXPECT_EQ(b % 4096, 0u);
    EXPECT_GT(b, a);
    EXPECT_TRUE(sys.host_range().contains(a, 100));
}

TEST(System, HostAllocatorExhausts)
{
    System sys(SystemConfig::paper_default());
    // The workload arena is bounded by the page-table carve-out.
    EXPECT_THROW((void)sys.alloc_host(16ULL * kGiB), SimError);
}

TEST(System, DevmemAllocRequiresEnable)
{
    System sys(SystemConfig::paper_default());
    EXPECT_THROW((void)sys.alloc_devmem(4096), SimError);

    auto cfg = SystemConfig::paper_default();
    cfg.set_devmem("HBM2");
    System sys2(cfg);
    const Addr d = sys2.alloc_devmem(4096);
    EXPECT_TRUE(sys2.devmem_range().contains(d, 4096));
}

TEST(System, MapHostPagesRoundsToPageBoundaries)
{
    System sys(SystemConfig::paper_default());
    const Addr a = sys.alloc_host(100);
    sys.map_host_pages(a + 10, 20); // interior span
    // The whole covering page must now translate (identity).
    EXPECT_EQ(sys.page_table().translate(a), a);
}

TEST(System, StatLookupThrowsOnUnknown)
{
    System sys(SystemConfig::paper_default());
    EXPECT_THROW((void)sys.stat("no.such.stat"), SimError);
    EXPECT_EQ(sys.stat("mf.commands"), 0.0);
}

TEST(System, AccessorsWired)
{
    auto cfg = SystemConfig::paper_default();
    cfg.set_devmem("GDDR6");
    System sys(cfg);
    EXPECT_EQ(sys.accelerator().device_id(), 1);
    EXPECT_TRUE(sys.host_cpu().idle());
    EXPECT_EQ(sys.pcie_uplink().params().lanes, cfg.pcie.lanes);
    EXPECT_EQ(sys.devmem_range().size(), cfg.devmem_bytes);
}

TEST(Runner, DegenerateSpecRejected)
{
    System sys(SystemConfig::paper_default());
    Runner runner(sys);
    EXPECT_THROW((void)runner.run_gemm(workload::GemmSpec{0, 4, 4, 1},
                                       Placement::host),
                 SimError);
}

TEST(Runner, DevmemPlacementWithoutDevmemRejected)
{
    System sys(SystemConfig::paper_default());
    Runner runner(sys);
    EXPECT_THROW((void)runner.run_gemm(workload::GemmSpec{16, 16, 16, 1},
                                       Placement::devmem),
                 SimError);
}

TEST(System, TwoIndependentSystemsCoexist)
{
    // Each System owns its Simulator/stats; building two must not clash
    // (guards against hidden global state).
    System a(SystemConfig::paper_default());
    System b(SystemConfig::paper_default());
    Runner ra(a);
    Runner rb(b);
    const auto res_a =
        ra.run_gemm(workload::GemmSpec{16, 16, 16, 1}, Placement::host, true);
    const auto res_b =
        rb.run_gemm(workload::GemmSpec{16, 16, 16, 1}, Placement::host, true);
    EXPECT_TRUE(res_a.verified);
    EXPECT_TRUE(res_b.verified);
    // Determinism: identical configs and workloads give identical timing.
    EXPECT_EQ(res_a.elapsed(), res_b.elapsed());
}

} // namespace
} // namespace accesys::core
