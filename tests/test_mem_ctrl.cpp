// Tests for MemCtrl (+ DramTiming backend), SimpleMem and TrafficGen.
#include "test_util.hh"

#include "mem/mem_ctrl.hh"
#include "mem/traffic_gen.hh"

namespace accesys::mem {
namespace {

using test::MockRequestor;

struct CtrlFixture : ::testing::Test {
    Simulator sim;
    MemCtrlParams params;
    AddrRange range{0, 64 * kMiB};

    CtrlFixture() { params.dram = ddr4_2400(); }
};

TEST_F(CtrlFixture, ReadGetsResponseWithLatency)
{
    MemCtrl ctrl(sim, "mem", params, range);
    MockRequestor req("req");
    req.port().bind(ctrl.port());

    auto pkt = Packet::make_read(0x1000, 64);
    ASSERT_TRUE(req.port().send_req(pkt));
    test::drain(sim);

    ASSERT_EQ(req.responses.size(), 1u);
    EXPECT_EQ(req.responses[0]->cmd(), MemCmd::read_resp);
    // At least activate + CAS + burst + backend must have elapsed.
    EXPECT_GE(sim.now(), params.dram.tRCD() + params.dram.tCL());
}

TEST_F(CtrlFixture, WriteAckedQuickly)
{
    MemCtrl ctrl(sim, "mem", params, range);
    MockRequestor req("req");
    req.port().bind(ctrl.port());

    auto pkt = Packet::make_write(0x1000, 64);
    ASSERT_TRUE(req.port().send_req(pkt));
    sim.run(ticks_from_ns(params.frontend_latency_ns) + 1);
    EXPECT_EQ(req.responses.size(), 1u);
    test::drain(sim);
}

TEST_F(CtrlFixture, PostedWriteNoResponse)
{
    MemCtrl ctrl(sim, "mem", params, range);
    MockRequestor req("req");
    req.port().bind(ctrl.port());

    auto pkt = Packet::make_write(0x1000, 64);
    pkt->flags.posted = true;
    ASSERT_TRUE(req.port().send_req(pkt));
    test::drain(sim);
    EXPECT_EQ(req.responses.size(), 0u);
    EXPECT_EQ(sim.stats().value("mem.writes"), 1.0);
}

TEST_F(CtrlFixture, OutOfRangeRequestPanics)
{
    MemCtrl ctrl(sim, "mem", params, range);
    MockRequestor req("req");
    req.port().bind(ctrl.port());
    auto pkt = Packet::make_read(range.end(), 64);
    EXPECT_THROW((void)req.port().send_req(pkt), SimError);
}

TEST_F(CtrlFixture, BackpressureWhenQueueFull)
{
    params.read_queue_capacity = 2;
    MemCtrl ctrl(sim, "mem", params, range);
    MockRequestor req("req");
    req.port().bind(ctrl.port());

    // Saturate without letting the sim run.
    int accepted = 0;
    for (int i = 0; i < 4; ++i) {
        auto pkt = Packet::make_read(0x1000 + i * 64, 64);
        if (req.port().send_req(pkt)) {
            ++accepted;
        } else {
            break;
        }
    }
    EXPECT_EQ(accepted, 2);
    test::drain(sim);
    EXPECT_GE(req.req_retries, 1u); // retry arrived once space freed
    EXPECT_EQ(req.responses.size(), 2u);
}

TEST_F(CtrlFixture, TrafficGenReachesDdr4Bandwidth)
{
    MemCtrl ctrl(sim, "mem", params, range);
    TrafficGenParams tp;
    tp.total_bytes = 2 * kMiB;
    tp.working_set = 32 * kMiB;
    tp.req_bytes = 64;
    tp.window = 32;
    TrafficGen gen(sim, "gen", tp);
    gen.port().bind(ctrl.port());
    sim.startup();
    gen.start();
    test::drain(sim);
    EXPECT_TRUE(gen.done());
    EXPECT_GT(gen.achieved_gbps(), 0.85 * params.dram.peak_gbps());
    EXPECT_GT(ctrl.row_hit_rate(), 0.9); // sequential stream
}

TEST_F(CtrlFixture, RandomTrafficHasLowerRowHitRate)
{
    MemCtrl ctrl(sim, "mem", params, range);
    TrafficGenParams tp;
    tp.total_bytes = 1 * kMiB;
    tp.working_set = 32 * kMiB;
    tp.req_bytes = 64;
    tp.random_addresses = true;
    TrafficGen gen(sim, "gen", tp);
    gen.port().bind(ctrl.port());
    sim.startup();
    gen.start();
    test::drain(sim);
    EXPECT_LT(ctrl.row_hit_rate(), 0.5);
    EXPECT_LT(gen.achieved_gbps(), params.dram.peak_gbps());
}

TEST_F(CtrlFixture, MixedReadWriteCompletes)
{
    MemCtrl ctrl(sim, "mem", params, range);
    TrafficGenParams tp;
    tp.total_bytes = 1 * kMiB;
    tp.req_bytes = 64;
    tp.write_fraction = 0.5;
    TrafficGen gen(sim, "gen", tp);
    gen.port().bind(ctrl.port());
    sim.startup();
    bool done = false;
    gen.start([&done] { done = true; });
    test::drain(sim);
    EXPECT_TRUE(done);
    EXPECT_GT(sim.stats().value("mem.writes"), 0.0);
    EXPECT_GT(sim.stats().value("mem.bytes_written"), 0.0);
}

TEST_F(CtrlFixture, LargerRequestsSplitIntoBursts)
{
    MemCtrl ctrl(sim, "mem", params, range);
    MockRequestor req("req");
    req.port().bind(ctrl.port());
    auto pkt = Packet::make_read(0x1000, 256); // 4 bursts of 64
    ASSERT_TRUE(req.port().send_req(pkt));
    test::drain(sim);
    ASSERT_EQ(req.responses.size(), 1u);
    EXPECT_EQ(sim.stats().value("mem.bytes_read"), 256.0);
}

struct SimpleMemFixture : ::testing::Test {
    Simulator sim;
    SimpleMemParams params;
    AddrRange range{0, 16 * kMiB};
};

TEST_F(SimpleMemFixture, LatencyIsConfigured)
{
    params.latency_ns = 100.0;
    params.bandwidth_gbps = 1000.0; // effectively no serialization
    SimpleMem memory(sim, "sm", params, range);
    MockRequestor req("req");
    req.port().bind(memory.port());
    auto pkt = Packet::make_read(0, 64);
    ASSERT_TRUE(req.port().send_req(pkt));
    test::drain(sim);
    ASSERT_EQ(req.responses.size(), 1u);
    EXPECT_GE(sim.now(), ticks_from_ns(100.0));
    EXPECT_LE(sim.now(), ticks_from_ns(102.0));
}

TEST_F(SimpleMemFixture, BandwidthBoundsStream)
{
    params.latency_ns = 10.0;
    params.bandwidth_gbps = 8.0;
    SimpleMem memory(sim, "sm", params, range);
    TrafficGenParams tp;
    tp.total_bytes = 1 * kMiB;
    tp.req_bytes = 256;
    tp.window = 32;
    TrafficGen gen(sim, "gen", tp);
    gen.port().bind(memory.port());
    sim.startup();
    gen.start();
    test::drain(sim);
    EXPECT_LE(gen.achieved_gbps(), 8.0 * 1.02);
    EXPECT_GT(gen.achieved_gbps(), 8.0 * 0.9);
}

TEST_F(SimpleMemFixture, QueueCapacityBackpressures)
{
    params.queue_capacity = 1;
    params.latency_ns = 50.0;
    SimpleMem memory(sim, "sm", params, range);
    MockRequestor req("req");
    req.port().bind(memory.port());
    auto p1 = Packet::make_read(0, 64);
    auto p2 = Packet::make_read(64, 64);
    EXPECT_TRUE(req.port().send_req(p1));
    EXPECT_FALSE(req.port().send_req(p2));
    test::drain(sim);
    EXPECT_GE(req.req_retries, 1u);
}

TEST(TrafficGenParams, Validation)
{
    TrafficGenParams tp;
    tp.req_bytes = 0;
    EXPECT_THROW(tp.validate(), ConfigError);
    tp = {};
    tp.write_fraction = 1.5;
    EXPECT_THROW(tp.validate(), ConfigError);
    tp = {};
    tp.working_set = 16;
    tp.req_bytes = 64;
    EXPECT_THROW(tp.validate(), ConfigError);
}

} // namespace
} // namespace accesys::mem
