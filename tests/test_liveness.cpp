// Liveness watchdog: seeded deadlocks must terminate with a diagnostic
// SimError carrying a per-component occupancy report — never hang. Two
// scenario families from the robustness contract:
//
//   1. Credit leak on a boundary link (the peer stops releasing ingress
//      buffers, so the transmitter starves forever). Serial runs surface
//      this as a drain with jobs outstanding; parallel runs as K
//      consecutive zero-event quanta.
//   2. A job dispatched toward a latched-failed link (replay budget
//      exhausted, TLP dead) with no job timeout armed: the host CPU spins
//      on a completion flag that can never arrive, bounded by
//      max_polls_per_op.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/runner.hh"
#include "pcie/link.hh"
#include "workload/request_gen.hh"

namespace accesys::core {
namespace {

using workload::GemmSpec;

/// EXPECT_THROW plus message inspection: the SimError must identify the
/// deadlock and include the occupancy diagnostic.
template <typename Fn>
void expect_deadlock_diagnostic(Fn&& run, const char* needle)
{
    try {
        run();
        FAIL() << "seeded deadlock completed instead of raising SimError";
    } catch (const SimError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find(needle), std::string::npos) << msg;
        EXPECT_NE(msg.find("occupancy"), std::string::npos)
            << "diagnostic must carry the occupancy report: " << msg;
    }
}

TEST(Liveness, CreditLeakDeadlockDiagnosedSerial)
{
    // Zero the RC-side transmitter's credits on the shared uplink and
    // drop every future return: the doorbell MMIO write queues at the
    // link forever. The doorbell itself is posted (acked at the RC), so
    // the CPU moves on to polling its host-DRAM completion flag — the
    // queue never drains and the poll cap is the detector that fires.
    // (The Runner's drained-with-jobs-outstanding check covers wedges
    // where no component keeps generating events.)
    auto cfg = SystemConfig::paper_default();
    cfg.threads = 1;
    cfg.cpu.max_polls_per_op = 2000;
    System sys(cfg);
    sys.pcie_uplink().test_leak_credits(0);
    Runner runner(sys);
    runner.dispatch(0, GemmSpec{32, 32, 32, 3}, Placement::host);
    expect_deadlock_diagnostic([&] { (void)runner.run_dispatched(); },
                               "liveness watchdog");
    // The doorbell never crossed the starved uplink.
    EXPECT_EQ(sys.stat("link_up.tlps"), 0.0);
}

TEST(Liveness, CreditLeakDeadlockDiagnosedParallel)
{
    // Same leak under the parallel event core: the polling CPU keeps the
    // root domain's quanta non-idle, so the poll cap again converts the
    // wedge into a diagnostic instead of an unbounded run. The tight
    // idle-quanta horizon (the parallel backstop for wedges with *no*
    // event source) rides along armed.
    auto cfg = SystemConfig::paper_default();
    cfg.set_num_devices(2);
    cfg.threads = 2;
    cfg.cpu.max_polls_per_op = 2000;
    System sys(cfg);
    sys.sim().set_max_idle_quanta(16);
    sys.pcie_uplink().test_leak_credits(0);
    Runner runner(sys);
    runner.dispatch(0, GemmSpec{32, 32, 32, 3}, Placement::host);
    runner.dispatch(1, GemmSpec{32, 32, 32, 5}, Placement::host);
    expect_deadlock_diagnostic([&] { (void)runner.run_dispatched(); },
                               "component occupancy");
}

TEST(Liveness, JobToLatchedFailedLinkBoundedByPollCap)
{
    // Device 0's link is dead from tick 0 with a tiny replay budget and
    // *no* job/completion timeouts: the doorbell TLP dies after its
    // replays and the completion flag can never be written. The CPU's
    // poll stream is the only event source left; max_polls_per_op turns
    // the infinite spin into a diagnostic SimError.
    auto cfg = SystemConfig::paper_default();
    cfg.threads = 1;
    cfg.cpu.max_polls_per_op = 2000;
    FaultEvent down;
    down.kind = FaultKind::link_down;
    down.site = "link_dn";
    down.dir = 2;
    down.at_ns = 0.0;
    down.duration_ns = 1e12;
    cfg.fault_plan.events.push_back(down);
    cfg.fault_plan.max_replays = 2;
    cfg.fault_plan.replay_timeout_ns = 1000.0;

    System sys(cfg);
    Runner runner(sys);
    runner.dispatch(0, GemmSpec{32, 32, 32, 7}, Placement::host);
    expect_deadlock_diagnostic([&] { (void)runner.run_dispatched(); },
                               "liveness watchdog");
    EXPECT_GT(sys.stat("link_dn.link_dead_tlps"), 0.0);
}

TEST(Liveness, AllEndpointsQuarantinedTerminatesWithDiagnostic)
{
    // Failover's own liveness bound: with every command hanging
    // (hang_rate = 1.0 everywhere) and a one-strike quarantine policy,
    // each endpoint's first round fails and quarantines it. Once the
    // whole fleet is quarantined with jobs still in the backlog, the
    // runner must terminate with a diagnostic SimError carrying the
    // health table and occupancy report — never spin dispatching rounds
    // at endpoints that can no longer take work.
    auto cfg = SystemConfig::paper_default();
    cfg.set_num_devices(2);
    cfg.threads = 1;
    cfg.fault_plan.hang_rate = 1.0;
    cfg.fault_plan.job_timeout_ns = 2e5;
    cfg.fault_plan.job_max_attempts = 4;
    cfg.fault_plan.quarantine_failures = 1;

    System sys(cfg);
    Runner runner(sys);
    runner.dispatch(0, GemmSpec{32, 32, 32, 3}, Placement::host);
    runner.dispatch(1, GemmSpec{32, 32, 32, 5}, Placement::host);
    expect_deadlock_diagnostic([&] { (void)runner.run_dispatched(); },
                               "quarantined");
    // Both endpoints froze at their first command boundary, took an FLR,
    // and were quarantined before the stall was diagnosed.
    EXPECT_GT(sys.stat("mf.hangs"), 0.0);
    EXPECT_GT(sys.stat("mf1.hangs"), 0.0);
    EXPECT_EQ(sys.stat("runner.fleet.quarantines"), 2.0);
}

TEST(Liveness, ServingOnFullyQuarantinedFleetTerminatesWithDiagnostic)
{
    // The serving loop's version of the same bound: every endpoint hangs
    // and a one-strike policy quarantines the whole fleet in the first
    // dispatch round, leaving admitted jobs queued with nowhere to go.
    // serve() must raise the diagnostic instead of idling forever.
    const std::string trace = ::testing::TempDir() + "serving_stall.trace";
    {
        std::ofstream out(trace);
        out << "100 0 32 32 32\n101 0 32 32 32\n"
               "102 0 32 32 32\n103 0 32 32 32\n";
    }
    auto cfg = SystemConfig::paper_default();
    cfg.set_num_devices(2);
    cfg.threads = 1;
    cfg.fault_plan.hang_rate = 1.0;
    cfg.fault_plan.job_timeout_ns = 2e5;
    cfg.fault_plan.job_max_attempts = 4;
    cfg.fault_plan.quarantine_failures = 1;

    System sys(cfg);
    workload::RequestGenConfig gcfg;
    gcfg.mode = workload::RequestGenConfig::Mode::trace;
    gcfg.trace_path = trace;
    workload::TenantSpec tenant;
    tenant.name = "t";
    gcfg.tenants.push_back(tenant);
    workload::RequestGen gen(sys.sim(), gcfg);

    ServingConfig scfg;
    scfg.queue_capacity = 8;
    Runner runner(sys);
    expect_deadlock_diagnostic([&] { (void)runner.serve(gen, scfg); },
                               "every endpoint is quarantined");
    std::remove(trace.c_str());
    EXPECT_EQ(sys.stat("runner.fleet.quarantines"), 2.0);
}

} // namespace
} // namespace accesys::core
