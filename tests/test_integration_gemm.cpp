// Integration tests: verified GEMM offloads through the full system
// (driver -> doorbell -> descriptor DMA -> SMMU -> PCIe -> systolic array
// -> C writeback -> completion flag), across placements, access modes and
// packet sizes. Every run bit-compares the accelerator's output against the
// golden model, which validates the complete functional DMA path.
#include <gtest/gtest.h>

#include "core/runner.hh"

namespace accesys::core {
namespace {

using workload::GemmSpec;

GemmRunResult run_one(SystemConfig cfg, const GemmSpec& spec,
                      Placement place)
{
    System sys(cfg);
    Runner runner(sys);
    return runner.run_gemm(spec, place, /*verify=*/true);
}

TEST(IntegrationGemm, HostDcModeVerifies)
{
    const auto res = run_one(SystemConfig::paper_default(),
                             GemmSpec{64, 64, 64, 42}, Placement::host);
    EXPECT_TRUE(res.verified) << res.mismatches << " mismatches";
    EXPECT_GT(res.elapsed(), 0u);
}

TEST(IntegrationGemm, NonSquareAndPaddedShapes)
{
    // Partial strips (m % 16), partial panels (n % 16), odd K.
    const auto res = run_one(SystemConfig::paper_default(),
                             GemmSpec{37, 53, 96, 7}, Placement::host);
    EXPECT_TRUE(res.verified) << res.mismatches << " mismatches";
}

TEST(IntegrationGemm, SingleTile)
{
    const auto res = run_one(SystemConfig::paper_default(),
                             GemmSpec{16, 16, 16, 3}, Placement::host);
    EXPECT_TRUE(res.verified);
}

TEST(IntegrationGemm, TinyDegenerateShapes)
{
    const auto res = run_one(SystemConfig::paper_default(),
                             GemmSpec{1, 1, 1, 5}, Placement::host);
    EXPECT_TRUE(res.verified);
}

TEST(IntegrationGemm, DmModeBypassesCachesAndVerifies)
{
    auto cfg = SystemConfig::paper_default();
    cfg.access_mode = AccessMode::dm;
    System sys(cfg);
    Runner runner(sys);
    const auto res =
        runner.run_gemm(GemmSpec{48, 48, 48, 11}, Placement::host, true);
    EXPECT_TRUE(res.verified);
    // DM mode: the IOCache only sees bypasses, no allocations.
    EXPECT_EQ(sys.stat("iocache.hits") + sys.stat("iocache.misses"), 0.0);
    EXPECT_GT(sys.stat("iocache.bypasses"), 0.0);
}

TEST(IntegrationGemm, DevMemPlacementVerifies)
{
    auto cfg = SystemConfig::paper_default();
    cfg.set_devmem("HBM2");
    System sys(cfg);
    Runner runner(sys);
    const auto res =
        runner.run_gemm(GemmSpec{64, 64, 64, 13}, Placement::devmem, true);
    EXPECT_TRUE(res.verified);
    // Operand traffic went to device memory, not over PCIe DMA.
    EXPECT_GT(sys.stat("mf.devmem_mover.bytes"), 0.0);
    EXPECT_LT(sys.stat("mf.dma.bytes_read"), 1024.0); // descriptor only
}

TEST(IntegrationGemm, SmmuDisabledStillVerifies)
{
    auto cfg = SystemConfig::paper_default();
    cfg.smmu.enabled = false;
    System sys(cfg);
    Runner runner(sys);
    const auto res =
        runner.run_gemm(GemmSpec{32, 32, 32, 17}, Placement::host, true);
    EXPECT_TRUE(res.verified);
    EXPECT_EQ(sys.stat("smmu.translations"), 0.0);
}

TEST(IntegrationGemm, SmmuTranslatesEveryDmaChunk)
{
    auto cfg = SystemConfig::paper_default();
    System sys(cfg);
    Runner runner(sys);
    const auto res =
        runner.run_gemm(GemmSpec{32, 32, 32, 19}, Placement::host, true);
    EXPECT_TRUE(res.verified);
    EXPECT_GT(sys.stat("smmu.translations"), 0.0);
    EXPECT_GT(sys.stat("smmu.ptw_count"), 0.0);
}

TEST(IntegrationGemm, FasterPcieIsFaster)
{
    const GemmSpec spec{128, 128, 128, 23};
    auto slow_cfg = SystemConfig::paper_default(); // 1.6 GB/s effective
    auto fast_cfg = SystemConfig::paper_default();
    fast_cfg.set_pcie_target_gbps(16.0);
    const auto slow = run_one(slow_cfg, spec, Placement::host);
    const auto fast = run_one(fast_cfg, spec, Placement::host);
    EXPECT_TRUE(slow.verified);
    EXPECT_TRUE(fast.verified);
    EXPECT_LT(fast.elapsed(), slow.elapsed());
}

TEST(IntegrationGemm, ComputeOverrideSlowsExecution)
{
    const GemmSpec spec{64, 64, 64, 29};
    auto cfg = SystemConfig::paper_default();
    const auto normal = run_one(cfg, spec, Placement::host);
    cfg.accel.sa.compute_time_override_ns = 50000.0;
    const auto slowed = run_one(cfg, spec, Placement::host);
    EXPECT_GT(slowed.elapsed(), normal.elapsed() * 2);
}

TEST(IntegrationGemm, BackToBackCommandsOnOneSystem)
{
    System sys(SystemConfig::paper_default());
    Runner runner(sys);
    const auto r1 =
        runner.run_gemm(GemmSpec{32, 32, 32, 31}, Placement::host, true);
    const auto r2 =
        runner.run_gemm(GemmSpec{48, 32, 64, 37}, Placement::host, true);
    EXPECT_TRUE(r1.verified);
    EXPECT_TRUE(r2.verified);
    EXPECT_GT(r2.start, r1.end);
    EXPECT_EQ(sys.stat("mf.commands"), 2.0);
}

TEST(IntegrationGemm, StatsAccounting)
{
    auto cfg = SystemConfig::paper_default();
    System sys(cfg);
    Runner runner(sys);
    const GemmSpec spec{64, 64, 64, 41};
    const auto res = runner.run_gemm(spec, Placement::host, true);
    ASSERT_TRUE(res.verified);

    // PCIe must have carried at least A+B once and C once.
    const double payload = sys.stat("link_up.payload_bytes") +
                           sys.stat("link_dn.payload_bytes");
    EXPECT_GT(payload, static_cast<double>(spec.a_bytes() + spec.b_bytes() +
                                           spec.c_bytes()));
    // 64x64 output with 16-column panels: 4 strips x 4 blocks, one 16x16
    // tile each.
    EXPECT_EQ(sys.stat("mf.tiles"), 16.0);
}

TEST(IntegrationGemm, WideReuseAblationVerifies)
{
    auto cfg = SystemConfig::paper_default();
    cfg.accel.max_block_cols = 0; // auto-fit the widest panel
    const auto res = run_one(cfg, GemmSpec{80, 96, 64, 47}, Placement::host);
    EXPECT_TRUE(res.verified);
}

TEST(IntegrationGemm, ReductionTooDeepForBufferRejected)
{
    // Two A strips plus one panel of K=16384 cannot fit the 256 KiB
    // scratchpad; the device must reject the command loudly.
    System sys(SystemConfig::paper_default());
    Runner runner(sys);
    EXPECT_THROW((void)runner.run_gemm(GemmSpec{16, 16, 16384, 1},
                                       Placement::host),
                 ConfigError);
}

// Property sweep: verification holds across packet sizes and both access
// modes (the paper's Fig. 4 knob must never affect correctness).
struct SweepPoint {
    std::uint32_t packet;
    AccessMode mode;
};

class GemmSweep : public ::testing::TestWithParam<SweepPoint> {};

TEST_P(GemmSweep, VerifiesEverywhere)
{
    auto cfg = SystemConfig::paper_default();
    cfg.set_packet_size(GetParam().packet);
    cfg.access_mode = GetParam().mode;
    const auto res =
        run_one(cfg, GemmSpec{48, 48, 48, GetParam().packet}, Placement::host);
    EXPECT_TRUE(res.verified) << "packet=" << GetParam().packet;
}

INSTANTIATE_TEST_SUITE_P(
    PacketsAndModes, GemmSweep,
    ::testing::Values(SweepPoint{64, AccessMode::dc},
                      SweepPoint{128, AccessMode::dc},
                      SweepPoint{256, AccessMode::dc},
                      SweepPoint{1024, AccessMode::dc},
                      SweepPoint{4096, AccessMode::dc},
                      SweepPoint{64, AccessMode::dm},
                      SweepPoint{256, AccessMode::dm},
                      SweepPoint{4096, AccessMode::dm}));

// Property sweep: verification across memory technologies (host side).
class GemmMemTech : public ::testing::TestWithParam<std::string> {};

TEST_P(GemmMemTech, VerifiesOnEveryDram)
{
    auto cfg = SystemConfig::paper_default();
    cfg.set_host_dram(GetParam());
    const auto res =
        run_one(cfg, GemmSpec{32, 48, 32, 43}, Placement::host);
    EXPECT_TRUE(res.verified) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllPresets, GemmMemTech,
                         ::testing::Values("DDR3", "DDR4", "DDR5", "HBM2",
                                           "GDDR5", "GDDR6", "LPDDR5"));

} // namespace
} // namespace accesys::core
