// Tests for workload generation: GEMM golden model and ViT lowering.
#include <gtest/gtest.h>

#include "workload/gemm.hh"
#include "workload/vit.hh"

namespace accesys::workload {
namespace {

TEST(GemmSpec, ByteAndMacCounts)
{
    const GemmSpec s{128, 64, 32, 1};
    EXPECT_EQ(s.a_bytes(), 128u * 32);
    EXPECT_EQ(s.b_bytes(), 64u * 32);
    EXPECT_EQ(s.c_bytes(), 128u * 64 * 4);
    EXPECT_DOUBLE_EQ(s.macs(), 128.0 * 64 * 32);
}

TEST(GemmData, DeterministicInit)
{
    mem::BackingStore s1;
    mem::BackingStore s2;
    const GemmSpec spec{8, 8, 8, 42};
    init_gemm_data(s1, spec, 0x100, 0x1000);
    init_gemm_data(s2, spec, 0x100, 0x1000);
    std::vector<std::uint8_t> b1(spec.a_bytes());
    std::vector<std::uint8_t> b2(spec.a_bytes());
    s1.read(0x100, b1.data(), b1.size());
    s2.read(0x100, b2.data(), b2.size());
    EXPECT_EQ(b1, b2);
}

TEST(GemmData, GoldenIdentityProperty)
{
    // A x I = A (with B transposed = I as well).
    mem::BackingStore store;
    const GemmSpec spec{4, 4, 4, 1};
    std::int8_t a[16];
    std::int8_t eye[16] = {};
    for (int i = 0; i < 16; ++i) {
        a[i] = static_cast<std::int8_t>(i + 1);
    }
    for (int i = 0; i < 4; ++i) {
        eye[i * 4 + i] = 1;
    }
    store.write(0x100, a, sizeof(a));
    store.write(0x200, eye, sizeof(eye));
    const auto golden = gemm_golden(store, spec, 0x100, 0x200);
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(golden[i], a[i]);
    }
}

TEST(GemmData, CheckCountsMismatches)
{
    mem::BackingStore store;
    const GemmSpec spec{2, 2, 2, 3};
    init_gemm_data(store, spec, 0x100, 0x200);
    auto golden = gemm_golden(store, spec, 0x100, 0x200);
    // Write the golden result, then corrupt one element.
    store.write(0x300, golden.data(), golden.size() * 4);
    EXPECT_EQ(gemm_check(store, spec, 0x300, golden), 0u);
    const std::int32_t bad = golden[3] + 1;
    store.write_obj(0x300 + 3 * 4, bad);
    EXPECT_EQ(gemm_check(store, spec, 0x300, golden), 1u);
}

TEST(VitConfig, PaperModels)
{
    const auto base = VitConfig::base();
    EXPECT_EQ(base.hidden, 768u);
    EXPECT_EQ(base.heads, 12u);
    EXPECT_EQ(base.layers, 12u);
    const auto large = VitConfig::large();
    EXPECT_EQ(large.hidden, 1024u);
    const auto huge = VitConfig::huge();
    EXPECT_EQ(huge.hidden, 1280u);
    EXPECT_EQ(huge.heads, 16u);
    EXPECT_EQ(base.seq, 197u);
    EXPECT_EQ(base.head_dim(), 64u);
}

TEST(VitConfig, ByNameAndUnknown)
{
    EXPECT_EQ(VitConfig::by_name("base").hidden, 768u);
    EXPECT_EQ(VitConfig::by_name("ViT-Huge").layers, 32u);
    EXPECT_THROW(VitConfig::by_name("giant"), ConfigError);
}

TEST(VitLowering, OpCountFormula)
{
    const auto cfg = VitConfig::base();
    const auto ops = lower_vit(cfg);
    // Per layer: 3 QKV + 2*heads attention + out_proj + fc1 + fc2 = 6+2h
    // GEMMs, and 10 vector ops.
    const auto sum = summarize(ops);
    EXPECT_EQ(sum.gemm_count, cfg.layers * (6 + 2 * cfg.heads));
    EXPECT_EQ(sum.vector_count, cfg.layers * 10u);
    EXPECT_EQ(ops.size(), sum.gemm_count + sum.vector_count);
}

TEST(VitLowering, MacsMatchClosedForm)
{
    const auto cfg = VitConfig::base();
    const auto sum = summarize(lower_vit(cfg));
    const double s = cfg.seq;
    const double h = cfg.hidden;
    const double d = cfg.head_dim();
    const double mlp = 4.0 * h;
    const double per_layer = 3 * s * h * h      // qkv
                             + cfg.heads * s * s * d * 2 // scores+context
                             + s * h * h        // out proj
                             + s * mlp * h * 2; // fc1 + fc2
    EXPECT_NEAR(sum.gemm_macs, cfg.layers * per_layer, 1.0);
}

TEST(VitLowering, GemmDimensionsPositive)
{
    for (const auto& op : lower_vit(VitConfig::huge())) {
        if (op.kind == VitOp::Kind::gemm) {
            EXPECT_GT(op.m, 0u);
            EXPECT_GT(op.n, 0u);
            EXPECT_GT(op.k, 0u);
        } else {
            EXPECT_GT(op.bytes_in + op.bytes_out, 0u);
        }
    }
}

TEST(VitLowering, RequantReadsInt32WritesInt8)
{
    const auto ops = lower_vit(VitConfig::base());
    for (const auto& op : ops) {
        if (op.kind == VitOp::Kind::vector &&
            op.label.find("requant") != std::string::npos) {
            EXPECT_EQ(op.bytes_in, op.bytes_out * 4);
        }
    }
}

// Property across all models: bigger models mean strictly more work.
class VitScale : public ::testing::TestWithParam<std::pair<const char*,
                                                           const char*>> {};

TEST_P(VitScale, LargerModelMoreWork)
{
    const auto small = summarize(lower_vit(VitConfig::by_name(
        GetParam().first)));
    const auto big = summarize(lower_vit(VitConfig::by_name(
        GetParam().second)));
    EXPECT_GT(big.gemm_macs, small.gemm_macs);
    EXPECT_GT(big.vector_bytes, small.vector_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, VitScale,
    ::testing::Values(std::make_pair("base", "large"),
                      std::make_pair("large", "huge"),
                      std::make_pair("base", "huge")));

} // namespace
} // namespace accesys::workload
