// Tests for DRAM presets (Table III) and the bank-state timing engine.
#include <gtest/gtest.h>

#include "mem/dram_config.hh"
#include "mem/dram_timing.hh"

namespace accesys::mem {
namespace {

TEST(DramConfig, PresetsValidate)
{
    for (const auto& name : dram_preset_names()) {
        EXPECT_NO_THROW(dram_params_by_name(name).validate()) << name;
    }
}

TEST(DramConfig, LookupIsCaseInsensitiveAndAliased)
{
    EXPECT_EQ(dram_params_by_name("ddr4").name, "DDR4-2400");
    EXPECT_EQ(dram_params_by_name("HBM").name, "HBM2");
    EXPECT_EQ(dram_params_by_name("hbm2").name, "HBM2");
    EXPECT_THROW(dram_params_by_name("sram"), ConfigError);
}

// Table III peak bandwidth figures must reproduce exactly.
struct BwCase {
    const char* name;
    double gbps;
};

class TableIIIBandwidth : public ::testing::TestWithParam<BwCase> {};

TEST_P(TableIIIBandwidth, PeakMatchesPaper)
{
    const auto p = dram_params_by_name(GetParam().name);
    EXPECT_NEAR(p.peak_gbps(), GetParam().gbps, 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Paper, TableIIIBandwidth,
    ::testing::Values(BwCase{"DDR3", 12.8}, BwCase{"DDR4", 19.2},
                      BwCase{"DDR5", 25.6}, BwCase{"HBM2", 64.0},
                      BwCase{"GDDR6", 32.0}));

TEST(DramConfig, DerivedQuantities)
{
    const auto p = ddr4_2400();
    EXPECT_EQ(p.burst_bytes(), 64u);             // 64-bit x BL8
    EXPECT_EQ(p.burst_ticks(), 3333u);           // 8 transfers at 2400 MT/s
    EXPECT_NEAR(p.channel_peak_gbps(), 19.2, 0.01);
}

TEST(DramConfig, ValidationCatchesNonsense)
{
    auto p = ddr4_2400();
    p.banks = 3;
    EXPECT_THROW(p.validate(), ConfigError);

    p = ddr4_2400();
    p.row_bytes = 16; // smaller than one burst
    EXPECT_THROW(p.validate(), ConfigError);

    p = ddr4_2400();
    p.tRAS_ns = 1.0; // below tRCD
    EXPECT_THROW(p.validate(), ConfigError);
}

struct TimingFixture : ::testing::Test {
    DramParams params = ddr4_2400();
    void disable_refresh() { params.refresh_enabled = false; }
};

TEST_F(TimingFixture, FirstAccessPaysActivateAndCas)
{
    disable_refresh();
    DramTiming dram(params);
    const auto acc = dram.access(0, false, 0);
    EXPECT_FALSE(acc.row_hit);
    // tRCD + tCL + burst.
    const Tick expect =
        params.tRCD() + params.tCL() + params.burst_ticks();
    EXPECT_EQ(acc.data_ready, expect);
}

TEST_F(TimingFixture, RowHitSkipsActivate)
{
    disable_refresh();
    DramTiming dram(params);
    (void)dram.access(0, false, 0);
    const auto acc = dram.access(64, false, 0);
    EXPECT_TRUE(acc.row_hit);
    EXPECT_EQ(dram.row_hits(), 1u);
    EXPECT_EQ(dram.row_misses(), 1u);
}

TEST_F(TimingFixture, SequentialStreamHitsPeakBandwidth)
{
    disable_refresh();
    DramTiming dram(params);
    Tick t = 0;
    Addr a = 0;
    constexpr int kBursts = 1000;
    Tick last_ready = 0;
    for (int i = 0; i < kBursts; ++i) {
        const auto acc = dram.access(a, false, t);
        last_ready = acc.data_ready;
        a += params.burst_bytes();
    }
    const double secs = ticks_to_sec(last_ready);
    const double gbps = kBursts * params.burst_bytes() / secs / 1e9;
    EXPECT_GT(gbps, 0.9 * params.peak_gbps());
}

TEST_F(TimingFixture, RowConflictCostsPrechargeActivate)
{
    disable_refresh();
    DramTiming dram(params);
    const auto first = dram.access(0, false, 0);
    // Same bank, different row: decode maps rows via row_bytes * banks.
    const Addr conflict = params.row_bytes * params.banks;
    const auto c0 = dram.decode(0);
    const auto c1 = dram.decode(conflict);
    ASSERT_EQ(c0.bank, c1.bank);
    ASSERT_NE(c0.row, c1.row);
    const auto second = dram.access(conflict, false, first.data_ready);
    EXPECT_FALSE(second.row_hit);
    EXPECT_GE(second.data_ready - first.data_ready,
              params.tRP() + params.tRCD());
}

TEST_F(TimingFixture, ChannelInterleaveAtBurstGranularity)
{
    auto p = hbm2(); // 2 channels
    DramTiming dram(p);
    const auto c0 = dram.decode(0);
    const auto c1 = dram.decode(p.burst_bytes());
    EXPECT_NE(c0.channel, c1.channel);
}

TEST_F(TimingFixture, RefreshBlocksBank)
{
    DramTiming dram(params); // refresh on
    // Access right after the first tREFI window must see refresh delay.
    const Tick t = params.tREFI() + 1;
    const auto acc = dram.access(0, false, t);
    EXPECT_GE(acc.data_ready, params.tREFI() + params.tRFC());
    EXPECT_GE(dram.refreshes(), 1u);
}

TEST_F(TimingFixture, PeekRowHitDoesNotMutate)
{
    disable_refresh();
    DramTiming dram(params);
    (void)dram.access(0, false, 0);
    const auto hits_before = dram.row_hits();
    EXPECT_TRUE(dram.peek_row_hit(64));
    EXPECT_FALSE(dram.peek_row_hit(params.row_bytes * params.banks));
    EXPECT_EQ(dram.row_hits(), hits_before);
}

TEST_F(TimingFixture, WritesPaceSlowerThanReads)
{
    disable_refresh();
    DramTiming dram(params);
    // Same-bank consecutive writes have a longer recovery than reads.
    (void)dram.access(0, true, 0);
    const auto w2 = dram.access(64, true, 0);
    DramTiming dram_r(params);
    (void)dram_r.access(0, false, 0);
    const auto r2 = dram_r.access(64, false, 0);
    EXPECT_GT(w2.data_ready, r2.data_ready);
}

// Property over all presets: streaming reads reach >= 85% of peak.
class PresetStream : public ::testing::TestWithParam<std::string> {};

TEST_P(PresetStream, StreamEfficiency)
{
    auto p = dram_params_by_name(GetParam());
    p.refresh_enabled = false;
    DramTiming dram(p);
    Addr a = 0;
    Tick last = 0;
    constexpr int kBursts = 2000;
    for (int i = 0; i < kBursts; ++i) {
        last = dram.access(a, false, 0).data_ready;
        a += p.burst_bytes();
    }
    const double gbps =
        kBursts * p.burst_bytes() / ticks_to_sec(last) / 1e9;
    EXPECT_GT(gbps, 0.85 * p.peak_gbps()) << p.name;
}

INSTANTIATE_TEST_SUITE_P(AllPresets, PresetStream,
                         ::testing::Values("DDR3", "DDR4", "DDR5", "HBM2",
                                           "GDDR5", "GDDR6", "LPDDR5"));

} // namespace
} // namespace accesys::mem
