// Tests for the declarative multi-accelerator topology: address-map
// resolution (auto-carved BARs / devmem / staging, requester + stream
// ids), multi-endpoint System construction, per-device stats, concurrent
// dispatch, nested switch levels and per-device device memory.
#include <gtest/gtest.h>

#include <set>

#include "core/runner.hh"
#include "core/topology.hh"

namespace accesys::core {
namespace {

TEST(TopologyResolve, AutoCarvesDistinctPlacements)
{
    auto cfg = SystemConfig::paper_default();
    cfg.set_num_devices(4);
    const auto plan = TopologyBuilder::resolve(cfg);

    ASSERT_EQ(plan.devices.size(), 4u);
    std::set<Addr> bar_bases;
    std::set<Addr> staging_bases;
    std::set<std::uint16_t> ids;
    std::set<std::string> names;
    for (const auto& dev : plan.devices) {
        EXPECT_NE(dev.accel.bar0_base, 0u);
        EXPECT_NE(dev.accel.local_base, 0u);
        EXPECT_NE(dev.requester_id(), 0u);
        bar_bases.insert(dev.accel.bar0_base);
        staging_bases.insert(dev.accel.local_base);
        ids.insert(dev.requester_id());
        names.insert(dev.name);
        // Stream ids default to the requester id.
        EXPECT_EQ(dev.stream_id, dev.requester_id());
    }
    EXPECT_EQ(bar_bases.size(), 4u);
    EXPECT_EQ(staging_bases.size(), 4u);
    EXPECT_EQ(ids.size(), 4u);
    EXPECT_EQ(names.size(), 4u);

    // Device 0 keeps the classic single-device address map and name.
    EXPECT_EQ(plan.devices[0].name, "mf");
    EXPECT_EQ(plan.devices[0].accel.bar0_base, cfg.accel.bar0_base);
    EXPECT_EQ(plan.devices[0].requester_id(), 1u);

    // The window covers every BAR without touching host DRAM.
    for (const auto& dev : plan.devices) {
        EXPECT_TRUE(plan.pcie_window.contains(dev.accel.bar0_base,
                                              dev.accel.bar0_size));
    }
    EXPECT_GE(plan.pcie_window.start(), cfg.host_dram_bytes);
}

TEST(TopologyResolve, HonoursExplicitPlacement)
{
    auto cfg = SystemConfig::paper_default();
    cfg.set_num_devices(2);
    cfg.devices[1].accel.bar0_base = 0x180000000000ULL;
    cfg.devices[1].accel.ep.device_id = 9;
    cfg.devices[1].stream_id = 42;
    const auto plan = TopologyBuilder::resolve(cfg);
    EXPECT_EQ(plan.devices[1].accel.bar0_base, 0x180000000000ULL);
    EXPECT_EQ(plan.devices[1].requester_id(), 9u);
    EXPECT_EQ(plan.devices[1].stream_id, 42u);
    EXPECT_GE(plan.pcie_window.end(),
              0x180000000000ULL + cfg.devices[1].accel.bar0_size);
}

TEST(TopologyResolve, RejectsConflictingLayouts)
{
    auto cfg = SystemConfig::paper_default();
    cfg.set_num_devices(2);
    cfg.devices[1].accel.ep.device_id = 1; // collides with device 0
    EXPECT_THROW((void)TopologyBuilder::resolve(cfg), ConfigError);

    cfg = SystemConfig::paper_default();
    cfg.set_num_devices(2);
    cfg.devices[1].accel.bar0_base = cfg.devices[0].accel.bar0_base;
    EXPECT_THROW((void)TopologyBuilder::resolve(cfg), ConfigError);

    cfg = SystemConfig::paper_default();
    cfg.set_num_devices(2);
    cfg.devices[1].name = "mf"; // duplicate stat prefix
    EXPECT_THROW((void)TopologyBuilder::resolve(cfg), ConfigError);
}

TEST(TopologyResolve, PerDeviceDevmemCarvesDisjointApertures)
{
    auto cfg = SystemConfig::paper_default();
    cfg.set_devmem("HBM2");
    cfg.devmem_bytes = kGiB;
    cfg.set_num_devices(3);
    const auto plan = TopologyBuilder::resolve(cfg);
    for (std::size_t i = 0; i < plan.devices.size(); ++i) {
        ASSERT_TRUE(plan.devices[i].devmem_enabled);
        EXPECT_EQ(plan.devices[i].devmem.size(), kGiB);
        for (std::size_t j = i + 1; j < plan.devices.size(); ++j) {
            EXPECT_FALSE(
                plan.devices[i].devmem.overlaps(plan.devices[j].devmem));
        }
    }
    // The aperture is routable: part of the device's BAR set and window.
    EXPECT_TRUE(plan.pcie_window.contains(plan.devices[2].devmem.start()));
}

TEST(TopologyResolve, PerDeviceLinkOverride)
{
    auto cfg = SystemConfig::paper_default();
    cfg.set_num_devices(3);
    // Device 1 gets a faster mixed-generation downstream link; the others
    // keep the system-wide PCIe parameters.
    pcie::LinkParams fast;
    fast.lanes = 8;
    fast.lane_gbps = 16.0;
    fast.gen = pcie::Gen::gen4;
    cfg.devices[1].link = fast;

    const auto plan = TopologyBuilder::resolve(cfg);
    ASSERT_EQ(plan.devices.size(), 3u);
    EXPECT_EQ(plan.devices[0].link.lanes, cfg.pcie.lanes);
    EXPECT_DOUBLE_EQ(plan.devices[0].link.lane_gbps, cfg.pcie.lane_gbps);
    EXPECT_EQ(plan.devices[1].link.lanes, 8u);
    EXPECT_DOUBLE_EQ(plan.devices[1].link.lane_gbps, 16.0);
    EXPECT_EQ(plan.devices[1].link.gen, pcie::Gen::gen4);
    EXPECT_EQ(plan.devices[2].link.lanes, cfg.pcie.lanes);

    // The live system instantiates the override on link_dn1 only, and the
    // mixed-generation fabric still runs a GEMM on the fast device.
    System sys(cfg);
    EXPECT_DOUBLE_EQ(sys.pcie_downlink(1).params().lane_gbps, 16.0);
    EXPECT_EQ(sys.pcie_downlink(1).params().gen, pcie::Gen::gen4);
    EXPECT_DOUBLE_EQ(sys.pcie_downlink(0).params().lane_gbps,
                     cfg.pcie.lane_gbps);
    Runner runner(sys);
    runner.dispatch(1, workload::GemmSpec{32, 32, 32, 7}, Placement::host,
                    /*verify=*/true);
    const auto res = runner.run_dispatched();
    EXPECT_TRUE(res.all_verified());
}

TEST(TopologyResolve, InvalidLinkOverrideRejected)
{
    auto cfg = SystemConfig::paper_default();
    cfg.set_num_devices(2);
    pcie::LinkParams bad;
    bad.lanes = 3; // not a standard width
    cfg.devices[1].link = bad;
    EXPECT_THROW((void)TopologyBuilder::resolve(cfg), ConfigError);
}

TEST(TopologyResolve, AttachToUnknownSwitchRejected)
{
    auto cfg = SystemConfig::paper_default();
    cfg.set_num_devices(2);
    cfg.devices[1].attach_to = 5;
    EXPECT_THROW((void)TopologyBuilder::resolve(cfg), ConfigError);
}

TEST(MultiSystem, FourEndpointsRegisterDistinctStatPrefixes)
{
    auto cfg = SystemConfig::paper_default();
    cfg.set_num_devices(4);
    System sys(cfg);
    EXPECT_EQ(sys.device_count(), 4u);

    EXPECT_EQ(sys.stat("mf.commands"), 0.0);
    EXPECT_EQ(sys.stat("mf1.commands"), 0.0);
    EXPECT_EQ(sys.stat("mf2.commands"), 0.0);
    EXPECT_EQ(sys.stat("mf3.commands"), 0.0);
    EXPECT_EQ(sys.stat("link_dn1.tlps"), 0.0);

    // Thin single-device accessors alias device 0.
    EXPECT_EQ(&sys.accelerator(), &sys.accelerator(0));
    std::set<std::uint16_t> ids;
    for (std::size_t d = 0; d < 4; ++d) {
        ids.insert(sys.accelerator(d).device_id());
    }
    EXPECT_EQ(ids.size(), 4u);
}

TEST(MultiSystem, ConcurrentGemmsVerifyAndFillPerStreamStats)
{
    auto cfg = SystemConfig::paper_default();
    cfg.set_num_devices(2);
    System sys(cfg);
    Runner runner(sys);

    const workload::GemmSpec spec{32, 32, 32, /*seed=*/11};
    runner.dispatch(0, spec, Placement::host, /*verify=*/true);
    runner.dispatch(1, spec, Placement::host, /*verify=*/true);
    const auto res = runner.run_dispatched();

    ASSERT_EQ(res.devices.size(), 2u);
    EXPECT_TRUE(res.all_verified());
    EXPECT_GT(res.devices[0].dma_bytes, 0u);
    EXPECT_GT(res.devices[1].dma_bytes, 0u);
    EXPECT_EQ(sys.stat("mf.commands"), 1.0);
    EXPECT_EQ(sys.stat("mf1.commands"), 1.0);

    // Each endpoint translated through its own SMMU stream context.
    const auto s0 = std::to_string(sys.stream_id_of(0));
    const auto s1 = std::to_string(sys.stream_id_of(1));
    EXPECT_NE(s0, s1);
    EXPECT_GT(sys.stat("smmu.stream" + s0 + ".translations"), 0.0);
    EXPECT_GT(sys.stat("smmu.stream" + s1 + ".translations"), 0.0);
    EXPECT_EQ(sys.stat("smmu.stream" + s0 + ".translations") +
                  sys.stat("smmu.stream" + s1 + ".translations"),
              sys.stat("smmu.translations"));
}

TEST(MultiSystem, NestedSwitchLevelsRunEndToEnd)
{
    auto cfg = SystemConfig::paper_default();
    cfg.set_num_devices(2);
    const std::size_t leaf = cfg.add_switch_below(0);
    cfg.devices[1].attach_to = leaf;
    System sys(cfg);
    Runner runner(sys);

    const workload::GemmSpec spec{32, 32, 32, /*seed=*/5};
    runner.dispatch(0, spec, Placement::host, /*verify=*/true);
    runner.dispatch(1, spec, Placement::host, /*verify=*/true);
    const auto res = runner.run_dispatched();
    EXPECT_TRUE(res.all_verified());
    // The nested switch and its uplink exist and carried traffic.
    EXPECT_GT(sys.stat("pcie_sw1.forwarded"), 0.0);
    EXPECT_GT(sys.stat("pcie_sw1_up.tlps"), 0.0);
}

TEST(MultiSystem, PerDeviceDevmemAllocatesAndComputes)
{
    auto cfg = SystemConfig::paper_default();
    cfg.set_devmem("HBM2");
    cfg.devmem_bytes = kGiB;
    cfg.set_num_devices(2);
    System sys(cfg);

    const Addr d0 = sys.alloc_devmem_on(0, 4096);
    const Addr d1 = sys.alloc_devmem_on(1, 4096);
    EXPECT_TRUE(sys.devmem_range(0).contains(d0, 4096));
    EXPECT_TRUE(sys.devmem_range(1).contains(d1, 4096));
    EXPECT_FALSE(sys.devmem_range(0).overlaps(sys.devmem_range(1)));

    Runner runner(sys);
    runner.dispatch(1, workload::GemmSpec{32, 32, 32, 13},
                    Placement::devmem, /*verify=*/true);
    const auto res = runner.run_dispatched();
    EXPECT_TRUE(res.all_verified());
    EXPECT_GT(sys.stat("devmem1.reads"), 0.0);
}

TEST(MultiSystem, DispatchToUnknownDeviceThrows)
{
    System sys(SystemConfig::paper_default());
    Runner runner(sys);
    EXPECT_THROW(runner.dispatch(1, workload::GemmSpec{16, 16, 16, 1},
                                 Placement::host),
                 SimError);
}

TEST(MultiSystem, SingleDeviceLayoutUnchanged)
{
    // A 1-entry device list behaves exactly like the legacy fields.
    auto legacy_cfg = SystemConfig::paper_default();
    auto listed_cfg = SystemConfig::paper_default();
    listed_cfg.set_num_devices(1);

    System legacy(legacy_cfg);
    System listed(listed_cfg);
    Runner r_legacy(legacy);
    Runner r_listed(listed);
    const auto a = r_legacy.run_gemm(workload::GemmSpec{32, 32, 32, 2},
                                     Placement::host, true);
    const auto b = r_listed.run_gemm(workload::GemmSpec{32, 32, 32, 2},
                                     Placement::host, true);
    EXPECT_TRUE(a.verified);
    EXPECT_TRUE(b.verified);
    EXPECT_EQ(a.elapsed(), b.elapsed());
}

} // namespace
} // namespace accesys::core
