// Edge-case coverage for sim/ring_buffer.hh — the FIFO ring backing every
// hot queue (PacketQueue, link in-flight/credit stages, switch/RC/endpoint
// delay queues). Focus: wrap-around at capacity, growth while the live
// window is non-contiguous (head past the midpoint), move-only payloads,
// erase_at shifting, and the pop-from-empty / out-of-range contracts.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "sim/ring_buffer.hh"

namespace accesys {
namespace {

TEST(RingBuffer, StartsEmpty)
{
    RingBuffer<int> rb;
    EXPECT_TRUE(rb.empty());
    EXPECT_EQ(rb.size(), 0u);
    EXPECT_EQ(rb.capacity(), 0u);
}

TEST(RingBuffer, FifoOrderAcrossWraparound)
{
    RingBuffer<int> rb;
    // Fill to the initial capacity (8), drain half, refill past the seam:
    // the live window now straddles the physical end of the storage.
    for (int i = 0; i < 8; ++i) {
        rb.push_back(i);
    }
    const std::size_t cap = rb.capacity();
    EXPECT_EQ(cap, 8u);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(rb.take_front(), i);
    }
    for (int i = 8; i < 12; ++i) {
        rb.push_back(i); // wraps: slots 0..3 are reused
    }
    EXPECT_EQ(rb.capacity(), cap) << "no growth when count == capacity-4";
    EXPECT_EQ(rb.size(), 8u);
    for (int i = 4; i < 12; ++i) {
        EXPECT_EQ(rb.take_front(), i);
    }
    EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, GrowthWhileNonContiguousPreservesOrder)
{
    RingBuffer<int> rb;
    for (int i = 0; i < 8; ++i) {
        rb.push_back(i);
    }
    // Advance the head so the window wraps, then force a grow while the
    // live elements are split across the seam.
    for (int i = 0; i < 6; ++i) {
        (void)rb.take_front();
    }
    for (int i = 8; i < 14; ++i) {
        rb.push_back(i);
    }
    EXPECT_EQ(rb.size(), 8u);
    rb.push_back(14); // 9th element: grow 8 -> 16 with head at slot 6
    EXPECT_EQ(rb.capacity(), 16u);
    EXPECT_EQ(rb.size(), 9u);
    for (int i = 6; i <= 14; ++i) {
        EXPECT_EQ(rb.take_front(), i);
    }
    EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, GrowthAtExactCapacityBoundary)
{
    RingBuffer<int> rb;
    for (int round = 0; round < 3; ++round) {
        // Repeatedly fill to capacity + 1: 8 -> 16 -> 32.
        const auto target = static_cast<int>(rb.capacity() + 1);
        while (static_cast<int>(rb.size()) < target) {
            rb.push_back(static_cast<int>(rb.size()));
        }
        for (int i = 0; i < target; ++i) {
            EXPECT_EQ(rb.take_front(), i);
        }
    }
    EXPECT_EQ(rb.capacity(), 32u);
}

TEST(RingBuffer, MoveOnlyPayloadReleasedOnPop)
{
    RingBuffer<std::unique_ptr<std::string>> rb;
    rb.push_back(std::make_unique<std::string>("a"));
    rb.push_back(std::make_unique<std::string>("b"));
    auto a = rb.take_front();
    EXPECT_EQ(*a, "a");
    // pop_front must null the vacated slot immediately (resources release
    // at pop time, not when the slot is overwritten much later).
    EXPECT_EQ(*rb.front(), "b");
    rb.pop_front();
    EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, IndexingIsHeadRelative)
{
    RingBuffer<int> rb;
    for (int i = 0; i < 8; ++i) {
        rb.push_back(i);
    }
    for (int i = 0; i < 5; ++i) {
        (void)rb.take_front();
    }
    rb.push_back(8);
    rb.push_back(9); // window wraps
    EXPECT_EQ(rb[0], 5);
    EXPECT_EQ(rb[4], 9);
    const RingBuffer<int>& crb = rb;
    EXPECT_EQ(crb[1], 6);
}

TEST(RingBuffer, EraseAtShiftsTail)
{
    RingBuffer<int> rb;
    for (int i = 0; i < 6; ++i) {
        rb.push_back(i);
    }
    rb.erase_at(0); // head
    EXPECT_EQ(rb.front(), 1);
    rb.erase_at(2); // middle (value 3)
    EXPECT_EQ(rb.size(), 4u);
    const int want[] = {1, 2, 4, 5};
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(rb[i], want[i]);
    }
    rb.erase_at(3); // tail (value 5)
    EXPECT_EQ(rb.size(), 3u);
}

TEST(RingBuffer, ClearReleasesEverything)
{
    RingBuffer<std::unique_ptr<int>> rb;
    for (int i = 0; i < 12; ++i) {
        rb.push_back(std::make_unique<int>(i));
    }
    rb.clear();
    EXPECT_TRUE(rb.empty());
    EXPECT_EQ(rb.size(), 0u);
    // Capacity is retained (the ring never shrinks).
    EXPECT_GE(rb.capacity(), 12u);
    rb.push_back(std::make_unique<int>(99));
    EXPECT_EQ(*rb.front(), 99);
}

TEST(RingBuffer, EmptyAndRangeContractsThrow)
{
    RingBuffer<int> rb;
    EXPECT_THROW(rb.pop_front(), SimError);
    EXPECT_THROW((void)rb.front(), SimError);
    EXPECT_THROW((void)rb[0], SimError);
    EXPECT_THROW(rb.erase_at(0), SimError);
    rb.push_back(1);
    EXPECT_THROW((void)rb[1], SimError);
    EXPECT_THROW(rb.erase_at(1), SimError);
    EXPECT_EQ(rb.take_front(), 1);
    EXPECT_THROW(rb.pop_front(), SimError);
}

} // namespace
} // namespace accesys
