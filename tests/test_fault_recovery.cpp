// End-to-end fault injection + recovery through the full system: seeded
// TLP corruption recovered by data-link replay (functional results stay
// bit-exact), surprise link-down windows survived by the replay timer,
// and graceful degradation — a permanently dead endpoint fails its job
// per-device (completion/job timeouts) while the other endpoints' jobs
// finish and verify.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/runner.hh"

namespace accesys::core {
namespace {

using workload::GemmSpec;

TEST(FaultRecovery, SeededCorruptionRecoversAndVerifies)
{
    auto cfg = SystemConfig::paper_default();
    cfg.fault_plan.seed = 99;
    cfg.fault_plan.corrupt_rate = 0.02;
    cfg.fault_plan.corrupt_site = "link_dn";
    System sys(cfg);
    Runner runner(sys);
    const auto res =
        runner.run_gemm(GemmSpec{64, 64, 64, 42}, Placement::host, true);

    // Corrupted TLPs were dropped by the receiver, NAKed and replayed —
    // never silently delivered — so the functional result is untouched.
    EXPECT_TRUE(res.verified) << res.mismatches << " mismatches";
    EXPECT_GT(sys.stat("link_dn.link_corrupted_tlps"), 0.0);
    EXPECT_GT(sys.stat("link_dn.link_nak_count"), 0.0);
    EXPECT_GT(sys.stat("link_dn.link_replays"), 0.0);
    EXPECT_GT(sys.stat("link_dn.recovery_ns"), 0.0);
    // Every corruption was recovered, none escalated to a dead TLP.
    EXPECT_EQ(sys.stat("link_dn.link_dead_tlps"), 0.0);
}

TEST(FaultRecovery, CorruptionOnSharedUplinkRecovers)
{
    auto cfg = SystemConfig::paper_default();
    cfg.fault_plan.seed = 7;
    cfg.fault_plan.corrupt_rate = 0.01;
    cfg.fault_plan.corrupt_site = "link_up";
    System sys(cfg);
    Runner runner(sys);
    const auto res =
        runner.run_gemm(GemmSpec{48, 48, 48, 3}, Placement::host, true);
    EXPECT_TRUE(res.verified);
    EXPECT_GT(sys.stat("link_up.link_replays"), 0.0);
}

TEST(FaultRecovery, CorruptionIsDeterministicPerSeed)
{
    auto cfg = SystemConfig::paper_default();
    cfg.fault_plan.seed = 5;
    cfg.fault_plan.corrupt_rate = 0.02;
    double first = -1.0;
    for (int i = 0; i < 2; ++i) {
        System sys(cfg);
        Runner runner(sys);
        const auto res = runner.run_gemm(GemmSpec{64, 64, 64, 11},
                                         Placement::host, true);
        ASSERT_TRUE(res.verified);
        const double corrupted = sys.stat("link_dn.link_corrupted_tlps") +
                                 sys.stat("link_up.link_corrupted_tlps");
        EXPECT_GT(corrupted, 0.0);
        if (first < 0) {
            first = corrupted;
        } else {
            EXPECT_EQ(corrupted, first);
        }
    }
}

TEST(FaultRecovery, MidRunLinkDownWindowIsSurvived)
{
    auto cfg = SystemConfig::paper_default();
    FaultEvent down;
    down.kind = FaultKind::link_down;
    down.site = "link_dn";
    down.dir = 2;
    down.at_ns = 10000.0;       // mid operand pull
    down.duration_ns = 20000.0; // then the link retrains
    cfg.fault_plan.events.push_back(down);
    cfg.fault_plan.max_replays = 64;
    cfg.fault_plan.replay_timeout_ns = 5000.0;
    System sys(cfg);
    Runner runner(sys);
    const auto res =
        runner.run_gemm(GemmSpec{128, 128, 128, 17}, Placement::host, true);

    EXPECT_TRUE(res.verified) << res.mismatches << " mismatches";
    // The window really hit in-flight traffic, and both directions
    // retrained afterwards (credits drained and re-armed).
    EXPECT_GT(sys.stat("link_dn.link_dropped_tlps"), 0.0);
    EXPECT_EQ(sys.stat("link_dn.link_retrains"), 2.0);
    EXPECT_EQ(sys.stat("link_dn.link_dead_tlps"), 0.0);
}

TEST(FaultRecovery, DeadEndpointDegradesGracefully)
{
    auto cfg = SystemConfig::paper_default();
    cfg.set_num_devices(2);
    FaultEvent down;
    down.kind = FaultKind::link_down;
    down.site = "link_dn1"; // device 1's downstream link, from tick 0
    down.dir = 2;
    down.at_ns = 0.0;
    down.duration_ns = 1e12;
    cfg.fault_plan.events.push_back(down);
    cfg.fault_plan.max_replays = 4;
    cfg.fault_plan.replay_timeout_ns = 2000.0;
    cfg.fault_plan.completion_timeout_ns = 50000.0;
    cfg.fault_plan.job_timeout_ns = 2e6;

    System sys(cfg);
    Runner runner(sys);
    runner.dispatch(0, GemmSpec{64, 64, 64, 23}, Placement::host, true);
    runner.dispatch(1, GemmSpec{64, 64, 64, 29}, Placement::host, true);
    const auto res = runner.run_dispatched();

    // Device 0 is untouched and verifies; device 1 never hears its
    // doorbell and is reported as a per-job timeout instead of wedging
    // the whole batch.
    ASSERT_EQ(res.devices.size(), 2u);
    EXPECT_EQ(res.devices[0].status, JobStatus::ok);
    EXPECT_TRUE(res.devices[0].verified);
    EXPECT_EQ(res.devices[1].status, JobStatus::timed_out);
    EXPECT_FALSE(res.devices[1].verified);
    // The dead link gave up on the doorbell after its replay budget.
    EXPECT_GT(sys.stat("link_dn1.link_dead_tlps"), 0.0);
    EXPECT_EQ(sys.stat("link_dn.link_dead_tlps"), 0.0);
}

TEST(FaultRecovery, LinkFailureMidRunFailsJobGracefully)
{
    auto cfg = SystemConfig::paper_default();
    FaultEvent down;
    down.kind = FaultKind::link_down;
    down.site = "link_dn";
    down.dir = 2;
    down.at_ns = 10000.0; // kill the link mid operand pull, forever
    down.duration_ns = 1e12;
    cfg.fault_plan.events.push_back(down);
    cfg.fault_plan.max_replays = 2;
    cfg.fault_plan.replay_timeout_ns = 1000.0;
    cfg.fault_plan.completion_timeout_ns = 50000.0;
    cfg.fault_plan.completion_max_retries = 2;
    cfg.fault_plan.job_timeout_ns = 5e6;

    System sys(cfg);
    Runner runner(sys);
    const auto res =
        runner.run_gemm(GemmSpec{128, 128, 128, 31}, Placement::host, true);

    // The run terminates (no deadlock) and reports failure: in-flight
    // reads timed out, and since the egress link is known-dead the
    // engine short-circuits straight to failure instead of burning the
    // retry budget against a path that cannot deliver.
    EXPECT_FALSE(res.verified);
    EXPECT_GT(sys.stat("link_dn.link_dead_tlps"), 0.0);
    EXPECT_GT(sys.stat("mf.dma.read_timeouts"), 0.0);
    EXPECT_EQ(sys.stat("mf.dma.read_retries"), 0.0);
    EXPECT_GT(sys.stat("mf.dma.dead_path_failures"), 0.0);
    // Both operand-pull jobs (A and B run concurrently) may fail.
    EXPECT_GE(sys.stat("mf.dma.jobs_failed"), 1.0);
}

TEST(FaultRecovery, RestoredRngStreamsContinueExactFaultSequence)
{
    // Checkpoint mid-run under seeded corruption, resume in a fresh
    // System: the serialized per-(site, direction) RNG stream positions
    // must make the resumed run draw the exact corruption tail the
    // straight run drew — same corrupted-TLP count, same NAK/replay
    // counts, same end tick.
    auto make_cfg = [] {
        auto cfg = SystemConfig::paper_default();
        cfg.fault_plan.seed = 99;
        cfg.fault_plan.corrupt_rate = 0.02;
        cfg.fault_plan.corrupt_site = "link_dn";
        return cfg;
    };
    const GemmSpec spec{64, 64, 64, 42};

    Tick straight_end = 0;
    double corrupted = 0.0;
    double naks = 0.0;
    double replays = 0.0;
    {
        System sys(make_cfg());
        Runner runner(sys);
        runner.dispatch(0, spec, Placement::host, true);
        const auto res = runner.run_dispatched();
        ASSERT_TRUE(res.all_verified());
        straight_end = sys.sim().now();
        corrupted = sys.stat("link_dn.link_corrupted_tlps");
        naks = sys.stat("link_dn.link_nak_count");
        replays = sys.stat("link_dn.link_replays");
        ASSERT_GT(corrupted, 0.0) << "plan must actually corrupt TLPs";
    }

    const std::string path = ::testing::TempDir() + "fault_rng.ckpt";
    {
        System sys(make_cfg());
        Runner runner(sys);
        runner.dispatch(0, spec, Placement::host, true);
        sys.sim().request_checkpoint_at(path, straight_end / 2);
        const auto res = runner.run_dispatched();
        ASSERT_TRUE(res.checkpointed);
        // The first half already corrupted something, so the resumed run
        // can only match the straight totals by continuing the stream —
        // not by restarting it.
        EXPECT_GT(sys.stat("link_dn.link_corrupted_tlps"), 0.0);
        EXPECT_LT(sys.stat("link_dn.link_corrupted_tlps"), corrupted);
    }

    System sys(make_cfg());
    Runner runner(sys);
    runner.dispatch(0, spec, Placement::host, true);
    runner.set_restore_path(path);
    const auto res = runner.run_dispatched();
    std::remove(path.c_str());
    ASSERT_TRUE(res.all_verified());
    EXPECT_EQ(sys.sim().now(), straight_end);
    EXPECT_EQ(sys.stat("link_dn.link_corrupted_tlps"), corrupted);
    EXPECT_EQ(sys.stat("link_dn.link_nak_count"), naks);
    EXPECT_EQ(sys.stat("link_dn.link_replays"), replays);
}

TEST(FaultRecovery, InactivePlanRegistersNoFaultStats)
{
    System sys(SystemConfig::paper_default());
    EXPECT_EQ(sys.stats().find("link_dn.link_replays"), nullptr);
    EXPECT_EQ(sys.stats().find("mf.dma.read_timeouts"), nullptr);
    EXPECT_EQ(sys.stats().find("rc.mmio_timeouts"), nullptr);
    EXPECT_EQ(sys.stats().find("mf.hangs"), nullptr);
    EXPECT_EQ(sys.stats().find("mf.poisoned_cpls"), nullptr);
    EXPECT_EQ(sys.stats().find("smmu.trans_faults"), nullptr);
    EXPECT_EQ(sys.stats().find("runner.fleet.rounds"), nullptr);
    EXPECT_EQ(sys.sim().fault_injector(), nullptr);
}

TEST(FaultRecovery, PermanentHangFailsOverAndAllJobsComplete)
{
    // The headline failover scenario: endpoint 1 hangs on *every* command
    // (a permanently wedged accelerator), three healthy peers, one job
    // dispatched per endpoint. The runner must detect the timeout, FLR
    // the wedged endpoint, mark it degraded, and re-dispatch its job to
    // the least-loaded healthy peer — every job completes and verifies,
    // zero JobStatus::failed outcomes.
    auto cfg = SystemConfig::paper_default();
    cfg.set_num_devices(4);
    cfg.fault_plan.hang_rate = 1.0;
    cfg.fault_plan.hang_site = "mf1";
    cfg.fault_plan.job_timeout_ns = 2e6;
    cfg.fault_plan.job_max_attempts = 3;

    System sys(cfg);
    Runner runner(sys);
    for (std::size_t d = 0; d < 4; ++d) {
        runner.dispatch(d, GemmSpec{48, 48, 48, 7 + d},
                        Placement::host, /*verify=*/true);
    }
    const auto res = runner.run_dispatched();

    for (const auto& d : res.devices) {
        EXPECT_EQ(d.status, JobStatus::ok) << "job on device " << d.device;
        EXPECT_TRUE(d.verified) << "job on device " << d.device;
    }
    // The wedged endpoint's job took exactly one extra attempt elsewhere.
    ASSERT_EQ(res.devices[1].attempts.size(), 2u);
    EXPECT_EQ(res.devices[1].attempts[0].device, 1u);
    EXPECT_EQ(res.devices[1].attempts[0].status, JobStatus::timed_out);
    EXPECT_NE(res.devices[1].attempts[1].device, 1u);
    EXPECT_EQ(res.devices[1].attempts[1].status, JobStatus::ok);
    EXPECT_EQ(res.redispatches, 1u);
    EXPECT_EQ(res.flrs, 1u);
    ASSERT_EQ(res.health.size(), 4u);
    EXPECT_EQ(res.health[0], EndpointHealth::healthy);
    EXPECT_EQ(res.health[1], EndpointHealth::degraded);
    EXPECT_EQ(res.health[2], EndpointHealth::healthy);
    EXPECT_EQ(res.health[3], EndpointHealth::healthy);
    EXPECT_GT(sys.stat("mf1.hangs"), 0.0);
    EXPECT_GT(sys.stat("mf1.flrs"), 0.0);
    EXPECT_EQ(sys.stat("runner.fleet.job_failures"), 0.0);
    EXPECT_EQ(sys.stat("runner.fleet.redispatches"), 1.0);
    EXPECT_EQ(sys.stat("runner.fleet.degrades"), 1.0);
    EXPECT_EQ(sys.stat("runner.fleet.quarantines"), 0.0);
}

TEST(FaultRecovery, PoisonedCompletionIsContainedNeverConsumed)
{
    // Poison containment: with every DMA read completion poisoned at the
    // endpoint's ingress, the engine must fail the job and drop the data
    // — the completion flag stays unset and the run reports the timeout
    // instead of silently consuming poisoned payload into the GEMM.
    auto cfg = SystemConfig::paper_default();
    cfg.fault_plan.poison_rate = 1.0;
    cfg.fault_plan.poison_site = "mf";
    cfg.fault_plan.job_timeout_ns = 1e6;
    System sys(cfg);
    Runner runner(sys);
    const auto res =
        runner.run_gemm(GemmSpec{48, 48, 48, 11}, Placement::host, true);

    EXPECT_FALSE(res.verified);
    EXPECT_GT(sys.stat("mf.poisoned_cpls"), 0.0);
    EXPECT_GT(sys.stat("mf.dma.poisoned_cpls_contained"), 0.0);
    EXPECT_GE(sys.stat("mf.dma.jobs_failed"), 1.0);
}

TEST(FaultRecovery, MmioUrWindowReadsAllOnesAndDropsWrites)
{
    // An MMIO unsupported-request window from tick 0: doorbell writes
    // into the endpoint's BAR are dropped and status reads complete
    // all-ones, so the job can never start; the poll times out and the
    // run degrades gracefully.
    auto cfg = SystemConfig::paper_default();
    FaultEvent ur;
    ur.kind = FaultKind::mmio_ur;
    ur.site = "mf";
    ur.at_ns = 0.0;
    ur.duration_ns = 0.0; // open-ended
    cfg.fault_plan.events.push_back(ur);
    cfg.fault_plan.job_timeout_ns = 2e5;
    System sys(cfg);
    Runner runner(sys);
    const auto res =
        runner.run_gemm(GemmSpec{32, 32, 32, 5}, Placement::host, true);

    EXPECT_FALSE(res.verified);
    EXPECT_GT(sys.stat("mf.ur_dropped_writes"), 0.0);
    EXPECT_EQ(sys.stat("mf.dma.jobs_done"), 0.0);
}

TEST(FaultRecovery, SmmuTranslationFaultsRecordedAndRecovered)
{
    // Seeded per-stream SMMU translation faults: faulted reads complete
    // poisoned (contained by the DMA engine, retried as completion
    // timeouts never are — the job retries via failover), each fault
    // leaves a bounded fault record, and the stream's RNG draw order
    // keeps the run deterministic.
    auto cfg = SystemConfig::paper_default();
    cfg.set_num_devices(2);
    cfg.fault_plan.seed = 31;
    cfg.fault_plan.smmu_fault_rate = 0.01;
    cfg.fault_plan.job_timeout_ns = 2e6;
    cfg.fault_plan.job_max_attempts = 4;
    System sys(cfg);
    Runner runner(sys);
    runner.dispatch(0, GemmSpec{32, 32, 32, 3}, Placement::host, true);
    runner.dispatch(1, GemmSpec{32, 32, 32, 5}, Placement::host, true);
    const auto res = runner.run_dispatched();

    EXPECT_GT(sys.stat("smmu.trans_faults"), 0.0);
    const auto& records = sys.smmu().fault_records();
    EXPECT_FALSE(records.empty());
    EXPECT_LE(records.size(), 64u);
    // Containment + failover turned every fault into a retried job.
    for (const auto& d : res.devices) {
        EXPECT_EQ(d.status, JobStatus::ok) << "job on device " << d.device;
        EXPECT_TRUE(d.verified) << "job on device " << d.device;
    }
}

} // namespace
} // namespace accesys::core
