// End-to-end fault injection + recovery through the full system: seeded
// TLP corruption recovered by data-link replay (functional results stay
// bit-exact), surprise link-down windows survived by the replay timer,
// and graceful degradation — a permanently dead endpoint fails its job
// per-device (completion/job timeouts) while the other endpoints' jobs
// finish and verify.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/runner.hh"
#include "workload/request_gen.hh"

namespace accesys::core {
namespace {

using workload::GemmSpec;

TEST(FaultRecovery, SeededCorruptionRecoversAndVerifies)
{
    auto cfg = SystemConfig::paper_default();
    cfg.fault_plan.seed = 99;
    cfg.fault_plan.corrupt_rate = 0.02;
    cfg.fault_plan.corrupt_site = "link_dn";
    System sys(cfg);
    Runner runner(sys);
    const auto res =
        runner.run_gemm(GemmSpec{64, 64, 64, 42}, Placement::host, true);

    // Corrupted TLPs were dropped by the receiver, NAKed and replayed —
    // never silently delivered — so the functional result is untouched.
    EXPECT_TRUE(res.verified) << res.mismatches << " mismatches";
    EXPECT_GT(sys.stat("link_dn.link_corrupted_tlps"), 0.0);
    EXPECT_GT(sys.stat("link_dn.link_nak_count"), 0.0);
    EXPECT_GT(sys.stat("link_dn.link_replays"), 0.0);
    EXPECT_GT(sys.stat("link_dn.recovery_ns"), 0.0);
    // Every corruption was recovered, none escalated to a dead TLP.
    EXPECT_EQ(sys.stat("link_dn.link_dead_tlps"), 0.0);
}

TEST(FaultRecovery, CorruptionOnSharedUplinkRecovers)
{
    auto cfg = SystemConfig::paper_default();
    cfg.fault_plan.seed = 7;
    cfg.fault_plan.corrupt_rate = 0.01;
    cfg.fault_plan.corrupt_site = "link_up";
    System sys(cfg);
    Runner runner(sys);
    const auto res =
        runner.run_gemm(GemmSpec{48, 48, 48, 3}, Placement::host, true);
    EXPECT_TRUE(res.verified);
    EXPECT_GT(sys.stat("link_up.link_replays"), 0.0);
}

TEST(FaultRecovery, CorruptionIsDeterministicPerSeed)
{
    auto cfg = SystemConfig::paper_default();
    cfg.fault_plan.seed = 5;
    cfg.fault_plan.corrupt_rate = 0.02;
    double first = -1.0;
    for (int i = 0; i < 2; ++i) {
        System sys(cfg);
        Runner runner(sys);
        const auto res = runner.run_gemm(GemmSpec{64, 64, 64, 11},
                                         Placement::host, true);
        ASSERT_TRUE(res.verified);
        const double corrupted = sys.stat("link_dn.link_corrupted_tlps") +
                                 sys.stat("link_up.link_corrupted_tlps");
        EXPECT_GT(corrupted, 0.0);
        if (first < 0) {
            first = corrupted;
        } else {
            EXPECT_EQ(corrupted, first);
        }
    }
}

TEST(FaultRecovery, MidRunLinkDownWindowIsSurvived)
{
    auto cfg = SystemConfig::paper_default();
    FaultEvent down;
    down.kind = FaultKind::link_down;
    down.site = "link_dn";
    down.dir = 2;
    down.at_ns = 10000.0;       // mid operand pull
    down.duration_ns = 20000.0; // then the link retrains
    cfg.fault_plan.events.push_back(down);
    cfg.fault_plan.max_replays = 64;
    cfg.fault_plan.replay_timeout_ns = 5000.0;
    System sys(cfg);
    Runner runner(sys);
    const auto res =
        runner.run_gemm(GemmSpec{128, 128, 128, 17}, Placement::host, true);

    EXPECT_TRUE(res.verified) << res.mismatches << " mismatches";
    // The window really hit in-flight traffic, and both directions
    // retrained afterwards (credits drained and re-armed).
    EXPECT_GT(sys.stat("link_dn.link_dropped_tlps"), 0.0);
    EXPECT_EQ(sys.stat("link_dn.link_retrains"), 2.0);
    EXPECT_EQ(sys.stat("link_dn.link_dead_tlps"), 0.0);
}

TEST(FaultRecovery, DeadEndpointDegradesGracefully)
{
    auto cfg = SystemConfig::paper_default();
    cfg.set_num_devices(2);
    FaultEvent down;
    down.kind = FaultKind::link_down;
    down.site = "link_dn1"; // device 1's downstream link, from tick 0
    down.dir = 2;
    down.at_ns = 0.0;
    down.duration_ns = 1e12;
    cfg.fault_plan.events.push_back(down);
    cfg.fault_plan.max_replays = 4;
    cfg.fault_plan.replay_timeout_ns = 2000.0;
    cfg.fault_plan.completion_timeout_ns = 50000.0;
    cfg.fault_plan.job_timeout_ns = 2e6;

    System sys(cfg);
    Runner runner(sys);
    runner.dispatch(0, GemmSpec{64, 64, 64, 23}, Placement::host, true);
    runner.dispatch(1, GemmSpec{64, 64, 64, 29}, Placement::host, true);
    const auto res = runner.run_dispatched();

    // Device 0 is untouched and verifies; device 1 never hears its
    // doorbell and is reported as a per-job timeout instead of wedging
    // the whole batch.
    ASSERT_EQ(res.devices.size(), 2u);
    EXPECT_EQ(res.devices[0].status, JobStatus::ok);
    EXPECT_TRUE(res.devices[0].verified);
    EXPECT_EQ(res.devices[1].status, JobStatus::timed_out);
    EXPECT_FALSE(res.devices[1].verified);
    // The dead link gave up on the doorbell after its replay budget.
    EXPECT_GT(sys.stat("link_dn1.link_dead_tlps"), 0.0);
    EXPECT_EQ(sys.stat("link_dn.link_dead_tlps"), 0.0);
}

TEST(FaultRecovery, LinkFailureMidRunFailsJobGracefully)
{
    auto cfg = SystemConfig::paper_default();
    FaultEvent down;
    down.kind = FaultKind::link_down;
    down.site = "link_dn";
    down.dir = 2;
    down.at_ns = 10000.0; // kill the link mid operand pull, forever
    down.duration_ns = 1e12;
    cfg.fault_plan.events.push_back(down);
    cfg.fault_plan.max_replays = 2;
    cfg.fault_plan.replay_timeout_ns = 1000.0;
    cfg.fault_plan.completion_timeout_ns = 50000.0;
    cfg.fault_plan.completion_max_retries = 2;
    cfg.fault_plan.job_timeout_ns = 5e6;

    System sys(cfg);
    Runner runner(sys);
    const auto res =
        runner.run_gemm(GemmSpec{128, 128, 128, 31}, Placement::host, true);

    // The run terminates (no deadlock) and reports failure: in-flight
    // reads timed out, and since the egress link is known-dead the
    // engine short-circuits straight to failure instead of burning the
    // retry budget against a path that cannot deliver.
    EXPECT_FALSE(res.verified);
    EXPECT_GT(sys.stat("link_dn.link_dead_tlps"), 0.0);
    EXPECT_GT(sys.stat("mf.dma.read_timeouts"), 0.0);
    EXPECT_EQ(sys.stat("mf.dma.read_retries"), 0.0);
    EXPECT_GT(sys.stat("mf.dma.dead_path_failures"), 0.0);
    // Both operand-pull jobs (A and B run concurrently) may fail.
    EXPECT_GE(sys.stat("mf.dma.jobs_failed"), 1.0);
}

TEST(FaultRecovery, RestoredRngStreamsContinueExactFaultSequence)
{
    // Checkpoint mid-run under seeded corruption, resume in a fresh
    // System: the serialized per-(site, direction) RNG stream positions
    // must make the resumed run draw the exact corruption tail the
    // straight run drew — same corrupted-TLP count, same NAK/replay
    // counts, same end tick.
    auto make_cfg = [] {
        auto cfg = SystemConfig::paper_default();
        cfg.fault_plan.seed = 99;
        cfg.fault_plan.corrupt_rate = 0.02;
        cfg.fault_plan.corrupt_site = "link_dn";
        return cfg;
    };
    const GemmSpec spec{64, 64, 64, 42};

    Tick straight_end = 0;
    double corrupted = 0.0;
    double naks = 0.0;
    double replays = 0.0;
    {
        System sys(make_cfg());
        Runner runner(sys);
        runner.dispatch(0, spec, Placement::host, true);
        const auto res = runner.run_dispatched();
        ASSERT_TRUE(res.all_verified());
        straight_end = sys.sim().now();
        corrupted = sys.stat("link_dn.link_corrupted_tlps");
        naks = sys.stat("link_dn.link_nak_count");
        replays = sys.stat("link_dn.link_replays");
        ASSERT_GT(corrupted, 0.0) << "plan must actually corrupt TLPs";
    }

    const std::string path = ::testing::TempDir() + "fault_rng.ckpt";
    {
        System sys(make_cfg());
        Runner runner(sys);
        runner.dispatch(0, spec, Placement::host, true);
        sys.sim().request_checkpoint_at(path, straight_end / 2);
        const auto res = runner.run_dispatched();
        ASSERT_TRUE(res.checkpointed);
        // The first half already corrupted something, so the resumed run
        // can only match the straight totals by continuing the stream —
        // not by restarting it.
        EXPECT_GT(sys.stat("link_dn.link_corrupted_tlps"), 0.0);
        EXPECT_LT(sys.stat("link_dn.link_corrupted_tlps"), corrupted);
    }

    System sys(make_cfg());
    Runner runner(sys);
    runner.dispatch(0, spec, Placement::host, true);
    runner.set_restore_path(path);
    const auto res = runner.run_dispatched();
    std::remove(path.c_str());
    ASSERT_TRUE(res.all_verified());
    EXPECT_EQ(sys.sim().now(), straight_end);
    EXPECT_EQ(sys.stat("link_dn.link_corrupted_tlps"), corrupted);
    EXPECT_EQ(sys.stat("link_dn.link_nak_count"), naks);
    EXPECT_EQ(sys.stat("link_dn.link_replays"), replays);
}

TEST(FaultRecovery, InactivePlanRegistersNoFaultStats)
{
    System sys(SystemConfig::paper_default());
    EXPECT_EQ(sys.stats().find("link_dn.link_replays"), nullptr);
    EXPECT_EQ(sys.stats().find("mf.dma.read_timeouts"), nullptr);
    EXPECT_EQ(sys.stats().find("rc.mmio_timeouts"), nullptr);
    EXPECT_EQ(sys.stats().find("mf.hangs"), nullptr);
    EXPECT_EQ(sys.stats().find("mf.poisoned_cpls"), nullptr);
    EXPECT_EQ(sys.stats().find("smmu.trans_faults"), nullptr);
    EXPECT_EQ(sys.stats().find("runner.fleet.rounds"), nullptr);
    EXPECT_EQ(sys.sim().fault_injector(), nullptr);
}

TEST(FaultRecovery, PermanentHangFailsOverAndAllJobsComplete)
{
    // The headline failover scenario: endpoint 1 hangs on *every* command
    // (a permanently wedged accelerator), three healthy peers, one job
    // dispatched per endpoint. The runner must detect the timeout, FLR
    // the wedged endpoint, mark it degraded, and re-dispatch its job to
    // the least-loaded healthy peer — every job completes and verifies,
    // zero JobStatus::failed outcomes.
    auto cfg = SystemConfig::paper_default();
    cfg.set_num_devices(4);
    cfg.fault_plan.hang_rate = 1.0;
    cfg.fault_plan.hang_site = "mf1";
    cfg.fault_plan.job_timeout_ns = 2e6;
    cfg.fault_plan.job_max_attempts = 3;

    System sys(cfg);
    Runner runner(sys);
    for (std::size_t d = 0; d < 4; ++d) {
        runner.dispatch(d, GemmSpec{48, 48, 48, 7 + d},
                        Placement::host, /*verify=*/true);
    }
    const auto res = runner.run_dispatched();

    for (const auto& d : res.devices) {
        EXPECT_EQ(d.status, JobStatus::ok) << "job on device " << d.device;
        EXPECT_TRUE(d.verified) << "job on device " << d.device;
    }
    // The wedged endpoint's job took exactly one extra attempt elsewhere.
    ASSERT_EQ(res.devices[1].attempts.size(), 2u);
    EXPECT_EQ(res.devices[1].attempts[0].device, 1u);
    EXPECT_EQ(res.devices[1].attempts[0].status, JobStatus::timed_out);
    EXPECT_NE(res.devices[1].attempts[1].device, 1u);
    EXPECT_EQ(res.devices[1].attempts[1].status, JobStatus::ok);
    EXPECT_EQ(res.redispatches, 1u);
    EXPECT_EQ(res.flrs, 1u);
    ASSERT_EQ(res.health.size(), 4u);
    EXPECT_EQ(res.health[0], EndpointHealth::healthy);
    EXPECT_EQ(res.health[1], EndpointHealth::degraded);
    EXPECT_EQ(res.health[2], EndpointHealth::healthy);
    EXPECT_EQ(res.health[3], EndpointHealth::healthy);
    EXPECT_GT(sys.stat("mf1.hangs"), 0.0);
    EXPECT_GT(sys.stat("mf1.flrs"), 0.0);
    EXPECT_EQ(sys.stat("runner.fleet.job_failures"), 0.0);
    EXPECT_EQ(sys.stat("runner.fleet.redispatches"), 1.0);
    EXPECT_EQ(sys.stat("runner.fleet.degrades"), 1.0);
    EXPECT_EQ(sys.stat("runner.fleet.quarantines"), 0.0);
}

TEST(FaultRecovery, DegradedEndpointRehabilitatesThenRequarantines)
{
    // The full health-hysteresis life cycle on endpoint 1, across five
    // single-job batches dispatched to it:
    //   batch 1: hang (event at t=0)  -> timed out, FLR, degraded
    //   batch 2: clean success        -> still degraded (1 < rehab_successes)
    //   batch 3: clean success (big)  -> rehabilitated: degraded -> healthy
    //   batch 4: hang (event at T2)   -> healthy -> degraded again
    //   batch 5: hang (event at T2)   -> second consecutive failure ->
    //                                    quarantined
    // Batch 3 is a deliberately large GEMM so its completion pushes sim
    // time far past T2 before batch 4 launches; T2 itself sits far above
    // every earlier command tick, so exactly batches 4 and 5 consume the
    // two pending one-shot hang events (hang_roll advances at most one
    // event per command launch).
    //
    // The whole sequence is then checkpoint/restored from the middle of
    // batch 3 — after the rehab count started, before it completed — and
    // must finish bit-identical.
    auto make_cfg = [] {
        auto cfg = SystemConfig::paper_default();
        cfg.set_num_devices(2);
        FaultEvent hang;
        hang.kind = FaultKind::accel_hang;
        hang.site = "mf1";
        hang.at_ns = 0.0;
        cfg.fault_plan.events.push_back(hang);
        hang.at_ns = 1.15e6; // T2: between batch 3's launch and batch 4's
        cfg.fault_plan.events.push_back(hang);
        cfg.fault_plan.events.push_back(hang);
        // Generous enough for the 256^3 batch's legitimate service time;
        // a wedged endpoint still gives up well before the next batch.
        cfg.fault_plan.job_timeout_ns = 1e6;
        cfg.fault_plan.job_max_attempts = 3;
        cfg.fault_plan.quarantine_failures = 2;
        cfg.fault_plan.rehab_successes = 2;
        return cfg;
    };

    struct LegResult {
        Tick end = 0;
        std::string stats_text;
        std::string stats_json;
        std::vector<Tick> batch_ends;
    };
    const std::array<GemmSpec, 5> specs = {
        GemmSpec{32, 32, 32, 7}, GemmSpec{32, 32, 32, 11},
        GemmSpec{256, 256, 256, 13}, GemmSpec{32, 32, 32, 17},
        GemmSpec{32, 32, 32, 19}};

    // `ckpt_path` empty = straight leg; `ckpt_at` != 0 = save leg (stop at
    // the checkpoint); restore leg otherwise.
    auto run_leg = [&](const std::string& ckpt_path, Tick ckpt_at,
                       bool restore) {
        System sys(make_cfg());
        Runner runner(sys);
        if (ckpt_at != 0) {
            sys.sim().request_checkpoint_at(ckpt_path, ckpt_at);
        }
        LegResult leg;
        for (std::size_t b = 0; b < specs.size(); ++b) {
            runner.dispatch(1, specs[b], Placement::host, true);
            if (restore && sys.sim().now() == 0 &&
                leg.batch_ends.size() + 1 == 3) {
                // Batch 3 contains the checkpoint: re-stage it and resume.
                runner.set_restore_path(ckpt_path);
            }
            const auto res = runner.run_dispatched();
            if (res.checkpointed) {
                EXPECT_EQ(leg.batch_ends.size() + 1, 3u)
                    << "checkpoint must land inside batch 3";
                return leg;
            }
            if (res.devices.size() != 1 || res.health.size() != 2) {
                ADD_FAILURE() << "unexpected result shape in batch "
                              << (b + 1);
                return leg;
            }
            EXPECT_EQ(res.devices[0].status, JobStatus::ok)
                << "batch " << (b + 1);
            EXPECT_TRUE(res.devices[0].verified) << "batch " << (b + 1);
            leg.batch_ends.push_back(sys.sim().now());
            EXPECT_EQ(res.health[0], EndpointHealth::healthy)
                << "batch " << (b + 1);
            static const EndpointHealth kExpected[5] = {
                EndpointHealth::degraded,    // batch 1: first hang
                EndpointHealth::degraded,    // batch 2: 1 of 2 successes
                EndpointHealth::healthy,     // batch 3: rehabilitated
                EndpointHealth::degraded,    // batch 4: second hang
                EndpointHealth::quarantined, // batch 5: re-quarantined
            };
            EXPECT_EQ(res.health[1], kExpected[b]) << "batch " << (b + 1);
        }
        leg.end = sys.sim().now();
        std::ostringstream text;
        sys.stats().write_text(text);
        leg.stats_text = text.str();
        std::ostringstream json;
        sys.stats().write_json(json);
        leg.stats_json = json.str();
        EXPECT_EQ(sys.stat("runner.fleet.degrades"), 2.0);
        EXPECT_EQ(sys.stat("runner.fleet.rehabs"), 1.0);
        EXPECT_EQ(sys.stat("runner.fleet.quarantines"), 1.0);
        EXPECT_EQ(sys.stat("runner.fleet.redispatches"), 3.0);
        EXPECT_EQ(sys.stat("runner.fleet.flrs"), 3.0);
        EXPECT_EQ(sys.stat("runner.fleet.job_failures"), 0.0);
        EXPECT_EQ(sys.stat("mf1.hangs"), 3.0);
        return leg;
    };

    const LegResult straight = run_leg("", 0, false);
    ASSERT_EQ(straight.batch_ends.size(), 5u);
    ASSERT_FALSE(straight.stats_text.empty());

    // Checkpoint mid-batch-3: strictly after batch 2 completed (the rehab
    // streak is at 1 of 2) and before batch 3 completes it.
    const Tick mid =
        (straight.batch_ends[1] + straight.batch_ends[2]) / 2;
    const std::string path = ::testing::TempDir() + "rehab.ckpt";
    const LegResult saved = run_leg(path, mid, false);
    EXPECT_EQ(saved.batch_ends.size(), 2u)
        << "save leg must stop inside batch 3";

    const LegResult resumed = run_leg(path, 0, true);
    std::remove(path.c_str());
    ASSERT_EQ(resumed.batch_ends.size(), 5u);
    EXPECT_EQ(resumed.end, straight.end);
    EXPECT_EQ(resumed.stats_text, straight.stats_text);
    EXPECT_EQ(resumed.stats_json, straight.stats_json);
}

TEST(FaultRecovery, ServingOverloadWithWedgedEndpointShedsAndCompletes)
{
    // Overload + fault composition: 60 arrivals at one job per 2 us — about
    // 1.5x what three healthy endpoints sustain for 32^3 jobs — while
    // endpoint 1 hangs on every command. The serving loop must quarantine
    // the wedged endpoint after two consecutive failures, shed the overload
    // deterministically (shed_oldest, capacity 4), and complete every
    // admitted-and-not-shed job via failover — zero failures, nothing
    // silently dropped, and the whole composition bit-identical on a rerun.
    auto run_once = [](std::string* stats_text) {
        std::ostringstream body;
        for (int i = 0; i < 60; ++i) {
            body << (100 + 2000 * i) << " 0 32 32 32\n";
        }
        const std::string trace =
            ::testing::TempDir() + "serving_wedged.trace";
        {
            std::ofstream out(trace);
            out << body.str();
        }
        auto cfg = SystemConfig::paper_default();
        cfg.set_num_devices(4);
        cfg.fault_plan.hang_rate = 1.0;
        cfg.fault_plan.hang_site = "mf1";
        cfg.fault_plan.job_timeout_ns = 2e5;
        cfg.fault_plan.job_max_attempts = 3;
        cfg.fault_plan.quarantine_failures = 2;
        System sys(cfg);
        workload::RequestGenConfig gcfg;
        gcfg.mode = workload::RequestGenConfig::Mode::trace;
        gcfg.trace_path = trace;
        workload::TenantSpec tenant;
        tenant.name = "load";
        gcfg.tenants.push_back(tenant);
        workload::RequestGen gen(sys.sim(), gcfg);

        ServingConfig scfg;
        scfg.policy = ShedPolicy::shed_oldest;
        scfg.queue_capacity = 4;
        Runner runner(sys);
        const ServingResult res = runner.serve(gen, scfg);
        std::remove(trace.c_str());
        if (stats_text != nullptr) {
            std::ostringstream text;
            sys.stats().write_text(text);
            *stats_text = text.str();
        }
        EXPECT_GT(sys.stat("mf1.hangs"), 0.0);
        return res;
    };

    std::string first_stats;
    const ServingResult res = run_once(&first_stats);
    EXPECT_TRUE(res.accounted())
        << "offered " << res.offered << " admitted " << res.admitted
        << " rejected " << res.rejected << " shed " << res.shed
        << " completed " << res.completed << " failed " << res.failed;
    EXPECT_EQ(res.offered, 60u);
    EXPECT_EQ(res.rejected, 0u) << "shed_oldest never refuses at admission";
    EXPECT_GT(res.shed, 0u) << "1.5x overload must shed";
    EXPECT_EQ(res.failed, 0u)
        << "every admitted-and-dispatched job must complete via failover";
    EXPECT_EQ(res.completed + res.shed, res.admitted);
    EXPECT_GE(res.redispatches, 2u)
        << "the wedged endpoint's jobs must fail over";
    ASSERT_EQ(res.health.size(), 4u);
    EXPECT_EQ(res.health[1], EndpointHealth::quarantined)
        << "two consecutive hangs must quarantine the wedged endpoint";
    EXPECT_EQ(res.health[0], EndpointHealth::healthy);
    EXPECT_EQ(res.health[2], EndpointHealth::healthy);
    EXPECT_EQ(res.health[3], EndpointHealth::healthy);
    for (const ServedJob& j : res.jobs) {
        if (j.status == JobStatus::ok) {
            EXPECT_TRUE(j.verified) << "job " << j.id;
        }
    }

    // The composition — Bernoulli hang stream, timeouts, FLR, shedding —
    // is deterministic: a second identical run dumps identical stats.
    std::string second_stats;
    const ServingResult rerun = run_once(&second_stats);
    EXPECT_EQ(rerun.completed, res.completed);
    EXPECT_EQ(rerun.shed, res.shed);
    EXPECT_EQ(second_stats, first_stats);
}

TEST(FaultRecovery, PoisonedCompletionIsContainedNeverConsumed)
{
    // Poison containment: with every DMA read completion poisoned at the
    // endpoint's ingress, the engine must fail the job and drop the data
    // — the completion flag stays unset and the run reports the timeout
    // instead of silently consuming poisoned payload into the GEMM.
    auto cfg = SystemConfig::paper_default();
    cfg.fault_plan.poison_rate = 1.0;
    cfg.fault_plan.poison_site = "mf";
    cfg.fault_plan.job_timeout_ns = 1e6;
    System sys(cfg);
    Runner runner(sys);
    const auto res =
        runner.run_gemm(GemmSpec{48, 48, 48, 11}, Placement::host, true);

    EXPECT_FALSE(res.verified);
    EXPECT_GT(sys.stat("mf.poisoned_cpls"), 0.0);
    EXPECT_GT(sys.stat("mf.dma.poisoned_cpls_contained"), 0.0);
    EXPECT_GE(sys.stat("mf.dma.jobs_failed"), 1.0);
}

TEST(FaultRecovery, MmioUrWindowReadsAllOnesAndDropsWrites)
{
    // An MMIO unsupported-request window from tick 0: doorbell writes
    // into the endpoint's BAR are dropped and status reads complete
    // all-ones, so the job can never start; the poll times out and the
    // run degrades gracefully.
    auto cfg = SystemConfig::paper_default();
    FaultEvent ur;
    ur.kind = FaultKind::mmio_ur;
    ur.site = "mf";
    ur.at_ns = 0.0;
    ur.duration_ns = 0.0; // open-ended
    cfg.fault_plan.events.push_back(ur);
    cfg.fault_plan.job_timeout_ns = 2e5;
    System sys(cfg);
    Runner runner(sys);
    const auto res =
        runner.run_gemm(GemmSpec{32, 32, 32, 5}, Placement::host, true);

    EXPECT_FALSE(res.verified);
    EXPECT_GT(sys.stat("mf.ur_dropped_writes"), 0.0);
    EXPECT_EQ(sys.stat("mf.dma.jobs_done"), 0.0);
}

TEST(FaultRecovery, SmmuTranslationFaultsRecordedAndRecovered)
{
    // Seeded per-stream SMMU translation faults: faulted reads complete
    // poisoned (contained by the DMA engine, retried as completion
    // timeouts never are — the job retries via failover), each fault
    // leaves a bounded fault record, and the stream's RNG draw order
    // keeps the run deterministic.
    auto cfg = SystemConfig::paper_default();
    cfg.set_num_devices(2);
    cfg.fault_plan.seed = 31;
    cfg.fault_plan.smmu_fault_rate = 0.01;
    cfg.fault_plan.job_timeout_ns = 2e6;
    cfg.fault_plan.job_max_attempts = 4;
    System sys(cfg);
    Runner runner(sys);
    runner.dispatch(0, GemmSpec{32, 32, 32, 3}, Placement::host, true);
    runner.dispatch(1, GemmSpec{32, 32, 32, 5}, Placement::host, true);
    const auto res = runner.run_dispatched();

    EXPECT_GT(sys.stat("smmu.trans_faults"), 0.0);
    const auto& records = sys.smmu().fault_records();
    EXPECT_FALSE(records.empty());
    EXPECT_LE(records.size(), 64u);
    // Containment + failover turned every fault into a retried job.
    for (const auto& d : res.devices) {
        EXPECT_EQ(d.status, JobStatus::ok) << "job on device " << d.device;
        EXPECT_TRUE(d.verified) << "job on device " << d.device;
    }
}

} // namespace
} // namespace accesys::core
