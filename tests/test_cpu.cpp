// Tests for the host CPU op-trace executor.
#include "test_util.hh"

#include "cpu/host_cpu.hh"
#include "mem/mem_ctrl.hh"

namespace accesys::cpu {
namespace {

using mem::AddrRange;

struct CpuFixture : ::testing::Test {
    Simulator sim;
    mem::BackingStore store;
    CpuParams params;
    mem::SimpleMemParams mem_params;

    std::unique_ptr<HostCpu> cpu;
    std::unique_ptr<mem::SimpleMem> memory;
    bool done = false;

    void build()
    {
        cpu = std::make_unique<HostCpu>(sim, "cpu", params, store);
        memory = std::make_unique<mem::SimpleMem>(sim, "mem", mem_params,
                                                  AddrRange(0, kGiB));
        cpu->mem_port().bind(memory->port());
    }

    void run(std::vector<CpuOp> prog)
    {
        cpu->run_program(std::move(prog), [this] { done = true; });
        test::drain(sim);
    }
};

TEST_F(CpuFixture, EmptyProgramCompletes)
{
    build();
    run({});
    EXPECT_TRUE(done);
    EXPECT_TRUE(cpu->idle());
}

TEST_F(CpuFixture, CallsRunInOrderAtZeroCost)
{
    build();
    std::vector<int> order;
    run({Call{[&] { order.push_back(1); }},
         Call{[&] { order.push_back(2); }},
         Call{[&] { order.push_back(3); }}});
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(CpuFixture, DelayAdvancesTime)
{
    build();
    run({Delay{100}});
    EXPECT_TRUE(done);
    // 100 cycles at 1 GHz = 100 ns (plus the initial clock-edge alignment).
    EXPECT_GE(sim.now(), ticks_from_ns(100.0));
    EXPECT_LE(sim.now(), ticks_from_ns(102.0));
}

TEST_F(CpuFixture, MmioWriteWaitsForAck)
{
    mem_params.latency_ns = 80.0;
    build();
    run({MmioWrite{0x1000, 42}});
    EXPECT_TRUE(done);
    EXPECT_GE(sim.now(), ticks_from_ns(80.0));
    EXPECT_EQ(sim.stats().value("cpu.mmio_writes"), 1.0);
}

TEST_F(CpuFixture, PollFlagSpinsUntilValueAppears)
{
    build();
    // A side event sets the flag after 2 us.
    Event setter("setter", [this] { store.write_obj<std::uint64_t>(0x2000, 7); });
    sim.queue().schedule(setter, 2 * kTicksPerUs);

    run({PollFlag{0x2000, 7}});
    EXPECT_TRUE(done);
    EXPECT_GE(sim.now(), 2 * kTicksPerUs);
    EXPECT_GE(sim.stats().value("cpu.polls"), 2.0);
}

TEST_F(CpuFixture, PollBackoffReducesPollCount)
{
    params.poll_interval_cycles = 50;
    params.poll_interval_max_cycles = 4096;
    build();
    Event setter("setter", [this] { store.write_obj<std::uint64_t>(0x2000, 1); });
    sim.queue().schedule(setter, 100 * kTicksPerUs);
    run({PollFlag{0x2000, 1}});
    // Without backoff ~2000 polls would be needed; with doubling far fewer.
    EXPECT_LT(sim.stats().value("cpu.polls"), 60.0);
}

TEST_F(CpuFixture, VectorOpStreamsBytes)
{
    build();
    VectorOp op;
    op.label = "softmax";
    op.in_addr = 0x10000;
    op.bytes_in = 4096;
    op.out_addr = 0x20000;
    op.bytes_out = 1024;
    op.alu_ops = 64; // negligible
    run({std::move(op)});
    EXPECT_TRUE(done);
    EXPECT_EQ(sim.stats().value("cpu.vector_ops"), 1.0);
    EXPECT_EQ(sim.stats().value("cpu.vector_bytes"), 5120.0);
    EXPECT_EQ(sim.stats().value("mem.reads"), 64.0);  // 4096/64 lines
    EXPECT_EQ(sim.stats().value("mem.writes"), 16.0); // posted lines
}

TEST_F(CpuFixture, AluBoundVectorOpTakesComputeTime)
{
    params.simd_lanes = 4;
    mem_params.latency_ns = 1.0;
    mem_params.bandwidth_gbps = 1000.0;
    build();
    VectorOp op;
    op.in_addr = 0x10000;
    op.bytes_in = 64;
    op.alu_ops = 400000; // 100k cycles at 4 lanes
    run({std::move(op)});
    EXPECT_GE(sim.now(), 100000 * period_from_ghz(1.0));
}

TEST_F(CpuFixture, MemBoundVectorOpScalesWithBandwidth)
{
    mem_params.bandwidth_gbps = 1.0; // slow memory
    mem_params.latency_ns = 5.0;
    build();
    VectorOp op;
    op.in_addr = 0;
    op.bytes_in = 64 * kKiB;
    op.alu_ops = 1;
    run({std::move(op)});
    // 64 KiB at 1 GB/s is ~65 us.
    EXPECT_GE(sim.now(), 60 * kTicksPerUs);
}

TEST_F(CpuFixture, UncacheableWindowThrottles)
{
    params.mem_window = 8;
    params.uncacheable_window = 1;
    mem_params.latency_ns = 100.0;
    mem_params.bandwidth_gbps = 1000.0;
    build();
    cpu->add_uncacheable_range(AddrRange(0x100000, 0x200000));

    VectorOp cached;
    cached.in_addr = 0x10000;
    cached.bytes_in = 64 * 64;
    run({std::move(cached)});
    const Tick cached_time = sim.now();

    done = false;
    VectorOp uncached;
    uncached.in_addr = 0x100000;
    uncached.bytes_in = 64 * 64;
    std::vector<CpuOp> prog;
    prog.push_back(std::move(uncached));
    cpu->run_program(std::move(prog), [this] { done = true; });
    test::drain(sim);
    const Tick uncached_time = sim.now() - cached_time;
    EXPECT_TRUE(done);
    // Window 1 vs 8 at 100 ns latency: roughly 8x slower.
    EXPECT_GT(uncached_time, cached_time * 4);
}

TEST_F(CpuFixture, ProgramsChainViaOnDone)
{
    build();
    int phase = 0;
    cpu->run_program({Delay{10}}, [&] {
        phase = 1;
        cpu->run_program({Delay{10}}, [&] { phase = 2; });
    });
    test::drain(sim);
    EXPECT_EQ(phase, 2);
}

TEST_F(CpuFixture, SecondRunWhileBusyThrows)
{
    build();
    cpu->run_program({Delay{1000}}, {});
    EXPECT_THROW(cpu->run_program({Delay{1}}, {}), SimError);
    test::drain(sim);
}

TEST(CpuParams, Validation)
{
    CpuParams p;
    p.freq_ghz = 0;
    EXPECT_THROW(p.validate(), ConfigError);
    p = {};
    p.mem_window = 0;
    EXPECT_THROW(p.validate(), ConfigError);
    p = {};
    p.line_bytes = 50;
    EXPECT_THROW(p.validate(), ConfigError);
    p = {};
    p.simd_lanes = 0;
    EXPECT_THROW(p.validate(), ConfigError);
}

} // namespace
} // namespace accesys::cpu
