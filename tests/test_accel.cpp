// Tests for the systolic array model and the DevMem data mover.
#include "test_util.hh"

#include "accel/data_mover.hh"
#include "accel/systolic_array.hh"
#include "mem/mem_ctrl.hh"
#include "mem/xbar.hh"
#include "workload/gemm.hh"

namespace accesys::accel {
namespace {

TEST(SystolicArray, TileCycleModel)
{
    SystolicParams p;
    p.fill_drain_cycles = 32;
    SystolicArray sa(p);
    EXPECT_EQ(sa.tile_cycles(256), 288u);
    // 1 GHz: ticks == cycles * 1000.
    EXPECT_EQ(sa.tile_ticks(256), 288u * 1000);
    EXPECT_EQ(sa.strip_ticks(4, 256), 4 * 288u * 1000);
}

TEST(SystolicArray, ComputeTimeOverride)
{
    SystolicParams p;
    p.compute_time_override_ns = 1500.0;
    SystolicArray sa(p);
    EXPECT_EQ(sa.tile_ticks(64), ticks_from_ns(1500.0));
    EXPECT_EQ(sa.tile_ticks(4096), ticks_from_ns(1500.0)); // K-independent
}

TEST(SystolicArray, PeakThroughput)
{
    SystolicParams p; // 16x16 at 1 GHz
    SystolicArray sa(p);
    EXPECT_DOUBLE_EQ(sa.peak_macs_per_sec(), 256e9);
}

TEST(SystolicArray, FunctionalStripMatchesGolden)
{
    mem::BackingStore store;
    const workload::GemmSpec spec{16, 16, 48, 99};
    const Addr a = 0x1000;
    const Addr bt = 0x10000;
    const Addr c = 0x20000;
    workload::init_gemm_data(store, spec, a, bt);
    const auto golden = workload::gemm_golden(store, spec, a, bt);

    SystolicArray::compute_strip(store, a, bt, c, 16, 16, 48, 16);
    EXPECT_EQ(workload::gemm_check(store, spec, c, golden), 0u);
}

TEST(SystolicArray, PartialStripRowsAndCols)
{
    mem::BackingStore store;
    const workload::GemmSpec spec{5, 7, 32, 7};
    const Addr a = 0x1000;
    const Addr bt = 0x10000;
    const Addr c = 0x20000;
    workload::init_gemm_data(store, spec, a, bt);
    const auto golden = workload::gemm_golden(store, spec, a, bt);

    SystolicArray::compute_strip(store, a, bt, c, 5, 7, 32, 7);
    EXPECT_EQ(workload::gemm_check(store, spec, c, golden), 0u);
}

TEST(SystolicParams, Validation)
{
    SystolicParams p;
    p.rows = 0;
    EXPECT_THROW(p.validate(), ConfigError);
    p = {};
    p.freq_ghz = 0;
    EXPECT_THROW(p.validate(), ConfigError);
}

/// Records completion continuations by arg (the descriptor-based
/// replacement for the old capture-a-bool closures).
struct Recorder final : dma::TransferListener {
    std::vector<std::uint32_t> fired;
    void transfer_done(std::uint8_t, std::uint32_t arg) override
    {
        fired.push_back(arg);
    }
    dma::Continuation cont(std::uint32_t arg = 0) { return {this, 0, arg}; }
    [[nodiscard]] bool done() const { return !fired.empty(); }
};

struct MoverFixture : ::testing::Test {
    Simulator sim;
    mem::BackingStore store;
    DevMemMover::Params params;
    mem::SimpleMemParams mem_params;
    Recorder rec;
    static constexpr Addr kDevBase = 0x200000000000ULL;

    std::unique_ptr<DevMemMover> mover;
    std::unique_ptr<mem::SimpleMem> devmem;
    std::unique_ptr<mem::Xbar> xbar;

    void build()
    {
        const mem::AddrRange range =
            mem::AddrRange::with_size(kDevBase, kGiB);
        xbar = std::make_unique<mem::Xbar>(sim, "xbar", mem::XbarParams{});
        devmem = std::make_unique<mem::SimpleMem>(sim, "devmem", mem_params,
                                                  range);
        mover = std::make_unique<DevMemMover>(sim, "mover", params, range,
                                              store);
        mover->port().bind(xbar->add_upstream("mover"));
        xbar->add_downstream("mem", range).bind(devmem->port());
    }
};

TEST_F(MoverFixture, LoadsDeviceMemoryIntoScratchpad)
{
    build();
    const char msg[] = "devmem -> scratchpad";
    store.write(kDevBase + 0x100, msg, sizeof(msg));
    mover->submit(TransferJob{kDevBase + 0x100, 0x700000000000ULL, 4096,
                              rec.cont()});
    test::drain(sim);
    ASSERT_TRUE(rec.done());
    char out[sizeof(msg)] = {};
    store.read(0x700000000000ULL, out, sizeof(msg));
    EXPECT_STREQ(out, msg);
    EXPECT_TRUE(mover->idle());
}

TEST_F(MoverFixture, StoresScratchpadToDeviceMemory)
{
    build();
    const char msg[] = "scratchpad -> devmem";
    store.write(0x700000000000ULL, msg, sizeof(msg));
    mover->submit(TransferJob{0x700000000000ULL, kDevBase + 0x4000, 4096,
                              rec.cont()});
    // Write path snapshots functionally at submit.
    char out[sizeof(msg)] = {};
    store.read(kDevBase + 0x4000, out, sizeof(msg));
    EXPECT_STREQ(out, msg);
    test::drain(sim);
    EXPECT_TRUE(rec.done());
}

TEST_F(MoverFixture, JobsCompleteInSubmissionOrder)
{
    build();
    mover->submit(TransferJob{kDevBase, 0x700000000000ULL, 8192,
                              rec.cont(1)});
    mover->submit(TransferJob{kDevBase + 0x10000, 0x700000002000ULL, 256,
                              rec.cont(2)});
    test::drain(sim);
    EXPECT_EQ(rec.fired, (std::vector<std::uint32_t>{1, 2}));
}

TEST_F(MoverFixture, ThroughputScalesWithOutstanding)
{
    mem_params.latency_ns = 100.0;
    mem_params.bandwidth_gbps = 1000.0;

    params.max_outstanding = 1;
    build();
    mover->submit(TransferJob{kDevBase, 0x700000000000ULL, 16 * kKiB,
                              rec.cont()});
    test::drain(sim);
    const Tick serial_time = sim.now();
    ASSERT_TRUE(rec.done());

    Simulator sim2;
    DevMemMover::Params p2 = params;
    p2.max_outstanding = 16;
    const mem::AddrRange range = mem::AddrRange::with_size(kDevBase, kGiB);
    mem::SimpleMem devmem2(sim2, "devmem", mem_params, range);
    DevMemMover mover2(sim2, "mover", p2, range, store);
    mover2.port().bind(devmem2.port());
    Recorder rec2;
    mover2.submit(TransferJob{kDevBase, 0x700000000000ULL, 16 * kKiB,
                              rec2.cont()});
    sim2.run();
    ASSERT_TRUE(rec2.done());
    EXPECT_LT(sim2.now() * 4, serial_time); // at least 4x faster
}

TEST_F(MoverFixture, RejectsBadJobs)
{
    build();
    EXPECT_THROW(mover->submit(TransferJob{kDevBase, 0, 0, {}}), SimError);
    EXPECT_THROW(mover->submit(TransferJob{kDevBase, 0, 1ULL << 30, {}}),
                 SimError);
}

} // namespace
} // namespace accesys::accel
