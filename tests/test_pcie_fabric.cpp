// Tests for the PCIe switch and root complex: routing, store-and-forward
// latency, inbound read splitting / completion assembly, MMIO bridging.
#include "test_util.hh"

#include "pcie/endpoint.hh"
#include "pcie/link.hh"
#include "pcie/root_complex.hh"
#include "pcie/switch.hh"

namespace accesys::pcie {
namespace {

using mem::AddrRange;
using mem::Packet;
using test::MockRequestor;
using test::MockResponder;

/// Minimal endpoint recording what reaches the device.
class ProbeDevice final : public Endpoint {
  public:
    ProbeDevice(Simulator& sim, std::string name, std::uint16_t id,
                std::vector<AddrRange> bars)
        : Endpoint(sim, std::move(name), EndpointParams{id, 5.0},
                   std::move(bars))
    {
    }

    std::uint64_t mmio_read(Addr addr, std::uint32_t) override
    {
        reads.push_back(addr);
        return 0xAB00 + addr;
    }
    void mmio_write(Addr addr, std::uint32_t, std::uint64_t value) override
    {
        writes.emplace_back(addr, value);
    }
    void recv_dma_completion(const Tlp& cpl) override
    {
        completions.push_back(cpl);
        if (cpl.is_last) {
            ++reads_done;
        }
    }

    using Endpoint::send_tlp; // expose for the test driver

    std::vector<Addr> reads;
    std::vector<std::pair<Addr, std::uint64_t>> writes;
    std::vector<Tlp> completions;
    int reads_done = 0;
};

constexpr Addr kBar0 = 0x100000000000ULL;

struct FabricFixture : ::testing::Test {
    Simulator sim;
    RcParams rc_params;
    SwitchParams sw_params;
    LinkParams link_params;

    std::unique_ptr<RootComplex> rc;
    std::unique_ptr<PcieSwitch> sw;
    std::unique_ptr<PcieLink> up;
    std::unique_ptr<PcieLink> dn;
    std::unique_ptr<ProbeDevice> dev;
    MockResponder fabric{"fabric"};   // answers RC mem-side requests
    MockRequestor cpu{"cpu"};         // drives RC mmio-side

    void build()
    {
        rc_params.device_addresses_virtual = false;
        rc = std::make_unique<RootComplex>(sim, "rc", rc_params);
        sw = std::make_unique<PcieSwitch>(sim, "sw", sw_params);
        up = std::make_unique<PcieLink>(sim, "up", link_params);
        dn = std::make_unique<PcieLink>(sim, "dn", link_params);
        dev = std::make_unique<ProbeDevice>(
            sim, "dev", 1,
            std::vector<AddrRange>{AddrRange::with_size(kBar0, 64 * kKiB)});

        rc->connect_pcie(up->end_a());
        sw->set_upstream(up->end_b());
        sw->add_downstream(dn->end_a(),
                           {AddrRange::with_size(kBar0, 64 * kKiB)}, 1);
        dev->connect_pcie(dn->end_b());

        rc->mem_side().bind(fabric.port());
        cpu.port().bind(rc->mmio_side());
    }

    void serve_fabric()
    {
        test::drain(sim);
        while (!fabric.requests.empty()) {
            // Posted writes need no answer.
            if (fabric.requests.front()->flags.posted) {
                fabric.requests.pop_front();
                continue;
            }
            ASSERT_TRUE(fabric.answer_one());
            test::drain(sim);
        }
    }
};

TEST_F(FabricFixture, MmioWriteReachesDeviceRegisters)
{
    build();
    auto pkt = Packet::make_write(kBar0 + 0x8, 8);
    pkt->set_payload_value<std::uint64_t>(0x1234);
    ASSERT_TRUE(cpu.port().send_req(pkt));
    test::drain(sim);

    ASSERT_EQ(dev->writes.size(), 1u);
    EXPECT_EQ(dev->writes[0].first, 0x8u);
    EXPECT_EQ(dev->writes[0].second, 0x1234u);
    // CPU got the posted-write ack.
    ASSERT_EQ(cpu.responses.size(), 1u);
}

TEST_F(FabricFixture, MmioReadRoundTripCarriesValue)
{
    build();
    auto pkt = Packet::make_read(kBar0 + 0x10, 8);
    ASSERT_TRUE(cpu.port().send_req(pkt));
    test::drain(sim);

    ASSERT_EQ(dev->reads.size(), 1u);
    ASSERT_EQ(cpu.responses.size(), 1u);
    EXPECT_EQ(cpu.responses[0]->payload_value<std::uint64_t>(),
              0xAB00u + 0x10u);
}

TEST_F(FabricFixture, MmioLatencyIncludesRcAndSwitch)
{
    rc_params.latency_ns = 150.0;
    sw_params.latency_ns = 50.0;
    build();
    auto pkt = Packet::make_write(kBar0, 8);
    ASSERT_TRUE(cpu.port().send_req(pkt));
    test::drain(sim);
    // Request path: switch 50 + device 5 + wire; the RC charges its latency
    // on the *inbound* side, so one-way MMIO writes see at least switch+dev.
    EXPECT_GE(sim.now(), ticks_from_ns(55.0));
}

TEST_F(FabricFixture, DeviceReadSplitsIntoLineRequests)
{
    build();
    dev->send_tlp(make_mem_read(0x1000, 256, /*tag=*/5, /*requester=*/1));
    test::drain(sim);
    ASSERT_EQ(fabric.requests.size(), 4u); // 256 B at 64 B granularity
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(fabric.requests[i]->addr(),
                  0x1000u + static_cast<Addr>(i) * 64);
        EXPECT_EQ(fabric.requests[i]->size(), 64u);
        EXPECT_TRUE(fabric.requests[i]->flags.from_device);
    }
}

TEST_F(FabricFixture, CompletionsAssembleAtMaxPayload)
{
    rc_params.max_payload_bytes = 128;
    build();
    dev->send_tlp(make_mem_read(0x1000, 256, 5, 1));
    serve_fabric();

    // 256 B returned as two 128 B completions, last flagged.
    ASSERT_EQ(dev->completions.size(), 2u);
    EXPECT_EQ(dev->completions[0].length, 128u);
    EXPECT_EQ(dev->completions[0].byte_offset, 0u);
    EXPECT_FALSE(dev->completions[0].is_last);
    EXPECT_EQ(dev->completions[1].byte_offset, 128u);
    EXPECT_TRUE(dev->completions[1].is_last);
    EXPECT_EQ(dev->reads_done, 1);
}

TEST_F(FabricFixture, UnalignedReadSplitsAtAlignedBoundaries)
{
    build();
    dev->send_tlp(make_mem_read(0x1010, 128, 6, 1));
    test::drain(sim);
    ASSERT_EQ(fabric.requests.size(), 3u); // 48 + 64 + 16
    EXPECT_EQ(fabric.requests[0]->size(), 48u);
    EXPECT_EQ(fabric.requests[1]->size(), 64u);
    EXPECT_EQ(fabric.requests[2]->size(), 16u);
    serve_fabric();
    EXPECT_EQ(dev->reads_done, 1);
}

TEST_F(FabricFixture, DeviceWriteSplitsPosted)
{
    build();
    dev->send_tlp(make_mem_write(0x2000, 128, 1));
    test::drain(sim);
    ASSERT_EQ(fabric.requests.size(), 2u);
    EXPECT_TRUE(fabric.requests[0]->flags.posted);
    EXPECT_TRUE(fabric.requests[0]->is_write());
}

TEST_F(FabricFixture, SubLineDeviceWriteMarkedUncacheable)
{
    build();
    dev->send_tlp(make_mem_write(0x3000, 8, 1)); // completion-flag idiom
    test::drain(sim);
    ASSERT_EQ(fabric.requests.size(), 1u);
    EXPECT_TRUE(fabric.requests[0]->flags.uncacheable);
}

TEST_F(FabricFixture, DmModeMarksAllInboundUncacheable)
{
    rc_params.inbound_uncacheable = true;
    build();
    dev->send_tlp(make_mem_read(0x1000, 128, 2, 1));
    test::drain(sim);
    ASSERT_EQ(fabric.requests.size(), 2u);
    EXPECT_TRUE(fabric.requests[0]->flags.uncacheable);
}

TEST_F(FabricFixture, ConcurrentReadsKeepTagsApart)
{
    build();
    dev->send_tlp(make_mem_read(0x1000, 64, 1, 1));
    dev->send_tlp(make_mem_read(0x8000, 64, 2, 1));
    serve_fabric();
    EXPECT_EQ(dev->reads_done, 2);
    // Each read produced exactly one completion with its own tag.
    ASSERT_EQ(dev->completions.size(), 2u);
    EXPECT_NE(dev->completions[0].tag, dev->completions[1].tag);
}

TEST_F(FabricFixture, SwitchRoutesByDeviceIdForCompletions)
{
    build();
    // An MMIO read's completion must come back through the switch to the
    // host (requester 0) — exercised by the round trip test; here we check
    // a device-originated read's completion routes to the device.
    dev->send_tlp(make_mem_read(0x4000, 64, 9, 1));
    serve_fabric();
    ASSERT_EQ(dev->completions.size(), 1u);
    EXPECT_EQ(dev->completions[0].tag, 9);
}

TEST(RcParams, Validation)
{
    RcParams p;
    p.host_split_bytes = 48;
    EXPECT_THROW(p.validate(), ConfigError);
    p = {};
    p.max_payload_bytes = 16;
    EXPECT_THROW(p.validate(), ConfigError);
    p = {};
    p.mmio_tags = 0;
    EXPECT_THROW(p.validate(), ConfigError);
}

TEST(SwitchRules, DeviceIdZeroReserved)
{
    Simulator sim;
    PcieSwitch sw(sim, "sw", SwitchParams{});
    PcieLink link(sim, "l", LinkParams{});
    EXPECT_THROW(sw.add_downstream(link.end_a(), {}, 0), ConfigError);
}

} // namespace
} // namespace accesys::pcie
