// Tests for the PCIe switch and root complex: routing, store-and-forward
// latency, inbound read splitting / completion assembly, MMIO bridging.
#include "test_util.hh"

#include <algorithm>

#include "pcie/endpoint.hh"
#include "pcie/link.hh"
#include "pcie/root_complex.hh"
#include "pcie/switch.hh"

namespace accesys::pcie {
namespace {

using mem::AddrRange;
using mem::Packet;
using test::MockRequestor;
using test::MockResponder;

/// Minimal endpoint recording what reaches the device.
class ProbeDevice final : public Endpoint {
  public:
    ProbeDevice(Simulator& sim, std::string name, std::uint16_t id,
                std::vector<AddrRange> bars)
        : Endpoint(sim, std::move(name), EndpointParams{id, 5.0},
                   std::move(bars))
    {
    }

    std::uint64_t mmio_read(Addr addr, std::uint32_t) override
    {
        reads.push_back(addr);
        return 0xAB00 + addr;
    }
    void mmio_write(Addr addr, std::uint32_t, std::uint64_t value) override
    {
        writes.emplace_back(addr, value);
    }
    void recv_dma_completion(const Tlp& cpl) override
    {
        completions.push_back(cpl);
        if (cpl.is_last) {
            ++reads_done;
        }
    }

    using Endpoint::send_tlp; // expose for the test driver

    std::vector<Addr> reads;
    std::vector<std::pair<Addr, std::uint64_t>> writes;
    std::vector<Tlp> completions;
    int reads_done = 0;
};

constexpr Addr kBar0 = 0x100000000000ULL;

/// Shared scaffolding for every fabric fixture: the root complex with its
/// host-side mocks, the uplink, and the serve loop answering
/// device-originated memory reads.
struct FabricTestBase : ::testing::Test {
    Simulator sim;
    RcParams rc_params;
    LinkParams link_params;

    std::unique_ptr<RootComplex> rc;
    std::unique_ptr<PcieLink> up;
    MockResponder fabric{"fabric"};   // answers RC mem-side requests
    MockRequestor cpu{"cpu"};         // drives RC mmio-side

    /// RC with physical device addressing, uplink attached, mocks bound.
    void build_rc()
    {
        rc_params.device_addresses_virtual = false;
        rc = std::make_unique<RootComplex>(sim, "rc", rc_params);
        up = std::make_unique<PcieLink>(sim, "up", link_params);
        rc->connect_pcie(up->end_a());
        rc->mem_side().bind(fabric.port());
        cpu.port().bind(rc->mmio_side());
    }

    void serve_fabric()
    {
        test::drain(sim);
        while (!fabric.requests.empty()) {
            // Posted writes need no answer.
            if (fabric.requests.front()->flags.posted) {
                fabric.requests.pop_front();
                continue;
            }
            ASSERT_TRUE(fabric.answer_one());
            test::drain(sim);
        }
    }
};

struct FabricFixture : FabricTestBase {
    SwitchParams sw_params;

    std::unique_ptr<PcieSwitch> sw;
    std::unique_ptr<PcieLink> dn;
    std::unique_ptr<ProbeDevice> dev;

    void build()
    {
        build_rc();
        sw = std::make_unique<PcieSwitch>(sim, "sw", sw_params);
        dn = std::make_unique<PcieLink>(sim, "dn", link_params);
        dev = std::make_unique<ProbeDevice>(
            sim, "dev", 1,
            std::vector<AddrRange>{AddrRange::with_size(kBar0, 64 * kKiB)});

        sw->set_upstream(up->end_b());
        sw->add_downstream(dn->end_a(),
                           {AddrRange::with_size(kBar0, 64 * kKiB)}, 1);
        dev->connect_pcie(dn->end_b());
    }
};

TEST_F(FabricFixture, MmioWriteReachesDeviceRegisters)
{
    build();
    auto pkt = Packet::make_write(kBar0 + 0x8, 8);
    pkt->set_payload_value<std::uint64_t>(0x1234);
    ASSERT_TRUE(cpu.port().send_req(pkt));
    test::drain(sim);

    ASSERT_EQ(dev->writes.size(), 1u);
    EXPECT_EQ(dev->writes[0].first, 0x8u);
    EXPECT_EQ(dev->writes[0].second, 0x1234u);
    // CPU got the posted-write ack.
    ASSERT_EQ(cpu.responses.size(), 1u);
}

TEST_F(FabricFixture, MmioReadRoundTripCarriesValue)
{
    build();
    auto pkt = Packet::make_read(kBar0 + 0x10, 8);
    ASSERT_TRUE(cpu.port().send_req(pkt));
    test::drain(sim);

    ASSERT_EQ(dev->reads.size(), 1u);
    ASSERT_EQ(cpu.responses.size(), 1u);
    EXPECT_EQ(cpu.responses[0]->payload_value<std::uint64_t>(),
              0xAB00u + 0x10u);
}

TEST_F(FabricFixture, MmioLatencyIncludesRcAndSwitch)
{
    rc_params.latency_ns = 150.0;
    sw_params.latency_ns = 50.0;
    build();
    auto pkt = Packet::make_write(kBar0, 8);
    ASSERT_TRUE(cpu.port().send_req(pkt));
    test::drain(sim);
    // Request path: switch 50 + device 5 + wire; the RC charges its latency
    // on the *inbound* side, so one-way MMIO writes see at least switch+dev.
    EXPECT_GE(sim.now(), ticks_from_ns(55.0));
}

TEST_F(FabricFixture, DeviceReadSplitsIntoLineRequests)
{
    build();
    dev->send_tlp(make_mem_read(0x1000, 256, /*tag=*/5, /*requester=*/1));
    test::drain(sim);
    ASSERT_EQ(fabric.requests.size(), 4u); // 256 B at 64 B granularity
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(fabric.requests[i]->addr(),
                  0x1000u + static_cast<Addr>(i) * 64);
        EXPECT_EQ(fabric.requests[i]->size(), 64u);
        EXPECT_TRUE(fabric.requests[i]->flags.from_device);
    }
}

TEST_F(FabricFixture, CompletionsAssembleAtMaxPayload)
{
    rc_params.max_payload_bytes = 128;
    build();
    dev->send_tlp(make_mem_read(0x1000, 256, 5, 1));
    serve_fabric();

    // 256 B returned as two 128 B completions, last flagged.
    ASSERT_EQ(dev->completions.size(), 2u);
    EXPECT_EQ(dev->completions[0].length, 128u);
    EXPECT_EQ(dev->completions[0].byte_offset, 0u);
    EXPECT_FALSE(dev->completions[0].is_last);
    EXPECT_EQ(dev->completions[1].byte_offset, 128u);
    EXPECT_TRUE(dev->completions[1].is_last);
    EXPECT_EQ(dev->reads_done, 1);
}

TEST_F(FabricFixture, UnalignedReadSplitsAtAlignedBoundaries)
{
    build();
    dev->send_tlp(make_mem_read(0x1010, 128, 6, 1));
    test::drain(sim);
    ASSERT_EQ(fabric.requests.size(), 3u); // 48 + 64 + 16
    EXPECT_EQ(fabric.requests[0]->size(), 48u);
    EXPECT_EQ(fabric.requests[1]->size(), 64u);
    EXPECT_EQ(fabric.requests[2]->size(), 16u);
    serve_fabric();
    EXPECT_EQ(dev->reads_done, 1);
}

TEST_F(FabricFixture, DeviceWriteSplitsPosted)
{
    build();
    dev->send_tlp(make_mem_write(0x2000, 128, 1));
    test::drain(sim);
    ASSERT_EQ(fabric.requests.size(), 2u);
    EXPECT_TRUE(fabric.requests[0]->flags.posted);
    EXPECT_TRUE(fabric.requests[0]->is_write());
}

TEST_F(FabricFixture, SubLineDeviceWriteMarkedUncacheable)
{
    build();
    dev->send_tlp(make_mem_write(0x3000, 8, 1)); // completion-flag idiom
    test::drain(sim);
    ASSERT_EQ(fabric.requests.size(), 1u);
    EXPECT_TRUE(fabric.requests[0]->flags.uncacheable);
}

TEST_F(FabricFixture, DmModeMarksAllInboundUncacheable)
{
    rc_params.inbound_uncacheable = true;
    build();
    dev->send_tlp(make_mem_read(0x1000, 128, 2, 1));
    test::drain(sim);
    ASSERT_EQ(fabric.requests.size(), 2u);
    EXPECT_TRUE(fabric.requests[0]->flags.uncacheable);
}

TEST_F(FabricFixture, ConcurrentReadsKeepTagsApart)
{
    build();
    dev->send_tlp(make_mem_read(0x1000, 64, 1, 1));
    dev->send_tlp(make_mem_read(0x8000, 64, 2, 1));
    serve_fabric();
    EXPECT_EQ(dev->reads_done, 2);
    // Each read produced exactly one completion with its own tag.
    ASSERT_EQ(dev->completions.size(), 2u);
    EXPECT_NE(dev->completions[0].tag, dev->completions[1].tag);
}

TEST_F(FabricFixture, SwitchRoutesByDeviceIdForCompletions)
{
    build();
    // An MMIO read's completion must come back through the switch to the
    // host (requester 0) — exercised by the round trip test; here we check
    // a device-originated read's completion routes to the device.
    dev->send_tlp(make_mem_read(0x4000, 64, 9, 1));
    serve_fabric();
    ASSERT_EQ(dev->completions.size(), 1u);
    EXPECT_EQ(dev->completions[0].tag, 9);
}

/// Two endpoints with distinct BARs and requester ids behind one switch —
/// the multi-accelerator routing contract.
struct MultiDeviceFixture : FabricTestBase {
    static constexpr Addr kBarA = 0x100000000000ULL;
    static constexpr Addr kBarB = 0x100000010000ULL;

    SwitchParams sw_params;

    std::unique_ptr<PcieSwitch> sw;
    std::unique_ptr<PcieLink> dn_a;
    std::unique_ptr<PcieLink> dn_b;
    std::unique_ptr<ProbeDevice> dev_a;
    std::unique_ptr<ProbeDevice> dev_b;

    void build()
    {
        build_rc();
        sw = std::make_unique<PcieSwitch>(sim, "sw", sw_params);
        dn_a = std::make_unique<PcieLink>(sim, "dn_a", link_params);
        dn_b = std::make_unique<PcieLink>(sim, "dn_b", link_params);
        dev_a = std::make_unique<ProbeDevice>(
            sim, "dev_a", 1,
            std::vector<AddrRange>{AddrRange::with_size(kBarA, 64 * kKiB)});
        dev_b = std::make_unique<ProbeDevice>(
            sim, "dev_b", 2,
            std::vector<AddrRange>{AddrRange::with_size(kBarB, 64 * kKiB)});

        sw->set_upstream(up->end_b());
        sw->add_downstream(dn_a->end_a(),
                           {AddrRange::with_size(kBarA, 64 * kKiB)}, 1);
        sw->add_downstream(dn_b->end_a(),
                           {AddrRange::with_size(kBarB, 64 * kKiB)}, 2);
        dev_a->connect_pcie(dn_a->end_b());
        dev_b->connect_pcie(dn_b->end_b());
    }
};

TEST_F(MultiDeviceFixture, MemoryTlpsRouteToOwningBar)
{
    build();
    auto wr_a = Packet::make_write(kBarA + 0x8, 8);
    wr_a->set_payload_value<std::uint64_t>(0xAAAA);
    auto wr_b = Packet::make_write(kBarB + 0x10, 8);
    wr_b->set_payload_value<std::uint64_t>(0xBBBB);
    ASSERT_TRUE(cpu.port().send_req(wr_a));
    test::drain(sim);
    ASSERT_TRUE(cpu.port().send_req(wr_b));
    test::drain(sim);

    ASSERT_EQ(dev_a->writes.size(), 1u);
    EXPECT_EQ(dev_a->writes[0].first, 0x8u);
    EXPECT_EQ(dev_a->writes[0].second, 0xAAAAu);
    ASSERT_EQ(dev_b->writes.size(), 1u);
    EXPECT_EQ(dev_b->writes[0].first, 0x10u);
    EXPECT_EQ(dev_b->writes[0].second, 0xBBBBu);
}

TEST_F(MultiDeviceFixture, MmioReadsReturnPerDeviceValues)
{
    build();
    auto rd_b = Packet::make_read(kBarB + 0x20, 8);
    ASSERT_TRUE(cpu.port().send_req(rd_b));
    test::drain(sim);
    ASSERT_EQ(dev_b->reads.size(), 1u);
    EXPECT_TRUE(dev_a->reads.empty());
    ASSERT_EQ(cpu.responses.size(), 1u);
    EXPECT_EQ(cpu.responses[0]->payload_value<std::uint64_t>(),
              0xAB00u + 0x20u);
}

TEST_F(MultiDeviceFixture, CompletionsRouteBackByRequesterId)
{
    build();
    // Both devices read host memory concurrently with the same tag value:
    // only the (requester id, tag) pair disambiguates the completions.
    dev_a->send_tlp(make_mem_read(0x1000, 128, /*tag=*/7, /*requester=*/1));
    dev_b->send_tlp(make_mem_read(0x2000, 128, /*tag=*/7, /*requester=*/2));
    serve_fabric();

    EXPECT_EQ(dev_a->reads_done, 1);
    EXPECT_EQ(dev_b->reads_done, 1);
    for (const Tlp& cpl : dev_a->completions) {
        EXPECT_EQ(cpl.requester, 1);
    }
    for (const Tlp& cpl : dev_b->completions) {
        EXPECT_EQ(cpl.requester, 2);
    }
}

TEST_F(MultiDeviceFixture, ConcurrentDmaFromBothDevicesReachesHost)
{
    build();
    dev_a->send_tlp(make_mem_write(0x3000, 64, 1));
    dev_b->send_tlp(make_mem_write(0x4000, 64, 2));
    test::drain(sim);
    ASSERT_EQ(fabric.requests.size(), 2u);
    EXPECT_TRUE(fabric.requests[0]->flags.posted);
    EXPECT_TRUE(fabric.requests[1]->flags.posted);
    // The RC stamps the requester id as the packet's translation stream.
    std::vector<std::uint32_t> streams{fabric.requests[0]->stream(),
                                       fabric.requests[1]->stream()};
    std::sort(streams.begin(), streams.end());
    EXPECT_EQ(streams[0], 1u);
    EXPECT_EQ(streams[1], 2u);
}

/// A second switch level: dev_a under the root switch, dev_b behind a
/// nested switch whose upstream port advertises the subtree's BARs + ids.
struct NestedSwitchFixture : FabricTestBase {
    static constexpr Addr kBarA = 0x100000000000ULL;
    static constexpr Addr kBarB = 0x100000010000ULL;

    std::unique_ptr<PcieSwitch> root_sw;
    std::unique_ptr<PcieSwitch> leaf_sw;
    std::unique_ptr<PcieLink> mid;
    std::unique_ptr<PcieLink> dn_a;
    std::unique_ptr<PcieLink> dn_b;
    std::unique_ptr<ProbeDevice> dev_a;
    std::unique_ptr<ProbeDevice> dev_b;

    void build()
    {
        build_rc();
        root_sw = std::make_unique<PcieSwitch>(sim, "root_sw", SwitchParams{});
        leaf_sw = std::make_unique<PcieSwitch>(sim, "leaf_sw", SwitchParams{});
        mid = std::make_unique<PcieLink>(sim, "mid", link_params);
        dn_a = std::make_unique<PcieLink>(sim, "dn_a", link_params);
        dn_b = std::make_unique<PcieLink>(sim, "dn_b", link_params);
        dev_a = std::make_unique<ProbeDevice>(
            sim, "dev_a", 1,
            std::vector<AddrRange>{AddrRange::with_size(kBarA, 64 * kKiB)});
        dev_b = std::make_unique<ProbeDevice>(
            sim, "dev_b", 2,
            std::vector<AddrRange>{AddrRange::with_size(kBarB, 64 * kKiB)});

        root_sw->set_upstream(up->end_b());
        root_sw->add_downstream(dn_a->end_a(),
                                {AddrRange::with_size(kBarA, 64 * kKiB)}, 1);
        // The nested switch's whole subtree rides one root-switch port.
        root_sw->add_downstream(mid->end_a(),
                                {AddrRange::with_size(kBarB, 64 * kKiB)},
                                std::vector<std::uint16_t>{2});
        leaf_sw->set_upstream(mid->end_b());
        leaf_sw->add_downstream(dn_b->end_a(),
                                {AddrRange::with_size(kBarB, 64 * kKiB)}, 2);
        dev_a->connect_pcie(dn_a->end_b());
        dev_b->connect_pcie(dn_b->end_b());
    }
};

TEST_F(NestedSwitchFixture, MmioCrossesBothSwitchLevels)
{
    build();
    auto pkt = Packet::make_write(kBarB + 0x18, 8);
    pkt->set_payload_value<std::uint64_t>(0x5151);
    ASSERT_TRUE(cpu.port().send_req(pkt));
    test::drain(sim);
    ASSERT_EQ(dev_b->writes.size(), 1u);
    EXPECT_EQ(dev_b->writes[0].first, 0x18u);
    EXPECT_TRUE(dev_a->writes.empty());
}

TEST_F(NestedSwitchFixture, NestedDeviceCompletionsRouteDownTheTree)
{
    build();
    dev_b->send_tlp(make_mem_read(0x5000, 64, 3, 2));
    dev_a->send_tlp(make_mem_read(0x6000, 64, 4, 1));
    serve_fabric();
    EXPECT_EQ(dev_b->reads_done, 1);
    EXPECT_EQ(dev_a->reads_done, 1);
    ASSERT_EQ(dev_b->completions.size(), 1u);
    EXPECT_EQ(dev_b->completions[0].tag, 3);
}

TEST(SwitchRules, DuplicateRequesterIdRejected)
{
    Simulator sim;
    PcieSwitch sw(sim, "sw", SwitchParams{});
    PcieLink l1(sim, "l1", LinkParams{});
    PcieLink l2(sim, "l2", LinkParams{});
    sw.add_downstream(l1.end_a(), {}, 3);
    EXPECT_THROW(sw.add_downstream(l2.end_a(), {}, 3), ConfigError);
}

TEST(SwitchRules, DownstreamNeedsAtLeastOneId)
{
    Simulator sim;
    PcieSwitch sw(sim, "sw", SwitchParams{});
    PcieLink link(sim, "l", LinkParams{});
    EXPECT_THROW(
        sw.add_downstream(link.end_a(), {}, std::vector<std::uint16_t>{}),
        ConfigError);
}

TEST(RcParams, Validation)
{
    RcParams p;
    p.host_split_bytes = 48;
    EXPECT_THROW(p.validate(), ConfigError);
    p = {};
    p.max_payload_bytes = 16;
    EXPECT_THROW(p.validate(), ConfigError);
    p = {};
    p.mmio_tags = 0;
    EXPECT_THROW(p.validate(), ConfigError);
}

TEST(SwitchRules, DeviceIdZeroReserved)
{
    Simulator sim;
    PcieSwitch sw(sim, "sw", SwitchParams{});
    PcieLink link(sim, "l", LinkParams{});
    EXPECT_THROW(sw.add_downstream(link.end_a(), {}, 0), ConfigError);
}

// --- BAR-route memo audit ---------------------------------------------------
// The switch memoises the last (BAR range, egress) answer. Pin the stale
// hazards: alternating BAR targets must re-route every flip, and a
// downstream added after routing has occurred must be reachable (the memo
// is dropped on topology growth).

TEST_F(MultiDeviceFixture, BarMemoAlternatingTargetsStaysExact)
{
    build();
    for (int i = 0; i < 3; ++i) {
        auto wr_a = Packet::make_write(kBarA + 0x8, 8);
        wr_a->set_payload_value<std::uint64_t>(0xA0 + i);
        auto wr_b = Packet::make_write(kBarB + 0x8, 8);
        wr_b->set_payload_value<std::uint64_t>(0xB0 + i);
        ASSERT_TRUE(cpu.port().send_req(wr_a));
        test::drain(sim);
        ASSERT_TRUE(cpu.port().send_req(wr_b));
        test::drain(sim);
    }
    EXPECT_EQ(dev_a->writes.size(), 3u);
    EXPECT_EQ(dev_b->writes.size(), 3u);
}

TEST_F(FabricFixture, BarMemoDroppedWhenDownstreamAddedAfterTraffic)
{
    build();
    // Populate the memo with dev's BAR.
    auto wr = Packet::make_write(kBar0 + 0x8, 8);
    wr->set_payload_value<std::uint64_t>(0x11);
    ASSERT_TRUE(cpu.port().send_req(wr));
    test::drain(sim);
    ASSERT_EQ(dev->writes.size(), 1u);

    // Grow the topology: a second endpoint behind the same switch, then
    // address both BARs. The memoised answer predates the new port and
    // must not survive the add.
    constexpr Addr kBar1 = 0x100000100000ULL;
    PcieLink dn2(sim, "dn2", link_params);
    ProbeDevice dev2(sim, "dev2", 2,
                     {AddrRange::with_size(kBar1, 64 * kKiB)});
    sw->add_downstream(dn2.end_a(),
                       {AddrRange::with_size(kBar1, 64 * kKiB)}, 2);
    dev2.connect_pcie(dn2.end_b());

    auto wr2 = Packet::make_write(kBar1 + 0x10, 8);
    wr2->set_payload_value<std::uint64_t>(0x22);
    auto wr3 = Packet::make_write(kBar0 + 0x18, 8);
    wr3->set_payload_value<std::uint64_t>(0x33);
    ASSERT_TRUE(cpu.port().send_req(wr2));
    test::drain(sim);
    ASSERT_TRUE(cpu.port().send_req(wr3));
    test::drain(sim);
    EXPECT_EQ(dev2.writes.size(), 1u);
    EXPECT_EQ(dev->writes.size(), 2u);
}

TEST(SwitchRules, OverlappingBarRejectedAtAdd)
{
    // The memo's exactness argument requires disjoint BARs; overlap must
    // keep failing at add_downstream time.
    Simulator sim;
    PcieSwitch sw(sim, "sw", SwitchParams{});
    PcieLink l1(sim, "l1", LinkParams{});
    PcieLink l2(sim, "l2", LinkParams{});
    sw.add_downstream(l1.end_a(),
                      {AddrRange::with_size(0x1000, 0x1000)}, 1);
    EXPECT_THROW(sw.add_downstream(
                     l2.end_a(),
                     {AddrRange::with_size(0x1800, 0x1000)}, 2),
                 ConfigError);
}

} // namespace
} // namespace accesys::pcie
