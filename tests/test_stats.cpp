// Unit tests for the statistics framework.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

namespace accesys::stats {
namespace {

struct Fixture : ::testing::Test {
    Registry reg;
    Group group{reg, "obj"};
};

TEST_F(Fixture, ScalarAccumulates)
{
    Scalar s(group, "count", "a counter");
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST_F(Fixture, HierarchicalNaming)
{
    Scalar s(group, "count", "d");
    EXPECT_EQ(s.full_name(), "obj.count");
    EXPECT_EQ(reg.value("obj.count"), 0.0);
}

TEST_F(Fixture, DuplicateNameThrows)
{
    Scalar a(group, "x", "d");
    EXPECT_THROW(Scalar(group, "x", "d"), SimError);
}

TEST_F(Fixture, UnknownLookupThrows)
{
    EXPECT_THROW(reg.value("nope"), SimError);
    EXPECT_EQ(reg.find("nope"), nullptr);
}

TEST_F(Fixture, StatDeregistersOnDestruction)
{
    {
        Scalar s(group, "temp", "d");
        EXPECT_EQ(reg.size(), 1u);
    }
    EXPECT_EQ(reg.size(), 0u);
    // Name can be reused afterwards.
    Scalar s2(group, "temp", "d");
    EXPECT_EQ(reg.size(), 1u);
}

TEST_F(Fixture, AverageMeanCountTotal)
{
    Average a(group, "lat", "d");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(10);
    a.sample(20);
    a.sample(60);
    EXPECT_DOUBLE_EQ(a.mean(), 30.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.total(), 90.0);
}

TEST_F(Fixture, DistributionMoments)
{
    Distribution d(group, "dist", "d");
    for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        d.sample(v);
    }
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
    EXPECT_NEAR(d.stddev(), 2.138, 0.001);
    EXPECT_EQ(d.count(), 8u);
}

TEST_F(Fixture, DistributionSingleSampleStddevZero)
{
    Distribution d(group, "dist", "d");
    d.sample(42.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
}

TEST_F(Fixture, HistogramBucketsAndOverflow)
{
    Histogram h(group, "hist", "d", 0.0, 100.0, 10);
    h.sample(-5.0);       // underflow
    h.sample(0.0);        // bucket 0
    h.sample(15.0);       // bucket 1
    h.sample(99.999);     // bucket 9
    h.sample(100.0);      // overflow (hi is exclusive)
    h.sample(55.0, 3);    // weighted into bucket 5
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[5], 3u);
    EXPECT_EQ(h.buckets()[9], 1u);
    EXPECT_EQ(h.count(), 8u);
}

TEST_F(Fixture, HistogramBadBoundsThrow)
{
    EXPECT_THROW(Histogram(group, "h1", "d", 10.0, 10.0, 4), SimError);
}

TEST_F(Fixture, ValueFnComputesOnDemand)
{
    double source = 1.0;
    ValueFn v(group, "fn", "d", [&source] { return source * 2; });
    EXPECT_DOUBLE_EQ(v.value(), 2.0);
    source = 21.0;
    EXPECT_DOUBLE_EQ(v.value(), 42.0);
}

TEST_F(Fixture, TextDumpContainsAllStats)
{
    Scalar s(group, "alpha", "d");
    Average a(group, "beta", "d");
    s += 7;
    std::ostringstream os;
    reg.write_text(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("obj.alpha 7"), std::string::npos);
    EXPECT_NE(out.find("obj.beta"), std::string::npos);
}

TEST_F(Fixture, JsonDumpIsWellFormedish)
{
    Scalar s(group, "alpha", "d");
    Histogram h(group, "hist", "d", 0, 10, 2);
    h.sample(1);
    std::ostringstream os;
    reg.write_json(os);
    const std::string out = os.str();
    EXPECT_EQ(out.front(), '{');
    EXPECT_NE(out.find("\"obj.alpha\""), std::string::npos);
    EXPECT_NE(out.find("\"buckets\": [1, 0]"), std::string::npos);
}

TEST_F(Fixture, ResetAllClearsEverything)
{
    Scalar s(group, "a", "d");
    Average avg(group, "b", "d");
    s += 5;
    avg.sample(3);
    reg.reset_all();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    EXPECT_EQ(avg.count(), 0u);
}

TEST(StatsGroups, EmptyPrefixUsesBareName)
{
    Registry reg;
    Group root(reg, "");
    Scalar s(root, "global", "d");
    EXPECT_EQ(s.full_name(), "global");
}

} // namespace
} // namespace accesys::stats
