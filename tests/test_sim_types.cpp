// Unit tests for sim/types.hh: time conversion, alignment and bit helpers.
#include <gtest/gtest.h>

#include "sim/types.hh"

namespace accesys {
namespace {

TEST(Types, TickConstants)
{
    EXPECT_EQ(kTicksPerNs, 1000u);
    EXPECT_EQ(kTicksPerUs, 1000u * 1000u);
    EXPECT_EQ(kTicksPerMs, 1000u * 1000u * 1000u);
    EXPECT_EQ(kTicksPerSec, 1000ull * 1000 * 1000 * 1000);
}

TEST(Types, TicksFromNsRounds)
{
    EXPECT_EQ(ticks_from_ns(1.0), 1000u);
    EXPECT_EQ(ticks_from_ns(0.5), 500u);
    EXPECT_EQ(ticks_from_ns(0.0004), 0u);  // rounds down below half a tick
    EXPECT_EQ(ticks_from_ns(0.0006), 1u);  // rounds up above half a tick
}

TEST(Types, RoundTripConversions)
{
    for (const double ns : {0.25, 1.0, 3.7, 150.0, 7800.0, 1e6}) {
        EXPECT_NEAR(ticks_to_ns(ticks_from_ns(ns)), ns, 0.001);
    }
    EXPECT_DOUBLE_EQ(ticks_to_us(kTicksPerUs), 1.0);
    EXPECT_DOUBLE_EQ(ticks_to_ms(kTicksPerMs), 1.0);
    EXPECT_DOUBLE_EQ(ticks_to_sec(kTicksPerSec), 1.0);
}

TEST(Types, PeriodFromFrequency)
{
    EXPECT_EQ(period_from_ghz(1.0), 1000u);  // 1 GHz -> 1 ns
    EXPECT_EQ(period_from_ghz(2.0), 500u);
    EXPECT_EQ(period_from_mhz(100.0), 10000u);
}

TEST(Types, IsPow2)
{
    EXPECT_FALSE(is_pow2(0));
    EXPECT_TRUE(is_pow2(1));
    EXPECT_TRUE(is_pow2(2));
    EXPECT_FALSE(is_pow2(3));
    EXPECT_TRUE(is_pow2(1ULL << 63));
    EXPECT_FALSE(is_pow2((1ULL << 63) + 1));
}

TEST(Types, Log2i)
{
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(2), 1u);
    EXPECT_EQ(log2i(4096), 12u);
    EXPECT_EQ(log2i(1ULL << 40), 40u);
}

TEST(Types, AlignHelpers)
{
    EXPECT_EQ(align_down(0x1234, 0x100), 0x1200u);
    EXPECT_EQ(align_up(0x1234, 0x100), 0x1300u);
    EXPECT_EQ(align_up(0x1200, 0x100), 0x1200u); // already aligned
    EXPECT_EQ(align_down(0x1200, 0x100), 0x1200u);
}

TEST(Types, DivCeil)
{
    EXPECT_EQ(div_ceil(0, 4), 0u);
    EXPECT_EQ(div_ceil(1, 4), 1u);
    EXPECT_EQ(div_ceil(4, 4), 1u);
    EXPECT_EQ(div_ceil(5, 4), 2u);
    EXPECT_EQ(div_ceil(4096, 64), 64u);
}

// Property: align_down/align_up bracket the value and are aligned.
class AlignProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AlignProperty, BracketsValue)
{
    const std::uint64_t v = GetParam();
    for (const std::uint64_t a : {2ull, 64ull, 4096ull, 65536ull}) {
        const auto down = align_down(v, a);
        const auto up = align_up(v, a);
        EXPECT_LE(down, v);
        EXPECT_GE(up, v);
        EXPECT_EQ(down % a, 0u);
        EXPECT_EQ(up % a, 0u);
        EXPECT_LT(up - down, 2 * a);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AlignProperty,
                         ::testing::Values(0, 1, 63, 64, 65, 4095, 4096,
                                           4097, 1234567, (1ull << 40) + 17));

} // namespace
} // namespace accesys
