// Tests for the timing-port retry protocol and the PacketQueue helper.
#include "test_util.hh"

namespace accesys::mem {
namespace {

using test::MockRequestor;
using test::MockResponder;

TEST(Ports, BindOnceOnly)
{
    MockRequestor req("req");
    MockResponder resp("resp");
    req.port().bind(resp.port());
    EXPECT_TRUE(req.port().bound());
    EXPECT_TRUE(resp.port().bound());

    MockResponder other("other");
    EXPECT_THROW(req.port().bind(other.port()), SimError);
}

TEST(Ports, UnboundSendThrows)
{
    MockRequestor req("req");
    auto pkt = Packet::make_read(0, 4);
    EXPECT_THROW((void)req.port().send_req(pkt), SimError);
}

TEST(Ports, RequestDeliveredToResponder)
{
    MockRequestor req("req");
    MockResponder resp("resp");
    req.port().bind(resp.port());

    auto pkt = Packet::make_read(0x40, 8);
    EXPECT_TRUE(req.port().send_req(pkt));
    EXPECT_EQ(pkt, nullptr); // ownership moved
    ASSERT_EQ(resp.requests.size(), 1u);
    EXPECT_EQ(resp.requests.front()->addr(), 0x40u);
}

TEST(Ports, RefusedRequestKeepsOwnershipAndRetries)
{
    MockRequestor req("req");
    MockResponder resp("resp");
    req.port().bind(resp.port());
    resp.refuse_requests(1);

    auto pkt = Packet::make_read(0x40, 8);
    EXPECT_FALSE(req.port().send_req(pkt));
    ASSERT_NE(pkt, nullptr); // caller keeps it

    resp.grant_retry();
    EXPECT_EQ(req.req_retries, 1u);
    EXPECT_TRUE(req.port().send_req(pkt));
}

TEST(Ports, RetryOnlyFiresWhenOwed)
{
    MockRequestor req("req");
    MockResponder resp("resp");
    req.port().bind(resp.port());
    resp.grant_retry(); // nothing owed
    EXPECT_EQ(req.req_retries, 0u);
}

TEST(Ports, ResponsePathWithRetry)
{
    MockRequestor req("req");
    MockResponder resp("resp");
    req.port().bind(resp.port());

    auto pkt = Packet::make_read(0x80, 4);
    ASSERT_TRUE(req.port().send_req(pkt));

    req.refuse_responses(1);
    EXPECT_FALSE(resp.answer_one()); // refused; responder keeps...
    // answer_one moved the packet out of requests and the send failed, so
    // the protocol requires the responder to hold it. Our mock dropped it,
    // which is fine for this protocol-level test: what matters is the
    // retry signal below.
    req.port().send_retry_resp();
    EXPECT_EQ(resp.resp_retries, 1u);
}

TEST(Ports, WrongPacketKindAsserts)
{
    MockRequestor req("req");
    MockResponder resp("resp");
    req.port().bind(resp.port());
    auto pkt = Packet::make_read(0, 4);
    pkt->make_response();
    EXPECT_THROW((void)req.port().send_req(pkt), SimError);
}

struct QueueFixture : ::testing::Test {
    Simulator sim;
    MockRequestor req{"req"};
    MockResponder resp{"resp"};

    QueueFixture() { req.port().bind(resp.port()); }
};

TEST_F(QueueFixture, DeliversInOrderAtScheduledTicks)
{
    PacketQueue q(
        sim, "q",
        [](void* s, PacketPtr& pkt) {
            return static_cast<QueueFixture*>(s)->req.port().send_req(pkt);
        },
        static_cast<QueueFixture*>(this));
    q.push(Packet::make_read(0x100, 4), 100);
    q.push(Packet::make_read(0x200, 4), 50); // later push, earlier ready: FIFO still
    sim.run();
    ASSERT_EQ(resp.requests.size(), 2u);
    // FIFO semantics: the first-pushed packet leaves first even though the
    // second became ready earlier (models an ordered egress pipe).
    EXPECT_EQ(resp.requests[0]->addr(), 0x100u);
    EXPECT_EQ(resp.requests[1]->addr(), 0x200u);
}

TEST_F(QueueFixture, HonoursBackpressureAndRetry)
{
    PacketQueue q(
        sim, "q",
        [](void* s, PacketPtr& pkt) {
            return static_cast<QueueFixture*>(s)->req.port().send_req(pkt);
        },
        static_cast<QueueFixture*>(this));
    resp.refuse_requests(1);
    q.push_now(Packet::make_read(0x1, 4));
    q.push_now(Packet::make_read(0x2, 4));
    sim.run();
    EXPECT_EQ(resp.requests.size(), 0u);
    EXPECT_TRUE(q.blocked());
    EXPECT_EQ(q.size(), 2u);

    resp.grant_retry();
    q.retry();
    sim.run();
    EXPECT_EQ(resp.requests.size(), 2u);
    EXPECT_TRUE(q.empty());
}

TEST_F(QueueFixture, DrainHookFiresAfterSends)
{
    PacketQueue q(
        sim, "q",
        [](void* s, PacketPtr& pkt) {
            return static_cast<QueueFixture*>(s)->req.port().send_req(pkt);
        },
        static_cast<QueueFixture*>(this));
    int drains = 0;
    q.set_drain_hook([](void* d) { ++*static_cast<int*>(d); }, &drains);
    q.push_now(Packet::make_read(0x1, 4));
    q.push_now(Packet::make_read(0x2, 4));
    sim.run();
    EXPECT_GE(drains, 1);
    EXPECT_EQ(resp.requests.size(), 2u);
}

TEST_F(QueueFixture, BlockedQueueDoesNotSpin)
{
    // Regression: a blocked queue must not re-arm its own send event at the
    // current tick (that was an infinite same-tick event loop). With the
    // responder refusing forever, the simulation must simply drain.
    PacketQueue q(
        sim, "q",
        [](void* s, PacketPtr& pkt) {
            return static_cast<QueueFixture*>(s)->req.port().send_req(pkt);
        },
        static_cast<QueueFixture*>(this));
    resp.refuse_requests(1000);
    q.push_now(Packet::make_read(0x1, 4));
    const auto rr = sim.run(kTicksPerMs);
    EXPECT_NE(rr.cause, ExitCause::horizon_reached);
    EXPECT_LT(rr.events, 10u); // a spin would execute millions
    EXPECT_TRUE(q.blocked());
}

TEST_F(QueueFixture, HeadReadyReportsSchedule)
{
    PacketQueue q(
        sim, "q",
        [](void* s, PacketPtr& pkt) {
            return static_cast<QueueFixture*>(s)->req.port().send_req(pkt);
        },
        static_cast<QueueFixture*>(this));
    EXPECT_EQ(q.head_ready(), kMaxTick);
    q.push(Packet::make_read(0x1, 4), 777);
    EXPECT_EQ(q.head_ready(), 777u);
}

} // namespace
} // namespace accesys::mem
