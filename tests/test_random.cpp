// Tests for the deterministic RNG.
#include <gtest/gtest.h>

#include "sim/random.hh"

namespace accesys {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        same += a.next() == b.next();
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(7);
    const auto first = a.next();
    a.next();
    a.reseed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(3);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(r.below(17), 17u);
    }
}

TEST(Rng, BetweenInclusive)
{
    Rng r(5);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.between(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    constexpr int kN = 10000;
    for (int i = 0; i < kN; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(13);
    int hits = 0;
    constexpr int kN = 10000;
    for (int i = 0; i < kN; ++i) {
        hits += r.chance(0.25);
    }
    EXPECT_NEAR(static_cast<double>(hits) / kN, 0.25, 0.02);
}

TEST(Rng, BelowRoughlyUniform)
{
    Rng r(17);
    int counts[8] = {};
    constexpr int kN = 8000;
    for (int i = 0; i < kN; ++i) {
        ++counts[r.below(8)];
    }
    for (const int c : counts) {
        EXPECT_NEAR(c, kN / 8, kN / 40);
    }
}

} // namespace
} // namespace accesys
