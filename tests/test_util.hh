// Shared fixtures and mock components for the accesys test suites.
#pragma once

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "mem/packet.hh"
#include "mem/port.hh"
#include "sim/simulator.hh"

namespace accesys::test {

/// A requestor that records every response and can optionally refuse the
/// first N responses (to exercise the retry protocol).
class MockRequestor : public mem::Requestor {
  public:
    explicit MockRequestor(std::string name)
        : port_(name, *this)
    {
    }

    mem::RequestPort& port() { return port_; }

    bool recv_resp(mem::PacketPtr& pkt) override
    {
        if (refuse_next_ > 0) {
            --refuse_next_;
            ++refused;
            return false;
        }
        responses.push_back(std::move(pkt));
        return true;
    }

    void retry_req() override { ++req_retries; }

    void refuse_responses(unsigned n) { refuse_next_ = n; }

    std::vector<mem::PacketPtr> responses;
    unsigned req_retries = 0;
    unsigned refused = 0;

  private:
    mem::RequestPort port_;
    unsigned refuse_next_ = 0;
};

/// A responder that queues requests and answers on demand; can refuse the
/// first N requests.
class MockResponder : public mem::Responder {
  public:
    explicit MockResponder(std::string name) : port_(name, *this) {}

    mem::ResponsePort& port() { return port_; }

    bool recv_req(mem::PacketPtr& pkt) override
    {
        if (refuse_next_ > 0) {
            --refuse_next_;
            ++refused;
            return false;
        }
        requests.push_back(std::move(pkt));
        return true;
    }

    void retry_resp() override { ++resp_retries; }

    /// Convert the oldest pending request into a response and send it.
    bool answer_one()
    {
        if (requests.empty()) {
            return false;
        }
        mem::PacketPtr pkt = std::move(requests.front());
        requests.pop_front();
        pkt->make_response();
        return port_.send_resp(pkt);
    }

    void refuse_requests(unsigned n) { refuse_next_ = n; }
    void grant_retry() { port_.send_retry_req(); }

    std::deque<mem::PacketPtr> requests;
    unsigned resp_retries = 0;
    unsigned refused = 0;

  private:
    mem::ResponsePort port_;
    unsigned refuse_next_ = 0;
};

/// Run the simulator until drained, asserting it terminates.
inline void drain(Simulator& sim, Tick horizon = 100 * kTicksPerMs)
{
    const auto rr = sim.run(horizon);
    ASSERT_NE(rr.cause, ExitCause::horizon_reached)
        << "simulation failed to drain by tick " << horizon;
}

} // namespace accesys::test
