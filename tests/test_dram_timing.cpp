// Focused tests for the DramTiming fast paths added with access_run():
// row hit/miss/precharge sequencing, refresh-window stalls, multi-channel
// interleave decode (shift/mask vs the arithmetic definition), packed
// FR-FCFS keys, and — the load-bearing property — access_run() being
// bit-equivalent to the per-burst access() loop it replaced in
// MemCtrl::service_dram.
#include <gtest/gtest.h>

#include "mem/dram_config.hh"
#include "mem/dram_timing.hh"
#include "sim/random.hh"

namespace accesys::mem {
namespace {

struct DramTimingFixture : ::testing::Test {
    DramParams params = ddr4_2400();
};

TEST_F(DramTimingFixture, RowHitMissPrechargeSequencing)
{
    params.refresh_enabled = false;
    DramTiming dram(params);

    // Cold bank: activate + CAS.
    const auto miss = dram.access(0, false, 0);
    EXPECT_FALSE(miss.row_hit);
    EXPECT_EQ(miss.data_ready,
              params.tRCD() + params.tCL() + params.burst_ticks());

    // Same row: CAS only, paced by the bus.
    const auto hit = dram.access(params.burst_bytes(), false, 0);
    EXPECT_TRUE(hit.row_hit);
    EXPECT_EQ(dram.row_hits(), 1u);
    EXPECT_EQ(dram.row_misses(), 1u);

    // Conflicting row in the same bank: precharge (after tRAS) + activate.
    const Addr conflict = params.row_bytes * params.banks;
    const auto c0 = dram.decode(0);
    const auto c1 = dram.decode(conflict);
    ASSERT_EQ(c0.bank, c1.bank);
    ASSERT_NE(c0.row, c1.row);
    const auto pre = dram.access(conflict, false, hit.data_ready);
    EXPECT_FALSE(pre.row_hit);
    EXPECT_GE(pre.data_ready - hit.data_ready,
              params.tRP() + params.tRCD());
    EXPECT_EQ(dram.row_misses(), 2u);
}

TEST_F(DramTimingFixture, RefreshWindowStallsAccesses)
{
    DramTiming dram(params); // refresh on
    const Tick t = params.tREFI() + 1;
    const auto acc = dram.access(0, false, t);
    EXPECT_GE(acc.data_ready, params.tREFI() + params.tRFC());
    EXPECT_GE(dram.refreshes(), 1u);

    // Refresh closes every row: the immediately preceding activation is
    // forgotten and its packed open-row key is invalidated.
    DramTiming dram2(params);
    (void)dram2.access(0, false, 0);
    EXPECT_TRUE(dram2.peek_row_hit(params.burst_bytes()));
    const Tick after = 2 * params.tREFI() + 1;
    (void)dram2.access(0, false, after);
    // That access re-opened row 0; a different row in the same bank still
    // misses, and the refresh counter advanced.
    EXPECT_FALSE(dram2.peek_row_hit(params.row_bytes * params.banks));
    EXPECT_GE(dram2.refreshes(), 2u);
}

TEST_F(DramTimingFixture, MultiChannelInterleaveDecode)
{
    // Shift/mask decode must match the arithmetic definition:
    //   burst = addr / burst_bytes
    //   channel = burst % channels
    //   rows_space = burst / channels * burst_bytes / row_bytes
    //   bank = rows_space % banks ; row = rows_space / banks
    for (const char* preset : {"DDR4", "HBM2", "DDR5", "LPDDR5"}) {
        const auto p = dram_params_by_name(preset);
        DramTiming dram(p);
        Rng rng(7);
        for (int i = 0; i < 2000; ++i) {
            const Addr addr =
                (static_cast<Addr>(rng.below(1 << 30)) * p.burst_bytes()) %
                (Addr{1} << 34);
            const std::uint64_t burst = addr / p.burst_bytes();
            const auto c = dram.decode(addr);
            EXPECT_EQ(c.channel, burst % p.channels) << preset;
            const std::uint64_t rows_space =
                burst / p.channels * p.burst_bytes() / p.row_bytes;
            EXPECT_EQ(c.bank, rows_space % p.banks) << preset;
            EXPECT_EQ(c.row, rows_space / p.banks) << preset;
        }
        // Adjacent bursts interleave across channels.
        if (p.channels > 1) {
            EXPECT_NE(dram.decode(0).channel,
                      dram.decode(p.burst_bytes()).channel);
        }
    }
}

TEST_F(DramTimingFixture, PackedKeysMirrorOpenRows)
{
    params.refresh_enabled = false;
    DramTiming dram(params);
    const Addr a0 = 0;
    const Addr a1 = params.row_bytes * params.banks; // same bank, other row

    EXPECT_FALSE(dram.peek_row_hit(a0)); // nothing open yet
    (void)dram.access(a0, false, 0);
    EXPECT_TRUE(dram.peek_row_hit(a0));
    EXPECT_TRUE(dram.peek_row_hit(a0 + params.burst_bytes()));
    EXPECT_FALSE(dram.peek_row_hit(a1));

    // The packed key identifies the open bank slot.
    const std::uint64_t key = dram.packed_key(a0);
    EXPECT_EQ(dram.open_keys()[key & dram.slot_mask()], key);
    EXPECT_NE(dram.packed_key(a1), key);
    EXPECT_EQ(dram.packed_key(a1) & dram.slot_mask(), key & dram.slot_mask());

    (void)dram.access(a1, false, 0);
    EXPECT_FALSE(dram.peek_row_hit(a0));
    EXPECT_TRUE(dram.peek_row_hit(a1));
}

/// access_run(addr, n) must be bit-equivalent to n access() calls — same
/// per-call timing, same end state, same counters — across presets,
/// refresh on/off, reads and writes, sequential and conflict-heavy
/// patterns.
TEST_F(DramTimingFixture, AccessRunBitEquivalentToPerBurstLoop)
{
    for (const char* preset : {"DDR4", "HBM2", "LPDDR5"}) {
        for (const bool refresh : {false, true}) {
            auto p = dram_params_by_name(preset);
            p.refresh_enabled = refresh;
            DramTiming one(p);  // per-burst access() loop
            DramTiming runs(p); // access_run()

            Rng rng(42);
            Tick t = 0;
            Addr base = 0;
            for (int iter = 0; iter < 4000; ++iter) {
                const std::uint64_t n = 1 + rng.below(16);
                const bool is_write = rng.below(4) == 0;
                // Mix streaming advances with row-conflict jumps.
                if (rng.below(8) == 0) {
                    base += p.row_bytes * p.banks *
                            (1 + rng.below(3));
                }
                // Reference: the old MemCtrl::service_dram shape — one
                // access() per burst, all starting at the same tick.
                DramTiming::Access want{0, 0, false, 0};
                for (std::uint64_t i = 0; i < n; ++i) {
                    const auto acc = one.access(
                        base + i * p.burst_bytes(), is_write, t);
                    want.data_ready =
                        std::max(want.data_ready, acc.data_ready);
                    want.bus_busy_until = acc.bus_busy_until;
                    want.row_hit = acc.row_hit;
                    want.channel = acc.channel;
                }
                const auto got = runs.access_run(base, n, is_write, t);

                ASSERT_EQ(got.data_ready, want.data_ready)
                    << preset << " refresh=" << refresh << " iter=" << iter;
                ASSERT_EQ(got.bus_busy_until, want.bus_busy_until);
                ASSERT_EQ(got.row_hit, want.row_hit);
                ASSERT_EQ(got.channel, want.channel);
                ASSERT_EQ(one.row_hits(), runs.row_hits());
                ASSERT_EQ(one.row_misses(), runs.row_misses());
                ASSERT_EQ(one.bursts(), runs.bursts());
                ASSERT_EQ(one.refreshes(), runs.refreshes());

                base += n * p.burst_bytes();
                t = got.data_ready + rng.below(2000);
            }
            // End state must agree too: probe row hits across the space.
            for (Addr probe = 0; probe < (Addr{1} << 22);
                 probe += p.row_bytes / 2) {
                ASSERT_EQ(one.peek_row_hit(probe), runs.peek_row_hit(probe))
                    << preset;
            }
        }
    }
}

} // namespace
} // namespace accesys::mem
