// Tests for SystemConfig (Table II defaults, knobs, validation).
#include <gtest/gtest.h>

#include "core/system_config.hh"
#include "mem/dram_config.hh"

namespace accesys::core {
namespace {

TEST(SystemConfig, PaperDefaultMatchesTableII)
{
    const auto cfg = SystemConfig::paper_default();
    EXPECT_DOUBLE_EQ(cfg.cpu.freq_ghz, 1.0);
    EXPECT_EQ(cfg.l1d.size_bytes, 64 * kKiB);
    EXPECT_EQ(cfg.llc.size_bytes, 2 * kMiB);
    EXPECT_EQ(cfg.iocache.size_bytes, 32 * kKiB);
    EXPECT_EQ(cfg.host_mem.dram.name, "DDR3-1600");
    EXPECT_EQ(cfg.host_dram_bytes, 4 * kGiB);
    EXPECT_EQ(cfg.pcie.lanes, 4u);
    EXPECT_DOUBLE_EQ(cfg.pcie.lane_gbps, 4.0);
    EXPECT_EQ(cfg.pcie.gen, pcie::Gen::gen2);
    EXPECT_DOUBLE_EQ(cfg.rc.latency_ns, 150.0);
    EXPECT_DOUBLE_EQ(cfg.pcie_switch.latency_ns, 50.0);
    EXPECT_EQ(cfg.accel.sa.rows, 16u);
    EXPECT_EQ(cfg.accel.sa.cols, 16u);
    EXPECT_NO_THROW(cfg.validate());
}

TEST(SystemConfig, SetPacketSizeSyncsKnobs)
{
    auto cfg = SystemConfig::paper_default();
    cfg.set_packet_size(1024);
    EXPECT_EQ(cfg.accel.dma.request_bytes, 1024u);
    EXPECT_EQ(cfg.accel.dma.write_bytes, 1024u);
    EXPECT_EQ(cfg.rc.max_payload_bytes, 1024u);
}

TEST(SystemConfig, SetPcieTargetHitsBandwidth)
{
    auto cfg = SystemConfig::paper_default();
    cfg.set_pcie_target_gbps(8.0);
    EXPECT_NEAR(cfg.pcie.effective_gbps(), 8.0, 1e-9);
    cfg.set_pcie_target_gbps(64.0, 16);
    EXPECT_NEAR(cfg.pcie.effective_gbps(), 64.0, 1e-9);
    EXPECT_EQ(cfg.pcie.lanes, 16u);
}

TEST(SystemConfig, SetHostDram)
{
    auto cfg = SystemConfig::paper_default();
    cfg.set_host_dram("HBM2");
    EXPECT_EQ(cfg.host_mem.dram.name, "HBM2");
    EXPECT_FALSE(cfg.host_simple);
    EXPECT_THROW(cfg.set_host_dram("nvram"), ConfigError);
}

TEST(SystemConfig, SetDevmemEnables)
{
    auto cfg = SystemConfig::paper_default();
    EXPECT_FALSE(cfg.enable_devmem);
    cfg.set_devmem("GDDR6");
    EXPECT_TRUE(cfg.enable_devmem);
    EXPECT_EQ(cfg.devmem_mem.dram.name, "GDDR6");
}

TEST(SystemConfig, ValidationCatchesBadConfigs)
{
    auto cfg = SystemConfig::paper_default();
    cfg.host_dram_bytes = 1 * kMiB; // too small for page tables
    EXPECT_THROW(cfg.validate(), ConfigError);

    cfg = SystemConfig::paper_default();
    cfg.accel.bar0_base = 0x1000; // overlaps host DRAM
    EXPECT_THROW(cfg.validate(), ConfigError);

    cfg = SystemConfig::paper_default();
    cfg.pcie.lanes = 5;
    EXPECT_THROW(cfg.validate(), ConfigError);

    cfg = SystemConfig::paper_default();
    cfg.cpu.freq_ghz = 0.0;
    EXPECT_THROW(cfg.validate(), ConfigError);
}

TEST(SystemConfig, DefaultAccessModeIsDc)
{
    const auto cfg = SystemConfig::paper_default();
    EXPECT_EQ(cfg.access_mode, AccessMode::dc);
}

TEST(SystemConfig, MatrixFlowDefaultsMatchPaper)
{
    const auto cfg = SystemConfig::paper_default();
    EXPECT_EQ(cfg.accel.local_buffer_bytes, 256 * kKiB);
    // Streaming dataflow: one tile-column panels (16 B/cycle intensity).
    EXPECT_EQ(cfg.accel.max_block_cols, 16u);
    EXPECT_DOUBLE_EQ(cfg.accel.sa.freq_ghz, 1.0);
}

} // namespace
} // namespace accesys::core
