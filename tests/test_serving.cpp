// Open-loop serving under overload: bounded admission, load shedding,
// per-tenant SLO accounting and backpressure (Runner::serve +
// workload::RequestGen). The contracts exercised here:
//
//   * total accounting — every offered request ends as exactly one of
//     ok / failed / rejected / shed, with attempt history; nothing is
//     silently dropped even at 2x+ offered load;
//   * policy semantics — reject_new refuses at capacity, shed_oldest
//     drops the queue head to admit fresh work, deadline_aware sheds
//     jobs whose tenant SLO can no longer be met;
//   * per-tenant quotas cap one tenant's burst;
//   * determinism — bit-identical stats dumps for any ACCESYS_THREADS
//     and across a mid-overload checkpoint/restore round trip;
//   * the least-loaded tie-break regression (lowest endpoint index).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/runner.hh"
#include "workload/request_gen.hh"

namespace accesys::core {
namespace {

using workload::GemmSpec;
using workload::RequestGen;
using workload::RequestGenConfig;
using workload::TenantSpec;

std::string write_trace(const std::string& name, const std::string& body)
{
    const std::string path = ::testing::TempDir() + name;
    std::ofstream out(path);
    out << body;
    return path;
}

/// 24 arrivals of one tenant, 100 ns apart — far faster than any endpoint
/// can serve 32^3 GEMMs, so a capacity-4 queue overloads immediately.
RequestGenConfig burst_config(const std::string& trace_path)
{
    RequestGenConfig gcfg;
    gcfg.mode = RequestGenConfig::Mode::trace;
    gcfg.trace_path = trace_path;
    TenantSpec t;
    t.name = "burst";
    gcfg.tenants.push_back(t);
    return gcfg;
}

std::string burst_trace_body(int jobs)
{
    std::ostringstream body;
    body << "# arrival_ns tenant m n k\n";
    for (int i = 0; i < jobs; ++i) {
        body << (100 + 100 * i) << " 0 32 32 32\n";
    }
    return body.str();
}

struct ServeSnapshot {
    ServingResult res;
    std::string stats_text;
    std::string stats_json;
    Tick end_tick = 0;
};

ServeSnapshot snapshot(System& sys, ServingResult res)
{
    ServeSnapshot snap;
    snap.res = std::move(res);
    snap.end_tick = sys.sim().now();
    std::ostringstream text;
    sys.stats().write_text(text);
    snap.stats_text = text.str();
    std::ostringstream json;
    sys.stats().write_json(json);
    snap.stats_json = json.str();
    return snap;
}

TEST(Serving, OverloadedBurstEveryJobAccounted)
{
    const std::string trace =
        write_trace("serving_burst.trace", burst_trace_body(24));
    auto cfg = SystemConfig::paper_default();
    cfg.set_num_devices(2);
    System sys(cfg);
    RequestGen gen(sys.sim(), burst_config(trace));
    ASSERT_EQ(gen.total(), 24u);

    ServingConfig scfg;
    scfg.policy = ShedPolicy::reject_new;
    scfg.queue_capacity = 4;
    Runner runner(sys);
    const ServingResult res = runner.serve(gen, scfg);
    std::remove(trace.c_str());

    // The accounting identity: offered == admitted + rejected and
    // admitted == completed + shed + failed — no job unaccounted.
    EXPECT_TRUE(res.accounted())
        << "offered " << res.offered << " admitted " << res.admitted
        << " rejected " << res.rejected << " shed " << res.shed
        << " completed " << res.completed << " failed " << res.failed;
    EXPECT_EQ(res.offered, 24u);
    ASSERT_EQ(res.jobs.size(), 24u);
    // reject_new: a full queue refuses arrivals; admitted jobs always run
    // (no faults => none shed, none failed) and verify.
    EXPECT_GT(res.rejected, 0u);
    EXPECT_EQ(res.shed, 0u);
    EXPECT_EQ(res.failed, 0u);
    EXPECT_EQ(res.completed, res.admitted);
    for (const ServedJob& j : res.jobs) {
        if (j.status == JobStatus::ok) {
            EXPECT_TRUE(j.verified) << "job " << j.id;
            ASSERT_EQ(j.attempts.size(), 1u) << "job " << j.id;
            EXPECT_GE(j.first_dispatch, j.arrival) << "job " << j.id;
            EXPECT_GT(j.done, j.last_dispatch) << "job " << j.id;
        } else {
            EXPECT_EQ(j.status, JobStatus::rejected) << "job " << j.id;
            EXPECT_TRUE(j.attempts.empty()) << "job " << j.id;
        }
    }
    // The first round waits for the first arrival; the burst then drives
    // the queue through the watermarks into shedding and back.
    EXPECT_GE(res.idle_rounds, 1u);
    EXPECT_EQ(res.final_state, ServingState::normal);
    EXPECT_GT(sys.stat("runner.serving.shed_enters"), 0.0);
    // Stats registry mirrors the result counters and the ledger.
    EXPECT_EQ(sys.stat("runner.serving.offered"), 24.0);
    EXPECT_EQ(sys.stat("runner.serving.rejected"),
              static_cast<double>(res.rejected));
    EXPECT_EQ(sys.stat("runner.serving.completed"),
              static_cast<double>(res.completed));
    EXPECT_EQ(sys.stat("runner.serving.burst.offered"), 24.0);
    EXPECT_EQ(sys.stat("reqgen.scheduled"), 24.0);
    ASSERT_EQ(res.tenants.size(), 1u);
    EXPECT_EQ(res.tenants[0].name, "burst");
    EXPECT_EQ(res.tenants[0].offered, 24u);
    EXPECT_GT(res.tenants[0].p99_service_ns, 0.0);
    EXPECT_GE(res.tenants[0].p99_queue_ns, res.tenants[0].p50_queue_ns);
    EXPECT_GT(res.goodput_jobs_per_s(), 0.0);
}

TEST(Serving, ShedOldestAdmitsFreshWorkAndDropsTheHead)
{
    const std::string trace =
        write_trace("serving_shed.trace", burst_trace_body(24));
    auto cfg = SystemConfig::paper_default();
    cfg.set_num_devices(2);
    System sys(cfg);
    RequestGen gen(sys.sim(), burst_config(trace));

    ServingConfig scfg;
    scfg.policy = ShedPolicy::shed_oldest;
    scfg.queue_capacity = 4;
    Runner runner(sys);
    const ServingResult res = runner.serve(gen, scfg);
    std::remove(trace.c_str());

    EXPECT_TRUE(res.accounted());
    // shed_oldest never refuses an arrival — it evicts the queue head.
    EXPECT_EQ(res.rejected, 0u);
    EXPECT_GT(res.shed, 0u);
    EXPECT_EQ(res.failed, 0u);
    EXPECT_EQ(res.admitted, 24u);
    EXPECT_EQ(res.completed + res.shed, 24u);
    // Freshest-work-first: the last arrival is always admitted and nothing
    // arrives after it, so it must complete.
    EXPECT_EQ(res.jobs.back().status, JobStatus::ok);
    // Shed jobs carry their ledger entry but never dispatched.
    for (const ServedJob& j : res.jobs) {
        if (j.status == JobStatus::shed) {
            EXPECT_TRUE(j.attempts.empty()) << "job " << j.id;
            EXPECT_EQ(j.first_dispatch, 0u) << "job " << j.id;
        }
    }
}

TEST(Serving, DeadlineAwareShedsImpossibleSlos)
{
    const std::string trace =
        write_trace("serving_deadline.trace", burst_trace_body(24));
    auto cfg = SystemConfig::paper_default();
    cfg.set_num_devices(2);
    System sys(cfg);
    RequestGenConfig gcfg = burst_config(trace);
    // A 2 us end-to-end SLO is impossible for a 32^3 GEMM over PCIe: once
    // the first completions establish the service-time estimate, every
    // queued job's deadline is already blown and it sheds at dispatch.
    gcfg.tenants[0].deadline_ns = 2000.0;
    RequestGen gen(sys.sim(), gcfg);

    ServingConfig scfg;
    scfg.policy = ShedPolicy::deadline_aware;
    scfg.queue_capacity = 8;
    Runner runner(sys);
    const ServingResult res = runner.serve(gen, scfg);
    std::remove(trace.c_str());

    EXPECT_TRUE(res.accounted());
    EXPECT_GT(res.completed, 0u) << "pre-estimate jobs must still run";
    EXPECT_GT(res.shed, 0u) << "deadline shedding must engage";
    EXPECT_EQ(res.failed, 0u);
}

TEST(Serving, PerTenantQuotaCapsOneTenantsBurst)
{
    // Tenant 0 floods (10 arrivals in 450 ns), tenant 1 offers 2; with a
    // quota of 2 queued jobs for tenant 0 and ample queue capacity, the
    // flood is capped by the quota alone and tenant 1 is untouched.
    std::ostringstream body;
    for (int i = 0; i < 10; ++i) {
        body << (100 + 50 * i) << " 0 32 32 32\n";
    }
    body << "175 1 32 32 32\n";
    body << "275 1 32 32 32\n";
    const std::string trace =
        write_trace("serving_quota.trace", body.str());

    auto cfg = SystemConfig::paper_default();
    cfg.set_num_devices(2);
    System sys(cfg);
    RequestGenConfig gcfg;
    gcfg.mode = RequestGenConfig::Mode::trace;
    gcfg.trace_path = trace;
    TenantSpec flood;
    flood.name = "flood";
    flood.queue_quota = 2;
    TenantSpec meek;
    meek.name = "meek";
    gcfg.tenants.push_back(flood);
    gcfg.tenants.push_back(meek);
    RequestGen gen(sys.sim(), gcfg);

    ServingConfig scfg;
    scfg.queue_capacity = 16;
    Runner runner(sys);
    const ServingResult res = runner.serve(gen, scfg);
    std::remove(trace.c_str());

    EXPECT_TRUE(res.accounted());
    ASSERT_EQ(res.tenants.size(), 2u);
    const TenantSlo& f = res.tenants[0];
    const TenantSlo& m = res.tenants[1];
    EXPECT_EQ(f.offered, 10u);
    EXPECT_GT(f.rejected, 0u) << "the quota must cap the flood";
    EXPECT_EQ(f.completed, f.admitted);
    EXPECT_EQ(m.offered, 2u);
    EXPECT_EQ(m.rejected, 0u) << "quota rejections must not leak across "
                                 "tenants (capacity 16 is never reached)";
    EXPECT_EQ(m.completed, 2u);
}

TEST(Serving, RetryTieBreaksToLowestEndpointIndex)
{
    // Three endpoints, every command on endpoint 1 ("mf1") hangs. Round 1
    // places jobs 0/1/2 on endpoints 0/1/2 (all idle — ties resolve
    // ascending); job 1 times out and its retry sees endpoints 0 and 2
    // with equal load (one success each), so the deterministic tie-break
    // must pick endpoint 0. This is the topology-order regression test
    // for Runner::least_loaded.
    const std::string trace =
        write_trace("serving_tiebreak.trace",
                    "100 0 32 32 32\n101 0 32 32 32\n102 0 32 32 32\n");
    auto cfg = SystemConfig::paper_default();
    cfg.set_num_devices(3);
    cfg.fault_plan.hang_rate = 1.0;
    cfg.fault_plan.hang_site = "mf1";
    cfg.fault_plan.job_timeout_ns = 2e5;
    cfg.fault_plan.job_max_attempts = 3;
    System sys(cfg);
    RequestGen gen(sys.sim(), burst_config(trace));

    ServingConfig scfg;
    scfg.queue_capacity = 8;
    Runner runner(sys);
    const ServingResult res = runner.serve(gen, scfg);
    std::remove(trace.c_str());

    EXPECT_TRUE(res.accounted());
    EXPECT_EQ(res.completed, 3u);
    EXPECT_EQ(res.failed, 0u);
    EXPECT_EQ(res.redispatches, 1u);
    ASSERT_EQ(res.jobs.size(), 3u);
    const ServedJob& j1 = res.jobs[1];
    ASSERT_EQ(j1.attempts.size(), 2u);
    EXPECT_EQ(j1.attempts[0].device, 1u);
    EXPECT_EQ(j1.attempts[0].status, JobStatus::timed_out);
    EXPECT_EQ(j1.attempts[1].device, 0u)
        << "equal-load tie must break to the lowest endpoint index";
    EXPECT_EQ(j1.attempts[1].status, JobStatus::ok);
    ASSERT_EQ(res.health.size(), 3u);
    EXPECT_EQ(res.health[0], EndpointHealth::healthy);
    EXPECT_EQ(res.health[1], EndpointHealth::degraded);
    EXPECT_EQ(res.health[2], EndpointHealth::healthy);
}

/// Poisson overload scenario shared by the determinism tests: two tenants
/// at a combined offered load far above what four endpoints serve, bounded
/// queue, shed_oldest.
RequestGenConfig poisson_overload_config()
{
    RequestGenConfig gcfg;
    gcfg.seed = 42;
    gcfg.horizon_ns = 2.5e4;
    TenantSpec interactive;
    interactive.name = "interactive";
    interactive.rate_jobs_per_s = 8e5;
    interactive.mix = {GemmSpec{16, 16, 16}, GemmSpec{32, 32, 32}};
    TenantSpec batch;
    batch.name = "batch";
    batch.rate_jobs_per_s = 4e5;
    batch.mix = {GemmSpec{48, 48, 48}};
    batch.queue_quota = 3;
    gcfg.tenants.push_back(interactive);
    gcfg.tenants.push_back(batch);
    return gcfg;
}

ServeSnapshot run_poisson_overload(unsigned threads)
{
    auto cfg = SystemConfig::paper_default();
    cfg.set_num_devices(4);
    if (threads != 0) {
        cfg.threads = threads;
    }
    System sys(cfg);
    RequestGen gen(sys.sim(), poisson_overload_config());
    ServingConfig scfg;
    scfg.policy = ShedPolicy::shed_oldest;
    scfg.queue_capacity = 8;
    Runner runner(sys);
    return snapshot(sys, runner.serve(gen, scfg));
}

TEST(Serving, PoissonOverloadBitIdenticalAcrossThreads)
{
    // The serving determinism contract: the arrival schedule is a pure
    // function of the config, arrivals are consumed at ticks sampled
    // inside the CPU program, and endpoint selection is a pure function
    // of the health table — so serial and parallel runs (any worker
    // count) produce byte-identical stats dumps, and reruns are stable.
    const ServeSnapshot serial = run_poisson_overload(1);
    EXPECT_TRUE(serial.res.accounted());
    EXPECT_GT(serial.res.offered, 10u) << "scenario must actually offer load";
    EXPECT_GT(serial.res.shed, 0u) << "scenario must actually overload";

    const ServeSnapshot rerun = run_poisson_overload(1);
    EXPECT_EQ(serial.end_tick, rerun.end_tick);
    EXPECT_EQ(serial.stats_text, rerun.stats_text);
    EXPECT_EQ(serial.stats_json, rerun.stats_json);

    for (const unsigned threads : {2U, 4U}) {
        const ServeSnapshot par = run_poisson_overload(threads);
        EXPECT_TRUE(par.res.accounted()) << "threads=" << threads;
        EXPECT_EQ(serial.end_tick, par.end_tick) << "threads=" << threads;
        EXPECT_EQ(serial.stats_text, par.stats_text)
            << "threads=" << threads;
        EXPECT_EQ(serial.stats_json, par.stats_json)
            << "threads=" << threads;
    }
}

TEST(Serving, MidOverloadCheckpointRoundTripsBitIdentical)
{
    // Checkpoint in the middle of an overloaded serve — a full admission
    // queue, an in-flight dispatch round, a partially-drained arrival
    // schedule — and resume in a fresh process-equivalent System. The
    // "runner.serving" hook must round-trip the queue, ledger, health
    // table and flag sequences so the resumed run finishes byte-identical
    // to the straight run.
    const ServeSnapshot straight = run_poisson_overload(1);
    ASSERT_FALSE(straight.res.checkpointed);
    const Tick mid = straight.end_tick / 2;
    ASSERT_GT(mid, 0u);

    const std::string path = ::testing::TempDir() + "serving_mid.ckpt";
    {
        auto cfg = SystemConfig::paper_default();
        cfg.set_num_devices(4);
        cfg.threads = 1;
        System sys(cfg);
        RequestGen gen(sys.sim(), poisson_overload_config());
        ServingConfig scfg;
        scfg.policy = ShedPolicy::shed_oldest;
        scfg.queue_capacity = 8;
        Runner runner(sys);
        sys.sim().request_checkpoint_at(path, mid);
        const ServingResult res = runner.serve(gen, scfg);
        ASSERT_TRUE(res.checkpointed)
            << "serve finished at " << res.end
            << " before the checkpoint tick " << mid;
        EXPECT_GT(res.offered, 0u) << "overload must be underway at save";
    }

    for (const unsigned threads : {1U, 2U}) {
        auto cfg = SystemConfig::paper_default();
        cfg.set_num_devices(4);
        cfg.threads = threads;
        System sys(cfg);
        RequestGen gen(sys.sim(), poisson_overload_config());
        ServingConfig scfg;
        scfg.policy = ShedPolicy::shed_oldest;
        scfg.queue_capacity = 8;
        Runner runner(sys);
        runner.set_restore_path(path);
        const ServeSnapshot resumed = snapshot(sys, runner.serve(gen, scfg));
        EXPECT_TRUE(resumed.res.accounted()) << "threads=" << threads;
        EXPECT_EQ(straight.end_tick, resumed.end_tick)
            << "threads=" << threads;
        EXPECT_EQ(straight.stats_text, resumed.stats_text)
            << "threads=" << threads;
        EXPECT_EQ(straight.stats_json, resumed.stats_json)
            << "threads=" << threads;
        EXPECT_EQ(straight.res.completed, resumed.res.completed)
            << "threads=" << threads;
        EXPECT_EQ(straight.res.shed, resumed.res.shed)
            << "threads=" << threads;
    }
    std::remove(path.c_str());
}

TEST(Serving, TraceParsingSkipsCommentsAndValidates)
{
    const std::string trace = write_trace("serving_parse.trace",
                                          "# header comment\n"
                                          "\n"
                                          "100 0 8 8 8   # trailing\n"
                                          "50 1 16 8 4\n");
    auto cfg = SystemConfig::paper_default();
    System sys(cfg);
    RequestGenConfig gcfg;
    gcfg.mode = RequestGenConfig::Mode::trace;
    gcfg.trace_path = trace;
    TenantSpec a;
    a.name = "a";
    TenantSpec b;
    b.name = "b";
    gcfg.tenants.push_back(a);
    gcfg.tenants.push_back(b);
    RequestGen gen(sys.sim(), gcfg);
    std::remove(trace.c_str());

    ASSERT_EQ(gen.total(), 2u);
    // Merged schedule is arrival-ordered with dense ids.
    EXPECT_EQ(gen.schedule()[0].arrival, ticks_from_ns(50.0));
    EXPECT_EQ(gen.schedule()[0].tenant, 1u);
    EXPECT_EQ(gen.schedule()[0].id, 0u);
    EXPECT_EQ(gen.schedule()[1].arrival, ticks_from_ns(100.0));
    EXPECT_EQ(gen.schedule()[1].tenant, 0u);
    EXPECT_EQ(gen.schedule()[1].spec.m, 8u);
    // Per-job derived seeds decorrelate operand data.
    EXPECT_NE(gen.schedule()[0].spec.seed, gen.schedule()[1].spec.seed);
}

TEST(Serving, DetNegLogMatchesLnOnExactPoints)
{
    EXPECT_EQ(workload::det_neg_log(1.0), 0.0);
    // -ln(0.5) = ln 2: the worst-case |z| = 1/3 truncation error of the
    // 9-term atanh series is ~1e-10 relative — plenty for tick-quantized
    // arrival times (the point is bit-stability, not ULP accuracy).
    EXPECT_NEAR(workload::det_neg_log(0.5), 0.6931471805599453, 1e-9);
    EXPECT_NEAR(workload::det_neg_log(0.25), 2.0 * 0.6931471805599453,
                1e-9);
    // Monotonic: smaller survival probability, larger interarrival draw.
    EXPECT_GT(workload::det_neg_log(0.1), workload::det_neg_log(0.2));
    EXPECT_THROW((void)workload::det_neg_log(0.0), SimError);
    EXPECT_THROW((void)workload::det_neg_log(1.5), SimError);
}

TEST(Serving, ConfigValidationRejectsNonsense)
{
    ServingConfig scfg;
    scfg.queue_capacity = 0;
    EXPECT_THROW(scfg.validate(), ConfigError);
    scfg.queue_capacity = 8;
    scfg.throttle_watermark = 9;
    EXPECT_THROW(scfg.validate(), ConfigError);
    scfg.throttle_watermark = 7;
    scfg.shed_watermark = 5;
    EXPECT_THROW(scfg.validate(), ConfigError);
    scfg.shed_watermark = 7;
    EXPECT_NO_THROW(scfg.validate());

    RequestGenConfig gcfg;
    EXPECT_THROW(gcfg.validate(), SimError); // no tenants
    TenantSpec t;
    t.name = "t";
    gcfg.tenants.push_back(t);
    EXPECT_THROW(gcfg.validate(), SimError); // no rate in poisson mode
    gcfg.tenants[0].rate_jobs_per_s = 1e5;
    gcfg.tenants[0].mix = {GemmSpec{8, 8, 8}};
    EXPECT_THROW(gcfg.validate(), SimError); // no horizon
    gcfg.horizon_ns = 1e4;
    EXPECT_NO_THROW(gcfg.validate());
    gcfg.tenants.push_back(gcfg.tenants[0]);
    EXPECT_THROW(gcfg.validate(), SimError); // duplicate tenant name
}

TEST(Serving, ServingStatsRegisteredOnlyWhenServing)
{
    // A Runner that never serves must leave the stats dump untouched —
    // the serving groups appear on first serve() only.
    System sys(SystemConfig::paper_default());
    Runner runner(sys);
    (void)runner.run_gemm(GemmSpec{16, 16, 16, 3}, Placement::host, true);
    EXPECT_EQ(sys.stats().find("runner.serving.offered"), nullptr);
    EXPECT_EQ(sys.stats().find("runner.serving.queue_depth"), nullptr);
}

} // namespace
} // namespace accesys::core
