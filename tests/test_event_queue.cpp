// Unit and property tests for the discrete-event core.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/event.hh"
#include "sim/random.hh"
#include "sim/ring_buffer.hh"
#include "sim/simulator.hh"

namespace accesys {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    Event a("a", [&] { order.push_back(1); });
    Event b("b", [&] { order.push_back(2); });
    Event c("c", [&] { order.push_back(3); });
    q.schedule(a, 30);
    q.schedule(b, 10);
    q.schedule(c, 20);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue q;
    std::vector<int> order;
    Event a("a", [&] { order.push_back(1); });
    Event b("b", [&] { order.push_back(2); });
    q.schedule(a, 5);
    q.schedule(b, 5);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, PriorityBreaksTies)
{
    EventQueue q;
    std::vector<int> order;
    Event late("late", [&] { order.push_back(1); }, kPrioLate);
    Event early("early", [&] { order.push_back(2); }, kPrioEarly);
    q.schedule(late, 5);
    q.schedule(early, 5);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(EventQueue, DescheduleSquashes)
{
    EventQueue q;
    int fired = 0;
    Event a("a", [&] { ++fired; });
    q.schedule(a, 10);
    q.deschedule(a);
    EXPECT_FALSE(a.scheduled());
    q.run();
    EXPECT_EQ(fired, 0);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue q;
    Tick fired_at = 0;
    Event a("a", [&] { fired_at = q.now(); });
    q.schedule(a, 100);
    q.reschedule(a, 50);
    q.run();
    EXPECT_EQ(fired_at, 50u);
    EXPECT_EQ(q.events_processed(), 1u);
}

TEST(EventQueue, RescheduleAfterDescheduleWorks)
{
    EventQueue q;
    int fired = 0;
    Event a("a", [&] { ++fired; });
    q.schedule(a, 10);
    q.deschedule(a);
    q.schedule(a, 20);
    q.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 20u);
}

TEST(EventQueue, SelfReschedulingEvent)
{
    EventQueue q;
    int count = 0;
    Event tick("tick", nullptr);
    tick.set_callback([&] {
        if (++count < 5) {
            q.schedule(tick, q.now() + 10);
        }
    });
    q.schedule(tick, 10);
    q.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.now(), 50u);
}

TEST(EventQueue, DoubleScheduleThrows)
{
    EventQueue q;
    Event a("a", [] {});
    q.schedule(a, 10);
    EXPECT_THROW(q.schedule(a, 20), SimError);
}

TEST(EventQueue, ScheduleInPastThrows)
{
    EventQueue q;
    Event a("a", [] {});
    Event b("b", [] {});
    q.schedule(a, 100);
    q.run();
    EXPECT_THROW(q.schedule(b, 50), SimError);
}

TEST(EventQueue, DescheduleIdleThrows)
{
    EventQueue q;
    Event a("a", [] {});
    EXPECT_THROW(q.deschedule(a), SimError);
}

TEST(EventQueue, RunHorizonStopsAndWarps)
{
    EventQueue q;
    int fired = 0;
    Event a("a", [&] { ++fired; });
    Event b("b", [&] { ++fired; });
    q.schedule(a, 10);
    q.schedule(b, 1000);
    q.run(100);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 100u);
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventAtHorizonStillRuns)
{
    EventQueue q;
    int fired = 0;
    Event a("a", [&] { ++fired; });
    q.schedule(a, 100);
    q.run(100);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, NextEventNameAndTick)
{
    EventQueue q;
    Event a("alpha", [] {});
    EXPECT_EQ(q.next_event_tick(), kMaxTick);
    EXPECT_TRUE(q.next_event_name().empty());
    q.schedule(a, 42);
    EXPECT_EQ(q.next_event_tick(), 42u);
    EXPECT_EQ(q.next_event_name(), "alpha");
}

TEST(EventQueue, WarpRespectsPendingEvents)
{
    EventQueue q;
    Event a("a", [] {});
    q.schedule(a, 50);
    EXPECT_THROW(q.warp_to(60), SimError);
    q.warp_to(50);
    EXPECT_EQ(q.now(), 50u);
}

// Property: against a reference model, random schedule/deschedule sequences
// must produce identical firing orders.
class EventQueueRandomized : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(EventQueueRandomized, MatchesReferenceModel)
{
    Rng rng(GetParam());
    EventQueue q;

    constexpr int kEvents = 64;
    std::vector<std::unique_ptr<Event>> events;
    std::vector<std::pair<Tick, int>> fired; // (tick, id)
    for (int i = 0; i < kEvents; ++i) {
        events.push_back(std::make_unique<Event>(
            "e" + std::to_string(i), [&fired, &q, i] {
                fired.push_back({q.now(), i});
            }));
    }

    // Reference: multimap tick -> insertion sequence -> id.
    std::multimap<std::pair<Tick, std::uint64_t>, int> model;
    std::uint64_t seq = 0;
    std::vector<std::multimap<std::pair<Tick, std::uint64_t>,
                              int>::iterator>
        live(kEvents, model.end());

    for (int step = 0; step < 500; ++step) {
        const int id = static_cast<int>(rng.below(kEvents));
        if (events[id]->scheduled()) {
            q.deschedule(*events[id]);
            model.erase(live[id]);
            live[id] = model.end();
        } else {
            const Tick when = rng.between(1, 1000);
            q.schedule(*events[id], when);
            live[id] = model.insert({{when, seq++}, id});
        }
    }

    q.run();

    std::vector<std::pair<Tick, int>> expected;
    for (const auto& [key, id] : model) {
        expected.push_back({key.first, id});
    }
    EXPECT_EQ(fired, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueRandomized,
                         ::testing::Values(1, 2, 3, 17, 99, 12345));

TEST(EventQueue, ScheduleNowRunsAfterCurrentEvent)
{
    EventQueue q;
    std::vector<int> order;
    Event b("b", [&] { order.push_back(2); });
    Event c("c", [&] { order.push_back(3); });
    Event a("a", [&] {
        order.push_back(1);
        q.schedule_now(b); // same tick, runs after already-queued peers
    });
    q.schedule(a, 10);
    q.schedule(c, 10);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
    EXPECT_EQ(q.now(), 10u);
}

TEST(EventQueue, CachedTopSurvivesInterleavedScheduling)
{
    // Regression shape: after an event executes (cache empty), scheduling a
    // LATER event than a live entry still in the heap must not let the new
    // entry overtake it.
    EventQueue q;
    std::vector<int> order;
    Event late("late", [&] { order.push_back(3); });
    Event mid("mid", [&] { order.push_back(2); });
    Event first("first", [&] {
        order.push_back(1);
        q.schedule(late, 30); // heap holds mid@20; 30 must not be cached
    });
    q.schedule(first, 10);
    q.schedule(mid, 20);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(RingBuffer, FifoReuseAndGrowth)
{
    RingBuffer<int> r;
    EXPECT_TRUE(r.empty());
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 20; ++i) {
            r.push_back(round * 100 + i);
        }
        for (int i = 0; i < 20; ++i) {
            EXPECT_EQ(r.front(), round * 100 + i);
            r.pop_front();
        }
    }
    EXPECT_TRUE(r.empty());
    const std::size_t cap = r.capacity();
    for (int i = 0; i < 16; ++i) {
        r.push_back(i);
    }
    EXPECT_EQ(r.capacity(), cap); // steady state reuses storage
    EXPECT_THROW((void)RingBuffer<int>{}.front(), SimError);
}

TEST(RingBuffer, IndexAndEraseAt)
{
    RingBuffer<int> r;
    for (int i = 0; i < 6; ++i) {
        r.push_back(i);
    }
    r.pop_front();
    r.pop_front();
    r.push_back(6);
    r.push_back(7); // wraps
    EXPECT_EQ(r[0], 2);
    EXPECT_EQ(r[5], 7);
    r.erase_at(1); // removes 3
    EXPECT_EQ(r.size(), 5u);
    EXPECT_EQ(r[0], 2);
    EXPECT_EQ(r[1], 4);
    EXPECT_EQ(r[4], 7);
    EXPECT_THROW(r.erase_at(5), SimError);
}

TEST(Simulator, ExitRequestStopsRun)
{
    Simulator sim;
    Event a("a", [&] { sim.request_exit("test reason"); });
    Event b("b", [] { FAIL() << "must not run"; });
    sim.queue().schedule(a, 10);
    sim.queue().schedule(b, 20);
    const auto rr = sim.run();
    EXPECT_EQ(rr.cause, ExitCause::exit_requested);
    EXPECT_EQ(rr.exit_reason, "test reason");
    EXPECT_EQ(rr.end_tick, 10u);
}

TEST(Simulator, DrainedRunReportsCause)
{
    Simulator sim;
    Event a("a", [] {});
    sim.queue().schedule(a, 5);
    const auto rr = sim.run();
    EXPECT_EQ(rr.cause, ExitCause::queue_drained);
    EXPECT_EQ(rr.events, 1u);
}

TEST(Simulator, StartupCalledOncePerObject)
{
    Simulator sim;
    struct Obj : SimObject {
        using SimObject::SimObject;
        int started = 0;
        void startup() override { ++started; }
    };
    Obj o(sim, "obj");
    sim.run();
    sim.run();
    EXPECT_EQ(o.started, 1);
}

TEST(EventQueue, StopMidBatchPreservesOrderAcrossDrains)
{
    // Regression: stopping a drain inside a same-tick batch must return
    // the unexecuted remainder without breaking the ring-precedes-heap
    // invariant — a later-tick event cached ahead of the spilled
    // remainder must not run first on the resumed drain.
    EventQueue q;
    std::vector<int> order;
    bool stop = false;
    Event a("a", [&] {
        order.push_back(0);
        stop = true;
    });
    Event b("b", [&] { order.push_back(1); });
    Event c("c", [&] { order.push_back(2); });
    q.schedule(a, 10);
    q.schedule(b, 10); // same tick as a: dispatched as a batch
    q.schedule(c, 15); // later tick, parked behind them
    std::uint64_t n = 0;
    EXPECT_EQ(q.drain(kMaxTick, stop, n),
              EventQueue::DrainOutcome::stopped);
    stop = false;
    EXPECT_EQ(q.drain(kMaxTick, stop, n),
              EventQueue::DrainOutcome::drained);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(n, 3u);
}

TEST(EventQueue, EarlyPriorityScheduledMidBatchRunsBeforeRemainder)
{
    // Regression: a kPrioEarly event scheduled at the current tick from
    // inside a batch must interleave ahead of the pending remainder, and
    // the spill that makes room for it must keep later-tick entries
    // ordered after the current tick.
    EventQueue q;
    std::vector<int> order;
    Event early("early", [&] { order.push_back(9); }, kPrioEarly);
    Event a("a", [&] {
        order.push_back(0);
        q.schedule_now(early);
    });
    Event b("b", [&] { order.push_back(1); });
    Event c("c", [&] { order.push_back(2); });
    q.schedule(a, 10);
    q.schedule(b, 10);
    q.schedule(c, 15);
    (void)q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 9, 1, 2}));
}

TEST(Simulator, CrossDomainHandoffOrderIsDeterministic)
{
    // Generic model of the parallel core's barrier protocol: two carved
    // domains free-run quantum-Q windows on worker threads, staging
    // "handoff" records that per-domain barrier hooks inject into the
    // root queue at stage tick + Q (the minimum cross-domain latency),
    // in hook registration order. The delivered (tick, payload) log must
    // match the serial semantics exactly — same-tick arrivals ordered by
    // registration order, then staging order — for any worker count, run
    // after run.
    constexpr Tick kQ = 100;

    struct Producer {
        std::vector<std::pair<Tick, int>> staged; // (stage tick, payload)
        Event ev{"produce", nullptr};
        int fired = 0;
    };

    const auto run_once = [](unsigned threads) {
        Simulator sim;
        sim.set_threads(threads);
        std::vector<std::pair<Tick, int>> log;
        std::vector<std::unique_ptr<Event>> deliveries;

        Producer a;
        Producer b;
        const std::size_t da = sim.begin_domain("a");
        sim.end_domain();
        const std::size_t db = sim.begin_domain("b");
        sim.end_domain();
        EventQueue& qa = *sim.domain(da).queue;
        EventQueue& qb = *sim.domain(db).queue;

        // Domain a stages at 10/110/210; domain b at 10/60/110/160, so
        // the two domains collide at arrival ticks 110 and 210.
        a.ev.set_callback([&a, &qa] {
            a.staged.push_back({qa.now(), 100 + a.fired});
            if (++a.fired < 3) {
                qa.schedule(a.ev, qa.now() + 100);
            }
        });
        b.ev.set_callback([&b, &qb] {
            b.staged.push_back({qb.now(), 200 + b.fired});
            if (++b.fired < 4) {
                qb.schedule(b.ev, qb.now() + 50);
            }
        });
        qa.schedule(a.ev, 10);
        qb.schedule(b.ev, 10);

        const auto flush = [&sim, &log, &deliveries](Producer& p) {
            for (const auto& rec : p.staged) {
                const int payload = rec.second;
                auto ev = std::make_unique<Event>(
                    "deliver", [&sim, &log, payload] {
                        log.push_back({sim.queue().now(), payload});
                    });
                sim.queue().schedule(*ev, rec.first + kQ);
                deliveries.push_back(std::move(ev));
            }
            p.staged.clear();
        };
        sim.register_barrier_hook([&flush, &a] { flush(a); });
        sim.register_barrier_hook([&flush, &b] { flush(b); });
        sim.set_quantum(kQ);

        const auto rr = sim.run();
        EXPECT_EQ(rr.cause, ExitCause::queue_drained);
        return log;
    };

    const std::vector<std::pair<Tick, int>> expected{
        {110, 100}, {110, 200}, {160, 201}, {210, 101},
        {210, 202}, {260, 203}, {310, 102},
    };
    EXPECT_EQ(run_once(2), expected);
    EXPECT_EQ(run_once(2), expected) << "run-to-run divergence";
    EXPECT_EQ(run_once(4), expected)
        << "worker count must not affect injection order";
}

TEST(Clocked, EdgeMath)
{
    Clocked c(period_from_ghz(1.0)); // 1000 ticks
    EXPECT_EQ(c.cycles_to_ticks(5), 5000u);
    EXPECT_EQ(c.ticks_to_cycles(5999), 5u);
    EXPECT_EQ(c.next_edge(0), 0u);
    EXPECT_EQ(c.next_edge(1), 1000u);
    EXPECT_EQ(c.next_edge(1000), 1000u);
    EXPECT_DOUBLE_EQ(c.freq_ghz(), 1.0);
}

} // namespace
} // namespace accesys
