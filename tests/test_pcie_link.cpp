// Tests for TLPs, PCIe generations and the credit-gated link model.
#include <gtest/gtest.h>

#include "pcie/link.hh"
#include "sim/fault_injector.hh"
#include "sim/simulator.hh"

namespace accesys::pcie {
namespace {

TEST(Tlp, FactoriesAndPayloadRules)
{
    auto rd = make_mem_read(0x1000, 256, 7, 3);
    EXPECT_EQ(rd->type, TlpType::mem_read);
    EXPECT_FALSE(rd->has_payload());
    EXPECT_EQ(rd->payload_bytes(), 0u); // MRd carries no data on the wire
    EXPECT_EQ(rd->length, 256u);
    EXPECT_EQ(rd->tag, 7);
    EXPECT_EQ(rd->requester, 3);

    auto wr = make_mem_write(0x2000, 128, 3);
    EXPECT_EQ(wr->payload_bytes(), 128u);

    auto cpl = make_completion(64, 7, 3, 192, true);
    EXPECT_EQ(cpl->byte_offset, 192u);
    EXPECT_TRUE(cpl->is_last);
    EXPECT_EQ(cpl->payload_bytes(), 64u);
}

TEST(TlpPool, RecyclesStorageAndResetsState)
{
    TlpPool pool;
    const Tlp* first = nullptr;
    {
        auto t = pool.make_completion(64, 9, 2, 128, false);
        first = t.get();
        const std::uint64_t v = 0xFEED;
        t->set_data(&v, sizeof(v));
    }
    EXPECT_EQ(pool.allocs_total(), 1u);
    EXPECT_EQ(pool.free_count(), 1u);

    auto u = pool.make_mem_read(0x40, 64, 1, 1);
    EXPECT_EQ(u.get(), first);
    EXPECT_EQ(pool.allocs_total(), 1u);
    EXPECT_FALSE(u->has_data());
    EXPECT_EQ(u->byte_offset, 0u);
    EXPECT_TRUE(u->is_last);
    EXPECT_EQ(u->type, TlpType::mem_read);
}

TEST(TlpPool, DataOverflowThrows)
{
    auto t = make_mem_write(0, 64, 1);
    std::vector<std::uint8_t> big(Tlp::kMaxInlineData + 1, 1);
    EXPECT_THROW(t->set_data(big.data(), big.size()), SimError);
}

TEST(Tlp, DescribeMentionsType)
{
    auto cpl = make_completion(64, 7, 3, 0, false);
    EXPECT_NE(cpl->describe().find("CplD"), std::string::npos);
    auto rd = make_mem_read(0x10, 64, 1, 2);
    EXPECT_NE(rd->describe().find("MRd"), std::string::npos);
}

TEST(Gen, EncodingEfficiency)
{
    EXPECT_DOUBLE_EQ(encoding_efficiency(Gen::gen1), 0.8);
    EXPECT_DOUBLE_EQ(encoding_efficiency(Gen::gen2), 0.8);
    EXPECT_DOUBLE_EQ(encoding_efficiency(Gen::gen3), 128.0 / 130.0);
    EXPECT_GT(encoding_efficiency(Gen::gen6), 0.9);
}

TEST(LinkParams, EffectiveBandwidth)
{
    LinkParams p; // gen2, 4 lanes, 4 Gb/s
    EXPECT_NEAR(p.effective_gbps(), 4 * 4 * 0.8 / 8.0, 1e-9); // 1.6 GB/s
    p.gen = Gen::gen3;
    p.lanes = 16;
    p.lane_gbps = 8;
    EXPECT_NEAR(p.effective_gbps(), 16 * 8 * (128.0 / 130.0) / 8.0, 1e-9);
}

TEST(LinkParams, SerializeTicks)
{
    LinkParams p = LinkParams::from_target_gbps(1.0); // 1 GB/s effective
    EXPECT_NEAR(static_cast<double>(p.serialize_ticks(1000)), 1000.0 * 1000,
                2000); // ~1 us for 1000 B
}

TEST(LinkParams, FromTargetRoundTrips)
{
    for (const double gbps : {0.5, 2.0, 8.0, 64.0}) {
        const auto p = LinkParams::from_target_gbps(gbps);
        EXPECT_NEAR(p.effective_gbps(), gbps, 1e-9);
    }
}

TEST(LinkParams, Validation)
{
    LinkParams p;
    p.lanes = 3;
    EXPECT_THROW(p.validate(), ConfigError);
    p = {};
    p.lane_gbps = 0;
    EXPECT_THROW(p.validate(), ConfigError);
    p = {};
    p.hdr_credits = 0;
    EXPECT_THROW(p.validate(), ConfigError);
}

/// Node that records received TLPs and can release their ingress cost.
struct RecordingNode : PcieNode {
    PciePort* port = nullptr;
    Simulator* sim = nullptr;
    std::vector<TlpPtr> received;
    std::vector<Tick> arrival_ticks;
    bool auto_release = true;
    int credit_notifications = 0;

    void recv_tlp(unsigned, TlpPtr tlp) override
    {
        arrival_ticks.push_back(sim->now());
        if (auto_release) {
            port->release_ingress(tlp->payload_bytes());
        }
        received.push_back(std::move(tlp));
    }

    void credit_avail(unsigned) override { ++credit_notifications; }
};

struct LinkFixture : ::testing::Test {
    Simulator sim;
    LinkParams params;
    RecordingNode node_a;
    RecordingNode node_b;

    std::unique_ptr<PcieLink> make()
    {
        auto link = std::make_unique<PcieLink>(sim, "link", params);
        node_a.port = &link->end_a();
        node_b.port = &link->end_b();
        node_a.sim = node_b.sim = &sim;
        link->end_a().attach(node_a, 0);
        link->end_b().attach(node_b, 0);
        return link;
    }

    void drain() { sim.run(); }
};

TEST_F(LinkFixture, DeliversAfterSerializationAndPropagation)
{
    params = LinkParams::from_target_gbps(1.0); // 1 byte/ns
    params.propagation_delay_ns = 10.0;
    params.tlp_overhead_bytes = 24;
    auto link = make();

    auto tlp = make_mem_write(0x0, 100, 1);
    ASSERT_TRUE(link->end_a().can_send(*tlp));
    link->end_a().send(std::move(tlp));
    drain();
    ASSERT_EQ(node_b.received.size(), 1u);
    // 124 wire bytes at 1 B/ns + 10 ns propagation.
    EXPECT_NEAR(ticks_to_ns(node_b.arrival_ticks[0]), 134.0, 2.0);
    EXPECT_EQ(node_a.received.size(), 0u);
}

TEST_F(LinkFixture, FifoOrderPreserved)
{
    auto link = make();
    for (int i = 0; i < 5; ++i) {
        link->end_a().send(make_mem_write(static_cast<Addr>(i), 64, 1));
    }
    drain();
    ASSERT_EQ(node_b.received.size(), 5u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(node_b.received[i]->addr, static_cast<Addr>(i));
    }
}

TEST_F(LinkFixture, BackToBackSerializationAccumulates)
{
    params = LinkParams::from_target_gbps(1.0);
    params.propagation_delay_ns = 0.0;
    params.tlp_overhead_bytes = 0;
    auto link = make();
    link->end_a().send(make_mem_write(1, 100, 1));
    link->end_a().send(make_mem_write(2, 100, 1));
    drain();
    ASSERT_EQ(node_b.received.size(), 2u);
    EXPECT_NEAR(ticks_to_ns(node_b.arrival_ticks[0]), 100.0, 1.0);
    EXPECT_NEAR(ticks_to_ns(node_b.arrival_ticks[1]), 200.0, 1.0);
}

TEST_F(LinkFixture, FullDuplexDirectionsIndependent)
{
    params = LinkParams::from_target_gbps(1.0);
    auto link = make();
    link->end_a().send(make_mem_write(1, 4096, 1));
    link->end_b().send(make_mem_write(2, 64, 1));
    drain();
    ASSERT_EQ(node_b.received.size(), 1u);
    ASSERT_EQ(node_a.received.size(), 1u);
    // The small b->a TLP must not wait behind the big a->b one.
    EXPECT_LT(node_a.arrival_ticks[0], node_b.arrival_ticks[0]);
}

TEST_F(LinkFixture, CreditsBlockWhenIngressHeld)
{
    params.hdr_credits = 2;
    params.data_credit_bytes = 4 * kKiB;
    auto link = make();
    node_b.auto_release = false; // B hoards its ingress buffer

    auto t1 = make_mem_write(1, 64, 1);
    auto t2 = make_mem_write(2, 64, 1);
    auto t3 = make_mem_write(3, 64, 1);
    link->end_a().send(std::move(t1));
    link->end_a().send(std::move(t2));
    EXPECT_FALSE(link->end_a().can_send(*t3)); // header credits exhausted
    drain();
    EXPECT_EQ(node_b.received.size(), 2u);

    // Release one: credits return after the propagation delay.
    node_b.port->release_ingress(64);
    drain();
    EXPECT_TRUE(link->end_a().can_send(*t3));
    EXPECT_GE(node_a.credit_notifications, 1);
}

TEST_F(LinkFixture, DataCreditsTrackPayloadBytes)
{
    params.hdr_credits = 64;
    params.data_credit_bytes = 256;
    auto link = make();
    node_b.auto_release = false;

    link->end_a().send(make_mem_write(1, 256, 1));
    auto more = make_mem_write(2, 64, 1);
    EXPECT_FALSE(link->end_a().can_send(*more)); // data credits gone
    auto read = make_mem_read(3, 4096, 0, 1);
    EXPECT_TRUE(link->end_a().can_send(*read)); // MRd needs no data credits
    drain();
}

TEST_F(LinkFixture, SendWithoutCreditsPanics)
{
    params.hdr_credits = 1;
    auto link = make();
    node_b.auto_release = false;
    link->end_a().send(make_mem_write(1, 64, 1));
    EXPECT_THROW(link->end_a().send(make_mem_write(2, 64, 1)), SimError);
    drain();
}

TEST_F(LinkFixture, SameTickProbeCannotSwallowStarvedKick)
{
    // Lost-wakeup regression for lazy credit accounting: a sender starves
    // (credit kick armed), and at the exact tick the credit return
    // arrives, an earlier-dispatched event probes can_send() on the same
    // direction — harvesting the matured return inline — and still fails.
    // The credit event then fires having granted nothing; it must still
    // deliver credit_avail() to the starved node, or the staged TLP
    // strands forever.
    params.hdr_credits = 1;
    params.data_credit_bytes = 16 * kKiB;

    struct QueuedSender : PcieNode {
        TlpQueue q;
        explicit QueuedSender(PciePort& p) : q(p) {}
        void recv_tlp(unsigned, TlpPtr) override {}
        void credit_avail(unsigned) override { q.kick(); }
    };
    Simulator sim2;
    auto link2 = std::make_unique<PcieLink>(sim2, "link2", params);
    QueuedSender tx2(link2->end_a());
    RecordingNode rx2;
    rx2.sim = &sim2;
    rx2.port = &link2->end_b();
    rx2.auto_release = false;
    link2->end_a().attach(tx2, 0);
    link2->end_b().attach(rx2, 0);

    tx2.q.push(make_mem_write(1, 64, 1)); // consumes the only hdr credit
    tx2.q.push(make_mem_write(2, 64, 1)); // starves; kick armed on demand
    ASSERT_EQ(tx2.q.size(), 1u);

    const Tick t_rel = 200000; // after TLP1 delivery
    const Tick t_arr = t_rel + ticks_from_ns(params.propagation_delay_ns);
    // Scheduled *before* the release, so at t_arr it dispatches before the
    // credit event and its failing probe harvests the matured return.
    Event probe("probe", [&] {
        auto big = make_mem_write(3, 32 * kKiB, 1); // exceeds data credits
        EXPECT_FALSE(link2->end_a().can_send(*big));
    });
    sim2.queue().schedule(probe, t_arr);
    Event releaser("releaser", [&] { rx2.port->release_ingress(64); });
    sim2.queue().schedule(releaser, t_rel);

    sim2.run();
    EXPECT_EQ(rx2.received.size(), 2u)
        << "starved sender never got its credit kick";
    EXPECT_TRUE(tx2.q.empty());
}

TEST_F(LinkFixture, OneShotCorruptionIsReplayedNeverSilentlyDelivered)
{
    // An explicit corrupt_tlp event hits the first TLP transmitted at or
    // after its tick; the receiver drops and NAKs it, and the transmitter
    // replays from its buffer — exactly one delivery, no dead TLP.
    FaultPlan plan;
    FaultEvent ev;
    ev.kind = FaultKind::corrupt_tlp;
    ev.site = "link";
    ev.dir = 0; // a -> b
    ev.at_ns = 0.0;
    plan.events.push_back(ev);
    FaultInjector fi(plan);
    sim.set_fault_injector(&fi);
    auto link = make();

    link->end_a().send(make_mem_write(0x10, 64, 1));
    drain();

    ASSERT_EQ(node_b.received.size(), 1u);
    EXPECT_EQ(node_b.received[0]->addr, 0x10u);
    EXPECT_EQ(sim.stats().value("link.link_corrupted_tlps"), 1.0);
    EXPECT_EQ(sim.stats().value("link.link_nak_count"), 1.0);
    EXPECT_EQ(sim.stats().value("link.link_replays"), 1.0);
    EXPECT_EQ(sim.stats().value("link.link_dead_tlps"), 0.0);
    EXPECT_GT(sim.stats().value("link.recovery_ns"), 0.0);
}

TEST_F(LinkFixture, ReplayBufferExhaustionBackpressuresUntilAcked)
{
    // A full replay buffer must back-pressure the transmitter exactly like
    // credit starvation — can_send() fails even with link credits free —
    // and release it once cumulative ACKs retire entries.
    FaultPlan plan;
    plan.replay_buffer_tlps = 2;
    FaultEvent ev; // activates the plan; the site never matches this link
    ev.kind = FaultKind::corrupt_tlp;
    ev.site = "elsewhere";
    plan.events.push_back(ev);
    FaultInjector fi(plan);
    sim.set_fault_injector(&fi);
    params.hdr_credits = 64; // credits are NOT the bottleneck here
    auto link = make();

    link->end_a().send(make_mem_write(1, 64, 1));
    link->end_a().send(make_mem_write(2, 64, 1));
    auto t3 = make_mem_write(3, 64, 1);
    EXPECT_FALSE(link->end_a().can_send(*t3))
        << "two un-ACKed TLPs must fill the depth-2 replay buffer";
    drain(); // deliveries + DLL ACKs retire both entries

    EXPECT_TRUE(link->end_a().can_send(*t3));
    link->end_a().send(std::move(t3));
    drain();
    ASSERT_EQ(node_b.received.size(), 3u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(node_b.received[i]->addr, static_cast<Addr>(i + 1));
    }
    EXPECT_EQ(sim.stats().value("link.link_replays"), 0.0);
    EXPECT_EQ(sim.stats().value("link.link_dead_tlps"), 0.0);
    EXPECT_GE(node_a.credit_notifications, 1)
        << "the starved sender never got its replay-buffer kick";
}

TEST_F(LinkFixture, NakStormEscalatesToLinkFailureWithoutWedging)
{
    // corrupt_rate = 1.0: every transmission — including every replay —
    // is corrupted, so the receiver NAK-storms and the replay budget runs
    // out. The direction latches link-failed: the TLP dies, its credits
    // are synthesized back, and later sends fast-fail instead of wedging.
    FaultPlan plan;
    plan.seed = 3;
    plan.corrupt_rate = 1.0;
    plan.max_replays = 2;
    plan.replay_timeout_ns = 1000.0;
    FaultInjector fi(plan);
    sim.set_fault_injector(&fi);
    auto link = make();

    link->end_a().send(make_mem_write(1, 64, 1));
    drain(); // must terminate: a dead direction re-arms no replay timer

    EXPECT_EQ(node_b.received.size(), 0u)
        << "a corrupted TLP must never be delivered";
    EXPECT_EQ(sim.stats().value("link.link_dead_tlps"), 1.0);
    EXPECT_GE(sim.stats().value("link.link_nak_count"), 3.0)
        << "initial transmission plus both replays NAKed";
    EXPECT_EQ(sim.stats().value("link.link_replays"), 2.0);

    // The failed direction absorbs further traffic without throwing or
    // deadlocking: the TLP is swallowed, its credits synthesized back, and
    // the loss is left for transaction-layer timeouts to surface.
    ASSERT_TRUE(link->end_a().can_send(*make_mem_write(2, 64, 1)));
    link->end_a().send(make_mem_write(2, 64, 1));
    drain();
    EXPECT_EQ(node_b.received.size(), 0u);
    EXPECT_EQ(sim.stats().value("link.link_dead_tlps"), 2.0);
}

TEST_F(LinkFixture, UtilizationTracksBusyTime)
{
    params = LinkParams::from_target_gbps(1.0);
    auto link = make();
    link->end_a().send(make_mem_write(1, 1000, 1));
    drain();
    EXPECT_GT(link->utilization(0), 0.5);
    EXPECT_DOUBLE_EQ(link->utilization(1), 0.0);
}

TEST_F(LinkFixture, AttachTwicePanics)
{
    auto link = make();
    RecordingNode other;
    EXPECT_THROW(link->end_a().attach(other, 0), SimError);
}

} // namespace
} // namespace accesys::pcie
