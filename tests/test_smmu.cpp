// Tests for the page table, TLBs and the SMMU translation pipeline.
#include "test_util.hh"

#include "mem/mem_ctrl.hh"
#include "smmu/page_table.hh"
#include "smmu/smmu.hh"
#include "smmu/tlb.hh"

namespace accesys::smmu {
namespace {

using mem::Packet;
using test::MockRequestor;

TEST(PageTableBits, LevelIndices)
{
    // VA bits: L0[47:39] L1[38:30] L2[29:21] L3[20:12].
    const Addr va = (0x1ULL << 39) | (0x2ULL << 30) | (0x3ULL << 21) |
                    (0x4ULL << 12) | 0x567;
    EXPECT_EQ(level_index(va, 0), 1u);
    EXPECT_EQ(level_index(va, 1), 2u);
    EXPECT_EQ(level_index(va, 2), 3u);
    EXPECT_EQ(level_index(va, 3), 4u);
    EXPECT_EQ(vpn_of(va), va >> 12);
}

struct PageTableFixture : ::testing::Test {
    mem::BackingStore store;
    PageTable pt{store, 0x10000000, 0x10001000, 0x18000000};
};

TEST_F(PageTableFixture, MapAndTranslate)
{
    pt.map(0x5000, 0x9000, kPageBytes);
    EXPECT_EQ(pt.translate(0x5000), 0x9000u);
    EXPECT_EQ(pt.translate(0x5ABC), 0x9ABCu);
}

TEST_F(PageTableFixture, IdentityMap)
{
    pt.map_identity(0x40000, 4 * kPageBytes);
    EXPECT_EQ(pt.translate(0x41234), 0x41234u);
    EXPECT_EQ(pt.pages_mapped(), 4u);
}

TEST_F(PageTableFixture, UnmappedFaults)
{
    EXPECT_THROW((void)pt.translate(0xDEAD000), SimError);
}

TEST_F(PageTableFixture, RemapDoesNotDoubleCount)
{
    pt.map_identity(0x1000, kPageBytes);
    pt.map_identity(0x1000, kPageBytes);
    EXPECT_EQ(pt.pages_mapped(), 1u);
}

TEST_F(PageTableFixture, TablesAllocatedLazily)
{
    const auto before = pt.tables_allocated();
    pt.map_identity(0x1000, kPageBytes);
    // First mapping allocates L1+L2+L3 tables.
    EXPECT_EQ(pt.tables_allocated(), before + 3);
    pt.map_identity(0x2000, kPageBytes); // same leaf table
    EXPECT_EQ(pt.tables_allocated(), before + 3);
    // A VA far away needs a fresh subtree.
    pt.map_identity(0x800000000000ULL >> 1, kPageBytes);
    EXPECT_GT(pt.tables_allocated(), before + 3);
}

TEST_F(PageTableFixture, MisalignedMapThrows)
{
    EXPECT_THROW(pt.map(0x123, 0x1000, kPageBytes), SimError);
}

TEST(Tlb, HitMissLru)
{
    Tlb tlb(4, 4); // fully associative, 4 entries
    EXPECT_FALSE(tlb.lookup(1).has_value());
    tlb.insert(1, 101);
    tlb.insert(2, 102);
    tlb.insert(3, 103);
    tlb.insert(4, 104);
    EXPECT_EQ(tlb.lookup(1).value(), 101u); // touch 1 -> MRU
    tlb.insert(5, 105);                     // evicts LRU (2)
    EXPECT_TRUE(tlb.lookup(1).has_value());
    EXPECT_FALSE(tlb.lookup(2).has_value());
    EXPECT_EQ(tlb.evictions(), 1u);
}

TEST(Tlb, CountersAndFlush)
{
    Tlb tlb(8, 2);
    (void)tlb.lookup(7);
    tlb.insert(7, 70);
    (void)tlb.lookup(7);
    EXPECT_EQ(tlb.lookups(), 2u);
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
    tlb.flush();
    EXPECT_FALSE(tlb.lookup(7).has_value());
}

TEST(Tlb, ContainsDoesNotTouchCounters)
{
    Tlb tlb(4, 4);
    tlb.insert(9, 90);
    const auto lookups = tlb.lookups();
    EXPECT_TRUE(tlb.contains(9));
    EXPECT_FALSE(tlb.contains(10));
    EXPECT_EQ(tlb.lookups(), lookups);
}

TEST(Tlb, BadGeometryThrows)
{
    EXPECT_THROW(Tlb(0, 1), ConfigError);
    EXPECT_THROW(Tlb(6, 4), ConfigError);  // not a multiple
    EXPECT_THROW(Tlb(12, 4), ConfigError); // 3 sets: not a power of two
}

/// Full SMMU harness: device-side requestor, memory-side SimpleMem holding
/// the page tables and data.
struct SmmuFixture : ::testing::Test {
    Simulator sim;
    mem::BackingStore store;
    SmmuParams params;
    mem::SimpleMemParams mem_params;

    static constexpr Addr kPtRoot = 0x10000000;
    static constexpr Addr kPtArena = 0x10001000;

    std::unique_ptr<PageTable> pt;
    std::unique_ptr<Smmu> smmu;
    std::unique_ptr<mem::SimpleMem> memory;
    MockRequestor dev{"dev"};

    void build()
    {
        pt = std::make_unique<PageTable>(store, kPtRoot, kPtArena,
                                         kPtRoot + 0x8000000);
        smmu = std::make_unique<Smmu>(sim, "smmu", params, *pt, store);
        memory = std::make_unique<mem::SimpleMem>(
            sim, "mem", mem_params, mem::AddrRange(0, kGiB));
        dev.port().bind(smmu->dev_side());
        smmu->mem_side().bind(memory->port());
    }

    mem::PacketPtr translated_read(Addr va, std::uint32_t size = 64)
    {
        auto pkt = Packet::make_read(va, size);
        pkt->flags.needs_translation = true;
        return pkt;
    }
};

TEST_F(SmmuFixture, PassThroughWhenNoTranslationNeeded)
{
    build();
    auto pkt = Packet::make_read(0x4000, 64);
    ASSERT_TRUE(dev.port().send_req(pkt));
    test::drain(sim);
    ASSERT_EQ(dev.responses.size(), 1u);
    EXPECT_EQ(smmu->translations(), 0u);
}

TEST_F(SmmuFixture, DisabledSmmuForwardsEverything)
{
    params.enabled = false;
    build();
    auto pkt = translated_read(0x5000);
    ASSERT_TRUE(dev.port().send_req(pkt));
    test::drain(sim);
    ASSERT_EQ(dev.responses.size(), 1u);
    EXPECT_EQ(smmu->translations(), 0u);
}

TEST_F(SmmuFixture, ColdMissWalksAndTranslates)
{
    build();
    pt->map(0x5000, 0x9000, kPageBytes);
    auto pkt = translated_read(0x5040);
    ASSERT_TRUE(dev.port().send_req(pkt));
    test::drain(sim);

    ASSERT_EQ(dev.responses.size(), 1u);
    EXPECT_EQ(dev.responses[0]->addr(), 0x9040u); // translated
    EXPECT_EQ(dev.responses[0]->orig_addr(), 0x5040u);
    EXPECT_EQ(smmu->translations(), 1u);
    EXPECT_EQ(smmu->ptw_count(), 1u);
    // A cold 4-level walk issues 4 PTE reads.
    EXPECT_EQ(sim.stats().value("smmu.pte_reads"), 4.0);
}

TEST_F(SmmuFixture, SecondAccessHitsUtlb)
{
    build();
    pt->map_identity(0x5000, kPageBytes);
    auto p1 = translated_read(0x5000);
    ASSERT_TRUE(dev.port().send_req(p1));
    test::drain(sim);
    auto p2 = translated_read(0x5080);
    ASSERT_TRUE(dev.port().send_req(p2));
    test::drain(sim);
    EXPECT_EQ(smmu->ptw_count(), 1u); // no second walk
    EXPECT_EQ(smmu->utlb().hits(), 1u);
}

TEST_F(SmmuFixture, PwcShortensLaterWalks)
{
    build();
    pt->map_identity(0x100000, 64 * kPageBytes);
    auto p1 = translated_read(0x100000);
    ASSERT_TRUE(dev.port().send_req(p1));
    test::drain(sim);
    const auto reads_first = sim.stats().value("smmu.pte_reads");
    EXPECT_EQ(reads_first, 4.0);

    // Neighbouring page: upper levels cached in the PWC -> 1 read.
    auto p2 = translated_read(0x101000);
    ASSERT_TRUE(dev.port().send_req(p2));
    test::drain(sim);
    EXPECT_EQ(sim.stats().value("smmu.pte_reads") - reads_first, 1.0);
}

TEST_F(SmmuFixture, ConcurrentSameVpnCoalesces)
{
    build();
    pt->map_identity(0x7000, kPageBytes);
    auto p1 = translated_read(0x7000);
    auto p2 = translated_read(0x7100);
    ASSERT_TRUE(dev.port().send_req(p1));
    ASSERT_TRUE(dev.port().send_req(p2));
    test::drain(sim);
    EXPECT_EQ(dev.responses.size(), 2u);
    EXPECT_EQ(smmu->ptw_count(), 1u); // one walk served both
}

TEST_F(SmmuFixture, WalkFaultPanics)
{
    build(); // nothing mapped
    auto pkt = translated_read(0xBAD000);
    ASSERT_TRUE(dev.port().send_req(pkt));
    EXPECT_THROW(sim.run(), SimError);
}

TEST_F(SmmuFixture, CrossPageRequestPanics)
{
    build();
    pt->map_identity(0x5000, 2 * kPageBytes);
    auto pkt = translated_read(0x5FC0, 128); // crosses 0x6000
    EXPECT_THROW((void)dev.port().send_req(pkt), SimError);
}

TEST_F(SmmuFixture, PostedWritesTranslateToo)
{
    build();
    pt->map(0x8000, 0xC000, kPageBytes);
    auto pkt = Packet::make_write(0x8010, 8);
    pkt->flags.needs_translation = true;
    pkt->flags.posted = true;
    ASSERT_TRUE(dev.port().send_req(pkt));
    test::drain(sim);
    EXPECT_EQ(smmu->translations(), 1u);
    EXPECT_EQ(sim.stats().value("mem.writes"), 1.0);
}

TEST_F(SmmuFixture, TranslationLatencyAccounted)
{
    build();
    pt->map_identity(0x5000, kPageBytes);
    auto p = translated_read(0x5000);
    ASSERT_TRUE(dev.port().send_req(p));
    test::drain(sim);
    EXPECT_GT(smmu->total_translation_ns(), 0.0);
    EXPECT_GT(smmu->total_ptw_ns(), 0.0);
}

TEST(SmmuParams, Validation)
{
    SmmuParams p;
    p.walk_slots = 0;
    EXPECT_THROW(p.validate(), ConfigError);
    p = {};
    p.max_pending = 1;
    p.walk_slots = 4;
    EXPECT_THROW(p.validate(), ConfigError);
}

} // namespace
} // namespace accesys::smmu
