// Declarative PCIe topology construction for multi-accelerator systems.
//
// The TopologyBuilder turns a SystemConfig's device list + switch tree into
// live components in two phases:
//
//   1. resolve()  — pure address-map planning: auto-carve BAR0s, device
//      memory apertures and scratchpad staging space, assign unique PCIe
//      requester ids and SMMU stream ids, and validate that nothing
//      overlaps. The result is inspectable without building anything.
//
//   2. build()    — instantiate the switch tree (RC -> root switch ->
//      nested switches), one link + MatrixFlow endpoint per device, and
//      per-device device-side memory (xbar + controller), then wire it all
//      up. Parent switches learn the union of BARs and the full requester
//      id set of each subtree so memory TLPs route down by BAR and
//      completions route down by requester id at every level.
//
// Naming keeps the single-device layout stable: device 0 and its plumbing
// are "mf" / "link_dn" / "devmem_xbar" / "devmem" exactly as before, and
// device i>0 appends the index ("mf1", "link_dn1", ...), which is what
// gives every device a distinct stat prefix in the registry.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/bump_alloc.hh"
#include "core/system_config.hh"
#include "mem/backing_store.hh"
#include "mem/packet.hh"
#include "mem/write_journal.hh"
#include "pcie/tlp.hh"

namespace accesys::core {

/// A DeviceConfig with every auto-carved field made concrete.
struct ResolvedDevice {
    std::string name;
    accel::MatrixFlowParams accel;
    std::uint32_t stream_id = 0;
    std::size_t attach_to = 0;
    /// Downstream link parameters (DeviceConfig::link or the system-wide
    /// SystemConfig::pcie clone).
    pcie::LinkParams link;

    bool devmem_enabled = false;
    mem::AddrRange devmem{};
    bool devmem_simple = false;
    mem::MemCtrlParams devmem_mem;
    mem::SimpleMemParams devmem_simple_mem;
    mem::XbarParams devmem_xbar;

    [[nodiscard]] std::uint16_t requester_id() const noexcept
    {
        return accel.ep.device_id;
    }
    [[nodiscard]] mem::AddrRange bar0() const noexcept
    {
        return mem::AddrRange::with_size(accel.bar0_base, accel.bar0_size);
    }
    /// Ranges the switch fabric routes to this endpoint.
    [[nodiscard]] std::vector<mem::AddrRange> bars() const
    {
        std::vector<mem::AddrRange> b{bar0()};
        if (devmem_enabled) {
            b.push_back(devmem);
        }
        return b;
    }
};

/// The planned address map + switch tree, before instantiation.
struct ResolvedTopology {
    std::vector<SwitchConfig> switches;
    std::vector<ResolvedDevice> devices;
    /// CPU-visible PCIe window covering every BAR and devmem aperture.
    mem::AddrRange pcie_window{};
};

/// One live endpoint with its link and (optional) device-side memory.
struct DeviceInstance {
    std::string name;
    std::uint32_t stream_id = 0;
    std::size_t attach_to = 0;

    // Parallel-domain context (populated only when the topology carves
    // this endpoint subtree into its own simulation domain). Declared
    // before the components so the pools outlive every packet/TLP the
    // components still hold at destruction.
    std::unique_ptr<pcie::TlpPool> tlp_pool;
    std::unique_ptr<mem::PacketPool> pkt_pool;
    std::unique_ptr<mem::WriteJournal> journal;
    std::size_t domain = static_cast<std::size_t>(-1);

    std::unique_ptr<pcie::PcieLink> link;
    std::unique_ptr<accel::MatrixFlowDevice> device;

    mem::AddrRange devmem{};
    std::unique_ptr<mem::Xbar> devmem_xbar;
    std::unique_ptr<mem::MemCtrl> devmem_ctrl;
    std::unique_ptr<mem::SimpleMem> devmem_simple;
    BumpAllocator devmem_alloc;

    [[nodiscard]] bool devmem_enabled() const noexcept
    {
        return !devmem.empty();
    }
};

/// The live PCIe fabric below the root complex.
struct Topology {
    /// Switches in declaration order; [0] is the root below the RC.
    std::vector<std::unique_ptr<pcie::PcieSwitch>> switches;
    /// Uplink of each switch, parallel to `switches`; [0] faces the RC.
    std::vector<std::unique_ptr<pcie::PcieLink>> uplinks;
    std::vector<DeviceInstance> devices;
    mem::AddrRange pcie_window{};
};

class TopologyBuilder {
  public:
    /// Plan the address map: carve auto BARs / devmem / staging space,
    /// assign requester and stream ids, and check for overlaps. Throws
    /// ConfigError on impossible layouts.
    [[nodiscard]] static ResolvedTopology resolve(const SystemConfig& cfg);

    /// Instantiate and wire the PCIe hierarchy: RC -> switch tree -> N
    /// endpoints (plus per-device device memory). The returned Topology
    /// owns every component it created.
    [[nodiscard]] static Topology build(Simulator& sim,
                                        mem::BackingStore& store,
                                        const SystemConfig& cfg,
                                        pcie::RootComplex& rc);
};

} // namespace accesys::core
