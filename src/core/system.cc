#include "core/system.hh"

#include <cstring>

#include "sim/serialize.hh"

namespace accesys::core {

namespace {

/// Host-memory carve-outs: workload data grows from 16 MiB; the page-table
/// arena occupies the top 128 MiB.
constexpr Addr kDataBase = 16 * kMiB;
constexpr std::uint64_t kPtArenaBytes = 128 * kMiB;

std::uint64_t dbits(double v) noexcept
{
    std::uint64_t u = 0;
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

std::uint64_t mix_str(std::uint64_t h, const std::string& s) noexcept
{
    h = fnv1a64(h, s.size());
    for (const char c : s) {
        h = fnv1a64(h, static_cast<std::uint8_t>(c));
    }
    return h;
}

std::uint64_t mix_link(std::uint64_t h, const pcie::LinkParams& l) noexcept
{
    h = fnv1a64(h, l.lanes);
    h = fnv1a64(h, dbits(l.lane_gbps));
    h = fnv1a64(h, static_cast<std::uint64_t>(l.gen));
    h = fnv1a64(h, dbits(l.propagation_delay_ns));
    h = fnv1a64(h, l.tlp_overhead_bytes);
    h = fnv1a64(h, l.hdr_credits);
    h = fnv1a64(h, l.data_credit_bytes);
    return h;
}

/// Curated FNV-1a hash of everything a checkpoint's validity depends on:
/// topology shape, address map, timing-relevant knobs and the fault plan.
/// `threads` is deliberately excluded — the barrier bit-identity contract
/// makes a checkpoint valid under any ACCESYS_THREADS.
std::uint64_t config_hash(const SystemConfig& cfg)
{
    std::uint64_t h = kFnvBasis;
    h = fnv1a64(h, cfg.host_dram_bytes);
    h = fnv1a64(h, static_cast<std::uint64_t>(cfg.access_mode));
    h = fnv1a64(h, cfg.host_simple ? 1 : 0);
    h = fnv1a64(h, dbits(cfg.cpu.freq_ghz));
    h = fnv1a64(h, cfg.cpu.mem_window);
    h = fnv1a64(h, cfg.cpu.line_bytes);
    h = fnv1a64(h, cfg.cpu.max_polls_per_op);
    h = fnv1a64(h, dbits(cfg.rc.latency_ns));
    h = fnv1a64(h, cfg.rc.host_split_bytes);
    h = fnv1a64(h, cfg.rc.max_payload_bytes);
    h = fnv1a64(h, cfg.rc.max_inbound_reads);
    h = fnv1a64(h, cfg.rc.mmio_tags);
    h = fnv1a64(h, cfg.smmu.enabled ? 1 : 0);
    h = mix_link(h, cfg.pcie);

    const auto switches = cfg.resolved_switch_tree();
    h = fnv1a64(h, switches.size());
    for (const SwitchConfig& sw : switches) {
        h = fnv1a64(h, sw.parent);
        h = fnv1a64(h, dbits(sw.params.latency_ns));
        h = mix_link(h, sw.uplink);
    }

    const auto devices = cfg.resolved_devices();
    h = fnv1a64(h, devices.size());
    for (const DeviceConfig& dev : devices) {
        h = mix_str(h, dev.name);
        h = fnv1a64(h, dev.stream_id);
        h = fnv1a64(h, dev.attach_to);
        h = fnv1a64(h, dev.accel.ep.device_id);
        h = fnv1a64(h, dev.accel.bar0_base);
        h = fnv1a64(h, dev.accel.bar0_size);
        h = fnv1a64(h, dev.accel.local_base);
        h = fnv1a64(h, dev.accel.local_buffer_bytes);
        h = fnv1a64(h, dev.accel.max_block_cols);
        h = fnv1a64(h, dev.accel.cmd_fifo_depth);
        h = fnv1a64(h, dev.accel.dma.channels);
        h = fnv1a64(h, dev.accel.dma.request_bytes);
        h = fnv1a64(h, dev.accel.dma.write_bytes);
        h = fnv1a64(h, dev.accel.dma.window_bytes);
        h = fnv1a64(h, dev.accel.dma.max_tags);
        if (dev.link) {
            h = mix_link(h, *dev.link);
        }
        h = fnv1a64(h, dev.enable_devmem ? 1 : 0);
        h = fnv1a64(h, dev.devmem_base);
        h = fnv1a64(h, dev.enable_devmem ? dev.devmem_bytes : 0);
    }

    const FaultPlan& fp = cfg.fault_plan;
    h = fnv1a64(h, fp.active() ? 1 : 0);
    if (fp.active()) {
        h = fnv1a64(h, fp.seed);
        h = fnv1a64(h, dbits(fp.corrupt_rate));
        h = mix_str(h, fp.corrupt_site);
        h = fnv1a64(h, fp.events.size());
        for (const FaultEvent& ev : fp.events) {
            h = fnv1a64(h, static_cast<std::uint64_t>(ev.kind));
            h = mix_str(h, ev.site);
            h = fnv1a64(h, ev.dir);
            h = fnv1a64(h, dbits(ev.at_ns));
            h = fnv1a64(h, dbits(ev.duration_ns));
        }
        h = fnv1a64(h, fp.replay_buffer_tlps);
        h = fnv1a64(h, fp.max_replays);
        h = fnv1a64(h, dbits(fp.replay_timeout_ns));
        h = fnv1a64(h, dbits(fp.completion_timeout_ns));
        h = fnv1a64(h, fp.completion_max_retries);
        h = fnv1a64(h, dbits(fp.job_timeout_ns));
        h = fnv1a64(h, dbits(fp.hang_rate));
        h = mix_str(h, fp.hang_site);
        h = fnv1a64(h, dbits(fp.poison_rate));
        h = mix_str(h, fp.poison_site);
        h = fnv1a64(h, dbits(fp.smmu_fault_rate));
        h = fnv1a64(h, dbits(fp.flr_ns));
        h = fnv1a64(h, fp.job_max_attempts);
        h = fnv1a64(h, fp.fleet_retry_budget);
        h = fnv1a64(h, fp.quarantine_failures);
        h = fnv1a64(h, fp.rehab_successes);
    }
    return h;
}

} // namespace

System::System(const SystemConfig& cfg) : cfg_(cfg)
{
    cfg_.validate();
    build();
}

System::~System() = default;

DeviceInstance& System::device(std::size_t idx)
{
    ensure(idx < topo_.devices.size(), "device index ", idx,
           " out of range (", topo_.devices.size(), " endpoints)");
    return topo_.devices[idx];
}

void System::build()
{
    // Requestor ids must depend only on construction order so serialized
    // in-flight packets keep matching their originating components after
    // a restore in a process that already built other Systems.
    mem::reset_requestor_ids();

    // Worker budget must be set before the topology decides whether to
    // carve endpoint subtrees into parallel simulation domains.
    sim_.set_threads(cfg_.threads);

    // The fault injector must exist before any component constructs:
    // fault-aware components (links, DMA engines, the RC, the CPU) probe
    // sim().fault_injector() exactly once, in their constructors, to decide
    // whether to allocate fault state and register fault stats. An inactive
    // plan creates nothing, keeping clean runs bit-identical.
    if (cfg_.fault_plan.active()) {
        fault_ = std::make_unique<FaultInjector>(cfg_.fault_plan);
        sim_.set_fault_injector(fault_.get());
    }
    if (sim_.fault_injector() != nullptr &&
        cfg_.fault_plan.completion_timeout_ns > 0) {
        // Propagate the completion-timeout budget to every requester that
        // waits on PCIe completions.
        cfg_.accel.dma.completion_timeout_ns =
            cfg_.fault_plan.completion_timeout_ns;
        cfg_.accel.dma.completion_max_retries =
            cfg_.fault_plan.completion_max_retries;
        for (DeviceConfig& dev : cfg_.devices) {
            dev.accel.dma.completion_timeout_ns =
                cfg_.fault_plan.completion_timeout_ns;
            dev.accel.dma.completion_max_retries =
                cfg_.fault_plan.completion_max_retries;
        }
        cfg_.rc.completion_timeout_ns = cfg_.fault_plan.completion_timeout_ns;
        cfg_.rc.completion_max_retries =
            cfg_.fault_plan.completion_max_retries;
    }
    if (sim_.fault_injector() != nullptr) {
        // Any enabled plan arms DMA fault mode: stray-completion tolerance
        // and poison containment work even without a completion watchdog
        // (FLR drains and poisoned CplDs produce both).
        cfg_.accel.dma.fault_mode = true;
        for (DeviceConfig& dev : cfg_.devices) {
            dev.accel.dma.fault_mode = true;
        }
    }

    const mem::AddrRange host = host_range();
    const Addr pt_root = cfg_.host_dram_bytes - kPtArenaBytes;
    ptable_ = std::make_unique<smmu::PageTable>(
        store_, pt_root, pt_root + smmu::kPageBytes, cfg_.host_dram_bytes);
    host_alloc_ = BumpAllocator("host workload", kDataBase, pt_root);

    // --- coherent MemBus ----------------------------------------------------
    membus_ = std::make_unique<mem::Xbar>(sim_, "membus", cfg_.membus);

    // --- CPU cluster ----------------------------------------------------------
    cpu_ = std::make_unique<cpu::HostCpu>(sim_, "cpu0", cfg_.cpu, store_);
    l1d_ = std::make_unique<cache::Cache>(sim_, "l1d", cfg_.l1d);
    cpu_->mem_port().bind(l1d_->cpu_side());
    mem::ResponsePort& cpu_up = membus_->add_upstream("cpu_side");
    l1d_->mem_side().bind(cpu_up);
    membus_->register_snooper(*l1d_, cpu_up);

    // --- LLC + host memory (memory-side cache) -------------------------------
    llc_ = std::make_unique<cache::Cache>(sim_, "llc", cfg_.llc);
    membus_->add_downstream("llc_side", host).bind(llc_->cpu_side());
    if (cfg_.host_simple) {
        host_simple_mem_ = std::make_unique<mem::SimpleMem>(
            sim_, "hostmem", cfg_.host_simple_mem, host);
        llc_->mem_side().bind(host_simple_mem_->port());
    } else {
        host_mem_ = std::make_unique<mem::MemCtrl>(sim_, "hostmem",
                                                   cfg_.host_mem, host);
        llc_->mem_side().bind(host_mem_->port());
    }

    // --- inbound DMA path: RC -> SMMU -> IOCache -> MemBus --------------------
    iocache_ = std::make_unique<cache::Cache>(sim_, "iocache", cfg_.iocache);
    mem::ResponsePort& io_up = membus_->add_upstream("io_side");
    iocache_->mem_side().bind(io_up);
    membus_->register_snooper(*iocache_, io_up);

    smmu_ = std::make_unique<smmu::Smmu>(sim_, "smmu", cfg_.smmu, *ptable_,
                                         store_);
    smmu_->mem_side().bind(iocache_->cpu_side());

    pcie::RcParams rc_params = cfg_.rc;
    rc_params.device_addresses_virtual = cfg_.smmu.enabled;
    rc_params.inbound_uncacheable = cfg_.access_mode == AccessMode::dm;
    rc_ = std::make_unique<pcie::RootComplex>(sim_, "rc", rc_params);
    rc_->mem_side().bind(smmu_->dev_side());

    // --- PCIe hierarchy: RC -> switch tree -> N endpoints ---------------------
    topo_ = TopologyBuilder::build(sim_, store_, cfg_, *rc_);

    // CPU-visible PCIe window: every BAR plus every DevMem aperture.
    membus_->add_downstream("pcie_side", topo_.pcie_window)
        .bind(rc_->mmio_side());
    cpu_->add_uncacheable_range(topo_.pcie_window);

    // Route each endpoint's requester id to its SMMU translation stream.
    for (const DeviceInstance& dev : topo_.devices) {
        smmu_->map_stream(dev.device->device_id(), dev.stream_id);
    }

    // --- checkpoint/restore wiring --------------------------------------------
    sim_.set_config_hash(config_hash(cfg_));
    // Root-domain thread context: the process-wide pools. Restore installs
    // this before re-materializing root components so their packets/TLPs
    // come from the same pool they will be recycled into.
    sim_.set_root_install([] {
        pcie::TlpPool::set_current(nullptr);
        mem::PacketPool::set_current(nullptr);
    });
    // Non-SimObject state, serialized between the component and stats
    // sections. The store first (components re-materialized nothing that
    // touches it), then the pool counters: they must overwrite the
    // acquires the component restore itself performed so the counter
    // streams continue as if never interrupted.
    sim_.add_ckpt_hook("store", [this](Ckpt& ar) { store_.serialize(ar); });
    sim_.add_ckpt_hook("pools", [this](Ckpt& ar) {
        // Count-prefixed: per-device pools exist only under a parallel
        // carve, and snapshots are thread-count-neutral. On a carve
        // mismatch the saved records are drained unapplied and every pool
        // keeps its organic counters — those truthfully track this
        // process's construction + restore acquires, which is what the
        // recycle accounting must balance against.
        std::uint64_t np = 2;
        for (const DeviceInstance& dev : topo_.devices) {
            np += (dev.pkt_pool ? 1 : 0) + (dev.tlp_pool ? 1 : 0);
        }
        const std::uint64_t np_here = np;
        ar.io(np);
        if (np == np_here) {
            mem::PacketPool::global().serialize_counters(ar);
            pcie::TlpPool::global().serialize_counters(ar);
            for (DeviceInstance& dev : topo_.devices) {
                if (dev.pkt_pool) {
                    dev.pkt_pool->serialize_counters(ar);
                }
                if (dev.tlp_pool) {
                    dev.tlp_pool->serialize_counters(ar);
                }
            }
            return;
        }
        // Record shape: keep in sync with Pool::serialize_counters.
        for (std::uint64_t i = 0; i < np; ++i) {
            std::uint64_t allocs = 0;
            std::uint64_t acquires = 0;
            std::uint64_t recycles = 0;
            ar.io(allocs, acquires, recycles);
        }
    });
}

Addr System::alloc_host(std::uint64_t bytes, std::uint64_t align)
{
    return host_alloc_.alloc(bytes, align);
}

Addr System::alloc_devmem(std::uint64_t bytes, std::uint64_t align)
{
    return alloc_devmem_on(0, bytes, align);
}

Addr System::alloc_devmem_on(std::size_t idx, std::uint64_t bytes,
                             std::uint64_t align)
{
    DeviceInstance& dev = device(idx);
    ensure(dev.devmem_enabled(), "device memory is not enabled on '",
           dev.name, "'");
    return dev.devmem_alloc.alloc(bytes, align);
}

Addr System::alloc(Placement place, std::uint64_t bytes, std::uint64_t align)
{
    return alloc_on(0, place, bytes, align);
}

Addr System::alloc_on(std::size_t idx, Placement place, std::uint64_t bytes,
                      std::uint64_t align)
{
    return place == Placement::host ? alloc_host(bytes, align)
                                    : alloc_devmem_on(idx, bytes, align);
}

void System::map_host_pages(Addr addr, std::uint64_t size)
{
    const Addr first = align_down(addr, smmu::kPageBytes);
    const Addr last = align_up(addr + size, smmu::kPageBytes);
    ptable_->map_identity(first, last - first);
}

} // namespace accesys::core
