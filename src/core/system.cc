#include "core/system.hh"

namespace accesys::core {

namespace {

/// Host-memory carve-outs: workload data grows from 16 MiB; the page-table
/// arena occupies the top 128 MiB.
constexpr Addr kDataBase = 16 * kMiB;
constexpr std::uint64_t kPtArenaBytes = 128 * kMiB;

} // namespace

System::System(const SystemConfig& cfg) : cfg_(cfg)
{
    cfg_.validate();
    build();
}

System::~System() = default;

DeviceInstance& System::device(std::size_t idx)
{
    ensure(idx < topo_.devices.size(), "device index ", idx,
           " out of range (", topo_.devices.size(), " endpoints)");
    return topo_.devices[idx];
}

void System::build()
{
    // Worker budget must be set before the topology decides whether to
    // carve endpoint subtrees into parallel simulation domains.
    sim_.set_threads(cfg_.threads);

    // The fault injector must exist before any component constructs:
    // fault-aware components (links, DMA engines, the RC, the CPU) probe
    // sim().fault_injector() exactly once, in their constructors, to decide
    // whether to allocate fault state and register fault stats. An inactive
    // plan creates nothing, keeping clean runs bit-identical.
    if (cfg_.fault_plan.active()) {
        fault_ = std::make_unique<FaultInjector>(cfg_.fault_plan);
        sim_.set_fault_injector(fault_.get());
    }
    if (sim_.fault_injector() != nullptr &&
        cfg_.fault_plan.completion_timeout_ns > 0) {
        // Propagate the completion-timeout budget to every requester that
        // waits on PCIe completions.
        cfg_.accel.dma.completion_timeout_ns =
            cfg_.fault_plan.completion_timeout_ns;
        cfg_.accel.dma.completion_max_retries =
            cfg_.fault_plan.completion_max_retries;
        for (DeviceConfig& dev : cfg_.devices) {
            dev.accel.dma.completion_timeout_ns =
                cfg_.fault_plan.completion_timeout_ns;
            dev.accel.dma.completion_max_retries =
                cfg_.fault_plan.completion_max_retries;
        }
        cfg_.rc.completion_timeout_ns = cfg_.fault_plan.completion_timeout_ns;
        cfg_.rc.completion_max_retries =
            cfg_.fault_plan.completion_max_retries;
    }

    const mem::AddrRange host = host_range();
    const Addr pt_root = cfg_.host_dram_bytes - kPtArenaBytes;
    ptable_ = std::make_unique<smmu::PageTable>(
        store_, pt_root, pt_root + smmu::kPageBytes, cfg_.host_dram_bytes);
    host_alloc_ = BumpAllocator("host workload", kDataBase, pt_root);

    // --- coherent MemBus ----------------------------------------------------
    membus_ = std::make_unique<mem::Xbar>(sim_, "membus", cfg_.membus);

    // --- CPU cluster ----------------------------------------------------------
    cpu_ = std::make_unique<cpu::HostCpu>(sim_, "cpu0", cfg_.cpu, store_);
    l1d_ = std::make_unique<cache::Cache>(sim_, "l1d", cfg_.l1d);
    cpu_->mem_port().bind(l1d_->cpu_side());
    mem::ResponsePort& cpu_up = membus_->add_upstream("cpu_side");
    l1d_->mem_side().bind(cpu_up);
    membus_->register_snooper(*l1d_, cpu_up);

    // --- LLC + host memory (memory-side cache) -------------------------------
    llc_ = std::make_unique<cache::Cache>(sim_, "llc", cfg_.llc);
    membus_->add_downstream("llc_side", host).bind(llc_->cpu_side());
    if (cfg_.host_simple) {
        host_simple_mem_ = std::make_unique<mem::SimpleMem>(
            sim_, "hostmem", cfg_.host_simple_mem, host);
        llc_->mem_side().bind(host_simple_mem_->port());
    } else {
        host_mem_ = std::make_unique<mem::MemCtrl>(sim_, "hostmem",
                                                   cfg_.host_mem, host);
        llc_->mem_side().bind(host_mem_->port());
    }

    // --- inbound DMA path: RC -> SMMU -> IOCache -> MemBus --------------------
    iocache_ = std::make_unique<cache::Cache>(sim_, "iocache", cfg_.iocache);
    mem::ResponsePort& io_up = membus_->add_upstream("io_side");
    iocache_->mem_side().bind(io_up);
    membus_->register_snooper(*iocache_, io_up);

    smmu_ = std::make_unique<smmu::Smmu>(sim_, "smmu", cfg_.smmu, *ptable_,
                                         store_);
    smmu_->mem_side().bind(iocache_->cpu_side());

    pcie::RcParams rc_params = cfg_.rc;
    rc_params.device_addresses_virtual = cfg_.smmu.enabled;
    rc_params.inbound_uncacheable = cfg_.access_mode == AccessMode::dm;
    rc_ = std::make_unique<pcie::RootComplex>(sim_, "rc", rc_params);
    rc_->mem_side().bind(smmu_->dev_side());

    // --- PCIe hierarchy: RC -> switch tree -> N endpoints ---------------------
    topo_ = TopologyBuilder::build(sim_, store_, cfg_, *rc_);

    // CPU-visible PCIe window: every BAR plus every DevMem aperture.
    membus_->add_downstream("pcie_side", topo_.pcie_window)
        .bind(rc_->mmio_side());
    cpu_->add_uncacheable_range(topo_.pcie_window);

    // Route each endpoint's requester id to its SMMU translation stream.
    for (const DeviceInstance& dev : topo_.devices) {
        smmu_->map_stream(dev.device->device_id(), dev.stream_id);
    }
}

Addr System::alloc_host(std::uint64_t bytes, std::uint64_t align)
{
    return host_alloc_.alloc(bytes, align);
}

Addr System::alloc_devmem(std::uint64_t bytes, std::uint64_t align)
{
    return alloc_devmem_on(0, bytes, align);
}

Addr System::alloc_devmem_on(std::size_t idx, std::uint64_t bytes,
                             std::uint64_t align)
{
    DeviceInstance& dev = device(idx);
    ensure(dev.devmem_enabled(), "device memory is not enabled on '",
           dev.name, "'");
    return dev.devmem_alloc.alloc(bytes, align);
}

Addr System::alloc(Placement place, std::uint64_t bytes, std::uint64_t align)
{
    return alloc_on(0, place, bytes, align);
}

Addr System::alloc_on(std::size_t idx, Placement place, std::uint64_t bytes,
                      std::uint64_t align)
{
    return place == Placement::host ? alloc_host(bytes, align)
                                    : alloc_devmem_on(idx, bytes, align);
}

void System::map_host_pages(Addr addr, std::uint64_t size)
{
    const Addr first = align_down(addr, smmu::kPageBytes);
    const Addr last = align_up(addr + size, smmu::kPageBytes);
    ptable_->map_identity(first, last - first);
}

} // namespace accesys::core
