#include "core/system.hh"

namespace accesys::core {

namespace {

/// Host-memory carve-outs: workload data grows from 16 MiB; the page-table
/// arena occupies the top 128 MiB.
constexpr Addr kDataBase = 16 * kMiB;
constexpr std::uint64_t kPtArenaBytes = 128 * kMiB;

} // namespace

System::System(const SystemConfig& cfg) : cfg_(cfg)
{
    cfg_.validate();
    build();
}

System::~System() = default;

void System::build()
{
    const mem::AddrRange host = host_range();
    const Addr pt_root = cfg_.host_dram_bytes - kPtArenaBytes;
    ptable_ = std::make_unique<smmu::PageTable>(
        store_, pt_root, pt_root + smmu::kPageBytes, cfg_.host_dram_bytes);
    host_alloc_next_ = kDataBase;
    host_alloc_limit_ = pt_root;
    devmem_alloc_next_ = cfg_.devmem_base;

    // --- coherent MemBus ----------------------------------------------------
    membus_ = std::make_unique<mem::Xbar>(sim_, "membus", cfg_.membus);

    // --- CPU cluster ----------------------------------------------------------
    cpu_ = std::make_unique<cpu::HostCpu>(sim_, "cpu0", cfg_.cpu, store_);
    l1d_ = std::make_unique<cache::Cache>(sim_, "l1d", cfg_.l1d);
    cpu_->mem_port().bind(l1d_->cpu_side());
    mem::ResponsePort& cpu_up = membus_->add_upstream("cpu_side");
    l1d_->mem_side().bind(cpu_up);
    membus_->register_snooper(*l1d_, cpu_up);

    // --- LLC + host memory (memory-side cache) -------------------------------
    llc_ = std::make_unique<cache::Cache>(sim_, "llc", cfg_.llc);
    membus_->add_downstream("llc_side", host).bind(llc_->cpu_side());
    if (cfg_.host_simple) {
        host_simple_mem_ = std::make_unique<mem::SimpleMem>(
            sim_, "hostmem", cfg_.host_simple_mem, host);
        llc_->mem_side().bind(host_simple_mem_->port());
    } else {
        host_mem_ = std::make_unique<mem::MemCtrl>(sim_, "hostmem",
                                                   cfg_.host_mem, host);
        llc_->mem_side().bind(host_mem_->port());
    }

    // --- inbound DMA path: RC -> SMMU -> IOCache -> MemBus --------------------
    iocache_ = std::make_unique<cache::Cache>(sim_, "iocache", cfg_.iocache);
    mem::ResponsePort& io_up = membus_->add_upstream("io_side");
    iocache_->mem_side().bind(io_up);
    membus_->register_snooper(*iocache_, io_up);

    smmu_ = std::make_unique<smmu::Smmu>(sim_, "smmu", cfg_.smmu, *ptable_,
                                         store_);
    smmu_->mem_side().bind(iocache_->cpu_side());

    pcie::RcParams rc_params = cfg_.rc;
    rc_params.device_addresses_virtual = cfg_.smmu.enabled;
    rc_params.inbound_uncacheable = cfg_.access_mode == AccessMode::dm;
    rc_ = std::make_unique<pcie::RootComplex>(sim_, "rc", rc_params);
    rc_->mem_side().bind(smmu_->dev_side());

    // CPU-visible PCIe window: BAR0 plus (optionally) the DevMem aperture.
    const Addr window_end = cfg_.enable_devmem
                                ? cfg_.devmem_base + cfg_.devmem_bytes
                                : cfg_.accel.bar0_base + cfg_.accel.bar0_size;
    const mem::AddrRange pcie_window(cfg_.accel.bar0_base, window_end);
    membus_->add_downstream("pcie_side", pcie_window).bind(rc_->mmio_side());
    cpu_->add_uncacheable_range(pcie_window);

    // --- PCIe hierarchy --------------------------------------------------------
    link_up_ = std::make_unique<pcie::PcieLink>(sim_, "link_up", cfg_.pcie);
    link_dn_ = std::make_unique<pcie::PcieLink>(sim_, "link_dn", cfg_.pcie);
    pcie_switch_ = std::make_unique<pcie::PcieSwitch>(sim_, "pcie_sw",
                                                      cfg_.pcie_switch);
    rc_->connect_pcie(link_up_->end_a());
    pcie_switch_->set_upstream(link_up_->end_b());

    accel_ = std::make_unique<accel::MatrixFlowDevice>(sim_, "mf", cfg_.accel,
                                                       store_, host);
    std::vector<mem::AddrRange> device_bars = {mem::AddrRange::with_size(
        cfg_.accel.bar0_base, cfg_.accel.bar0_size)};
    if (cfg_.enable_devmem) {
        device_bars.push_back(devmem_range());
    }
    pcie_switch_->add_downstream(link_dn_->end_a(), device_bars,
                                 accel_->device_id());
    accel_->connect_pcie(link_dn_->end_b());

    // --- device-side memory -----------------------------------------------------
    if (cfg_.enable_devmem) {
        devmem_xbar_ = std::make_unique<mem::Xbar>(sim_, "devmem_xbar",
                                                   cfg_.devmem_xbar);
        if (cfg_.devmem_simple) {
            devmem_simple_mem_ = std::make_unique<mem::SimpleMem>(
                sim_, "devmem", cfg_.devmem_simple_mem, devmem_range());
            devmem_xbar_->add_downstream("mem_side", devmem_range())
                .bind(devmem_simple_mem_->port());
        } else {
            devmem_mem_ = std::make_unique<mem::MemCtrl>(
                sim_, "devmem", cfg_.devmem_mem, devmem_range());
            devmem_xbar_->add_downstream("mem_side", devmem_range())
                .bind(devmem_mem_->port());
        }
        mem::ResponsePort& mover_up = devmem_xbar_->add_upstream("mover");
        mem::ResponsePort& aperture_up =
            devmem_xbar_->add_upstream("aperture");
        accel_->attach_devmem(devmem_range(), mover_up, aperture_up);
    }
}

Addr System::alloc_host(std::uint64_t bytes, std::uint64_t align)
{
    host_alloc_next_ = align_up(host_alloc_next_, align);
    const Addr addr = host_alloc_next_;
    host_alloc_next_ += bytes;
    ensure(host_alloc_next_ <= host_alloc_limit_,
           "host workload arena exhausted");
    return addr;
}

Addr System::alloc_devmem(std::uint64_t bytes, std::uint64_t align)
{
    ensure(cfg_.enable_devmem, "device memory is not enabled");
    devmem_alloc_next_ = align_up(devmem_alloc_next_, align);
    const Addr addr = devmem_alloc_next_;
    devmem_alloc_next_ += bytes;
    ensure(devmem_alloc_next_ <= cfg_.devmem_base + cfg_.devmem_bytes,
           "device memory arena exhausted");
    return addr;
}

Addr System::alloc(Placement place, std::uint64_t bytes, std::uint64_t align)
{
    return place == Placement::host ? alloc_host(bytes, align)
                                    : alloc_devmem(bytes, align);
}

void System::map_host_pages(Addr addr, std::uint64_t size)
{
    const Addr first = align_down(addr, smmu::kPageBytes);
    const Addr last = align_up(addr + size, smmu::kPageBytes);
    ptable_->map_identity(first, last - first);
}

} // namespace accesys::core
