#include "core/runner.hh"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <iostream>
#include <utility>

#include "accel/command.hh"
#include "sim/env_flags.hh"
#include "sim/fault_injector.hh"
#include "sim/serialize.hh"
#include "workload/request_gen.hh"

namespace accesys::core {

namespace {

/// Simulator targeted by the signal-checkpoint handler. post_interrupt()
/// is flag writes only, so the handler is async-signal-safe.
std::atomic<Simulator*> g_signal_sim{nullptr};

void on_checkpoint_signal(int)
{
    Simulator* sim = g_signal_sim.load(std::memory_order_relaxed);
    if (sim != nullptr) {
        sim->post_interrupt();
    }
}

} // namespace

void arm_signal_checkpoint(System& sys, std::string path)
{
    if (!env_flags().ckpt) {
        return;
    }
    sys.sim().arm_interrupt_checkpoint(std::move(path));
    g_signal_sim.store(&sys.sim(), std::memory_order_relaxed);
    std::signal(SIGINT, on_checkpoint_signal);
    std::signal(SIGTERM, on_checkpoint_signal);
}

namespace {

/// Run the simulation; if a SimError escapes mid-run, flush a partial
/// stats dump to stderr first so the failure state is diagnosable, then
/// rethrow.
RunResult run_with_stats_flush(System& sys, const char* what)
{
    try {
        return sys.sim().run();
    } catch (const SimError&) {
        std::cerr << "accesys: SimError during " << what << " at tick "
                  << sys.sim().now() << "; partial stats dump follows\n";
        sys.stats().write_text(std::cerr);
        throw;
    }
}

/// The doorbell register's system address for endpoint `idx`.
Addr doorbell_addr(System& sys, std::size_t idx = 0)
{
    return sys.accelerator(idx).params().bar0_base + accel::kRegDoorbell;
}

/// DMA payload bytes endpoint `idx` has moved so far (both directions).
std::uint64_t dma_bytes(System& sys, std::size_t idx)
{
    const std::string& prefix = sys.accelerator(idx).name();
    return static_cast<std::uint64_t>(
        sys.stat(prefix + ".dma.bytes_read") +
        sys.stat(prefix + ".dma.bytes_written"));
}

} // namespace

GemmRunResult Runner::run_gemm(const workload::GemmSpec& spec,
                               Placement place, bool verify)
{
    ensure(pending_.empty(), "run_gemm with ", pending_.size(),
           " GEMMs already dispatched; use run_dispatched()");
    dispatch(0, spec, place, verify);
    const MultiGemmResult multi = run_dispatched();

    GemmRunResult res;
    res.start = multi.start;
    res.end = multi.end;
    res.verified = multi.devices[0].verified;
    res.mismatches = multi.devices[0].mismatches;
    return res;
}

void Runner::dispatch(std::size_t device_idx, const workload::GemmSpec& spec,
                      Placement place, bool verify)
{
    System& sys = *sys_;
    ensure(spec.m > 0 && spec.n > 0 && spec.k > 0, "degenerate GEMM spec");
    ensure(device_idx < sys.device_count(), "dispatch to device ",
           device_idx, " but the system has ", sys.device_count(),
           " endpoints");
    // One GEMM per endpoint per run: per-device DMA accounting reads the
    // device-wide stat delta, which two commands on one device would share.
    for (const PendingGemm& p : pending_) {
        ensure(p.device != device_idx, "device ", device_idx,
               " already has a dispatched GEMM in this batch");
    }

    const Addr a = sys.alloc_on(device_idx, place, spec.a_bytes());
    const Addr bt = sys.alloc_on(device_idx, place, spec.b_bytes());
    const Addr c = sys.alloc_on(device_idx, place, spec.c_bytes());
    const Addr flag = sys.alloc_host(64);
    const Addr desc = sys.alloc_host(64);

    sys.map_host_pages(flag, 8);
    sys.map_host_pages(desc, sizeof(accel::GemmCommand));
    if (place == Placement::host) {
        sys.map_host_pages(a, spec.a_bytes());
        sys.map_host_pages(bt, spec.b_bytes());
        sys.map_host_pages(c, spec.c_bytes());
    }

    PendingGemm p;
    p.device = device_idx;
    p.spec = spec;
    p.place = place;
    p.verify = verify;
    p.c = c;
    p.flag = flag;
    p.desc = desc;

    if (verify) {
        workload::init_gemm_data(sys.store(), spec, a, bt);
        p.golden = workload::gemm_golden(sys.store(), spec, a, bt);
    }

    p.cmd.flags =
        (verify ? accel::kCmdVerify : 0U) |
        (place == Placement::devmem ? accel::kCmdDataInDevMem : 0U);
    p.cmd.m = spec.m;
    p.cmd.n = spec.n;
    p.cmd.k = spec.k;
    p.cmd.addr_a = a;
    p.cmd.addr_b = bt;
    p.cmd.addr_c = c;
    p.cmd.flag_addr = flag;
    p.cmd.flag_value = 1;
    pending_.push_back(std::move(p));
}

MultiGemmResult Runner::run_dispatched()
{
    System& sys = *sys_;
    ensure(!pending_.empty(), "run_dispatched with nothing dispatched");

    // Failover armed: an active fault plan that allows more than one
    // attempt per job routes through the round-based health-tracked path.
    // Everything else (clean runs, single-attempt fault runs) takes the
    // classic single-round path below, unchanged.
    if (const FaultInjector* fi0 = sys.sim().fault_injector();
        fi0 != nullptr && fi0->plan().job_max_attempts > 1) {
        return run_failover(fi0->plan());
    }

    MultiGemmResult res;
    res.devices.resize(pending_.size());
    std::vector<std::uint64_t> dma_before(pending_.size());
    for (std::size_t i = 0; i < pending_.size(); ++i) {
        res.devices[i].device = pending_[i].device;
        res.devices[i].spec = pending_[i].spec;
        dma_before[i] = dma_bytes(sys, pending_[i].device);
    }

    // The driver fills every descriptor, rings all doorbells back-to-back
    // (the devices start pulling operands immediately and contend on the
    // fabric), then polls each completion flag in dispatch order.
    std::vector<cpu::CpuOp> prog;
    prog.push_back(cpu::Call{[this, &sys, &res] {
        res.start = sys.sim().now();
        for (const PendingGemm& p : pending_) {
            sys.store().write_obj(p.desc, p.cmd);
        }
    }});
    for (const PendingGemm& p : pending_) {
        prog.push_back(cpu::MmioWrite{doorbell_addr(sys, p.device), p.desc});
    }
    // Fault runs bound each completion poll by the plan's job timeout so
    // one dead endpoint cannot wedge the whole batch.
    double job_timeout_ns = 0.0;
    const FaultInjector* fi = sys.sim().fault_injector();
    if (fi != nullptr) {
        job_timeout_ns = fi->plan().job_timeout_ns;
    }
    for (const PendingGemm& p : pending_) {
        prog.push_back(cpu::PollFlag{p.flag, p.cmd.flag_value,
                                     job_timeout_ns});
    }
    prog.push_back(cpu::Call{[&sys, &res] { res.end = sys.sim().now(); }});

    sys.host_cpu().run_program(std::move(prog), [&sys] {
        sys.sim().request_exit("dispatched gemms complete");
    });
    if (!restore_.empty()) {
        sys.sim().restore(std::exchange(restore_, {}));
    }
    const RunResult rr = run_with_stats_flush(sys, "run_dispatched");
    if (rr.cause == ExitCause::checkpointed) {
        res.checkpointed = true;
        res.end = rr.end_tick;
        pending_.clear();
        return res;
    }
    if (fi == nullptr) {
        // Liveness: a clean run that drains with the program unfinished is
        // a deadlock — report who still holds work instead of hanging.
        ensure(rr.cause == ExitCause::exit_requested,
               "GEMM run deadlocked: simulation drained at tick ",
               rr.end_tick, " with jobs outstanding; component occupancy:\n",
               sys.sim().occupancy_report());
    } else if (rr.cause != ExitCause::exit_requested) {
        // Graceful degradation: a fault run that drains mid-program still
        // reports per-job outcomes below (the flags tell timeouts apart).
        res.end = rr.end_tick;
    }

    for (std::size_t i = 0; i < pending_.size(); ++i) {
        const PendingGemm& p = pending_[i];
        // The flag itself is the ground truth for per-job success: a
        // timed-out poll leaves it unset while completed devices posted
        // theirs.
        const auto flag = sys.store().read_obj<std::uint64_t>(p.flag);
        if (flag != p.cmd.flag_value) {
            res.devices[i].status = JobStatus::timed_out;
            continue; // no done tick, no verify: the job never finished
        }
        res.devices[i].done =
            sys.accelerator(p.device).last_complete_tick();
        res.devices[i].dma_bytes =
            dma_bytes(sys, p.device) - dma_before[i];
        if (p.verify) {
            res.devices[i].mismatches =
                workload::gemm_check(sys.store(), p.spec, p.c, p.golden);
            res.devices[i].verified = res.devices[i].mismatches == 0;
        }
    }
    pending_.clear();
    return res;
}

std::string Runner::health_summary() const
{
    auto state_name = [](EndpointHealth h) {
        switch (h) {
        case EndpointHealth::healthy:
            return "healthy";
        case EndpointHealth::degraded:
            return "degraded";
        case EndpointHealth::quarantined:
            return "quarantined";
        }
        return "?";
    };
    std::string out = "endpoint health:\n";
    for (std::size_t ep = 0; ep < health_.size(); ++ep) {
        const EpHealth& h = health_[ep];
        out += "  ep" + std::to_string(ep) + ": " + state_name(h.state) +
               ", failures=" + std::to_string(h.failures_total) +
               " (consecutive " + std::to_string(h.consecutive_failures) +
               "), successes=" + std::to_string(h.successes_total) +
               " (consecutive " + std::to_string(h.consecutive_successes) +
               ")\n";
    }
    return out;
}

MultiGemmResult Runner::run_failover(const FaultPlan& plan)
{
    System& sys = *sys_;
    const std::size_t n_eps = sys.device_count();
    if (fleet_ == nullptr) {
        fleet_ = std::make_unique<FleetStats>(sys.stats());
    }
    if (health_.size() < n_eps) {
        health_.resize(n_eps);
    }

    MultiGemmResult res;
    res.devices.resize(pending_.size());
    for (std::size_t i = 0; i < pending_.size(); ++i) {
        res.devices[i].device = pending_[i].device;
        res.devices[i].spec = pending_[i].spec;
    }

    // Jobs awaiting dispatch, in job order (deterministic round shapes).
    std::vector<std::size_t> backlog(pending_.size());
    for (std::size_t i = 0; i < pending_.size(); ++i) {
        backlog[i] = i;
    }
    unsigned redispatch_budget = plan.fleet_retry_budget;
    bool first_round = true;

    auto fail_job = [&](std::size_t job) {
        res.devices[job].status = JobStatus::failed;
        ++fleet_->failures;
    };

    // Pick an endpoint for `job` this round. Returns the endpoint index,
    // -1 when the job must wait for a later round (its candidates are
    // claimed), or -2 when no endpoint can ever take it (pinned to a
    // quarantined device).
    auto pick_endpoint = [&](std::size_t job,
                             const std::vector<bool>& claimed)
        -> std::ptrdiff_t {
        const PendingGemm& p = pending_[job];
        if (p.place == Placement::devmem) {
            // Operands live in the original device's memory: pinned.
            if (health_[p.device].state == EndpointHealth::quarantined) {
                return -2;
            }
            return claimed[p.device]
                       ? -1
                       : static_cast<std::ptrdiff_t>(p.device);
        }
        const bool first_attempt = res.devices[job].attempts.empty();
        if (first_attempt &&
            health_[p.device].state != EndpointHealth::quarantined &&
            !claimed[p.device]) {
            return static_cast<std::ptrdiff_t>(p.device);
        }
        // Re-dispatch (or displaced first attempt): least-loaded healthy
        // endpoint, falling back to degraded (least_loaded ties break by
        // lowest index — see its contract note).
        for (const EndpointHealth want :
             {EndpointHealth::healthy, EndpointHealth::degraded}) {
            const std::ptrdiff_t best = least_loaded(health_, claimed, want);
            if (best >= 0) {
                return best;
            }
        }
        return -1; // usable endpoints exist but are claimed this round
    };

    while (!backlog.empty()) {
        bool any_usable = false;
        for (std::size_t ep = 0; ep < n_eps; ++ep) {
            any_usable |=
                health_[ep].state != EndpointHealth::quarantined;
        }
        ensure(any_usable, "fleet stalled: every endpoint is quarantined "
                           "with ",
               backlog.size(), " job(s) outstanding\n", health_summary(),
               "component occupancy:\n", sys.sim().occupancy_report());

        // Claim endpoints for this round: at most one job per endpoint, so
        // per-device DMA stat deltas attribute cleanly.
        struct Slot {
            std::size_t job;
            std::size_t ep;
        };
        std::vector<Slot> round;
        std::vector<bool> claimed(n_eps, false);
        std::vector<std::size_t> waiting;
        for (std::size_t job : backlog) {
            const std::ptrdiff_t ep = pick_endpoint(job, claimed);
            if (ep >= 0) {
                claimed[static_cast<std::size_t>(ep)] = true;
                round.push_back(Slot{job, static_cast<std::size_t>(ep)});
            } else if (ep == -1) {
                waiting.push_back(job);
            } else {
                fail_job(job); // pinned to a quarantined endpoint
            }
        }
        if (round.empty()) {
            // Nothing can run now or ever (the -1 case needs a claim, and
            // nothing claimed): abandon what's left.
            for (std::size_t job : waiting) {
                fail_job(job);
            }
            break;
        }
        ++fleet_->rounds;

        std::vector<std::uint64_t> dma_before(round.size());
        for (std::size_t s = 0; s < round.size(); ++s) {
            dma_before[s] = dma_bytes(sys, round[s].ep);
        }

        Tick round_start = 0;
        Tick round_end = 0;
        std::vector<cpu::CpuOp> prog;
        prog.push_back(cpu::Call{[this, &sys, &res, &round_start,
                                  first_round] {
            round_start = sys.sim().now();
            if (first_round) {
                res.start = round_start;
                for (const PendingGemm& p : pending_) {
                    sys.store().write_obj(p.desc, p.cmd);
                }
            }
        }});
        for (const Slot& s : round) {
            prog.push_back(cpu::MmioWrite{doorbell_addr(sys, s.ep),
                                          pending_[s.job].desc});
        }
        for (const Slot& s : round) {
            prog.push_back(cpu::PollFlag{pending_[s.job].flag,
                                         pending_[s.job].cmd.flag_value,
                                         plan.job_timeout_ns});
        }
        prog.push_back(cpu::Call{
            [&sys, &round_end] { round_end = sys.sim().now(); }});

        sys.host_cpu().run_program(std::move(prog), [&sys] {
            sys.sim().request_exit("dispatch round complete");
        });
        if (first_round && !restore_.empty()) {
            sys.sim().restore(std::exchange(restore_, {}));
        }
        first_round = false;

        RunResult rr;
        try {
            rr = run_with_stats_flush(sys, "run_dispatched(failover)");
        } catch (const SimError&) {
            std::cerr << health_summary();
            throw;
        }
        if (rr.cause == ExitCause::checkpointed) {
            res.checkpointed = true;
            res.end = rr.end_tick;
            pending_.clear();
            return res;
        }
        if (round_end == 0) {
            round_end = rr.end_tick; // drained mid-program (graceful path)
        }
        res.end = round_end;

        // Evaluate the round: the functional flag is ground truth (it is
        // only ever written at device run_complete()).
        std::vector<std::size_t> next_backlog;
        for (std::size_t s = 0; s < round.size(); ++s) {
            const Slot& slot = round[s];
            const PendingGemm& p = pending_[slot.job];
            DeviceGemmResult& d = res.devices[slot.job];
            const auto flag = sys.store().read_obj<std::uint64_t>(p.flag);
            const bool done = flag == p.cmd.flag_value;

            d.dma_bytes += dma_bytes(sys, slot.ep) - dma_before[s];
            d.attempts.push_back(JobAttempt{
                slot.ep, done ? JobStatus::ok : JobStatus::timed_out,
                round_start, round_end});

            if (done) {
                d.status = JobStatus::ok;
                d.done = sys.accelerator(slot.ep).last_complete_tick();
                health_success(slot.ep, plan);
                continue;
            }

            // Failure: update health with hysteresis, then reset the
            // endpoint (health_failure issues the FLR that drains whatever
            // wedged it and re-arms the link credits).
            health_failure(slot.ep, plan);
            ++res.flrs;

            if (d.attempts.size() >=
                static_cast<std::size_t>(plan.job_max_attempts)) {
                d.status = JobStatus::failed;
                ++fleet_->failures;
            } else if (redispatch_budget == 0) {
                d.status = JobStatus::failed;
                ++fleet_->failures;
            } else {
                --redispatch_budget;
                ++fleet_->redispatches;
                ++res.redispatches;
                next_backlog.push_back(slot.job);
            }
        }
        // Preserve job order: waiting jobs first (they were dispatched
        // earlier), then this round's retries.
        waiting.insert(waiting.end(), next_backlog.begin(),
                       next_backlog.end());
        std::sort(waiting.begin(), waiting.end());
        backlog = std::move(waiting);
    }

    res.health.resize(n_eps);
    for (std::size_t ep = 0; ep < n_eps; ++ep) {
        res.health[ep] = health_[ep].state;
    }
    for (std::size_t i = 0; i < pending_.size(); ++i) {
        const PendingGemm& p = pending_[i];
        DeviceGemmResult& d = res.devices[i];
        if (d.status != JobStatus::ok) {
            continue;
        }
        if (p.verify) {
            d.mismatches =
                workload::gemm_check(sys.store(), p.spec, p.c, p.golden);
            d.verified = d.mismatches == 0;
        }
    }
    pending_.clear();
    return res;
}

std::ptrdiff_t Runner::least_loaded(const std::vector<EpHealth>& health,
                                    const std::vector<bool>& claimed,
                                    EndpointHealth want)
{
    // Ascending-index scan with a strict `<`: ties on load resolve to the
    // lowest endpoint index (topology order), so the pick is a pure
    // function of the health table — identical for every ACCESYS_THREADS.
    std::ptrdiff_t best = -1;
    std::uint64_t best_load = 0;
    for (std::size_t ep = 0; ep < health.size(); ++ep) {
        if (health[ep].state != want || claimed[ep]) {
            continue;
        }
        const std::uint64_t load =
            health[ep].failures_total + health[ep].successes_total;
        if (best < 0 || load < best_load) {
            best = static_cast<std::ptrdiff_t>(ep);
            best_load = load;
        }
    }
    return best;
}

void Runner::health_success(std::size_t ep, const FaultPlan& plan)
{
    EpHealth& h = health_[ep];
    h.consecutive_failures = 0;
    ++h.consecutive_successes;
    ++h.successes_total;
    if (h.state == EndpointHealth::degraded &&
        h.consecutive_successes >= plan.rehab_successes) {
        h.state = EndpointHealth::healthy;
        ++fleet_->rehabs;
    }
}

void Runner::health_failure(std::size_t ep, const FaultPlan& plan)
{
    EpHealth& h = health_[ep];
    h.consecutive_successes = 0;
    ++h.consecutive_failures;
    ++h.failures_total;
    if (h.state == EndpointHealth::healthy) {
        h.state = EndpointHealth::degraded;
        ++fleet_->degrades;
    }
    if (h.state == EndpointHealth::degraded &&
        h.consecutive_failures >= plan.quarantine_failures) {
        h.state = EndpointHealth::quarantined;
        ++fleet_->quarantines;
    }
    sys_->accelerator(ep).begin_flr(ticks_from_ns(plan.flr_ns));
    ++fleet_->flrs;
}

void Runner::serialize_serving(Ckpt& ar)
{
    std::uint8_t active = (serve_ != nullptr && serve_->active) ? 1 : 0;
    ar.pod(active);
    if (active == 0) {
        if (ar.loading() && serve_ != nullptr) {
            serve_->active = false;
        }
        return;
    }
    if (ar.loading() && serve_ == nullptr) {
        serve_ = std::make_unique<ServeState>();
    }
    ServeState& st = *serve_;
    st.active = true;
    ar.io(st.round_kind, st.idle_cycles, st.est_service_ticks,
          st.retry_budget, st.state, st.start, st.rounds, st.idle_rounds,
          st.redispatches, st.flrs);
    ar.pod_vec(st.ep_flag_value);
    ar.pod_vec(st.slots);
    ar.pod_vec(st.queue);
    ar.pod_vec(health_);
    std::uint64_t n = st.jobs.size();
    ar.pod(n);
    if (ar.loading()) {
        st.jobs.assign(static_cast<std::size_t>(n), ServedJob{});
    }
    for (ServedJob& j : st.jobs) {
        ar.io(j.id, j.tenant, j.spec, j.arrival, j.first_dispatch,
              j.last_dispatch, j.done, j.status, j.verified, j.mismatches);
        ar.pod_vec(j.attempts);
    }
}

namespace {

/// p-th percentile of `v` (sorted in place); the same index formula the
/// benches use, so reported numbers line up.
double percentile(std::vector<double>& v, std::size_t p)
{
    if (v.empty()) {
        return 0.0;
    }
    std::sort(v.begin(), v.end());
    const std::size_t idx = v.size() * p / 100;
    return v[std::min(idx, v.size() - 1)];
}

} // namespace

ServingResult Runner::serve(workload::RequestGen& gen,
                            const ServingConfig& scfg)
{
    System& sys = *sys_;
    scfg.validate();
    ensure(pending_.empty(), "serve with ", pending_.size(),
           " GEMMs already dispatched; run them first");
    ensure(&gen.sim() == &sys.sim(),
           "RequestGen belongs to a different simulator");

    const std::size_t n_eps = sys.device_count();
    const auto& tenants = gen.config().tenants;
    const std::size_t n_tenants = tenants.size();

    // Compose with the active fault model exactly like run_dispatched():
    // the plan supplies timeouts, attempt counts and health thresholds. A
    // missing injector means the defaults (no timeout, one attempt).
    FaultPlan plan;
    const FaultInjector* fi = sys.sim().fault_injector();
    if (fi != nullptr) {
        plan = fi->plan();
    }

    if (health_.size() < n_eps) {
        health_.resize(n_eps);
    }
    if (fleet_ == nullptr) {
        fleet_ = std::make_unique<FleetStats>(sys.stats());
    }
    if (serving_ == nullptr) {
        serving_ = std::make_unique<ServingStats>(sys.stats());
    }
    for (std::size_t t = 0; t < n_tenants; ++t) {
        if (t < serving_->tenants.size()) {
            ensure(serving_->tenants[t]->group.prefix() ==
                       "runner.serving." + tenants[t].name,
                   "serve() tenant list changed between runs on one Runner");
        } else {
            serving_->tenants.push_back(
                std::make_unique<ServingStats::Tenant>(sys.stats(),
                                                       tenants[t].name));
        }
    }

    ServingResult res;
    if (gen.total() == 0) {
        res.start = res.end = sys.sim().now();
        res.tenants.resize(n_tenants);
        for (std::size_t t = 0; t < n_tenants; ++t) {
            res.tenants[t].name = tenants[t].name;
        }
        return res;
    }

    // Per-endpoint operand slots sized for the largest shape anywhere in
    // the schedule: operand memory is bounded no matter how long the
    // overload lasts (the admission queue holds ids, not buffers).
    std::uint64_t max_a = 0;
    std::uint64_t max_b = 0;
    std::uint64_t max_c = 0;
    for (const workload::Request& r : gen.schedule()) {
        max_a = std::max(max_a, r.spec.a_bytes());
        max_b = std::max(max_b, r.spec.b_bytes());
        max_c = std::max(max_c, r.spec.c_bytes());
    }
    struct EpSlot {
        Addr a = 0;
        Addr b = 0;
        Addr c = 0;
        Addr flag = 0;
        Addr desc = 0;
    };
    std::vector<EpSlot> slot_mem(n_eps);
    for (std::size_t ep = 0; ep < n_eps; ++ep) {
        EpSlot& s = slot_mem[ep];
        s.a = sys.alloc_host(max_a);
        s.b = sys.alloc_host(max_b);
        s.c = sys.alloc_host(max_c);
        s.flag = sys.alloc_host(64);
        s.desc = sys.alloc_host(64);
        sys.map_host_pages(s.a, max_a);
        sys.map_host_pages(s.b, max_b);
        sys.map_host_pages(s.c, max_c);
        sys.map_host_pages(s.flag, 8);
        sys.map_host_pages(s.desc, sizeof(accel::GemmCommand));
    }

    if (!serving_hook_armed_) {
        serving_hook_armed_ = true;
        sys.sim().add_ckpt_hook("runner.serving",
                                [this](Ckpt& ar) { serialize_serving(ar); });
    }

    const bool restoring = !restore_.empty();
    serve_ = std::make_unique<ServeState>();
    if (restoring) {
        // Peek the serving section out of the checkpoint before anything
        // runs: the saved in-flight round must be re-staged (identical
        // program shape, identical operand bytes) before Simulator::
        // restore() overwrites the CPU's pc and every component on top.
        Ckpt ar = Ckpt::load_file(restore_, sys.sim().config_hash());
        ar.begin_section("runner.serving");
        serialize_serving(ar);
        ar.end_section();
        ensure(serve_->active && serve_->round_kind != 0,
               "restored checkpoint holds no in-flight serving round");
    } else {
        serve_->active = true;
        serve_->retry_budget = plan.fleet_retry_budget;
        serve_->ep_flag_value.assign(n_eps, 0);
        serve_->start = sys.sim().now();
    }
    ServeState& st = *serve_;

    std::vector<std::size_t> queued_by_tenant(n_tenants, 0);
    for (const std::uint64_t id : st.queue) {
        ++queued_by_tenant[st.jobs[id].tenant];
    }

    // In-flight goldens, one per endpoint (slots are reused every round so
    // completed jobs verify immediately at round evaluation).
    std::vector<std::vector<std::int32_t>> golden(n_eps);
    auto round_end_tick = std::make_shared<Tick>(0);

    auto note_shed = [&](std::uint64_t id) {
        ServedJob& j = st.jobs[id];
        j.status = JobStatus::shed;
        ++serving_->shed;
        ++serving_->tenants[j.tenant]->shed;
        --queued_by_tenant[j.tenant];
    };

    auto exit_cb = [&sys] { sys.sim().request_exit("serving round done"); };

    // Materialize the round described by st.slots: operands, descriptors
    // and the driver program (descriptor-fill Call, doorbells, bounded
    // polls, end-sample Call). With `restaging` the dispatch-tick ledger
    // fields are left alone — the checkpoint already holds them, and this
    // fresh process' pre-restore now() would corrupt the SLO split.
    auto stage_dispatch = [&](bool restaging) {
        const Tick dispatch_tick = sys.sim().now();
        std::vector<std::pair<Addr, accel::GemmCommand>> descs;
        for (const ServeSlot& s : st.slots) {
            ServedJob& j = st.jobs[s.job];
            const EpSlot& mem = slot_mem[s.ep];
            workload::init_gemm_data(sys.store(), j.spec, mem.a, mem.b);
            if (scfg.verify) {
                golden[s.ep] =
                    workload::gemm_golden(sys.store(), j.spec, mem.a, mem.b);
            }
            accel::GemmCommand cmd;
            cmd.flags = scfg.verify ? accel::kCmdVerify : 0U;
            cmd.m = j.spec.m;
            cmd.n = j.spec.n;
            cmd.k = j.spec.k;
            cmd.addr_a = mem.a;
            cmd.addr_b = mem.b;
            cmd.addr_c = mem.c;
            cmd.flag_addr = mem.flag;
            cmd.flag_value = s.flag_value;
            descs.emplace_back(mem.desc, cmd);
            if (!restaging) {
                if (j.attempts.empty()) {
                    j.first_dispatch = dispatch_tick;
                }
                j.last_dispatch = dispatch_tick;
            }
        }
        *round_end_tick = 0;
        std::vector<cpu::CpuOp> prog;
        prog.push_back(cpu::Call{[&sys, descs] {
            for (const auto& [addr, cmd] : descs) {
                sys.store().write_obj(addr, cmd);
            }
        }});
        for (const ServeSlot& s : st.slots) {
            prog.push_back(
                cpu::MmioWrite{doorbell_addr(sys, s.ep), slot_mem[s.ep].desc});
        }
        for (const ServeSlot& s : st.slots) {
            prog.push_back(cpu::PollFlag{slot_mem[s.ep].flag, s.flag_value,
                                         plan.job_timeout_ns});
        }
        prog.push_back(cpu::Call{[&sys, round_end_tick] {
            *round_end_tick = sys.sim().now();
        }});
        sys.host_cpu().run_program(std::move(prog), exit_cb);
    };

    // Empty-queue round: burn CPU cycles until just past the next arrival
    // so take_until() picks it up at the round boundary. The round-end
    // sample happens inside the program for the same reason as above.
    auto stage_idle = [&](bool restaging) {
        if (!restaging) {
            const Tick target = gen.next_arrival_tick();
            ensure(target != kMaxTick, "idle serving round with no arrival");
            const Tick now = sys.sim().now();
            const Tick period =
                period_from_ghz(sys.config().cpu.freq_ghz);
            st.idle_cycles =
                (target > now ? (target - now) / period : 0) + 2;
        }
        *round_end_tick = 0;
        std::vector<cpu::CpuOp> prog;
        prog.push_back(cpu::Delay{st.idle_cycles});
        prog.push_back(cpu::Call{[&sys, round_end_tick] {
            *round_end_tick = sys.sim().now();
        }});
        sys.host_cpu().run_program(std::move(prog), exit_cb);
    };

    // Fill st.slots from the queue head: deadline shedding first (policy
    // deadline_aware only), then least-loaded healthy endpoints, falling
    // back to degraded — the same selection (and the same lowest-index
    // tie-break) as run_failover re-dispatch. Returns false with an empty
    // queue (idle) and diagnoses a fully-quarantined fleet loudly.
    auto choose_slots = [&]() -> bool {
        st.slots.clear();
        std::vector<bool> claimed(n_eps, false);
        const Tick now = sys.sim().now();
        while (!st.queue.empty() && st.slots.size() < n_eps) {
            if (scfg.policy == ShedPolicy::deadline_aware &&
                st.est_service_ticks > 0) {
                while (!st.queue.empty()) {
                    const std::uint64_t id = st.queue.front();
                    const double dl = tenants[st.jobs[id].tenant].deadline_ns;
                    if (dl <= 0.0) {
                        break;
                    }
                    const Tick deadline =
                        st.jobs[id].arrival + ticks_from_ns(dl);
                    if (now + st.est_service_ticks <= deadline) {
                        break;
                    }
                    st.queue.erase(st.queue.begin());
                    note_shed(id);
                }
                if (st.queue.empty()) {
                    break;
                }
            }
            std::ptrdiff_t ep = -1;
            for (const EndpointHealth want :
                 {EndpointHealth::healthy, EndpointHealth::degraded}) {
                ep = least_loaded(health_, claimed, want);
                if (ep >= 0) {
                    break;
                }
            }
            if (ep < 0) {
                break; // every usable endpoint is claimed (or none usable)
            }
            const std::uint64_t id = st.queue.front();
            st.queue.erase(st.queue.begin());
            --queued_by_tenant[st.jobs[id].tenant];
            claimed[static_cast<std::size_t>(ep)] = true;
            st.slots.push_back(ServeSlot{
                id, static_cast<std::uint64_t>(ep),
                ++st.ep_flag_value[static_cast<std::size_t>(ep)]});
        }
        if (st.slots.empty() && !st.queue.empty()) {
            bool any_usable = false;
            for (std::size_t ep = 0; ep < n_eps; ++ep) {
                any_usable |=
                    health_[ep].state != EndpointHealth::quarantined;
            }
            ensure(any_usable,
                   "serving stalled: every endpoint is quarantined with ",
                   st.queue.size(), " job(s) queued\n", health_summary(),
                   "component occupancy:\n", sys.sim().occupancy_report());
        }
        return !st.slots.empty();
    };

    // Admission: every offered request enters the ledger and leaves it as
    // exactly one of admitted / rejected; a later shed or failure keeps
    // the entry — nothing is ever silently dropped.
    auto admit = [&](const workload::Request* r) {
        ensure(st.jobs.size() == r->id, "request ids must be dense");
        ServedJob j;
        j.id = r->id;
        j.tenant = r->tenant;
        j.spec = r->spec;
        j.arrival = r->arrival;
        st.jobs.push_back(std::move(j));
        ServingStats::Tenant& ts = *serving_->tenants[r->tenant];
        ++serving_->offered;
        ++ts.offered;
        const workload::TenantSpec& tn = tenants[r->tenant];
        if (tn.queue_quota > 0 &&
            queued_by_tenant[r->tenant] >= tn.queue_quota) {
            st.jobs.back().status = JobStatus::rejected;
            ++serving_->rejected;
            ++ts.rejected;
            return;
        }
        if (st.queue.size() >= scfg.queue_capacity) {
            if (scfg.policy == ShedPolicy::shed_oldest) {
                const std::uint64_t victim = st.queue.front();
                st.queue.erase(st.queue.begin());
                note_shed(victim);
            } else {
                st.jobs.back().status = JobStatus::rejected;
                ++serving_->rejected;
                ++ts.rejected;
                return;
            }
        }
        ++serving_->admitted;
        ++ts.admitted;
        st.queue.push_back(r->id);
        ++queued_by_tenant[r->tenant];
    };

    auto update_state = [&]() {
        const std::size_t depth = st.queue.size();
        ServingState next = ServingState::normal;
        if (depth >= scfg.shed_mark()) {
            next = ServingState::shedding;
        } else if (depth >= scfg.throttle_mark()) {
            next = ServingState::throttled;
        }
        if (next != static_cast<ServingState>(st.state)) {
            if (next == ServingState::throttled) {
                ++serving_->throttle_enters;
            }
            if (next == ServingState::shedding) {
                ++serving_->shed_enters;
            }
            st.state = static_cast<std::uint8_t>(next);
            serving_->state.set(static_cast<double>(st.state));
        }
        serving_->queue_depth.sample(static_cast<double>(depth));
    };

    bool staged = false;
    if (restoring) {
        if (st.round_kind == 1) {
            stage_dispatch(true);
        } else {
            stage_idle(true);
        }
        sys.sim().restore(std::exchange(restore_, {}));
        staged = true;
    }

    res.end = st.start;
    for (;;) {
        if (!staged) {
            if (choose_slots()) {
                st.round_kind = 1;
                stage_dispatch(false);
            } else if (!gen.exhausted()) {
                st.round_kind = 2;
                stage_idle(false);
            } else {
                break; // queue drained (or fully shed), schedule exhausted
            }
        }
        staged = false;

        RunResult rr;
        try {
            rr = run_with_stats_flush(sys, "serve");
        } catch (const SimError&) {
            std::cerr << health_summary();
            throw;
        }
        if (rr.cause == ExitCause::checkpointed) {
            res.checkpointed = true;
            res.start = st.start;
            res.end = rr.end_tick;
            res.offered = st.jobs.size();
            for (const ServedJob& j : st.jobs) {
                res.rejected += j.status == JobStatus::rejected;
                res.shed += j.status == JobStatus::shed;
                res.completed += j.status == JobStatus::ok;
                res.failed += j.status == JobStatus::failed;
            }
            res.admitted = res.offered - res.rejected;
            res.rounds = st.rounds;
            res.idle_rounds = st.idle_rounds;
            res.redispatches = st.redispatches;
            res.flrs = st.flrs;
            return res;
        }
        if (fi == nullptr) {
            ensure(rr.cause == ExitCause::exit_requested,
                   "serving round deadlocked: simulation drained at tick ",
                   rr.end_tick,
                   " with jobs outstanding; component occupancy:\n",
                   sys.sim().occupancy_report());
        }
        Tick round_end = *round_end_tick;
        if (round_end == 0) {
            round_end = rr.end_tick; // drained mid-program (fault path)
        }
        res.end = round_end;

        if (st.round_kind == 1) {
            ++st.rounds;
            ++serving_->rounds;
            ++fleet_->rounds;
        } else {
            ++st.idle_rounds;
            ++serving_->idle_rounds;
        }

        std::vector<std::uint64_t> retries;
        if (st.round_kind == 1) {
            for (const ServeSlot& s : st.slots) {
                ServedJob& j = st.jobs[s.job];
                ServingStats::Tenant& ts = *serving_->tenants[j.tenant];
                const std::size_t ep = static_cast<std::size_t>(s.ep);
                const auto flag =
                    sys.store().read_obj<std::uint64_t>(slot_mem[ep].flag);
                const bool done = flag == s.flag_value;
                j.attempts.push_back(JobAttempt{
                    ep, done ? JobStatus::ok : JobStatus::timed_out,
                    j.last_dispatch, round_end});
                if (done) {
                    j.status = JobStatus::ok;
                    j.done = sys.accelerator(ep).last_complete_tick();
                    health_success(ep, plan);
                    if (scfg.verify) {
                        j.mismatches = workload::gemm_check(
                            sys.store(), j.spec, slot_mem[ep].c, golden[ep]);
                        j.verified = j.mismatches == 0;
                        if (!j.verified) {
                            ++serving_->verify_failures;
                        }
                    }
                    const Tick service = j.done - j.last_dispatch;
                    const double queue_ns =
                        ticks_to_ns(j.first_dispatch - j.arrival);
                    const double service_ns = ticks_to_ns(service);
                    const double e2e_ns = ticks_to_ns(j.done - j.arrival);
                    ++serving_->completed;
                    ++ts.completed;
                    serving_->queue_ns.sample(queue_ns);
                    serving_->service_ns.sample(service_ns);
                    serving_->e2e_ns.sample(e2e_ns);
                    ts.queue_ns.sample(queue_ns);
                    ts.service_ns.sample(service_ns);
                    ts.e2e_ns.sample(e2e_ns);
                    // EMA of observed service time feeds deadline shedding.
                    st.est_service_ticks =
                        st.est_service_ticks == 0
                            ? service
                            : (st.est_service_ticks * 7 + service) / 8;
                } else {
                    health_failure(ep, plan);
                    ++st.flrs;
                    if (j.attempts.size() <
                            static_cast<std::size_t>(plan.job_max_attempts) &&
                        st.retry_budget > 0) {
                        --st.retry_budget;
                        ++st.redispatches;
                        ++serving_->retries;
                        ++fleet_->redispatches;
                        retries.push_back(s.job);
                    } else {
                        j.status = JobStatus::failed;
                        ++serving_->failed;
                        ++ts.failed;
                        ++fleet_->failures;
                    }
                }
            }
            st.slots.clear();
        }

        // Drain arrivals up to the round boundary (a tick sampled inside
        // the program, so serial and parallel runs agree — see the
        // RequestGen determinism note), then put retries back at the
        // front: they are older than anything that arrived this round.
        for (const workload::Request* r : gen.take_until(round_end)) {
            admit(r);
        }
        for (auto it = retries.rbegin(); it != retries.rend(); ++it) {
            st.queue.insert(st.queue.begin(), *it);
            ++queued_by_tenant[st.jobs[*it].tenant];
        }
        update_state();
        st.round_kind = 0;
    }

    // Finalize: the run is over, the ledger is total (no pending entries),
    // and the accounting identity must hold exactly.
    st.active = false;
    res.start = st.start;
    res.rounds = st.rounds;
    res.idle_rounds = st.idle_rounds;
    res.redispatches = st.redispatches;
    res.flrs = st.flrs;
    res.final_state = static_cast<ServingState>(st.state);
    res.health.resize(n_eps);
    for (std::size_t ep = 0; ep < n_eps; ++ep) {
        res.health[ep] = health_[ep].state;
    }
    res.jobs = std::move(st.jobs);

    res.tenants.resize(n_tenants);
    std::vector<std::vector<double>> qv(n_tenants);
    std::vector<std::vector<double>> sv(n_tenants);
    std::vector<std::vector<double>> ev(n_tenants);
    for (const ServedJob& j : res.jobs) {
        ensure(j.status != JobStatus::pending && j.status != JobStatus::timed_out,
               "serving ledger entry ", j.id, " left unaccounted");
        TenantSlo& slo = res.tenants[j.tenant];
        ++slo.offered;
        switch (j.status) {
        case JobStatus::ok:
            ++slo.admitted;
            ++slo.completed;
            qv[j.tenant].push_back(ticks_to_ns(j.first_dispatch - j.arrival));
            sv[j.tenant].push_back(ticks_to_ns(j.done - j.last_dispatch));
            ev[j.tenant].push_back(ticks_to_ns(j.done - j.arrival));
            break;
        case JobStatus::failed:
            ++slo.admitted;
            ++slo.failed;
            break;
        case JobStatus::shed:
            ++slo.admitted;
            ++slo.shed;
            break;
        case JobStatus::rejected:
            ++slo.rejected;
            break;
        default:
            break;
        }
    }
    const double horizon_s = ticks_to_sec(res.elapsed());
    for (std::size_t t = 0; t < n_tenants; ++t) {
        TenantSlo& slo = res.tenants[t];
        slo.name = tenants[t].name;
        slo.p50_queue_ns = percentile(qv[t], 50);
        slo.p99_queue_ns = percentile(qv[t], 99);
        slo.p50_service_ns = percentile(sv[t], 50);
        slo.p99_service_ns = percentile(sv[t], 99);
        slo.p50_e2e_ns = percentile(ev[t], 50);
        slo.p99_e2e_ns = percentile(ev[t], 99);
        slo.goodput_jobs_per_s =
            horizon_s > 0.0
                ? static_cast<double>(slo.completed) / horizon_s
                : 0.0;
        res.offered += slo.offered;
        res.admitted += slo.admitted;
        res.rejected += slo.rejected;
        res.shed += slo.shed;
        res.completed += slo.completed;
        res.failed += slo.failed;
        ServingStats::Tenant& ts = *serving_->tenants[t];
        ts.p50_queue_ns.set(slo.p50_queue_ns);
        ts.p99_queue_ns.set(slo.p99_queue_ns);
        ts.p50_service_ns.set(slo.p50_service_ns);
        ts.p99_service_ns.set(slo.p99_service_ns);
        ts.p50_e2e_ns.set(slo.p50_e2e_ns);
        ts.p99_e2e_ns.set(slo.p99_e2e_ns);
        ts.goodput.set(slo.goodput_jobs_per_s);
    }
    serving_->goodput.set(res.goodput_jobs_per_s());
    ensure(res.accounted(), "serving accounting broken: offered ",
           res.offered, " != admitted ", res.admitted, " + rejected ",
           res.rejected, " (or completed ", res.completed, " + shed ",
           res.shed, " + failed ", res.failed, " != admitted)");
    return res;
}

void Runner::restore_dispatched(const std::string& path)
{
    System& sys = *sys_;
    ensure(!pending_.empty(), "restore_dispatched with nothing dispatched");

    // Same op shape as run_dispatched(): one descriptor-fill Call, one
    // doorbell per job, one poll per job, one end-sample Call. The Calls
    // are stubs — the snapshot's restored store already holds the
    // descriptors, and nothing here will read the result fields.
    std::vector<cpu::CpuOp> prog;
    prog.push_back(cpu::Call{[] {}});
    for (const PendingGemm& p : pending_) {
        prog.push_back(cpu::MmioWrite{doorbell_addr(sys, p.device), p.desc});
    }
    double job_timeout_ns = 0.0;
    const FaultInjector* fi = sys.sim().fault_injector();
    if (fi != nullptr) {
        job_timeout_ns = fi->plan().job_timeout_ns;
    }
    for (const PendingGemm& p : pending_) {
        prog.push_back(cpu::PollFlag{p.flag, p.cmd.flag_value,
                                     job_timeout_ns});
    }
    prog.push_back(cpu::Call{[] {}});

    sys.host_cpu().run_program(std::move(prog), [&sys] {
        sys.sim().request_exit("dispatched gemms complete");
    });
    sys.sim().restore(path);
    pending_.clear();
}

VitRunResult Runner::run_vit(const workload::VitConfig& cfg, Placement place)
{
    System& sys = *sys_;
    const auto ops = workload::lower_vit(cfg);

    // Activation ping-pong buffers sized for the largest operand of any op.
    std::uint64_t act_a_bytes = 0;
    std::uint64_t act_c_bytes = 0;
    for (const auto& op : ops) {
        if (op.kind == workload::VitOp::Kind::gemm) {
            act_a_bytes = std::max(act_a_bytes, op.a_bytes());
            act_c_bytes = std::max(act_c_bytes, op.c_bytes());
        } else {
            act_c_bytes = std::max(act_c_bytes, op.bytes_in);
            act_a_bytes = std::max(act_a_bytes, op.bytes_out);
        }
    }

    const Addr act_a = sys.alloc(place, act_a_bytes);
    const Addr act_c = sys.alloc(place, act_c_bytes);
    const Addr flag = sys.alloc_host(64);
    const Addr desc = sys.alloc_host(64);
    sys.map_host_pages(flag, 8);
    sys.map_host_pages(desc, sizeof(accel::GemmCommand));
    if (place == Placement::host) {
        sys.map_host_pages(act_a, act_a_bytes);
        sys.map_host_pages(act_c, act_c_bytes);
    }

    // Distinct weights per GEMM (real models never reuse them).
    std::vector<Addr> weights;
    weights.reserve(ops.size());
    for (const auto& op : ops) {
        if (op.kind == workload::VitOp::Kind::gemm) {
            const Addr w = sys.alloc(place, op.b_bytes());
            if (place == Placement::host) {
                sys.map_host_pages(w, op.b_bytes());
            }
            weights.push_back(w);
        } else {
            weights.push_back(0);
        }
    }

    VitRunResult res;
    // `mark` lives on the heap: the program outlives this stack frame only
    // within run(), but shared_ptr keeps the lambdas self-contained.
    auto mark = std::make_shared<Tick>(0);

    std::vector<cpu::CpuOp> prog;
    prog.push_back(
        cpu::Call{[&sys, &res] { res.start = sys.sim().now(); }});

    std::uint64_t flag_value = 0;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const auto& op = ops[i];
        if (op.kind == workload::VitOp::Kind::gemm) {
            ++flag_value;
            accel::GemmCommand cmd;
            cmd.flags =
                place == Placement::devmem ? accel::kCmdDataInDevMem : 0U;
            cmd.m = op.m;
            cmd.n = op.n;
            cmd.k = op.k;
            cmd.addr_a = act_a;
            cmd.addr_b = weights[i];
            cmd.addr_c = act_c;
            cmd.flag_addr = flag;
            cmd.flag_value = flag_value;

            prog.push_back(cpu::Call{[&sys, mark, desc, cmd] {
                *mark = sys.sim().now();
                sys.store().write_obj(desc, cmd);
            }});
            prog.push_back(cpu::MmioWrite{doorbell_addr(sys), desc});
            prog.push_back(cpu::PollFlag{flag, flag_value});
            prog.push_back(cpu::Call{[&sys, &res, mark] {
                res.gemm_ticks += sys.sim().now() - *mark;
                ++res.gemm_cmds;
            }});
        } else {
            cpu::VectorOp vop;
            vop.label = op.label;
            vop.in_addr = act_c;
            vop.bytes_in = op.bytes_in;
            vop.out_addr = act_a;
            vop.bytes_out = op.bytes_out;
            vop.alu_ops = op.alu_ops;

            prog.push_back(cpu::Call{
                [&sys, mark] { *mark = sys.sim().now(); }});
            prog.push_back(std::move(vop));
            prog.push_back(cpu::Call{[&sys, &res, mark] {
                res.nongemm_ticks += sys.sim().now() - *mark;
                ++res.vector_ops;
            }});
        }
    }
    prog.push_back(cpu::Call{[&sys, &res] { res.end = sys.sim().now(); }});

    sys.host_cpu().run_program(std::move(prog), [&sys] {
        sys.sim().request_exit("vit complete");
    });
    if (!restore_.empty()) {
        sys.sim().restore(std::exchange(restore_, {}));
    }
    const RunResult rr = run_with_stats_flush(sys, "run_vit");
    if (rr.cause == ExitCause::checkpointed) {
        res.end = rr.end_tick;
        return res;
    }
    ensure(rr.cause == ExitCause::exit_requested,
           "ViT run deadlocked: simulation drained at tick ", rr.end_tick,
           " with jobs outstanding; component occupancy:\n",
           sys.sim().occupancy_report());
    return res;
}

} // namespace accesys::core
