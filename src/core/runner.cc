#include "core/runner.hh"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <iostream>
#include <utility>

#include "accel/command.hh"
#include "sim/env_flags.hh"
#include "sim/fault_injector.hh"

namespace accesys::core {

namespace {

/// Simulator targeted by the signal-checkpoint handler. post_interrupt()
/// is flag writes only, so the handler is async-signal-safe.
std::atomic<Simulator*> g_signal_sim{nullptr};

void on_checkpoint_signal(int)
{
    Simulator* sim = g_signal_sim.load(std::memory_order_relaxed);
    if (sim != nullptr) {
        sim->post_interrupt();
    }
}

} // namespace

void arm_signal_checkpoint(System& sys, std::string path)
{
    if (!env_flags().ckpt) {
        return;
    }
    sys.sim().arm_interrupt_checkpoint(std::move(path));
    g_signal_sim.store(&sys.sim(), std::memory_order_relaxed);
    std::signal(SIGINT, on_checkpoint_signal);
    std::signal(SIGTERM, on_checkpoint_signal);
}

namespace {

/// Run the simulation; if a SimError escapes mid-run, flush a partial
/// stats dump to stderr first so the failure state is diagnosable, then
/// rethrow.
RunResult run_with_stats_flush(System& sys, const char* what)
{
    try {
        return sys.sim().run();
    } catch (const SimError&) {
        std::cerr << "accesys: SimError during " << what << " at tick "
                  << sys.sim().now() << "; partial stats dump follows\n";
        sys.stats().write_text(std::cerr);
        throw;
    }
}

/// The doorbell register's system address for endpoint `idx`.
Addr doorbell_addr(System& sys, std::size_t idx = 0)
{
    return sys.accelerator(idx).params().bar0_base + accel::kRegDoorbell;
}

/// DMA payload bytes endpoint `idx` has moved so far (both directions).
std::uint64_t dma_bytes(System& sys, std::size_t idx)
{
    const std::string& prefix = sys.accelerator(idx).name();
    return static_cast<std::uint64_t>(
        sys.stat(prefix + ".dma.bytes_read") +
        sys.stat(prefix + ".dma.bytes_written"));
}

} // namespace

GemmRunResult Runner::run_gemm(const workload::GemmSpec& spec,
                               Placement place, bool verify)
{
    ensure(pending_.empty(), "run_gemm with ", pending_.size(),
           " GEMMs already dispatched; use run_dispatched()");
    dispatch(0, spec, place, verify);
    const MultiGemmResult multi = run_dispatched();

    GemmRunResult res;
    res.start = multi.start;
    res.end = multi.end;
    res.verified = multi.devices[0].verified;
    res.mismatches = multi.devices[0].mismatches;
    return res;
}

void Runner::dispatch(std::size_t device_idx, const workload::GemmSpec& spec,
                      Placement place, bool verify)
{
    System& sys = *sys_;
    ensure(spec.m > 0 && spec.n > 0 && spec.k > 0, "degenerate GEMM spec");
    ensure(device_idx < sys.device_count(), "dispatch to device ",
           device_idx, " but the system has ", sys.device_count(),
           " endpoints");
    // One GEMM per endpoint per run: per-device DMA accounting reads the
    // device-wide stat delta, which two commands on one device would share.
    for (const PendingGemm& p : pending_) {
        ensure(p.device != device_idx, "device ", device_idx,
               " already has a dispatched GEMM in this batch");
    }

    const Addr a = sys.alloc_on(device_idx, place, spec.a_bytes());
    const Addr bt = sys.alloc_on(device_idx, place, spec.b_bytes());
    const Addr c = sys.alloc_on(device_idx, place, spec.c_bytes());
    const Addr flag = sys.alloc_host(64);
    const Addr desc = sys.alloc_host(64);

    sys.map_host_pages(flag, 8);
    sys.map_host_pages(desc, sizeof(accel::GemmCommand));
    if (place == Placement::host) {
        sys.map_host_pages(a, spec.a_bytes());
        sys.map_host_pages(bt, spec.b_bytes());
        sys.map_host_pages(c, spec.c_bytes());
    }

    PendingGemm p;
    p.device = device_idx;
    p.spec = spec;
    p.place = place;
    p.verify = verify;
    p.c = c;
    p.flag = flag;
    p.desc = desc;

    if (verify) {
        workload::init_gemm_data(sys.store(), spec, a, bt);
        p.golden = workload::gemm_golden(sys.store(), spec, a, bt);
    }

    p.cmd.flags =
        (verify ? accel::kCmdVerify : 0U) |
        (place == Placement::devmem ? accel::kCmdDataInDevMem : 0U);
    p.cmd.m = spec.m;
    p.cmd.n = spec.n;
    p.cmd.k = spec.k;
    p.cmd.addr_a = a;
    p.cmd.addr_b = bt;
    p.cmd.addr_c = c;
    p.cmd.flag_addr = flag;
    p.cmd.flag_value = 1;
    pending_.push_back(std::move(p));
}

MultiGemmResult Runner::run_dispatched()
{
    System& sys = *sys_;
    ensure(!pending_.empty(), "run_dispatched with nothing dispatched");

    // Failover armed: an active fault plan that allows more than one
    // attempt per job routes through the round-based health-tracked path.
    // Everything else (clean runs, single-attempt fault runs) takes the
    // classic single-round path below, unchanged.
    if (const FaultInjector* fi0 = sys.sim().fault_injector();
        fi0 != nullptr && fi0->plan().job_max_attempts > 1) {
        return run_failover(fi0->plan());
    }

    MultiGemmResult res;
    res.devices.resize(pending_.size());
    std::vector<std::uint64_t> dma_before(pending_.size());
    for (std::size_t i = 0; i < pending_.size(); ++i) {
        res.devices[i].device = pending_[i].device;
        res.devices[i].spec = pending_[i].spec;
        dma_before[i] = dma_bytes(sys, pending_[i].device);
    }

    // The driver fills every descriptor, rings all doorbells back-to-back
    // (the devices start pulling operands immediately and contend on the
    // fabric), then polls each completion flag in dispatch order.
    std::vector<cpu::CpuOp> prog;
    prog.push_back(cpu::Call{[this, &sys, &res] {
        res.start = sys.sim().now();
        for (const PendingGemm& p : pending_) {
            sys.store().write_obj(p.desc, p.cmd);
        }
    }});
    for (const PendingGemm& p : pending_) {
        prog.push_back(cpu::MmioWrite{doorbell_addr(sys, p.device), p.desc});
    }
    // Fault runs bound each completion poll by the plan's job timeout so
    // one dead endpoint cannot wedge the whole batch.
    double job_timeout_ns = 0.0;
    const FaultInjector* fi = sys.sim().fault_injector();
    if (fi != nullptr) {
        job_timeout_ns = fi->plan().job_timeout_ns;
    }
    for (const PendingGemm& p : pending_) {
        prog.push_back(cpu::PollFlag{p.flag, p.cmd.flag_value,
                                     job_timeout_ns});
    }
    prog.push_back(cpu::Call{[&sys, &res] { res.end = sys.sim().now(); }});

    sys.host_cpu().run_program(std::move(prog), [&sys] {
        sys.sim().request_exit("dispatched gemms complete");
    });
    if (!restore_.empty()) {
        sys.sim().restore(std::exchange(restore_, {}));
    }
    const RunResult rr = run_with_stats_flush(sys, "run_dispatched");
    if (rr.cause == ExitCause::checkpointed) {
        res.checkpointed = true;
        res.end = rr.end_tick;
        pending_.clear();
        return res;
    }
    if (fi == nullptr) {
        // Liveness: a clean run that drains with the program unfinished is
        // a deadlock — report who still holds work instead of hanging.
        ensure(rr.cause == ExitCause::exit_requested,
               "GEMM run deadlocked: simulation drained at tick ",
               rr.end_tick, " with jobs outstanding; component occupancy:\n",
               sys.sim().occupancy_report());
    } else if (rr.cause != ExitCause::exit_requested) {
        // Graceful degradation: a fault run that drains mid-program still
        // reports per-job outcomes below (the flags tell timeouts apart).
        res.end = rr.end_tick;
    }

    for (std::size_t i = 0; i < pending_.size(); ++i) {
        const PendingGemm& p = pending_[i];
        // The flag itself is the ground truth for per-job success: a
        // timed-out poll leaves it unset while completed devices posted
        // theirs.
        const auto flag = sys.store().read_obj<std::uint64_t>(p.flag);
        if (flag != p.cmd.flag_value) {
            res.devices[i].status = JobStatus::timed_out;
            continue; // no done tick, no verify: the job never finished
        }
        res.devices[i].done =
            sys.accelerator(p.device).last_complete_tick();
        res.devices[i].dma_bytes =
            dma_bytes(sys, p.device) - dma_before[i];
        if (p.verify) {
            res.devices[i].mismatches =
                workload::gemm_check(sys.store(), p.spec, p.c, p.golden);
            res.devices[i].verified = res.devices[i].mismatches == 0;
        }
    }
    pending_.clear();
    return res;
}

std::string Runner::health_summary() const
{
    auto state_name = [](EndpointHealth h) {
        switch (h) {
        case EndpointHealth::healthy:
            return "healthy";
        case EndpointHealth::degraded:
            return "degraded";
        case EndpointHealth::quarantined:
            return "quarantined";
        }
        return "?";
    };
    std::string out = "endpoint health:\n";
    for (std::size_t ep = 0; ep < health_.size(); ++ep) {
        const EpHealth& h = health_[ep];
        out += "  ep" + std::to_string(ep) + ": " + state_name(h.state) +
               ", failures=" + std::to_string(h.failures_total) +
               " (consecutive " + std::to_string(h.consecutive_failures) +
               "), successes=" + std::to_string(h.successes_total) +
               " (consecutive " + std::to_string(h.consecutive_successes) +
               ")\n";
    }
    return out;
}

MultiGemmResult Runner::run_failover(const FaultPlan& plan)
{
    System& sys = *sys_;
    const std::size_t n_eps = sys.device_count();
    if (fleet_ == nullptr) {
        fleet_ = std::make_unique<FleetStats>(sys.stats());
    }
    if (health_.size() < n_eps) {
        health_.resize(n_eps);
    }

    MultiGemmResult res;
    res.devices.resize(pending_.size());
    for (std::size_t i = 0; i < pending_.size(); ++i) {
        res.devices[i].device = pending_[i].device;
        res.devices[i].spec = pending_[i].spec;
    }

    // Jobs awaiting dispatch, in job order (deterministic round shapes).
    std::vector<std::size_t> backlog(pending_.size());
    for (std::size_t i = 0; i < pending_.size(); ++i) {
        backlog[i] = i;
    }
    unsigned redispatch_budget = plan.fleet_retry_budget;
    bool first_round = true;

    auto fail_job = [&](std::size_t job) {
        res.devices[job].status = JobStatus::failed;
        ++fleet_->failures;
    };

    // Pick an endpoint for `job` this round. Returns the endpoint index,
    // -1 when the job must wait for a later round (its candidates are
    // claimed), or -2 when no endpoint can ever take it (pinned to a
    // quarantined device).
    auto pick_endpoint = [&](std::size_t job,
                             const std::vector<bool>& claimed)
        -> std::ptrdiff_t {
        const PendingGemm& p = pending_[job];
        if (p.place == Placement::devmem) {
            // Operands live in the original device's memory: pinned.
            if (health_[p.device].state == EndpointHealth::quarantined) {
                return -2;
            }
            return claimed[p.device]
                       ? -1
                       : static_cast<std::ptrdiff_t>(p.device);
        }
        const bool first_attempt = res.devices[job].attempts.empty();
        if (first_attempt &&
            health_[p.device].state != EndpointHealth::quarantined &&
            !claimed[p.device]) {
            return static_cast<std::ptrdiff_t>(p.device);
        }
        // Re-dispatch (or displaced first attempt): least-loaded healthy
        // endpoint, falling back to degraded; lowest index breaks ties.
        for (const EndpointHealth want :
             {EndpointHealth::healthy, EndpointHealth::degraded}) {
            std::ptrdiff_t best = -1;
            std::uint64_t best_load = 0;
            for (std::size_t ep = 0; ep < n_eps; ++ep) {
                if (health_[ep].state != want || claimed[ep]) {
                    continue;
                }
                const std::uint64_t load = health_[ep].failures_total +
                                           health_[ep].successes_total;
                if (best < 0 || load < best_load) {
                    best = static_cast<std::ptrdiff_t>(ep);
                    best_load = load;
                }
            }
            if (best >= 0) {
                return best;
            }
        }
        return -1; // usable endpoints exist but are claimed this round
    };

    while (!backlog.empty()) {
        bool any_usable = false;
        for (std::size_t ep = 0; ep < n_eps; ++ep) {
            any_usable |=
                health_[ep].state != EndpointHealth::quarantined;
        }
        ensure(any_usable, "fleet stalled: every endpoint is quarantined "
                           "with ",
               backlog.size(), " job(s) outstanding\n", health_summary(),
               "component occupancy:\n", sys.sim().occupancy_report());

        // Claim endpoints for this round: at most one job per endpoint, so
        // per-device DMA stat deltas attribute cleanly.
        struct Slot {
            std::size_t job;
            std::size_t ep;
        };
        std::vector<Slot> round;
        std::vector<bool> claimed(n_eps, false);
        std::vector<std::size_t> waiting;
        for (std::size_t job : backlog) {
            const std::ptrdiff_t ep = pick_endpoint(job, claimed);
            if (ep >= 0) {
                claimed[static_cast<std::size_t>(ep)] = true;
                round.push_back(Slot{job, static_cast<std::size_t>(ep)});
            } else if (ep == -1) {
                waiting.push_back(job);
            } else {
                fail_job(job); // pinned to a quarantined endpoint
            }
        }
        if (round.empty()) {
            // Nothing can run now or ever (the -1 case needs a claim, and
            // nothing claimed): abandon what's left.
            for (std::size_t job : waiting) {
                fail_job(job);
            }
            break;
        }
        ++fleet_->rounds;

        std::vector<std::uint64_t> dma_before(round.size());
        for (std::size_t s = 0; s < round.size(); ++s) {
            dma_before[s] = dma_bytes(sys, round[s].ep);
        }

        Tick round_start = 0;
        Tick round_end = 0;
        std::vector<cpu::CpuOp> prog;
        prog.push_back(cpu::Call{[this, &sys, &res, &round_start,
                                  first_round] {
            round_start = sys.sim().now();
            if (first_round) {
                res.start = round_start;
                for (const PendingGemm& p : pending_) {
                    sys.store().write_obj(p.desc, p.cmd);
                }
            }
        }});
        for (const Slot& s : round) {
            prog.push_back(cpu::MmioWrite{doorbell_addr(sys, s.ep),
                                          pending_[s.job].desc});
        }
        for (const Slot& s : round) {
            prog.push_back(cpu::PollFlag{pending_[s.job].flag,
                                         pending_[s.job].cmd.flag_value,
                                         plan.job_timeout_ns});
        }
        prog.push_back(cpu::Call{
            [&sys, &round_end] { round_end = sys.sim().now(); }});

        sys.host_cpu().run_program(std::move(prog), [&sys] {
            sys.sim().request_exit("dispatch round complete");
        });
        if (first_round && !restore_.empty()) {
            sys.sim().restore(std::exchange(restore_, {}));
        }
        first_round = false;

        RunResult rr;
        try {
            rr = run_with_stats_flush(sys, "run_dispatched(failover)");
        } catch (const SimError&) {
            std::cerr << health_summary();
            throw;
        }
        if (rr.cause == ExitCause::checkpointed) {
            res.checkpointed = true;
            res.end = rr.end_tick;
            pending_.clear();
            return res;
        }
        if (round_end == 0) {
            round_end = rr.end_tick; // drained mid-program (graceful path)
        }
        res.end = round_end;

        // Evaluate the round: the functional flag is ground truth (it is
        // only ever written at device run_complete()).
        std::vector<std::size_t> next_backlog;
        for (std::size_t s = 0; s < round.size(); ++s) {
            const Slot& slot = round[s];
            const PendingGemm& p = pending_[slot.job];
            DeviceGemmResult& d = res.devices[slot.job];
            EpHealth& h = health_[slot.ep];
            const auto flag = sys.store().read_obj<std::uint64_t>(p.flag);
            const bool done = flag == p.cmd.flag_value;

            d.dma_bytes += dma_bytes(sys, slot.ep) - dma_before[s];
            d.attempts.push_back(JobAttempt{
                slot.ep, done ? JobStatus::ok : JobStatus::timed_out,
                round_start, round_end});

            if (done) {
                d.status = JobStatus::ok;
                d.done = sys.accelerator(slot.ep).last_complete_tick();
                h.consecutive_failures = 0;
                ++h.consecutive_successes;
                ++h.successes_total;
                if (h.state == EndpointHealth::degraded &&
                    h.consecutive_successes >= plan.rehab_successes) {
                    h.state = EndpointHealth::healthy;
                    ++fleet_->rehabs;
                }
                continue;
            }

            // Failure: update health with hysteresis, then reset the
            // endpoint — the FLR drains whatever wedged it (hung FSM,
            // abandoned DMA state) and re-arms the link credits.
            h.consecutive_successes = 0;
            ++h.consecutive_failures;
            ++h.failures_total;
            if (h.state == EndpointHealth::healthy) {
                h.state = EndpointHealth::degraded;
                ++fleet_->degrades;
            }
            if (h.state == EndpointHealth::degraded &&
                h.consecutive_failures >= plan.quarantine_failures) {
                h.state = EndpointHealth::quarantined;
                ++fleet_->quarantines;
            }
            sys.accelerator(slot.ep).begin_flr(ticks_from_ns(plan.flr_ns));
            ++fleet_->flrs;
            ++res.flrs;

            if (d.attempts.size() >=
                static_cast<std::size_t>(plan.job_max_attempts)) {
                d.status = JobStatus::failed;
                ++fleet_->failures;
            } else if (redispatch_budget == 0) {
                d.status = JobStatus::failed;
                ++fleet_->failures;
            } else {
                --redispatch_budget;
                ++fleet_->redispatches;
                ++res.redispatches;
                next_backlog.push_back(slot.job);
            }
        }
        // Preserve job order: waiting jobs first (they were dispatched
        // earlier), then this round's retries.
        waiting.insert(waiting.end(), next_backlog.begin(),
                       next_backlog.end());
        std::sort(waiting.begin(), waiting.end());
        backlog = std::move(waiting);
    }

    res.health.resize(n_eps);
    for (std::size_t ep = 0; ep < n_eps; ++ep) {
        res.health[ep] = health_[ep].state;
    }
    for (std::size_t i = 0; i < pending_.size(); ++i) {
        const PendingGemm& p = pending_[i];
        DeviceGemmResult& d = res.devices[i];
        if (d.status != JobStatus::ok) {
            continue;
        }
        if (p.verify) {
            d.mismatches =
                workload::gemm_check(sys.store(), p.spec, p.c, p.golden);
            d.verified = d.mismatches == 0;
        }
    }
    pending_.clear();
    return res;
}

void Runner::restore_dispatched(const std::string& path)
{
    System& sys = *sys_;
    ensure(!pending_.empty(), "restore_dispatched with nothing dispatched");

    // Same op shape as run_dispatched(): one descriptor-fill Call, one
    // doorbell per job, one poll per job, one end-sample Call. The Calls
    // are stubs — the snapshot's restored store already holds the
    // descriptors, and nothing here will read the result fields.
    std::vector<cpu::CpuOp> prog;
    prog.push_back(cpu::Call{[] {}});
    for (const PendingGemm& p : pending_) {
        prog.push_back(cpu::MmioWrite{doorbell_addr(sys, p.device), p.desc});
    }
    double job_timeout_ns = 0.0;
    const FaultInjector* fi = sys.sim().fault_injector();
    if (fi != nullptr) {
        job_timeout_ns = fi->plan().job_timeout_ns;
    }
    for (const PendingGemm& p : pending_) {
        prog.push_back(cpu::PollFlag{p.flag, p.cmd.flag_value,
                                     job_timeout_ns});
    }
    prog.push_back(cpu::Call{[] {}});

    sys.host_cpu().run_program(std::move(prog), [&sys] {
        sys.sim().request_exit("dispatched gemms complete");
    });
    sys.sim().restore(path);
    pending_.clear();
}

VitRunResult Runner::run_vit(const workload::VitConfig& cfg, Placement place)
{
    System& sys = *sys_;
    const auto ops = workload::lower_vit(cfg);

    // Activation ping-pong buffers sized for the largest operand of any op.
    std::uint64_t act_a_bytes = 0;
    std::uint64_t act_c_bytes = 0;
    for (const auto& op : ops) {
        if (op.kind == workload::VitOp::Kind::gemm) {
            act_a_bytes = std::max(act_a_bytes, op.a_bytes());
            act_c_bytes = std::max(act_c_bytes, op.c_bytes());
        } else {
            act_c_bytes = std::max(act_c_bytes, op.bytes_in);
            act_a_bytes = std::max(act_a_bytes, op.bytes_out);
        }
    }

    const Addr act_a = sys.alloc(place, act_a_bytes);
    const Addr act_c = sys.alloc(place, act_c_bytes);
    const Addr flag = sys.alloc_host(64);
    const Addr desc = sys.alloc_host(64);
    sys.map_host_pages(flag, 8);
    sys.map_host_pages(desc, sizeof(accel::GemmCommand));
    if (place == Placement::host) {
        sys.map_host_pages(act_a, act_a_bytes);
        sys.map_host_pages(act_c, act_c_bytes);
    }

    // Distinct weights per GEMM (real models never reuse them).
    std::vector<Addr> weights;
    weights.reserve(ops.size());
    for (const auto& op : ops) {
        if (op.kind == workload::VitOp::Kind::gemm) {
            const Addr w = sys.alloc(place, op.b_bytes());
            if (place == Placement::host) {
                sys.map_host_pages(w, op.b_bytes());
            }
            weights.push_back(w);
        } else {
            weights.push_back(0);
        }
    }

    VitRunResult res;
    // `mark` lives on the heap: the program outlives this stack frame only
    // within run(), but shared_ptr keeps the lambdas self-contained.
    auto mark = std::make_shared<Tick>(0);

    std::vector<cpu::CpuOp> prog;
    prog.push_back(
        cpu::Call{[&sys, &res] { res.start = sys.sim().now(); }});

    std::uint64_t flag_value = 0;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const auto& op = ops[i];
        if (op.kind == workload::VitOp::Kind::gemm) {
            ++flag_value;
            accel::GemmCommand cmd;
            cmd.flags =
                place == Placement::devmem ? accel::kCmdDataInDevMem : 0U;
            cmd.m = op.m;
            cmd.n = op.n;
            cmd.k = op.k;
            cmd.addr_a = act_a;
            cmd.addr_b = weights[i];
            cmd.addr_c = act_c;
            cmd.flag_addr = flag;
            cmd.flag_value = flag_value;

            prog.push_back(cpu::Call{[&sys, mark, desc, cmd] {
                *mark = sys.sim().now();
                sys.store().write_obj(desc, cmd);
            }});
            prog.push_back(cpu::MmioWrite{doorbell_addr(sys), desc});
            prog.push_back(cpu::PollFlag{flag, flag_value});
            prog.push_back(cpu::Call{[&sys, &res, mark] {
                res.gemm_ticks += sys.sim().now() - *mark;
                ++res.gemm_cmds;
            }});
        } else {
            cpu::VectorOp vop;
            vop.label = op.label;
            vop.in_addr = act_c;
            vop.bytes_in = op.bytes_in;
            vop.out_addr = act_a;
            vop.bytes_out = op.bytes_out;
            vop.alu_ops = op.alu_ops;

            prog.push_back(cpu::Call{
                [&sys, mark] { *mark = sys.sim().now(); }});
            prog.push_back(std::move(vop));
            prog.push_back(cpu::Call{[&sys, &res, mark] {
                res.nongemm_ticks += sys.sim().now() - *mark;
                ++res.vector_ops;
            }});
        }
    }
    prog.push_back(cpu::Call{[&sys, &res] { res.end = sys.sim().now(); }});

    sys.host_cpu().run_program(std::move(prog), [&sys] {
        sys.sim().request_exit("vit complete");
    });
    if (!restore_.empty()) {
        sys.sim().restore(std::exchange(restore_, {}));
    }
    const RunResult rr = run_with_stats_flush(sys, "run_vit");
    if (rr.cause == ExitCause::checkpointed) {
        res.end = rr.end_tick;
        return res;
    }
    ensure(rr.cause == ExitCause::exit_requested,
           "ViT run deadlocked: simulation drained at tick ", rr.end_tick,
           " with jobs outstanding; component occupancy:\n",
           sys.sim().occupancy_report());
    return res;
}

} // namespace accesys::core
