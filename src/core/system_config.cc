#include "core/system_config.hh"

#include "mem/dram_config.hh"

namespace accesys::core {

SystemConfig SystemConfig::paper_default()
{
    SystemConfig cfg;

    // CPU cluster — ARM-class core at 1 GHz.
    cfg.cpu.freq_ghz = 1.0;

    cfg.l1d.size_bytes = 64 * kKiB;
    cfg.l1d.assoc = 4;
    cfg.l1d.line_bytes = 64;
    cfg.l1d.lookup_latency_ns = 1.0;
    cfg.l1d.mshrs = 8;

    cfg.llc.size_bytes = 2 * kMiB;
    cfg.llc.assoc = 16;
    cfg.llc.line_bytes = 64;
    cfg.llc.lookup_latency_ns = 8.0;
    cfg.llc.mshrs = 32;

    cfg.iocache.size_bytes = 32 * kKiB;
    cfg.iocache.assoc = 4;
    cfg.iocache.line_bytes = 64;
    cfg.iocache.lookup_latency_ns = 2.0;
    cfg.iocache.mshrs = 32;

    // Host memory: DDR3-1600 8x8, 4 GB.
    cfg.host_mem.dram = mem::ddr3_1600();
    cfg.host_dram_bytes = 4 * kGiB;

    cfg.membus.coherent = true;
    cfg.membus.width_gbps = 128.0;
    cfg.membus.request_latency_ns = 3.0;
    cfg.membus.response_latency_ns = 3.0;

    // PCIe 2.0, 4 lanes at 4 Gb/s; RC 150 ns; switch 50 ns.
    cfg.pcie.gen = pcie::Gen::gen2;
    cfg.pcie.lanes = 4;
    cfg.pcie.lane_gbps = 4.0;
    cfg.rc.latency_ns = 150.0;
    cfg.pcie_switch.latency_ns = 50.0;

    // SMMU sized so the Table IV study shows the paper's capacity cliff:
    // the 2048^3 working set exceeds the main TLB and triggers a PTW storm,
    // and the narrow walker makes those walks visible in execution time.
    cfg.smmu.utlb_entries = 16;
    cfg.smmu.utlb_assoc = 16;
    cfg.smmu.tlb_entries = 2048;
    cfg.smmu.tlb_assoc = 8;
    cfg.smmu.walk_slots = 1;
    cfg.smmu.pwc_entries = 16;

    // Accelerator: 16x16 MatrixFlow systolic array at 1 GHz.
    cfg.accel.sa.rows = 16;
    cfg.accel.sa.cols = 16;
    cfg.accel.sa.freq_ghz = 1.0;
    cfg.accel.local_buffer_bytes = 256 * kKiB;

    // Device-side memory defaults (enabled per experiment).
    cfg.devmem_mem.dram = mem::hbm2();
    cfg.devmem_xbar.coherent = false;
    cfg.devmem_xbar.width_gbps = 256.0;
    cfg.devmem_xbar.request_latency_ns = 2.0;
    cfg.devmem_xbar.response_latency_ns = 2.0;
    cfg.devmem_xbar.queue_capacity = 64;
    cfg.devmem_mem.read_queue_capacity = 64;

    cfg.set_packet_size(256);
    return cfg;
}

void SystemConfig::set_packet_size(std::uint32_t bytes)
{
    accel.dma.request_bytes = bytes;
    accel.dma.write_bytes = bytes;
    rc.max_payload_bytes = bytes;
}

void SystemConfig::set_pcie_target_gbps(double gbps, unsigned lanes,
                                        pcie::Gen gen)
{
    pcie = pcie::LinkParams::from_target_gbps(gbps, lanes, gen);
}

void SystemConfig::set_host_dram(const std::string& preset)
{
    host_mem.dram = mem::dram_params_by_name(preset);
    host_simple = false;
}

void SystemConfig::set_devmem(const std::string& preset)
{
    enable_devmem = true;
    devmem_mem.dram = mem::dram_params_by_name(preset);
    devmem_simple = false;
}

void SystemConfig::validate() const
{
    cpu.validate();
    l1d.validate();
    llc.validate();
    iocache.validate();
    host_mem.dram.validate();
    pcie.validate();
    rc.validate();
    smmu.validate();
    accel.validate();
    if (enable_devmem && !devmem_simple) {
        devmem_mem.dram.validate();
    }
    require_cfg(host_dram_bytes >= 256 * kMiB,
                "host DRAM must be at least 256 MiB (page tables live there)");
    require_cfg(accel.bar0_base >= host_dram_bytes,
                "BAR0 must not overlap host DRAM");
}

} // namespace accesys::core
