#include "core/system_config.hh"

#include "mem/dram_config.hh"

namespace accesys::core {

SystemConfig SystemConfig::paper_default()
{
    SystemConfig cfg;

    // CPU cluster — ARM-class core at 1 GHz.
    cfg.cpu.freq_ghz = 1.0;

    cfg.l1d.size_bytes = 64 * kKiB;
    cfg.l1d.assoc = 4;
    cfg.l1d.line_bytes = 64;
    cfg.l1d.lookup_latency_ns = 1.0;
    cfg.l1d.mshrs = 8;

    cfg.llc.size_bytes = 2 * kMiB;
    cfg.llc.assoc = 16;
    cfg.llc.line_bytes = 64;
    cfg.llc.lookup_latency_ns = 8.0;
    cfg.llc.mshrs = 32;

    cfg.iocache.size_bytes = 32 * kKiB;
    cfg.iocache.assoc = 4;
    cfg.iocache.line_bytes = 64;
    cfg.iocache.lookup_latency_ns = 2.0;
    cfg.iocache.mshrs = 32;

    // Host memory: DDR3-1600 8x8, 4 GB.
    cfg.host_mem.dram = mem::ddr3_1600();
    cfg.host_dram_bytes = 4 * kGiB;

    cfg.membus.coherent = true;
    cfg.membus.width_gbps = 128.0;
    cfg.membus.request_latency_ns = 3.0;
    cfg.membus.response_latency_ns = 3.0;

    // PCIe 2.0, 4 lanes at 4 Gb/s; RC 150 ns; switch 50 ns.
    cfg.pcie.gen = pcie::Gen::gen2;
    cfg.pcie.lanes = 4;
    cfg.pcie.lane_gbps = 4.0;
    cfg.rc.latency_ns = 150.0;
    cfg.pcie_switch.latency_ns = 50.0;

    // SMMU sized so the Table IV study shows the paper's capacity cliff:
    // the 2048^3 working set exceeds the main TLB and triggers a PTW storm,
    // and the narrow walker makes those walks visible in execution time.
    cfg.smmu.utlb_entries = 16;
    cfg.smmu.utlb_assoc = 16;
    cfg.smmu.tlb_entries = 2048;
    cfg.smmu.tlb_assoc = 8;
    cfg.smmu.walk_slots = 1;
    cfg.smmu.pwc_entries = 16;

    // Accelerator: 16x16 MatrixFlow systolic array at 1 GHz.
    cfg.accel.sa.rows = 16;
    cfg.accel.sa.cols = 16;
    cfg.accel.sa.freq_ghz = 1.0;
    cfg.accel.local_buffer_bytes = 256 * kKiB;

    // Device-side memory defaults (enabled per experiment).
    cfg.devmem_mem.dram = mem::hbm2();
    cfg.devmem_xbar.coherent = false;
    cfg.devmem_xbar.width_gbps = 256.0;
    cfg.devmem_xbar.request_latency_ns = 2.0;
    cfg.devmem_xbar.response_latency_ns = 2.0;
    cfg.devmem_xbar.queue_capacity = 64;
    cfg.devmem_mem.read_queue_capacity = 64;

    cfg.set_packet_size(256);
    return cfg;
}

void SystemConfig::set_packet_size(std::uint32_t bytes)
{
    accel.dma.request_bytes = bytes;
    accel.dma.write_bytes = bytes;
    rc.max_payload_bytes = bytes;
}

void SystemConfig::set_pcie_target_gbps(double gbps, unsigned lanes,
                                        pcie::Gen gen)
{
    pcie = pcie::LinkParams::from_target_gbps(gbps, lanes, gen);
}

void SystemConfig::set_host_dram(const std::string& preset)
{
    host_mem.dram = mem::dram_params_by_name(preset);
    host_simple = false;
}

void SystemConfig::set_devmem(const std::string& preset)
{
    enable_devmem = true;
    devmem_mem.dram = mem::dram_params_by_name(preset);
    devmem_simple = false;
}

namespace {

/// The legacy single-device fields expressed as a DeviceConfig.
DeviceConfig legacy_device(const SystemConfig& cfg)
{
    DeviceConfig d;
    d.accel = cfg.accel;
    d.enable_devmem = cfg.enable_devmem;
    d.devmem_base = cfg.devmem_base;
    d.devmem_bytes = cfg.devmem_bytes;
    d.devmem_simple = cfg.devmem_simple;
    d.devmem_mem = cfg.devmem_mem;
    d.devmem_simple_mem = cfg.devmem_simple_mem;
    d.devmem_xbar = cfg.devmem_xbar;
    return d;
}

/// Clone with every placement knob set to auto-carve.
DeviceConfig auto_clone(const DeviceConfig& proto)
{
    DeviceConfig d = proto;
    d.name.clear();
    d.accel.bar0_base = 0;
    d.accel.local_base = 0;
    d.accel.ep.device_id = 0;
    d.devmem_base = 0;
    d.stream_id = 0;
    d.attach_to = 0;
    return d;
}

} // namespace

void SystemConfig::set_num_devices(std::size_t n)
{
    require_cfg(n >= 1, "a system needs at least one accelerator");
    require_cfg(n <= 0xFFFF, "device count ", n,
                " exceeds the 16-bit PCIe requester-id space");
    devices.clear();
    devices.push_back(legacy_device(*this));
    for (std::size_t i = 1; i < n; ++i) {
        devices.push_back(auto_clone(devices.front()));
    }
}

DeviceConfig& SystemConfig::add_device(std::string name)
{
    if (devices.empty()) {
        devices.push_back(legacy_device(*this));
    }
    devices.push_back(auto_clone(devices.front()));
    devices.back().name = std::move(name);
    return devices.back();
}

std::size_t SystemConfig::add_switch_below(std::size_t parent)
{
    if (switch_tree.empty()) {
        switch_tree.push_back(SwitchConfig{0, pcie_switch, pcie});
    }
    require_cfg(parent < switch_tree.size(),
                "switch parent index out of range");
    switch_tree.push_back(SwitchConfig{parent, pcie_switch, pcie});
    return switch_tree.size() - 1;
}

std::vector<DeviceConfig> SystemConfig::resolved_devices() const
{
    if (!devices.empty()) {
        return devices;
    }
    return {legacy_device(*this)};
}

std::vector<SwitchConfig> SystemConfig::resolved_switch_tree() const
{
    if (!switch_tree.empty()) {
        return switch_tree;
    }
    return {SwitchConfig{0, pcie_switch, pcie}};
}

void ServingConfig::validate() const
{
    require_cfg(queue_capacity > 0, "serving queue capacity must be > 0");
    require_cfg(throttle_mark() <= queue_capacity,
                "serving throttle watermark exceeds the queue capacity");
    require_cfg(shed_mark() <= queue_capacity,
                "serving shed watermark exceeds the queue capacity");
    require_cfg(throttle_mark() <= shed_mark(),
                "serving throttle watermark above the shed watermark");
}

void SystemConfig::validate() const
{
    cpu.validate();
    l1d.validate();
    llc.validate();
    iocache.validate();
    host_mem.dram.validate();
    pcie.validate();
    rc.validate();
    smmu.validate();
    fault_plan.validate();
    require_cfg(host_dram_bytes >= 256 * kMiB,
                "host DRAM must be at least 256 MiB (page tables live there)");

    // Structural topology checks (tree order, attachment points, name and
    // id uniqueness, address-map overlap) live in TopologyBuilder::resolve,
    // which every System construction runs; here we only validate the
    // per-component parameter blocks.
    for (const auto& sw : resolved_switch_tree()) {
        sw.uplink.validate();
    }

    for (const DeviceConfig& dev : resolved_devices()) {
        dev.accel.validate();
        if (dev.accel.bar0_base != 0) {
            require_cfg(dev.accel.bar0_base >= host_dram_bytes,
                        "BAR0 must not overlap host DRAM");
        }
        if (dev.enable_devmem && !dev.devmem_simple) {
            dev.devmem_mem.dram.validate();
        }
    }
}

} // namespace accesys::core
