// Top-level system configuration (defaults follow paper Table II) and the
// address map shared by every experiment.
#pragma once

#include "accel/matrixflow.hh"
#include "cache/cache.hh"
#include "cpu/host_cpu.hh"
#include "mem/mem_ctrl.hh"
#include "mem/xbar.hh"
#include "pcie/link.hh"
#include "pcie/root_complex.hh"
#include "pcie/switch.hh"
#include "smmu/smmu.hh"

namespace accesys::core {

/// Paper §III-C memory access methods (DevMem is a data-placement choice,
/// expressed per command; DC vs DM selects the inbound fabric path).
enum class AccessMode {
    dc, ///< direct cache: inbound DMA flows through IOCache / LLC
    dm, ///< direct memory: inbound DMA bypasses the cache hierarchy
};

/// Where a workload's tensors live.
enum class Placement {
    host,   ///< host DRAM, reached over PCIe by the accelerator
    devmem, ///< device-side memory, reached over PCIe by the CPU (NUMA)
};

struct SystemConfig {
    // --- CPU cluster (Table II) ---------------------------------------------
    cpu::CpuParams cpu;
    cache::CacheParams l1d;
    cache::CacheParams llc;
    cache::CacheParams iocache;

    // --- host memory ----------------------------------------------------------
    mem::MemCtrlParams host_mem;
    bool host_simple = false; ///< use SimpleMem instead of the DRAM model
    mem::SimpleMemParams host_simple_mem;
    std::uint64_t host_dram_bytes = 4 * kGiB;

    // --- fabric ---------------------------------------------------------------
    mem::XbarParams membus;

    // --- PCIe (Table II: v2.0, 4 Gb/s lanes, x4) -----------------------------
    pcie::LinkParams pcie;
    pcie::RcParams rc;
    pcie::SwitchParams pcie_switch;

    // --- SMMU -----------------------------------------------------------------
    smmu::SmmuParams smmu;

    // --- accelerator ----------------------------------------------------------
    accel::MatrixFlowParams accel;

    // --- device-side memory ---------------------------------------------------
    bool enable_devmem = false;
    mem::MemCtrlParams devmem_mem;
    bool devmem_simple = false;
    mem::SimpleMemParams devmem_simple_mem;
    std::uint64_t devmem_bytes = 8 * kGiB;
    mem::XbarParams devmem_xbar;
    Addr devmem_base = 0x200000000000ULL;

    AccessMode access_mode = AccessMode::dc;

    /// Table II configuration: ARM 1 GHz, 64 kB D$, 2 MB LLC, 32 kB IOCache,
    /// DDR3-1600 host memory, PCIe 2.0 x4 @ 4 Gb/s, RC 150 ns, switch 50 ns.
    [[nodiscard]] static SystemConfig paper_default();

    /// Set the DMA request size and the RC completion payload limit together
    /// — the paper's single "packet size" knob (Fig. 4).
    void set_packet_size(std::uint32_t bytes);

    /// Replace the PCIe link with one of `gbps` effective bandwidth,
    /// mirroring the paper's "PCIe-xGB" system labels.
    void set_pcie_target_gbps(double gbps, unsigned lanes = 8,
                              pcie::Gen gen = pcie::Gen::gen3);

    /// Select the host DRAM technology by preset name ("DDR4", "HBM2", ...).
    void set_host_dram(const std::string& preset);

    /// Enable device-side memory with the given DRAM technology.
    void set_devmem(const std::string& preset);

    void validate() const;
};

} // namespace accesys::core
