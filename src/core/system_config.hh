// Top-level system configuration (defaults follow paper Table II) and the
// address map shared by every experiment.
#pragma once

#include <optional>

#include "accel/matrixflow.hh"
#include "cache/cache.hh"
#include "cpu/host_cpu.hh"
#include "mem/mem_ctrl.hh"
#include "mem/xbar.hh"
#include "pcie/link.hh"
#include "pcie/root_complex.hh"
#include "pcie/switch.hh"
#include "sim/env_flags.hh"
#include "sim/fault_injector.hh"
#include "smmu/smmu.hh"

namespace accesys::core {

/// Paper §III-C memory access methods (DevMem is a data-placement choice,
/// expressed per command; DC vs DM selects the inbound fabric path).
enum class AccessMode {
    dc, ///< direct cache: inbound DMA flows through IOCache / LLC
    dm, ///< direct memory: inbound DMA bypasses the cache hierarchy
};

/// Where a workload's tensors live.
enum class Placement {
    host,   ///< host DRAM, reached over PCIe by the accelerator
    devmem, ///< device-side memory, reached over PCIe by the CPU (NUMA)
};

/// One PCIe endpoint in a declarative multi-accelerator topology.
///
/// Every placement knob supports auto-carving so that N devices can be
/// declared without hand-assigning address maps:
///   * `accel.bar0_base == 0`     -> BAR0 carved from the MMIO region
///   * `accel.local_base == 0`    -> scratchpad staging space carved
///   * `accel.ep.device_id == 0`  -> next free PCIe requester id
///   * `devmem_base == 0`         -> device-memory aperture carved
/// Explicitly set values are honoured and checked for overlap.
struct DeviceConfig {
    /// Component name and stat prefix; "" = auto ("mf" for device 0,
    /// "mf<i>" for later devices, matching the single-device layout).
    std::string name;

    /// Accelerator parameters, including the DMA engine and endpoint id.
    accel::MatrixFlowParams accel;

    /// SMMU translation stream; 0 = use the PCIe requester id.
    std::uint32_t stream_id = 0;

    /// Index into SystemConfig::switch_tree of the switch this endpoint
    /// hangs off (0 = the root switch below the RC).
    std::size_t attach_to = 0;

    /// Downstream link (endpoint <-> switch) parameters. Unset = clone
    /// SystemConfig::pcie; set per device to study mixed-generation
    /// endpoints sharing one fabric (e.g. a Gen2 x4 legacy card next to a
    /// Gen4 x8 accelerator).
    std::optional<pcie::LinkParams> link;

    /// Per-device device-side memory (aperture + controller + xbar).
    bool enable_devmem = false;
    Addr devmem_base = 0; ///< 0 = auto-carve from the devmem region
    std::uint64_t devmem_bytes = 8 * kGiB;
    bool devmem_simple = false;
    mem::MemCtrlParams devmem_mem;
    mem::SimpleMemParams devmem_simple_mem;
    mem::XbarParams devmem_xbar;
};

/// One switch in the PCIe switch tree. Index 0 is the root switch whose
/// uplink faces the root complex; every other switch hangs below an
/// earlier-indexed parent (the tree is declared in topological order).
struct SwitchConfig {
    std::size_t parent = 0; ///< parent switch index (ignored for index 0)
    pcie::SwitchParams params;
    pcie::LinkParams uplink; ///< link toward the parent (RC for index 0)
};

/// Overload policy for the Runner's bounded admission queue (see
/// Runner::serve and ROADMAP "Serving under overload").
enum class ShedPolicy {
    /// A full queue refuses new arrivals (JobStatus::rejected); admitted
    /// jobs always run.
    reject_new,
    /// A full queue drops its oldest entry (JobStatus::shed) to admit the
    /// new arrival — freshest-work-first under sustained overload.
    shed_oldest,
    /// reject_new at capacity, plus deadline shedding at dispatch: a job
    /// reaching the queue head whose tenant deadline can no longer be met
    /// given the measured service time is shed instead of dispatched.
    deadline_aware,
};

/// Knobs for the open-loop serving path (Runner::serve). Watermarks feed
/// the ServingState backpressure signal only; admission decisions key on
/// `queue_capacity` and the policy.
struct ServingConfig {
    ShedPolicy policy = ShedPolicy::reject_new;
    /// Bounded admission queue depth (slots; > 0). Retries of admitted
    /// jobs re-enter at the front and are exempt from the bound, so a
    /// transient overshoot of at most the endpoint count is possible.
    std::size_t queue_capacity = 64;
    /// Queue depth at/above which ServingState reports `throttled`.
    /// 0 = queue_capacity / 2.
    std::size_t throttle_watermark = 0;
    /// Queue depth at/above which ServingState reports `shedding`.
    /// 0 = 3 * queue_capacity / 4.
    std::size_t shed_watermark = 0;
    /// Verify every completed job against the golden model (exercises the
    /// full functional DMA path; the serving default because overload
    /// must degrade throughput, never correctness).
    bool verify = true;

    [[nodiscard]] std::size_t throttle_mark() const
    {
        return throttle_watermark != 0 ? throttle_watermark
                                       : queue_capacity / 2;
    }
    [[nodiscard]] std::size_t shed_mark() const
    {
        return shed_watermark != 0 ? shed_watermark
                                   : 3 * queue_capacity / 4;
    }

    void validate() const;
};

struct SystemConfig {
    // --- CPU cluster (Table II) ---------------------------------------------
    cpu::CpuParams cpu;
    cache::CacheParams l1d;
    cache::CacheParams llc;
    cache::CacheParams iocache;

    // --- host memory ----------------------------------------------------------
    mem::MemCtrlParams host_mem;
    bool host_simple = false; ///< use SimpleMem instead of the DRAM model
    mem::SimpleMemParams host_simple_mem;
    std::uint64_t host_dram_bytes = 4 * kGiB;

    // --- fabric ---------------------------------------------------------------
    mem::XbarParams membus;

    // --- PCIe (Table II: v2.0, 4 Gb/s lanes, x4) -----------------------------
    pcie::LinkParams pcie;
    pcie::RcParams rc;
    pcie::SwitchParams pcie_switch;

    // --- SMMU -----------------------------------------------------------------
    smmu::SmmuParams smmu;

    // --- accelerator (device 0 when `devices` is empty) ----------------------
    accel::MatrixFlowParams accel;

    // --- device-side memory (device 0 when `devices` is empty) ---------------
    bool enable_devmem = false;
    mem::MemCtrlParams devmem_mem;
    bool devmem_simple = false;
    mem::SimpleMemParams devmem_simple_mem;
    std::uint64_t devmem_bytes = 8 * kGiB;
    mem::XbarParams devmem_xbar;
    Addr devmem_base = 0x200000000000ULL;

    // --- multi-accelerator topology -------------------------------------------
    /// Declarative endpoint list. Empty = the classic single-device system
    /// synthesized from the legacy `accel` / devmem fields above; otherwise
    /// the TopologyBuilder instantiates one endpoint per entry.
    std::vector<DeviceConfig> devices;
    /// PCIe switch tree. Empty = one root switch built from `pcie_switch` /
    /// `pcie` (the paper's Fig. 1 layout).
    std::vector<SwitchConfig> switch_tree;

    AccessMode access_mode = AccessMode::dc;

    /// Deterministic fault-injection plan (PCIe corruption, link-down
    /// windows, completion/job timeouts). Inactive by default: a
    /// default-constructed plan adds no components, no stats and no
    /// per-TLP work, so clean runs are bit-identical with or without the
    /// fault model compiled in. See sim/fault_injector.hh.
    FaultPlan fault_plan;

    /// Simulation worker-thread budget (ACCESYS_THREADS). With >= 2, the
    /// topology carves each endpoint subtree (downstream link + device +
    /// devmem) into its own simulation domain and run() goes parallel;
    /// 1 keeps the exact serial path. Results are identical either way.
    unsigned threads = env_flags().threads;

    /// Table II configuration: ARM 1 GHz, 64 kB D$, 2 MB LLC, 32 kB IOCache,
    /// DDR3-1600 host memory, PCIe 2.0 x4 @ 4 Gb/s, RC 150 ns, switch 50 ns.
    [[nodiscard]] static SystemConfig paper_default();

    /// Set the DMA request size and the RC completion payload limit together
    /// — the paper's single "packet size" knob (Fig. 4).
    void set_packet_size(std::uint32_t bytes);

    /// Replace the PCIe link with one of `gbps` effective bandwidth,
    /// mirroring the paper's "PCIe-xGB" system labels.
    void set_pcie_target_gbps(double gbps, unsigned lanes = 8,
                              pcie::Gen gen = pcie::Gen::gen3);

    /// Select the host DRAM technology by preset name ("DDR4", "HBM2", ...).
    void set_host_dram(const std::string& preset);

    /// Enable device-side memory with the given DRAM technology.
    void set_devmem(const std::string& preset);

    /// Populate `devices` with `n` endpoints below the root switch:
    /// device 0 mirrors the legacy single-device fields, devices 1..n-1
    /// clone its parameters with all placement knobs set to auto-carve.
    void set_num_devices(std::size_t n);

    /// Append one endpoint cloned from the legacy accelerator fields with
    /// auto-carved placement; returns it for further tweaking. The first
    /// call also materialises the legacy device as device 0. The returned
    /// reference lives in `devices` and is invalidated by the next
    /// add_device() / set_num_devices() call — finish tweaking one device
    /// before appending the next, or index `devices` directly.
    DeviceConfig& add_device(std::string name = "");

    /// Append a switch below `parent` and return its index (usable as a
    /// DeviceConfig::attach_to). The first call materialises the root
    /// switch (index 0) from the legacy `pcie_switch` / `pcie` fields.
    std::size_t add_switch_below(std::size_t parent);

    /// Effective endpoint list: `devices`, or the synthesized legacy
    /// single-device entry when it is empty.
    [[nodiscard]] std::vector<DeviceConfig> resolved_devices() const;

    /// Effective switch tree: `switch_tree`, or the single legacy root.
    [[nodiscard]] std::vector<SwitchConfig> resolved_switch_tree() const;

    [[nodiscard]] std::size_t device_count() const
    {
        return devices.empty() ? 1 : devices.size();
    }

    void validate() const;
};

} // namespace accesys::core
