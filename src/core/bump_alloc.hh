// Page-aligned bump allocation over a fixed arena — the workload-memory
// allocator shared by the host DRAM arena and every device-memory arena.
#pragma once

#include <string>

#include "sim/error.hh"
#include "sim/types.hh"

namespace accesys::core {

/// Monotonic allocator over [base, limit). Throws SimError when the arena
/// is exhausted (including on arithmetic overflow of huge requests).
class BumpAllocator {
  public:
    BumpAllocator() = default;
    BumpAllocator(std::string what, Addr base, Addr limit)
        : what_(std::move(what)), next_(base), limit_(limit)
    {
        ensure(base <= limit, what_, ": allocator arena ends before it starts");
    }

    [[nodiscard]] Addr alloc(std::uint64_t bytes, std::uint64_t align)
    {
        ensure(is_pow2(align), what_, ": allocation alignment ", align,
               " is not a power of two");
        const Addr addr = align_up(next_, align);
        ensure(addr >= next_ && addr <= limit_ && bytes <= limit_ - addr,
               what_, " arena exhausted (", bytes, " B requested, ",
               limit_ - std::min(limit_, next_), " B free)");
        next_ = addr + bytes;
        return addr;
    }

    [[nodiscard]] Addr next() const noexcept { return next_; }
    [[nodiscard]] Addr limit() const noexcept { return limit_; }

  private:
    std::string what_ = "memory";
    Addr next_ = 0;
    Addr limit_ = 0;
};

} // namespace accesys::core
