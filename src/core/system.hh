// Full-system assembly: CPU cluster, coherent MemBus, caches, host memory,
// SMMU, PCIe hierarchy (RC - switch - endpoint), the MatrixFlow accelerator
// and optional device-side memory — the paper's Fig. 1 topology.
//
//   CPU -> L1D ------------------.
//                                 MemBus (coherent, snooping)
//   RC.mem <- SMMU <- IOCache ---'      |-> LLC -> host MemCtrl
//      ^                                '-> RC.mmio (PCIe window)
//      |  PCIe link (RC - switch - device)
//   MatrixFlow endpoint [DMA engine | systolic array | local buffer]
//      '-> DevMem xbar -> DevMem ctrl   (when device memory is enabled)
#pragma once

#include <memory>

#include "core/system_config.hh"
#include "mem/backing_store.hh"
#include "smmu/page_table.hh"

namespace accesys::core {

class System {
  public:
    explicit System(const SystemConfig& cfg);
    ~System();

    System(const System&) = delete;
    System& operator=(const System&) = delete;

    [[nodiscard]] Simulator& sim() noexcept { return sim_; }
    [[nodiscard]] mem::BackingStore& store() noexcept { return store_; }
    [[nodiscard]] const SystemConfig& config() const noexcept { return cfg_; }

    [[nodiscard]] cpu::HostCpu& host_cpu() noexcept { return *cpu_; }
    [[nodiscard]] accel::MatrixFlowDevice& accelerator() noexcept
    {
        return *accel_;
    }
    [[nodiscard]] smmu::Smmu& smmu() noexcept { return *smmu_; }
    [[nodiscard]] smmu::PageTable& page_table() noexcept { return *ptable_; }
    [[nodiscard]] pcie::PcieLink& pcie_uplink() noexcept { return *link_up_; }

    [[nodiscard]] mem::AddrRange host_range() const noexcept
    {
        return mem::AddrRange(0, cfg_.host_dram_bytes);
    }
    [[nodiscard]] mem::AddrRange devmem_range() const noexcept
    {
        return mem::AddrRange::with_size(cfg_.devmem_base,
                                         cfg_.devmem_bytes);
    }

    /// Bump-allocate workload memory (page-aligned by default).
    [[nodiscard]] Addr alloc_host(std::uint64_t bytes,
                                  std::uint64_t align = 4096);
    [[nodiscard]] Addr alloc_devmem(std::uint64_t bytes,
                                    std::uint64_t align = 4096);
    [[nodiscard]] Addr alloc(Placement place, std::uint64_t bytes,
                             std::uint64_t align = 4096);

    /// Identity-map host pages covering [addr, addr+size) for device access.
    void map_host_pages(Addr addr, std::uint64_t size);

    /// Stat lookup shorthand (throws on unknown names).
    [[nodiscard]] double stat(const std::string& name)
    {
        return sim_.stats().value(name);
    }
    [[nodiscard]] stats::Registry& stats() noexcept { return sim_.stats(); }

  private:
    void build();

    SystemConfig cfg_;
    Simulator sim_;
    mem::BackingStore store_;

    std::unique_ptr<smmu::PageTable> ptable_;
    std::unique_ptr<mem::Xbar> membus_;
    std::unique_ptr<cpu::HostCpu> cpu_;
    std::unique_ptr<cache::Cache> l1d_;
    std::unique_ptr<cache::Cache> llc_;
    std::unique_ptr<cache::Cache> iocache_;
    std::unique_ptr<mem::MemCtrl> host_mem_;
    std::unique_ptr<mem::SimpleMem> host_simple_mem_;
    std::unique_ptr<smmu::Smmu> smmu_;
    std::unique_ptr<pcie::RootComplex> rc_;
    std::unique_ptr<pcie::PcieSwitch> pcie_switch_;
    std::unique_ptr<pcie::PcieLink> link_up_;
    std::unique_ptr<pcie::PcieLink> link_dn_;
    std::unique_ptr<accel::MatrixFlowDevice> accel_;
    std::unique_ptr<mem::Xbar> devmem_xbar_;
    std::unique_ptr<mem::MemCtrl> devmem_mem_;
    std::unique_ptr<mem::SimpleMem> devmem_simple_mem_;

    Addr host_alloc_next_ = 0;
    Addr devmem_alloc_next_ = 0;
    Addr host_alloc_limit_ = 0;
};

} // namespace accesys::core
