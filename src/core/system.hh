// Full-system assembly: CPU cluster, coherent MemBus, caches, host memory,
// SMMU, and a declarative PCIe hierarchy (RC - switch tree - N endpoints)
// of MatrixFlow accelerators with optional per-device memory — the paper's
// Fig. 1 topology, generalised to multi-accelerator systems.
//
//   CPU -> L1D ------------------.
//                                 MemBus (coherent, snooping)
//   RC.mem <- SMMU <- IOCache ---'      |-> LLC -> host MemCtrl
//      ^      (per-device streams)      '-> RC.mmio (PCIe window)
//      |  link_up (shared uplink)
//   PcieSwitch ----------------------+------------------... nested switches
//      | link_dn      | link_dn1     | link_dn2
//   MatrixFlow[0]   MatrixFlow[1]  MatrixFlow[2]   ... endpoint N-1
//   [DMA|SA|buf]    [DMA|SA|buf]   [DMA|SA|buf]
//      |               |
//   DevMem xbar     DevMem xbar1     (per-device memory, when enabled)
//      '-> DevMem ctrl  '-> DevMem ctrl1
//
// Multi-accelerator topologies
// ----------------------------
// The endpoint list comes from SystemConfig::devices (see DeviceConfig):
// each entry carries its own MatrixFlowParams, DMA parameters, BAR /
// device-memory placement, SMMU stream id and switch attachment point;
// SystemConfig::switch_tree nests additional PcieSwitch levels. All
// placement knobs auto-carve (TopologyBuilder assigns unique requester
// ids and a non-overlapping address map), and every device gets a
// distinct stat prefix ("mf.", "mf1.", ...). An empty device list means
// the classic single-device system; the single-device accessors below
// (`accelerator()` == `accelerator(0)`) keep existing call sites working
// unchanged.
#pragma once

#include <memory>

#include "core/bump_alloc.hh"
#include "core/system_config.hh"
#include "core/topology.hh"
#include "mem/backing_store.hh"
#include "smmu/page_table.hh"

namespace accesys::core {

class System {
  public:
    explicit System(const SystemConfig& cfg);
    ~System();

    System(const System&) = delete;
    System& operator=(const System&) = delete;

    [[nodiscard]] Simulator& sim() noexcept { return sim_; }
    [[nodiscard]] mem::BackingStore& store() noexcept { return store_; }
    [[nodiscard]] const SystemConfig& config() const noexcept { return cfg_; }

    [[nodiscard]] cpu::HostCpu& host_cpu() noexcept { return *cpu_; }

    /// Number of accelerator endpoints in the topology.
    [[nodiscard]] std::size_t device_count() const noexcept
    {
        return topo_.devices.size();
    }
    /// Endpoint `idx`; the no-argument form is the single-device shorthand.
    [[nodiscard]] accel::MatrixFlowDevice& accelerator(std::size_t idx = 0)
    {
        return *device(idx).device;
    }
    /// SMMU stream id assigned to endpoint `idx`.
    [[nodiscard]] std::uint32_t stream_id_of(std::size_t idx = 0)
    {
        return device(idx).stream_id;
    }

    [[nodiscard]] smmu::Smmu& smmu() noexcept { return *smmu_; }
    [[nodiscard]] smmu::PageTable& page_table() noexcept { return *ptable_; }
    /// The shared RC-facing uplink every endpoint contends on.
    [[nodiscard]] pcie::PcieLink& pcie_uplink() noexcept
    {
        return *topo_.uplinks[0];
    }
    /// The point-to-point link between endpoint `idx` and its switch.
    [[nodiscard]] pcie::PcieLink& pcie_downlink(std::size_t idx = 0)
    {
        return *device(idx).link;
    }

    [[nodiscard]] mem::AddrRange host_range() const noexcept
    {
        return mem::AddrRange(0, cfg_.host_dram_bytes);
    }
    /// Device-memory aperture of endpoint `idx` (empty if disabled).
    [[nodiscard]] mem::AddrRange devmem_range(std::size_t idx = 0)
    {
        return device(idx).devmem;
    }

    /// Bump-allocate workload memory (page-aligned by default).
    [[nodiscard]] Addr alloc_host(std::uint64_t bytes,
                                  std::uint64_t align = 4096);
    [[nodiscard]] Addr alloc_devmem(std::uint64_t bytes,
                                    std::uint64_t align = 4096);
    /// Allocate from endpoint `idx`'s device memory.
    [[nodiscard]] Addr alloc_devmem_on(std::size_t idx, std::uint64_t bytes,
                                       std::uint64_t align = 4096);
    [[nodiscard]] Addr alloc(Placement place, std::uint64_t bytes,
                             std::uint64_t align = 4096);
    /// Placement-directed allocation against endpoint `idx`'s memories.
    [[nodiscard]] Addr alloc_on(std::size_t idx, Placement place,
                                std::uint64_t bytes,
                                std::uint64_t align = 4096);

    /// Identity-map host pages covering [addr, addr+size) for device access.
    void map_host_pages(Addr addr, std::uint64_t size);

    /// Stat lookup shorthand (throws on unknown names).
    [[nodiscard]] double stat(const std::string& name)
    {
        return sim_.stats().value(name);
    }
    [[nodiscard]] stats::Registry& stats() noexcept { return sim_.stats(); }

  private:
    void build();
    [[nodiscard]] DeviceInstance& device(std::size_t idx);

    SystemConfig cfg_;
    Simulator sim_;
    mem::BackingStore store_;

    /// Fault-injection registry (created only for an active FaultPlan,
    /// installed on sim_ before any fault-aware component constructs so
    /// each one can allocate its fault state exactly once).
    std::unique_ptr<FaultInjector> fault_;

    std::unique_ptr<smmu::PageTable> ptable_;
    std::unique_ptr<mem::Xbar> membus_;
    std::unique_ptr<cpu::HostCpu> cpu_;
    std::unique_ptr<cache::Cache> l1d_;
    std::unique_ptr<cache::Cache> llc_;
    std::unique_ptr<cache::Cache> iocache_;
    std::unique_ptr<mem::MemCtrl> host_mem_;
    std::unique_ptr<mem::SimpleMem> host_simple_mem_;
    std::unique_ptr<smmu::Smmu> smmu_;
    std::unique_ptr<pcie::RootComplex> rc_;
    Topology topo_; ///< switch tree, endpoints and their device memory

    BumpAllocator host_alloc_;
};

} // namespace accesys::core
