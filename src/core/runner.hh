// Experiment runner: drives workloads through a System exactly the way the
// paper's software stack does — the CPU writes a command descriptor into
// host memory, rings the accelerator's doorbell over MMIO, and polls a
// completion flag the device DMA-writes back; Non-GEMM operators run on the
// CPU between offloads.
//
// Multi-accelerator scenarios: dispatch() stages one GEMM per call against
// any endpoint; run_dispatched() then rings every staged doorbell
// back-to-back and polls the completion flags, so all endpoints execute
// concurrently and contend on the shared PCIe uplink. run_gemm() is the
// single-device shorthand built on the same path.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "accel/command.hh"
#include "core/system.hh"
#include "workload/gemm.hh"
#include "workload/vit.hh"

namespace accesys::core {

struct GemmRunResult {
    Tick start = 0;
    Tick end = 0;
    bool verified = false;
    std::uint64_t mismatches = 0;

    [[nodiscard]] Tick elapsed() const { return end - start; }
    [[nodiscard]] double ms() const { return ticks_to_ms(elapsed()); }

    /// Achieved GEMM throughput in GMAC/s.
    [[nodiscard]] double gmacs(const workload::GemmSpec& spec) const
    {
        return spec.macs() / ticks_to_sec(elapsed()) / 1e9;
    }
};

struct VitRunResult {
    Tick start = 0;
    Tick end = 0;
    Tick gemm_ticks = 0;    ///< time in offload phases (doorbell -> flag)
    Tick nongemm_ticks = 0; ///< time in CPU vector ops
    std::uint64_t gemm_cmds = 0;
    std::uint64_t vector_ops = 0;

    [[nodiscard]] Tick elapsed() const { return end - start; }
    [[nodiscard]] double ms() const { return ticks_to_ms(elapsed()); }
    [[nodiscard]] Tick other_ticks() const
    {
        return elapsed() - gemm_ticks - nongemm_ticks;
    }
};

/// How one device's job ended in a concurrent multi-device run.
enum class JobStatus {
    ok,        ///< completion flag observed
    timed_out, ///< flag never arrived within FaultPlan::job_timeout_ns
    failed,    ///< every allowed attempt timed out (failover exhausted)
};

/// Endpoint health as tracked by the runner's failover machinery.
enum class EndpointHealth {
    healthy,     ///< full member of the dispatch pool
    degraded,    ///< recent failure; retries avoid it when possible
    quarantined, ///< consecutive-failure threshold hit; never dispatched
};

/// One attempt at running a job on some endpoint (failover runs record the
/// full history; single-shot runs record exactly one).
struct JobAttempt {
    std::size_t device = 0;
    JobStatus status = JobStatus::ok;
    Tick start = 0; ///< round start (doorbell ring)
    Tick end = 0;   ///< round end (flag seen or poll given up)
};

/// Outcome of one device's share of a concurrent multi-device run.
struct DeviceGemmResult {
    std::size_t device = 0;
    workload::GemmSpec spec{};
    /// Per-job outcome. Only fault runs with a job timeout can report
    /// anything but `ok`: a clean run that loses a flag deadlocks loudly
    /// instead (the old behaviour, preserved).
    JobStatus status = JobStatus::ok;
    /// Attempt history (failover runs only; empty on the classic
    /// single-round path, where `status` is the whole story).
    std::vector<JobAttempt> attempts;
    /// Tick the device finished posting its completion flag (device-side,
    /// so dispatch/poll order cannot bias completion-skew measurements).
    Tick done = 0;
    bool verified = false;
    std::uint64_t mismatches = 0;

    [[nodiscard]] bool ok() const noexcept { return status == JobStatus::ok; }

    /// Bytes this device's DMA engine moved (payload, both directions).
    std::uint64_t dma_bytes = 0;
    /// Achieved DMA bandwidth over the whole run, in GB/s.
    [[nodiscard]] double gbps(Tick elapsed) const
    {
        return elapsed == 0
                   ? 0.0
                   : static_cast<double>(dma_bytes) / ticks_to_sec(elapsed) /
                         1e9;
    }
};

/// Outcome of a concurrent multi-device GEMM scenario.
struct MultiGemmResult {
    Tick start = 0;
    Tick end = 0;
    /// True when the run stopped early because a requested/armed
    /// checkpoint was written (see Runner::set_restore_path and
    /// arm_signal_checkpoint): per-device outcomes below are meaningless
    /// and verification was skipped.
    bool checkpointed = false;
    std::vector<DeviceGemmResult> devices;
    /// Per-endpoint health after the run (failover runs; empty otherwise).
    std::vector<EndpointHealth> health;
    /// Jobs re-dispatched to another endpoint after a failed attempt.
    std::uint64_t redispatches = 0;
    /// Function-level resets issued to recover failed endpoints.
    std::uint64_t flrs = 0;

    [[nodiscard]] Tick elapsed() const { return end - start; }
    [[nodiscard]] double ms() const { return ticks_to_ms(elapsed()); }
    [[nodiscard]] bool all_verified() const
    {
        for (const auto& d : devices) {
            if (!d.verified) {
                return false;
            }
        }
        return !devices.empty();
    }
    /// Aggregate throughput across all devices, in GMAC/s.
    [[nodiscard]] double aggregate_gmacs() const
    {
        if (elapsed() == 0) {
            return 0.0;
        }
        double macs = 0.0;
        for (const auto& d : devices) {
            macs += static_cast<double>(d.spec.macs());
        }
        return macs / ticks_to_sec(elapsed()) / 1e9;
    }
    /// Aggregate DMA bandwidth across all devices, in GB/s.
    [[nodiscard]] double aggregate_gbps() const
    {
        double gbps = 0.0;
        for (const auto& d : devices) {
            gbps += d.gbps(elapsed());
        }
        return gbps;
    }
};

class Runner {
  public:
    explicit Runner(System& sys) : sys_(&sys) {}

    /// Offload one GEMM. With `verify`, operands are randomised and the
    /// result is bit-compared against a golden model (exercising the full
    /// functional DMA path).
    GemmRunResult run_gemm(const workload::GemmSpec& spec, Placement place,
                           bool verify = false);

    /// Stage one GEMM on endpoint `device_idx`: allocates and maps the
    /// operands (against that device's memories for Placement::devmem) and
    /// prepares the command descriptor. Nothing executes until
    /// run_dispatched().
    void dispatch(std::size_t device_idx, const workload::GemmSpec& spec,
                  Placement place, bool verify = false);

    /// Execute every dispatched GEMM concurrently: the CPU rings all
    /// doorbells back-to-back, then polls each completion flag. Clears the
    /// dispatch list.
    MultiGemmResult run_dispatched();

    /// Run one full ViT inference; returns the phase-split timing that
    /// Figs. 7 and 8 report.
    VitRunResult run_vit(const workload::VitConfig& cfg, Placement place);

    /// Restore checkpoint `path` before the next run enters the event
    /// loop. Protocol: the caller re-runs the *identical* dispatch in a
    /// fresh process (same SystemConfig, same alloc/map/dispatch calls —
    /// all deterministic), which re-stages the CPU program and its
    /// closures; restore() then overwrites every component's dynamic
    /// state on top, and run() resumes bit-identically. Host-side result
    /// fields sampled by Call ops that executed before the checkpoint
    /// (start ticks, DMA baselines) stay unset in the restored process;
    /// the stats registry — the bit-identity contract — is restored.
    void set_restore_path(std::string path) { restore_ = std::move(path); }

    /// Restore checkpoint `path` into the fresh System *without* running
    /// it: re-stages a program with the same op shape as run_dispatched()
    /// (the CPU's restored pc must land inside an identical program) and
    /// then loads the snapshot. For tooling that measures or inspects
    /// restored state only — the host-side sampling Calls are stubs, so
    /// resume a run through set_restore_path() + run_dispatched() instead.
    /// Clears the dispatch list.
    void restore_dispatched(const std::string& path);

  private:
    struct PendingGemm {
        std::size_t device = 0;
        workload::GemmSpec spec{};
        Placement place = Placement::host;
        bool verify = false;
        Addr c = 0;
        Addr flag = 0;
        Addr desc = 0;
        accel::GemmCommand cmd{};
        std::vector<std::int32_t> golden;
    };

    /// Per-endpoint health record (hysteresis counters; persists across
    /// run_dispatched() batches, like real fleet health would).
    struct EpHealth {
        EndpointHealth state = EndpointHealth::healthy;
        unsigned consecutive_failures = 0;
        unsigned consecutive_successes = 0;
        std::uint64_t failures_total = 0;
        std::uint64_t successes_total = 0;
    };

    /// Fleet-level failover stats, registered only when failover is armed
    /// (active plan with job_max_attempts > 1) so clean dumps are
    /// unchanged.
    struct FleetStats {
        explicit FleetStats(stats::Registry& reg)
            : group(reg, "runner.fleet"),
              rounds(group, "rounds", "dispatch rounds executed"),
              redispatches(group, "redispatches",
                           "jobs re-dispatched after a failed attempt"),
              flrs(group, "flrs",
                   "function-level resets issued to failed endpoints"),
              degrades(group, "degrades",
                       "healthy -> degraded health transitions"),
              quarantines(group, "quarantines",
                          "degraded -> quarantined health transitions"),
              rehabs(group, "rehabs",
                     "degraded -> healthy health transitions"),
              failures(group, "job_failures",
                       "jobs abandoned after attempts/budget ran out")
        {
        }
        stats::Group group;
        stats::Scalar rounds;
        stats::Scalar redispatches;
        stats::Scalar flrs;
        stats::Scalar degrades;
        stats::Scalar quarantines;
        stats::Scalar rehabs;
        stats::Scalar failures;
    };

    /// Round-based failover path of run_dispatched() (armed by an active
    /// fault plan with job_max_attempts > 1).
    MultiGemmResult run_failover(const FaultPlan& plan);
    /// One line per endpoint: health state and hysteresis counters.
    [[nodiscard]] std::string health_summary() const;

    System* sys_;
    std::vector<PendingGemm> pending_;
    std::string restore_;
    std::vector<EpHealth> health_;
    std::unique_ptr<FleetStats> fleet_;
};

/// Arm SIGINT/SIGTERM as checkpoint-then-exit: the handler posts an
/// interrupt on the simulator (flag writes only — async-signal-safe), the
/// run loop writes `path` at the next quiescent point and returns
/// ExitCause::checkpointed. Call sites observe MultiGemmResult::
/// checkpointed (or the RunResult cause) and exit; a later invocation
/// resumes via Runner::set_restore_path. No-op when ACCESYS_CKPT=0.
void arm_signal_checkpoint(System& sys, std::string path);

} // namespace accesys::core
