// Experiment runner: drives workloads through a System exactly the way the
// paper's software stack does — the CPU writes a command descriptor into
// host memory, rings the accelerator's doorbell over MMIO, and polls a
// completion flag the device DMA-writes back; Non-GEMM operators run on the
// CPU between offloads.
//
// Multi-accelerator scenarios: dispatch() stages one GEMM per call against
// any endpoint; run_dispatched() then rings every staged doorbell
// back-to-back and polls the completion flags, so all endpoints execute
// concurrently and contend on the shared PCIe uplink. run_gemm() is the
// single-device shorthand built on the same path.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "accel/command.hh"
#include "core/system.hh"
#include "workload/gemm.hh"
#include "workload/vit.hh"

namespace accesys::workload {
class RequestGen;
}

namespace accesys::core {

struct GemmRunResult {
    Tick start = 0;
    Tick end = 0;
    bool verified = false;
    std::uint64_t mismatches = 0;

    [[nodiscard]] Tick elapsed() const { return end - start; }
    [[nodiscard]] double ms() const { return ticks_to_ms(elapsed()); }

    /// Achieved GEMM throughput in GMAC/s.
    [[nodiscard]] double gmacs(const workload::GemmSpec& spec) const
    {
        return spec.macs() / ticks_to_sec(elapsed()) / 1e9;
    }
};

struct VitRunResult {
    Tick start = 0;
    Tick end = 0;
    Tick gemm_ticks = 0;    ///< time in offload phases (doorbell -> flag)
    Tick nongemm_ticks = 0; ///< time in CPU vector ops
    std::uint64_t gemm_cmds = 0;
    std::uint64_t vector_ops = 0;

    [[nodiscard]] Tick elapsed() const { return end - start; }
    [[nodiscard]] double ms() const { return ticks_to_ms(elapsed()); }
    [[nodiscard]] Tick other_ticks() const
    {
        return elapsed() - gemm_ticks - nongemm_ticks;
    }
};

/// How one device's job ended in a concurrent multi-device run.
enum class JobStatus {
    ok,        ///< completion flag observed
    timed_out, ///< flag never arrived within FaultPlan::job_timeout_ns
    failed,    ///< every allowed attempt timed out (failover exhausted)
    rejected,  ///< serving admission refused it (full queue / tenant quota)
    shed,      ///< admitted but dropped (shed_oldest / deadline shedding)
    pending,   ///< serving bookkeeping: not finally accounted yet
};

/// Endpoint health as tracked by the runner's failover machinery.
enum class EndpointHealth {
    healthy,     ///< full member of the dispatch pool
    degraded,    ///< recent failure; retries avoid it when possible
    quarantined, ///< consecutive-failure threshold hit; never dispatched
};

/// One attempt at running a job on some endpoint (failover runs record the
/// full history; single-shot runs record exactly one).
struct JobAttempt {
    std::size_t device = 0;
    JobStatus status = JobStatus::ok;
    Tick start = 0; ///< round start (doorbell ring)
    Tick end = 0;   ///< round end (flag seen or poll given up)
};

/// Outcome of one device's share of a concurrent multi-device run.
struct DeviceGemmResult {
    std::size_t device = 0;
    workload::GemmSpec spec{};
    /// Per-job outcome. Only fault runs with a job timeout can report
    /// anything but `ok`: a clean run that loses a flag deadlocks loudly
    /// instead (the old behaviour, preserved).
    JobStatus status = JobStatus::ok;
    /// Attempt history (failover runs only; empty on the classic
    /// single-round path, where `status` is the whole story).
    std::vector<JobAttempt> attempts;
    /// Tick the device finished posting its completion flag (device-side,
    /// so dispatch/poll order cannot bias completion-skew measurements).
    Tick done = 0;
    bool verified = false;
    std::uint64_t mismatches = 0;

    [[nodiscard]] bool ok() const noexcept { return status == JobStatus::ok; }

    /// Bytes this device's DMA engine moved (payload, both directions).
    std::uint64_t dma_bytes = 0;
    /// Achieved DMA bandwidth over the whole run, in GB/s.
    [[nodiscard]] double gbps(Tick elapsed) const
    {
        return elapsed == 0
                   ? 0.0
                   : static_cast<double>(dma_bytes) / ticks_to_sec(elapsed) /
                         1e9;
    }
};

/// Outcome of a concurrent multi-device GEMM scenario.
struct MultiGemmResult {
    Tick start = 0;
    Tick end = 0;
    /// True when the run stopped early because a requested/armed
    /// checkpoint was written (see Runner::set_restore_path and
    /// arm_signal_checkpoint): per-device outcomes below are meaningless
    /// and verification was skipped.
    bool checkpointed = false;
    std::vector<DeviceGemmResult> devices;
    /// Per-endpoint health after the run (failover runs; empty otherwise).
    std::vector<EndpointHealth> health;
    /// Jobs re-dispatched to another endpoint after a failed attempt.
    std::uint64_t redispatches = 0;
    /// Function-level resets issued to recover failed endpoints.
    std::uint64_t flrs = 0;

    [[nodiscard]] Tick elapsed() const { return end - start; }
    [[nodiscard]] double ms() const { return ticks_to_ms(elapsed()); }
    [[nodiscard]] bool all_verified() const
    {
        for (const auto& d : devices) {
            if (!d.verified) {
                return false;
            }
        }
        return !devices.empty();
    }
    /// Aggregate throughput across all devices, in GMAC/s.
    [[nodiscard]] double aggregate_gmacs() const
    {
        if (elapsed() == 0) {
            return 0.0;
        }
        double macs = 0.0;
        for (const auto& d : devices) {
            macs += static_cast<double>(d.spec.macs());
        }
        return macs / ticks_to_sec(elapsed()) / 1e9;
    }
    /// Aggregate DMA bandwidth across all devices, in GB/s.
    [[nodiscard]] double aggregate_gbps() const
    {
        double gbps = 0.0;
        for (const auto& d : devices) {
            gbps += d.gbps(elapsed());
        }
        return gbps;
    }
};

/// Backpressure signal derived from the admission-queue depth against the
/// ServingConfig watermarks. Purely observational: it is surfaced in the
/// `runner.serving.state` stat (and transition counters) so external
/// clients could throttle, but admission itself keys on capacity/policy.
enum class ServingState {
    normal = 0,
    throttled = 1, ///< depth >= ServingConfig::throttle_mark()
    shedding = 2,  ///< depth >= ServingConfig::shed_mark()
};

/// Full per-request ledger entry for one served (or refused) request.
/// Nothing is silently dropped: every offered request ends as exactly one
/// of ok / failed / rejected / shed, with its attempt history attached.
struct ServedJob {
    std::uint64_t id = 0;
    std::uint32_t tenant = 0;
    workload::GemmSpec spec{};
    Tick arrival = 0;
    Tick first_dispatch = 0; ///< first doorbell (0 = never dispatched)
    Tick last_dispatch = 0;  ///< doorbell of the final attempt
    Tick done = 0;           ///< device-side completion tick (ok only)
    JobStatus status = JobStatus::pending;
    std::vector<JobAttempt> attempts;
    bool verified = false;
    std::uint64_t mismatches = 0;

    [[nodiscard]] bool ok() const noexcept { return status == JobStatus::ok; }
};

/// Per-tenant SLO accounting over one serve() run, split into queueing
/// time (arrival -> first doorbell) and service time (last doorbell ->
/// device completion). Percentiles are over completed jobs.
struct TenantSlo {
    std::string name;
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t shed = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    double p50_queue_ns = 0.0;
    double p99_queue_ns = 0.0;
    double p50_service_ns = 0.0;
    double p99_service_ns = 0.0;
    double p50_e2e_ns = 0.0;
    double p99_e2e_ns = 0.0;
    double goodput_jobs_per_s = 0.0; ///< completed / wall-clock horizon
};

/// Outcome of one open-loop serving run (Runner::serve).
struct ServingResult {
    Tick start = 0;
    Tick end = 0;
    /// True when the run stopped early because a requested/armed
    /// checkpoint was written; counters below cover the rounds executed
    /// so far and the ledger/tenant breakdown is left empty.
    bool checkpointed = false;
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t shed = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t rounds = 0;      ///< dispatch rounds executed
    std::uint64_t idle_rounds = 0; ///< empty-queue waits for an arrival
    std::uint64_t redispatches = 0;
    std::uint64_t flrs = 0;
    ServingState final_state = ServingState::normal;
    std::vector<ServedJob> jobs; ///< ledger, indexed by request id
    std::vector<TenantSlo> tenants;
    std::vector<EndpointHealth> health;

    [[nodiscard]] Tick elapsed() const { return end - start; }
    [[nodiscard]] double ms() const { return ticks_to_ms(elapsed()); }
    [[nodiscard]] double goodput_jobs_per_s() const
    {
        return elapsed() == 0
                   ? 0.0
                   : static_cast<double>(completed) / ticks_to_sec(elapsed());
    }
    /// The accounting identity serve() enforces: admitted + rejected ==
    /// offered and completed + shed + failed == admitted.
    [[nodiscard]] bool accounted() const
    {
        return admitted + rejected == offered &&
               completed + shed + failed == admitted;
    }
};

class Runner {
  public:
    explicit Runner(System& sys) : sys_(&sys) {}

    /// Offload one GEMM. With `verify`, operands are randomised and the
    /// result is bit-compared against a golden model (exercising the full
    /// functional DMA path).
    GemmRunResult run_gemm(const workload::GemmSpec& spec, Placement place,
                           bool verify = false);

    /// Stage one GEMM on endpoint `device_idx`: allocates and maps the
    /// operands (against that device's memories for Placement::devmem) and
    /// prepares the command descriptor. Nothing executes until
    /// run_dispatched().
    void dispatch(std::size_t device_idx, const workload::GemmSpec& spec,
                  Placement place, bool verify = false);

    /// Execute every dispatched GEMM concurrently: the CPU rings all
    /// doorbells back-to-back, then polls each completion flag. Clears the
    /// dispatch list.
    MultiGemmResult run_dispatched();

    /// Run one full ViT inference; returns the phase-split timing that
    /// Figs. 7 and 8 report.
    VitRunResult run_vit(const workload::VitConfig& cfg, Placement place);

    /// Open-loop serving: drain `gen`'s arrival schedule through a bounded
    /// admission queue and dispatch round-by-round across every endpoint
    /// until the schedule is exhausted and the queue is empty. Overload
    /// behaviour (reject / shed / deadline-shed), watermark backpressure
    /// and per-tenant SLO accounting follow `scfg`; endpoint faults
    /// compose with the active FaultPlan exactly like run_dispatched()
    /// failover (timeouts, health hysteresis, FLR, bounded retries).
    /// Operands live in host memory in per-endpoint slots sized for the
    /// largest shape in the schedule, so queue + operand memory stay
    /// bounded no matter how long the overload lasts.
    ///
    /// Checkpointing: all serving state (queue, in-flight round, ledger,
    /// endpoint health) is covered by a "runner.serving" checkpoint hook;
    /// a mid-overload snapshot restored via set_restore_path() + serve()
    /// with the identical System/RequestGen/ServingConfig resumes
    /// bit-identically. One serving Runner per System (the hook section
    /// name is fixed).
    ServingResult serve(workload::RequestGen& gen, const ServingConfig& scfg);

    /// Restore checkpoint `path` before the next run enters the event
    /// loop. Protocol: the caller re-runs the *identical* dispatch in a
    /// fresh process (same SystemConfig, same alloc/map/dispatch calls —
    /// all deterministic), which re-stages the CPU program and its
    /// closures; restore() then overwrites every component's dynamic
    /// state on top, and run() resumes bit-identically. Host-side result
    /// fields sampled by Call ops that executed before the checkpoint
    /// (start ticks, DMA baselines) stay unset in the restored process;
    /// the stats registry — the bit-identity contract — is restored.
    void set_restore_path(std::string path) { restore_ = std::move(path); }

    /// Restore checkpoint `path` into the fresh System *without* running
    /// it: re-stages a program with the same op shape as run_dispatched()
    /// (the CPU's restored pc must land inside an identical program) and
    /// then loads the snapshot. For tooling that measures or inspects
    /// restored state only — the host-side sampling Calls are stubs, so
    /// resume a run through set_restore_path() + run_dispatched() instead.
    /// Clears the dispatch list.
    void restore_dispatched(const std::string& path);

  private:
    struct PendingGemm {
        std::size_t device = 0;
        workload::GemmSpec spec{};
        Placement place = Placement::host;
        bool verify = false;
        Addr c = 0;
        Addr flag = 0;
        Addr desc = 0;
        accel::GemmCommand cmd{};
        std::vector<std::int32_t> golden;
    };

    /// Per-endpoint health record (hysteresis counters; persists across
    /// run_dispatched() batches, like real fleet health would).
    struct EpHealth {
        EndpointHealth state = EndpointHealth::healthy;
        unsigned consecutive_failures = 0;
        unsigned consecutive_successes = 0;
        std::uint64_t failures_total = 0;
        std::uint64_t successes_total = 0;
    };

    /// Fleet-level failover stats, registered only when failover is armed
    /// (active plan with job_max_attempts > 1) so clean dumps are
    /// unchanged.
    struct FleetStats {
        explicit FleetStats(stats::Registry& reg)
            : group(reg, "runner.fleet"),
              rounds(group, "rounds", "dispatch rounds executed"),
              redispatches(group, "redispatches",
                           "jobs re-dispatched after a failed attempt"),
              flrs(group, "flrs",
                   "function-level resets issued to failed endpoints"),
              degrades(group, "degrades",
                       "healthy -> degraded health transitions"),
              quarantines(group, "quarantines",
                          "degraded -> quarantined health transitions"),
              rehabs(group, "rehabs",
                     "degraded -> healthy health transitions"),
              failures(group, "job_failures",
                       "jobs abandoned after attempts/budget ran out")
        {
        }
        stats::Group group;
        stats::Scalar rounds;
        stats::Scalar redispatches;
        stats::Scalar flrs;
        stats::Scalar degrades;
        stats::Scalar quarantines;
        stats::Scalar rehabs;
        stats::Scalar failures;
    };

    /// Serving-path stats ("runner.serving" + one group per tenant),
    /// registered on first serve() so non-serving dumps are unchanged.
    struct ServingStats {
        explicit ServingStats(stats::Registry& reg)
            : group(reg, "runner.serving"),
              offered(group, "offered", "requests presented for admission"),
              admitted(group, "admitted", "requests accepted into the queue"),
              rejected(group, "rejected",
                       "requests refused at admission (full queue / quota)"),
              shed(group, "shed",
                   "admitted jobs dropped (shed_oldest / deadline)"),
              completed(group, "completed", "jobs finished successfully"),
              failed(group, "failed",
                     "admitted jobs abandoned after attempts/budget ran out"),
              retries(group, "retries",
                      "jobs re-queued after a failed attempt"),
              rounds(group, "rounds", "dispatch rounds executed"),
              idle_rounds(group, "idle_rounds",
                          "empty-queue rounds spent waiting for an arrival"),
              state(group, "state",
                    "current ServingState (0 normal, 1 throttled, 2 shed)"),
              throttle_enters(group, "throttle_enters",
                              "transitions into ServingState::throttled"),
              shed_enters(group, "shed_enters",
                          "transitions into ServingState::shedding"),
              verify_failures(group, "verify_failures",
                              "completed jobs whose result mismatched"),
              goodput(group, "goodput_jobs_per_s",
                      "completed jobs per second over the serve horizon"),
              queue_depth(group, "queue_depth",
                          "admission-queue depth sampled per round"),
              queue_ns(group, "queue_ns",
                       "arrival -> first doorbell wait (completed jobs)"),
              service_ns(group, "service_ns",
                         "final doorbell -> device completion"),
              e2e_ns(group, "e2e_ns", "arrival -> device completion")
        {
        }
        stats::Group group;
        stats::Scalar offered;
        stats::Scalar admitted;
        stats::Scalar rejected;
        stats::Scalar shed;
        stats::Scalar completed;
        stats::Scalar failed;
        stats::Scalar retries;
        stats::Scalar rounds;
        stats::Scalar idle_rounds;
        stats::Scalar state;
        stats::Scalar throttle_enters;
        stats::Scalar shed_enters;
        stats::Scalar verify_failures;
        stats::Scalar goodput;
        stats::Distribution queue_depth;
        stats::Distribution queue_ns;
        stats::Distribution service_ns;
        stats::Distribution e2e_ns;

        /// Per-tenant SLO stat block ("runner.serving.<tenant>").
        struct Tenant {
            Tenant(stats::Registry& reg, const std::string& name)
                : group(reg, "runner.serving." + name),
                  offered(group, "offered", "requests offered"),
                  admitted(group, "admitted", "requests admitted"),
                  rejected(group, "rejected", "requests rejected"),
                  shed(group, "shed", "admitted jobs shed"),
                  completed(group, "completed", "jobs completed"),
                  failed(group, "failed", "jobs failed"),
                  p50_queue_ns(group, "p50_queue_ns", "median queueing time"),
                  p99_queue_ns(group, "p99_queue_ns", "p99 queueing time"),
                  p50_service_ns(group, "p50_service_ns",
                                 "median service time"),
                  p99_service_ns(group, "p99_service_ns", "p99 service time"),
                  p50_e2e_ns(group, "p50_e2e_ns", "median end-to-end latency"),
                  p99_e2e_ns(group, "p99_e2e_ns", "p99 end-to-end latency"),
                  goodput(group, "goodput_jobs_per_s",
                          "completed jobs per second"),
                  queue_ns(group, "queue_ns", "arrival -> first doorbell"),
                  service_ns(group, "service_ns",
                             "final doorbell -> completion"),
                  e2e_ns(group, "e2e_ns", "arrival -> completion")
            {
            }
            stats::Group group;
            stats::Scalar offered;
            stats::Scalar admitted;
            stats::Scalar rejected;
            stats::Scalar shed;
            stats::Scalar completed;
            stats::Scalar failed;
            stats::Scalar p50_queue_ns;
            stats::Scalar p99_queue_ns;
            stats::Scalar p50_service_ns;
            stats::Scalar p99_service_ns;
            stats::Scalar p50_e2e_ns;
            stats::Scalar p99_e2e_ns;
            stats::Scalar goodput;
            stats::Distribution queue_ns;
            stats::Distribution service_ns;
            stats::Distribution e2e_ns;
        };
        std::vector<std::unique_ptr<Tenant>> tenants;
    };

    /// One in-flight serving dispatch (trivially copyable -> pod_vec).
    struct ServeSlot {
        std::uint64_t job = 0;        ///< ledger index (request id)
        std::uint64_t ep = 0;         ///< endpoint index
        std::uint64_t flag_value = 0; ///< completion value this round waits on
    };

    /// All serve() state that must survive a mid-run checkpoint; saved and
    /// restored by the "runner.serving" hook (serialize_serving).
    struct ServeState {
        bool active = false;
        std::uint8_t round_kind = 0; ///< 0 none, 1 dispatch, 2 idle
        std::uint64_t idle_cycles = 0;
        std::uint64_t est_service_ticks = 0; ///< EMA, deadline shedding
        std::uint32_t retry_budget = 0;
        std::uint8_t state = 0; ///< ServingState
        Tick start = 0;
        std::uint64_t rounds = 0;
        std::uint64_t idle_rounds = 0;
        std::uint64_t redispatches = 0;
        std::uint64_t flrs = 0;
        std::vector<std::uint64_t> ep_flag_value; ///< per-ep flag sequence
        std::vector<ServeSlot> slots;             ///< in-flight round
        std::vector<std::uint64_t> queue;         ///< job ids, head first
        std::vector<ServedJob> jobs;              ///< ledger by request id
    };

    /// Round-based failover path of run_dispatched() (armed by an active
    /// fault plan with job_max_attempts > 1).
    MultiGemmResult run_failover(const FaultPlan& plan);
    /// One line per endpoint: health state and hysteresis counters.
    [[nodiscard]] std::string health_summary() const;

    /// Least-loaded endpoint in health state `want` that is not already
    /// claimed this round; -1 when none qualifies. Load is total jobs ever
    /// run (failures + successes). Determinism contract: ties break by the
    /// lowest endpoint index — the scan is an ascending-index pass with a
    /// strict `<`, so selection is a pure function of the health table and
    /// never of any host-side iteration order that could vary between
    /// ACCESYS_THREADS values. Shared by run_failover() re-dispatch and
    /// serve() so both paths inherit the same guarantee.
    static std::ptrdiff_t least_loaded(const std::vector<EpHealth>& health,
                                       const std::vector<bool>& claimed,
                                       EndpointHealth want);

    /// Success/failure sides of the endpoint-health hysteresis shared by
    /// run_failover() and serve(). health_failure() also issues the FLR.
    void health_success(std::size_t ep, const FaultPlan& plan);
    void health_failure(std::size_t ep, const FaultPlan& plan);

    /// Save/load every field of `serve_` plus the health table (the
    /// "runner.serving" checkpoint-hook body).
    void serialize_serving(Ckpt& ar);

    System* sys_;
    std::vector<PendingGemm> pending_;
    std::string restore_;
    std::vector<EpHealth> health_;
    std::unique_ptr<FleetStats> fleet_;
    std::unique_ptr<ServingStats> serving_;
    std::unique_ptr<ServeState> serve_;
    bool serving_hook_armed_ = false;
};

/// Arm SIGINT/SIGTERM as checkpoint-then-exit: the handler posts an
/// interrupt on the simulator (flag writes only — async-signal-safe), the
/// run loop writes `path` at the next quiescent point and returns
/// ExitCause::checkpointed. Call sites observe MultiGemmResult::
/// checkpointed (or the RunResult cause) and exit; a later invocation
/// resumes via Runner::set_restore_path. No-op when ACCESYS_CKPT=0.
void arm_signal_checkpoint(System& sys, std::string path);

} // namespace accesys::core
