// Experiment runner: drives workloads through a System exactly the way the
// paper's software stack does — the CPU writes a command descriptor into
// host memory, rings the accelerator's doorbell over MMIO, and polls a
// completion flag the device DMA-writes back; Non-GEMM operators run on the
// CPU between offloads.
#pragma once

#include "core/system.hh"
#include "workload/gemm.hh"
#include "workload/vit.hh"

namespace accesys::core {

struct GemmRunResult {
    Tick start = 0;
    Tick end = 0;
    bool verified = false;
    std::uint64_t mismatches = 0;

    [[nodiscard]] Tick elapsed() const { return end - start; }
    [[nodiscard]] double ms() const { return ticks_to_ms(elapsed()); }

    /// Achieved GEMM throughput in GMAC/s.
    [[nodiscard]] double gmacs(const workload::GemmSpec& spec) const
    {
        return spec.macs() / ticks_to_sec(elapsed()) / 1e9;
    }
};

struct VitRunResult {
    Tick start = 0;
    Tick end = 0;
    Tick gemm_ticks = 0;    ///< time in offload phases (doorbell -> flag)
    Tick nongemm_ticks = 0; ///< time in CPU vector ops
    std::uint64_t gemm_cmds = 0;
    std::uint64_t vector_ops = 0;

    [[nodiscard]] Tick elapsed() const { return end - start; }
    [[nodiscard]] double ms() const { return ticks_to_ms(elapsed()); }
    [[nodiscard]] Tick other_ticks() const
    {
        return elapsed() - gemm_ticks - nongemm_ticks;
    }
};

class Runner {
  public:
    explicit Runner(System& sys) : sys_(&sys) {}

    /// Offload one GEMM. With `verify`, operands are randomised and the
    /// result is bit-compared against a golden model (exercising the full
    /// functional DMA path).
    GemmRunResult run_gemm(const workload::GemmSpec& spec, Placement place,
                           bool verify = false);

    /// Run one full ViT inference; returns the phase-split timing that
    /// Figs. 7 and 8 report.
    VitRunResult run_vit(const workload::VitConfig& cfg, Placement place);

  private:
    System* sys_;
};

} // namespace accesys::core
