#include "core/topology.hh"

#include <algorithm>
#include <set>

namespace accesys::core {

namespace {

/// Region bases for auto-carved placements. Device 0's defaults (from
/// MatrixFlowParams / SystemConfig) sit exactly at these bases, so the
/// single-device address map is unchanged.
constexpr Addr kBarRegionBase = 0x100000000000ULL;
constexpr Addr kDevmemRegionBase = 0x200000000000ULL;
constexpr Addr kStagingRegionBase = 0x700000000000ULL;

constexpr std::uint64_t kBarAlign = 64 * kKiB;
constexpr std::uint64_t kDevmemAlign = kGiB;
constexpr std::uint64_t kStagingAlign = kMiB;

/// Earliest aligned base at or after `cursor` where `size` bytes fit clear
/// of every range in `taken`; claims and returns it.
Addr carve(std::vector<mem::AddrRange>& taken, Addr cursor,
           std::uint64_t size, std::uint64_t align)
{
    Addr base = align_up(cursor, align);
    for (bool moved = true; moved;) {
        moved = false;
        const auto cand = mem::AddrRange::with_size(base, size);
        for (const mem::AddrRange& r : taken) {
            if (cand.overlaps(r)) {
                base = align_up(r.end(), align);
                moved = true;
                break;
            }
        }
    }
    taken.push_back(mem::AddrRange::with_size(base, size));
    return base;
}

std::string index_suffix(std::size_t i)
{
    return i == 0 ? std::string() : std::to_string(i);
}

} // namespace

ResolvedTopology TopologyBuilder::resolve(const SystemConfig& cfg)
{
    ResolvedTopology topo;
    topo.switches = cfg.resolved_switch_tree();
    const std::vector<DeviceConfig> devs = cfg.resolved_devices();

    for (std::size_t i = 1; i < topo.switches.size(); ++i) {
        require_cfg(topo.switches[i].parent < i,
                    "switch tree must be declared in topological order");
    }

    // --- names and PCIe requester ids ---------------------------------------
    std::set<std::string> names;
    std::set<std::uint16_t> ids;
    for (const DeviceConfig& dev : devs) {
        if (dev.accel.ep.device_id != 0) {
            require_cfg(ids.insert(dev.accel.ep.device_id).second,
                        "duplicate PCIe requester id ",
                        dev.accel.ep.device_id);
        }
    }

    std::uint16_t next_id = 1;
    std::vector<mem::AddrRange> taken;
    Addr bar_cursor = kBarRegionBase;
    Addr devmem_cursor = kDevmemRegionBase;
    Addr staging_cursor = kStagingRegionBase;

    // Explicitly placed ranges are claimed first so auto-carving steers
    // around them regardless of declaration order.
    for (const DeviceConfig& dev : devs) {
        if (dev.accel.bar0_base != 0) {
            taken.push_back(mem::AddrRange::with_size(dev.accel.bar0_base,
                                                      dev.accel.bar0_size));
        }
        if (dev.enable_devmem && dev.devmem_base != 0) {
            taken.push_back(mem::AddrRange::with_size(dev.devmem_base,
                                                      dev.devmem_bytes));
        }
        if (dev.accel.local_base != 0) {
            taken.push_back(mem::AddrRange::with_size(
                dev.accel.local_base, dev.accel.local_buffer_bytes));
        }
    }
    mem::check_disjoint(taken);

    topo.devices.reserve(devs.size());
    for (std::size_t i = 0; i < devs.size(); ++i) {
        const DeviceConfig& dev = devs[i];
        ResolvedDevice r;
        r.name = dev.name.empty() ? "mf" + index_suffix(i) : dev.name;
        require_cfg(names.insert(r.name).second, "duplicate device name '",
                    r.name, "'");
        r.accel = dev.accel;
        r.attach_to = dev.attach_to;
        require_cfg(r.attach_to < topo.switches.size(), "device '", r.name,
                    "' attaches to a switch outside the tree");
        r.link = dev.link.value_or(cfg.pcie);
        r.link.validate();

        if (r.accel.ep.device_id == 0) {
            while (ids.count(next_id) != 0) {
                require_cfg(next_id != 0xFFFF, "PCIe requester ids exhausted");
                ++next_id;
            }
            r.accel.ep.device_id = next_id;
            ids.insert(next_id);
        }
        r.stream_id = dev.stream_id != 0 ? dev.stream_id
                                         : r.accel.ep.device_id;

        if (r.accel.bar0_base == 0) {
            r.accel.bar0_base =
                carve(taken, bar_cursor, r.accel.bar0_size, kBarAlign);
            bar_cursor = r.accel.bar0_base + r.accel.bar0_size;
        }
        if (r.accel.local_base == 0) {
            r.accel.local_base = carve(taken, staging_cursor,
                                       r.accel.local_buffer_bytes,
                                       kStagingAlign);
            staging_cursor = r.accel.local_base + r.accel.local_buffer_bytes;
        }

        r.devmem_enabled = dev.enable_devmem;
        if (dev.enable_devmem) {
            Addr base = dev.devmem_base;
            if (base == 0) {
                base = carve(taken, devmem_cursor, dev.devmem_bytes,
                             kDevmemAlign);
                devmem_cursor = base + dev.devmem_bytes;
            }
            r.devmem = mem::AddrRange::with_size(base, dev.devmem_bytes);
            r.devmem_simple = dev.devmem_simple;
            r.devmem_mem = dev.devmem_mem;
            r.devmem_simple_mem = dev.devmem_simple_mem;
            r.devmem_xbar = dev.devmem_xbar;
        }
        topo.devices.push_back(std::move(r));
    }

    // --- CPU-visible PCIe window --------------------------------------------
    Addr lo = topo.devices.front().accel.bar0_base;
    Addr hi = 0;
    for (const ResolvedDevice& dev : topo.devices) {
        for (const mem::AddrRange& bar : dev.bars()) {
            lo = std::min(lo, bar.start());
            hi = std::max(hi, bar.end());
        }
        require_cfg(dev.accel.local_base >= cfg.host_dram_bytes,
                    "device '", dev.name,
                    "' staging space overlaps host DRAM");
    }
    topo.pcie_window = mem::AddrRange(lo, hi);
    require_cfg(topo.pcie_window.start() >= cfg.host_dram_bytes,
                "the PCIe window must not overlap host DRAM");
    return topo;
}

Topology TopologyBuilder::build(Simulator& sim, mem::BackingStore& store,
                                const SystemConfig& cfg,
                                pcie::RootComplex& rc)
{
    const ResolvedTopology plan = resolve(cfg);
    const mem::AddrRange host(0, cfg.host_dram_bytes);

    Topology topo;
    topo.pcie_window = plan.pcie_window;

    // Union of BARs / requester ids per nested-switch subtree, so every
    // parent switch can route memory TLPs and completions down the tree.
    std::vector<std::vector<mem::AddrRange>> subtree_bars(
        plan.switches.size());
    std::vector<std::vector<std::uint16_t>> subtree_ids(plan.switches.size());
    for (const ResolvedDevice& dev : plan.devices) {
        for (std::size_t s = dev.attach_to; s != 0;
             s = plan.switches[s].parent) {
            const auto bars = dev.bars();
            subtree_bars[s].insert(subtree_bars[s].end(), bars.begin(),
                                   bars.end());
            subtree_ids[s].push_back(dev.requester_id());
        }
    }

    // --- switch tree ---------------------------------------------------------
    for (std::size_t i = 0; i < plan.switches.size(); ++i) {
        topo.switches.push_back(std::make_unique<pcie::PcieSwitch>(
            sim, "pcie_sw" + index_suffix(i), plan.switches[i].params));
        const std::string link_name =
            i == 0 ? "link_up" : "pcie_sw" + std::to_string(i) + "_up";
        topo.uplinks.push_back(std::make_unique<pcie::PcieLink>(
            sim, link_name, plan.switches[i].uplink));
    }
    rc.connect_pcie(topo.uplinks[0]->end_a());
    topo.switches[0]->set_upstream(topo.uplinks[0]->end_b());
    for (std::size_t i = 1; i < plan.switches.size(); ++i) {
        require_cfg(!subtree_ids[i].empty(), "switch ", i,
                    " has no endpoints below it");
        topo.switches[plan.switches[i].parent]->add_downstream(
            topo.uplinks[i]->end_a(), subtree_bars[i], subtree_ids[i]);
        topo.switches[i]->set_upstream(topo.uplinks[i]->end_b());
    }

    // --- endpoints + per-device device memory --------------------------------
    //
    // With a multi-thread budget, each endpoint subtree (downstream link,
    // MatrixFlow device, devmem xbar + controller) is carved into its own
    // simulation domain: its components bind to the domain's event queue
    // and allocate from the domain's packet/TLP pools, the downstream
    // link becomes the domain boundary (staged handoffs flushed at every
    // barrier, in device order), and dev->host DMA data stages in the
    // domain's write journal. The barrier quantum is the minimum
    // propagation delay over all boundary links — the conservative
    // lookahead that makes free-running windows safe.
    const bool carve = sim.threads() > 1;
    Tick min_prop = kMaxTick;
    for (std::size_t i = 0; i < plan.devices.size(); ++i) {
        const ResolvedDevice& dev = plan.devices[i];
        DeviceInstance inst;
        inst.name = dev.name;
        inst.stream_id = dev.stream_id;
        inst.attach_to = dev.attach_to;

        if (carve) {
            inst.tlp_pool = std::make_unique<pcie::TlpPool>();
            inst.pkt_pool = std::make_unique<mem::PacketPool>();
            inst.journal = std::make_unique<mem::WriteJournal>();
            inst.domain = sim.begin_domain(dev.name);
            // Construction runs under the domain's thread context so
            // components that cache a pool reference resolve correctly.
            pcie::TlpPool::set_current(inst.tlp_pool.get());
            mem::PacketPool::set_current(inst.pkt_pool.get());
        }

        inst.link = std::make_unique<pcie::PcieLink>(
            sim, "link_dn" + index_suffix(i), dev.link);
        inst.device = std::make_unique<accel::MatrixFlowDevice>(
            sim, dev.name, dev.accel, store, host);
        topo.switches[dev.attach_to]->add_downstream(
            inst.link->end_a(), dev.bars(), dev.requester_id());
        inst.device->connect_pcie(inst.link->end_b());

        if (dev.devmem_enabled) {
            inst.devmem = dev.devmem;
            inst.devmem_alloc = BumpAllocator(
                dev.name + " device memory", dev.devmem.start(),
                dev.devmem.end());
            inst.devmem_xbar = std::make_unique<mem::Xbar>(
                sim, "devmem_xbar" + index_suffix(i), dev.devmem_xbar);
            const std::string mem_name = "devmem" + index_suffix(i);
            if (dev.devmem_simple) {
                inst.devmem_simple = std::make_unique<mem::SimpleMem>(
                    sim, mem_name, dev.devmem_simple_mem, dev.devmem);
                inst.devmem_xbar->add_downstream("mem_side", dev.devmem)
                    .bind(inst.devmem_simple->port());
            } else {
                inst.devmem_ctrl = std::make_unique<mem::MemCtrl>(
                    sim, mem_name, dev.devmem_mem, dev.devmem);
                inst.devmem_xbar->add_downstream("mem_side", dev.devmem)
                    .bind(inst.devmem_ctrl->port());
            }
            mem::ResponsePort& mover_up =
                inst.devmem_xbar->add_upstream("mover");
            mem::ResponsePort& aperture_up =
                inst.devmem_xbar->add_upstream("aperture");
            inst.device->attach_devmem(dev.devmem, mover_up, aperture_up);
        }

        if (carve) {
            pcie::TlpPool::set_current(nullptr);
            mem::PacketPool::set_current(nullptr);
            sim.end_domain();

            // The downstream link is the domain boundary: end_a stays in
            // the root domain (switch side, global pools), end_b in the
            // device's domain.
            Simulator::Domain& dom = sim.domain(inst.domain);
            inst.link->set_boundary(sim.queue(), pcie::TlpPool::global(),
                                    *dom.queue, *inst.tlp_pool);
            min_prop = std::min(min_prop, inst.link->prop_ticks());
            inst.device->dma_engine().set_write_journal(inst.journal.get());

            pcie::TlpPool* tp = inst.tlp_pool.get();
            mem::PacketPool* pp = inst.pkt_pool.get();
            dom.install = [tp, pp] {
                pcie::TlpPool::set_current(tp);
                mem::PacketPool::set_current(pp);
            };
            mem::WriteJournal* j = inst.journal.get();
            mem::BackingStore* st = &store;
            dom.drain_functional = [j, st](Tick t) { j->apply_until(*st, t); };

            Simulator* sp = &sim;
            pcie::PcieLink* lk = inst.link.get();
            sim.register_barrier_hook(
                [sp, lk] { sp->note_handoffs(lk->flush_boundary()); });
        }
        topo.devices.push_back(std::move(inst));
    }
    if (carve && !topo.devices.empty()) {
        ensure(min_prop > 0,
               "parallel domains need a non-zero link propagation delay");
        sim.set_quantum(min_prop);
    }
    return topo;
}

} // namespace accesys::core
