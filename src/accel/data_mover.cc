#include "accel/data_mover.hh"

#include <algorithm>

#include "sim/serialize.hh"

namespace accesys::accel {

void PcieDmaMover::submit(TransferJob job)
{
    const bool src_host = host_range_.contains(job.src);
    const bool dst_host = host_range_.contains(job.dst);
    ensure(src_host != dst_host,
           "PCIe transfer must cross the host boundary exactly once");

    dma::DmaJob dj;
    if (src_host) {
        dj.dir = dma::DmaJob::Dir::host_to_dev;
        dj.host_addr = job.src;
        dj.dev_addr = job.dst;
    } else {
        dj.dir = dma::DmaJob::Dir::dev_to_host;
        dj.host_addr = job.dst;
        dj.dev_addr = job.src;
    }
    dj.bytes = job.bytes;
    dj.on_complete = job.on_complete;
    engine_->submit(std::move(dj));
}

DevMemMover::DevMemMover(Simulator& sim, std::string name,
                         const Params& params, mem::AddrRange devmem_range,
                         mem::BackingStore& store)
    : SimObject(sim, std::move(name)),
      params_(params),
      devmem_range_(devmem_range),
      store_(&store),
      port_(this->name() + ".port", *this)
{
    require_cfg(params_.request_bytes >= 16 && params_.max_outstanding >= 1,
                this->name(), ": bad mover parameters");
    port_.set_fast_path(
        [](void* s, mem::PacketPtr& pkt) {
            return static_cast<DevMemMover*>(s)->recv_resp(pkt);
        },
        [](void* s) { static_cast<DevMemMover*>(s)->retry_req(); }, this);
}

void DevMemMover::submit(TransferJob job)
{
    ensure(job.bytes > 0 && job.bytes < (1ULL << 24), name(),
           ": transfer size out of range");
    if (!devmem_range_.contains(job.src)) {
        // Write path (scratchpad -> device memory): snapshot now, since the
        // producer may reuse its staging buffer before the writes drain.
        store_->copy(job.dst, job.src, job.bytes);
    }
    auto js = std::make_unique<JobState>();
    js->job = std::move(job);
    js->id = next_id_++;
    js->reads_devmem = devmem_range_.contains(js->job.src);
    by_id_[js->id] = js.get();
    active_.push_back(std::move(js));
    pump();
}

void DevMemMover::pump()
{
    if (pumping_) {
        return;
    }
    pumping_ = true;
    for (auto& jsp : active_) {
        JobState& js = *jsp;
        while (js.issued < js.job.bytes && !blocked_ &&
               outstanding_ < params_.max_outstanding) {
            const auto chunk =
                static_cast<std::uint32_t>(std::min<std::uint64_t>(
                    params_.request_bytes, js.job.bytes - js.issued));
            const std::uint64_t off = js.issued;

            mem::PacketPtr pkt;
            if (js.reads_devmem) {
                pkt = mem::packet_pool().make_read(js.job.src + off, chunk);
                ++reads_;
            } else {
                // Data was snapshotted at submit(); the non-posted write
                // tracks completion timing and ordering only.
                pkt = mem::packet_pool().make_write(js.job.dst + off, chunk);
                ++writes_;
            }
            // Responses carry (job id, offset) for reassembly.
            pkt->set_tag((js.id << 24) | off);
            if (!port_.send_req(pkt)) {
                blocked_ = true;
                break;
            }
            ++outstanding_;
            js.issued += chunk;
            bytes_ += chunk;
        }
        if (blocked_ || outstanding_ >= params_.max_outstanding) {
            break;
        }
    }
    pumping_ = false;
    reap();
}

void DevMemMover::reap()
{
    while (!active_.empty() &&
           active_.front()->finished >= active_.front()->job.bytes) {
        const dma::Continuation cb = active_.front()->job.on_complete;
        by_id_.erase(active_.front()->id);
        active_.pop_front();
        if (cb) {
            cb.fire();
        }
    }
}

void DevMemMover::flr_reset()
{
    ensure(!pumping_, name(), ": function-level reset mid-pump");
    // Issued-but-unanswered requests become orphans: their responses are
    // already queued downstream and must be drained, not asserted on.
    orphans_pending_ += outstanding_;
    outstanding_ = 0;
    by_id_.clear();
    active_.clear();
    blocked_ = false;
}

bool DevMemMover::recv_resp(mem::PacketPtr& pkt)
{
    const std::uint64_t id = pkt->tag() >> 24;
    const std::uint64_t off = pkt->tag() & ((1ULL << 24) - 1);
    const auto it = by_id_.find(id);
    if (it == by_id_.end() && orphans_pending_ > 0) {
        --orphans_pending_;
        pkt.reset();
        return true;
    }
    ensure(it != by_id_.end(), name(), ": response for unknown job");
    JobState& js = *it->second;
    const auto chunk = pkt->size();

    if (js.reads_devmem) {
        store_->copy(js.job.dst + off, js.job.src + off, chunk);
    }
    js.finished += chunk;
    --outstanding_;
    pkt.reset();
    pump();
    return true;
}

void DevMemMover::serialize(Ckpt& ar)
{
    ensure(!pumping_, name(), ": checkpoint mid-pump");
    std::uint64_t n = active_.size();
    ar.io(n, next_id_, outstanding_, orphans_pending_, blocked_);
    if (ar.saving()) {
        for (auto& jsp : active_) {
            std::uint8_t has_cont = jsp->job.on_complete ? 1 : 0;
            ar.io(jsp->job.src, jsp->job.dst, jsp->job.bytes, has_cont,
                  jsp->job.on_complete.kind, jsp->job.on_complete.arg,
                  jsp->id, jsp->issued, jsp->finished, jsp->reads_devmem);
        }
    } else {
        ensure(active_.empty(), name(), ": restore into a busy mover");
        for (std::uint64_t i = 0; i < n; ++i) {
            auto js = std::make_unique<JobState>();
            std::uint8_t has_cont = 0;
            ar.io(js->job.src, js->job.dst, js->job.bytes, has_cont,
                  js->job.on_complete.kind, js->job.on_complete.arg,
                  js->id, js->issued, js->finished, js->reads_devmem);
            if (has_cont != 0) {
                ensure(listener_ != nullptr, name(),
                       ": job with continuation but no listener");
                js->job.on_complete.listener = listener_;
            }
            by_id_[js->id] = js.get();
            active_.push_back(std::move(js));
        }
    }
    port_.serialize(ar);
}

void DevMemMover::report_occupancy(std::string& out) const
{
    if (active_.empty() && outstanding_ == 0) {
        return;
    }
    out += "  " + name() + ": active_jobs=" + std::to_string(active_.size()) +
           ", outstanding_reqs=" + std::to_string(outstanding_) +
           (blocked_ ? ", blocked on downstream" : "") + "\n";
}

} // namespace accesys::accel
