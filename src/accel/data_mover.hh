// Data-movement abstraction used by the accelerator controller.
//
// The controller schedules tile transfers without knowing which transport
// carries them:
//   * PcieDmaMover  — wraps the PCIe DMA engine (host-side memory paths).
//   * DevMemMover   — issues direct requests to the device-side memory
//                     controller (the paper's "arrow 6" bypass of PCIe).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

#include "dma/dma_engine.hh"
#include "mem/addr_range.hh"
#include "mem/port.hh"
#include "sim/simulator.hh"

namespace accesys::accel {

struct TransferJob {
    Addr src = 0;
    Addr dst = 0;
    std::uint64_t bytes = 0;
    /// Plain-data completion descriptor (see dma::Continuation) — keeps
    /// in-flight transfers checkpointable.
    dma::Continuation on_complete;
};

class DataMover {
  public:
    virtual ~DataMover() = default;
    virtual void submit(TransferJob job) = 0;
};

/// Routes transfers through the endpoint's PCIe DMA engine. Exactly one of
/// src/dst must fall inside the host address range.
class PcieDmaMover final : public DataMover {
  public:
    PcieDmaMover(dma::DmaEngine& engine, mem::AddrRange host_range)
        : engine_(&engine), host_range_(host_range)
    {
    }

    void submit(TransferJob job) override;

  private:
    dma::DmaEngine* engine_;
    mem::AddrRange host_range_;
};

/// Pulls/pushes data against the device-side memory controller directly.
class DevMemMover final : public SimObject,
                          public DataMover,
                          private mem::Requestor {
  public:
    struct Params {
        std::uint32_t request_bytes = 256;
        unsigned max_outstanding = 64;
    };

    DevMemMover(Simulator& sim, std::string name, const Params& params,
                mem::AddrRange devmem_range, mem::BackingStore& store);

    [[nodiscard]] mem::RequestPort& port() noexcept { return port_; }

    void submit(TransferJob job) override;

    [[nodiscard]] bool idle() const { return active_.empty(); }

    /// Function-level reset: drop every active job without firing
    /// continuations and free the outstanding-request window. Responses
    /// for requests already in flight toward the memory controller are
    /// swallowed as orphans when they return.
    void flr_reset();

    /// Listener re-bound into restored job continuations (one per device).
    void set_continuation_listener(dma::TransferListener* l) noexcept
    {
        listener_ = l;
    }

    /// Checkpoint/restore the job pipeline and outstanding-request state.
    void serialize(Ckpt& ar) override;
    void report_occupancy(std::string& out) const override;

  private:
    bool recv_resp(mem::PacketPtr& pkt) override;
    void retry_req() override
    {
        blocked_ = false;
        pump();
    }

    struct JobState {
        TransferJob job;
        std::uint64_t id = 0;
        std::uint64_t issued = 0;
        std::uint64_t finished = 0;
        bool reads_devmem = false; ///< src is device memory (load path)
    };

    void pump();
    void reap();

    Params params_;
    mem::AddrRange devmem_range_;
    mem::BackingStore* store_;
    dma::TransferListener* listener_ = nullptr;
    mem::RequestPort port_;
    /// Jobs pipeline: chunks are issued from every job in admission order,
    /// bounded only by the shared outstanding-request window.
    std::deque<std::unique_ptr<JobState>> active_;
    std::unordered_map<std::uint64_t, JobState*> by_id_;
    std::uint64_t next_id_ = 0;
    unsigned outstanding_ = 0;
    /// Responses still owed to jobs dropped by a function-level reset;
    /// swallowed on arrival instead of tripping the unknown-job check.
    unsigned orphans_pending_ = 0;
    bool blocked_ = false;
    bool pumping_ = false;

    stats::Scalar reads_{stat_group(), "reads", "device-memory reads issued"};
    stats::Scalar writes_{stat_group(), "writes",
                          "device-memory writes issued"};
    stats::Scalar bytes_{stat_group(), "bytes", "bytes moved"};
};

} // namespace accesys::accel
