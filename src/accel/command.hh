// Command descriptor exchanged between the host driver and the MatrixFlow
// accelerator. The CPU writes one into host memory and rings the doorbell
// with its address; the device DMA-fetches and executes it, then writes
// `flag_value` to `flag_addr` (host memory) as the completion signal.
#pragma once

#include <cstdint>

#include "sim/types.hh"

namespace accesys::accel {

enum CommandFlags : std::uint32_t {
    kCmdVerify = 1U << 0,       ///< run functional GEMM (tests)
    kCmdDataInDevMem = 1U << 1, ///< operands/results in device-side memory
};

struct GemmCommand {
    static constexpr std::uint32_t kMagic = 0x4D464C57; // "MFLW"

    std::uint32_t magic = kMagic;
    std::uint32_t flags = 0;
    std::uint32_t m = 0; ///< rows of A / C
    std::uint32_t n = 0; ///< cols of B / C
    std::uint32_t k = 0; ///< reduction depth
    std::uint32_t reserved = 0;
    Addr addr_a = 0;     ///< A: m x k int8, row-major
    Addr addr_b = 0;     ///< B transposed: n x k int8, row-major
    Addr addr_c = 0;     ///< C: m x n int32, row-major
    Addr flag_addr = 0;  ///< host address for the completion flag
    std::uint64_t flag_value = 1;
};

static_assert(sizeof(GemmCommand) == 64,
              "GemmCommand must be exactly one 64-byte descriptor");

} // namespace accesys::accel
