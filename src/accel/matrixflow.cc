#include "accel/matrixflow.hh"

#include <algorithm>

#include "sim/serialize.hh"

namespace accesys::accel {

namespace {

/// Scratchpad header area: descriptor scratch + completion-flag scratch.
constexpr Addr kDescScratch = 0;
constexpr Addr kFlagScratch = 64;
constexpr Addr kDataBase = 256;

} // namespace

void MatrixFlowParams::validate() const
{
    sa.validate();
    dma.validate();
    require_cfg(local_buffer_bytes >= 16 * kKiB,
                "MatrixFlow local buffer must be at least 16 KiB");
    require_cfg(cmd_fifo_depth >= 1, "MatrixFlow needs a command slot");
}

MatrixFlowDevice::MatrixFlowDevice(Simulator& sim, std::string name,
                                   const MatrixFlowParams& params,
                                   mem::BackingStore& store,
                                   mem::AddrRange host_range)
    : Endpoint(sim, std::move(name), params.ep,
               {mem::AddrRange::with_size(params.bar0_base,
                                          params.bar0_size)}),
      params_(params),
      store_(&store),
      host_range_(host_range),
      sa_(params.sa),
      dma_(sim, this->name() + ".dma", params.dma, *this, store),
      pcie_mover_(dma_, host_range),
      aperture_port_(this->name() + ".aperture", *this),
      aperture_q_(sim, this->name() + ".aperture_q",
                  [](void* s, mem::PacketPtr& pkt) {
                      return static_cast<MatrixFlowDevice*>(s)
                          ->aperture_port_.send_req(pkt);
                  },
                  this)
{
    params_.validate();
    dma_.set_continuation_listener(this);
    aperture_port_.set_fast_path(
        [](void* s, mem::PacketPtr& pkt) {
            return static_cast<MatrixFlowDevice*>(s)->recv_resp(pkt);
        },
        [](void* s) { static_cast<MatrixFlowDevice*>(s)->retry_req(); },
        this);
    compute_event_.set_name(this->name() + ".compute_done");
    compute_event_.set_callback([this] { compute_done(); });
    flr_kick_event_.set_name(this->name() + ".flr_kick");
    flr_kick_event_.set_callback([this] { fetch_next_command(); });
    if (FaultInjector* fi = sim.fault_injector(); fi != nullptr) {
        mf_fault_ = std::make_unique<MfFaultState>(stat_group(), *fi,
                                                   this->name(),
                                                   fault_site_id());
    }
}

MatrixFlowDevice::MfFaultState::MfFaultState(stats::Group& g,
                                             FaultInjector& fi,
                                             const std::string& site_name,
                                             unsigned site_id)
    : hangs(g, "hangs", "seeded accelerator hangs (FSM frozen until FLR)")
{
    hang_rate_on = fi.hang_applies(site_name);
    hang_rate = fi.plan().hang_rate;
    hang_rng.reseed(fi.device_stream_seed(site_id, 1));
    std::vector<Tick> poison_discard; // the Endpoint collects its own
    std::vector<std::pair<Tick, Tick>> ur_discard;
    fi.collect_device(site_name, hang_ticks, poison_discard, ur_discard);
}

void MatrixFlowDevice::attach_devmem(mem::AddrRange devmem_range,
                                     mem::ResponsePort& mover_port,
                                     mem::ResponsePort& aperture_port)
{
    ensure(devmem_mover_ == nullptr, name(), ": devmem already attached");
    devmem_range_ = devmem_range;
    devmem_mover_ = std::make_unique<DevMemMover>(
        sim(), name() + ".devmem_mover", params_.devmem_mover, devmem_range,
        *store_);
    devmem_mover_->set_continuation_listener(this);
    devmem_mover_->port().bind(mover_port);
    aperture_port_.bind(aperture_port);
}

// --- MMIO registers ---------------------------------------------------------

std::uint64_t MatrixFlowDevice::mmio_read(Addr addr, std::uint32_t /*size*/)
{
    switch (addr) {
    case kRegStatus:
        // A wedged or resetting function reports busy: the driver's status
        // probe cannot mistake it for idle.
        return busy() || hung() || in_flr() ? 1 : 0;
    case kRegCmdCount:
        return commands_done();
    case kRegTileCount:
        return static_cast<std::uint64_t>(n_tiles_.value());
    default:
        return 0;
    }
}

void MatrixFlowDevice::mmio_write(Addr addr, std::uint32_t /*size*/,
                                  std::uint64_t value)
{
    if (addr == kRegDoorbell) {
        doorbell(static_cast<Addr>(value));
    }
    // Other offsets: write-ignored (reserved).
}

// --- command handling -------------------------------------------------------

void MatrixFlowDevice::doorbell(Addr desc_addr)
{
    ensure(cmd_fifo_.size() < params_.cmd_fifo_depth, name(),
           ": command FIFO overflow (driver must respect depth ",
           params_.cmd_fifo_depth, ")");
    cmd_fifo_.push_back(desc_addr);
    fetch_next_command();
}

void MatrixFlowDevice::fetch_next_command()
{
    if (fetching_ || run_.has_value() || cmd_fifo_.empty()) {
        return;
    }
    if (hung()) {
        return; // FSM frozen: only an FLR restarts command fetch
    }
    if (in_flr()) {
        // Doorbell rang while the function was resetting: resume fetching
        // when the reset window closes.
        if (!flr_kick_event_.scheduled()) {
            schedule(flr_kick_event_, flr_until());
        }
        return;
    }
    fetching_ = true;
    const Addr desc = cmd_fifo_.front();
    cmd_fifo_.pop_front();

    pcie_mover_.submit(TransferJob{
        desc, params_.local_base + kDescScratch, sizeof(GemmCommand),
        dma::Continuation{this, kContDescFetched, 0}});
}

void MatrixFlowDevice::transfer_done(std::uint8_t kind, std::uint32_t arg)
{
    switch (kind) {
    case kContDescFetched: {
        fetching_ = false;
        const auto cmd = store_->read_obj<GemmCommand>(params_.local_base +
                                                       kDescScratch);
        ensure(cmd.magic == GemmCommand::kMagic, name(),
               ": bad descriptor magic");
        if (mf_fault_ != nullptr && hang_roll()) {
            // Seeded accelerator hang at the command boundary: the
            // descriptor is consumed but the FSM freezes before launch.
            // The host observes a missing completion flag; recovery is an
            // FLR issued by the runner's health machinery.
            mf_fault_->hung = true;
            ++mf_fault_->hangs;
            break;
        }
        start_run(cmd);
        break;
    }
    case kContBLoaded: {
        Run& r = *run_;
        r.b_loaded = true;
        // Kick the A pipeline: fill both slots.
        load_a_strip(0);
        if (r.num_strips > 1) {
            load_a_strip(1);
        }
        try_compute();
        break;
    }
    case kContALoaded: {
        run_->a_slot_ready[arg % 2] = true;
        try_compute();
        break;
    }
    case kContCWritten: {
        Run& r = *run_;
        ensure(r.outstanding_c_jobs > 0, name(),
               ": C write accounting bug");
        --r.outstanding_c_jobs;
        if (r.all_blocks_issued && r.outstanding_c_jobs == 0) {
            run_complete();
        }
        break;
    }
    case kContFlagPosted: {
        ++n_commands_;
        last_complete_tick_ = now();
        run_.reset();
        fetch_next_command();
        break;
    }
    default:
        panic(name(), ": unknown transfer continuation kind ",
              static_cast<int>(kind));
    }
}

void MatrixFlowDevice::start_run(const GemmCommand& cmd)
{
    ensure(cmd.m > 0 && cmd.n > 0 && cmd.k > 0, name(),
           ": degenerate GEMM command");
    Run run;
    run.cmd = cmd;

    if ((cmd.flags & kCmdDataInDevMem) != 0) {
        ensure(devmem_mover_ != nullptr, name(),
               ": DevMem command without device memory attached");
        run.mover = devmem_mover_.get();
    } else {
        run.mover = &pcie_mover_;
    }

    // Choose the column-block width so that one B panel, two A strips and
    // one C strip fit in the scratchpad (minus the header area), bounded by
    // the dataflow's reuse policy (max_block_cols).
    const std::uint64_t budget =
        params_.local_buffer_bytes - kDataBase;
    const std::uint64_t a_bytes = 2ULL * 16 * cmd.k;
    const std::uint64_t cap =
        params_.max_block_cols > 0 ? params_.max_block_cols : 256;
    std::uint32_t jb = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(cap, align_up(cmd.n, 16)));
    while (jb > 16 &&
           static_cast<std::uint64_t>(jb) * cmd.k + a_bytes +
                   static_cast<std::uint64_t>(jb) * 16 * 4 >
               budget) {
        jb -= 16;
    }
    require_cfg(static_cast<std::uint64_t>(jb) * cmd.k + a_bytes +
                        static_cast<std::uint64_t>(jb) * 16 * 4 <=
                    budget,
                name(), ": K=", cmd.k,
                " too deep for the local buffer; enlarge it");

    run.jb_cols = jb;
    run.num_jblocks = static_cast<std::uint32_t>(div_ceil(cmd.n, jb));
    run.num_strips = static_cast<std::uint32_t>(div_ceil(cmd.m, 16));

    const Addr base = params_.local_base + kDataBase;
    run.buf_b = base;
    run.buf_a[0] = base + static_cast<Addr>(jb) * cmd.k;
    run.buf_a[1] = run.buf_a[0] + static_cast<Addr>(16) * cmd.k;
    run.buf_c = run.buf_a[1] + static_cast<Addr>(16) * cmd.k;

    run_.emplace(std::move(run));
    start_block();
}

void MatrixFlowDevice::start_block()
{
    Run& r = *run_;
    r.b_loaded = false;
    r.a_slot_ready = {false, false};
    r.a_slot_strip = {-1, -1};
    r.next_compute_strip = 0;
    r.next_load_strip = 0;

    const std::uint32_t col0 = r.cur_jb * r.jb_cols;
    r.cur_cols = std::min(r.jb_cols, r.cmd.n - col0);

    // B panel: `cur_cols` rows of B-transposed, each k bytes — contiguous.
    r.mover->submit(TransferJob{
        r.cmd.addr_b + static_cast<Addr>(col0) * r.cmd.k, r.buf_b,
        static_cast<std::uint64_t>(r.cur_cols) * r.cmd.k,
        dma::Continuation{this, kContBLoaded, 0}});
}

std::uint32_t MatrixFlowDevice::strip_rows(std::uint32_t strip) const
{
    const Run& r = *run_;
    return std::min<std::uint32_t>(16, r.cmd.m - strip * 16);
}

void MatrixFlowDevice::load_a_strip(std::uint32_t strip)
{
    Run& r = *run_;
    if (strip >= r.num_strips) {
        return;
    }
    const unsigned slot = strip % 2;
    ensure(!r.a_slot_ready[slot] && r.a_slot_strip[slot] != strip, name(),
           ": A-slot scheduling bug");
    r.a_slot_strip[slot] = strip;
    r.next_load_strip = strip + 1;

    const std::uint64_t bytes =
        static_cast<std::uint64_t>(strip_rows(strip)) * r.cmd.k;
    r.mover->submit(TransferJob{
        r.cmd.addr_a + static_cast<Addr>(strip) * 16 * r.cmd.k,
        r.buf_a[slot], bytes, dma::Continuation{this, kContALoaded, strip}});
}

void MatrixFlowDevice::try_compute()
{
    Run& r = *run_;
    if (r.computing || !r.b_loaded ||
        r.next_compute_strip >= r.num_strips) {
        return;
    }
    const std::uint32_t strip = r.next_compute_strip;
    const unsigned slot = strip % 2;
    if (!r.a_slot_ready[slot] ||
        r.a_slot_strip[slot] != static_cast<std::int64_t>(strip)) {
        return;
    }

    r.computing = true;
    const auto tiles = static_cast<std::uint32_t>(div_ceil(r.cur_cols, 16));
    const Tick dur = sa_.strip_ticks(tiles, r.cmd.k);
    n_tiles_ += tiles;
    compute_ticks_ += static_cast<double>(dur);
    schedule(compute_event_, now() + dur);
}

void MatrixFlowDevice::compute_done()
{
    Run& r = *run_;
    const std::uint32_t strip = r.next_compute_strip;
    const unsigned slot = strip % 2;

    if ((r.cmd.flags & kCmdVerify) != 0) {
        SystolicArray::compute_strip(*store_, r.buf_a[slot], r.buf_b,
                                     r.buf_c, strip_rows(strip), r.cur_cols,
                                     r.cmd.k, r.cur_cols);
    }
    write_c_strip(strip);

    // Release the slot and prefetch the next-but-one strip into it.
    r.a_slot_ready[slot] = false;
    r.a_slot_strip[slot] = -1;
    r.computing = false;
    ++r.next_compute_strip;
    if (r.next_load_strip < r.num_strips) {
        load_a_strip(r.next_load_strip);
    }

    if (r.next_compute_strip >= r.num_strips) {
        block_done();
        return;
    }
    try_compute();
}

void MatrixFlowDevice::write_c_strip(std::uint32_t strip)
{
    Run& r = *run_;
    const std::uint32_t rows = strip_rows(strip);
    const std::uint32_t col0 = r.cur_jb * r.jb_cols;
    // C rows are strided in the destination: one job per row segment.
    for (std::uint32_t row = 0; row < rows; ++row) {
        const Addr dst =
            r.cmd.addr_c +
            (static_cast<Addr>(strip) * 16 + row) * r.cmd.n * 4 +
            static_cast<Addr>(col0) * 4;
        ++r.outstanding_c_jobs;
        r.mover->submit(TransferJob{
            r.buf_c + static_cast<Addr>(row) * r.cur_cols * 4, dst,
            static_cast<std::uint64_t>(r.cur_cols) * 4,
            dma::Continuation{this, kContCWritten, 0}});
    }
}

void MatrixFlowDevice::block_done()
{
    Run& r = *run_;
    ++r.cur_jb;
    if (r.cur_jb < r.num_jblocks) {
        start_block();
        return;
    }
    r.all_blocks_issued = true;
    if (r.outstanding_c_jobs == 0) {
        run_complete();
    }
}

void MatrixFlowDevice::run_complete()
{
    Run& r = *run_;
    // Post the completion flag to host memory. It rides the same posted
    // path as the C data, so it cannot overtake the results.
    store_->write_obj(params_.local_base + kFlagScratch, r.cmd.flag_value);
    const Addr flag_addr = r.cmd.flag_addr;
    pcie_mover_.submit(TransferJob{
        params_.local_base + kFlagScratch, flag_addr, 8,
        dma::Continuation{this, kContFlagPosted, 0}});
}

bool MatrixFlowDevice::hang_roll()
{
    MfFaultState& f = *mf_fault_;
    bool hit = false;
    if (f.hang_idx < f.hang_ticks.size() &&
        now() >= f.hang_ticks[f.hang_idx]) {
        ++f.hang_idx;
        hit = true;
    }
    if (f.hang_rate_on) {
        // Always consume the stream: one draw per command launch, so
        // explicit events never shift the Bernoulli sequence.
        const bool rolled = f.hang_rng.chance(f.hang_rate);
        hit = hit || rolled;
    }
    return hit;
}

void MatrixFlowDevice::begin_flr(Tick duration)
{
    if (mf_fault_ != nullptr) {
        mf_fault_->hung = false;
    }
    if (compute_event_.scheduled()) {
        deschedule(compute_event_);
    }
    run_.reset();
    fetching_ = false;
    cmd_fifo_.clear();
    // Base first: it drops the staged egress queue, whose SentHooks point
    // at DMA JobStates the engine reset below recycles.
    Endpoint::begin_flr(duration);
    dma_.flr_reset();
    if (devmem_mover_ != nullptr) {
        devmem_mover_->flr_reset();
    }
    // Aperture state survives: the CPU NUMA path is function-independent.
}

// --- DMA plumbing ------------------------------------------------------------

void MatrixFlowDevice::recv_dma_completion(const pcie::Tlp& cpl)
{
    dma_.on_completion(cpl);
}

std::uint64_t MatrixFlowDevice::encode_sent_hook(
    const pcie::SentHook& hook) const
{
    return dma_.encode_sent_hook(hook);
}

pcie::SentHook MatrixFlowDevice::decode_sent_hook(std::uint64_t code)
{
    return dma_.decode_sent_hook(code);
}

// --- checkpoint/restore ------------------------------------------------------

void MatrixFlowDevice::serialize(Ckpt& ar)
{
    // DMA job lists first: the endpoint's staged egress SentHooks encode as
    // indices into the engine's active-job deque, so that deque must exist
    // before the base class decodes them. (The engine's own section — tags,
    // window accounting — restores later, in registration order.)
    dma_.serialize_jobs(ar);
    Endpoint::serialize(ar);

    ar.io(last_complete_tick_, fetching_, next_aperture_tag_);

    std::uint64_t n_fifo = cmd_fifo_.size();
    ar.io(n_fifo);
    if (ar.loading()) {
        cmd_fifo_.clear();
    }
    for (std::uint64_t i = 0; i < n_fifo; ++i) {
        Addr desc = ar.saving() ? cmd_fifo_[i] : 0;
        ar.io(desc);
        if (ar.loading()) {
            cmd_fifo_.push_back(desc);
        }
    }

    std::uint8_t has_run = run_.has_value() ? 1 : 0;
    ar.io(has_run);
    if (ar.loading()) {
        run_.reset();
        if (has_run != 0) {
            run_.emplace();
        }
    }
    if (has_run != 0) {
        Run& r = *run_;
        std::uint8_t use_devmem =
            ar.saving() && r.mover == devmem_mover_.get() ? 1 : 0;
        ar.io(r.cmd, use_devmem, r.jb_cols, r.num_jblocks, r.num_strips,
              r.cur_jb, r.cur_cols, r.buf_b, r.buf_a[0], r.buf_a[1], r.buf_c,
              r.b_loaded, r.a_slot_strip[0], r.a_slot_strip[1],
              r.a_slot_ready[0], r.a_slot_ready[1], r.next_compute_strip,
              r.next_load_strip, r.computing, r.outstanding_c_jobs,
              r.all_blocks_issued);
        if (ar.loading()) {
            if (use_devmem != 0) {
                ensure(devmem_mover_ != nullptr, name(),
                       ": checkpointed DevMem run without device memory");
                r.mover = devmem_mover_.get();
            } else {
                r.mover = &pcie_mover_;
            }
        }
    }

    // Aperture read bookkeeping: sort keys on save so checkpoint bytes are
    // independent of unordered_map iteration order.
    std::uint64_t n_ap = aperture_reads_.size();
    ar.io(n_ap);
    if (ar.saving()) {
        std::vector<std::uint64_t> keys;
        keys.reserve(aperture_reads_.size());
        for (const auto& [k, v] : aperture_reads_) {
            keys.push_back(k);
        }
        std::sort(keys.begin(), keys.end());
        for (std::uint64_t k : keys) {
            ApertureRead& v = aperture_reads_.at(k);
            ar.io(k, v.pcie_tag, v.requester, v.length);
        }
    } else {
        aperture_reads_.clear();
        for (std::uint64_t i = 0; i < n_ap; ++i) {
            std::uint64_t k = 0;
            ApertureRead v{};
            ar.io(k, v.pcie_tag, v.requester, v.length);
            aperture_reads_.emplace(k, v);
        }
    }

    aperture_q_.serialize(ar);
    aperture_port_.serialize(ar);
    compute_event_.serialize(ar, eq());
    flr_kick_event_.serialize(ar, eq());
    if (mf_fault_ != nullptr) {
        // Config-keyed presence, like the endpoint's fault block.
        ar.io(mf_fault_->hung, mf_fault_->hang_idx);
        mf_fault_->hang_rng.serialize(ar);
    }
}

void MatrixFlowDevice::report_occupancy(std::string& out) const
{
    Endpoint::report_occupancy(out);
    if (!run_.has_value() && cmd_fifo_.empty() && !fetching_ && !hung()) {
        return;
    }
    out += "  " + name() + ": cmd_fifo=" + std::to_string(cmd_fifo_.size()) +
           (fetching_ ? ", fetching descriptor" : "") +
           (hung() ? ", HUNG (awaiting FLR)" : "");
    if (run_.has_value()) {
        const Run& r = *run_;
        out += ", run{block " + std::to_string(r.cur_jb) + "/" +
               std::to_string(r.num_jblocks) + ", strip " +
               std::to_string(r.next_compute_strip) + "/" +
               std::to_string(r.num_strips) +
               ", outstanding_c=" + std::to_string(r.outstanding_c_jobs) +
               (r.computing ? ", computing" : "") + "}";
    }
    out += "\n";
}

// --- device-memory aperture (CPU NUMA path) ---------------------------------

void MatrixFlowDevice::recv_tlp(unsigned port_idx, pcie::TlpPtr tlp)
{
    const bool is_aperture_mem =
        devmem_mover_ != nullptr && tlp->type != pcie::TlpType::completion &&
        devmem_range_.contains(tlp->addr);
    if (!is_aperture_mem) {
        Endpoint::recv_tlp(port_idx, std::move(tlp));
        return;
    }

    const Tick ready = now() + ticks_from_ns(params_.ep.latency_ns);
    if (tlp->type == pcie::TlpType::mem_read) {
        ++n_aperture_reads_;
        const std::uint64_t atag = next_aperture_tag_++;
        aperture_reads_[atag] =
            ApertureRead{tlp->tag, tlp->requester, tlp->length};
        auto pkt = mem::packet_pool().make_read(tlp->addr, tlp->length);
        pkt->set_tag(atag);
        aperture_q_.push(std::move(pkt), ready);
    } else {
        ++n_aperture_writes_;
        auto pkt = mem::packet_pool().make_write(tlp->addr, tlp->length);
        pkt->flags.posted = true;
        aperture_q_.push(std::move(pkt), ready);
    }
    // CPU-side functional data is already consistent via the BackingStore.
    release_pcie_ingress(tlp->payload_bytes());
}

bool MatrixFlowDevice::recv_resp(mem::PacketPtr& pkt)
{
    const auto it = aperture_reads_.find(pkt->tag());
    ensure(it != aperture_reads_.end(), name(), ": stray aperture response");
    const ApertureRead ar = it->second;
    aperture_reads_.erase(it);
    send_tlp(pcie::tlp_pool().make_completion(ar.length, ar.pcie_tag, ar.requester, 0,
                                   true));
    pkt.reset();
    return true;
}

} // namespace accesys::accel
