// MatrixFlow accelerator device: a PCIe endpoint wrapping the systolic
// array, local scratchpad buffer, multi-channel DMA engine and (optionally)
// a device-side memory port — the paper's "Accelerator Wrapper" (§III-B).
//
// Execution of one GemmCommand:
//   1. doorbell MMIO write carries the descriptor's host address;
//   2. the descriptor (64 B) is DMA-fetched;
//   3. the controller runs a blocked GEMM: for each column block, load the
//      B panel into the scratchpad, then stream double-buffered A strips
//      through the systolic array and write back C row segments;
//   4. a completion flag is posted to host memory (MSI-style), which the
//      CPU polls.
//
// Operands move over PCIe (host memory modes) or through the device-side
// memory controller (DevMem mode) depending on the command flags; the
// completion flag always crosses PCIe because the host polls it.
#pragma once

#include <array>
#include <optional>
#include <unordered_map>

#include "accel/command.hh"
#include "accel/data_mover.hh"
#include "accel/systolic_array.hh"
#include "dma/dma_engine.hh"
#include "mem/backing_store.hh"
#include "pcie/endpoint.hh"
#include "sim/ring_buffer.hh"

namespace accesys::accel {

struct MatrixFlowParams {
    SystolicParams sa;
    dma::DmaParams dma;
    pcie::EndpointParams ep;
    DevMemMover::Params devmem_mover;
    std::uint64_t local_buffer_bytes = 256 * kKiB;
    /// Column-block (B panel) width cap in output columns. MatrixFlow's
    /// streaming dataflow uses one tile column (16) — arithmetic intensity
    /// ~16 B/cycle, which is what the paper's memory-sensitivity studies
    /// exhibit. 0 = auto-fit the widest panel the buffer allows (the
    /// "wide-reuse" ablation; far less bandwidth-hungry).
    std::uint32_t max_block_cols = 16;
    /// BAR0 (registers) base address in the system map.
    Addr bar0_base = 0x100000000000ULL;
    std::uint64_t bar0_size = 64 * kKiB;
    /// Functional staging space backing the scratchpad (outside every
    /// routable range; only the device touches it).
    Addr local_base = 0x700000000000ULL;
    std::size_t cmd_fifo_depth = 8;

    void validate() const;
};

/// BAR0 register map.
inline constexpr Addr kRegDoorbell = 0x00; ///< W: host addr of a descriptor
inline constexpr Addr kRegStatus = 0x08;   ///< R: 0 idle, 1 busy
inline constexpr Addr kRegCmdCount = 0x10; ///< R: commands completed
inline constexpr Addr kRegTileCount = 0x18; ///< R: tiles computed

class MatrixFlowDevice final : public pcie::Endpoint,
                               public dma::DmaPort,
                               public dma::TransferListener,
                               private mem::Requestor {
  public:
    MatrixFlowDevice(Simulator& sim, std::string name,
                     const MatrixFlowParams& params,
                     mem::BackingStore& store, mem::AddrRange host_range);

    /// Enable device-side memory: aperture + direct mover traffic go to
    /// `port` (typically an Xbar in front of the DevMem controller).
    void attach_devmem(mem::AddrRange devmem_range,
                       mem::ResponsePort& mover_port,
                       mem::ResponsePort& aperture_port);

    [[nodiscard]] dma::DmaEngine& dma_engine() noexcept { return dma_; }
    [[nodiscard]] const MatrixFlowParams& params() const noexcept
    {
        return params_;
    }
    [[nodiscard]] bool busy() const noexcept
    {
        return run_.has_value() || !cmd_fifo_.empty();
    }
    [[nodiscard]] std::uint64_t commands_done() const noexcept
    {
        return static_cast<std::uint64_t>(n_commands_.value());
    }
    /// Ticks the systolic array spent computing (utilisation probe).
    [[nodiscard]] Tick compute_busy_ticks() const noexcept
    {
        return static_cast<Tick>(compute_ticks_.value());
    }
    /// Tick the most recent command finished posting its completion flag
    /// (0 if none yet) — the device-side completion time, free of the
    /// CPU's poll-order observation bias.
    [[nodiscard]] Tick last_complete_tick() const noexcept
    {
        return last_complete_tick_;
    }

    // dma::DmaPort
    void dma_send(pcie::TlpPtr tlp, pcie::SentHook on_sent) override
    {
        send_tlp(std::move(tlp), on_sent);
    }
    [[nodiscard]] std::size_t dma_egress_depth() const override
    {
        return egress_depth();
    }
    [[nodiscard]] std::uint16_t dma_device_id() const override
    {
        return device_id();
    }
    [[nodiscard]] bool dma_path_dead() const override
    {
        return pcie_tx_failed();
    }

    /// Function-level reset: clear a seeded hang, abandon the current run
    /// and command FIFO, reset the DMA engine and device-memory mover, then
    /// delegate to the endpoint base (ingress/egress drain + busy window).
    void begin_flr(Tick duration) override;

    /// Wedged by a seeded accelerator-hang fault (FSM frozen at a command
    /// boundary; only an FLR recovers it)?
    [[nodiscard]] bool hung() const noexcept
    {
        return mf_fault_ != nullptr && mf_fault_->hung;
    }

    // dma::TransferListener — continuation dispatch for every transfer the
    // controller issues (see the kCont* kinds below).
    void transfer_done(std::uint8_t kind, std::uint32_t arg) override;

    /// Checkpoint/restore the controller: DMA job lists first (egress
    /// SentHooks point into them), then the endpoint queues, then the
    /// GEMM run state and aperture bookkeeping.
    void serialize(Ckpt& ar) override;
    void report_occupancy(std::string& out) const override;

  protected:
    std::uint64_t mmio_read(Addr addr, std::uint32_t size) override;
    void mmio_write(Addr addr, std::uint32_t size,
                    std::uint64_t value) override;
    void recv_dma_completion(const pcie::Tlp& cpl) override;
    void tx_ready() override { dma_.on_tx_ready(); }
    std::uint64_t encode_sent_hook(
        const pcie::SentHook& hook) const override;
    pcie::SentHook decode_sent_hook(std::uint64_t code) override;

  private:
    // mem::Requestor — device-memory aperture traffic (CPU NUMA accesses).
    bool recv_resp(mem::PacketPtr& pkt) override;
    void retry_req() override { aperture_q_.retry(); }

    /// Handles MRd/MWr TLPs that target the DevMem aperture BAR.
    void recv_tlp(unsigned port_idx, pcie::TlpPtr tlp) override;

    struct Run {
        GemmCommand cmd;
        DataMover* mover = nullptr;
        std::uint32_t jb_cols = 0;     ///< column-block width (multiple of 16)
        std::uint32_t num_jblocks = 0;
        std::uint32_t num_strips = 0;
        std::uint32_t cur_jb = 0;
        std::uint32_t cur_cols = 0;    ///< width of the current block
        // Scratchpad layout for this run (absolute staging addresses).
        Addr buf_b = 0;
        std::array<Addr, 2> buf_a{};
        Addr buf_c = 0;
        // Progress within the current column block.
        bool b_loaded = false;
        std::array<std::int64_t, 2> a_slot_strip{-1, -1}; ///< strip loaded
        std::array<bool, 2> a_slot_ready{false, false};
        std::uint32_t next_compute_strip = 0;
        std::uint32_t next_load_strip = 0;
        bool computing = false;
        std::uint32_t outstanding_c_jobs = 0;
        bool all_blocks_issued = false;
    };

    // Continuation kinds (TransferJob::on_complete descriptors).
    enum : std::uint8_t {
        kContDescFetched = 1, ///< command descriptor landed in scratch
        kContBLoaded = 2,     ///< B panel staged for the current block
        kContALoaded = 3,     ///< A strip staged (arg = strip index)
        kContCWritten = 4,    ///< one C row segment drained
        kContFlagPosted = 5,  ///< completion flag reached host memory
    };

    void doorbell(Addr desc_addr);
    void fetch_next_command();
    void start_run(const GemmCommand& cmd);
    void start_block();
    void load_a_strip(std::uint32_t strip);
    void try_compute();
    void compute_done();
    void write_c_strip(std::uint32_t strip);
    void block_done();
    void run_complete();
    [[nodiscard]] std::uint32_t strip_rows(std::uint32_t strip) const;

    MatrixFlowParams params_;
    mem::BackingStore* store_;
    mem::AddrRange host_range_;
    SystolicArray sa_;
    dma::DmaEngine dma_;
    PcieDmaMover pcie_mover_;

    // Device-side memory (optional).
    std::unique_ptr<DevMemMover> devmem_mover_;
    mem::AddrRange devmem_range_;
    mem::RequestPort aperture_port_;
    mem::PacketQueue aperture_q_;
    std::uint64_t next_aperture_tag_ = 0;
    struct ApertureRead {
        std::uint8_t pcie_tag;
        std::uint16_t requester;
        std::uint32_t length;
    };
    std::unordered_map<std::uint64_t, ApertureRead> aperture_reads_;

    RingBuffer<Addr> cmd_fifo_; ///< doorbell backlog (descriptor addresses)
    Tick last_complete_tick_ = 0;
    std::optional<Run> run_;
    bool fetching_ = false;
    Event compute_event_{"", nullptr};
    /// Fires at the end of an FLR busy window to resume command fetch for
    /// doorbells that arrived while the function was resetting.
    Event flr_kick_event_{"", nullptr};

    /// Seeded accelerator-hang decision (explicit one-shot events first,
    /// then the Bernoulli stream; fixed draw count per command).
    bool hang_roll();

    /// Controller-level fault state, allocated iff the simulator carries an
    /// enabled FaultInjector (mirrors Endpoint::EpFaultState).
    struct MfFaultState {
        MfFaultState(stats::Group& g, FaultInjector& fi,
                     const std::string& site_name, unsigned site_id);
        Rng hang_rng{0};
        bool hang_rate_on = false;
        double hang_rate = 0.0;
        std::vector<Tick> hang_ticks; ///< one-shot explicit hangs
        std::size_t hang_idx = 0;
        bool hung = false;
        stats::Scalar hangs;
    };
    std::unique_ptr<MfFaultState> mf_fault_;

    stats::Scalar n_commands_{stat_group(), "commands",
                              "GEMM commands completed"};
    stats::Scalar n_tiles_{stat_group(), "tiles", "output tiles computed"};
    stats::Scalar compute_ticks_{stat_group(), "compute_ticks",
                                 "ticks the systolic array was busy"};
    stats::Scalar n_aperture_reads_{stat_group(), "aperture_reads",
                                    "CPU reads served from device memory"};
    stats::Scalar n_aperture_writes_{stat_group(), "aperture_writes",
                                     "CPU writes absorbed by device memory"};
};

} // namespace accesys::accel
