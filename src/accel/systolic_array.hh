// MatrixFlow-style systolic array model (16x16 int8 multiply-accumulate).
//
// Timing: an output-stationary tile of R x C results streams K operand pairs
// through the array; one tile costs K + fill/drain cycles. The per-tile time
// can be overridden with a fixed value — that is the knob the roofline study
// (paper Fig. 2) sweeps.
//
// Function: exact int8 x int8 -> int32 GEMM on data staged in the global
// BackingStore, so tests can bit-compare accelerator output against a golden
// model and thereby validate the whole DMA path.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/backing_store.hh"
#include "sim/error.hh"
#include "sim/types.hh"

namespace accesys::accel {

struct SystolicParams {
    unsigned rows = 16;
    unsigned cols = 16;
    double freq_ghz = 1.0;
    unsigned fill_drain_cycles = 32;
    /// Fig. 2 roofline knob: when >= 0, every tile takes exactly this long
    /// regardless of K.
    double compute_time_override_ns = -1.0;

    void validate() const;
};

class SystolicArray {
  public:
    explicit SystolicArray(const SystolicParams& params);

    [[nodiscard]] const SystolicParams& params() const noexcept
    {
        return params_;
    }

    /// Cycles to produce one RxC output tile with reduction depth `k`.
    [[nodiscard]] Cycles tile_cycles(std::uint32_t k) const
    {
        return k + params_.fill_drain_cycles;
    }

    /// Wall-clock ticks for one tile (honours the override knob).
    [[nodiscard]] Tick tile_ticks(std::uint32_t k) const;

    /// Ticks for a strip of `tiles` output tiles computed back-to-back.
    [[nodiscard]] Tick strip_ticks(std::uint32_t tiles,
                                   std::uint32_t k) const
    {
        return tiles * tile_ticks(k);
    }

    /// Peak MACs per second.
    [[nodiscard]] double peak_macs_per_sec() const
    {
        return params_.rows * params_.cols * params_.freq_ghz * 1e9;
    }

    /// Functional strip computation:
    ///   C[r][c] = sum_k A[r][k] * B_T[c][k]  (int8 inputs, int32 output)
    /// A strip: `rows` x k int8, row-major at `a_addr`.
    /// B panel: `cols` x k int8, row-major (i.e. B transposed) at `b_addr`.
    /// C strip: `rows` x `c_stride_elems` int32 at `c_addr`; only the first
    /// `cols` columns of each row are written.
    static void compute_strip(mem::BackingStore& store, Addr a_addr,
                              Addr b_addr, Addr c_addr, std::uint32_t rows,
                              std::uint32_t cols, std::uint32_t k,
                              std::uint32_t c_stride_elems);

  private:
    SystolicParams params_;
};

} // namespace accesys::accel
