#include "accel/systolic_array.hh"

namespace accesys::accel {

namespace {

#if defined(__x86_64__) && defined(__gnu_linux__) && \
    (defined(__GNUC__) || defined(__clang__)) && \
    __has_attribute(target_clones) && !defined(__SANITIZE_THREAD__)
/// Per-function multiversioning: the build stays baseline-portable, but on
/// hosts with wider vector units the loader binds the AVX2/AVX-512 clone
/// of this kernel. Integer math is exact in every clone, so the dispatch
/// cannot affect results — only the MACs/s of the functional model.
/// Disabled under ThreadSanitizer: target_clones emits an ifunc whose
/// resolver runs before the TSan runtime is initialized, which segfaults
/// any binary linking this TU before it reaches main().
#define ACCESYS_DOT_CLONES \
    __attribute__((target_clones("arch=x86-64-v4", "avx2", "default")))
#else
#define ACCESYS_DOT_CLONES
#endif

/// Exact int8 dot product of length `k`. Written as the canonical
/// widen-then-accumulate reduction, which GCC/Clang auto-vectorize into
/// the packed multiply-add idiom at -O3.
ACCESYS_DOT_CLONES
std::int32_t dot_i8(const std::int8_t* a, const std::int8_t* b,
                    std::uint32_t k)
{
    std::int32_t sum = 0;
    for (std::uint32_t i = 0; i < k; ++i) {
        sum += static_cast<std::int32_t>(a[i]) *
               static_cast<std::int32_t>(b[i]);
    }
    return sum;
}

} // namespace

void SystolicParams::validate() const
{
    require_cfg(rows >= 1 && cols >= 1, "systolic array must be non-empty");
    require_cfg(freq_ghz > 0, "systolic array frequency must be positive");
}

SystolicArray::SystolicArray(const SystolicParams& params) : params_(params)
{
    params_.validate();
}

Tick SystolicArray::tile_ticks(std::uint32_t k) const
{
    if (params_.compute_time_override_ns >= 0.0) {
        return ticks_from_ns(params_.compute_time_override_ns);
    }
    const Tick period = period_from_ghz(params_.freq_ghz);
    return tile_cycles(k) * period;
}

void SystolicArray::compute_strip(mem::BackingStore& store, Addr a_addr,
                                  Addr b_addr, Addr c_addr,
                                  std::uint32_t rows, std::uint32_t cols,
                                  std::uint32_t k,
                                  std::uint32_t c_stride_elems)
{
    std::vector<std::int8_t> a(static_cast<std::size_t>(rows) * k);
    std::vector<std::int8_t> b(static_cast<std::size_t>(cols) * k);
    store.read(a_addr, a.data(), a.size());
    store.read(b_addr, b.data(), b.size());

    // Row-blocked walk: the B panel (cols * k bytes, typically far larger
    // than L2) used to be streamed once per output row; processing four
    // rows per pass cuts that traffic 4x. Pure reordering of independent
    // exact integer dot products — results are bit-identical to the
    // row-at-a-time loop.
    std::vector<std::int32_t> c_rows(static_cast<std::size_t>(cols) * 4);
    std::uint32_t r = 0;
    for (; r + 4 <= rows; r += 4) {
        const std::int8_t* ar0 = &a[static_cast<std::size_t>(r) * k];
        const std::int8_t* ar1 = ar0 + k;
        const std::int8_t* ar2 = ar1 + k;
        const std::int8_t* ar3 = ar2 + k;
        for (std::uint32_t cc = 0; cc < cols; ++cc) {
            const std::int8_t* bc = &b[static_cast<std::size_t>(cc) * k];
            c_rows[cc] = dot_i8(ar0, bc, k);
            c_rows[cols + cc] = dot_i8(ar1, bc, k);
            c_rows[2 * std::size_t{cols} + cc] = dot_i8(ar2, bc, k);
            c_rows[3 * std::size_t{cols} + cc] = dot_i8(ar3, bc, k);
        }
        for (std::uint32_t rr = 0; rr < 4; ++rr) {
            store.write(c_addr + static_cast<Addr>(r + rr) *
                                     c_stride_elems * 4,
                        &c_rows[rr * std::size_t{cols}], cols * 4);
        }
    }
    for (; r < rows; ++r) {
        const std::int8_t* ar = &a[static_cast<std::size_t>(r) * k];
        for (std::uint32_t cc = 0; cc < cols; ++cc) {
            c_rows[cc] = dot_i8(ar, &b[static_cast<std::size_t>(cc) * k], k);
        }
        store.write(c_addr + static_cast<Addr>(r) * c_stride_elems * 4,
                    c_rows.data(), cols * 4);
    }
}

} // namespace accesys::accel
