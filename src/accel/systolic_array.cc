#include "accel/systolic_array.hh"

namespace accesys::accel {

void SystolicParams::validate() const
{
    require_cfg(rows >= 1 && cols >= 1, "systolic array must be non-empty");
    require_cfg(freq_ghz > 0, "systolic array frequency must be positive");
}

SystolicArray::SystolicArray(const SystolicParams& params) : params_(params)
{
    params_.validate();
}

Tick SystolicArray::tile_ticks(std::uint32_t k) const
{
    if (params_.compute_time_override_ns >= 0.0) {
        return ticks_from_ns(params_.compute_time_override_ns);
    }
    const Tick period = period_from_ghz(params_.freq_ghz);
    return tile_cycles(k) * period;
}

void SystolicArray::compute_strip(mem::BackingStore& store, Addr a_addr,
                                  Addr b_addr, Addr c_addr,
                                  std::uint32_t rows, std::uint32_t cols,
                                  std::uint32_t k,
                                  std::uint32_t c_stride_elems)
{
    std::vector<std::int8_t> a(static_cast<std::size_t>(rows) * k);
    std::vector<std::int8_t> b(static_cast<std::size_t>(cols) * k);
    store.read(a_addr, a.data(), a.size());
    store.read(b_addr, b.data(), b.size());

    std::vector<std::int32_t> c_row(cols);
    for (std::uint32_t r = 0; r < rows; ++r) {
        const std::int8_t* ar = &a[static_cast<std::size_t>(r) * k];
        for (std::uint32_t cc = 0; cc < cols; ++cc) {
            const std::int8_t* bc = &b[static_cast<std::size_t>(cc) * k];
            std::int32_t acc = 0;
            for (std::uint32_t i = 0; i < k; ++i) {
                acc += static_cast<std::int32_t>(ar[i]) *
                       static_cast<std::int32_t>(bc[i]);
            }
            c_row[cc] = acc;
        }
        store.write(c_addr + static_cast<Addr>(r) * c_stride_elems * 4,
                    c_row.data(), cols * 4);
    }
}

} // namespace accesys::accel
