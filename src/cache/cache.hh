// Set-associative write-back cache with MSHR-based miss handling.
//
// One instance serves as L1D, L1I, LLC, IOCache or device-side cache — only
// the parameters differ (paper Table II). Features:
//   * write-allocate with a whole-line write fast path (no fill read for
//     full-line writes, which matters for streaming DMA),
//   * bounded MSHRs with multiple targets per miss (hit-under-miss),
//   * uncacheable bypass (DM access mode forwards straight through),
//   * bus-snoop hooks implementing invalidation-based MSI-lite coherence
//     (see mem::Snooper — functional data is coherent by construction, the
//     snoops maintain timing-relevant line state).
//
// Requests must not straddle a cache line; fabric bridges (PCIe root
// complex, CPU) split accesses at line granularity.
#pragma once

#include <vector>

#include "mem/packet.hh"
#include "mem/port.hh"
#include "mem/xbar.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"

namespace accesys::cache {

struct CacheParams {
    std::uint64_t size_bytes = 64 * kKiB;
    unsigned assoc = 4;
    std::uint32_t line_bytes = 64;
    double lookup_latency_ns = 2.0; ///< tag+data access (hit path)
    double fill_latency_ns = 1.0;   ///< install-to-response on the miss path
    std::size_t mshrs = 8;          ///< outstanding distinct line misses
    std::size_t targets_per_mshr = 16;
    enum class Repl { lru, random };
    Repl repl = Repl::lru;

    void validate() const;

    [[nodiscard]] std::uint64_t num_sets() const
    {
        return size_bytes / line_bytes / assoc;
    }
};

class Cache final : public SimObject,
                    public mem::Snooper,
                    private mem::Responder,
                    private mem::Requestor {
  public:
    Cache(Simulator& sim, std::string name, const CacheParams& params);

    /// Upstream port (CPU / bridge side).
    [[nodiscard]] mem::ResponsePort& cpu_side() noexcept { return cpu_port_; }
    /// Downstream port (memory side).
    [[nodiscard]] mem::RequestPort& mem_side() noexcept { return mem_port_; }

    [[nodiscard]] const CacheParams& params() const noexcept
    {
        return params_;
    }

    // Probes for tests.
    [[nodiscard]] bool contains_line(Addr addr) const;
    [[nodiscard]] bool line_dirty(Addr addr) const;
    [[nodiscard]] std::uint64_t hits() const
    {
        return static_cast<std::uint64_t>(n_hits_.value());
    }
    [[nodiscard]] std::uint64_t misses() const
    {
        return static_cast<std::uint64_t>(n_misses_.value());
    }

    /// Checkpoint/restore tags, LRU clocks, MSHRs (with queued target
    /// packets), egress queues and the replacement RNG.
    void serialize(Ckpt& ar) override;
    void report_occupancy(std::string& out) const override;

    // mem::Snooper
    void snoop_invalidate(Addr addr, std::uint32_t size) override;
    void snoop_clean(Addr addr, std::uint32_t size) override;
    /// CONTRACT with the bus-side occupancy filter: when valid_lines_ is
    /// 0 an invalidate — and when dirty_lines_ is 0 a clean — must be a
    /// complete no-op including on every stat (the snoop_* bodies below
    /// keep the matching early-outs). If a snoop ever grows a
    /// side effect before those guards, remove this override.
    [[nodiscard]] mem::Snooper::Occupancy snoop_occupancy() const override
    {
        return {&valid_lines_, &dirty_lines_};
    }

  private:
    /// 8-byte line record: the tag is line-aligned, so its low bits hold
    /// the valid/dirty flags; LRU clocks live in a parallel array
    /// (`lru_of()`), so the tag scans that dominate the miss path touch
    /// one machine word per way.
    struct Line {
        static constexpr std::uint64_t kValid = 1;
        static constexpr std::uint64_t kDirty = 2;
        static constexpr std::uint64_t kFlagMask = kValid | kDirty;

        std::uint64_t tag_flags = 0;

        [[nodiscard]] Addr tag() const noexcept { return tag_flags & ~kFlagMask; }
        [[nodiscard]] bool valid() const noexcept
        {
            return (tag_flags & kValid) != 0;
        }
        [[nodiscard]] bool dirty() const noexcept
        {
            return (tag_flags & kDirty) != 0;
        }
        void set(Addr tag, bool valid, bool dirty) noexcept
        {
            tag_flags = tag | (valid ? kValid : 0) | (dirty ? kDirty : 0);
        }
        void set_dirty(bool d) noexcept
        {
            tag_flags = d ? (tag_flags | kDirty) : (tag_flags & ~kDirty);
        }
        void invalidate() noexcept { tag_flags = 0; }
    };

    /// One outstanding line miss. Slots are preallocated (params_.mshrs of
    /// them) and recycled — `targets` keeps its capacity across misses — so
    /// the steady-state miss path performs no heap allocation.
    struct Mshr {
        Addr laddr = 0;
        bool live = false;
        bool fill_sent = false;
        /// A whole-line write run covered this line while the fill was in
        /// flight: the fill installs dirty (see recv_req_multiline).
        bool dirty_on_fill = false;
        std::vector<mem::PacketPtr> targets;
    };

    // mem::Responder (cpu side)
    bool recv_req(mem::PacketPtr& pkt) override;
    void retry_resp() override { resp_q_.retry(); }

    // mem::Requestor (mem side)
    bool recv_resp(mem::PacketPtr& pkt) override;
    void retry_req() override { mem_q_.retry(); }

    [[nodiscard]] Addr line_addr(Addr a) const
    {
        return align_down(a, params_.line_bytes);
    }
    /// Set selection via precomputed shift/mask (pow2 set count) or a
    /// single modulo — never the re-derived divide chain of num_sets().
    [[nodiscard]] std::uint64_t set_index(Addr a) const
    {
        const std::uint64_t line = a >> line_shift_;
        return sets_pow2_ ? (line & set_mask_) : (line % num_sets_);
    }

    [[nodiscard]] Line* find_line(Addr addr);
    [[nodiscard]] const Line* find_line(Addr addr) const;
    /// find_line with the line address already computed (hot paths derive
    /// it once per request instead of once per probe).
    [[nodiscard]] Line* find_line_l(Addr laddr);
    /// Live MSHR tracking `laddr`, or nullptr. The lookup scans the packed
    /// key array (`mshr_keys_`, laddr|1 when live, 0 when free), not the
    /// slot structs — SIMD-compared in groups of four (see cache.cc).
    [[nodiscard]] Mshr* find_mshr(Addr laddr);
    /// Claim the lowest free slot for `laddr`; nullptr when all are busy.
    /// The free set is a bitmap (caches have <= 64 MSHRs in every preset),
    /// so the claim is one ctz instead of a key scan; the lowest-index
    /// pick order matches the linear scan it replaces exactly.
    [[nodiscard]] Mshr* alloc_mshr(Addr laddr)
    {
        if (mshr_free_bits_ == 0) {
            return nullptr;
        }
        const auto i = static_cast<std::size_t>(
            __builtin_ctzll(mshr_free_bits_));
        mshr_free_bits_ &= mshr_free_bits_ - 1;
        Mshr& m = mshrs_[i];
        m.live = true;
        m.laddr = laddr;
        m.fill_sent = false;
        m.dirty_on_fill = false;
        mshr_keys_[i] = laddr | 1;
        ++mshrs_live_;
        return &m;
    }
    void release_mshr(Mshr& m)
    {
        m.live = false;
        m.targets.clear(); // keeps capacity for the next miss
        const auto i = static_cast<std::size_t>(&m - mshrs_.data());
        mshr_keys_[i] = 0;
        mshr_free_bits_ |= std::uint64_t{1} << i;
        --mshrs_live_;
    }
    Line& pick_victim(Addr addr);
    /// install() body with the writeback (victim eviction folded in)
    /// deferred into `wb_batch_`; flush_writebacks() empties the batch
    /// downstream in staging order. Together these are the building
    /// blocks of the run form: recv_req_multiline() walks N consecutive
    /// sets with stage_install() and flushes the writebacks once
    /// (mirroring DramTiming::access_run), install() is the one-line
    /// degenerate case.
    void stage_install(Addr laddr, bool dirty);
    void flush_writebacks();
    /// Aligned whole-line write run (request wider than one line).
    bool recv_req_multiline(mem::PacketPtr& pkt, Addr laddr);
    void install(Addr laddr, bool dirty);
    [[nodiscard]] std::uint64_t& lru_of(const Line& line)
    {
        return lru_[static_cast<std::size_t>(&line - lines_.data())];
    }
    void touch(Line& line) { lru_of(line) = ++lru_clock_; }
    void handle_fill(std::uint64_t fill_tag);
    void maybe_unblock();

    CacheParams params_;
    Tick lookup_ticks_ = 0; ///< precomputed hit-path latency
    Tick fill_ticks_ = 0;   ///< precomputed fill-path latency
    unsigned line_shift_ = 0;     ///< log2(line_bytes)
    std::uint64_t num_sets_ = 1;  ///< cached num_sets()
    std::uint64_t set_mask_ = 0;  ///< num_sets-1 when pow2
    bool sets_pow2_ = false;
    mem::ResponsePort cpu_port_;
    mem::RequestPort mem_port_;
    mem::PacketQueue resp_q_; ///< responses upstream
    mem::PacketQueue mem_q_;  ///< fills / writebacks / bypasses downstream

    std::vector<Line> lines_; ///< sets * assoc, row-major by set (SoA: one
                              ///< machine word per way; LRU clocks parallel)
    std::vector<std::uint64_t> lru_; ///< parallel per-line LRU clocks
    std::vector<Mshr> mshrs_; ///< fixed slot pool (params_.mshrs entries)
    /// Packed per-slot lookup keys (laddr|1 live, 0 free), scanned SIMD.
    std::vector<std::uint64_t> mshr_keys_;
    std::uint64_t mshr_free_bits_ = 0; ///< free-slot bitmap (lowest first)
    std::size_t mshrs_live_ = 0;
    /// Fill responses find their MSHR in O(1): the fill read's tag carries
    /// the slot index in the line-offset bits (laddr | slot). Always valid:
    /// params_.validate() caps mshrs at min(64, line_bytes).
    std::vector<mem::PacketPtr> wb_batch_; ///< install_run writeback staging
    /// Occupancy counters kept exact at every line transition so bus
    /// snoops can reject in O(1) when this cache holds nothing relevant.
    std::uint64_t valid_lines_ = 0;
    std::uint64_t dirty_lines_ = 0;
    std::uint64_t lru_clock_ = 0;
    std::uint32_t fill_requestor_; ///< marks packets this cache created
    mem::PacketPool* pkt_pool_;    ///< global pool, resolved once (hot path)
    Rng rng_;
    bool blocked_upstream_ = false;

    stats::Scalar n_hits_{stat_group(), "hits", "demand hits"};
    stats::Scalar n_misses_{stat_group(), "misses", "demand misses"};
    stats::Scalar n_writebacks_{stat_group(), "writebacks",
                                "dirty lines written back"};
    stats::Scalar n_bypasses_{stat_group(), "bypasses",
                              "uncacheable requests forwarded"};
    stats::Scalar n_snoop_invalidations_{stat_group(), "snoop_invalidations",
                                         "lines dropped by bus snoops"};
    stats::Scalar n_snoop_cleans_{stat_group(), "snoop_cleans",
                                  "dirty lines demoted by bus snoops"};
    stats::Scalar n_mshr_rejects_{stat_group(), "mshr_rejects",
                                  "requests refused: MSHRs exhausted"};
    stats::ValueFn hit_rate_{stat_group(), "hit_rate",
                             "demand hit fraction", [this] {
                                 const double t =
                                     n_hits_.value() + n_misses_.value();
                                 return t == 0.0 ? 0.0
                                                 : n_hits_.value() / t;
                             }};
};

} // namespace accesys::cache
