// Set-associative write-back cache with MSHR-based miss handling.
//
// One instance serves as L1D, L1I, LLC, IOCache or device-side cache — only
// the parameters differ (paper Table II). Features:
//   * write-allocate with a whole-line write fast path (no fill read for
//     full-line writes, which matters for streaming DMA),
//   * bounded MSHRs with multiple targets per miss (hit-under-miss),
//   * uncacheable bypass (DM access mode forwards straight through),
//   * bus-snoop hooks implementing invalidation-based MSI-lite coherence
//     (see mem::Snooper — functional data is coherent by construction, the
//     snoops maintain timing-relevant line state).
//
// Requests must not straddle a cache line; fabric bridges (PCIe root
// complex, CPU) split accesses at line granularity.
#pragma once

#include <unordered_map>
#include <vector>

#include "mem/packet.hh"
#include "mem/port.hh"
#include "mem/xbar.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"

namespace accesys::cache {

struct CacheParams {
    std::uint64_t size_bytes = 64 * kKiB;
    unsigned assoc = 4;
    std::uint32_t line_bytes = 64;
    double lookup_latency_ns = 2.0; ///< tag+data access (hit path)
    double fill_latency_ns = 1.0;   ///< install-to-response on the miss path
    std::size_t mshrs = 8;          ///< outstanding distinct line misses
    std::size_t targets_per_mshr = 16;
    enum class Repl { lru, random };
    Repl repl = Repl::lru;

    void validate() const;

    [[nodiscard]] std::uint64_t num_sets() const
    {
        return size_bytes / line_bytes / assoc;
    }
};

class Cache final : public SimObject,
                    public mem::Snooper,
                    private mem::Responder,
                    private mem::Requestor {
  public:
    Cache(Simulator& sim, std::string name, const CacheParams& params);

    /// Upstream port (CPU / bridge side).
    [[nodiscard]] mem::ResponsePort& cpu_side() noexcept { return cpu_port_; }
    /// Downstream port (memory side).
    [[nodiscard]] mem::RequestPort& mem_side() noexcept { return mem_port_; }

    [[nodiscard]] const CacheParams& params() const noexcept
    {
        return params_;
    }

    // Probes for tests.
    [[nodiscard]] bool contains_line(Addr addr) const;
    [[nodiscard]] bool line_dirty(Addr addr) const;
    [[nodiscard]] std::uint64_t hits() const
    {
        return static_cast<std::uint64_t>(n_hits_.value());
    }
    [[nodiscard]] std::uint64_t misses() const
    {
        return static_cast<std::uint64_t>(n_misses_.value());
    }

    // mem::Snooper
    void snoop_invalidate(Addr addr, std::uint32_t size) override;
    void snoop_clean(Addr addr, std::uint32_t size) override;

  private:
    struct Line {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0;
    };

    struct Mshr {
        std::vector<mem::PacketPtr> targets;
        bool fill_sent = false;
    };

    // mem::Responder (cpu side)
    bool recv_req(mem::PacketPtr& pkt) override;
    void retry_resp() override { resp_q_.retry(); }

    // mem::Requestor (mem side)
    bool recv_resp(mem::PacketPtr& pkt) override;
    void retry_req() override { mem_q_.retry(); }

    [[nodiscard]] Addr line_addr(Addr a) const
    {
        return align_down(a, params_.line_bytes);
    }
    [[nodiscard]] std::uint64_t set_index(Addr a) const
    {
        return (a / params_.line_bytes) % params_.num_sets();
    }

    [[nodiscard]] Line* find_line(Addr addr);
    [[nodiscard]] const Line* find_line(Addr addr) const;
    Line& pick_victim(Addr addr);
    void install(Addr addr, bool dirty);
    void evict(Line& victim, Addr set_example_addr);
    void touch(Line& line) { line.lru = ++lru_clock_; }
    void handle_fill(Addr laddr);
    void maybe_unblock();

    CacheParams params_;
    mem::ResponsePort cpu_port_;
    mem::RequestPort mem_port_;
    mem::PacketQueue resp_q_; ///< responses upstream
    mem::PacketQueue mem_q_;  ///< fills / writebacks / bypasses downstream

    std::vector<Line> lines_; ///< sets * assoc, row-major by set
    std::unordered_map<Addr, Mshr> mshrs_;
    std::uint64_t lru_clock_ = 0;
    std::uint32_t fill_requestor_; ///< marks packets this cache created
    Rng rng_;
    bool blocked_upstream_ = false;

    stats::Scalar n_hits_{stat_group(), "hits", "demand hits"};
    stats::Scalar n_misses_{stat_group(), "misses", "demand misses"};
    stats::Scalar n_writebacks_{stat_group(), "writebacks",
                                "dirty lines written back"};
    stats::Scalar n_bypasses_{stat_group(), "bypasses",
                              "uncacheable requests forwarded"};
    stats::Scalar n_snoop_invalidations_{stat_group(), "snoop_invalidations",
                                         "lines dropped by bus snoops"};
    stats::Scalar n_snoop_cleans_{stat_group(), "snoop_cleans",
                                  "dirty lines demoted by bus snoops"};
    stats::Scalar n_mshr_rejects_{stat_group(), "mshr_rejects",
                                  "requests refused: MSHRs exhausted"};
    stats::ValueFn hit_rate_{stat_group(), "hit_rate",
                             "demand hit fraction", [this] {
                                 const double t =
                                     n_hits_.value() + n_misses_.value();
                                 return t == 0.0 ? 0.0
                                                 : n_hits_.value() / t;
                             }};
};

} // namespace accesys::cache
