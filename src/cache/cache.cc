#include "cache/cache.hh"

#include <algorithm>

namespace accesys::cache {

void CacheParams::validate() const
{
    require_cfg(is_pow2(line_bytes) && line_bytes >= 16,
                "cache line size must be a power of two >= 16");
    require_cfg(assoc >= 1, "cache associativity must be >= 1");
    require_cfg(size_bytes % (static_cast<std::uint64_t>(line_bytes) * assoc) ==
                    0,
                "cache size must be a multiple of line*assoc");
    require_cfg(num_sets() >= 1, "cache must have at least one set");
    require_cfg(mshrs >= 1 && targets_per_mshr >= 1,
                "cache needs at least one MSHR and one target");
}

Cache::Cache(Simulator& sim, std::string name, const CacheParams& params)
    : SimObject(sim, std::move(name)),
      params_(params),
      cpu_port_(this->name() + ".cpu_side", *this),
      mem_port_(this->name() + ".mem_side", *this),
      resp_q_(sim, this->name() + ".resp_q",
              [this](mem::PacketPtr& pkt) { return cpu_port_.send_resp(pkt); }),
      mem_q_(sim, this->name() + ".mem_q",
             [this](mem::PacketPtr& pkt) { return mem_port_.send_req(pkt); }),
      fill_requestor_(mem::alloc_requestor_id())
{
    params_.validate();
    lines_.resize(params_.num_sets() * params_.assoc);
    lru_.resize(lines_.size());
    mshrs_.resize(params_.mshrs);
    lookup_ticks_ = ticks_from_ns(params_.lookup_latency_ns);
    fill_ticks_ = ticks_from_ns(params_.fill_latency_ns);
    resp_q_.set_drain_hook([this] { maybe_unblock(); });
}

Cache::Line* Cache::find_line(Addr addr)
{
    // One compare per way: a valid line's tag_flags is tag|kValid, with
    // the dirty bit masked out of the comparison.
    const std::uint64_t want = line_addr(addr) | Line::kValid;
    const std::uint64_t set = set_index(addr);
    Line* base = &lines_[set * params_.assoc];
    for (unsigned w = 0; w < params_.assoc; ++w) {
        if ((base[w].tag_flags & ~Line::kDirty) == want) {
            return &base[w];
        }
    }
    return nullptr;
}

const Cache::Line* Cache::find_line(Addr addr) const
{
    return const_cast<Cache*>(this)->find_line(addr);
}

bool Cache::contains_line(Addr addr) const
{
    return find_line(addr) != nullptr;
}

bool Cache::line_dirty(Addr addr) const
{
    const Line* l = find_line(addr);
    return l != nullptr && l->dirty();
}

Cache::Line& Cache::pick_victim(Addr addr)
{
    const std::uint64_t set = set_index(addr);
    Line* base = &lines_[set * params_.assoc];
    const std::uint64_t* lru_base = &lru_[set * params_.assoc];
    // Single pass: an invalid way wins immediately, else track the LRU
    // minimum.
    unsigned victim = 0;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (!base[w].valid()) {
            return base[w];
        }
        if (lru_base[w] < lru_base[victim]) {
            victim = w;
        }
    }
    if (params_.repl == CacheParams::Repl::random) {
        return base[rng_.below(params_.assoc)];
    }
    return base[victim];
}

void Cache::evict(Line& victim, Addr /*set_example_addr*/)
{
    if (!victim.valid()) {
        return;
    }
    if (victim.dirty()) {
        ++n_writebacks_;
        auto wb =
            mem::packet_pool().make_write(victim.tag(), params_.line_bytes);
        wb->set_requestor(fill_requestor_);
        wb->flags.posted = true;
        mem_q_.push(std::move(wb), now());
    }
    victim.invalidate();
}

void Cache::install(Addr addr, bool dirty)
{
    Line& victim = pick_victim(addr);
    evict(victim, addr);
    victim.set(line_addr(addr), true, dirty);
    touch(victim);
}

bool Cache::recv_req(mem::PacketPtr& pkt)
{
    if (line_addr(pkt->addr()) != line_addr(pkt->end_addr() - 1)) {
        panic(name(), ": request straddles a line: ", pkt->describe());
    }

    // Uncacheable traffic bypasses the lookup (DM mode / MMIO). An
    // uncacheable write must still kill any cached copy of the line, or a
    // later cacheable read would hit stale timing state.
    if (pkt->flags.uncacheable) {
        ++n_bypasses_;
        if (pkt->is_write()) {
            if (Line* line = find_line(pkt->addr()); line != nullptr) {
                line->invalidate();
            }
        }
        mem_q_.push(std::move(pkt), now());
        return true;
    }

    const Tick lookup_done = now() + lookup_ticks_;

    if (Line* line = find_line(pkt->addr()); line != nullptr) {
        ++n_hits_;
        touch(*line);
        if (pkt->is_write()) {
            line->set_dirty(true);
        }
        if (pkt->flags.posted && pkt->is_write()) {
            return true; // posted write absorbed by the cache
        }
        pkt->make_response();
        resp_q_.push(std::move(pkt), lookup_done);
        return true;
    }

    ++n_misses_;

    // Whole-line write: install without a fill read.
    if (pkt->is_write() && pkt->size() == params_.line_bytes) {
        install(pkt->addr(), true);
        if (!(pkt->flags.posted)) {
            pkt->make_response();
            resp_q_.push(std::move(pkt), lookup_done);
        }
        return true;
    }

    const Addr laddr = line_addr(pkt->addr());
    if (Mshr* hit = find_mshr(laddr)) {
        if (hit->targets.size() >= params_.targets_per_mshr) {
            ++n_mshr_rejects_;
            blocked_upstream_ = true;
            return false;
        }
        hit->targets.push_back(std::move(pkt));
        return true;
    }

    Mshr* mshr = alloc_mshr(laddr);
    if (mshr == nullptr) {
        ++n_mshr_rejects_;
        blocked_upstream_ = true;
        return false;
    }

    mshr->targets.push_back(std::move(pkt));
    mshr->fill_sent = true;

    auto fill = mem::packet_pool().make_read(laddr, params_.line_bytes);
    fill->set_requestor(fill_requestor_);
    fill->set_tag(laddr);
    mem_q_.push(std::move(fill), lookup_done);
    return true;
}

bool Cache::recv_resp(mem::PacketPtr& pkt)
{
    if (pkt->requestor() != fill_requestor_) {
        // Response to a bypassed (uncacheable) request: forward upstream.
        resp_q_.push(std::move(pkt), now());
        return true;
    }
    // One of our fills came back.
    handle_fill(pkt->tag());
    return true;
}

void Cache::handle_fill(Addr laddr)
{
    Mshr* mshr = find_mshr(laddr);
    ensure(mshr != nullptr, name(), ": fill without MSHR @0x", std::hex,
           laddr);

    bool dirty = false;
    for (const auto& t : mshr->targets) {
        dirty |= t->is_write();
    }
    install(laddr, dirty);

    const Tick done = now() + fill_ticks_;
    for (auto& t : mshr->targets) {
        if (t->flags.posted && t->is_write()) {
            continue;
        }
        t->make_response();
        resp_q_.push(std::move(t), done);
    }
    release_mshr(*mshr);
    maybe_unblock();
}

void Cache::maybe_unblock()
{
    if (blocked_upstream_ && mshrs_live_ < params_.mshrs) {
        blocked_upstream_ = false;
        cpu_port_.send_retry_req();
    }
}

void Cache::snoop_invalidate(Addr addr, std::uint32_t size)
{
    for (Addr a = line_addr(addr); a < addr + size;
         a += params_.line_bytes) {
        if (Line* line = find_line(a); line != nullptr) {
            line->invalidate();
            ++n_snoop_invalidations_;
        }
    }
}

void Cache::snoop_clean(Addr addr, std::uint32_t size)
{
    for (Addr a = line_addr(addr); a < addr + size;
         a += params_.line_bytes) {
        if (Line* line = find_line(a); line != nullptr && line->dirty()) {
            line->set_dirty(false);
            ++n_snoop_cleans_;
        }
    }
}

} // namespace accesys::cache
