#include "cache/cache.hh"

#include <algorithm>
#include <cstring>

#include "sim/simd.hh"

namespace accesys::cache {

namespace {

#ifdef ACCESYS_HAVE_VEC_EXT
using simd::U64x4;
using simd::match4;
#endif

} // namespace

void CacheParams::validate() const
{
    require_cfg(is_pow2(line_bytes) && line_bytes >= 16,
                "cache line size must be a power of two >= 16");
    require_cfg(assoc >= 1, "cache associativity must be >= 1");
    require_cfg(size_bytes % (static_cast<std::uint64_t>(line_bytes) * assoc) ==
                    0,
                "cache size must be a multiple of line*assoc");
    require_cfg(num_sets() >= 1, "cache must have at least one set");
    require_cfg(mshrs >= 1 && targets_per_mshr >= 1,
                "cache needs at least one MSHR and one target");
}

Cache::Cache(Simulator& sim, std::string name, const CacheParams& params)
    : SimObject(sim, std::move(name)),
      params_(params),
      cpu_port_(this->name() + ".cpu_side", *this),
      mem_port_(this->name() + ".mem_side", *this),
      resp_q_(sim, this->name() + ".resp_q",
              [](void* s, mem::PacketPtr& pkt) {
                  return static_cast<Cache*>(s)->cpu_port_.send_resp(pkt);
              },
              this),
      mem_q_(sim, this->name() + ".mem_q",
             [](void* s, mem::PacketPtr& pkt) {
                 return static_cast<Cache*>(s)->mem_port_.send_req(pkt);
             },
             this),
      fill_requestor_(mem::alloc_requestor_id())
{
    params_.validate();
    lines_.resize(params_.num_sets() * params_.assoc);
    lru_.resize(lines_.size());
    mshrs_.resize(params_.mshrs);
    mshr_keys_.assign(params_.mshrs, 0);
    lookup_ticks_ = ticks_from_ns(params_.lookup_latency_ns);
    fill_ticks_ = ticks_from_ns(params_.fill_latency_ns);
    line_shift_ = log2i(params_.line_bytes);
    num_sets_ = params_.num_sets();
    sets_pow2_ = is_pow2(num_sets_);
    set_mask_ = num_sets_ - 1;
    resp_q_.set_drain_hook(
        [](void* s) { static_cast<Cache*>(s)->maybe_unblock(); }, this);
    cpu_port_.set_fast_path(
        [](void* s, mem::PacketPtr& pkt) {
            return static_cast<Cache*>(s)->recv_req(pkt);
        },
        [](void* s) { static_cast<Cache*>(s)->retry_resp(); }, this);
    mem_port_.set_fast_path(
        [](void* s, mem::PacketPtr& pkt) {
            return static_cast<Cache*>(s)->recv_resp(pkt);
        },
        [](void* s) { static_cast<Cache*>(s)->retry_req(); }, this);
}

Cache::Line* Cache::find_line(Addr addr)
{
    // One compare per way: a valid line's tag_flags is tag|kValid, with
    // the dirty bit masked out of the comparison. Lines are one packed
    // machine word each, so a set is a contiguous tag array and the scan
    // vectorizes four ways per step.
    const std::uint64_t want = line_addr(addr) | Line::kValid;
    const std::uint64_t set = set_index(addr);
    Line* base = &lines_[set * params_.assoc];
#ifdef ACCESYS_HAVE_VEC_EXT
    unsigned w = 0;
    for (; w + 4 <= params_.assoc; w += 4) {
        const unsigned hits =
            match4(&base[w].tag_flags, ~Line::kDirty, want);
        if (hits != 0) {
            return &base[w + static_cast<unsigned>(
                                 __builtin_ctz(hits))];
        }
    }
    for (; w < params_.assoc; ++w) {
        if ((base[w].tag_flags & ~Line::kDirty) == want) {
            return &base[w];
        }
    }
#else
    for (unsigned w = 0; w < params_.assoc; ++w) {
        if ((base[w].tag_flags & ~Line::kDirty) == want) {
            return &base[w];
        }
    }
#endif
    return nullptr;
}

Cache::Mshr* Cache::find_mshr(Addr laddr)
{
    if (mshrs_live_ == 0) {
        return nullptr;
    }
    const std::uint64_t want = laddr | 1;
    const std::uint64_t* keys = mshr_keys_.data();
    const std::size_t n = mshr_keys_.size();
#ifdef ACCESYS_HAVE_VEC_EXT
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const unsigned hits = match4(&keys[i], ~std::uint64_t{0}, want);
        if (hits != 0) {
            return &mshrs_[i + static_cast<std::size_t>(
                                   __builtin_ctz(hits))];
        }
    }
    for (; i < n; ++i) {
        if (keys[i] == want) {
            return &mshrs_[i];
        }
    }
#else
    for (std::size_t i = 0; i < n; ++i) {
        if (keys[i] == want) {
            return &mshrs_[i];
        }
    }
#endif
    return nullptr;
}

const Cache::Line* Cache::find_line(Addr addr) const
{
    return const_cast<Cache*>(this)->find_line(addr);
}

bool Cache::contains_line(Addr addr) const
{
    return find_line(addr) != nullptr;
}

bool Cache::line_dirty(Addr addr) const
{
    const Line* l = find_line(addr);
    return l != nullptr && l->dirty();
}

Cache::Line& Cache::pick_victim(Addr addr)
{
    const std::uint64_t set = set_index(addr);
    Line* base = &lines_[set * params_.assoc];
    const std::uint64_t* lru_base = &lru_[set * params_.assoc];
#ifdef ACCESYS_HAVE_VEC_EXT
    if (params_.assoc % 4 == 0) {
        // Invalid way wins immediately: vector-scan the valid bits.
        for (unsigned w = 0; w < params_.assoc; w += 4) {
            const unsigned frees = match4(&base[w].tag_flags, Line::kValid,
                                          0);
            if (frees != 0) {
                return base[w +
                            static_cast<unsigned>(__builtin_ctz(frees))];
            }
        }
        if (params_.repl == CacheParams::Repl::random) {
            return base[rng_.below(params_.assoc)];
        }
        // All valid: vector min over the LRU clocks (unique by
        // construction), then locate the index with one more compare pass.
        U64x4 mv;
        std::memcpy(&mv, lru_base, sizeof(mv));
        for (unsigned w = 4; w < params_.assoc; w += 4) {
            U64x4 g;
            std::memcpy(&g, &lru_base[w], sizeof(g));
            const U64x4 sel = g < mv;
            mv = (g & sel) | (mv & ~sel);
        }
        std::uint64_t best = mv[0];
        best = mv[1] < best ? mv[1] : best;
        best = mv[2] < best ? mv[2] : best;
        best = mv[3] < best ? mv[3] : best;
        for (unsigned w = 0; w < params_.assoc; w += 4) {
            const unsigned hits = match4(&lru_base[w], ~std::uint64_t{0},
                                         best);
            if (hits != 0) {
                return base[w +
                            static_cast<unsigned>(__builtin_ctz(hits))];
            }
        }
    }
#endif
    // Single pass: an invalid way wins immediately, else track the LRU
    // minimum.
    unsigned victim = 0;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (!base[w].valid()) {
            return base[w];
        }
        if (lru_base[w] < lru_base[victim]) {
            victim = w;
        }
    }
    if (params_.repl == CacheParams::Repl::random) {
        return base[rng_.below(params_.assoc)];
    }
    return base[victim];
}

void Cache::evict(Line& victim, Addr /*set_example_addr*/)
{
    if (!victim.valid()) {
        return;
    }
    --valid_lines_;
    if (victim.dirty()) {
        --dirty_lines_;
        ++n_writebacks_;
        auto wb =
            mem::packet_pool().make_write(victim.tag(), params_.line_bytes);
        wb->set_requestor(fill_requestor_);
        wb->flags.posted = true;
        mem_q_.push(std::move(wb), now());
    }
    victim.invalidate();
}

void Cache::install(Addr addr, bool dirty)
{
    Line& victim = pick_victim(addr);
    evict(victim, addr);
    victim.set(line_addr(addr), true, dirty);
    ++valid_lines_;
    dirty_lines_ += dirty ? 1 : 0;
    touch(victim);
}

bool Cache::recv_req(mem::PacketPtr& pkt)
{
    if (((pkt->addr() ^ (pkt->end_addr() - 1)) >> line_shift_) != 0) {
        panic(name(), ": request straddles a line: ", pkt->describe());
    }

    // Uncacheable traffic bypasses the lookup (DM mode / MMIO). An
    // uncacheable write must still kill any cached copy of the line, or a
    // later cacheable read would hit stale timing state.
    if (pkt->flags.uncacheable) {
        ++n_bypasses_;
        if (pkt->is_write()) {
            if (Line* line = find_line(pkt->addr()); line != nullptr) {
                --valid_lines_;
                dirty_lines_ -= line->dirty() ? 1 : 0;
                line->invalidate();
            }
        }
        mem_q_.push(std::move(pkt), now());
        return true;
    }

    const Tick lookup_done = now() + lookup_ticks_;

    if (Line* line = find_line(pkt->addr()); line != nullptr) {
        ++n_hits_;
        touch(*line);
        if (pkt->is_write()) {
            dirty_lines_ += line->dirty() ? 0 : 1;
            line->set_dirty(true);
        }
        if (pkt->flags.posted && pkt->is_write()) {
            return true; // posted write absorbed by the cache
        }
        pkt->make_response();
        resp_q_.push(std::move(pkt), lookup_done);
        return true;
    }

    ++n_misses_;

    // Whole-line write: install without a fill read.
    if (pkt->is_write() && pkt->size() == params_.line_bytes) {
        install(pkt->addr(), true);
        if (!(pkt->flags.posted)) {
            pkt->make_response();
            resp_q_.push(std::move(pkt), lookup_done);
        }
        return true;
    }

    const Addr laddr = line_addr(pkt->addr());
    if (Mshr* hit = find_mshr(laddr)) {
        if (hit->targets.size() >= params_.targets_per_mshr) {
            ++n_mshr_rejects_;
            blocked_upstream_ = true;
            return false;
        }
        hit->targets.push_back(std::move(pkt));
        return true;
    }

    Mshr* mshr = alloc_mshr(laddr);
    if (mshr == nullptr) {
        ++n_mshr_rejects_;
        blocked_upstream_ = true;
        return false;
    }

    mshr->targets.push_back(std::move(pkt));
    mshr->fill_sent = true;

    auto fill = mem::packet_pool().make_read(laddr, params_.line_bytes);
    fill->set_requestor(fill_requestor_);
    fill->set_tag(laddr);
    mem_q_.push(std::move(fill), lookup_done);
    return true;
}

bool Cache::recv_resp(mem::PacketPtr& pkt)
{
    if (pkt->requestor() != fill_requestor_) {
        // Response to a bypassed (uncacheable) request: forward upstream.
        resp_q_.push(std::move(pkt), now());
        return true;
    }
    // One of our fills came back.
    handle_fill(pkt->tag());
    return true;
}

void Cache::handle_fill(Addr laddr)
{
    Mshr* mshr = find_mshr(laddr);
    ensure(mshr != nullptr, name(), ": fill without MSHR @0x", std::hex,
           laddr);

    bool dirty = false;
    for (const auto& t : mshr->targets) {
        dirty |= t->is_write();
    }
    install(laddr, dirty);

    const Tick done = now() + fill_ticks_;
    for (auto& t : mshr->targets) {
        if (t->flags.posted && t->is_write()) {
            continue;
        }
        t->make_response();
        resp_q_.push(std::move(t), done);
    }
    release_mshr(*mshr);
    maybe_unblock();
}

void Cache::maybe_unblock()
{
    if (blocked_upstream_ && mshrs_live_ < params_.mshrs) {
        blocked_upstream_ = false;
        cpu_port_.send_retry_req();
    }
}

void Cache::snoop_invalidate(Addr addr, std::uint32_t size)
{
    if (valid_lines_ == 0) {
        return; // nothing cached: the walk below cannot find a line
    }
    for (Addr a = line_addr(addr); a < addr + size;
         a += params_.line_bytes) {
        if (Line* line = find_line(a); line != nullptr) {
            --valid_lines_;
            dirty_lines_ -= line->dirty() ? 1 : 0;
            line->invalidate();
            ++n_snoop_invalidations_;
        }
    }
}

void Cache::snoop_clean(Addr addr, std::uint32_t size)
{
    if (dirty_lines_ == 0) {
        return; // no dirty line exists: the walk cannot demote anything
    }
    for (Addr a = line_addr(addr); a < addr + size;
         a += params_.line_bytes) {
        if (Line* line = find_line(a); line != nullptr && line->dirty()) {
            --dirty_lines_;
            line->set_dirty(false);
            ++n_snoop_cleans_;
        }
    }
}

} // namespace accesys::cache
