#include "cache/cache.hh"

#include <algorithm>
#include <cstring>

#include "sim/serialize.hh"
#include "sim/simd.hh"

namespace accesys::cache {

namespace {

#ifdef ACCESYS_HAVE_VEC_EXT
using simd::U64x4;
using simd::match4;
#endif

} // namespace

void CacheParams::validate() const
{
    require_cfg(is_pow2(line_bytes) && line_bytes >= 16,
                "cache line size must be a power of two >= 16");
    require_cfg(assoc >= 1, "cache associativity must be >= 1");
    require_cfg(size_bytes % (static_cast<std::uint64_t>(line_bytes) * assoc) ==
                    0,
                "cache size must be a multiple of line*assoc");
    require_cfg(num_sets() >= 1, "cache must have at least one set");
    require_cfg(mshrs >= 1 && targets_per_mshr >= 1,
                "cache needs at least one MSHR and one target");
    // The free set is a 64-bit bitmap and fill tags carry the slot index
    // in the line-offset bits (cache.cc: alloc_mshr / handle_fill).
    require_cfg(mshrs <= 64 && mshrs <= line_bytes,
                "cache MSHR count must be <= min(64, line_bytes)");
}

Cache::Cache(Simulator& sim, std::string name, const CacheParams& params)
    : SimObject(sim, std::move(name)),
      params_(params),
      cpu_port_(this->name() + ".cpu_side", *this),
      mem_port_(this->name() + ".mem_side", *this),
      resp_q_(sim, this->name() + ".resp_q",
              [](void* s, mem::PacketPtr& pkt) {
                  return static_cast<Cache*>(s)->cpu_port_.send_resp(pkt);
              },
              this),
      mem_q_(sim, this->name() + ".mem_q",
             [](void* s, mem::PacketPtr& pkt) {
                 return static_cast<Cache*>(s)->mem_port_.send_req(pkt);
             },
             this),
      fill_requestor_(mem::alloc_requestor_id()),
      pkt_pool_(&mem::packet_pool())
{
    params_.validate();
    lines_.resize(params_.num_sets() * params_.assoc);
    lru_.resize(lines_.size());
    mshrs_.resize(params_.mshrs);
    mshr_keys_.assign(params_.mshrs, 0);
    mshr_free_bits_ = params_.mshrs == 64
                          ? ~std::uint64_t{0}
                          : (std::uint64_t{1} << params_.mshrs) - 1;
    // Writeback staging: a multi-line write run can stage one dirty
    // victim per installed line, so size for a realistic run (a 4 KiB
    // bridge split), not just one set's ways. Growth past this retains
    // capacity, so steady-state allocations stay at zero either way.
    wb_batch_.reserve(std::max<std::size_t>(params_.assoc, 64));
    lookup_ticks_ = ticks_from_ns(params_.lookup_latency_ns);
    fill_ticks_ = ticks_from_ns(params_.fill_latency_ns);
    line_shift_ = log2i(params_.line_bytes);
    num_sets_ = params_.num_sets();
    sets_pow2_ = is_pow2(num_sets_);
    set_mask_ = num_sets_ - 1;
    resp_q_.set_drain_hook(
        [](void* s) { static_cast<Cache*>(s)->maybe_unblock(); }, this);
    cpu_port_.set_fast_path(
        [](void* s, mem::PacketPtr& pkt) {
            return static_cast<Cache*>(s)->recv_req(pkt);
        },
        [](void* s) { static_cast<Cache*>(s)->retry_resp(); }, this);
    mem_port_.set_fast_path(
        [](void* s, mem::PacketPtr& pkt) {
            return static_cast<Cache*>(s)->recv_resp(pkt);
        },
        [](void* s) { static_cast<Cache*>(s)->retry_req(); }, this);
}

Cache::Line* Cache::find_line(Addr addr)
{
    return find_line_l(line_addr(addr));
}

Cache::Line* Cache::find_line_l(Addr laddr)
{
    // One compare per way: a valid line's tag_flags is tag|kValid, with
    // the dirty bit masked out of the comparison. Lines are one packed
    // machine word each, so a set is a contiguous tag array and the scan
    // vectorizes four ways per step.
    const std::uint64_t want = laddr | Line::kValid;
    const std::uint64_t set = set_index(laddr);
    Line* base = &lines_[set * params_.assoc];
#ifdef ACCESYS_HAVE_VEC_EXT
    unsigned w = 0;
    for (; w + 4 <= params_.assoc; w += 4) {
        const unsigned hits =
            match4(&base[w].tag_flags, ~Line::kDirty, want);
        if (hits != 0) {
            return &base[w + static_cast<unsigned>(
                                 __builtin_ctz(hits))];
        }
    }
    for (; w < params_.assoc; ++w) {
        if ((base[w].tag_flags & ~Line::kDirty) == want) {
            return &base[w];
        }
    }
#else
    for (unsigned w = 0; w < params_.assoc; ++w) {
        if ((base[w].tag_flags & ~Line::kDirty) == want) {
            return &base[w];
        }
    }
#endif
    return nullptr;
}

Cache::Mshr* Cache::find_mshr(Addr laddr)
{
    if (mshrs_live_ == 0) {
        return nullptr;
    }
    const std::uint64_t want = laddr | 1;
    const std::uint64_t* keys = mshr_keys_.data();
    const std::size_t n = mshr_keys_.size();
#ifdef ACCESYS_HAVE_VEC_EXT
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const unsigned hits = match4(&keys[i], ~std::uint64_t{0}, want);
        if (hits != 0) {
            return &mshrs_[i + static_cast<std::size_t>(
                                   __builtin_ctz(hits))];
        }
    }
    for (; i < n; ++i) {
        if (keys[i] == want) {
            return &mshrs_[i];
        }
    }
#else
    for (std::size_t i = 0; i < n; ++i) {
        if (keys[i] == want) {
            return &mshrs_[i];
        }
    }
#endif
    return nullptr;
}

const Cache::Line* Cache::find_line(Addr addr) const
{
    return const_cast<Cache*>(this)->find_line(addr);
}

bool Cache::contains_line(Addr addr) const
{
    return find_line(addr) != nullptr;
}

bool Cache::line_dirty(Addr addr) const
{
    const Line* l = find_line(addr);
    return l != nullptr && l->dirty();
}

Cache::Line& Cache::pick_victim(Addr addr)
{
    const std::uint64_t set = set_index(addr);
    Line* base = &lines_[set * params_.assoc];
    const std::uint64_t* lru_base = &lru_[set * params_.assoc];
#ifdef ACCESYS_HAVE_VEC_EXT
    if (params_.assoc % 4 == 0) {
        // Invalid way wins immediately: vector-scan the valid bits.
        for (unsigned w = 0; w < params_.assoc; w += 4) {
            const unsigned frees = match4(&base[w].tag_flags, Line::kValid,
                                          0);
            if (frees != 0) {
                return base[w +
                            static_cast<unsigned>(__builtin_ctz(frees))];
            }
        }
        if (params_.repl == CacheParams::Repl::random) {
            return base[rng_.below(params_.assoc)];
        }
        // All valid: vector min over the LRU clocks (unique by
        // construction), then locate the index with one more compare pass.
        U64x4 mv;
        std::memcpy(&mv, lru_base, sizeof(mv));
        for (unsigned w = 4; w < params_.assoc; w += 4) {
            U64x4 g;
            std::memcpy(&g, &lru_base[w], sizeof(g));
            const U64x4 sel = g < mv;
            mv = (g & sel) | (mv & ~sel);
        }
        std::uint64_t best = mv[0];
        best = mv[1] < best ? mv[1] : best;
        best = mv[2] < best ? mv[2] : best;
        best = mv[3] < best ? mv[3] : best;
        for (unsigned w = 0; w < params_.assoc; w += 4) {
            const unsigned hits = match4(&lru_base[w], ~std::uint64_t{0},
                                         best);
            if (hits != 0) {
                return base[w +
                            static_cast<unsigned>(__builtin_ctz(hits))];
            }
        }
    }
#endif
    // Single pass: an invalid way wins immediately, else track the LRU
    // minimum.
    unsigned victim = 0;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (!base[w].valid()) {
            return base[w];
        }
        if (lru_base[w] < lru_base[victim]) {
            victim = w;
        }
    }
    if (params_.repl == CacheParams::Repl::random) {
        return base[rng_.below(params_.assoc)];
    }
    return base[victim];
}

void Cache::stage_install(Addr laddr, bool dirty)
{
    Line& victim = pick_victim(laddr);
    if (victim.valid()) {
        --valid_lines_;
        if (victim.dirty()) {
            --dirty_lines_;
            ++n_writebacks_;
            auto wb = pkt_pool_->make_write(victim.tag(),
                                            params_.line_bytes);
            wb->set_requestor(fill_requestor_);
            wb->flags.posted = true;
            wb_batch_.push_back(std::move(wb));
        }
        victim.invalidate();
    }
    victim.set(laddr, true, dirty);
    ++valid_lines_;
    dirty_lines_ += dirty ? 1 : 0;
    touch(victim);
}

void Cache::flush_writebacks()
{
    // Batched writeback flush: every dirty victim staged by the preceding
    // walk leaves in one back-to-back burst — identical packet order and
    // ready ticks to the per-line interleave (installs never touch the
    // egress queue, so deferring the pushes past the walk is invisible),
    // one egress probe per packet but a single walk/flush boundary.
    if (!wb_batch_.empty()) [[unlikely]] {
        const Tick ready = now();
        for (auto& wb : wb_batch_) {
            mem_q_.push(std::move(wb), ready);
        }
        wb_batch_.clear();
    }
}

void Cache::install(Addr laddr, bool dirty)
{
    stage_install(laddr, dirty);
    flush_writebacks();
}

bool Cache::recv_req(mem::PacketPtr& pkt)
{
    const Addr laddr = line_addr(pkt->addr());

    if (((pkt->addr() ^ (pkt->end_addr() - 1)) >> line_shift_) != 0)
        [[unlikely]] {
        return recv_req_multiline(pkt, laddr);
    }

    // Uncacheable traffic bypasses the lookup (DM mode / MMIO). An
    // uncacheable write must still kill any cached copy of the line, or a
    // later cacheable read would hit stale timing state.
    if (pkt->flags.uncacheable) {
        ++n_bypasses_;
        if (pkt->is_write()) {
            if (Line* line = find_line_l(laddr); line != nullptr) {
                --valid_lines_;
                dirty_lines_ -= line->dirty() ? 1 : 0;
                line->invalidate();
            }
        }
        mem_q_.push(std::move(pkt), now());
        return true;
    }

    const Tick lookup_done = now() + lookup_ticks_;

    if (Line* line = find_line_l(laddr); line != nullptr) {
        ++n_hits_;
        touch(*line);
        if (pkt->is_write()) {
            dirty_lines_ += line->dirty() ? 0 : 1;
            line->set_dirty(true);
        }
        if (pkt->flags.posted && pkt->is_write()) {
            return true; // posted write absorbed by the cache
        }
        pkt->make_response();
        resp_q_.push(std::move(pkt), lookup_done);
        return true;
    }

    ++n_misses_;

    Mshr* pending = find_mshr(laddr);

    // Whole-line write: install without a fill read. Only when no fill
    // for this line is already in flight — installing under a live MSHR
    // would let the later fill re-install the line as a duplicate tag;
    // with a fill pending the write joins the miss as a target instead.
    if (pending == nullptr && pkt->is_write() &&
        pkt->size() == params_.line_bytes) {
        install(laddr, true);
        if (!(pkt->flags.posted)) {
            pkt->make_response();
            resp_q_.push(std::move(pkt), lookup_done);
        }
        return true;
    }

    if (Mshr* hit = pending) {
        if (hit->targets.size() >= params_.targets_per_mshr) {
            ++n_mshr_rejects_;
            blocked_upstream_ = true;
            return false;
        }
        hit->targets.push_back(std::move(pkt));
        return true;
    }

    Mshr* mshr = alloc_mshr(laddr);
    if (mshr == nullptr) {
        ++n_mshr_rejects_;
        blocked_upstream_ = true;
        return false;
    }

    mshr->targets.push_back(std::move(pkt));
    mshr->fill_sent = true;

    auto fill = pkt_pool_->make_read(laddr, params_.line_bytes);
    fill->set_requestor(fill_requestor_);
    // The slot index rides in the line-offset bits of the tag, so the fill
    // response finds its MSHR with one mask instead of a key scan
    // (params_.validate() guarantees it fits).
    fill->set_tag(laddr |
                  static_cast<std::uint64_t>(mshr - mshrs_.data()));
    mem_q_.push(std::move(fill), lookup_done);
    return true;
}

bool Cache::recv_req_multiline(mem::PacketPtr& pkt, Addr laddr)
{
    // A request wider than one line is accepted only as an aligned
    // *posted* whole-line write run (a fabric bridge with a split size
    // above our line size streaming full lines — the DMA write-train
    // shape): the run installs N consecutive lines in one tag-array walk
    // with a single batched writeback flush, per-line hit/miss accounting
    // identical to the line-split train the bridge would otherwise send.
    // Non-posted runs are rejected: their completion would have to wait
    // on any in-flight fill the run overlaps (split-train semantics), and
    // no bridge emits them. Anything else still straddles.
    if (!pkt->is_write() || !pkt->flags.posted || pkt->flags.uncacheable ||
        pkt->addr() != laddr || pkt->size() % params_.line_bytes != 0) {
        panic(name(), ": request straddles a line: ", pkt->describe());
    }
    const auto n_lines =
        static_cast<std::uint32_t>(pkt->size() >> line_shift_);
    Addr a = laddr;
    for (std::uint32_t i = 0; i < n_lines; ++i, a += params_.line_bytes) {
        if (Line* line = find_line_l(a); line != nullptr) {
            ++n_hits_;
            touch(*line);
            dirty_lines_ += line->dirty() ? 0 : 1;
            line->set_dirty(true);
        } else {
            ++n_misses_;
            if (Mshr* pending = find_mshr(a); pending != nullptr) {
                // A fill for this line is in flight: installing now would
                // leave a duplicate tag when it lands. The write's effect
                // is what a split-train target join would produce — the
                // line arrives dirty. (Unlike the split train, the posted
                // run consumes no target slot here: strictly less
                // backpressure, same installed state.)
                pending->dirty_on_fill = true;
            } else {
                stage_install(a, true);
            }
        }
    }
    flush_writebacks();
    return true; // posted: absorbed, no response
}

bool Cache::recv_resp(mem::PacketPtr& pkt)
{
    if (pkt->requestor() != fill_requestor_) {
        // Response to a bypassed (uncacheable) request: forward upstream.
        resp_q_.push(std::move(pkt), now());
        return true;
    }
    // One of our fills came back.
    handle_fill(pkt->tag());
    return true;
}

void Cache::handle_fill(std::uint64_t fill_tag)
{
    // O(1) MSHR lookup: the fill read's tag is laddr | slot (the slot
    // index fits in the line-offset bits, enforced by validate()).
    const Addr mask = params_.line_bytes - 1;
    const auto slot = static_cast<std::size_t>(fill_tag & mask);
    const Addr laddr = fill_tag & ~mask;
    ensure(slot < mshrs_.size(), name(), ": fill with bad slot tag");
    Mshr* mshr = &mshrs_[slot];
    ensure(mshr->live && mshr->laddr == laddr, name(),
           ": fill without MSHR @0x", std::hex, laddr);

    bool dirty = mshr->dirty_on_fill;
    for (const auto& t : mshr->targets) {
        dirty |= t->is_write();
    }
    install(laddr, dirty);

    const Tick done = now() + fill_ticks_;
    for (auto& t : mshr->targets) {
        if (t->flags.posted && t->is_write()) {
            continue;
        }
        t->make_response();
        resp_q_.push(std::move(t), done);
    }
    release_mshr(*mshr);
    maybe_unblock();
}

void Cache::maybe_unblock()
{
    if (blocked_upstream_ && mshrs_live_ < params_.mshrs) {
        blocked_upstream_ = false;
        cpu_port_.send_retry_req();
    }
}

void Cache::snoop_invalidate(Addr addr, std::uint32_t size)
{
    if (valid_lines_ == 0) {
        return; // nothing cached: the walk below cannot find a line
    }
    for (Addr a = line_addr(addr); a < addr + size;
         a += params_.line_bytes) {
        if (Line* line = find_line_l(a); line != nullptr) {
            --valid_lines_;
            dirty_lines_ -= line->dirty() ? 1 : 0;
            line->invalidate();
            ++n_snoop_invalidations_;
        }
    }
}

void Cache::snoop_clean(Addr addr, std::uint32_t size)
{
    if (dirty_lines_ == 0) {
        return; // no dirty line exists: the walk cannot demote anything
    }
    for (Addr a = line_addr(addr); a < addr + size;
         a += params_.line_bytes) {
        if (Line* line = find_line_l(a); line != nullptr && line->dirty()) {
            --dirty_lines_;
            line->set_dirty(false);
            ++n_snoop_cleans_;
        }
    }
}

namespace {

void ckpt_packet_vec(Ckpt& ar, std::vector<mem::PacketPtr>& v)
{
    std::uint64_t n = v.size();
    ar.io(n);
    if (ar.loading()) {
        v.clear();
        v.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            mem::PacketPtr pkt;
            mem::ckpt_packet(ar, pkt);
            v.push_back(std::move(pkt));
        }
    } else {
        for (auto& pkt : v) {
            mem::ckpt_packet(ar, pkt);
        }
    }
}

} // namespace

void Cache::serialize(Ckpt& ar)
{
    // Tag array + replacement state (fixed geometry; lines_ is one machine
    // word per way, so the raw image is the natural representation).
    ensure(wb_batch_.empty(), name(),
           ": checkpoint inside an install run (writebacks staged)");
    ar.raw(lines_.data(), lines_.size() * sizeof(Line));
    ar.pod_vec(lru_);
    ar.io(lru_clock_, valid_lines_, dirty_lines_, blocked_upstream_,
          mshr_free_bits_);
    std::uint64_t live = mshrs_live_;
    ar.io(live);
    mshrs_live_ = static_cast<std::size_t>(live);
    ar.pod_vec(mshr_keys_);
    for (Mshr& m : mshrs_) {
        ar.io(m.laddr, m.live, m.fill_sent, m.dirty_on_fill);
        ckpt_packet_vec(ar, m.targets);
    }
    rng_.serialize(ar);
    cpu_port_.serialize(ar);
    mem_port_.serialize(ar);
    resp_q_.serialize(ar);
    mem_q_.serialize(ar);
}

void Cache::report_occupancy(std::string& out) const
{
    if (mshrs_live_ == 0 && resp_q_.empty() && mem_q_.empty() &&
        !blocked_upstream_) {
        return;
    }
    out += "  " + name() + ": mshrs_live=" + std::to_string(mshrs_live_) +
           ", resp_q=" + std::to_string(resp_q_.size()) +
           (resp_q_.blocked() ? " (blocked)" : "") +
           ", mem_q=" + std::to_string(mem_q_.size()) +
           (mem_q_.blocked() ? " (blocked)" : "") +
           (blocked_upstream_ ? ", upstream refused" : "") + "\n";
}

} // namespace accesys::cache
