// Deterministic fault injection for the PCIe stack.
//
// A FaultPlan (carried on core::SystemConfig) describes *what* can go
// wrong: a seeded Bernoulli TLP-corruption rate, explicit (time, site)
// fault events (one-shot corruptions, link-down/retrain windows,
// endpoint hangs, poisoned completions, MMIO-UR windows, SMMU translation
// faults), and the recovery knobs the stack uses to fight back
// (replay-buffer depth, replay budget, completion timeouts, function-level
// reset + failover parameters). The FaultInjector is the runtime face of a
// plan: every PcieLink, endpoint and the SMMU registers itself as a fault
// *site* at construction and receives per-(site, channel) RNG streams
// seeded from (plan.seed, site_id, channel).
//
// Determinism contract: sites are registered in topology construction
// order, which is single-threaded and independent of ACCESYS_THREADS, and
// each direction's stream is drawn only by the domain thread that owns
// that direction's transmit side. A fixed plan therefore produces
// bit-identical results for any worker-thread count (locked by
// test_pool_determinism). ACCESYS_FAULTS=0 disables the whole subsystem —
// a populated plan then behaves exactly like an absent one.
//
// With no active plan, no link allocates fault state and no fault stat is
// registered: the clean hot path and its stats dumps are untouched.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace accesys {

/// What an explicit fault event does to its site.
enum class FaultKind : std::uint8_t {
    corrupt_tlp, ///< one-shot: the next TLP transmitted at/after `at_ns`
    link_down,   ///< the link drops everything for `duration_ns`, then
                 ///< retrains (credits drained and re-armed)
    accel_hang,  ///< endpoint FSM freezes at the next command boundary
                 ///< at/after `at_ns` (permanent until function-level reset)
    poisoned_cpl, ///< the next DMA completion arriving at the endpoint
                  ///< at/after `at_ns` carries the poison bit
    mmio_ur,      ///< endpoint MMIO window: reads complete all-ones
                  ///< unsupported-request, writes are dropped, for
                  ///< `duration_ns` (0 = permanent)
    smmu_fault,   ///< the next translated request on stream `dir` at/after
                  ///< `at_ns` takes a translation fault instead of a walk
};

/// One scheduled fault. `site` is matched as a substring of the site name
/// ("" matches every site). For link kinds `dir` selects the a->b (0) /
/// b->a (1) direction, or both (2); for smmu_fault it is the translation
/// stream id; device kinds ignore it.
struct FaultEvent {
    FaultKind kind = FaultKind::corrupt_tlp;
    std::string site;
    unsigned dir = 2;
    double at_ns = 0.0;
    double duration_ns = 0.0; ///< link_down / mmio_ur only
};

/// Everything the fault subsystem needs, in one value on SystemConfig.
struct FaultPlan {
    std::uint64_t seed = 1;

    /// Per-TLP corruption probability applied at link transmit (each
    /// replay attempt rolls again — errors can compound into NAK storms).
    double corrupt_rate = 0.0;
    /// Restrict the Bernoulli rate to links whose name contains this
    /// substring ("" = every link). Explicit events carry their own site.
    std::string corrupt_site;

    std::vector<FaultEvent> events;

    // --- recovery knobs ----------------------------------------------------
    /// Data-link replay buffer depth per direction; a full buffer
    /// back-pressures the transmitter until cumulative ACKs free entries.
    unsigned replay_buffer_tlps = 32;
    /// Retransmission budget per TLP before it is dropped for good (the
    /// transaction layer then recovers — or fails — via timeouts).
    unsigned max_replays = 8;
    /// Replay timer: un-ACKed entries older than this are retransmitted
    /// (covers losses the receiver never saw, e.g. link-down drops).
    double replay_timeout_ns = 2000.0;
    /// Completion timeout for split transactions (RootComplex MMIO reads,
    /// DmaEngine reads). 0 disables.
    double completion_timeout_ns = 0.0;
    /// Bounded retries (exponential backoff) before a timed-out
    /// transaction becomes a job-level failure.
    unsigned completion_max_retries = 3;
    /// Host-side give-up horizon for a dispatched job's completion poll;
    /// 0 polls forever (the clean-path behaviour).
    double job_timeout_ns = 0.0;

    // --- device-level fault kinds (Bernoulli rates) ------------------------
    /// Per-command hang probability at the accelerator's command boundary.
    double hang_rate = 0.0;
    std::string hang_site; ///< endpoint-name substring filter ("" = all)
    /// Per-completion poison probability at endpoint completion ingress.
    double poison_rate = 0.0;
    std::string poison_site;
    /// Per-translated-request SMMU translation-fault probability.
    double smmu_fault_rate = 0.0;

    // --- recovery machinery (Runner failover) ------------------------------
    /// Modeled function-level reset duration: the wedged endpoint drains
    /// its DMA/command state and sits busy for this long before rejoining
    /// the healthy pool.
    double flr_ns = 2000.0;
    /// Dispatch attempts per job including the first (1 = no failover —
    /// a failed job stays failed, the pre-failover behaviour).
    unsigned job_max_attempts = 1;
    /// Fleet-wide re-dispatch budget across all jobs of one batch.
    unsigned fleet_retry_budget = 16;
    /// Consecutive failures on one endpoint before degraded -> quarantined.
    unsigned quarantine_failures = 3;
    /// Consecutive successes before a degraded endpoint is healthy again.
    unsigned rehab_successes = 2;

    /// An inactive plan is indistinguishable from no plan at all.
    [[nodiscard]] bool active() const noexcept
    {
        return corrupt_rate > 0.0 || !events.empty() ||
               completion_timeout_ns > 0.0 || job_timeout_ns > 0.0 ||
               hang_rate > 0.0 || poison_rate > 0.0 || smmu_fault_rate > 0.0;
    }

    void validate() const;
};

/// Runtime face of a FaultPlan. Owned by core::System, installed on the
/// Simulator before any component constructs, so every PcieLink (and any
/// component with conditionally-registered fault stats) can find it.
class FaultInjector {
  public:
    explicit FaultInjector(const FaultPlan& plan);

    /// False when the plan is inactive or ACCESYS_FAULTS=0 snapshot says
    /// so; nothing may allocate fault state or register fault stats then.
    [[nodiscard]] bool enabled() const noexcept { return enabled_; }

    [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

    /// Register a fault site (one per PcieLink, topology construction
    /// order). Returns the site id the link keys its RNG streams with.
    [[nodiscard]] unsigned register_site(const std::string& name);

    [[nodiscard]] std::size_t site_count() const noexcept
    {
        return sites_.size();
    }

    /// Seed for the (site, dir) corruption stream: splitmix64-spread so
    /// neighbouring sites get uncorrelated sequences.
    [[nodiscard]] std::uint64_t stream_seed(unsigned site_id,
                                            unsigned dir) const noexcept;

    /// Seed for a device-level stream (hang, poison, per-stream SMMU
    /// faults). Mixed in a disjoint keyspace from the link streams so a
    /// device site id can never collide with a (site, dir) pair.
    [[nodiscard]] std::uint64_t
    device_stream_seed(unsigned site_id, unsigned channel) const noexcept;

    /// Does the Bernoulli corrupt_rate apply to this link?
    [[nodiscard]] bool rate_applies(const std::string& name) const;

    /// Do the device-level Bernoulli rates apply to this endpoint?
    [[nodiscard]] bool hang_applies(const std::string& name) const;
    [[nodiscard]] bool poison_applies(const std::string& name) const;

    /// Collect this (link, dir)'s explicit faults: one-shot corruption
    /// ticks (sorted) and link-down windows as [start, end) tick pairs
    /// (sorted, non-overlapping — overlaps are merged).
    void collect(const std::string& name, unsigned dir,
                 std::vector<Tick>& corrupt_ticks,
                 std::vector<std::pair<Tick, Tick>>& down_windows) const;

    /// Collect this endpoint's explicit device faults: one-shot hang /
    /// poison ticks (sorted) and MMIO-UR windows as [start, end) tick
    /// pairs (sorted, merged; duration 0 = open-ended).
    void collect_device(const std::string& name, std::vector<Tick>& hang_ticks,
                        std::vector<Tick>& poison_ticks,
                        std::vector<std::pair<Tick, Tick>>& ur_windows) const;

    /// Collect one translation stream's explicit smmu_fault ticks (the
    /// event's `dir` field carries the stream id).
    void collect_smmu(const std::string& name, unsigned stream,
                      std::vector<Tick>& fault_ticks) const;

    /// Any smmu_fault event in the plan (site filter aside)? Lets the SMMU
    /// skip fault-state allocation for plans that never touch it.
    [[nodiscard]] bool has_smmu_events() const;

  private:
    FaultPlan plan_;
    bool enabled_ = false;
    std::vector<std::string> sites_;
};

} // namespace accesys
