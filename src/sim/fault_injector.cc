#include "sim/fault_injector.hh"

#include <algorithm>

#include "sim/env_flags.hh"
#include "sim/error.hh"

namespace accesys {

namespace {

/// splitmix64 step — the standard seed spreader (same as Rng::reseed).
std::uint64_t splitmix64(std::uint64_t& x) noexcept
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

bool site_matches(const std::string& pattern, const std::string& name)
{
    return pattern.empty() || name.find(pattern) != std::string::npos;
}

/// Sort and merge overlapping/adjacent [start, end) windows so per-tick
/// scans can keep a single monotonic cursor.
void merge_windows(std::vector<std::pair<Tick, Tick>>& windows)
{
    std::sort(windows.begin(), windows.end());
    std::size_t out = 0;
    for (std::size_t i = 0; i < windows.size(); ++i) {
        if (out > 0 && windows[i].first <= windows[out - 1].second) {
            windows[out - 1].second =
                std::max(windows[out - 1].second, windows[i].second);
        } else {
            windows[out++] = windows[i];
        }
    }
    windows.resize(out);
}

} // namespace

void FaultPlan::validate() const
{
    require_cfg(corrupt_rate >= 0.0 && corrupt_rate <= 1.0,
                "fault corrupt_rate must be in [0, 1] (got ", corrupt_rate,
                ")");
    require_cfg(replay_buffer_tlps > 0,
                "fault replay buffer must hold at least one TLP");
    require_cfg(max_replays > 0, "fault max_replays must be non-zero");
    require_cfg(replay_timeout_ns > 0.0,
                "fault replay_timeout_ns must be positive");
    require_cfg(completion_timeout_ns >= 0.0 && job_timeout_ns >= 0.0,
                "fault timeouts must be non-negative");
    require_cfg(hang_rate >= 0.0 && hang_rate <= 1.0,
                "fault hang_rate must be in [0, 1] (got ", hang_rate, ")");
    require_cfg(poison_rate >= 0.0 && poison_rate <= 1.0,
                "fault poison_rate must be in [0, 1] (got ", poison_rate,
                ")");
    require_cfg(smmu_fault_rate >= 0.0 && smmu_fault_rate <= 1.0,
                "fault smmu_fault_rate must be in [0, 1] (got ",
                smmu_fault_rate, ")");
    require_cfg(flr_ns > 0.0, "fault flr_ns must be positive");
    require_cfg(job_max_attempts >= 1,
                "fault job_max_attempts must be at least 1");
    require_cfg(quarantine_failures >= 1 && rehab_successes >= 1,
                "fault health hysteresis thresholds must be at least 1");
    for (const FaultEvent& ev : events) {
        const bool link_kind = ev.kind == FaultKind::corrupt_tlp ||
                               ev.kind == FaultKind::link_down;
        // Link kinds address a direction; smmu_fault reuses `dir` as the
        // stream id and device kinds ignore it.
        require_cfg(!link_kind || ev.dir <= 2,
                    "fault event dir must be 0, 1 or 2");
        require_cfg(ev.at_ns >= 0.0, "fault event time must be >= 0");
        if (ev.kind == FaultKind::link_down) {
            require_cfg(ev.duration_ns > 0.0,
                        "link_down fault needs a positive duration");
        }
    }
}

FaultInjector::FaultInjector(const FaultPlan& plan) : plan_(plan)
{
    plan_.validate();
    enabled_ = plan_.active() && env_flags().faults;
}

unsigned FaultInjector::register_site(const std::string& name)
{
    sites_.push_back(name);
    return static_cast<unsigned>(sites_.size() - 1);
}

std::uint64_t FaultInjector::stream_seed(unsigned site_id,
                                         unsigned dir) const noexcept
{
    std::uint64_t x = plan_.seed;
    std::uint64_t s = splitmix64(x);
    x = s ^ (static_cast<std::uint64_t>(site_id) << 1 | dir);
    s = splitmix64(x);
    return s;
}

std::uint64_t
FaultInjector::device_stream_seed(unsigned site_id,
                                  unsigned channel) const noexcept
{
    // High bit set keeps this keyspace disjoint from stream_seed()'s
    // (site << 1 | dir) values for every realistic site count.
    std::uint64_t x = plan_.seed;
    std::uint64_t s = splitmix64(x);
    x = s ^ (0x8000000000000000ULL |
             static_cast<std::uint64_t>(site_id) << 16 | channel);
    s = splitmix64(x);
    return s;
}

bool FaultInjector::rate_applies(const std::string& name) const
{
    return plan_.corrupt_rate > 0.0 &&
           site_matches(plan_.corrupt_site, name);
}

bool FaultInjector::hang_applies(const std::string& name) const
{
    return plan_.hang_rate > 0.0 && site_matches(plan_.hang_site, name);
}

bool FaultInjector::poison_applies(const std::string& name) const
{
    return plan_.poison_rate > 0.0 && site_matches(plan_.poison_site, name);
}

void FaultInjector::collect(
    const std::string& name, unsigned dir, std::vector<Tick>& corrupt_ticks,
    std::vector<std::pair<Tick, Tick>>& down_windows) const
{
    corrupt_ticks.clear();
    down_windows.clear();
    for (const FaultEvent& ev : plan_.events) {
        if (!site_matches(ev.site, name) ||
            (ev.dir != 2 && ev.dir != dir)) {
            continue;
        }
        const Tick at = ticks_from_ns(ev.at_ns);
        if (ev.kind == FaultKind::corrupt_tlp) {
            corrupt_ticks.push_back(at);
        } else if (ev.kind == FaultKind::link_down) {
            down_windows.emplace_back(at, at + ticks_from_ns(ev.duration_ns));
        }
    }
    std::sort(corrupt_ticks.begin(), corrupt_ticks.end());
    merge_windows(down_windows);
}

void FaultInjector::collect_device(
    const std::string& name, std::vector<Tick>& hang_ticks,
    std::vector<Tick>& poison_ticks,
    std::vector<std::pair<Tick, Tick>>& ur_windows) const
{
    hang_ticks.clear();
    poison_ticks.clear();
    ur_windows.clear();
    for (const FaultEvent& ev : plan_.events) {
        if (!site_matches(ev.site, name)) {
            continue;
        }
        const Tick at = ticks_from_ns(ev.at_ns);
        if (ev.kind == FaultKind::accel_hang) {
            hang_ticks.push_back(at);
        } else if (ev.kind == FaultKind::poisoned_cpl) {
            poison_ticks.push_back(at);
        } else if (ev.kind == FaultKind::mmio_ur) {
            ur_windows.emplace_back(at, ev.duration_ns <= 0.0
                                            ? kMaxTick
                                            : at + ticks_from_ns(
                                                       ev.duration_ns));
        }
    }
    std::sort(hang_ticks.begin(), hang_ticks.end());
    std::sort(poison_ticks.begin(), poison_ticks.end());
    merge_windows(ur_windows);
}

void FaultInjector::collect_smmu(const std::string& name, unsigned stream,
                                 std::vector<Tick>& fault_ticks) const
{
    fault_ticks.clear();
    for (const FaultEvent& ev : plan_.events) {
        if (ev.kind != FaultKind::smmu_fault ||
            !site_matches(ev.site, name) || ev.dir != stream) {
            continue;
        }
        fault_ticks.push_back(ticks_from_ns(ev.at_ns));
    }
    std::sort(fault_ticks.begin(), fault_ticks.end());
}

bool FaultInjector::has_smmu_events() const
{
    for (const FaultEvent& ev : plan_.events) {
        if (ev.kind == FaultKind::smmu_fault) {
            return true;
        }
    }
    return false;
}

} // namespace accesys
