#include "sim/fault_injector.hh"

#include <algorithm>

#include "sim/env_flags.hh"
#include "sim/error.hh"

namespace accesys {

namespace {

/// splitmix64 step — the standard seed spreader (same as Rng::reseed).
std::uint64_t splitmix64(std::uint64_t& x) noexcept
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

bool site_matches(const std::string& pattern, const std::string& name)
{
    return pattern.empty() || name.find(pattern) != std::string::npos;
}

} // namespace

void FaultPlan::validate() const
{
    require_cfg(corrupt_rate >= 0.0 && corrupt_rate <= 1.0,
                "fault corrupt_rate must be in [0, 1] (got ", corrupt_rate,
                ")");
    require_cfg(replay_buffer_tlps > 0,
                "fault replay buffer must hold at least one TLP");
    require_cfg(max_replays > 0, "fault max_replays must be non-zero");
    require_cfg(replay_timeout_ns > 0.0,
                "fault replay_timeout_ns must be positive");
    require_cfg(completion_timeout_ns >= 0.0 && job_timeout_ns >= 0.0,
                "fault timeouts must be non-negative");
    for (const FaultEvent& ev : events) {
        require_cfg(ev.dir <= 2, "fault event dir must be 0, 1 or 2");
        require_cfg(ev.at_ns >= 0.0, "fault event time must be >= 0");
        if (ev.kind == FaultKind::link_down) {
            require_cfg(ev.duration_ns > 0.0,
                        "link_down fault needs a positive duration");
        }
    }
}

FaultInjector::FaultInjector(const FaultPlan& plan) : plan_(plan)
{
    plan_.validate();
    enabled_ = plan_.active() && env_flags().faults;
}

unsigned FaultInjector::register_site(const std::string& name)
{
    sites_.push_back(name);
    return static_cast<unsigned>(sites_.size() - 1);
}

std::uint64_t FaultInjector::stream_seed(unsigned site_id,
                                         unsigned dir) const noexcept
{
    std::uint64_t x = plan_.seed;
    std::uint64_t s = splitmix64(x);
    x = s ^ (static_cast<std::uint64_t>(site_id) << 1 | dir);
    s = splitmix64(x);
    return s;
}

bool FaultInjector::rate_applies(const std::string& name) const
{
    return plan_.corrupt_rate > 0.0 &&
           site_matches(plan_.corrupt_site, name);
}

void FaultInjector::collect(
    const std::string& name, unsigned dir, std::vector<Tick>& corrupt_ticks,
    std::vector<std::pair<Tick, Tick>>& down_windows) const
{
    corrupt_ticks.clear();
    down_windows.clear();
    for (const FaultEvent& ev : plan_.events) {
        if (!site_matches(ev.site, name) ||
            (ev.dir != 2 && ev.dir != dir)) {
            continue;
        }
        const Tick at = ticks_from_ns(ev.at_ns);
        if (ev.kind == FaultKind::corrupt_tlp) {
            corrupt_ticks.push_back(at);
        } else {
            down_windows.emplace_back(at, at + ticks_from_ns(ev.duration_ns));
        }
    }
    std::sort(corrupt_ticks.begin(), corrupt_ticks.end());
    std::sort(down_windows.begin(), down_windows.end());
    // Merge overlapping/adjacent down windows so per-tick scans can keep a
    // single monotonic cursor.
    std::size_t out = 0;
    for (std::size_t i = 0; i < down_windows.size(); ++i) {
        if (out > 0 && down_windows[i].first <= down_windows[out - 1].second) {
            down_windows[out - 1].second = std::max(
                down_windows[out - 1].second, down_windows[i].second);
        } else {
            down_windows[out++] = down_windows[i];
        }
    }
    down_windows.resize(out);
}

} // namespace accesys
