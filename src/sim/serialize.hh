// Checkpoint archive: versioned, named-section binary format with
// per-section CRCs.
//
// A checkpoint captures the complete dynamic state of a simulation at a
// quiescent point (any inter-event point when serial, a window barrier when
// parallel) so a fresh process can rebuild the same `SystemConfig`,
// `Simulator::restore()` the file, and resume with results bit-identical to
// the uninterrupted run (see ROADMAP "Checkpoint/restore").
//
// One `Ckpt` object serves both directions: every component implements a
// single `serialize(Ckpt&)` that reads or writes depending on the archive's
// mode, so the field list — the thing that must match exactly — is written
// once. Sections are keyed by component name (unique by construction) and
// looked up by name on load, each with a CRC32 over its payload; the file
// header carries a format version and a hash of the originating
// `SystemConfig` so a restore into the wrong topology fails loudly instead
// of corrupting silently.
//
// File layout (all integers little-endian):
//   magic "ACSYSCKP" | u32 format version | u64 config hash |
//   u32 section count | sections: u16 name len | name bytes |
//   u64 payload len | u32 crc32(payload) | payload bytes
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "sim/error.hh"

namespace accesys {

/// CRC-32 (IEEE 802.3 polynomial, table-driven).
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t n,
                                  std::uint32_t seed = 0);

/// FNV-1a 64-bit accumulator (config hashing).
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::uint64_t h,
                                              std::uint64_t v) noexcept
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xFF;
        h *= 0x100000001B3ULL;
    }
    return h;
}
inline constexpr std::uint64_t kFnvBasis = 0xCBF29CE484222325ULL;

/// Symmetric checkpoint archive (see file header).
class Ckpt {
  public:
    // v2: poison bit on Tlp/Packet/InboundRead + endpoint/SMMU fault state.
    static constexpr std::uint32_t kFormatVersion = 2;
    static constexpr char kMagic[8] = {'A', 'C', 'S', 'Y',
                                       'S', 'C', 'K', 'P'};

    enum class Mode { save, load };

    /// A saving archive; fill sections, then write_file().
    Ckpt() : mode_(Mode::save) {}

    /// A loading archive over the named file. Verifies magic, format
    /// version, config hash and every section CRC; throws SimError on any
    /// mismatch.
    static Ckpt load_file(const std::string& path,
                          std::uint64_t expect_config_hash);

    /// Parse without the config-hash check (ckpt_tool inspection).
    static Ckpt load_file_unchecked(const std::string& path);

    [[nodiscard]] bool saving() const noexcept
    {
        return mode_ == Mode::save;
    }
    [[nodiscard]] bool loading() const noexcept { return !saving(); }

    // --- sections -----------------------------------------------------------

    /// Open the named section: on save, start buffering a new payload; on
    /// load, position the read cursor at the start of the section's saved
    /// payload (throws SimError when the checkpoint has no such section).
    void begin_section(const std::string& name);

    /// Close the current section. On load, the entire payload must have
    /// been consumed — a length mismatch means the serialize() field list
    /// changed between save and load, which is exactly the class of bug
    /// this check exists to catch.
    void end_section();

    // --- primitives ---------------------------------------------------------

    void raw(void* p, std::size_t n)
    {
        if (saving()) {
            const auto* b = static_cast<const std::uint8_t*>(p);
            cur_payload_.insert(cur_payload_.end(), b, b + n);
        } else {
            ensure(read_pos_ + n <= read_end_,
                   "checkpoint section '", cur_name_,
                   "' truncated (field list mismatch)");
            std::memcpy(p, read_base_ + read_pos_, n);
            read_pos_ += n;
        }
    }

    template <typename T>
    void pod(T& v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "Ckpt::pod needs a trivially copyable type");
        raw(&v, sizeof(T));
    }

    /// Read/write a list of trivially copyable fields in order.
    template <typename... Ts>
    void io(Ts&... vs)
    {
        (pod(vs), ...);
    }

    void str(std::string& s)
    {
        std::uint64_t n = s.size();
        pod(n);
        if (loading()) {
            s.resize(n);
        }
        raw(s.data(), n);
    }

    template <typename T>
    void pod_vec(std::vector<T>& v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        std::uint64_t n = v.size();
        pod(n);
        if (loading()) {
            v.resize(n);
        }
        raw(v.data(), n * sizeof(T));
    }

    // --- file I/O -----------------------------------------------------------

    /// Serialize every buffered section to `path` (atomic-ish: written to
    /// a temp file, then renamed). Save mode only.
    void write_file(const std::string& path, std::uint64_t config_hash);

    // --- introspection (ckpt_tool) ------------------------------------------

    struct Section {
        std::string name;
        std::uint64_t offset = 0; ///< payload start within blob_
        std::uint64_t size = 0;
        std::uint32_t crc = 0;
    };

    [[nodiscard]] const std::vector<Section>& sections() const noexcept
    {
        return sections_;
    }
    [[nodiscard]] std::uint64_t config_hash() const noexcept
    {
        return config_hash_;
    }
    [[nodiscard]] std::uint32_t format_version() const noexcept
    {
        return format_version_;
    }
    /// Payload bytes of section `i` (load mode).
    [[nodiscard]] const std::uint8_t* section_data(std::size_t i) const
    {
        return blob_.data() + sections_.at(i).offset;
    }

  private:
    explicit Ckpt(Mode m) : mode_(m) {}
    static Ckpt parse(const std::string& path);

    [[nodiscard]] const Section* find_section(const std::string& name) const;

    Mode mode_;
    // Save side: completed sections + the one being filled.
    std::vector<Section> sections_;
    std::vector<std::vector<std::uint8_t>> payloads_;
    std::vector<std::uint8_t> cur_payload_;
    std::string cur_name_;
    bool in_section_ = false;
    // Load side: the whole file, with sections_ carrying offsets into it.
    std::vector<std::uint8_t> blob_;
    const std::uint8_t* read_base_ = nullptr;
    std::uint64_t read_pos_ = 0;
    std::uint64_t read_end_ = 0;
    std::uint64_t config_hash_ = 0;
    std::uint32_t format_version_ = kFormatVersion;
};

} // namespace accesys
