// Lightweight component-tagged trace logging.
//
// Logging is globally gated by a level so that hot paths pay only a branch
// when tracing is off. Components pass their instance name; the sink is a
// plain ostream (stderr by default, redirectable for tests).
#pragma once

#include <iostream>
#include <sstream>
#include <string>

#include "sim/types.hh"

namespace accesys::log {

enum class Level : int {
    off = 0,
    warn = 1,
    info = 2,
    debug = 3,
    trace = 4,
};

/// Global log level; defaults to `warn`.
Level level() noexcept;
void set_level(Level lvl) noexcept;

/// Redirect log output (nullptr restores stderr). Non-owning.
void set_sink(std::ostream* os) noexcept;

/// True when messages at `lvl` would be emitted.
inline bool enabled(Level lvl) noexcept
{
    return static_cast<int>(lvl) <= static_cast<int>(level());
}

namespace detail {
void emit(Level lvl, Tick now, const std::string& who, const std::string& msg);

inline void build(std::ostringstream&) {}

template <typename T, typename... Rest>
void build(std::ostringstream& os, const T& v, const Rest&... rest)
{
    os << v;
    build(os, rest...);
}
} // namespace detail

/// Emit a message at `lvl` attributed to component `who` at time `now`.
template <typename... Ts>
void write(Level lvl, Tick now, const std::string& who, const Ts&... vs)
{
    if (!enabled(lvl)) {
        return;
    }
    std::ostringstream os;
    detail::build(os, vs...);
    detail::emit(lvl, now, who, os.str());
}

} // namespace accesys::log
