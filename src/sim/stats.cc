#include "sim/stats.hh"

#include <iomanip>

#include "sim/serialize.hh"

namespace accesys::stats {

Stat::Stat(Group& group, std::string name, std::string desc)
    : full_name_(group.prefix().empty() ? std::move(name)
                                        : group.prefix() + "." + name),
      desc_(std::move(desc)),
      group_(&group)
{
    group_->registry_->add(*this);
}

Stat::~Stat()
{
    group_->registry_->remove(*this);
}

void Scalar::write_text(std::ostream& os) const
{
    os << full_name() << " " << v_;
}

void Scalar::write_json(std::ostream& os) const
{
    os << "\"" << full_name() << "\": " << v_;
}

void Average::write_text(std::ostream& os) const
{
    os << full_name() << " mean=" << mean() << " count=" << count_
       << " total=" << sum_;
}

void Average::write_json(std::ostream& os) const
{
    os << "\"" << full_name() << "\": {\"mean\": " << mean()
       << ", \"count\": " << count_ << ", \"total\": " << sum_ << "}";
}

void Distribution::write_text(std::ostream& os) const
{
    os << full_name() << " mean=" << mean() << " min=" << min()
       << " max=" << max() << " stddev=" << stddev() << " count=" << count_;
}

void Distribution::write_json(std::ostream& os) const
{
    os << "\"" << full_name() << "\": {\"mean\": " << mean()
       << ", \"min\": " << min() << ", \"max\": " << max()
       << ", \"stddev\": " << stddev() << ", \"count\": " << count_ << "}";
}

Histogram::Histogram(Group& group, std::string name, std::string desc,
                     double lo, double hi, std::size_t buckets)
    : Stat(group, std::move(name), std::move(desc)),
      lo_(lo),
      hi_(hi),
      bucket_width_((hi - lo) / static_cast<double>(buckets)),
      buckets_(buckets, 0)
{
    ensure(hi > lo && buckets > 0, "bad histogram bounds for ", full_name());
}

void Histogram::sample(double v, std::uint64_t n)
{
    if (v < lo_) {
        underflow_ += n;
    } else if (v >= hi_) {
        overflow_ += n;
    } else {
        const auto idx = static_cast<std::size_t>((v - lo_) / bucket_width_);
        buckets_[std::min(idx, buckets_.size() - 1)] += n;
    }
    count_ += n;
    sum_ += v * static_cast<double>(n);
}

void Histogram::write_text(std::ostream& os) const
{
    os << full_name() << " count=" << count_ << " mean=" << value()
       << " under=" << underflow_ << " over=" << overflow_;
}

void Histogram::write_json(std::ostream& os) const
{
    os << "\"" << full_name() << "\": {\"count\": " << count_
       << ", \"mean\": " << value() << ", \"underflow\": " << underflow_
       << ", \"overflow\": " << overflow_ << ", \"buckets\": [";
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        os << (i ? ", " : "") << buckets_[i];
    }
    os << "]}";
}

void Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = overflow_ = count_ = 0;
    sum_ = 0.0;
}

void ValueFn::write_text(std::ostream& os) const
{
    os << full_name() << " " << value();
}

void ValueFn::write_json(std::ostream& os) const
{
    os << "\"" << full_name() << "\": " << value();
}

void Registry::add(Stat& s)
{
    const auto [it, inserted] = stats_.emplace(s.full_name(), &s);
    (void)it;
    ensure(inserted, "duplicate stat name: ", s.full_name());
}

void Registry::remove(const Stat& s) noexcept
{
    stats_.erase(s.full_name());
}

const Stat* Registry::find(const std::string& full_name) const
{
    const auto it = stats_.find(full_name);
    return it == stats_.end() ? nullptr : it->second;
}

double Registry::value(const std::string& full_name) const
{
    const Stat* s = find(full_name);
    ensure(s != nullptr, "unknown stat: ", full_name);
    return s->value();
}

void Registry::write_text(std::ostream& os) const
{
    for (const auto& [name, stat] : stats_) {
        stat->write_text(os);
        os << '\n';
    }
}

void Registry::write_json(std::ostream& os) const
{
    os << "{\n";
    bool first = true;
    for (const auto& [name, stat] : stats_) {
        if (!first) {
            os << ",\n";
        }
        first = false;
        os << "  ";
        stat->write_json(os);
    }
    os << "\n}\n";
}

void Registry::reset_all()
{
    for (auto& [name, stat] : stats_) {
        stat->reset();
    }
}

void Scalar::serialize(Ckpt& ar)
{
    ar.io(v_);
}

void Average::serialize(Ckpt& ar)
{
    ar.io(sum_, count_);
}

void Distribution::serialize(Ckpt& ar)
{
    ar.io(sum_, sum_sq_, min_, max_, count_);
}

void Histogram::serialize(Ckpt& ar)
{
    const std::size_t nbuckets = buckets_.size();
    ar.io(underflow_, overflow_, count_, sum_);
    ar.pod_vec(buckets_);
    ensure(buckets_.size() == nbuckets, "histogram ", full_name(),
           " bucket count changed across checkpoint (", nbuckets, " -> ",
           buckets_.size(), ")");
}

void Registry::serialize(Ckpt& ar)
{
    std::uint64_t n = stats_.size();
    ar.io(n);
    ensure(n == stats_.size(), "checkpoint has ", n, " stats, this run has ",
           stats_.size(), " (component set mismatch)");
    for (auto& [name, stat] : stats_) {
        std::string key = name;
        ar.str(key);
        ensure(key == name, "checkpoint stat order mismatch: expected ",
               name, ", found ", key);
        stat->serialize(ar);
    }
}

} // namespace accesys::stats
