// Error-reporting policy for the accesys libraries.
//
//   * `ConfigError`  — the user supplied an impossible configuration. Thrown
//     from constructors/builders; callers are expected to be able to catch it.
//   * `SimError`     — an internal invariant was violated while simulating.
//   * `ensure(...)`  — cheap always-on check that throws SimError.
//   * `panic(...)`   — [[noreturn]] convenience for unreachable states.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace accesys {

class ConfigError : public std::runtime_error {
  public:
    explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

class SimError : public std::logic_error {
  public:
    explicit SimError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

inline void cat_into(std::ostringstream&) {}

template <typename T, typename... Rest>
void cat_into(std::ostringstream& os, const T& v, const Rest&... rest)
{
    os << v;
    cat_into(os, rest...);
}

} // namespace detail

/// Concatenate arbitrary stream-printable values into a string.
template <typename... Ts>
std::string strcat_msg(const Ts&... vs)
{
    std::ostringstream os;
    detail::cat_into(os, vs...);
    return os.str();
}

/// Abort simulation with an internal error.
template <typename... Ts>
[[noreturn]] void panic(const Ts&... vs)
{
    throw SimError(strcat_msg("panic: ", vs...));
}

/// Always-on invariant check (unlike assert(), survives NDEBUG builds).
template <typename... Ts>
void ensure(bool cond, const Ts&... vs)
{
    if (!cond) {
        throw SimError(strcat_msg("invariant violated: ", vs...));
    }
}

/// Configuration validation helper: throws ConfigError when `cond` is false.
template <typename... Ts>
void require_cfg(bool cond, const Ts&... vs)
{
    if (!cond) {
        throw ConfigError(strcat_msg(vs...));
    }
}

} // namespace accesys
