// Error-reporting policy for the accesys libraries.
//
//   * `ConfigError`  — the user supplied an impossible configuration. Thrown
//     from constructors/builders; callers are expected to be able to catch it.
//   * `SimError`     — an internal invariant was violated while simulating.
//   * `ensure(...)`  — cheap always-on check that throws SimError.
//   * `panic(...)`   — [[noreturn]] convenience for unreachable states.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace accesys {

class ConfigError : public std::runtime_error {
  public:
    explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

class SimError : public std::logic_error {
  public:
    explicit SimError(const std::string& what) : std::logic_error(what) {}
};

#if defined(__GNUC__) || defined(__clang__)
/// Keep failure-path formatting out of hot functions: the throw branch is
/// outlined into a cold, never-inlined helper so an ensure() in a hot loop
/// compiles to a test + predicted-not-taken branch.
#define ACCESYS_COLD_NOINLINE __attribute__((noinline, cold))
#else
#define ACCESYS_COLD_NOINLINE
#endif

namespace detail {

inline void cat_into(std::ostringstream&) {}

template <typename T, typename... Rest>
void cat_into(std::ostringstream& os, const T& v, const Rest&... rest)
{
    os << v;
    cat_into(os, rest...);
}

} // namespace detail

/// Concatenate arbitrary stream-printable values into a string.
template <typename... Ts>
std::string strcat_msg(const Ts&... vs)
{
    std::ostringstream os;
    detail::cat_into(os, vs...);
    return os.str();
}

/// Abort simulation with an internal error.
template <typename... Ts>
[[noreturn]] ACCESYS_COLD_NOINLINE void panic(const Ts&... vs)
{
    throw SimError(strcat_msg("panic: ", vs...));
}

namespace detail {

template <typename... Ts>
[[noreturn]] ACCESYS_COLD_NOINLINE void ensure_fail(const Ts&... vs)
{
    throw SimError(strcat_msg("invariant violated: ", vs...));
}

} // namespace detail

/// Always-on invariant check (unlike assert(), survives NDEBUG builds).
/// The passing path is a test + predicted-not-taken branch; message
/// formatting lives in the outlined cold helper.
template <typename... Ts>
inline void ensure(bool cond, const Ts&... vs)
{
    if (cond) [[likely]] {
        return;
    }
    detail::ensure_fail(vs...);
}

/// Configuration validation helper: throws ConfigError when `cond` is false.
template <typename... Ts>
void require_cfg(bool cond, const Ts&... vs)
{
    if (!cond) {
        throw ConfigError(strcat_msg(vs...));
    }
}

} // namespace accesys
