// Deterministic, seedable pseudo-random number generator (xoshiro256**).
//
// The standard <random> engines are avoided in hot simulation paths because
// of their size and per-call overhead; xoshiro256** is small, fast and has
// excellent statistical quality for simulation (non-cryptographic) use.
#pragma once

#include <cstdint>

namespace accesys {

class Ckpt;

class Rng {
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

    /// Re-initialise the state from a single 64-bit seed (splitmix64 spread).
    void reseed(std::uint64_t seed)
    {
        for (auto& word : state_) {
            seed += 0x9E3779B97F4A7C15ULL;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
            word = z ^ (z >> 31);
        }
    }

    /// Uniform 64-bit value.
    std::uint64_t next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform value in [0, bound) — bound must be non-zero.
    std::uint64_t below(std::uint64_t bound)
    {
        // Multiply-shift range reduction (Lemire); bias is negligible for
        // simulation purposes.
        const unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /// Uniform value in [lo, hi] inclusive.
    std::uint64_t between(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /// Uniform double in [0, 1).
    double uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /// Bernoulli trial with probability `p` of returning true.
    bool chance(double p) { return uniform() < p; }

    /// Checkpoint/restore the stream position: a restored Rng continues
    /// the exact draw sequence of the saved one.
    void serialize(Ckpt& ar);

  private:
    static std::uint64_t rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
};

} // namespace accesys
