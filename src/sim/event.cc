#include "sim/event.hh"

#include "sim/serialize.hh"

namespace accesys {

void Event::serialize(Ckpt& ar, EventQueue& eq)
{
    std::uint8_t sched = scheduled_ ? 1 : 0;
    ar.io(when_, generation_, priority_, sched);
    if (ar.loading()) {
        scheduled_ = sched != 0;
        if (scheduled_) {
            eq.restore_event(*this);
        }
    }
}

std::uint64_t EventQueue::live_event_count() const
{
    ensure(batch_pos_ >= batch_len_,
           "live_event_count inside a dispatch batch");
    std::uint64_t n = 0;
    if (express_pending_ && entry_live(express_)) {
        ++n;
    }
    for (std::size_t i = 0; i < near_n_; ++i) {
        n += entry_live(near_[(near_head_ + i) & (kNearCap - 1)]) ? 1 : 0;
    }
    for (const Entry& e : heap_) {
        n += entry_live(e) ? 1 : 0;
    }
    return n;
}

void EventQueue::restore_begin() noexcept
{
    // Mark every pending event idle so events a fresh construction+startup
    // scheduled — but the checkpoint does not cover — end up cleanly
    // unscheduled rather than flagged-scheduled with no entry.
    if (express_pending_) {
        express_.ev->scheduled_ = false;
        express_pending_ = false;
    }
    for (std::size_t i = 0; i < near_n_; ++i) {
        near_[(near_head_ + i) & (kNearCap - 1)].ev->scheduled_ = false;
    }
    near_head_ = 0;
    near_n_ = 0;
    for (Entry& e : heap_) {
        e.ev->scheduled_ = false;
    }
    heap_.clear();
    batch_pos_ = 0;
    batch_len_ = 0;
    q_memo_tick_ = kMaxTick;
    q_memo_epoch_ = 0;
    at_now_epoch_ = 1;
    expected_live_ = 0;
    restored_count_ = 0;
}

void EventQueue::serialize_clock(Ckpt& ar)
{
    std::uint64_t live = ar.saving() ? live_event_count() : 0;
    ar.io(now_, next_seq_, live);
    if (ar.loading()) {
        expected_live_ = live;
    }
}

void EventQueue::serialize_counters(Ckpt& ar)
{
    ar.io(stat_processed_, stat_scheduled_, stat_express_hits_,
          stat_express_spills_, stat_heap_pushes_, stat_near_hits_);
}

void EventQueue::restore_event(Event& ev)
{
    ensure(ev.scheduled_, "restore_event on an idle event: ", ev.name_);
    check_priority(ev.priority_);
    heap_push(Entry{
        make_key(ev.when_, pack_prio_seq(ev.priority_, ev.generation_)),
        ev.generation_, &ev});
    ++restored_count_;
}

std::uint64_t EventQueue::dispatch_tick(const bool* stop)
{
    const Tick t = near_at(0).when();
    ensure(t >= now_, "event heap corrupted");
    now_ = t;
    // Pull the whole same-tick run out of the near ring, then the heap, in
    // one sweep. Ring entries precede heap entries and both come out in
    // exact run order, so the batch array is sorted by construction.
    batch_[0] = near_at(0);
    near_pop_front();
    std::size_t len = 1;
    while (len < kBatchMax && near_n_ > 0 && near_at(0).when() == t) {
        const Entry e = near_at(0);
        near_pop_front();
        if (entry_live(e)) {
            batch_[len++] = e;
        }
    }
    if (near_n_ == 0) {
        while (len < kBatchMax && !heap_.empty() && heap_[0].when() == t) {
            const Entry e = heap_pop();
            if (entry_live(e)) {
                batch_[len++] = e;
            }
        }
    }
    batch_len_ = len;

    std::uint64_t n = 0;
    for (batch_pos_ = 0; batch_pos_ < batch_len_; ++batch_pos_) {
        const Entry& e = batch_[batch_pos_];
        if (!entry_live(e)) {
            continue; // descheduled or rescheduled while batched
        }
        Event& ev = *e.ev;
        ev.scheduled_ = false;
        ++stat_processed_;
        ensure(ev.invoke_ != nullptr, "event without callback: ", ev.name_);
        if (observer_ != nullptr) [[unlikely]] {
            observer_->on_dispatch(ev);
        }
        ev.invoke_(ev.ctx_);
        ++n;
        if (stop != nullptr && *stop) [[unlikely]] {
            // Return the unexecuted remainder so the next drain() resumes
            // in exact order (see spill_batch_remainder for the invariant).
            spill_batch_remainder(batch_pos_ + 1);
            batch_pos_ = batch_len_ = 0;
            return n;
        }
    }
    batch_pos_ = batch_len_ = 0;
    return n;
}

// Express slot handling shared by run() and drain(): decide what to do
// with a staged hop entry before looking at the ring/heap.
//   * dead (descheduled/rescheduled): drop it;
//   * earliest pending work and within the horizon: dispatch it straight
//     from the slot — the hop-fusion fast path (zero heap traffic);
//   * later than the head: fold it into the ring/heap and proceed — the
//     fast path only pays off when the hop is next, so the slot never
//     stays parked (a parked slot would re-arbitrate on every dispatch).
// `dispatched` reports an actual execution; `horizon` that the staged hop
// (the earliest pending work) lies beyond the caller's window.
void EventQueue::express_step(Tick max_tick, bool& dispatched, bool& horizon)
{
    const Entry e = express_;
    express_pending_ = false;
    if (!entry_live(e)) {
        return;
    }
    if (!refresh_top() || later(near_at(0), e)) {
        // Per-object quiescence: nothing anywhere is due before this hop.
        if (e.when() > max_tick) {
            horizon = true;
            express_pending_ = true; // leave staged for the next window
            return;
        }
        ++stat_express_hits_;
        exec_entry(e);
        dispatched = true;
        return;
    }
    ++stat_express_spills_;
    schedule_entry(e);
}

std::uint64_t EventQueue::run(Tick max_tick)
{
    std::uint64_t n = 0;
    for (;;) {
        if (express_pending_) {
            bool dispatched = false;
            bool horizon = false;
            express_step(max_tick, dispatched, horizon);
            if (horizon) {
                break; // staged hop past the window (and it is the
                       // earliest work, so nothing else fits either)
            }
            n += dispatched ? 1 : 0;
            continue;
        }
        if (!refresh_top() || near_at(0).when() > max_tick) {
            break;
        }
        if (batch_enabled_ && tick_has_run()) {
            n += dispatch_tick(nullptr);
        } else {
            exec_top();
            ++n;
        }
    }
    // Even if nothing ran, time observably advances to the horizon so
    // callers can interleave run() windows deterministically.
    if (now_ < max_tick && max_tick != kMaxTick) {
        now_ = max_tick;
    }
    return n;
}

EventQueue::DrainOutcome EventQueue::drain(Tick max_tick, const bool& stop,
                                           std::uint64_t& executed)
{
    for (;;) {
        if (stop) {
            return DrainOutcome::stopped;
        }
        if (express_pending_) {
            bool dispatched = false;
            bool horizon = false;
            express_step(max_tick, dispatched, horizon);
            if (horizon) {
                return DrainOutcome::horizon;
            }
            executed += dispatched ? 1 : 0;
            continue;
        }
        if (!refresh_top()) {
            return DrainOutcome::drained;
        }
        if (near_at(0).when() > max_tick) {
            return DrainOutcome::horizon;
        }
        // Singleton ticks (no same-tick peer waiting behind the head) take
        // the lean one-event path; batch mechanics only engage when a
        // same-tick run actually exists.
        if (batch_enabled_ && tick_has_run()) {
            executed += dispatch_tick(&stop);
        } else {
            exec_top();
            ++executed;
        }
    }
}

} // namespace accesys
