#include "sim/event.hh"

namespace accesys {

bool EventQueue::step()
{
    prune();
    if (heap_.empty()) {
        return false;
    }
    Entry top = heap_.top();
    heap_.pop();
    ensure(top.when >= now_, "event heap corrupted");
    now_ = top.when;
    Event& ev = *top.ev;
    ev.scheduled_ = false;
    ++stat_processed_;
    ensure(static_cast<bool>(ev.cb_), "event without callback: ", ev.name_);
    ev.cb_();
    return true;
}

std::uint64_t EventQueue::run(Tick max_tick)
{
    std::uint64_t n = 0;
    for (;;) {
        prune();
        if (heap_.empty() || heap_.top().when > max_tick) {
            break;
        }
        step();
        ++n;
    }
    // Even if nothing ran, time observably advances to the horizon so
    // callers can interleave run() windows deterministically.
    if (now_ < max_tick && max_tick != kMaxTick) {
        now_ = max_tick;
    }
    return n;
}

} // namespace accesys
