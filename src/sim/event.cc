#include "sim/event.hh"

namespace accesys {

std::uint64_t EventQueue::run(Tick max_tick)
{
    std::uint64_t n = 0;
    while (refresh_top() && top_.when <= max_tick) {
        exec_top();
        ++n;
    }
    // Even if nothing ran, time observably advances to the horizon so
    // callers can interleave run() windows deterministically.
    if (now_ < max_tick && max_tick != kMaxTick) {
        now_ = max_tick;
    }
    return n;
}

} // namespace accesys
