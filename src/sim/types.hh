// Core scalar types and time helpers shared by every accesys library.
//
// Conventions (see DESIGN.md):
//   * 1 tick == 1 picosecond, carried in an unsigned 64-bit integer.
//   * Addresses are 64-bit byte addresses.
#pragma once

#include <cstdint>
#include <limits>

namespace accesys {

/// Simulated time in picoseconds.
using Tick = std::uint64_t;

/// Byte address in a (virtual or physical) address space.
using Addr = std::uint64_t;

/// Count of clock cycles in some clock domain.
using Cycles = std::uint64_t;

inline constexpr Tick kMaxTick = std::numeric_limits<Tick>::max();

inline constexpr Tick kTicksPerNs = 1000;
inline constexpr Tick kTicksPerUs = 1000 * kTicksPerNs;
inline constexpr Tick kTicksPerMs = 1000 * kTicksPerUs;
inline constexpr Tick kTicksPerSec = 1000 * kTicksPerMs;

/// Convert a duration in nanoseconds to ticks (rounding to nearest tick).
constexpr Tick ticks_from_ns(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(kTicksPerNs) + 0.5);
}

constexpr Tick ticks_from_us(double us)
{
    return ticks_from_ns(us * 1000.0);
}

constexpr double ticks_to_ns(Tick t)
{
    // Multiply by the reciprocal: this runs per translation / per read on
    // stat-sampling paths, and a divsd is ~3x the latency of a mulsd.
    // (1/1000 is not exactly representable, so ns-derived stat values can
    // differ from the divide form in the last ULP — acceptable: every
    // run of this build agrees with itself, which is what the
    // fusion-on/off and pool-determinism bit-identity contracts compare.)
    return static_cast<double>(t) * (1.0 / static_cast<double>(kTicksPerNs));
}

constexpr double ticks_to_us(Tick t)
{
    return ticks_to_ns(t) / 1000.0;
}

constexpr double ticks_to_ms(Tick t)
{
    return ticks_to_us(t) / 1000.0;
}

constexpr double ticks_to_sec(Tick t)
{
    return ticks_to_ms(t) / 1000.0;
}

/// Clock period, in ticks, of a clock running at `mhz` megahertz.
constexpr Tick period_from_mhz(double mhz)
{
    return static_cast<Tick>(1e6 / mhz + 0.5);
}

/// Clock period, in ticks, of a clock running at `ghz` gigahertz.
constexpr Tick period_from_ghz(double ghz)
{
    return period_from_mhz(ghz * 1000.0);
}

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

/// True iff `v` is a power of two (0 is not).
constexpr bool is_pow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/// Base-2 logarithm of a power of two.
constexpr unsigned log2i(std::uint64_t v)
{
    unsigned n = 0;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

/// Round `v` down to a multiple of `align` (power of two).
constexpr std::uint64_t align_down(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/// Round `v` up to a multiple of `align` (power of two).
constexpr std::uint64_t align_up(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/// Integer division rounding up.
constexpr std::uint64_t div_ceil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace accesys
