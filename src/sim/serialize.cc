#include "sim/serialize.hh"

#include <array>
#include <cstdio>

#include "sim/random.hh"

namespace accesys {

void Rng::serialize(Ckpt& ar)
{
    ar.io(state_[0], state_[1], state_[2], state_[3]);
}

namespace {

std::array<std::uint32_t, 256> make_crc_table()
{
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
            c = (c & 1) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
        }
        t[i] = c;
    }
    return t;
}

} // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed)
{
    static const std::array<std::uint32_t, 256> table = make_crc_table();
    std::uint32_t c = seed ^ 0xFFFFFFFFU;
    const auto* p = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < n; ++i) {
        c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
    }
    return c ^ 0xFFFFFFFFU;
}

void Ckpt::begin_section(const std::string& name)
{
    ensure(!in_section_, "Ckpt section '", name, "' opened inside '",
           cur_name_, "'");
    in_section_ = true;
    cur_name_ = name;
    if (saving()) {
        cur_payload_.clear();
        return;
    }
    const Section* s = find_section(name);
    ensure(s != nullptr, "checkpoint has no section '", name,
           "' (component set mismatch)");
    read_pos_ = s->offset;
    read_end_ = s->offset + s->size;
}

void Ckpt::end_section()
{
    ensure(in_section_, "Ckpt::end_section without begin_section");
    in_section_ = false;
    if (saving()) {
        Section s;
        s.name = cur_name_;
        s.size = cur_payload_.size();
        s.crc = crc32(cur_payload_.data(), cur_payload_.size());
        sections_.push_back(std::move(s));
        payloads_.push_back(std::move(cur_payload_));
        cur_payload_.clear();
    } else {
        ensure(read_pos_ == read_end_, "checkpoint section '", cur_name_,
               "' has ", read_end_ - read_pos_,
               " unread bytes (field list mismatch)");
    }
    cur_name_.clear();
}

const Ckpt::Section* Ckpt::find_section(const std::string& name) const
{
    for (const Section& s : sections_) {
        if (s.name == name) {
            return &s;
        }
    }
    return nullptr;
}

void Ckpt::write_file(const std::string& path, std::uint64_t config_hash)
{
    ensure(saving(), "write_file on a loading Ckpt");
    ensure(!in_section_, "write_file with section '", cur_name_, "' open");

    std::vector<std::uint8_t> out;
    auto put = [&out](const void* p, std::size_t n) {
        const auto* b = static_cast<const std::uint8_t*>(p);
        out.insert(out.end(), b, b + n);
    };
    put(kMagic, sizeof(kMagic));
    const std::uint32_t ver = kFormatVersion;
    put(&ver, sizeof(ver));
    put(&config_hash, sizeof(config_hash));
    const auto count = static_cast<std::uint32_t>(sections_.size());
    put(&count, sizeof(count));
    for (std::size_t i = 0; i < sections_.size(); ++i) {
        const Section& s = sections_[i];
        const auto name_len = static_cast<std::uint16_t>(s.name.size());
        put(&name_len, sizeof(name_len));
        put(s.name.data(), s.name.size());
        put(&s.size, sizeof(s.size));
        put(&s.crc, sizeof(s.crc));
        put(payloads_[i].data(), payloads_[i].size());
    }

    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    ensure(f != nullptr, "cannot open checkpoint file ", tmp);
    const std::size_t wrote = std::fwrite(out.data(), 1, out.size(), f);
    const bool ok = wrote == out.size() && std::fclose(f) == 0;
    ensure(ok, "short write to checkpoint file ", tmp);
    ensure(std::rename(tmp.c_str(), path.c_str()) == 0,
           "cannot rename checkpoint file into place: ", path);
}

Ckpt Ckpt::parse(const std::string& path)
{
    Ckpt ar(Mode::load);
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ensure(f != nullptr, "cannot open checkpoint file ", path);
    std::fseek(f, 0, SEEK_END);
    const long sz = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    ensure(sz >= 0, "cannot stat checkpoint file ", path);
    ar.blob_.resize(static_cast<std::size_t>(sz));
    const std::size_t got = std::fread(ar.blob_.data(), 1, ar.blob_.size(), f);
    std::fclose(f);
    ensure(got == ar.blob_.size(), "short read from checkpoint file ", path);

    std::uint64_t pos = 0;
    auto get = [&](void* p, std::size_t n) {
        ensure(pos + n <= ar.blob_.size(), "truncated checkpoint file ",
               path);
        std::memcpy(p, ar.blob_.data() + pos, n);
        pos += n;
    };
    char magic[sizeof(kMagic)];
    get(magic, sizeof(magic));
    ensure(std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
           "not a checkpoint file: ", path);
    get(&ar.format_version_, sizeof(ar.format_version_));
    ensure(ar.format_version_ == kFormatVersion, "checkpoint format v",
           ar.format_version_, " unsupported (this build reads v",
           kFormatVersion, "): ", path);
    get(&ar.config_hash_, sizeof(ar.config_hash_));
    std::uint32_t count = 0;
    get(&count, sizeof(count));
    for (std::uint32_t i = 0; i < count; ++i) {
        Section s;
        std::uint16_t name_len = 0;
        get(&name_len, sizeof(name_len));
        s.name.resize(name_len);
        get(s.name.data(), name_len);
        get(&s.size, sizeof(s.size));
        get(&s.crc, sizeof(s.crc));
        ensure(pos + s.size <= ar.blob_.size(),
               "truncated checkpoint section '", s.name, "': ", path);
        s.offset = pos;
        pos += s.size;
        ensure(crc32(ar.blob_.data() + s.offset, s.size) == s.crc,
               "checkpoint section '", s.name, "' failed its CRC: ", path);
        ar.sections_.push_back(std::move(s));
    }
    ensure(pos == ar.blob_.size(), "trailing garbage in checkpoint file ",
           path);
    ar.read_base_ = ar.blob_.data();
    return ar;
}

Ckpt Ckpt::load_file_unchecked(const std::string& path)
{
    return parse(path);
}

Ckpt Ckpt::load_file(const std::string& path,
                     std::uint64_t expect_config_hash)
{
    Ckpt ar = parse(path);
    ensure(ar.config_hash_ == expect_config_hash,
           "checkpoint was taken under a different SystemConfig (hash ",
           ar.config_hash_, " != ", expect_config_hash, "): ", path);
    return ar;
}

} // namespace accesys
