// Top-level simulation container: event queue + stats registry + run control.
//
// Parallel mode (the quantum-synchronized domain core):
//
// A Simulator normally owns one EventQueue and dispatches serially. When
// `set_threads(N>=2)` is called *and* the topology carves simulation
// domains (TopologyBuilder does this at PCIe downstream-link boundaries),
// each domain gets its own EventQueue and run() switches to a conservative
// parallel loop: every domain free-runs an absolute-grid window
// [T, T+Q) on its own thread (the root domain on the caller's thread),
// then all domains meet at a barrier. Q — the quantum — is the minimum
// cross-domain latency (PCIe link propagation delay), so any event a
// domain schedules into another domain lands at tick >= T+Q: strictly
// inside a *future* window, published at the barrier. Cross-domain
// traffic is staged in per-edge buffers during the window and injected by
// registered barrier hooks in deterministic registration order with exact
// (tick, priority, sequence) keys, so dispatch order — and every stat —
// is bit-identical to the serial run for any thread count. The barrier
// also drains per-domain functional-write journals (device->host DMA data
// staged off-thread; see mem/write_journal.hh) and skips idle windows by
// warping the grid to the earliest pending event.
//
// ACCESYS_THREADS=1 (the default) never carves domains: the exact serial
// code path runs, untouched.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/event.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace accesys {

class FaultInjector;
class SimObject;

class Ckpt;

/// Why a Simulator::run() call returned.
enum class ExitCause {
    queue_drained,   ///< no live events remain
    exit_requested,  ///< a component called request_exit()
    horizon_reached, ///< max_tick passed without drain/exit
    checkpointed,    ///< a requested checkpoint was written (see exit_reason
                     ///< for the path); resume via Simulator::restore()
};

struct RunResult {
    ExitCause cause = ExitCause::queue_drained;
    std::string exit_reason;      ///< set for ExitCause::exit_requested
    Tick end_tick = 0;            ///< simulated time when run() returned
    std::uint64_t events = 0;     ///< events executed by this run() call
};

/// Owns the event queue and the stat registry; SimObjects attach to it.
class Simulator {
  public:
    /// One parallel simulation domain (beyond the implicit root domain).
    /// Created by begin_domain(); the owning thread is assigned by run().
    struct Domain {
        std::string label;
        std::unique_ptr<EventQueue> queue;
        /// Installed on the worker thread before each window (and by
        /// begin_domain() during construction): thread-context setup such
        /// as the domain's packet/TLP pools. May be empty.
        std::function<void()> install;
        /// Apply staged functional writes with tick <= arg to the shared
        /// backing store. Called only while the domain is quiesced (at
        /// barriers with the window end, at read fences with the read
        /// tick), in domain order. May be empty.
        std::function<void(Tick)> drain_functional;
        std::uint64_t events = 0; ///< events executed in the current run()
        /// Window-completion publication: the generation of the last
        /// window this domain finished. A generation — not the window-end
        /// tick — because a barrier hook can schedule work back inside the
        /// just-finished window, forcing the same window end to be
        /// republished; a tick-based barrier would treat the previous
        /// completion as already satisfying the repeat and let the root's
        /// serial section race the still-running worker. Release-published
        /// by the worker; the root thread acquires it at barriers and read
        /// fences, which is the happens-before edge covering everything
        /// the window wrote.
        alignas(64) std::atomic<std::uint64_t> done_gen{0};
    };

    Simulator() = default;
    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    /// The root domain's queue (the only queue in serial mode).
    [[nodiscard]] EventQueue& queue() noexcept { return queue_; }
    [[nodiscard]] Tick now() const noexcept { return queue_.now(); }
    [[nodiscard]] stats::Registry& stats() noexcept { return stats_; }

    /// Ask the run loop to stop after the current event.
    void request_exit(std::string reason)
    {
        exit_requested_ = true;
        stop_now_ = true;
        exit_reason_ = std::move(reason);
    }

    [[nodiscard]] bool exit_requested() const noexcept
    {
        return exit_requested_;
    }

    /// Install the fault injector (owned by core::System, set before any
    /// fault-aware component constructs). Null — the default — means no
    /// fault model: components must allocate no fault state and register
    /// no fault stats, keeping clean runs bit-identical.
    void set_fault_injector(FaultInjector* fi) noexcept
    {
        fault_injector_ = fi;
    }
    /// The active fault injector, or null when faults are not modelled.
    /// (A disabled injector is also reported as null so call sites need
    /// only one check.)
    [[nodiscard]] FaultInjector* fault_injector() const noexcept;

    /// Invoke SimObject::startup() on every attached object (once).
    void startup();

    /// Run until drain, requested exit, or `max_tick`.
    RunResult run(Tick max_tick = kMaxTick);

    // --- domain carving (construction time only) ---------------------------

    /// Worker-thread budget for run(). Must be set before domains are
    /// carved; 1 (the default) keeps the exact serial path.
    void set_threads(unsigned n) { threads_ = n == 0 ? 1 : n; }
    [[nodiscard]] unsigned threads() const noexcept { return threads_; }

    /// Open a new simulation domain: SimObjects constructed until the
    /// matching end_domain() bind to the domain's own EventQueue, and the
    /// domain's install hook (if already set) runs so construction sees
    /// the same thread context as the worker will. Returns the domain
    /// index. Must not nest.
    std::size_t begin_domain(std::string label);
    void end_domain();

    /// The queue new SimObjects bind to: the active domain's inside a
    /// begin/end_domain scope, else the root queue.
    [[nodiscard]] EventQueue& current_queue() noexcept
    {
        return active_domain_ == nullptr ? queue_ : *active_domain_->queue;
    }

    [[nodiscard]] std::size_t domain_count() const noexcept
    {
        return domains_.size();
    }
    [[nodiscard]] Domain& domain(std::size_t i) { return *domains_.at(i); }

    /// True when run() will use the parallel window loop.
    [[nodiscard]] bool parallel() const noexcept
    {
        return threads_ > 1 && !domains_.empty();
    }

    /// Barrier quantum in ticks (the minimum cross-domain latency).
    /// TopologyBuilder sets this from the boundary links it carves.
    void set_quantum(Tick q) { quantum_ = q; }
    [[nodiscard]] Tick quantum() const noexcept { return quantum_; }

    /// Register a hook run in the serial section of every window barrier,
    /// in registration order (the deterministic cross-domain injection
    /// order). Hooks flush boundary-edge handoff buffers: they may touch
    /// any domain's queue/pools because every domain is quiesced.
    void register_barrier_hook(std::function<void()> fn)
    {
        barrier_hooks_.push_back(std::move(fn));
    }

    /// Read fence for functional host-memory reads issued mid-window by
    /// root-domain components (e.g. the host CPU's completion-flag poll):
    /// waits until every domain finished the current window, then applies
    /// all staged functional writes with tick <= `t` in domain order. A
    /// no-op unless a parallel run is in progress. Never called from
    /// non-root domains (they would deadlock the window).
    void sync_functional_reads(Tick t);

    /// Cross-domain items injected at barriers (bumped by flush hooks).
    void note_handoffs(std::uint64_t n) noexcept { stat_handoffs_ += n; }
    [[nodiscard]] std::uint64_t handoffs() const noexcept
    {
        return stat_handoffs_;
    }
    /// Window barriers completed across all run() calls.
    [[nodiscard]] std::uint64_t barrier_waits() const noexcept
    {
        return stat_barriers_;
    }
    /// Mid-window read fences served (each waits for all domains).
    [[nodiscard]] std::uint64_t fence_waits() const noexcept
    {
        return stat_fences_;
    }

    // --- checkpoint/restore (see sim/serialize.hh) --------------------------

    /// Hash of the originating SystemConfig, stamped into every checkpoint
    /// and verified on restore. core::System sets it at construction.
    void set_config_hash(std::uint64_t h) noexcept { config_hash_ = h; }
    [[nodiscard]] std::uint64_t config_hash() const noexcept
    {
        return config_hash_;
    }

    /// Thread-context setup for the root domain (pool installation),
    /// mirroring Domain::install; used while restoring root components.
    void set_root_install(std::function<void()> fn)
    {
        root_install_ = std::move(fn);
    }

    /// Register a named serialization hook for stateful non-SimObject
    /// state (backing store, packet/TLP pools, runner bookkeeping). Runs
    /// in registration order between the component and stats sections.
    void add_ckpt_hook(std::string name, std::function<void(Ckpt&)> fn)
    {
        ckpt_hooks_.push_back({std::move(name), std::move(fn)});
    }

    /// Write a checkpoint of the current state to `path`. Legal only at a
    /// quiescent point: between events when serial, at a window barrier
    /// when parallel — run() enforces this via the request_* entry points
    /// below, which is how callers should normally checkpoint.
    void checkpoint(const std::string& path);

    /// Ask run() to write a checkpoint to `path` at the first legal point
    /// covering tick `at` (exactly `at` when serial, the first barrier
    /// whose window covers it when parallel), then return
    /// ExitCause::checkpointed. Deterministic: the snapshot is identical
    /// for every ACCESYS_THREADS by the barrier bit-identity contract.
    void request_checkpoint_at(std::string path, Tick at);

    /// Pre-register the checkpoint path used when an asynchronous
    /// interrupt arrives (post_interrupt allocates nothing).
    void arm_interrupt_checkpoint(std::string path)
    {
        interrupt_ckpt_path_ = std::move(path);
    }

    /// Async-signal/watchdog-thread entry point: request a checkpoint (to
    /// the armed path) at the next legal point, then return
    /// ExitCause::checkpointed. Only flag writes — safe from a signal
    /// handler or another thread while run() executes.
    void post_interrupt() noexcept
    {
        interrupt_posted_ = true;
        stop_now_ = true;
    }
    [[nodiscard]] bool interrupt_posted() const noexcept
    {
        return interrupt_posted_;
    }

    /// Rebuild dynamic state from a checkpoint written under the same
    /// SystemConfig (fresh process, construction and wiring complete).
    /// The next run() resumes such that final results are bit-identical
    /// to the uninterrupted run. Throws SimError on any mismatch.
    void restore(const std::string& path);
    [[nodiscard]] bool restored() const noexcept { return restored_; }

    // --- liveness watchdog --------------------------------------------------

    /// Parallel no-progress horizon: consecutive window barriers with zero
    /// dispatched events before run() raises a diagnostic SimError
    /// (0 disables). Serial runs surface the same condition as a drain
    /// with jobs outstanding (core::Runner turns that into the SimError).
    void set_max_idle_quanta(unsigned n) noexcept { max_idle_quanta_ = n; }
    [[nodiscard]] unsigned max_idle_quanta() const noexcept
    {
        return max_idle_quanta_;
    }

    /// One line per component that currently holds queued/blocked work —
    /// the diagnostic payload for liveness-watchdog SimErrors.
    [[nodiscard]] std::string occupancy_report() const;

  private:
    friend class SimObject;
    void attach(SimObject& obj) { objects_.push_back(&obj); }
    void detach(SimObject& obj) noexcept;

    RunResult run_parallel(Tick max_tick);
    /// Spin until every domain published completion of window generation
    /// `gen` (yields: correctness must not depend on core count).
    void await_domains(std::uint64_t gen) const;

    /// Per-queue clock/live-count payload of the "sim" section.
    void serialize_sim_clocks(Ckpt& ar);
    /// Run the thread-context install hook owning queue `q` (root install
    /// or the domain's install) so pool re-materialization during restore
    /// draws from the correct per-domain pool.
    void install_context_for(EventQueue* q);

    EventQueue queue_;
    stats::Registry stats_;
    std::vector<SimObject*> objects_;
    bool started_ = false;
    bool exit_requested_ = false;
    std::string exit_reason_;

    FaultInjector* fault_injector_ = nullptr;
    unsigned threads_ = 1;
    Tick quantum_ = 0;
    std::vector<std::unique_ptr<Domain>> domains_;
    Domain* active_domain_ = nullptr; ///< inside begin/end_domain scope
    std::vector<std::function<void()>> barrier_hooks_;
    /// Set only while run_parallel() is between startup and join; gates
    /// sync_functional_reads. The end tick of the in-flight window lives
    /// in window_end_ (written by the root thread before releasing the
    /// window, read by workers after acquiring the generation).
    bool parallel_running_ = false;
    Tick window_end_ = 0;
    /// Window-release counter: bumped (release) by the root thread after
    /// writing window_end_; workers spin on it (acquire). Monotonic across
    /// repeat windows, so it doubles as the barrier identity await_domains
    /// waits on.
    std::atomic<std::uint64_t> window_gen_{0};
    std::uint64_t stat_barriers_ = 0;
    std::uint64_t stat_fences_ = 0;
    std::uint64_t stat_handoffs_ = 0;

    // --- checkpoint/restore state -------------------------------------------
    /// Run-loop stop flag polled between events: request_exit() and
    /// post_interrupt() both raise it (a plain bool on purpose — it must
    /// be writable from a signal handler, and a one-byte store/load is
    /// the same cost the exit flag always paid).
    bool stop_now_ = false;
    bool interrupt_posted_ = false;
    bool restored_ = false;
    std::uint64_t config_hash_ = 0;
    std::string ckpt_path_;            ///< request_checkpoint_at target
    Tick ckpt_at_ = kMaxTick;          ///< request_checkpoint_at tick
    std::string interrupt_ckpt_path_;  ///< armed async-interrupt target
    std::function<void()> root_install_;
    struct CkptHook {
        std::string name;
        std::function<void(Ckpt&)> fn;
    };
    std::vector<CkptHook> ckpt_hooks_;
    /// Whether the snapshot being restored was taken under the same
    /// domain carve (thread count). Snapshots are thread-count-neutral:
    /// on a mismatch the per-queue clock records collapse to canonical
    /// values and live-entry verification switches to the global total.
    bool ckpt_layout_match_ = true;
    std::uint64_t ckpt_live_total_ = 0;
    unsigned max_idle_quanta_ = 64;
};

/// Base class for every named simulated component.
///
/// Binds to the Simulator's *current* queue at construction: objects built
/// inside a begin_domain()/end_domain() scope schedule into — and read
/// time from — their domain's queue, transparently.
class SimObject {
  public:
    SimObject(Simulator& sim, std::string name);
    virtual ~SimObject();

    SimObject(const SimObject&) = delete;
    SimObject& operator=(const SimObject&) = delete;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] Simulator& sim() noexcept { return *sim_; }
    /// This object's event queue (its domain's queue; the root queue in
    /// serial mode).
    [[nodiscard]] EventQueue& eq() const noexcept { return *eq_; }
    [[nodiscard]] Tick now() const noexcept { return eq_->now(); }

    /// Hook called once before the first run(); wiring must be complete.
    virtual void startup() {}

    /// Checkpoint/restore this object's dynamic state (one symmetric
    /// field list; see sim/serialize.hh). The default is for stateless
    /// objects only — every component holding queues, in-flight packets,
    /// scheduled events or counters outside the stats registry must
    /// override, and must route each owned Event through
    /// Event::serialize(ar, eq()).
    virtual void serialize(Ckpt& ar) { (void)ar; }

    /// Append "name: <occupancy>" lines for any queued/blocked work this
    /// object currently holds (liveness-watchdog diagnostics). Objects
    /// holding nothing append nothing.
    virtual void report_occupancy(std::string& out) const { (void)out; }

  protected:
    void schedule(Event& ev, Tick when) { eq_->schedule(ev, when); }
    void schedule_in(Event& ev, Tick delta)
    {
        eq_->schedule_in(ev, delta);
    }
    void reschedule(Event& ev, Tick when) { eq_->reschedule(ev, when); }
    void deschedule(Event& ev) { eq_->deschedule(ev); }

    [[nodiscard]] stats::Group& stat_group() noexcept { return stats_; }

  private:
    Simulator* sim_;
    EventQueue* eq_;
    std::string name_;
    stats::Group stats_;
};

/// Mixin describing a clock domain (period in ticks).
class Clocked {
  public:
    explicit Clocked(Tick period) : period_(period)
    {
        ensure(period > 0, "zero clock period");
    }

    [[nodiscard]] Tick clock_period() const noexcept { return period_; }

    [[nodiscard]] Tick cycles_to_ticks(Cycles c) const noexcept
    {
        return c * period_;
    }

    [[nodiscard]] Cycles ticks_to_cycles(Tick t) const noexcept
    {
        return t / period_;
    }

    /// First clock edge at or after `now`. (Periods are arbitrary tick
    /// counts — e.g. 1 GHz = 1000 ticks — so this must not assume a
    /// power-of-two period.)
    [[nodiscard]] Tick next_edge(Tick now) const noexcept
    {
        return (now + period_ - 1) / period_ * period_;
    }

    /// Frequency in GHz implied by the period.
    [[nodiscard]] double freq_ghz() const noexcept
    {
        return 1000.0 / static_cast<double>(period_);
    }

  private:
    Tick period_;
};

} // namespace accesys
