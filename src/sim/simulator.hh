// Top-level simulation container: event queue + stats registry + run control.
#pragma once

#include <string>
#include <vector>

#include "sim/event.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace accesys {

class SimObject;

/// Why a Simulator::run() call returned.
enum class ExitCause {
    queue_drained,   ///< no live events remain
    exit_requested,  ///< a component called request_exit()
    horizon_reached, ///< max_tick passed without drain/exit
};

struct RunResult {
    ExitCause cause = ExitCause::queue_drained;
    std::string exit_reason;      ///< set for ExitCause::exit_requested
    Tick end_tick = 0;            ///< simulated time when run() returned
    std::uint64_t events = 0;     ///< events executed by this run() call
};

/// Owns the event queue and the stat registry; SimObjects attach to it.
class Simulator {
  public:
    Simulator() = default;
    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    [[nodiscard]] EventQueue& queue() noexcept { return queue_; }
    [[nodiscard]] Tick now() const noexcept { return queue_.now(); }
    [[nodiscard]] stats::Registry& stats() noexcept { return stats_; }

    /// Ask the run loop to stop after the current event.
    void request_exit(std::string reason)
    {
        exit_requested_ = true;
        exit_reason_ = std::move(reason);
    }

    [[nodiscard]] bool exit_requested() const noexcept
    {
        return exit_requested_;
    }

    /// Invoke SimObject::startup() on every attached object (once).
    void startup();

    /// Run until drain, requested exit, or `max_tick`.
    RunResult run(Tick max_tick = kMaxTick);

  private:
    friend class SimObject;
    void attach(SimObject& obj) { objects_.push_back(&obj); }
    void detach(SimObject& obj) noexcept;

    EventQueue queue_;
    stats::Registry stats_;
    std::vector<SimObject*> objects_;
    bool started_ = false;
    bool exit_requested_ = false;
    std::string exit_reason_;
};

/// Base class for every named simulated component.
class SimObject {
  public:
    SimObject(Simulator& sim, std::string name);
    virtual ~SimObject();

    SimObject(const SimObject&) = delete;
    SimObject& operator=(const SimObject&) = delete;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] Simulator& sim() noexcept { return *sim_; }
    [[nodiscard]] Tick now() const noexcept { return sim_->now(); }

    /// Hook called once before the first run(); wiring must be complete.
    virtual void startup() {}

  protected:
    void schedule(Event& ev, Tick when) { sim_->queue().schedule(ev, when); }
    void schedule_in(Event& ev, Tick delta)
    {
        sim_->queue().schedule_in(ev, delta);
    }
    void reschedule(Event& ev, Tick when)
    {
        sim_->queue().reschedule(ev, when);
    }
    void deschedule(Event& ev) { sim_->queue().deschedule(ev); }

    [[nodiscard]] stats::Group& stat_group() noexcept { return stats_; }

  private:
    Simulator* sim_;
    std::string name_;
    stats::Group stats_;
};

/// Mixin describing a clock domain (period in ticks).
class Clocked {
  public:
    explicit Clocked(Tick period) : period_(period)
    {
        ensure(period > 0, "zero clock period");
    }

    [[nodiscard]] Tick clock_period() const noexcept { return period_; }

    [[nodiscard]] Tick cycles_to_ticks(Cycles c) const noexcept
    {
        return c * period_;
    }

    [[nodiscard]] Cycles ticks_to_cycles(Tick t) const noexcept
    {
        return t / period_;
    }

    /// First clock edge at or after `now`. (Periods are arbitrary tick
    /// counts — e.g. 1 GHz = 1000 ticks — so this must not assume a
    /// power-of-two period.)
    [[nodiscard]] Tick next_edge(Tick now) const noexcept
    {
        return (now + period_ - 1) / period_ * period_;
    }

    /// Frequency in GHz implied by the period.
    [[nodiscard]] double freq_ghz() const noexcept
    {
        return 1000.0 / static_cast<double>(period_);
    }

  private:
    Tick period_;
};

} // namespace accesys
