// Construction-time snapshot of every ACCESYS_* environment knob.
//
// Hot paths must never call getenv(): libc walks `environ` on every call,
// and reading the environment from multiple simulation threads is UB once
// anything mutates it. All runtime escape hatches are therefore read
// exactly once, the first time any component asks, and cached as plain
// flags. Components capture the values they need at construction time, so
// a knob flipped mid-process has no effect — which is also the only
// thread-safe semantics available.
//
// Knobs:
//   ACCESYS_NO_BATCH=1       disable same-tick batched dispatch
//   ACCESYS_NO_HOP_FUSION=1  disable the event-queue express lane
//   ACCESYS_EAGER_CREDITS=1  per-return PCIe credit events (lazy default)
//   ACCESYS_THREADS=N        simulation worker threads (default 1 = serial)
//   ACCESYS_FAULTS=0         ignore any configured FaultPlan (escape hatch)
//   ACCESYS_CKPT=0           ignore checkpoint requests: --ckpt-at-ns and
//                            watchdog/signal snapshots become no-ops
//                            (escape hatch; restore still works)
#pragma once

namespace accesys {

struct EnvFlags {
    bool no_batch = false;
    bool no_hop_fusion = false;
    bool eager_credits = false;
    bool faults = true;
    bool ckpt = true;
    unsigned threads = 1;

    /// The process-wide snapshot (taken on first use, immutable after —
    /// except via set_for_test).
    [[nodiscard]] static const EnvFlags& get();

    /// TEST ONLY: replace the process snapshot. Components capture flag
    /// values at construction, so call this only while no Simulator (or
    /// other flag consumer) exists, and restore the previous snapshot
    /// afterwards. Not thread-safe.
    static void set_for_test(const EnvFlags& flags);
};

/// Shorthand for EnvFlags::get().
[[nodiscard]] inline const EnvFlags& env_flags()
{
    return EnvFlags::get();
}

} // namespace accesys
