// Statistics framework: named, hierarchical, dumpable counters.
//
// Components declare stats as data members bound to a `stats::Group`; the
// group registers them under "<group-prefix>.<stat-name>" in a `Registry`
// and removes them again on destruction, so component lifetime is free to
// be shorter than registry lifetime. Benches read stats by name; humans get
// text or JSON dumps.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/error.hh"

namespace accesys {
class Ckpt;
}

namespace accesys::stats {

class Group;

/// Base class for all statistics.
class Stat {
  public:
    Stat(Group& group, std::string name, std::string desc);
    virtual ~Stat();

    Stat(const Stat&) = delete;
    Stat& operator=(const Stat&) = delete;

    [[nodiscard]] const std::string& full_name() const { return full_name_; }
    [[nodiscard]] const std::string& desc() const { return desc_; }

    /// Primary scalar reading (used by Registry::value()).
    [[nodiscard]] virtual double value() const = 0;
    virtual void write_text(std::ostream& os) const = 0;
    virtual void write_json(std::ostream& os) const = 0;
    virtual void reset() = 0;
    /// Checkpoint/restore the accumulated samples. Computed stats
    /// (ValueFn) hold no state and keep this default.
    virtual void serialize(Ckpt& ar) { (void)ar; }

  private:
    std::string full_name_;
    std::string desc_;
    Group* group_;
};

/// Monotonic counter / accumulated quantity.
class Scalar : public Stat {
  public:
    using Stat::Stat;

    Scalar& operator++()
    {
        v_ += 1.0;
        return *this;
    }
    Scalar& operator+=(double d)
    {
        v_ += d;
        return *this;
    }
    void set(double d) { v_ = d; }

    [[nodiscard]] double value() const override { return v_; }
    void write_text(std::ostream& os) const override;
    void write_json(std::ostream& os) const override;
    void reset() override { v_ = 0.0; }
    void serialize(Ckpt& ar) override;

  private:
    double v_ = 0.0;
};

/// Mean over samples; also exposes count and total.
class Average : public Stat {
  public:
    using Stat::Stat;

    void sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    [[nodiscard]] double mean() const
    {
        return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
    }
    [[nodiscard]] std::uint64_t count() const { return count_; }
    [[nodiscard]] double total() const { return sum_; }

    [[nodiscard]] double value() const override { return mean(); }
    void write_text(std::ostream& os) const override;
    void write_json(std::ostream& os) const override;
    void reset() override
    {
        sum_ = 0.0;
        count_ = 0;
    }
    void serialize(Ckpt& ar) override;

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/// Min/max/mean/stddev summary of a sampled distribution.
class Distribution : public Stat {
  public:
    using Stat::Stat;

    void sample(double v)
    {
        if (count_ == 0) {
            min_ = max_ = v;
        } else {
            min_ = std::min(min_, v);
            max_ = std::max(max_, v);
        }
        sum_ += v;
        sum_sq_ += v * v;
        ++count_;
    }

    [[nodiscard]] std::uint64_t count() const { return count_; }
    [[nodiscard]] double mean() const
    {
        return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
    }
    [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
    [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }
    [[nodiscard]] double stddev() const
    {
        if (count_ < 2) {
            return 0.0;
        }
        const double n = static_cast<double>(count_);
        const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1.0);
        return var <= 0.0 ? 0.0 : std::sqrt(var);
    }

    [[nodiscard]] double value() const override { return mean(); }
    void write_text(std::ostream& os) const override;
    void write_json(std::ostream& os) const override;
    void reset() override
    {
        sum_ = sum_sq_ = min_ = max_ = 0.0;
        count_ = 0;
    }
    void serialize(Ckpt& ar) override;

  private:
    double sum_ = 0.0;
    double sum_sq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::uint64_t count_ = 0;
};

/// Fixed-bucket histogram over [lo, hi) with under/overflow buckets.
class Histogram : public Stat {
  public:
    Histogram(Group& group, std::string name, std::string desc, double lo,
              double hi, std::size_t buckets);

    void sample(double v, std::uint64_t n = 1);

    [[nodiscard]] std::uint64_t count() const { return count_; }
    [[nodiscard]] const std::vector<std::uint64_t>& buckets() const
    {
        return buckets_;
    }
    [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
    [[nodiscard]] std::uint64_t overflow() const { return overflow_; }

    [[nodiscard]] double value() const override
    {
        return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
    }
    void write_text(std::ostream& os) const override;
    void write_json(std::ostream& os) const override;
    void reset() override;
    void serialize(Ckpt& ar) override;

  private:
    double lo_;
    double hi_;
    double bucket_width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

/// Stat whose value is computed on demand (a gem5 "formula").
class ValueFn : public Stat {
  public:
    ValueFn(Group& group, std::string name, std::string desc,
            std::function<double()> fn)
        : Stat(group, std::move(name), std::move(desc)), fn_(std::move(fn))
    {
    }

    [[nodiscard]] double value() const override { return fn_ ? fn_() : 0.0; }
    void write_text(std::ostream& os) const override;
    void write_json(std::ostream& os) const override;
    void reset() override {}

  private:
    std::function<double()> fn_;
};

/// Flat name -> Stat* table. Non-owning: stats deregister themselves.
class Registry {
  public:
    Registry() = default;
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    void add(Stat& s);
    void remove(const Stat& s) noexcept;

    /// Stat lookup; returns nullptr if absent.
    [[nodiscard]] const Stat* find(const std::string& full_name) const;

    /// Value of a stat by name; throws SimError if absent.
    [[nodiscard]] double value(const std::string& full_name) const;

    void write_text(std::ostream& os) const;
    void write_json(std::ostream& os) const;
    void reset_all();

    /// Checkpoint/restore every registered stat, keyed and ordered by
    /// full name. The registered set must match the checkpoint exactly
    /// (same SystemConfig implies the same components and stats).
    void serialize(Ckpt& ar);

    [[nodiscard]] std::size_t size() const { return stats_.size(); }

  private:
    std::map<std::string, Stat*> stats_;
};

/// Prefix-scoped factory/owner context for a component's stats.
class Group {
  public:
    Group(Registry& registry, std::string prefix)
        : registry_(&registry), prefix_(std::move(prefix))
    {
    }

    [[nodiscard]] Registry& registry() { return *registry_; }
    [[nodiscard]] const std::string& prefix() const { return prefix_; }

  private:
    friend class Stat;
    Registry* registry_;
    std::string prefix_;
};

} // namespace accesys::stats
