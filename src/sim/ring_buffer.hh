// Reusable FIFO ring over a flat vector.
//
// A drop-in replacement for the `std::deque` push_back/front/pop_front
// pattern in the transaction hot path. Unlike std::deque — which allocates
// and frees fixed-size chunks as the window of live elements slides — the
// ring reuses its storage forever: after warm-up, steady-state push/pop
// traffic does zero heap work. Capacity is always a power of two (indexing
// is a mask, not a division), grows geometrically on demand and never
// shrinks.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "sim/error.hh"

namespace accesys {

template <typename T>
class RingBuffer {
  public:
    RingBuffer() = default;

    [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
    [[nodiscard]] std::size_t size() const noexcept { return count_; }
    [[nodiscard]] std::size_t capacity() const noexcept
    {
        return slots_.size();
    }

    [[nodiscard]] T& front()
    {
        ensure(count_ > 0, "RingBuffer::front on empty ring");
        return slots_[head_];
    }
    [[nodiscard]] const T& front() const
    {
        ensure(count_ > 0, "RingBuffer::front on empty ring");
        return slots_[head_];
    }

    /// Element `i` positions behind the head (0 = front).
    [[nodiscard]] T& operator[](std::size_t i)
    {
        ensure(i < count_, "RingBuffer index out of range");
        return slots_[(head_ + i) & mask_];
    }
    [[nodiscard]] const T& operator[](std::size_t i) const
    {
        ensure(i < count_, "RingBuffer index out of range");
        return slots_[(head_ + i) & mask_];
    }

    void push_back(T v)
    {
        if (count_ == slots_.size()) {
            grow();
        }
        slots_[(head_ + count_) & mask_] = std::move(v);
        ++count_;
    }

    void pop_front()
    {
        ensure(count_ > 0, "RingBuffer::pop_front on empty ring");
        slots_[head_] = T(); // release owned resources now, not at overwrite
        head_ = (head_ + 1) & mask_;
        --count_;
    }

    /// Move the head element out and advance.
    [[nodiscard]] T take_front()
    {
        T v = std::move(front());
        pop_front();
        return v;
    }

    /// Remove element `i` (0 = front), shifting later elements forward.
    /// O(size - i); meant for small scheduling windows, not bulk erasure.
    void erase_at(std::size_t i)
    {
        ensure(i < count_, "RingBuffer::erase_at out of range");
        for (std::size_t j = i + 1; j < count_; ++j) {
            (*this)[j - 1] = std::move((*this)[j]);
        }
        slots_[(head_ + count_ - 1) & mask_] = T();
        --count_;
    }

    /// Move element `i` (0 = front) out, close the gap by shifting the
    /// elements *in front of it* back one slot, and drop the old front.
    /// Preserves the relative order of the remaining elements exactly like
    /// erase_at, but costs O(i) instead of O(size - i) — the right shape
    /// when `i` is bounded by a small scheduling window while the queue
    /// tail can be much longer (FR-FCFS picks).
    [[nodiscard]] T take_at(std::size_t i)
    {
        ensure(i < count_, "RingBuffer::take_at out of range");
        T v = std::move((*this)[i]);
        for (std::size_t j = i; j > 0; --j) {
            (*this)[j] = std::move((*this)[j - 1]);
        }
        pop_front();
        return v;
    }

    void clear()
    {
        while (count_ > 0) {
            pop_front();
        }
    }

  private:
    void grow()
    {
        const std::size_t cap = slots_.empty() ? 8 : slots_.size() * 2;
        std::vector<T> bigger(cap);
        for (std::size_t i = 0; i < count_; ++i) {
            bigger[i] = std::move(slots_[(head_ + i) & mask_]);
        }
        slots_ = std::move(bigger);
        mask_ = cap - 1;
        head_ = 0;
    }

    std::vector<T> slots_; ///< size always a power of two
    std::size_t mask_ = 0; ///< slots_.size() - 1
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace accesys
