// Shared SIMD scan helpers (GCC/Clang portable vector extensions).
//
// Four 64-bit words are compared per step; the lane-hit mask is extracted
// with the sign-bit gather below. Lowers to SSE2/AVX2 on x86-64 and NEON
// on aarch64; code must guard usage with ACCESYS_HAVE_VEC_EXT and provide
// a scalar fallback for other compilers. Used by the cache tag/MSHR scans
// and the FR-FCFS packed-key window scan.
#pragma once

#include <cstdint>
#include <cstring>

namespace accesys::simd {

#if defined(__GNUC__) || defined(__clang__)
#define ACCESYS_HAVE_VEC_EXT 1

typedef std::uint64_t U64x4 __attribute__((vector_size(32)));

/// Lane-hit bitmask of an all-ones/all-zeros compare result (bit i set =
/// lane i matched): each lane's sign bit lands in its own output bit.
inline unsigned movemask4(U64x4 eq)
{
    return static_cast<unsigned>(((eq[0] >> 63) & 1) | ((eq[1] >> 62) & 2) |
                                 ((eq[2] >> 61) & 4) | ((eq[3] >> 60) & 8));
}

/// Lane-hit bitmask of `words[i] & mask == want`.
inline unsigned match4(const std::uint64_t* words, std::uint64_t mask,
                       std::uint64_t want)
{
    U64x4 w;
    std::memcpy(&w, words, sizeof(w));
    return movemask4((w & mask) == want);
}

/// Lane-hit bitmask of `a[i] == b[i]`.
inline unsigned match4(const std::uint64_t* a, const std::uint64_t* b)
{
    U64x4 va;
    U64x4 vb;
    std::memcpy(&va, a, sizeof(va));
    std::memcpy(&vb, b, sizeof(vb));
    return movemask4(va == vb);
}

#endif

} // namespace accesys::simd
