#include "sim/logging.hh"

#include <atomic>

namespace accesys::log {

namespace {

std::atomic<Level> g_level{Level::warn};
std::atomic<std::ostream*> g_sink{nullptr};

const char* level_name(Level lvl)
{
    switch (lvl) {
    case Level::off: return "off";
    case Level::warn: return "warn";
    case Level::info: return "info";
    case Level::debug: return "debug";
    case Level::trace: return "trace";
    }
    return "?";
}

} // namespace

Level level() noexcept
{
    return g_level.load(std::memory_order_relaxed);
}

void set_level(Level lvl) noexcept
{
    g_level.store(lvl, std::memory_order_relaxed);
}

void set_sink(std::ostream* os) noexcept
{
    g_sink.store(os, std::memory_order_relaxed);
}

namespace detail {

void emit(Level lvl, Tick now, const std::string& who, const std::string& msg)
{
    std::ostream* os = g_sink.load(std::memory_order_relaxed);
    if (os == nullptr) {
        os = &std::cerr;
    }
    (*os) << now << " [" << level_name(lvl) << "] " << who << ": " << msg
          << '\n';
}

} // namespace detail

} // namespace accesys::log
