#include "sim/env_flags.hh"

#include <cstdlib>

namespace accesys {

namespace {

EnvFlags read_env()
{
    EnvFlags f;
    f.no_batch = std::getenv("ACCESYS_NO_BATCH") != nullptr;
    f.no_hop_fusion = std::getenv("ACCESYS_NO_HOP_FUSION") != nullptr;
    f.eager_credits = std::getenv("ACCESYS_EAGER_CREDITS") != nullptr;
    if (const char* v = std::getenv("ACCESYS_FAULTS")) {
        f.faults = v[0] != '0';
    }
    if (const char* v = std::getenv("ACCESYS_CKPT")) {
        f.ckpt = v[0] != '0';
    }
    if (const char* t = std::getenv("ACCESYS_THREADS")) {
        const long n = std::strtol(t, nullptr, 10);
        f.threads = n > 1 ? static_cast<unsigned>(n) : 1;
    }
    return f;
}

EnvFlags& snapshot()
{
    static EnvFlags flags = read_env();
    return flags;
}

} // namespace

const EnvFlags& EnvFlags::get()
{
    return snapshot();
}

void EnvFlags::set_for_test(const EnvFlags& flags)
{
    snapshot() = flags;
}

} // namespace accesys
