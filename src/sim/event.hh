// Discrete-event core: `Event` handles and the `EventQueue` scheduler.
//
// Events are long-lived objects owned by components and (re)scheduled many
// times; the queue stores lightweight entries and uses lazy deletion, so
// deschedule/reschedule are O(1) and pop skips stale entries. Determinism:
// ties on (tick, priority) break by schedule order (monotonic sequence).
//
// Hot-path structure (in order of introduction):
//   * the earliest live entries are cached outside the heap in a small
//     sorted ring (`near_`, the generalization of a cached-top slot): peeks
//     validate the cache instead of re-pruning, the single-event
//     schedule→fire ping-pong (links, egress queues) never touches the
//     heap, and a schedule that lands among the next few events inserts
//     into the ring instead of paying a heap push + pop round trip;
//   * the heap itself is a hand-rolled 4-ary min-heap — shallower than a
//     binary heap and sifted with hole insertion, so a push or pop moves
//     entries instead of swapping them;
//   * `run()` / `drain()` dispatch same-tick events as a *batch*: every
//     entry for the current tick is pulled out of the heap in one sweep and
//     dispatched back-to-back from a flat array, and an event scheduled *at
//     the current tick while the batch runs* (the response-chain pattern:
//     link → switch → RC → xbar → mem and back) is appended straight to the
//     batch — one queue transaction for the whole chain instead of N
//     schedule/pop round-trips. Ordering stays bit-exact: appending is only
//     legal when the new entry sorts after everything still pending, which
//     the monotonic sequence guarantees for same-priority events; the rare
//     earlier-priority insert spills the remainder back to the heap and
//     re-sorts. Set ACCESYS_NO_BATCH=1 to force the one-event-at-a-time
//     path (escape hatch; results are identical by contract, see
//     tests/test_pool_determinism.cpp);
//   * memory-hierarchy hop events (PacketQueue sends, link delivery,
//     RC/switch process, controller issue) go through a one-slot *express
//     lane* (`schedule_express`): when nothing earlier is pending the
//     entry never touches the ring or heap — the run loop's per-object
//     quiescence check dispatches it straight from the slot, so a
//     quiescent RC -> membus -> iocache -> LLC -> MemCtrl chain
//     trampolines hop-to-hop with zero heap traffic. Entries keep the
//     exact (tick, priority, sequence) key schedule() would assign, so
//     order (and every stat) is identical by construction; the lane
//     elides nothing, it only cheapens the bookkeeping.
//     ACCESYS_NO_HOP_FUSION=1 is the escape hatch (also locked by
//     tests/test_pool_determinism.cpp). tick_quiescent() — the legality
//     probe for the synchronous same-tick hand-off in PacketQueue::push —
//     memoizes a proven-quiescent tick so a fused streaming train pays
//     the full probe once per tick instead of once per push.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/env_flags.hh"
#include "sim/error.hh"
#include "sim/types.hh"

namespace accesys {

class Ckpt;
class EventQueue;

/// Priorities: lower value runs earlier within the same tick.
enum : int {
    kPrioEarly = -100,  ///< bookkeeping that must precede normal activity
    kPrioDefault = 0,
    kPrioLate = 100,    ///< e.g. stat sampling after the tick's activity
};

/// A schedulable callback. Construct once, schedule as often as needed.
///
/// Dispatch is a raw `fn(ctx)` indirect call. std::function callbacks are
/// supported through a fixed trampoline (`invoke_` then points at a shim
/// that calls `cb_`), and `set_raw_callback` binds an object+method pair
/// directly with no std::function layer at all — used by the hottest
/// periodic events.
class Event {
  public:
    using Callback = std::function<void()>;
    using RawFn = void (*)(void*);

    Event() = default;
    Event(std::string name, Callback cb, int priority = kPrioDefault)
        : priority_(priority), name_(std::move(name))
    {
        set_callback_unchecked(std::move(cb));
    }

    Event(const Event&) = delete;
    Event& operator=(const Event&) = delete;

    /// Replace the callback; must not be scheduled.
    void set_callback(Callback cb)
    {
        ensure(!scheduled_, "Event::set_callback while scheduled: ", name_);
        set_callback_unchecked(std::move(cb));
    }

    /// Bind `fn(ctx)` directly (fastest dispatch); must not be scheduled.
    void set_raw_callback(RawFn fn, void* ctx)
    {
        ensure(!scheduled_, "Event::set_raw_callback while scheduled: ",
               name_);
        cb_ = nullptr;
        invoke_ = fn;
        ctx_ = ctx;
    }

    void set_name(std::string name) { name_ = std::move(name); }

    [[nodiscard]] bool scheduled() const noexcept { return scheduled_; }
    [[nodiscard]] Tick when() const noexcept { return when_; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] int priority() const noexcept { return priority_; }

    /// Checkpoint this event's schedule state (see sim/serialize.hh). On
    /// load the event re-enters `eq` with its exact saved (tick, priority,
    /// sequence) key, so the resumed run dispatches in the same total
    /// order — bit-for-bit — as the uninterrupted one. Every component
    /// owning a schedulable Event must route it through here from its own
    /// serialize(); the queue cross-checks the count against the saved
    /// live-entry total.
    void serialize(Ckpt& ar, EventQueue& eq);

  private:
    friend class EventQueue;

    void set_callback_unchecked(Callback cb)
    {
        cb_ = std::move(cb);
        if (cb_) {
            invoke_ = [](void* self) { static_cast<Event*>(self)->cb_(); };
            ctx_ = this;
        } else {
            invoke_ = nullptr;
            ctx_ = nullptr;
        }
    }

    // Hot fields first: schedule/refresh/dispatch touch only these, so
    // they share the object's first cache line (name_/cb_ are cold).
    RawFn invoke_ = nullptr; ///< dispatch target (shim or raw binding)
    void* ctx_ = nullptr;
    Tick when_ = 0;
    std::uint64_t generation_ = 0; ///< bumped on every schedule
    int priority_ = kPrioDefault;
    bool scheduled_ = false;
    std::string name_;
    Callback cb_;
};

/// Min-heap event scheduler; also the keeper of simulated time.
class EventQueue {
  public:
    /// Pre-dispatch hook for profiling tools (see perf_baseline --profile).
    /// Called with every event about to execute; the hot path pays one
    /// predictable branch when no observer is installed.
    class DispatchObserver {
      public:
        virtual ~DispatchObserver() = default;
        virtual void on_dispatch(const Event& ev) = 0;
    };

    EventQueue()
    {
        heap_.reserve(64);
        // Cached process-wide snapshot (sim/env_flags.hh): no getenv() on
        // any path, and every queue — root or domain — agrees by
        // construction.
        batch_enabled_ = !env_flags().no_batch;
        fusion_enabled_ = !env_flags().no_hop_fusion;
    }
    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    [[nodiscard]] Tick now() const noexcept { return now_; }

    /// Schedule `ev` at absolute tick `when` (>= now).
    void schedule(Event& ev, Tick when)
    {
        ensure(when >= now_, "schedule in the past: ", ev.name_, " at ", when,
               " now ", now_);
        schedule_impl(ev, when);
    }

    /// Schedule `ev` `delta` ticks from now.
    void schedule_in(Event& ev, Tick delta) { schedule(ev, now_ + delta); }

    /// Fast path: schedule `ev` at the current tick (it runs after the
    /// event currently executing, in schedule order among same-tick,
    /// same-priority peers). Skips the past-tick check; when a same-tick
    /// batch is being dispatched the event is appended to it directly.
    void schedule_now(Event& ev) { schedule_impl(ev, now_); }

    /// Explicit name for the same fast path (see file header: response
    /// chains fuse into the running batch instead of heap round-trips).
    void schedule_at_current_tick(Event& ev) { schedule_now(ev); }

    /// Express-lane schedule for memory-hierarchy hop events (PacketQueue
    /// sends, link delivery, controller issue): semantically identical to
    /// schedule(), but the entry is staged in a one-slot lane instead of
    /// the near-ring/heap. The run loop performs a per-object quiescence
    /// check at its top — is anything due before *this* event? — and when
    /// the staged hop is the earliest pending work it dispatches straight
    /// from the slot, so a quiescent RC → membus → iocache → LLC → MemCtrl
    /// chain trampolines hop-to-hop with zero heap traffic. The entry
    /// carries the same (tick, priority, sequence) key a schedule() call
    /// would have produced, so dispatch order — and therefore every stat —
    /// is identical by construction. ACCESYS_NO_HOP_FUSION=1 disables the
    /// lane (every call degrades to schedule(); see
    /// tests/test_pool_determinism.cpp for the bit-identity lock).
    void schedule_express(Event& ev, Tick when)
    {
        if (!fusion_enabled_ || express_pending_ || when <= now_) {
            schedule(ev, when);
            return;
        }
        const Entry e = stamp_entry(ev, when);
        // Stage only when the hop can actually be the next dispatch: if an
        // earlier entry is already waiting (stale keys still order
        // correctly, so a dead head just spills conservatively), the slot
        // round-trip is wasted work — place the entry normally instead.
        if ((near_n_ > 0 && later(e, near_[near_head_])) ||
            (near_n_ == 0 && !heap_.empty() && later(e, heap_[0]))) {
            ++stat_express_spills_;
            if (batch_active()) {
                schedule_during_batch(e);
            } else {
                schedule_entry(e);
            }
            return;
        }
        express_ = e;
        express_pending_ = true;
    }

    /// Remove `ev` from the schedule (no-op entry left in heap).
    void deschedule(Event& ev)
    {
        ensure(ev.scheduled_, "deschedule of idle event ", ev.name_);
        ev.scheduled_ = false;
    }

    /// Move an event (scheduled or not) to a new absolute time.
    void reschedule(Event& ev, Tick when)
    {
        if (ev.scheduled_) {
            deschedule(ev);
        }
        schedule(ev, when);
    }

    /// True when no live (non-squashed) events remain.
    [[nodiscard]] bool empty()
    {
        flush_express();
        return !refresh_top();
    }

    /// Tick of the next live event, or kMaxTick when empty.
    [[nodiscard]] Tick next_event_tick()
    {
        flush_express();
        return refresh_top() ? near_[near_head_].when() : kMaxTick;
    }

    /// Name of the next live event (debugging aid); empty when drained.
    [[nodiscard]] std::string next_event_name()
    {
        flush_express();
        return refresh_top() ? near_[near_head_].ev->name() : std::string{};
    }

    /// Execute the single next event; returns false when none remain.
    bool step()
    {
        flush_express();
        if (!refresh_top()) {
            return false;
        }
        exec_top();
        return true;
    }

    /// One fused probe-and-execute for driver loops: a single cache refresh
    /// decides between drain, horizon and execution.
    enum class StepOutcome { executed, horizon, drained };
    StepOutcome step_bounded(Tick max_tick)
    {
        flush_express();
        if (!refresh_top()) {
            return StepOutcome::drained;
        }
        if (near_[near_head_].when() > max_tick) {
            return StepOutcome::horizon;
        }
        exec_top();
        return StepOutcome::executed;
    }

    /// Run until the queue drains or simulated time would pass `max_tick`
    /// (events at exactly `max_tick` still run). Returns events processed.
    std::uint64_t run(Tick max_tick = kMaxTick);

    /// Batched driver loop: like run(), but checks `*stop` after every
    /// event (request_exit semantics) and reports why it returned.
    /// `executed` accumulates the events dispatched by this call.
    enum class DrainOutcome { stopped, horizon, drained };
    DrainOutcome drain(Tick max_tick, const bool& stop,
                       std::uint64_t& executed);

    /// Total events executed since construction.
    [[nodiscard]] std::uint64_t events_processed() const noexcept
    {
        return stat_processed_;
    }

    [[nodiscard]] std::uint64_t events_scheduled() const noexcept
    {
        return stat_scheduled_;
    }

    /// Hop events dispatched straight from the express slot (heap-free).
    [[nodiscard]] std::uint64_t express_hits() const noexcept
    {
        return stat_express_hits_;
    }

    /// Express requests folded back into the ring/heap (not the minimum).
    [[nodiscard]] std::uint64_t express_spills() const noexcept
    {
        return stat_express_spills_;
    }

    /// Entries that actually reached the 4-ary heap (pushes, incl. spills).
    [[nodiscard]] std::uint64_t heap_pushes() const noexcept
    {
        return stat_heap_pushes_;
    }

    /// Schedules absorbed by the sorted near ring without a heap push.
    [[nodiscard]] std::uint64_t near_ring_hits() const noexcept
    {
        return stat_near_hits_;
    }

    /// Advance time with no event execution (used by drained fast-forward).
    void warp_to(Tick when)
    {
        ensure(when >= now_, "warp into the past");
        ensure(next_event_tick() >= when, "warp past a pending event");
        now_ = when;
    }

    /// Install (or clear, with nullptr) a pre-dispatch profiling hook.
    void set_dispatch_observer(DispatchObserver* obs) noexcept
    {
        observer_ = obs;
    }

    /// Whether same-tick batch dispatch is active (ACCESYS_NO_BATCH unset).
    [[nodiscard]] bool batching_enabled() const noexcept
    {
        return batch_enabled_;
    }

    /// Whether the express lane is active (ACCESYS_NO_HOP_FUSION unset).
    [[nodiscard]] bool hop_fusion_enabled() const noexcept
    {
        return fusion_enabled_;
    }

    // --- checkpoint/restore (see sim/serialize.hh) --------------------------

    /// Live (non-squashed) entries currently pending, the express slot
    /// included. Non-mutating — a checkpoint probe must not perturb the
    /// dispatch-path counters of the run it snapshots.
    [[nodiscard]] std::uint64_t live_event_count() const;

    /// Wipe every scheduling structure ahead of a restore: pending entries
    /// are dropped wholesale (their events marked unscheduled) — each
    /// component re-inserts its own events via Event::serialize. Resets
    /// the quiescence memo and the restored-event tally.
    void restore_begin() noexcept;

    /// Clock + schedule counter + saved live-entry count. Load side must
    /// run after restore_begin() and before any component section.
    void serialize_clock(Ckpt& ar);

    /// Cross-layout restore: seed this queue's clock and schedule counter
    /// directly when the snapshot was taken under a different domain
    /// carve (no per-queue record maps onto it). Seeding the saving
    /// process's maximum sequence makes every post-resume schedule order
    /// after every restored key, exactly as it would have there.
    void seed_clock(Tick now, std::uint64_t seq) noexcept
    {
        now_ = now;
        next_seq_ = seq;
    }

    /// Monotonic schedule-sequence counter (tie-break + generation stamp).
    [[nodiscard]] std::uint64_t next_seq() const noexcept
    {
        return next_seq_;
    }

    /// Dispatch-path counters. Load side must run after every component
    /// section (restoration itself bumps them; the saved values win).
    void serialize_counters(Ckpt& ar);

    /// Re-insert a restored event with its exact saved key. Called from
    /// Event::serialize's load path only; the event's fields are already
    /// restored.
    void restore_event(Event& ev);

    /// True once every saved live entry has been re-inserted (checked by
    /// Simulator::restore after the last component section).
    [[nodiscard]] bool restore_complete() const noexcept
    {
        return restored_count_ == expected_live_;
    }
    [[nodiscard]] std::uint64_t restored_count() const noexcept
    {
        return restored_count_;
    }
    [[nodiscard]] std::uint64_t expected_live() const noexcept
    {
        return expected_live_;
    }

    /// True when no live event remains scheduled at the current tick, i.e.
    /// an event the caller (running inside a callback) would schedule "now"
    /// is guaranteed to be the very next dispatch. This is the legality
    /// condition for fusing a same-tick hand-off synchronously instead of
    /// round-tripping a self-event (see PacketQueue::push): with nothing
    /// else pending at this tick, executing the hand-off in place is
    /// order-identical to scheduling it.
    [[nodiscard]] bool tick_quiescent()
    {
        // Memoized positive answer: once the current tick is proven
        // quiescent, it stays quiescent until something lands *at* this
        // tick (schedule_impl bumps the epoch; future-tick schedules
        // cannot end quiescence, and time moving invalidates via the tick
        // compare). A streaming chain of fused hand-offs pays the full
        // probe once per tick instead of once per push.
        if (q_memo_tick_ == now_ && q_memo_epoch_ == at_now_epoch_) {
            return true;
        }
        if (batch_pos_ + 1 < batch_len_) {
            return false; // same-tick batch entries still pending
        }
        if (express_pending_ && express_.when() <= now_) {
            return false; // a staged hop is due (defensive: the run loop
                          // folds same-tick express entries back before
                          // dispatching, so this should not trigger)
        }
        if (refresh_top() && near_[near_head_].when() <= now_) {
            return false;
        }
        q_memo_tick_ = now_;
        q_memo_epoch_ = at_now_epoch_;
        return true;
    }

  private:
#if defined(__SIZEOF_INT128__)
    /// Full sort key in one integer: tick in the high 64 bits, biased
    /// priority and schedule sequence in the low 64. Heap ordering is a
    /// single wide compare (two instructions on 64-bit targets).
    using SortKey = unsigned __int128;
    [[nodiscard]] static constexpr SortKey make_key(
        Tick when, std::uint64_t prio_seq) noexcept
    {
        return (static_cast<SortKey>(when) << 64) | prio_seq;
    }
    [[nodiscard]] static constexpr Tick key_tick(SortKey key) noexcept
    {
        return static_cast<Tick>(key >> 64);
    }
#else
    /// Portable fallback: lexicographic (tick, prio_seq) in a struct.
    struct SortKey {
        Tick when;
        std::uint64_t prio_seq;
        constexpr bool operator>(const SortKey& o) const noexcept
        {
            return when != o.when ? when > o.when : prio_seq > o.prio_seq;
        }
    };
    [[nodiscard]] static constexpr SortKey make_key(
        Tick when, std::uint64_t prio_seq) noexcept
    {
        return SortKey{when, prio_seq};
    }
    [[nodiscard]] static constexpr Tick key_tick(SortKey key) noexcept
    {
        return key.when;
    }
#endif

    /// 32-byte heap entry ordered by the packed (tick, priority, sequence)
    /// key, so ordering is one wide integer compare.
    struct Entry {
        SortKey key;
        std::uint64_t generation;
        Event* ev;

        [[nodiscard]] Tick when() const noexcept { return key_tick(key); }
    };

    static constexpr int kPrioBias = 1 << 15;
    /// Same-tick dispatch batch size; overflow falls back to heap pulls.
    static constexpr std::size_t kBatchMax = 64;

    [[nodiscard]] static std::uint64_t pack_prio_seq(int priority,
                                                     std::uint64_t seq)
    {
        // 16 bits of biased priority, 48 bits of sequence (~2.8e14
        // schedules before wrap — far beyond any practical run). The
        // priority range is validated once at schedule time via
        // check_priority(); the hot path just packs.
        return (static_cast<std::uint64_t>(priority + kPrioBias) << 48) |
               (seq & ((std::uint64_t{1} << 48) - 1));
    }

    static void check_priority(int priority)
    {
        ensure(priority >= -kPrioBias && priority < kPrioBias,
               "event priority out of the representable range");
    }

    /// True when `a` runs strictly later than `b`.
    [[nodiscard]] static bool later(const Entry& a, const Entry& b) noexcept
    {
        return a.key > b.key;
    }

    [[nodiscard]] static bool entry_live(const Entry& e) noexcept
    {
        return e.ev->scheduled_ && e.ev->generation_ == e.generation;
    }

    [[nodiscard]] bool batch_active() const noexcept
    {
        return batch_pos_ < batch_len_;
    }

    /// Shared scheduling bookkeeping: validate, stamp the event with the
    /// next (sequence, generation) value, and build its heap entry. Both
    /// the normal path and the express lane stamp through here, so their
    /// entries are indistinguishable by construction.
    [[nodiscard]] Entry stamp_entry(Event& ev, Tick when)
    {
        ensure(!ev.scheduled_, "double schedule of event ", ev.name_);
        if (ev.priority_ != kPrioDefault) [[unlikely]] {
            check_priority(ev.priority_);
        }
        // One monotonic counter serves both the tie-break sequence (low 48
        // key bits) and the lazy-deletion generation stamp.
        const std::uint64_t seq = ++next_seq_;
        ev.when_ = when;
        ev.generation_ = seq;
        ev.scheduled_ = true;
        ++stat_scheduled_;
        if (when == now_) {
            ++at_now_epoch_; // ends any memoized quiescence for this tick
        }
        return Entry{make_key(when, pack_prio_seq(ev.priority_, seq)), seq,
                     &ev};
    }

    void schedule_impl(Event& ev, Tick when)
    {
        const Entry e = stamp_entry(ev, when);
        if (batch_active()) {
            schedule_during_batch(e);
            return;
        }
        schedule_entry(e);
    }

    /// Near-ring / heap placement shared by the normal and post-spill
    /// paths. Invariant: every near-ring entry precedes (by key) every
    /// heap entry; the ring itself is sorted ascending. Stale entries may
    /// sit anywhere — their keys still order correctly and refresh_top
    /// skips them.
    void schedule_entry(const Entry& e)
    {
        if (near_n_ == 0) {
            if (heap_.empty() || later(heap_[0], e)) {
                near_at(0) = e;
                near_n_ = 1;
                ++stat_near_hits_;
            } else {
                heap_push(e);
            }
            return;
        }
        if (later(e, near_at(near_n_ - 1))) {
            // Sorts after the ring: append when it still precedes the
            // heap minimum and there is room, else straight to the heap.
            if (near_n_ < kNearCap && (heap_.empty() || later(heap_[0], e))) {
                near_at(near_n_) = e;
                ++near_n_;
                ++stat_near_hits_;
            } else {
                heap_push(e);
            }
            return;
        }
        // Belongs inside the ring: spill the ring's latest entry to the
        // heap if full (it already precedes every heap entry), then shift.
        if (near_n_ == kNearCap) {
            heap_push(near_at(kNearCap - 1));
            --near_n_;
        }
        std::size_t pos = near_n_;
        while (pos > 0 && later(near_at(pos - 1), e)) {
            near_at(pos) = near_at(pos - 1);
            --pos;
        }
        near_at(pos) = e;
        ++near_n_;
        ++stat_near_hits_;
    }

    /// A schedule issued by an event executing inside a same-tick batch.
    /// Three cases, ordered by frequency:
    ///   1. current-tick, sorts after everything pending, batch has room →
    ///      append to the batch (the response-chain fusion fast path);
    ///   2. sorts after all pending batch entries (future tick, or batch
    ///      full / same-tick entries still in the heap) → normal placement;
    ///   3. must run *before* a pending batch entry (earlier priority at
    ///      the same tick) → spill the untouched remainder back to the
    ///      heap and place normally; the run loop re-sorts.
    void schedule_during_batch(const Entry& e)
    {
        const Entry& last = batch_[batch_len_ - 1];
        if (later(e, last)) {
            if (e.when() == now_ && batch_len_ < kBatchMax &&
                (near_n_ == 0 || near_at(0).when() > now_) &&
                (heap_.empty() || heap_[0].when() > now_)) {
                // Nothing at the current tick exists outside the batch, so
                // appending preserves the total order exactly.
                batch_[batch_len_++] = e;
                return;
            }
            schedule_entry(e);
            return;
        }
        // Earlier than a pending batch entry: check it really interleaves
        // (it may only precede entries that are already dead).
        std::size_t insert_at = batch_len_;
        for (std::size_t i = batch_pos_ + 1; i < batch_len_; ++i) {
            if (later(batch_[i], e)) {
                insert_at = i;
                break;
            }
        }
        if (insert_at == batch_len_) {
            schedule_entry(e);
            return;
        }
        // Spill the remainder (rare: same-tick kPrioEarly schedule) and
        // re-place the new entry; the run loop re-sorts.
        spill_batch_remainder(batch_pos_ + 1);
        batch_len_ = batch_pos_ + 1;
        schedule_entry(e);
    }

    /// Return the unexecuted batch entries [from, batch_len_) to the
    /// ring/heap without breaking the ring-precedes-heap invariant. The
    /// remainder is at the current tick and precedes every ring entry
    /// (batch appends only happen when nothing at the current tick exists
    /// outside the batch) and every heap entry — so the ring is rebuilt
    /// from the earliest remainder prefix and everything else, including
    /// the displaced ring entries, goes to the heap. Rare path (mid-batch
    /// stop or same-tick earlier-priority schedule): cost is irrelevant,
    /// order exactness is not.
    void spill_batch_remainder(std::size_t from)
    {
        if (from >= batch_len_) {
            return;
        }
        while (near_n_ > 0) {
            heap_push(near_at(near_n_ - 1));
            --near_n_;
        }
        near_head_ = 0;
        std::size_t i = from;
        for (; i < batch_len_ && near_n_ < kNearCap; ++i) {
            if (entry_live(batch_[i])) {
                near_[near_n_++] = batch_[i];
            }
        }
        for (; i < batch_len_; ++i) {
            if (entry_live(batch_[i])) {
                heap_push(batch_[i]);
            }
        }
    }

    // --- hand-rolled 4-ary min-heap -----------------------------------------
    // Shallower than a binary heap (log4 vs log2 levels) and sifted with
    // hole insertion: each level moves one 32-byte entry instead of
    // swapping two. Pop order is the sorted order of the (when, prio_seq)
    // keys — unique by construction — so the internal layout cannot affect
    // simulation results.

    void heap_push(const Entry& e)
    {
        ++stat_heap_pushes_;
        heap_.push_back(e);
        std::size_t i = heap_.size() - 1;
        while (i > 0) {
            const std::size_t parent = (i - 1) >> 2;
            if (!later(heap_[parent], e)) {
                break;
            }
            heap_[i] = heap_[parent];
            i = parent;
        }
        heap_[i] = e;
    }

    /// Remove and return the heap minimum (precondition: non-empty).
    Entry heap_pop()
    {
        const Entry min = heap_[0];
        const Entry last = heap_.back();
        heap_.pop_back();
        const std::size_t n = heap_.size();
        if (n > 0) {
            std::size_t i = 0;
            for (;;) {
                const std::size_t c0 = 4 * i + 1;
                if (c0 >= n) {
                    break;
                }
                std::size_t m = c0;
                const std::size_t cend = c0 + 4 < n ? c0 + 4 : n;
                for (std::size_t c = c0 + 1; c < cend; ++c) {
                    if (later(heap_[m], heap_[c])) {
                        m = c;
                    }
                }
                if (!later(last, heap_[m])) {
                    break;
                }
                heap_[i] = heap_[m];
                i = m;
            }
            heap_[i] = last;
        }
        return min;
    }

    /// Make the near-ring head the earliest live entry; false when
    /// drained. Amortised O(1): each entry is popped at most once.
    bool refresh_top()
    {
        for (;;) {
            while (near_n_ > 0) {
                if (entry_live(near_at(0))) {
                    return true;
                }
                near_pop_front();
            }
            if (heap_.empty()) {
                return false;
            }
            near_at(0) = heap_pop();
            near_n_ = 1;
        }
    }

    [[nodiscard]] Entry& near_at(std::size_t i) noexcept
    {
        return near_[(near_head_ + i) & (kNearCap - 1)];
    }

    /// Does a second entry share the head's tick? (Precondition:
    /// refresh_top() returned true.) Decides singleton vs batched dispatch.
    [[nodiscard]] bool tick_has_run() noexcept
    {
        const Tick t = near_at(0).when();
        if (near_n_ > 1) {
            return near_at(1).when() == t;
        }
        return !heap_.empty() && heap_[0].when() == t;
    }

    void near_pop_front() noexcept
    {
        near_head_ = (near_head_ + 1) & (kNearCap - 1);
        --near_n_;
    }

    /// Dispatch a live entry pulled from the ring or the express slot.
    void exec_entry(const Entry& e)
    {
        ensure(e.when() >= now_, "event heap corrupted");
        now_ = e.when();
        Event& ev = *e.ev;
        ev.scheduled_ = false;
        ++stat_processed_;
        ensure(ev.invoke_ != nullptr, "event without callback: ", ev.name_);
        if (observer_ != nullptr) [[unlikely]] {
            observer_->on_dispatch(ev);
        }
        ev.invoke_(ev.ctx_);
    }

    /// Consume the ring head (precondition: refresh_top() returned true).
    void exec_top()
    {
        const Entry e = near_at(0);
        near_pop_front();
        exec_entry(e);
    }

    /// Return a staged express entry to the ring/heap (query and step paths
    /// that need the full ordered view; the run loops handle the slot
    /// inline instead).
    void flush_express()
    {
        if (express_pending_) [[unlikely]] {
            express_pending_ = false;
            if (entry_live(express_)) {
                ++stat_express_spills_;
                schedule_entry(express_);
            }
        }
    }

    /// Dispatch every event at the cached top's tick (and any same-tick
    /// events scheduled while doing so) back-to-back. Precondition:
    /// refresh_top() returned true. When `stop` is non-null, dispatching
    /// pauses after the event that sets it (the remainder is spilled back
    /// to the heap, preserving order). Returns events executed.
    std::uint64_t dispatch_tick(const bool* stop);

    /// Loop-top express slot arbitration for run()/drain(); see event.cc.
    void express_step(Tick max_tick, bool& dispatched, bool& horizon);

    std::vector<Entry> heap_; ///< 4-ary min-heap (see heap_push/heap_pop)
    /// Sorted ring of the earliest entries (see schedule_entry invariant).
    static constexpr std::size_t kNearCap = 8;
    Entry near_[kNearCap];
    std::size_t near_head_ = 0;
    std::size_t near_n_ = 0;
    bool batch_enabled_ = true;
    bool fusion_enabled_ = true; ///< express lane on (ACCESYS_NO_HOP_FUSION)
    /// One-slot express lane (see schedule_express): a staged hop event the
    /// run loop dispatches directly when it is the earliest pending work.
    bool express_pending_ = false;
    Entry express_{};
    Tick now_ = 0;
    /// tick_quiescent() memo: the tick proven quiescent and the value of
    /// `at_now_epoch_` when it was proven (schedules at the current tick
    /// bump the epoch, ending the memo's validity).
    Tick q_memo_tick_ = kMaxTick;
    std::uint64_t q_memo_epoch_ = 0;
    std::uint64_t at_now_epoch_ = 1;
    std::uint64_t next_seq_ = 0; ///< schedule counter: sort tie-break + generation stamp
    std::uint64_t stat_processed_ = 0;
    std::uint64_t stat_scheduled_ = 0;
    std::uint64_t stat_express_hits_ = 0;
    std::uint64_t stat_express_spills_ = 0;
    std::uint64_t stat_heap_pushes_ = 0;
    std::uint64_t stat_near_hits_ = 0;
    std::uint64_t expected_live_ = 0;  ///< saved live count (restore)
    std::uint64_t restored_count_ = 0; ///< restore_event() calls so far
    DispatchObserver* observer_ = nullptr;
    /// Same-tick dispatch batch (active only inside dispatch_tick).
    Entry batch_[kBatchMax];
    std::size_t batch_pos_ = 0;
    std::size_t batch_len_ = 0;
};

} // namespace accesys
