// Discrete-event core: `Event` handles and the `EventQueue` scheduler.
//
// Events are long-lived objects owned by components and (re)scheduled many
// times; the queue stores lightweight entries and uses lazy deletion, so
// deschedule/reschedule are O(1) and pop skips stale entries. Determinism:
// ties on (tick, priority) break by schedule order (monotonic sequence).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "sim/error.hh"
#include "sim/types.hh"

namespace accesys {

class EventQueue;

/// Priorities: lower value runs earlier within the same tick.
enum : int {
    kPrioEarly = -100,  ///< bookkeeping that must precede normal activity
    kPrioDefault = 0,
    kPrioLate = 100,    ///< e.g. stat sampling after the tick's activity
};

/// A schedulable callback. Construct once, schedule as often as needed.
class Event {
  public:
    using Callback = std::function<void()>;

    Event() = default;
    Event(std::string name, Callback cb, int priority = kPrioDefault)
        : name_(std::move(name)), cb_(std::move(cb)), priority_(priority)
    {
    }

    Event(const Event&) = delete;
    Event& operator=(const Event&) = delete;

    /// Replace the callback; must not be scheduled.
    void set_callback(Callback cb)
    {
        ensure(!scheduled_, "Event::set_callback while scheduled: ", name_);
        cb_ = std::move(cb);
    }

    void set_name(std::string name) { name_ = std::move(name); }

    [[nodiscard]] bool scheduled() const noexcept { return scheduled_; }
    [[nodiscard]] Tick when() const noexcept { return when_; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] int priority() const noexcept { return priority_; }

  private:
    friend class EventQueue;

    std::string name_;
    Callback cb_;
    int priority_ = kPrioDefault;
    Tick when_ = 0;
    std::uint64_t generation_ = 0; ///< bumped on every schedule
    bool scheduled_ = false;
};

/// Min-heap event scheduler; also the keeper of simulated time.
class EventQueue {
  public:
    EventQueue() = default;
    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    [[nodiscard]] Tick now() const noexcept { return now_; }

    /// Schedule `ev` at absolute tick `when` (>= now).
    void schedule(Event& ev, Tick when)
    {
        ensure(!ev.scheduled_, "double schedule of event ", ev.name_);
        ensure(when >= now_, "schedule in the past: ", ev.name_, " at ", when,
               " now ", now_);
        ev.when_ = when;
        ev.generation_ = ++next_generation_;
        ev.scheduled_ = true;
        heap_.push(Entry{when, ev.priority_, next_seq_++, ev.generation_,
                         &ev});
        ++stat_scheduled_;
    }

    /// Schedule `ev` `delta` ticks from now.
    void schedule_in(Event& ev, Tick delta) { schedule(ev, now_ + delta); }

    /// Remove `ev` from the schedule (no-op entry left in heap).
    void deschedule(Event& ev)
    {
        ensure(ev.scheduled_, "deschedule of idle event ", ev.name_);
        ev.scheduled_ = false;
    }

    /// Move an event (scheduled or not) to a new absolute time.
    void reschedule(Event& ev, Tick when)
    {
        if (ev.scheduled_) {
            deschedule(ev);
        }
        schedule(ev, when);
    }

    /// True when no live (non-squashed) events remain.
    [[nodiscard]] bool empty()
    {
        prune();
        return heap_.empty();
    }

    /// Tick of the next live event, or kMaxTick when empty.
    [[nodiscard]] Tick next_event_tick()
    {
        prune();
        return heap_.empty() ? kMaxTick : heap_.top().when;
    }

    /// Name of the next live event (debugging aid); empty when drained.
    [[nodiscard]] std::string next_event_name()
    {
        prune();
        return heap_.empty() ? std::string{} : heap_.top().ev->name();
    }

    /// Execute the single next event; returns false when none remain.
    bool step();

    /// Run until the queue drains or simulated time would pass `max_tick`
    /// (events at exactly `max_tick` still run). Returns events processed.
    std::uint64_t run(Tick max_tick = kMaxTick);

    /// Total events executed since construction.
    [[nodiscard]] std::uint64_t events_processed() const noexcept
    {
        return stat_processed_;
    }

    [[nodiscard]] std::uint64_t events_scheduled() const noexcept
    {
        return stat_scheduled_;
    }

    /// Advance time with no event execution (used by drained fast-forward).
    void warp_to(Tick when)
    {
        ensure(when >= now_, "warp into the past");
        ensure(empty() || heap_.top().when >= when,
               "warp past a pending event");
        now_ = when;
    }

  private:
    struct Entry {
        Tick when;
        int priority;
        std::uint64_t seq;
        std::uint64_t generation;
        Event* ev;
    };

    struct Later {
        bool operator()(const Entry& a, const Entry& b) const noexcept
        {
            if (a.when != b.when) {
                return a.when > b.when;
            }
            if (a.priority != b.priority) {
                return a.priority > b.priority;
            }
            return a.seq > b.seq;
        }
    };

    /// Drop squashed entries off the top of the heap.
    void prune()
    {
        while (!heap_.empty()) {
            const Entry& top = heap_.top();
            if (top.ev->scheduled_ && top.ev->generation_ == top.generation) {
                return;
            }
            heap_.pop();
        }
    }

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t next_generation_ = 0;
    std::uint64_t stat_processed_ = 0;
    std::uint64_t stat_scheduled_ = 0;
};

} // namespace accesys
