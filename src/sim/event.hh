// Discrete-event core: `Event` handles and the `EventQueue` scheduler.
//
// Events are long-lived objects owned by components and (re)scheduled many
// times; the queue stores lightweight entries and uses lazy deletion, so
// deschedule/reschedule are O(1) and pop skips stale entries. Determinism:
// ties on (tick, priority) break by schedule order (monotonic sequence).
//
// Hot-path structure: the earliest live entry is cached outside the binary
// heap (`top_`). Peeks (`empty()`, `next_event_tick()`) validate the cache
// instead of re-pruning the heap, `run()`/`step()` consume it with exactly
// one heap pop per live event, and the common schedule→fire ping-pong of a
// single event (links, egress queues) bypasses the heap entirely.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/error.hh"
#include "sim/types.hh"

namespace accesys {

class EventQueue;

/// Priorities: lower value runs earlier within the same tick.
enum : int {
    kPrioEarly = -100,  ///< bookkeeping that must precede normal activity
    kPrioDefault = 0,
    kPrioLate = 100,    ///< e.g. stat sampling after the tick's activity
};

/// A schedulable callback. Construct once, schedule as often as needed.
///
/// Dispatch is a raw `fn(ctx)` indirect call. std::function callbacks are
/// supported through a fixed trampoline (`invoke_` then points at a shim
/// that calls `cb_`), and `set_raw_callback` binds an object+method pair
/// directly with no std::function layer at all — used by the hottest
/// periodic events.
class Event {
  public:
    using Callback = std::function<void()>;
    using RawFn = void (*)(void*);

    Event() = default;
    Event(std::string name, Callback cb, int priority = kPrioDefault)
        : priority_(priority), name_(std::move(name))
    {
        set_callback_unchecked(std::move(cb));
    }

    Event(const Event&) = delete;
    Event& operator=(const Event&) = delete;

    /// Replace the callback; must not be scheduled.
    void set_callback(Callback cb)
    {
        ensure(!scheduled_, "Event::set_callback while scheduled: ", name_);
        set_callback_unchecked(std::move(cb));
    }

    /// Bind `fn(ctx)` directly (fastest dispatch); must not be scheduled.
    void set_raw_callback(RawFn fn, void* ctx)
    {
        ensure(!scheduled_, "Event::set_raw_callback while scheduled: ",
               name_);
        cb_ = nullptr;
        invoke_ = fn;
        ctx_ = ctx;
    }

    void set_name(std::string name) { name_ = std::move(name); }

    [[nodiscard]] bool scheduled() const noexcept { return scheduled_; }
    [[nodiscard]] Tick when() const noexcept { return when_; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] int priority() const noexcept { return priority_; }

  private:
    friend class EventQueue;

    void set_callback_unchecked(Callback cb)
    {
        cb_ = std::move(cb);
        if (cb_) {
            invoke_ = [](void* self) { static_cast<Event*>(self)->cb_(); };
            ctx_ = this;
        } else {
            invoke_ = nullptr;
            ctx_ = nullptr;
        }
    }

    // Hot fields first: schedule/refresh/dispatch touch only these, so
    // they share the object's first cache line (name_/cb_ are cold).
    RawFn invoke_ = nullptr; ///< dispatch target (shim or raw binding)
    void* ctx_ = nullptr;
    Tick when_ = 0;
    std::uint64_t generation_ = 0; ///< bumped on every schedule
    int priority_ = kPrioDefault;
    bool scheduled_ = false;
    std::string name_;
    Callback cb_;
};

/// Min-heap event scheduler; also the keeper of simulated time.
class EventQueue {
  public:
    EventQueue() { heap_.reserve(64); }
    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    [[nodiscard]] Tick now() const noexcept { return now_; }

    /// Schedule `ev` at absolute tick `when` (>= now).
    void schedule(Event& ev, Tick when)
    {
        ensure(when >= now_, "schedule in the past: ", ev.name_, " at ", when,
               " now ", now_);
        schedule_impl(ev, when);
    }

    /// Schedule `ev` `delta` ticks from now.
    void schedule_in(Event& ev, Tick delta) { schedule(ev, now_ + delta); }

    /// Fast path: schedule `ev` at the current tick (it runs after the
    /// event currently executing, in schedule order among same-tick,
    /// same-priority peers). Skips the past-tick check.
    void schedule_now(Event& ev) { schedule_impl(ev, now_); }

    /// Remove `ev` from the schedule (no-op entry left in heap).
    void deschedule(Event& ev)
    {
        ensure(ev.scheduled_, "deschedule of idle event ", ev.name_);
        ev.scheduled_ = false;
    }

    /// Move an event (scheduled or not) to a new absolute time.
    void reschedule(Event& ev, Tick when)
    {
        if (ev.scheduled_) {
            deschedule(ev);
        }
        schedule(ev, when);
    }

    /// True when no live (non-squashed) events remain.
    [[nodiscard]] bool empty() { return !refresh_top(); }

    /// Tick of the next live event, or kMaxTick when empty.
    [[nodiscard]] Tick next_event_tick()
    {
        return refresh_top() ? top_.when : kMaxTick;
    }

    /// Name of the next live event (debugging aid); empty when drained.
    [[nodiscard]] std::string next_event_name()
    {
        return refresh_top() ? top_.ev->name() : std::string{};
    }

    /// Execute the single next event; returns false when none remain.
    bool step()
    {
        if (!refresh_top()) {
            return false;
        }
        exec_top();
        return true;
    }

    /// One fused probe-and-execute for driver loops: a single cache refresh
    /// decides between drain, horizon and execution.
    enum class StepOutcome { executed, horizon, drained };
    StepOutcome step_bounded(Tick max_tick)
    {
        if (!refresh_top()) {
            return StepOutcome::drained;
        }
        if (top_.when > max_tick) {
            return StepOutcome::horizon;
        }
        exec_top();
        return StepOutcome::executed;
    }

    /// Run until the queue drains or simulated time would pass `max_tick`
    /// (events at exactly `max_tick` still run). Returns events processed.
    std::uint64_t run(Tick max_tick = kMaxTick);

    /// Total events executed since construction.
    [[nodiscard]] std::uint64_t events_processed() const noexcept
    {
        return stat_processed_;
    }

    [[nodiscard]] std::uint64_t events_scheduled() const noexcept
    {
        return stat_scheduled_;
    }

    /// Advance time with no event execution (used by drained fast-forward).
    void warp_to(Tick when)
    {
        ensure(when >= now_, "warp into the past");
        ensure(next_event_tick() >= when, "warp past a pending event");
        now_ = when;
    }

  private:
    /// 32-byte heap entry: priority and schedule sequence are packed into
    /// one sort key (`prio_seq`), so ordering is two integer compares.
    struct Entry {
        Tick when;
        std::uint64_t prio_seq; ///< (priority + bias) << 48 | sequence
        std::uint64_t generation;
        Event* ev;
    };

    static constexpr int kPrioBias = 1 << 15;

    [[nodiscard]] static std::uint64_t pack_prio_seq(int priority,
                                                     std::uint64_t seq)
    {
        // 16 bits of biased priority, 48 bits of sequence (~2.8e14
        // schedules before wrap — far beyond any practical run).
        ensure(priority >= -kPrioBias && priority < kPrioBias,
               "event priority out of the representable range");
        return (static_cast<std::uint64_t>(priority + kPrioBias) << 48) |
               (seq & ((std::uint64_t{1} << 48) - 1));
    }

    /// True when `a` runs strictly later than `b`.
    [[nodiscard]] static bool later(const Entry& a, const Entry& b) noexcept
    {
        if (a.when != b.when) {
            return a.when > b.when;
        }
        return a.prio_seq > b.prio_seq;
    }

    [[nodiscard]] static bool entry_live(const Entry& e) noexcept
    {
        return e.ev->scheduled_ && e.ev->generation_ == e.generation;
    }

    void schedule_impl(Event& ev, Tick when)
    {
        ensure(!ev.scheduled_, "double schedule of event ", ev.name_);
        ev.when_ = when;
        ev.generation_ = ++next_generation_;
        ev.scheduled_ = true;
        ++stat_scheduled_;
        const Entry e{when, pack_prio_seq(ev.priority_, next_seq_++),
                      ev.generation_, &ev};
        if (has_top_ && !entry_live(top_)) {
            // A stale cached entry carries no ordering information (and,
            // not being in the heap, can simply vanish).
            has_top_ = false;
        }
        if (has_top_) {
            // Invariant: a live cached top precedes every heap entry.
            if (later(top_, e)) {
                heap_push(top_);
                top_ = e;
            } else {
                heap_push(e);
            }
        } else if (heap_.empty() || later(heap_[0], e)) {
            // Earlier than the heap minimum: safe to cache directly (the
            // single-event ping-pong fast path never touches the heap).
            top_ = e;
            has_top_ = true;
        } else {
            heap_push(e);
        }
    }

    struct Later {
        bool operator()(const Entry& a, const Entry& b) const noexcept
        {
            return later(a, b);
        }
    };

    void heap_push(const Entry& e)
    {
        heap_.push_back(e);
        std::push_heap(heap_.begin(), heap_.end(), Later{});
    }

    /// Remove and return the heap minimum (precondition: non-empty).
    Entry heap_pop()
    {
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        const Entry min = heap_.back();
        heap_.pop_back();
        return min;
    }

    /// Make `top_` the earliest live entry; false when drained. Amortised
    /// O(1): each heap entry is popped at most once over its lifetime.
    bool refresh_top()
    {
        for (;;) {
            if (has_top_) {
                if (entry_live(top_)) {
                    return true;
                }
                has_top_ = false;
            }
            if (heap_.empty()) {
                return false;
            }
            top_ = heap_pop();
            has_top_ = true;
        }
    }

    /// Consume the cached top (precondition: refresh_top() returned true).
    void exec_top()
    {
        has_top_ = false;
        ensure(top_.when >= now_, "event heap corrupted");
        now_ = top_.when;
        Event& ev = *top_.ev;
        ev.scheduled_ = false;
        ++stat_processed_;
        ensure(ev.invoke_ != nullptr, "event without callback: ", ev.name_);
        ev.invoke_(ev.ctx_);
    }

    std::vector<Entry> heap_; ///< 4-ary min-heap (see heap_push/heap_pop)
    Entry top_{};             ///< cached earliest entry, popped off the heap
    bool has_top_ = false;
    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t next_generation_ = 0;
    std::uint64_t stat_processed_ = 0;
    std::uint64_t stat_scheduled_ = 0;
};

} // namespace accesys
