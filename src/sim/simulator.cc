#include "sim/simulator.hh"

#include <algorithm>

namespace accesys {

void Simulator::startup()
{
    if (started_) {
        return;
    }
    started_ = true;
    // Objects may attach more objects during startup; index loop is safe.
    for (std::size_t i = 0; i < objects_.size(); ++i) {
        objects_[i]->startup();
    }
}

RunResult Simulator::run(Tick max_tick)
{
    startup();
    exit_requested_ = false;
    exit_reason_.clear();

    RunResult res;
    std::uint64_t n = 0;
    // The queue's batched drain loop owns event dispatch; the exit flag is
    // observed between events exactly as the per-event loop did.
    switch (queue_.drain(max_tick, exit_requested_, n)) {
    case EventQueue::DrainOutcome::stopped:
        res.cause = ExitCause::exit_requested;
        res.exit_reason = exit_reason_;
        break;
    case EventQueue::DrainOutcome::drained:
        res.cause = ExitCause::queue_drained;
        break;
    case EventQueue::DrainOutcome::horizon:
        res.cause = ExitCause::horizon_reached;
        queue_.warp_to(max_tick);
        break;
    }
    res.end_tick = queue_.now();
    res.events = n;
    return res;
}

void Simulator::detach(SimObject& obj) noexcept
{
    objects_.erase(std::remove(objects_.begin(), objects_.end(), &obj),
                   objects_.end());
}

SimObject::SimObject(Simulator& sim, std::string name)
    : sim_(&sim), name_(std::move(name)), stats_(sim.stats(), name_)
{
    sim_->attach(*this);
}

SimObject::~SimObject()
{
    sim_->detach(*this);
}

} // namespace accesys
