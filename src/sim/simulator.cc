#include "sim/simulator.hh"

#include <algorithm>
#include <exception>
#include <mutex>
#include <set>
#include <thread>

#include "sim/fault_injector.hh"
#include "sim/serialize.hh"

namespace accesys {

FaultInjector* Simulator::fault_injector() const noexcept
{
    return fault_injector_ != nullptr && fault_injector_->enabled()
               ? fault_injector_
               : nullptr;
}

void Simulator::startup()
{
    if (started_) {
        return;
    }
    started_ = true;
    // Objects may attach more objects during startup; index loop is safe.
    for (std::size_t i = 0; i < objects_.size(); ++i) {
        objects_[i]->startup();
    }
}

RunResult Simulator::run(Tick max_tick)
{
    if (parallel()) {
        return run_parallel(max_tick);
    }

    startup();
    exit_requested_ = false;
    stop_now_ = false;
    exit_reason_.clear();

    RunResult res;
    std::uint64_t n = 0;
    // The queue's batched drain loop owns event dispatch; the stop flag is
    // observed between events exactly as the per-event exit check did. A
    // pending deterministic checkpoint clips the horizon to its tick; any
    // inter-event point is a legal serial checkpoint, so async interrupts
    // snapshot right where they stopped.
    for (;;) {
        Tick horizon = max_tick;
        const bool ckpt_clips = ckpt_at_ != kMaxTick && ckpt_at_ - 1 < horizon;
        if (ckpt_clips) {
            horizon = ckpt_at_ - 1;
        }
        const EventQueue::DrainOutcome outcome =
            queue_.drain(horizon, stop_now_, n);
        if (outcome == EventQueue::DrainOutcome::stopped) {
            if (exit_requested_) {
                res.cause = ExitCause::exit_requested;
                res.exit_reason = exit_reason_;
                break;
            }
            // Async interrupt (signal/watchdog thread) between events.
            interrupt_posted_ = false;
            stop_now_ = false;
            if (!interrupt_ckpt_path_.empty()) {
                checkpoint(interrupt_ckpt_path_);
                res.cause = ExitCause::checkpointed;
                res.exit_reason = interrupt_ckpt_path_;
                break;
            }
            continue; // spurious interrupt with nothing armed
        }
        if (outcome == EventQueue::DrainOutcome::drained) {
            res.cause = ExitCause::queue_drained;
            break;
        }
        if (ckpt_clips && queue_.next_event_tick() > horizon) {
            // Every event before the requested tick has run: snapshot.
            const std::string path = std::move(ckpt_path_);
            ckpt_path_.clear();
            ckpt_at_ = kMaxTick;
            checkpoint(path);
            res.cause = ExitCause::checkpointed;
            res.exit_reason = path;
            break;
        }
        res.cause = ExitCause::horizon_reached;
        queue_.warp_to(max_tick);
        break;
    }
    res.end_tick = queue_.now();
    res.events = n;
    return res;
}

void Simulator::request_checkpoint_at(std::string path, Tick at)
{
    ensure(at > 0, "checkpoint tick must be positive");
    ckpt_path_ = std::move(path);
    ckpt_at_ = at;
}

std::size_t Simulator::begin_domain(std::string label)
{
    ensure(active_domain_ == nullptr, "nested simulation domains");
    ensure(!started_, "domain carved after startup");
    auto d = std::make_unique<Domain>();
    d->label = std::move(label);
    d->queue = std::make_unique<EventQueue>();
    domains_.push_back(std::move(d));
    active_domain_ = domains_.back().get();
    return domains_.size() - 1;
}

void Simulator::end_domain()
{
    ensure(active_domain_ != nullptr, "end_domain without begin_domain");
    active_domain_ = nullptr;
}

void Simulator::await_domains(std::uint64_t gen) const
{
    // Spin with a yield per probe: windows are short and the wait ends
    // with the peer's release store, but correctness (and the 1-core CI
    // host) must not depend on having a core per thread.
    for (const auto& d : domains_) {
        while (d->done_gen.load(std::memory_order_acquire) < gen) {
            std::this_thread::yield();
        }
    }
}

void Simulator::sync_functional_reads(Tick t)
{
    if (!parallel_running_) {
        return;
    }
    // Every domain publishes its generation only at window completion, so
    // once this returns no domain appends to its journal until the root
    // thread releases the next window — the drains below run race-free.
    await_domains(window_gen_.load(std::memory_order_relaxed));
    ++stat_fences_;
    for (auto& d : domains_) {
        if (d->drain_functional) {
            d->drain_functional(t);
        }
    }
}

RunResult Simulator::run_parallel(Tick max_tick)
{
    startup();
    exit_requested_ = false;
    stop_now_ = false;
    exit_reason_.clear();

    ensure(quantum_ > 0, "parallel run without a cross-domain quantum");
    const Tick q = quantum_;
    const std::size_t nd = domains_.size();
    const auto nworkers =
        static_cast<unsigned>(std::min<std::size_t>(threads_ - 1, nd));

    for (auto& d : domains_) {
        d->events = 0;
        d->done_gen.store(0, std::memory_order_relaxed);
    }
    window_gen_.store(0, std::memory_order_relaxed);
    parallel_running_ = true;

    // Window-release protocol: the root thread writes window_end_, then
    // bumps window_gen_ (release). Workers spin on window_gen_ (acquire),
    // run each of their domains up to the window end, and release-publish
    // the domain's completed generation. The acquire/release pairs carry
    // every cross-thread happens-before edge; all other cross-domain state
    // is only touched in the root thread's serial barrier section.
    std::atomic<bool> quit{false};

    // Exception containment: event callbacks may throw (ensure failures,
    // liveness diagnostics). A worker publishes the first error, releases
    // its remaining domain clocks so the root's barrier wait completes,
    // and exits; the root rethrows after joining everyone — a joinable
    // std::thread destructor (std::terminate) is never the failure mode.
    std::mutex err_mu;
    std::exception_ptr worker_err;
    std::atomic<bool> err_flag{false};

    auto worker_body = [&, nworkers](unsigned w) {
        std::uint64_t seen = 0;
        for (;;) {
            while (window_gen_.load(std::memory_order_acquire) == seen) {
                if (quit.load(std::memory_order_acquire)) {
                    return;
                }
                std::this_thread::yield();
            }
            ++seen;
            const Tick wend = window_end_;
            for (std::size_t i = w; i < nd; i += nworkers) {
                Domain& dom = *domains_[i];
                try {
                    if (dom.install) {
                        dom.install(); // thread context (domain pools)
                    }
                    dom.events += dom.queue->run(wend - 1);
                } catch (...) {
                    {
                        const std::lock_guard<std::mutex> lock(err_mu);
                        if (!worker_err) {
                            worker_err = std::current_exception();
                        }
                    }
                    err_flag.store(true, std::memory_order_release);
                    for (std::size_t j = w; j < nd; j += nworkers) {
                        domains_[j]->done_gen.store(
                            seen, std::memory_order_release);
                    }
                    return;
                }
                dom.done_gen.store(seen, std::memory_order_release);
            }
        }
    };

    std::vector<std::thread> workers;
    workers.reserve(nworkers);
    for (unsigned w = 0; w < nworkers; ++w) {
        workers.emplace_back(worker_body, w);
    }

    RunResult res;
    std::uint64_t executed = 0;

    // The window grid is absolute (anchored at tick 0) so window
    // boundaries — and therefore handoff batching — are identical for
    // every thread count. The first boundary comes from the slowest
    // domain clock: every pending event sits at or after it. A restored
    // run instead continues at the window the uninterrupted run's
    // skip-ahead would have picked at the checkpoint barrier, so barrier
    // iteration — and handoff batching — lines up exactly; normal runs
    // keep the untouched clock-based formula.
    Tick wend;
    if (restored_) {
        restored_ = false;
        Tick next = queue_.next_event_tick();
        for (auto& d : domains_) {
            next = std::min(next, d->queue->next_event_tick());
        }
        wend = next == kMaxTick ? align_down(queue_.now(), q) + q
                                : align_down(next, q) + q;
    } else {
        Tick min_now = queue_.now();
        for (auto& d : domains_) {
            min_now = std::min(min_now, d->queue->now());
        }
        wend = align_down(min_now, q) + q;
    }

    // Liveness watchdog: consecutive barriers with zero dispatched events
    // anywhere mean the fabric is wedged (e.g. a leaked credit with no
    // timer armed); diagnose instead of spinning forever.
    std::uint64_t last_total = 0;
    unsigned idle_quanta = 0;
    bool liveness_tripped = false;

    std::exception_ptr run_err;
    try {
    for (;;) {
        if (max_tick != kMaxTick && wend > max_tick) {
            wend = max_tick + 1; // final, clipped window
        }
        window_end_ = wend;
        const std::uint64_t gen =
            window_gen_.fetch_add(1, std::memory_order_release) + 1;

        // The root domain's window runs on this thread, overlapped with
        // the workers; the stop flag is observed between events exactly
        // as in the serial loop.
        EventQueue::DrainOutcome outcome =
            queue_.drain(wend - 1, stop_now_, executed);
        bool interrupt_ckpt = false;
        while (outcome == EventQueue::DrainOutcome::stopped &&
               !exit_requested_) {
            // Async interrupt mid-window: a checkpoint is only legal at
            // the barrier (premature handoff flushes would perturb peer
            // sequence numbering), so finish the window and snapshot
            // there.
            interrupt_posted_ = false;
            stop_now_ = false;
            interrupt_ckpt = !interrupt_ckpt_path_.empty();
            outcome = queue_.drain(wend - 1, stop_now_, executed);
        }

        await_domains(gen);
        ++stat_barriers_;
        if (err_flag.load(std::memory_order_acquire)) {
            break; // a dead worker publishes no further clocks — rethrow
        }

        // Serial section: every domain is quiesced. Inject cross-domain
        // handoffs in registration order, then apply staged functional
        // writes in domain order — both deterministic.
        for (auto& hook : barrier_hooks_) {
            hook();
        }
        for (auto& d : domains_) {
            if (d->drain_functional) {
                d->drain_functional(wend - 1);
            }
        }

        if (outcome == EventQueue::DrainOutcome::stopped) {
            res.cause = ExitCause::exit_requested;
            res.exit_reason = exit_reason_;
            break;
        }

        // Checkpoint at the barrier: every domain quiesced, handoff
        // staging flushed, journals drained — the canonical quiescent
        // point the restore contract is defined at.
        const bool det_ckpt = ckpt_at_ != kMaxTick && wend > ckpt_at_;
        if (det_ckpt || interrupt_ckpt) {
            std::string path =
                det_ckpt ? std::move(ckpt_path_) : interrupt_ckpt_path_;
            ckpt_path_.clear();
            ckpt_at_ = kMaxTick;
            checkpoint(path);
            res.cause = ExitCause::checkpointed;
            res.exit_reason = std::move(path);
            break;
        }

        std::uint64_t total = executed;
        for (auto& d : domains_) {
            total += d->events;
        }
        if (total == last_total && max_idle_quanta_ != 0) {
            if (++idle_quanta >= max_idle_quanta_) {
                liveness_tripped = true;
                break;
            }
        } else {
            idle_quanta = 0;
            last_total = total;
        }

        // Skip-ahead: derive the next window from the earliest pending
        // event anywhere (flushed handoffs included — they are scheduled
        // by the hooks above). Deterministic: quiesced state only.
        Tick next = queue_.next_event_tick();
        for (auto& d : domains_) {
            next = std::min(next, d->queue->next_event_tick());
        }
        if (next == kMaxTick) {
            res.cause = ExitCause::queue_drained;
            break;
        }
        if (next > max_tick) {
            res.cause = ExitCause::horizon_reached;
            if (queue_.now() < max_tick) {
                queue_.warp_to(max_tick);
            }
            for (auto& d : domains_) {
                if (d->queue->now() < max_tick) {
                    d->queue->warp_to(max_tick);
                }
            }
            break;
        }
        wend = align_down(next, q) + q;
    }
    } catch (...) {
        run_err = std::current_exception();
    }

    quit.store(true, std::memory_order_release);
    for (auto& t : workers) {
        t.join();
    }
    parallel_running_ = false;

    if (run_err == nullptr && err_flag.load(std::memory_order_acquire)) {
        run_err = worker_err; // workers are joined: safe to read unlocked
    }
    if (run_err != nullptr) {
        std::rethrow_exception(run_err);
    }

    if (liveness_tripped) {
        // Per-queue clock + earliest pending event: distinguishes a true
        // wedge (nothing pending anywhere) from a scheduling bug (work
        // pending that never dispatches).
        std::string queues;
        auto describe = [&queues](const std::string& label, EventQueue& eq) {
            queues += strcat_msg("  ", label, ": now=", eq.now(),
                                 " next=", eq.next_event_tick(), " (",
                                 eq.next_event_name(), ")\n");
        };
        describe("root", queue_);
        for (auto& d : domains_) {
            describe(d->label, *d->queue);
        }
        throw SimError(strcat_msg(
            "liveness watchdog: ", max_idle_quanta_,
            " consecutive window barriers dispatched zero events (window "
            "end ",
            window_end_, "); queues:\n", queues,
            "component occupancy:\n", occupancy_report()));
    }

    res.end_tick = queue_.now();
    res.events = executed;
    for (auto& d : domains_) {
        res.events += d->events;
    }
    return res;
}

void Simulator::serialize_sim_clocks(Ckpt& ar)
{
    std::uint64_t nd = domains_.size();
    ar.io(nd);
    ckpt_layout_match_ = nd == domains_.size();
    queue_.serialize_clock(ar); // the root record always maps exactly
    if (ckpt_layout_match_) {
        for (auto& d : domains_) {
            d->queue->serialize_clock(ar);
        }
        return;
    }
    // Snapshot taken under a different thread count: the saved per-domain
    // records don't map onto this carve. Every domain is quiesced at the
    // checkpoint, so the records are interchangeable — drain them, then
    // seed each current domain from the root clock and the maximum saved
    // schedule sequence (post-resume schedules then order after every
    // restored key, exactly as they would have in the saving process).
    // Live-entry verification moves to the global total: the event
    // population redistributes across queues with the carve.
    std::uint64_t live_total = queue_.expected_live();
    std::uint64_t seq = queue_.next_seq();
    for (std::uint64_t i = 0; i < nd; ++i) {
        Tick dnow = 0;
        std::uint64_t dseq = 0;
        std::uint64_t dlive = 0;
        ar.io(dnow, dseq, dlive);
        live_total += dlive;
        seq = std::max(seq, dseq);
    }
    queue_.seed_clock(queue_.now(), seq);
    for (auto& d : domains_) {
        d->queue->seed_clock(queue_.now(), seq);
    }
    ckpt_live_total_ = live_total;
}

void Simulator::install_context_for(EventQueue* q)
{
    if (q == &queue_) {
        if (root_install_) {
            root_install_();
        }
        return;
    }
    for (auto& d : domains_) {
        if (d->queue.get() == q) {
            if (d->install) {
                d->install();
            }
            return;
        }
    }
    panic("component bound to an unknown event queue during restore");
}

void Simulator::checkpoint(const std::string& path)
{
    Ckpt ar;
    ar.begin_section("sim");
    serialize_sim_clocks(ar);
    ar.end_section();

    std::set<std::string> names;
    for (SimObject* obj : objects_) {
        ensure(names.insert(obj->name()).second,
               "duplicate component name in checkpoint: ", obj->name());
        ar.begin_section(obj->name());
        obj->serialize(ar);
        ar.end_section();
    }
    for (CkptHook& hook : ckpt_hooks_) {
        ar.begin_section(hook.name);
        hook.fn(ar);
        ar.end_section();
    }

    // Dispatch-path counters last: restoration itself schedules nothing,
    // but re-inserting events bumps heap counters — the saved values win.
    // Count-prefixed so a restore under a different domain carve can
    // drain the records it cannot map.
    ar.begin_section("sim.counters");
    std::uint64_t nq = 1 + domains_.size();
    ar.io(nq);
    queue_.serialize_counters(ar);
    for (auto& d : domains_) {
        d->queue->serialize_counters(ar);
    }
    ar.io(stat_barriers_, stat_fences_, stat_handoffs_);
    ar.end_section();

    ar.begin_section("stats");
    stats_.serialize(ar);
    ar.end_section();

    ar.write_file(path, config_hash_);
}

void Simulator::restore(const std::string& path)
{
    startup();
    Ckpt ar = Ckpt::load_file(path, config_hash_);

    // Wipe every queue: construction/startup-scheduled events are dropped
    // wholesale and each component re-inserts its own pending events with
    // their exact checkpointed keys.
    queue_.restore_begin();
    for (auto& d : domains_) {
        d->queue->restore_begin();
    }

    ar.begin_section("sim");
    serialize_sim_clocks(ar);
    ar.end_section();

    // Components restore under their own domain's thread context so pool
    // re-materialization draws from the correct per-domain pool.
    EventQueue* ctx = nullptr;
    for (SimObject* obj : objects_) {
        if (&obj->eq() != ctx) {
            ctx = &obj->eq();
            install_context_for(ctx);
        }
        ar.begin_section(obj->name());
        obj->serialize(ar);
        ar.end_section();
    }
    install_context_for(&queue_);
    for (CkptHook& hook : ckpt_hooks_) {
        ar.begin_section(hook.name);
        hook.fn(ar);
        ar.end_section();
    }

    ar.begin_section("sim.counters");
    std::uint64_t nq = 0;
    ar.io(nq);
    if (ckpt_layout_match_) {
        queue_.serialize_counters(ar);
        for (auto& d : domains_) {
            d->queue->serialize_counters(ar);
        }
    } else {
        // Per-queue dispatch counters don't map across a different carve:
        // drain the saved records into a scratch queue and keep this
        // process's organic values (they truthfully count restore work).
        EventQueue scratch;
        for (std::uint64_t i = 0; i < nq; ++i) {
            scratch.serialize_counters(ar);
        }
    }
    ar.io(stat_barriers_, stat_fences_, stat_handoffs_);
    ar.end_section();

    ar.begin_section("stats");
    stats_.serialize(ar);
    ar.end_section();

    if (ckpt_layout_match_) {
        ensure(queue_.restore_complete(), "restore re-inserted ",
               queue_.restored_count(), " events into the root queue but "
               "the checkpoint recorded ",
               queue_.expected_live(), " live entries (a component is "
               "missing an Event in its serialize())");
        for (auto& d : domains_) {
            ensure(d->queue->restore_complete(), "restore re-inserted ",
                   d->queue->restored_count(), " events into domain '",
                   d->label, "' but the checkpoint recorded ",
                   d->queue->expected_live(), " live entries");
        }
    } else {
        // The event population redistributes across queues with the
        // carve; only the global total is checkable.
        std::uint64_t restored = queue_.restored_count();
        for (auto& d : domains_) {
            restored += d->queue->restored_count();
        }
        ensure(restored == ckpt_live_total_, "restore re-inserted ",
               restored, " events across all queues but the checkpoint "
               "recorded ",
               ckpt_live_total_, " live entries (a component is missing "
               "an Event in its serialize())");
    }
    restored_ = true;
}

std::string Simulator::occupancy_report() const
{
    std::string out;
    for (const SimObject* obj : objects_) {
        obj->report_occupancy(out);
    }
    if (out.empty()) {
        out = "  (no component reports queued work)\n";
    }
    return out;
}

void Simulator::detach(SimObject& obj) noexcept
{
    objects_.erase(std::remove(objects_.begin(), objects_.end(), &obj),
                   objects_.end());
}

SimObject::SimObject(Simulator& sim, std::string name)
    : sim_(&sim),
      eq_(&sim.current_queue()),
      name_(std::move(name)),
      stats_(sim.stats(), name_)
{
    sim_->attach(*this);
}

SimObject::~SimObject()
{
    sim_->detach(*this);
}

} // namespace accesys
