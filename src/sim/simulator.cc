#include "sim/simulator.hh"

#include <algorithm>
#include <thread>

#include "sim/fault_injector.hh"

namespace accesys {

FaultInjector* Simulator::fault_injector() const noexcept
{
    return fault_injector_ != nullptr && fault_injector_->enabled()
               ? fault_injector_
               : nullptr;
}

void Simulator::startup()
{
    if (started_) {
        return;
    }
    started_ = true;
    // Objects may attach more objects during startup; index loop is safe.
    for (std::size_t i = 0; i < objects_.size(); ++i) {
        objects_[i]->startup();
    }
}

RunResult Simulator::run(Tick max_tick)
{
    if (parallel()) {
        return run_parallel(max_tick);
    }

    startup();
    exit_requested_ = false;
    exit_reason_.clear();

    RunResult res;
    std::uint64_t n = 0;
    // The queue's batched drain loop owns event dispatch; the exit flag is
    // observed between events exactly as the per-event loop did.
    switch (queue_.drain(max_tick, exit_requested_, n)) {
    case EventQueue::DrainOutcome::stopped:
        res.cause = ExitCause::exit_requested;
        res.exit_reason = exit_reason_;
        break;
    case EventQueue::DrainOutcome::drained:
        res.cause = ExitCause::queue_drained;
        break;
    case EventQueue::DrainOutcome::horizon:
        res.cause = ExitCause::horizon_reached;
        queue_.warp_to(max_tick);
        break;
    }
    res.end_tick = queue_.now();
    res.events = n;
    return res;
}

std::size_t Simulator::begin_domain(std::string label)
{
    ensure(active_domain_ == nullptr, "nested simulation domains");
    ensure(!started_, "domain carved after startup");
    auto d = std::make_unique<Domain>();
    d->label = std::move(label);
    d->queue = std::make_unique<EventQueue>();
    domains_.push_back(std::move(d));
    active_domain_ = domains_.back().get();
    return domains_.size() - 1;
}

void Simulator::end_domain()
{
    ensure(active_domain_ != nullptr, "end_domain without begin_domain");
    active_domain_ = nullptr;
}

void Simulator::await_domains(Tick wend) const
{
    // Spin with a yield per probe: windows are short and the wait ends
    // with the peer's release store, but correctness (and the 1-core CI
    // host) must not depend on having a core per thread.
    for (const auto& d : domains_) {
        while (d->done_clock.load(std::memory_order_acquire) < wend) {
            std::this_thread::yield();
        }
    }
}

void Simulator::sync_functional_reads(Tick t)
{
    if (!parallel_running_) {
        return;
    }
    // Every domain publishes its clock only at window completion, so once
    // this returns no domain appends to its journal until the root thread
    // releases the next window — the drains below run race-free.
    await_domains(window_end_);
    ++stat_fences_;
    for (auto& d : domains_) {
        if (d->drain_functional) {
            d->drain_functional(t);
        }
    }
}

RunResult Simulator::run_parallel(Tick max_tick)
{
    startup();
    exit_requested_ = false;
    exit_reason_.clear();

    ensure(quantum_ > 0, "parallel run without a cross-domain quantum");
    const Tick q = quantum_;
    const std::size_t nd = domains_.size();
    const auto nworkers =
        static_cast<unsigned>(std::min<std::size_t>(threads_ - 1, nd));

    for (auto& d : domains_) {
        d->events = 0;
        d->done_clock.store(0, std::memory_order_relaxed);
    }
    parallel_running_ = true;

    // Window-release protocol: the root thread writes window_end_, then
    // bumps `generation` (release). Workers spin on `generation`
    // (acquire), run each of their domains up to the window end, and
    // release-publish the domain clock. The acquire/release pairs carry
    // every cross-thread happens-before edge; all other cross-domain state
    // is only touched in the root thread's serial barrier section.
    std::atomic<std::uint64_t> generation{0};
    std::atomic<bool> quit{false};

    auto worker_body = [&, nworkers](unsigned w) {
        std::uint64_t seen = 0;
        for (;;) {
            while (generation.load(std::memory_order_acquire) == seen) {
                if (quit.load(std::memory_order_acquire)) {
                    return;
                }
                std::this_thread::yield();
            }
            ++seen;
            const Tick wend = window_end_;
            for (std::size_t i = w; i < nd; i += nworkers) {
                Domain& dom = *domains_[i];
                if (dom.install) {
                    dom.install(); // thread context (domain pools)
                }
                dom.events += dom.queue->run(wend - 1);
                dom.done_clock.store(wend, std::memory_order_release);
            }
        }
    };

    std::vector<std::thread> workers;
    workers.reserve(nworkers);
    for (unsigned w = 0; w < nworkers; ++w) {
        workers.emplace_back(worker_body, w);
    }

    RunResult res;
    std::uint64_t executed = 0;

    // The window grid is absolute (anchored at tick 0) so window
    // boundaries — and therefore handoff batching — are identical for
    // every thread count. The first boundary comes from the slowest
    // domain clock: every pending event sits at or after it.
    Tick min_now = queue_.now();
    for (auto& d : domains_) {
        min_now = std::min(min_now, d->queue->now());
    }
    Tick wend = align_down(min_now, q) + q;

    for (;;) {
        if (max_tick != kMaxTick && wend > max_tick) {
            wend = max_tick + 1; // final, clipped window
        }
        window_end_ = wend;
        generation.fetch_add(1, std::memory_order_release);

        // The root domain's window runs on this thread, overlapped with
        // the workers; the exit flag is observed between events exactly
        // as in the serial loop.
        const EventQueue::DrainOutcome outcome =
            queue_.drain(wend - 1, exit_requested_, executed);

        await_domains(wend);
        ++stat_barriers_;

        // Serial section: every domain is quiesced. Inject cross-domain
        // handoffs in registration order, then apply staged functional
        // writes in domain order — both deterministic.
        for (auto& hook : barrier_hooks_) {
            hook();
        }
        for (auto& d : domains_) {
            if (d->drain_functional) {
                d->drain_functional(wend - 1);
            }
        }

        if (outcome == EventQueue::DrainOutcome::stopped) {
            res.cause = ExitCause::exit_requested;
            res.exit_reason = exit_reason_;
            break;
        }

        // Skip-ahead: derive the next window from the earliest pending
        // event anywhere (flushed handoffs included — they are scheduled
        // by the hooks above). Deterministic: quiesced state only.
        Tick next = queue_.next_event_tick();
        for (auto& d : domains_) {
            next = std::min(next, d->queue->next_event_tick());
        }
        if (next == kMaxTick) {
            res.cause = ExitCause::queue_drained;
            break;
        }
        if (next > max_tick) {
            res.cause = ExitCause::horizon_reached;
            if (queue_.now() < max_tick) {
                queue_.warp_to(max_tick);
            }
            for (auto& d : domains_) {
                if (d->queue->now() < max_tick) {
                    d->queue->warp_to(max_tick);
                }
            }
            break;
        }
        wend = align_down(next, q) + q;
    }

    quit.store(true, std::memory_order_release);
    for (auto& t : workers) {
        t.join();
    }
    parallel_running_ = false;

    res.end_tick = queue_.now();
    res.events = executed;
    for (auto& d : domains_) {
        res.events += d->events;
    }
    return res;
}

void Simulator::detach(SimObject& obj) noexcept
{
    objects_.erase(std::remove(objects_.begin(), objects_.end(), &obj),
                   objects_.end());
}

SimObject::SimObject(Simulator& sim, std::string name)
    : sim_(&sim),
      eq_(&sim.current_queue()),
      name_(std::move(name)),
      stats_(sim.stats(), name_)
{
    sim_->attach(*this);
}

SimObject::~SimObject()
{
    sim_->detach(*this);
}

} // namespace accesys
