#include "workload/gemm.hh"

namespace accesys::workload {

void init_gemm_data(mem::BackingStore& store, const GemmSpec& spec,
                    Addr a_addr, Addr bt_addr)
{
    Rng rng(spec.seed);
    std::vector<std::int8_t> buf;

    buf.resize(spec.a_bytes());
    for (auto& v : buf) {
        v = static_cast<std::int8_t>(rng.between(0, 255)) ;
    }
    store.write(a_addr, buf.data(), buf.size());

    buf.resize(spec.b_bytes());
    for (auto& v : buf) {
        v = static_cast<std::int8_t>(rng.between(0, 255));
    }
    store.write(bt_addr, buf.data(), buf.size());
}

std::vector<std::int32_t> gemm_golden(const mem::BackingStore& store,
                                      const GemmSpec& spec, Addr a_addr,
                                      Addr bt_addr)
{
    std::vector<std::int8_t> a(spec.a_bytes());
    std::vector<std::int8_t> bt(spec.b_bytes());
    store.read(a_addr, a.data(), a.size());
    store.read(bt_addr, bt.data(), bt.size());

    std::vector<std::int32_t> c(static_cast<std::size_t>(spec.m) * spec.n);
    for (std::uint32_t i = 0; i < spec.m; ++i) {
        for (std::uint32_t j = 0; j < spec.n; ++j) {
            std::int32_t acc = 0;
            const std::int8_t* ar = &a[static_cast<std::size_t>(i) * spec.k];
            const std::int8_t* bc =
                &bt[static_cast<std::size_t>(j) * spec.k];
            for (std::uint32_t kk = 0; kk < spec.k; ++kk) {
                acc += static_cast<std::int32_t>(ar[kk]) *
                       static_cast<std::int32_t>(bc[kk]);
            }
            c[static_cast<std::size_t>(i) * spec.n + j] = acc;
        }
    }
    return c;
}

std::uint64_t gemm_check(const mem::BackingStore& store, const GemmSpec& spec,
                         Addr c_addr,
                         const std::vector<std::int32_t>& golden)
{
    std::vector<std::int32_t> c(static_cast<std::size_t>(spec.m) * spec.n);
    store.read(c_addr, c.data(), c.size() * 4);
    std::uint64_t mismatches = 0;
    for (std::size_t i = 0; i < c.size(); ++i) {
        if (c[i] != golden[i]) {
            ++mismatches;
        }
    }
    return mismatches;
}

} // namespace accesys::workload
