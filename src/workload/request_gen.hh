// Open-loop request generator: the arrival source that drives the serving
// layer past saturation (ROADMAP "Serving under overload").
//
// A RequestGen precomputes its entire arrival schedule at construction —
// per-tenant seeded Poisson processes (or a trace file) merged into one
// globally ordered request list — and then replays it: a single
// self-rescheduling arrival event fires at each arrival tick so the open
// loop is visible in the event stream and the `reqgen.arrivals` stat, while
// the *consumer* (core::Runner::serve) drains requests by arrival tick via
// take_until().
//
// Determinism contract: the schedule is a pure function of the config (no
// libm — see det_neg_log), the arrival event lives on the root domain
// (RequestGen is constructed after the System, outside any domain scope),
// and consumption keys on ticks sampled inside the CPU program — never on
// how many arrival events have fired when run() returns, which differs
// between the serial and parallel run loops at round boundaries (a parallel
// window may fire root-domain events only up to the exit request, but the
// comparison point must be mode-independent). Any ACCESYS_THREADS value
// therefore sees the identical request stream.
#pragma once

#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "workload/gemm.hh"

namespace accesys::workload {

/// One tenant's share of the offered load.
struct TenantSpec {
    /// Stat-group suffix ("runner.serving.<name>"); must be unique and
    /// non-empty.
    std::string name;
    /// Poisson arrival rate (jobs/s). Ignored in trace mode.
    double rate_jobs_per_s = 0.0;
    /// Job shapes cycled round-robin over this tenant's arrivals
    /// (Poisson mode; trace lines carry their own shape).
    std::vector<GemmSpec> mix;
    /// End-to-end SLO used by ShedPolicy::deadline_aware: a queued job
    /// whose deadline can no longer be met is shed at dispatch time.
    /// 0 = no deadline (never deadline-shed).
    double deadline_ns = 0.0;
    /// Admission quota: max jobs this tenant may hold in the admission
    /// queue (0 = unlimited). Caps one tenant's burst so it cannot
    /// starve the fleet.
    std::size_t queue_quota = 0;
};

struct RequestGenConfig {
    enum class Mode {
        poisson, ///< seeded per-tenant exponential interarrival times
        trace,   ///< arrivals read from `trace_path`
    };
    Mode mode = Mode::poisson;
    std::uint64_t seed = 1;
    /// Poisson mode: arrivals are generated in [0, horizon_ns).
    double horizon_ns = 0.0;
    /// Cap on the merged schedule length (0 = unlimited).
    std::uint64_t max_requests = 0;
    /// Trace mode: text file, one arrival per line:
    ///   <arrival_ns> <tenant_idx> <m> <n> <k>
    /// '#' starts a comment; tenant_idx indexes `tenants`.
    std::string trace_path;
    std::vector<TenantSpec> tenants;

    void validate() const;
};

/// One scheduled arrival. `id` is the index into the merged schedule, so
/// ids are dense and arrival-ordered.
struct Request {
    std::uint64_t id = 0;
    std::uint32_t tenant = 0;
    Tick arrival = 0;
    GemmSpec spec{};
};

/// -ln(x) for x in (0, 1], deterministic across machines and toolchains:
/// committed serving goldens are byte-compared on CI, and libm's log()
/// varies by implementation in the last ULPs. Uses only exactly-rounded
/// +,-,*,/ (plus the exact frexp exponent split) with fixed literal
/// constants, so every conforming IEEE-754 double implementation produces
/// the same bits.
[[nodiscard]] double det_neg_log(double x);

class RequestGen : public SimObject {
  public:
    RequestGen(Simulator& sim, RequestGenConfig cfg);

    [[nodiscard]] const RequestGenConfig& config() const noexcept
    {
        return cfg_;
    }
    /// The full merged arrival schedule, ordered by (arrival, tenant).
    [[nodiscard]] const std::vector<Request>& schedule() const noexcept
    {
        return sched_;
    }
    [[nodiscard]] std::uint64_t total() const noexcept
    {
        return sched_.size();
    }
    /// Requests consumed by take_until() so far.
    [[nodiscard]] std::uint64_t drained() const noexcept { return drained_; }
    [[nodiscard]] bool exhausted() const noexcept
    {
        return drained_ >= sched_.size();
    }
    /// Arrival tick of the next unconsumed request (kMaxTick when
    /// exhausted) — the idle-round advance target.
    [[nodiscard]] Tick next_arrival_tick() const noexcept
    {
        return exhausted() ? kMaxTick : sched_[drained_].arrival;
    }

    /// Consume every unconsumed request with arrival <= `t`, in schedule
    /// order. `t` must be a tick sampled inside the CPU program (identical
    /// in serial and parallel runs); see the determinism note above.
    std::vector<const Request*> take_until(Tick t);

    void startup() override;
    void serialize(Ckpt& ar) override;

  private:
    void build_poisson();
    void build_trace();
    void finalize_schedule();
    void on_arrival();

    RequestGenConfig cfg_;
    std::vector<Request> sched_;
    std::uint64_t fired_ = 0;   ///< arrival events dispatched
    std::uint64_t drained_ = 0; ///< host-side consumption cursor
    Event arrival_ev_;

    stats::Scalar arrivals_{stat_group(), "arrivals",
                            "open-loop arrival events fired"};
    stats::Scalar scheduled_{stat_group(), "scheduled",
                             "requests in the precomputed schedule"};
};

} // namespace accesys::workload
