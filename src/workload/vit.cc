#include "workload/vit.hh"

#include <algorithm>

#include "sim/error.hh"

namespace accesys::workload {

VitConfig VitConfig::base()
{
    return VitConfig{"ViT-Base", 12, 768, 12, 4, 197};
}

VitConfig VitConfig::large()
{
    return VitConfig{"ViT-Large", 24, 1024, 16, 4, 197};
}

VitConfig VitConfig::huge()
{
    return VitConfig{"ViT-Huge", 32, 1280, 16, 4, 197};
}

VitConfig VitConfig::by_name(const std::string& name)
{
    if (name == "base" || name == "ViT-Base") {
        return base();
    }
    if (name == "large" || name == "ViT-Large") {
        return large();
    }
    if (name == "huge" || name == "ViT-Huge") {
        return huge();
    }
    throw ConfigError("unknown ViT model: " + name);
}

namespace {

VitOp gemm(std::string label, std::uint32_t m, std::uint32_t n,
           std::uint32_t k)
{
    VitOp op;
    op.kind = VitOp::Kind::gemm;
    op.label = std::move(label);
    op.m = m;
    op.n = n;
    op.k = k;
    return op;
}

VitOp vec(std::string label, std::uint64_t bytes_in, std::uint64_t bytes_out,
          std::uint64_t alu_ops)
{
    VitOp op;
    op.kind = VitOp::Kind::vector;
    op.label = std::move(label);
    op.bytes_in = bytes_in;
    op.bytes_out = bytes_out;
    op.alu_ops = alu_ops;
    return op;
}

} // namespace

std::vector<VitOp> lower_vit(const VitConfig& cfg)
{
    std::vector<VitOp> ops;
    const std::uint64_t s = cfg.seq;
    const std::uint64_t h = cfg.hidden;
    const std::uint64_t d = cfg.head_dim();
    const std::uint64_t mlp = static_cast<std::uint64_t>(cfg.mlp_ratio) * h;
    const std::uint64_t sh = s * h;

    for (unsigned layer = 0; layer < cfg.layers; ++layer) {
        const std::string p = "L" + std::to_string(layer) + ".";

        // LayerNorm 1: int8 in/out, ~8 ops/element in fp32 internally.
        ops.push_back(vec(p + "ln1", sh, sh, 8 * sh));

        // QKV projections.
        for (const char* which : {"q", "k", "v"}) {
            ops.push_back(gemm(p + which + "_proj", cfg.seq, cfg.hidden,
                               cfg.hidden));
        }
        // Requantise QKV (int32 -> int8).
        ops.push_back(vec(p + "qkv_requant", 3 * sh * 4, 3 * sh, 2 * 3 * sh));

        // Attention scores per head: (S x D) x (D x S).
        for (unsigned head = 0; head < cfg.heads; ++head) {
            ops.push_back(gemm(p + "scores.h" + std::to_string(head),
                               cfg.seq, cfg.seq,
                               static_cast<std::uint32_t>(d)));
        }
        // Softmax over all heads (int32 in, int8 out).
        const std::uint64_t att = s * s * cfg.heads;
        ops.push_back(vec(p + "softmax", att * 4, att, 6 * att));

        // Context per head: (S x S) x (S x D).
        for (unsigned head = 0; head < cfg.heads; ++head) {
            ops.push_back(gemm(p + "context.h" + std::to_string(head),
                               cfg.seq, static_cast<std::uint32_t>(d),
                               cfg.seq));
        }
        // Concatenate heads and requantise.
        ops.push_back(vec(p + "ctx_requant", sh * 4, sh, 2 * sh));

        // Output projection + requant + residual.
        ops.push_back(gemm(p + "out_proj", cfg.seq, cfg.hidden, cfg.hidden));
        ops.push_back(vec(p + "out_requant", sh * 4, sh, 2 * sh));
        ops.push_back(vec(p + "residual1", 2 * sh, sh, sh));

        // LayerNorm 2.
        ops.push_back(vec(p + "ln2", sh, sh, 8 * sh));

        // MLP: FC1 -> GELU -> FC2 -> requant -> residual.
        ops.push_back(gemm(p + "fc1", cfg.seq,
                           static_cast<std::uint32_t>(mlp), cfg.hidden));
        ops.push_back(vec(p + "gelu", s * mlp * 4, s * mlp, 8 * s * mlp));
        ops.push_back(gemm(p + "fc2", cfg.seq, cfg.hidden,
                           static_cast<std::uint32_t>(mlp)));
        ops.push_back(vec(p + "fc2_requant", sh * 4, sh, 2 * sh));
        ops.push_back(vec(p + "residual2", 2 * sh, sh, sh));
    }
    return ops;
}

VitSummary summarize(const std::vector<VitOp>& ops)
{
    VitSummary sum;
    for (const auto& op : ops) {
        if (op.kind == VitOp::Kind::gemm) {
            ++sum.gemm_count;
            sum.gemm_macs += static_cast<double>(op.m) * op.n * op.k;
            sum.max_gemm_operand_bytes =
                std::max({sum.max_gemm_operand_bytes, op.a_bytes(),
                          op.b_bytes(), op.c_bytes()});
        } else {
            ++sum.vector_count;
            sum.vector_bytes += op.bytes_in + op.bytes_out;
            sum.vector_alu_ops += op.alu_ops;
        }
    }
    return sum;
}

} // namespace accesys::workload
