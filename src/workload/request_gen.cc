#include "workload/request_gen.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "sim/random.hh"
#include "sim/serialize.hh"

namespace accesys::workload {

void RequestGenConfig::validate() const
{
    ensure(!tenants.empty(), "RequestGen with no tenants");
    for (std::size_t i = 0; i < tenants.size(); ++i) {
        const TenantSpec& t = tenants[i];
        ensure(!t.name.empty(), "tenant ", i, " has an empty name");
        for (std::size_t j = 0; j < i; ++j) {
            ensure(tenants[j].name != t.name, "duplicate tenant name '",
                   t.name, "'");
        }
        ensure(t.deadline_ns >= 0.0, "tenant '", t.name,
               "' has a negative deadline");
        if (mode == Mode::poisson) {
            ensure(t.rate_jobs_per_s > 0.0, "tenant '", t.name,
                   "' has no arrival rate in poisson mode");
            ensure(!t.mix.empty(), "tenant '", t.name,
                   "' has an empty job mix in poisson mode");
            for (const GemmSpec& s : t.mix) {
                ensure(s.m > 0 && s.n > 0 && s.k > 0,
                       "degenerate GEMM spec in tenant '", t.name,
                       "' mix");
            }
        }
    }
    if (mode == Mode::poisson) {
        ensure(horizon_ns > 0.0, "poisson mode needs a horizon");
    } else {
        ensure(!trace_path.empty(), "trace mode needs a trace_path");
    }
}

double det_neg_log(double x)
{
    ensure(x > 0.0 && x <= 1.0, "det_neg_log domain is (0, 1]");
    if (x == 1.0) {
        return 0.0;
    }
    // x = f * 2^e with f in [0.5, 1): frexp is an exact bit manipulation.
    // ln x = e*ln2 + 2*atanh(z) with z = (f-1)/(f+1) in [-1/3, 0); the
    // atanh series' terms shrink by >= 9x each, so 9 terms leave a
    // relative error around 1e-9 — far below anything the tick-quantized
    // arrival times can resolve, and bit-stable because every operation
    // here is an exactly-rounded IEEE-754 primitive.
    int e = 0;
    const double f = std::frexp(x, &e);
    const double z = (f - 1.0) / (f + 1.0);
    const double z2 = z * z;
    double term = z;
    double sum = z;
    for (int k = 1; k <= 8; ++k) {
        term *= z2;
        sum += term / (2.0 * static_cast<double>(k) + 1.0);
    }
    constexpr double kLn2 = 0.6931471805599453; // 0x1.62e42fefa39efp-1
    const double ln = static_cast<double>(e) * kLn2 + 2.0 * sum;
    return ln >= 0.0 ? 0.0 : -ln;
}

RequestGen::RequestGen(Simulator& sim, RequestGenConfig cfg)
    : SimObject(sim, "reqgen"),
      cfg_(std::move(cfg)),
      arrival_ev_("reqgen.arrival", [this] { on_arrival(); })
{
    cfg_.validate();
    if (cfg_.mode == RequestGenConfig::Mode::poisson) {
        build_poisson();
    } else {
        build_trace();
    }
    finalize_schedule();
    scheduled_.set(static_cast<double>(sched_.size()));
}

void RequestGen::build_poisson()
{
    for (std::size_t t = 0; t < cfg_.tenants.size(); ++t) {
        const TenantSpec& tenant = cfg_.tenants[t];
        // Disjoint per-tenant streams: reseed() spreads via splitmix64, so
        // a simple odd-multiplier offset is enough to decorrelate them.
        Rng rng(cfg_.seed + 0x9E3779B97F4A7C15ULL * (t + 1));
        const double mean_gap_ns = 1e9 / tenant.rate_jobs_per_s;
        double t_ns = 0.0;
        std::uint64_t count = 0;
        for (;;) {
            // uniform() is in [0, 1); 1-u is in (0, 1] — det_neg_log's
            // domain — and -ln(1-u)*mean is the exponential interarrival.
            const double u = rng.uniform();
            t_ns += det_neg_log(1.0 - u) * mean_gap_ns;
            if (t_ns >= cfg_.horizon_ns) {
                break;
            }
            Request r;
            r.tenant = static_cast<std::uint32_t>(t);
            r.arrival = ticks_from_ns(t_ns);
            r.spec = tenant.mix[count % tenant.mix.size()];
            ++count;
            sched_.push_back(r);
        }
    }
}

void RequestGen::build_trace()
{
    std::ifstream in(cfg_.trace_path);
    ensure(in.good(), "cannot open request trace '", cfg_.trace_path, "'");
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos) {
            line.resize(hash);
        }
        std::istringstream is(line);
        double arrival_ns = 0.0;
        std::size_t tenant = 0;
        GemmSpec spec;
        if (!(is >> arrival_ns)) {
            continue; // blank / comment-only line
        }
        ensure(static_cast<bool>(is >> tenant >> spec.m >> spec.n >> spec.k),
               "malformed trace line ", lineno, " in '", cfg_.trace_path,
               "' (want: arrival_ns tenant m n k)");
        ensure(tenant < cfg_.tenants.size(), "trace line ", lineno,
               " names tenant ", tenant, " but only ",
               cfg_.tenants.size(), " are configured");
        ensure(arrival_ns >= 0.0, "trace line ", lineno,
               " has a negative arrival time");
        ensure(spec.m > 0 && spec.n > 0 && spec.k > 0, "trace line ",
               lineno, " has a degenerate GEMM shape");
        Request r;
        r.tenant = static_cast<std::uint32_t>(tenant);
        r.arrival = ticks_from_ns(arrival_ns);
        r.spec = spec;
        sched_.push_back(r);
    }
}

void RequestGen::finalize_schedule()
{
    // Merge per-tenant streams into one global order. stable_sort keeps
    // same-(tick, tenant) trace lines in file order; ids are then dense
    // and arrival-ordered, so the consumer's ledger can index by id.
    std::stable_sort(sched_.begin(), sched_.end(),
                     [](const Request& a, const Request& b) {
                         return a.arrival != b.arrival
                                    ? a.arrival < b.arrival
                                    : a.tenant < b.tenant;
                     });
    if (cfg_.max_requests > 0 && sched_.size() > cfg_.max_requests) {
        sched_.resize(cfg_.max_requests);
    }
    for (std::size_t i = 0; i < sched_.size(); ++i) {
        sched_[i].id = i;
        // Distinct operand data per job: splitmix-style spread of the id
        // over the configured seed.
        std::uint64_t z = cfg_.seed + 0x9E3779B97F4A7C15ULL * (i + 1);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        sched_[i].spec.seed = z ^ (z >> 31);
    }
}

void RequestGen::startup()
{
    if (fired_ < sched_.size() && !arrival_ev_.scheduled()) {
        SimObject::schedule(arrival_ev_, sched_[fired_].arrival);
    }
}

void RequestGen::on_arrival()
{
    ++arrivals_;
    ++fired_;
    if (fired_ < sched_.size()) {
        SimObject::schedule(arrival_ev_, sched_[fired_].arrival);
    }
}

std::vector<const Request*> RequestGen::take_until(Tick t)
{
    std::vector<const Request*> out;
    while (drained_ < sched_.size() && sched_[drained_].arrival <= t) {
        out.push_back(&sched_[drained_]);
        ++drained_;
    }
    return out;
}

void RequestGen::serialize(Ckpt& ar)
{
    ar.io(fired_, drained_);
    arrival_ev_.serialize(ar, eq());
}

} // namespace accesys::workload
