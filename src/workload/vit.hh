// Vision Transformer workload models (paper §IV-B) and their lowering to
// the operations the simulated system executes.
//
// Each encoder layer lowers to GEMM ops (offloaded to the accelerator) and
// Non-GEMM vector ops (LayerNorm, softmax, GELU, requantisation, residual
// adds) executed by the host CPU — the split the paper profiles in §V-D.
//
// Data convention: activations and weights are int8; GEMM outputs are int32
// and the CPU's requantisation ops read them back to int8 (that is the
// 4-byte-in / 1-byte-out traffic of the requant vector ops).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace accesys::workload {

struct VitConfig {
    std::string name;
    unsigned layers = 12;
    unsigned hidden = 768;
    unsigned heads = 12;
    unsigned mlp_ratio = 4;
    unsigned seq = 197; ///< 14x14 patches + CLS token

    [[nodiscard]] unsigned head_dim() const { return hidden / heads; }

    /// Paper §IV-B: ViT base / large / huge.
    [[nodiscard]] static VitConfig base();
    [[nodiscard]] static VitConfig large();
    [[nodiscard]] static VitConfig huge();
    [[nodiscard]] static VitConfig by_name(const std::string& name);
};

struct VitOp {
    enum class Kind { gemm, vector };
    Kind kind = Kind::gemm;
    std::string label;

    // kind == gemm
    std::uint32_t m = 0;
    std::uint32_t n = 0;
    std::uint32_t k = 0;

    // kind == vector
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t alu_ops = 0;

    [[nodiscard]] std::uint64_t a_bytes() const
    {
        return static_cast<std::uint64_t>(m) * k;
    }
    [[nodiscard]] std::uint64_t b_bytes() const
    {
        return static_cast<std::uint64_t>(n) * k;
    }
    [[nodiscard]] std::uint64_t c_bytes() const
    {
        return static_cast<std::uint64_t>(m) * n * 4;
    }
};

/// Lower a full inference (all encoder layers) to an ordered op list.
[[nodiscard]] std::vector<VitOp> lower_vit(const VitConfig& cfg);

struct VitSummary {
    double gemm_macs = 0;
    std::uint64_t gemm_count = 0;
    std::uint64_t vector_count = 0;
    std::uint64_t vector_bytes = 0;
    std::uint64_t vector_alu_ops = 0;
    std::uint64_t max_gemm_operand_bytes = 0; ///< largest single operand
};

[[nodiscard]] VitSummary summarize(const std::vector<VitOp>& ops);

} // namespace accesys::workload
