// GEMM workload specification, data initialisation and golden model.
//
// Operand layout matches the accelerator's expectations:
//   A   : m x k int8, row-major
//   B_T : n x k int8, row-major (B stored transposed — MatrixFlow's
//         streaming-friendly layout)
//   C   : m x n int32, row-major
#pragma once

#include <cstdint>
#include <vector>

#include "mem/backing_store.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace accesys::workload {

struct GemmSpec {
    std::uint32_t m = 0;
    std::uint32_t n = 0;
    std::uint32_t k = 0;
    std::uint64_t seed = 1;

    [[nodiscard]] std::uint64_t a_bytes() const
    {
        return static_cast<std::uint64_t>(m) * k;
    }
    [[nodiscard]] std::uint64_t b_bytes() const
    {
        return static_cast<std::uint64_t>(n) * k;
    }
    [[nodiscard]] std::uint64_t c_bytes() const
    {
        return static_cast<std::uint64_t>(m) * n * 4;
    }
    [[nodiscard]] double macs() const
    {
        return static_cast<double>(m) * n * k;
    }
};

/// Fill A and B_T with seeded pseudo-random int8 values.
void init_gemm_data(mem::BackingStore& store, const GemmSpec& spec,
                    Addr a_addr, Addr bt_addr);

/// Reference result computed directly (row-major m x n int32).
[[nodiscard]] std::vector<std::int32_t> gemm_golden(
    const mem::BackingStore& store, const GemmSpec& spec, Addr a_addr,
    Addr bt_addr);

/// Compare the accelerator's C against `golden`; returns mismatch count.
[[nodiscard]] std::uint64_t gemm_check(const mem::BackingStore& store,
                                       const GemmSpec& spec, Addr c_addr,
                                       const std::vector<std::int32_t>& golden);

} // namespace accesys::workload
