// Timing host CPU executing an explicit operation trace.
//
// The evaluation never depends on ISA details — only on *where* Non-GEMM
// operators execute and which memory they touch (paper §V-D). The CPU
// therefore executes a program of abstract ops:
//
//   * MmioWrite  — uncacheable 8-byte write (doorbell) through the fabric;
//   * PollFlag   — cacheable 8-byte read repeated until the flag matches
//                  (the DMA'd completion flag invalidates the polled line
//                  via bus snooping, which is what makes polling cheap);
//   * VectorOp   — a Non-GEMM operator: streams `bytes_in` line-granular
//                  reads and `bytes_out` posted writes through the cache
//                  port while an ALU pipe (simd_lanes elems/cycle) grinds
//                  `alu_ops` operations; completes when both finish;
//   * Delay      — fixed busy cycles;
//   * Call       — zero-time host hook (phase markers, descriptor setup).
//
// Ops run strictly in order (an in-order core with a small memory window).
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "mem/addr_range.hh"
#include "mem/backing_store.hh"
#include "mem/port.hh"
#include "sim/simulator.hh"

namespace accesys::cpu {

struct CpuParams {
    double freq_ghz = 1.0;     ///< paper Table II: ARM, 1 GHz
    unsigned mem_window = 8;   ///< outstanding line requests in vector ops
    /// Outstanding window for uncacheable targets (device memory). Uncached
    /// accesses are strongly ordered on real cores, so only a handful can
    /// be in flight — the source of the paper's NUMA penalty (Fig. 8).
    unsigned uncacheable_window = 4;
    std::uint32_t line_bytes = 64;
    unsigned simd_lanes = 4;   ///< ALU elements per cycle
    unsigned poll_interval_cycles = 50;
    /// Missed polls back off exponentially up to this cap (models a driver
    /// easing off the flag; keeps long offloads cheap to simulate).
    unsigned poll_interval_max_cycles = 8192;
    /// Liveness watchdog: a single PollFlag op issuing more than this many
    /// reads without a match raises a diagnostic SimError instead of
    /// spinning forever (a flag that can never arrive — e.g. the job went
    /// to a latched-failed link — with timeout_ns=0 would otherwise poll
    /// until the heat death of the host). 0 = unlimited.
    std::uint64_t max_polls_per_op = 0;

    void validate() const;
};

struct MmioWrite {
    Addr addr = 0;
    std::uint64_t value = 0;
};

struct PollFlag {
    Addr addr = 0;
    std::uint64_t expected = 1;
    /// Give-up budget: after this many ns without a match the poll op
    /// completes anyway (the driver's job timeout). 0 = poll forever.
    /// Callers decide success by reading the flag after the run.
    double timeout_ns = 0.0;
};

struct VectorOp {
    std::string label;
    Addr in_addr = 0;
    std::uint64_t bytes_in = 0;
    Addr out_addr = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t alu_ops = 0;
};

struct Delay {
    Cycles cycles = 0;
};

struct Call {
    std::function<void()> fn;
};

using CpuOp = std::variant<MmioWrite, PollFlag, VectorOp, Delay, Call>;

class HostCpu final : public SimObject,
                      public Clocked,
                      private mem::Requestor {
  public:
    HostCpu(Simulator& sim, std::string name, const CpuParams& params,
            mem::BackingStore& store);

    /// Port toward the L1D cache (or directly to the fabric in tests).
    [[nodiscard]] mem::RequestPort& mem_port() noexcept { return port_; }

    /// Addresses in these ranges are accessed uncacheably (MMIO, DevMem).
    void add_uncacheable_range(mem::AddrRange range)
    {
        uncacheable_.push_back(range);
    }

    /// Execute `ops` in order; `on_done` fires after the last one.
    void run_program(std::vector<CpuOp> ops, std::function<void()> on_done);

    [[nodiscard]] bool idle() const noexcept { return !running_; }

    /// Checkpoint/restore execution position and in-op progress. The
    /// program itself (ops + completion closure) is not serialized: the
    /// caller re-runs the identical dispatch before restore (see
    /// core::Runner), and this overwrites pc_/progress on top of it.
    void serialize(Ckpt& ar) override;
    void report_occupancy(std::string& out) const override;

  private:
    bool recv_resp(mem::PacketPtr& pkt) override;
    void retry_req() override
    {
        blocked_ = false;
        // Only vector ops use backpressured streaming; a retry can only be
        // pending while one is current.
        if (pc_ < program_.size() &&
            std::holds_alternative<VectorOp>(program_[pc_])) {
            pump_vector();
        }
    }

    void next_op();
    void exec_current();
    void on_wake();
    void pump_vector();
    void vector_maybe_done();
    void issue_poll();
    [[nodiscard]] bool is_uncacheable(Addr addr) const;
    [[nodiscard]] bool send(mem::PacketPtr& pkt);

    CpuParams params_;
    mem::BackingStore* store_;
    mem::RequestPort port_;
    std::uint32_t requestor_id_;
    std::vector<mem::AddrRange> uncacheable_;

    std::vector<CpuOp> program_;
    std::function<void()> on_done_;
    std::size_t pc_ = 0;
    bool running_ = false;
    bool blocked_ = false;
    bool delay_pending_ = false;
    unsigned poll_backoff_ = 0; ///< current poll interval (cycles)
    Tick poll_deadline_ = kMaxTick; ///< give-up tick of the current poll
    std::uint64_t polls_this_op_ = 0; ///< liveness cap (max_polls_per_op)

    // Vector-op progress.
    std::uint64_t vec_read_issued_ = 0;
    std::uint64_t vec_read_done_ = 0; ///< responses received (diagnostics)
    std::uint64_t vec_write_issued_ = 0;
    unsigned vec_inflight_ = 0;
    Tick vec_alu_done_ = 0;
    bool vec_reads_complete_ = false;

    Event wake_event_{"", nullptr};
    Event poll_event_{"", nullptr};
    Event alu_event_{"", nullptr}; ///< vector-op ALU pipe completion

    stats::Scalar n_mmio_writes_{stat_group(), "mmio_writes",
                                 "doorbell/MMIO writes"};
    stats::Scalar n_polls_{stat_group(), "polls", "flag poll reads"};
    stats::Scalar n_vector_ops_{stat_group(), "vector_ops",
                                "Non-GEMM vector ops executed"};
    stats::Scalar vec_bytes_{stat_group(), "vector_bytes",
                             "bytes streamed by vector ops"};
    stats::Scalar busy_ticks_{stat_group(), "busy_ticks",
                              "ticks spent in program execution"};
};

} // namespace accesys::cpu
