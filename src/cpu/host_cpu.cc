#include "cpu/host_cpu.hh"

#include <algorithm>

#include "sim/serialize.hh"

namespace accesys::cpu {

namespace {

/// Response-tag namespace: distinguishes what a returning packet was for.
enum : std::uint64_t {
    kTagMmio = 1,
    kTagPoll = 2,
    kTagVecRead = 3,
};

} // namespace

void CpuParams::validate() const
{
    require_cfg(freq_ghz > 0, "CPU frequency must be positive");
    require_cfg(mem_window >= 1, "CPU memory window must be >= 1");
    require_cfg(is_pow2(line_bytes) && line_bytes >= 16,
                "CPU line size must be a power of two >= 16");
    require_cfg(simd_lanes >= 1, "CPU needs at least one SIMD lane");
}

HostCpu::HostCpu(Simulator& sim, std::string name, const CpuParams& params,
                 mem::BackingStore& store)
    : SimObject(sim, std::move(name)),
      Clocked(period_from_ghz(params.freq_ghz)),
      params_(params),
      store_(&store),
      port_(this->name() + ".mem_port", *this),
      requestor_id_(mem::alloc_requestor_id())
{
    params_.validate();
    port_.set_fast_path(
        [](void* s, mem::PacketPtr& pkt) {
            return static_cast<HostCpu*>(s)->recv_resp(pkt);
        },
        [](void* s) { static_cast<HostCpu*>(s)->retry_req(); }, this);
    wake_event_.set_name(this->name() + ".wake");
    wake_event_.set_callback([this] { on_wake(); });
    poll_event_.set_name(this->name() + ".poll");
    poll_event_.set_callback([this] { issue_poll(); });
    alu_event_.set_name(this->name() + ".alu_done");
    alu_event_.set_callback([this] { vector_maybe_done(); });
}

void HostCpu::run_program(std::vector<CpuOp> ops,
                          std::function<void()> on_done)
{
    ensure(!running_, name(), ": program already running");
    program_ = std::move(ops);
    on_done_ = std::move(on_done);
    pc_ = 0;
    running_ = true;
    // Start at the next clock edge.
    schedule(wake_event_, next_edge(now()));
}

bool HostCpu::is_uncacheable(Addr addr) const
{
    return std::any_of(uncacheable_.begin(), uncacheable_.end(),
                       [addr](const mem::AddrRange& r) {
                           return r.contains(addr);
                       });
}

bool HostCpu::send(mem::PacketPtr& pkt)
{
    pkt->set_requestor(requestor_id_);
    pkt->flags.uncacheable = is_uncacheable(pkt->addr());
    return port_.send_req(pkt);
}

void HostCpu::next_op()
{
    ++pc_;
    if (pc_ >= program_.size()) {
        running_ = false;
        if (on_done_) {
            // Move first: the callback may start a new program.
            std::function<void()> cb = std::move(on_done_);
            cb();
        }
        return;
    }
    exec_current();
}

void HostCpu::exec_current()
{
    if (pc_ >= program_.size()) {
        next_op();
        return;
    }
    CpuOp& op = program_[pc_];

    if (auto* w = std::get_if<MmioWrite>(&op); w != nullptr) {
        ++n_mmio_writes_;
        auto pkt = mem::packet_pool().make_write(w->addr, 8);
        pkt->set_payload_value(w->value);
        pkt->set_tag(kTagMmio);
        pkt->flags.uncacheable = true;
        pkt->set_requestor(requestor_id_);
        const bool ok = port_.send_req(pkt);
        ensure(ok, name(), ": fabric refused an MMIO write");
        // Wait for the (posted-at-RC) ack before proceeding.
        return;
    }
    if (auto* p = std::get_if<PollFlag>(&op); p != nullptr) {
        polls_this_op_ = 0;
        poll_backoff_ = params_.poll_interval_cycles;
        poll_deadline_ = p->timeout_ns > 0
                             ? now() + ticks_from_ns(p->timeout_ns)
                             : kMaxTick;
        issue_poll();
        return;
    }
    if (auto* v = std::get_if<VectorOp>(&op); v != nullptr) {
        ++n_vector_ops_;
        vec_bytes_ += static_cast<double>(v->bytes_in + v->bytes_out);
        vec_read_issued_ = vec_read_done_ = vec_write_issued_ = 0;
        vec_inflight_ = 0;
        vec_reads_complete_ = v->bytes_in == 0;
        const Cycles alu_cycles =
            div_ceil(v->alu_ops, params_.simd_lanes);
        vec_alu_done_ = now() + cycles_to_ticks(alu_cycles);
        pump_vector();
        return;
    }
    if (auto* d = std::get_if<Delay>(&op); d != nullptr) {
        busy_ticks_ += static_cast<double>(cycles_to_ticks(d->cycles));
        delay_pending_ = true;
        schedule(wake_event_, now() + cycles_to_ticks(d->cycles));
        return;
    }
    if (auto* c = std::get_if<Call>(&op); c != nullptr) {
        if (c->fn) {
            c->fn();
        }
        next_op();
        return;
    }
    panic(name(), ": unknown CPU op");
}

void HostCpu::issue_poll()
{
    ensure(pc_ < program_.size() &&
               std::holds_alternative<PollFlag>(program_[pc_]),
           name(), ": poll issue outside a poll op (pc=", pc_, ")");
    const auto& p = std::get<PollFlag>(program_[pc_]);
    if (params_.max_polls_per_op != 0 &&
        ++polls_this_op_ > params_.max_polls_per_op) {
        throw SimError(strcat_msg(
            name(), ": poll of flag 0x", p.addr, " exceeded ",
            params_.max_polls_per_op,
            " reads without a match (liveness watchdog: the completion "
            "can no longer arrive); component occupancy:\n",
            sim().occupancy_report()));
    }
    ++n_polls_;
    auto pkt = mem::packet_pool().make_read(p.addr, 8);
    pkt->set_tag(kTagPoll);
    const bool ok = send(pkt);
    ensure(ok, name(), ": fabric refused a poll read");
}

void HostCpu::pump_vector()
{
    ensure(pc_ < program_.size() &&
               std::holds_alternative<VectorOp>(program_[pc_]),
           name(), ": pump_vector outside a vector op (pc=", pc_, ")");
    const auto& v = std::get<VectorOp>(program_[pc_]);
    const unsigned window = is_uncacheable(v.in_addr)
                                ? params_.uncacheable_window
                                : params_.mem_window;

    // Phase 1: stream reads (window-limited).
    while (vec_read_issued_ < v.bytes_in && !blocked_ &&
           vec_inflight_ < window) {
        const Addr addr = v.in_addr + vec_read_issued_;
        const auto chunk = static_cast<std::uint32_t>(std::min<std::uint64_t>(
            params_.line_bytes - addr % params_.line_bytes,
            v.bytes_in - vec_read_issued_));
        auto pkt = mem::packet_pool().make_read(addr, chunk);
        pkt->set_tag(kTagVecRead);
        if (!send(pkt)) {
            blocked_ = true;
            return;
        }
        vec_read_issued_ += chunk;
        ++vec_inflight_;
    }

    // Phase 2: once reads are done, stream posted writes.
    if (vec_reads_complete_) {
        while (vec_write_issued_ < v.bytes_out && !blocked_) {
            const Addr addr = v.out_addr + vec_write_issued_;
            const auto chunk =
                static_cast<std::uint32_t>(std::min<std::uint64_t>(
                    params_.line_bytes - addr % params_.line_bytes,
                    v.bytes_out - vec_write_issued_));
            auto pkt = mem::packet_pool().make_write(addr, chunk);
            pkt->flags.posted = true;
            if (!send(pkt)) {
                blocked_ = true;
                return;
            }
            vec_write_issued_ += chunk;
        }
        vector_maybe_done();
    }
}

void HostCpu::vector_maybe_done()
{
    ensure(pc_ < program_.size() &&
               std::holds_alternative<VectorOp>(program_[pc_]),
           name(), ": vector completion outside a vector op (pc=", pc_, ")");
    const auto& v = std::get<VectorOp>(program_[pc_]);
    const bool mem_done = vec_reads_complete_ &&
                          vec_write_issued_ >= v.bytes_out &&
                          vec_inflight_ == 0;
    if (!mem_done) {
        return;
    }
    if (now() < vec_alu_done_) {
        // Memory finished first; wait out the ALU pipe.
        if (!alu_event_.scheduled()) {
            schedule(alu_event_, vec_alu_done_);
        }
        return;
    }
    next_op();
}

void HostCpu::on_wake()
{
    if (delay_pending_) {
        delay_pending_ = false;
        next_op();
        return;
    }
    // Program start (run_program scheduled us at the next clock edge).
    exec_current();
}

bool HostCpu::recv_resp(mem::PacketPtr& pkt)
{
    switch (pkt->tag()) {
    case kTagMmio:
        pkt.reset();
        next_op();
        return true;

    case kTagPoll: {
        ensure(pc_ < program_.size() &&
                   std::holds_alternative<PollFlag>(program_[pc_]),
               name(), ": poll response outside a poll op (pc=", pc_, ")");
        const auto& p = std::get<PollFlag>(program_[pc_]);
        // Parallel mode: device->host completion flags are staged in
        // per-domain journals; fence so every write with tick <= now is
        // applied before the functional read (no-op in serial runs).
        sim().sync_functional_reads(now());
        const auto value = store_->read_obj<std::uint64_t>(p.addr);
        pkt.reset();
        if (value == p.expected) {
            next_op();
        } else if (now() >= poll_deadline_) {
            // Job timeout: the flag never arrived within the budget. Give
            // up on this poll so the program (and the other devices'
            // polls) can finish; the caller reads the flag to tell
            // success from timeout.
            next_op();
        } else {
            schedule(poll_event_, now() + cycles_to_ticks(poll_backoff_));
            poll_backoff_ = std::min(poll_backoff_ * 2,
                                     params_.poll_interval_max_cycles);
        }
        return true;
    }

    case kTagVecRead: {
        ensure(pc_ < program_.size() &&
                   std::holds_alternative<VectorOp>(program_[pc_]),
               name(), ": vector response outside a vector op (pc=", pc_,
               ")");
        const auto& v = std::get<VectorOp>(program_[pc_]);
        pkt.reset();
        ensure(vec_inflight_ > 0, name(), ": vector window underflow");
        --vec_inflight_;
        vec_read_done_ += 1;
        if (vec_read_issued_ >= v.bytes_in && vec_inflight_ == 0) {
            vec_reads_complete_ = true;
        }
        // pump_vector() drives phase 2 and completion; it may finish the op
        // and advance the program, so nothing may touch vector state after.
        pump_vector();
        return true;
    }

    default:
        panic(name(), ": response with unknown tag ", pkt->tag());
    }
}

void HostCpu::serialize(Ckpt& ar)
{
    std::uint64_t pc = pc_;
    ar.io(pc, running_, blocked_, delay_pending_, poll_backoff_,
          poll_deadline_, polls_this_op_, vec_read_issued_, vec_read_done_,
          vec_write_issued_, vec_inflight_, vec_alu_done_,
          vec_reads_complete_);
    pc_ = static_cast<std::size_t>(pc);
    port_.serialize(ar);
    wake_event_.serialize(ar, eq());
    poll_event_.serialize(ar, eq());
    alu_event_.serialize(ar, eq());
    if (ar.loading()) {
        ensure(!running_ || pc_ < program_.size(), name(),
               ": checkpointed pc ", pc_, " outside the re-dispatched "
               "program (", program_.size(),
               " ops) — restore needs the identical dispatch");
    }
}

void HostCpu::report_occupancy(std::string& out) const
{
    if (!running_) {
        return;
    }
    out += "  " + name() + ": op " + std::to_string(pc_) + "/" +
           std::to_string(program_.size()) +
           (blocked_ ? " (blocked on fabric)" : "") + ", vec_inflight=" +
           std::to_string(vec_inflight_) + "\n";
}

} // namespace accesys::cpu
