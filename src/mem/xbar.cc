#include "mem/xbar.hh"

#include <algorithm>

#include "sim/serialize.hh"

namespace accesys::mem {

namespace {

double ps_per_byte(double gbps)
{
    return 1000.0 / gbps;
}

} // namespace

/// Upstream side: receives requests from a requestor, sends responses back.
struct Xbar::InSide final : Responder {
    InSide(Xbar& xbar, std::uint16_t idx, const std::string& label)
        : xbar_(xbar),
          idx_(idx),
          rport(xbar.name() + "." + label, *this),
          resp_q(xbar.sim(), xbar.name() + "." + label + ".resp_q",
                 [](void* s, PacketPtr& pkt) {
                     return static_cast<InSide*>(s)->rport.send_resp(pkt);
                 },
                 this)
    {
        resp_q.set_drain_hook(
            [](void* s) { static_cast<InSide*>(s)->wake_waiters(); }, this);
        rport.set_fast_path(
            [](void* s, PacketPtr& pkt) {
                return static_cast<InSide*>(s)->recv_req(pkt);
            },
            [](void* s) { static_cast<InSide*>(s)->retry_resp(); }, this);
    }

    bool recv_req(PacketPtr& pkt) override
    {
        return xbar_.handle_req(idx_, pkt);
    }

    void retry_resp() override { resp_q.retry(); }

    void wake_waiters(); // defined after OutSide (calls into it)

    Xbar& xbar_;
    std::uint16_t idx_;
    ResponsePort rport;
    PacketQueue resp_q;
    Tick ser_free = 0;
    std::vector<OutSide*> resp_waiters;
};

/// Downstream side: sends requests to a responder, receives responses.
struct Xbar::OutSide final : Requestor {
    OutSide(Xbar& xbar, std::uint16_t idx, const std::string& label,
            AddrRange r, bool is_default)
        : xbar_(xbar),
          idx_(idx),
          range(r),
          deflt(is_default),
          qport(xbar.name() + "." + label, *this),
          req_q(xbar.sim(), xbar.name() + "." + label + ".req_q",
                [](void* s, PacketPtr& pkt) {
                    return static_cast<OutSide*>(s)->qport.send_req(pkt);
                },
                this)
    {
        req_q.set_drain_hook(
            [](void* s) { static_cast<OutSide*>(s)->wake_waiters(); }, this);
        qport.set_fast_path(
            [](void* s, PacketPtr& pkt) {
                return static_cast<OutSide*>(s)->recv_resp(pkt);
            },
            [](void* s) { static_cast<OutSide*>(s)->retry_req(); }, this);
    }

    bool recv_resp(PacketPtr& pkt) override
    {
        return xbar_.handle_resp(idx_, pkt);
    }

    void retry_req() override { req_q.retry(); }

    void grant_resp_retry() { qport.send_retry_resp(); }

    void wake_waiters()
    {
        if (req_q.size() < xbar_.params_.queue_capacity) {
            for (InSide* waiter : std::exchange(req_waiters, {})) {
                waiter->rport.send_retry_req();
            }
        }
    }

    Xbar& xbar_;
    std::uint16_t idx_;
    AddrRange range;
    bool deflt;
    RequestPort qport;
    PacketQueue req_q;
    Tick ser_free = 0;
    std::vector<InSide*> req_waiters;
};

void Xbar::InSide::wake_waiters()
{
    if (resp_q.size() < xbar_.params_.queue_capacity) {
        // Downstream ports that were refused a response slot.
        for (OutSide* waiter : std::exchange(resp_waiters, {})) {
            waiter->grant_resp_retry();
        }
    }
}

Xbar::Xbar(Simulator& sim, std::string name, const XbarParams& params)
    : SimObject(sim, std::move(name)), params_(params)
{
    require_cfg(params_.queue_capacity > 0, this->name(),
                ": zero queue capacity");
    require_cfg(params_.width_gbps > 0, this->name(), ": zero width");
    ps_per_byte_ = ps_per_byte(params_.width_gbps);
    req_lat_ticks_ = ticks_from_ns(params_.request_latency_ns);
    resp_lat_ticks_ = ticks_from_ns(params_.response_latency_ns);
}

Xbar::~Xbar() = default;

ResponsePort& Xbar::add_upstream(const std::string& label)
{
    ins_.push_back(std::make_unique<InSide>(
        *this, static_cast<std::uint16_t>(ins_.size()), label));
    return ins_.back()->rport;
}

RequestPort& Xbar::add_downstream(const std::string& label, AddrRange range)
{
    outs_.push_back(std::make_unique<OutSide>(
        *this, static_cast<std::uint16_t>(outs_.size()), label, range,
        false));
    // A memoised route answer predates this port; drop it so the next
    // lookup re-scans (guards against stale routing if ports are added
    // after traffic has flowed — see test_xbar RouteMemo tests).
    last_route_ = nullptr;
    return outs_.back()->qport;
}

RequestPort& Xbar::add_default_downstream(const std::string& label)
{
    require_cfg(default_out_ == nullptr, name(),
                ": only one default downstream port allowed");
    outs_.push_back(std::make_unique<OutSide>(
        *this, static_cast<std::uint16_t>(outs_.size()), label, AddrRange{},
        true));
    default_out_ = outs_.back().get();
    last_route_ = nullptr; // see add_downstream
    return default_out_->qport;
}

void Xbar::register_snooper(Snooper& snooper, const ResponsePort& via)
{
    for (const auto& in : ins_) {
        if (&in->rport == &via) {
            const Snooper::Occupancy occ = snooper.snoop_occupancy();
            snoopers_.push_back(
                SnoopEntry{&snooper, in->idx_, occ.valid, occ.dirty});
            return;
        }
    }
    throw ConfigError(name() + ": snooper port is not one of my upstreams");
}

void Xbar::startup()
{
    std::vector<AddrRange> ranges;
    for (const auto& out : outs_) {
        if (!out->deflt) {
            ranges.push_back(out->range);
        }
    }
    check_disjoint(ranges);
}

Xbar::OutSide* Xbar::route(Addr addr, std::uint32_t size)
{
    if (last_route_ != nullptr && last_route_range_.contains(addr, size)) {
        return last_route_;
    }
    for (const auto& out : outs_) {
        if (!out->deflt && out->range.contains(addr, size)) {
            last_route_ = out.get();
            last_route_range_ = out->range;
            return out.get();
        }
    }
    return default_out_;
}

void Xbar::distribute_snoops(std::uint16_t in_idx, const Packet& pkt)
{
    if (!params_.coherent || pkt.flags.uncacheable) {
        return;
    }
    for (const auto& entry : snoopers_) {
        if (entry.in_idx == in_idx) {
            continue; // don't reflect snoops at the initiator
        }
        ++n_snoops_;
        // Occupancy filter: when the snooper provably holds nothing the
        // snoop could touch, the virtual call would be a stat-free no-op —
        // skip it (n_snoops_ still counts the issued operation).
        if (pkt.is_write()) {
            if (entry.valid == nullptr || *entry.valid != 0) {
                entry.snooper->snoop_invalidate(pkt.addr(), pkt.size());
            }
        } else {
            if (entry.dirty == nullptr || *entry.dirty != 0) {
                entry.snooper->snoop_clean(pkt.addr(), pkt.size());
            }
        }
    }
}

bool Xbar::handle_req(std::uint16_t in_idx, PacketPtr& pkt)
{
    OutSide* out = route(pkt->addr(), pkt->size());
    if (out == nullptr) {
        panic(name(), ": no route for ", pkt->describe());
    }

    if (out->req_q.size() >= params_.queue_capacity) {
        ++retries_;
        InSide* in = ins_[in_idx].get();
        auto& waiters = out->req_waiters;
        if (std::find(waiters.begin(), waiters.end(), in) == waiters.end()) {
            waiters.push_back(in);
        }
        return false;
    }

    distribute_snoops(in_idx, *pkt);

    ++n_requests_;
    bytes_ += pkt->size();
    pkt->push_route(in_idx);

    out->ser_free = std::max(out->ser_free, now()) +
                    static_cast<Tick>(pkt->size() * ps_per_byte_);
    const Tick ready = out->ser_free + req_lat_ticks_;
    out->req_q.push(std::move(pkt), ready);
    return true;
}

bool Xbar::handle_resp(std::uint16_t out_idx, PacketPtr& pkt)
{
    ensure(pkt->route_depth() > 0, name(), ": response lost its route");
    // Peek the route without popping until we know we can accept.
    const std::uint16_t in_idx = pkt->pop_route();
    ensure(in_idx < ins_.size(), name(), ": bad route index");
    InSide* in = ins_[in_idx].get();

    if (in->resp_q.size() >= params_.queue_capacity) {
        pkt->push_route(in_idx); // restore for the retry
        OutSide* out = outs_[out_idx].get();
        auto& waiters = in->resp_waiters;
        if (std::find(waiters.begin(), waiters.end(), out) == waiters.end()) {
            waiters.push_back(out);
        }
        return false;
    }

    ++n_responses_;
    in->ser_free = std::max(in->ser_free, now()) +
                   static_cast<Tick>(pkt->size() * ps_per_byte_);
    const Tick ready = in->ser_free + resp_lat_ticks_;
    in->resp_q.push(std::move(pkt), ready);
    return true;
}

namespace {

// Retry-waiter lists hold raw pointers into ins_/outs_; checkpoint them as
// index lists and rebuild the pointers on load.
template <typename Side, typename Owner>
void ckpt_waiters(Ckpt& ar, std::vector<Side*>& waiters,
                  const std::vector<std::unique_ptr<Owner>>& pool)
{
    std::uint64_t n = waiters.size();
    ar.io(n);
    if (ar.saving()) {
        for (Side* w : waiters) {
            std::uint16_t idx = w->idx_;
            ar.io(idx);
        }
    } else {
        waiters.clear();
        for (std::uint64_t i = 0; i < n; ++i) {
            std::uint16_t idx = 0;
            ar.io(idx);
            ensure(idx < pool.size(), "xbar waiter index out of range");
            waiters.push_back(pool[idx].get());
        }
    }
}

} // namespace

void Xbar::serialize(Ckpt& ar)
{
    for (auto& in : ins_) {
        ar.io(in->ser_free);
        in->rport.serialize(ar);
        in->resp_q.serialize(ar);
        ckpt_waiters(ar, in->resp_waiters, outs_);
    }
    for (auto& out : outs_) {
        ar.io(out->ser_free);
        out->qport.serialize(ar);
        out->req_q.serialize(ar);
        ckpt_waiters(ar, out->req_waiters, ins_);
    }
    if (ar.loading()) {
        last_route_ = nullptr; // pure route memo; rebuilt on first lookup
    }
}

void Xbar::report_occupancy(std::string& out) const
{
    std::size_t req = 0;
    std::size_t resp = 0;
    std::size_t waiters = 0;
    for (const auto& in : ins_) {
        resp += in->resp_q.size();
        waiters += in->resp_waiters.size();
    }
    for (const auto& o : outs_) {
        req += o->req_q.size();
        waiters += o->req_waiters.size();
    }
    if (req == 0 && resp == 0 && waiters == 0) {
        return;
    }
    out += "  " + name() + ": req_queued=" + std::to_string(req) +
           ", resp_queued=" + std::to_string(resp) +
           ", retry_waiters=" + std::to_string(waiters) + "\n";
}

} // namespace accesys::mem
