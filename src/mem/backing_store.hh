// Sparse functional memory image shared by a whole simulated system.
//
// Timing packets carry no payload; endpoints read/write this store when a
// transaction logically completes. Storage is allocated lazily in fixed
// chunks so multi-GB address spaces cost only what is touched.
//
// Thread-safety (parallel event core): domains only ever touch disjoint
// byte ranges concurrently (device-local regions belong to their domain;
// device->host data is staged through per-domain WriteJournals and applied
// at barriers), so the payload bytes need no synchronization. The chunk
// *directory* is shared, though — a domain faulting in a device-memory
// chunk must not race the root thread probing a host chunk — so directory
// lookups take a shared lock and chunk creation an exclusive one. The
// last-chunk memo that keeps streaming accesses off the map entirely is
// thread-local (keyed by a never-reused store id), which keeps the fast
// path lock-free on every thread.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "sim/error.hh"
#include "sim/types.hh"

namespace accesys {
class Ckpt;
}

namespace accesys::mem {

namespace detail {

/// Per-thread last-chunk memo. Keyed by a unique store id (not the store
/// address) so a store recycled at the same address can never satisfy a
/// stale entry.
struct StoreMemo {
    std::uint64_t store_id = 0;
    std::uint64_t key = ~std::uint64_t{0};
    std::uint8_t* chunk = nullptr;
};
inline thread_local StoreMemo t_store_memo;

} // namespace detail

class BackingStore {
  public:
    static constexpr std::uint64_t kChunkBytes = 64 * kKiB;
    static constexpr std::uint64_t kChunkMask = kChunkBytes - 1;

    BackingStore() = default;
    BackingStore(const BackingStore&) = delete;
    BackingStore& operator=(const BackingStore&) = delete;

    void write(Addr addr, const void* src, std::uint64_t n)
    {
        const auto* p = static_cast<const std::uint8_t*>(src);
        const std::uint64_t off = addr & kChunkMask;
        if (off + n <= kChunkBytes) {
            // Single-chunk fast path: packet-sized accesses and streaming
            // DMA bursts land here — one memo probe, one memcpy.
            std::memcpy(chunk_for(addr) + off, p, n);
            return;
        }
        while (n > 0) {
            const std::uint64_t o = addr & kChunkMask;
            const std::uint64_t run = std::min(n, kChunkBytes - o);
            std::memcpy(chunk_for(addr) + o, p, run);
            addr += run;
            p += run;
            n -= run;
        }
    }

    void read(Addr addr, void* dst, std::uint64_t n) const
    {
        auto* p = static_cast<std::uint8_t*>(dst);
        const std::uint64_t off = addr & kChunkMask;
        if (off + n <= kChunkBytes) {
            const std::uint8_t* c = find_chunk(addr);
            if (c != nullptr) {
                std::memcpy(p, c + off, n);
            } else {
                std::memset(p, 0, n); // untouched memory reads as zero
            }
            return;
        }
        while (n > 0) {
            const std::uint64_t o = addr & kChunkMask;
            const std::uint64_t run = std::min(n, kChunkBytes - o);
            const std::uint8_t* c = find_chunk(addr);
            if (c != nullptr) {
                std::memcpy(p, c + o, run);
            } else {
                std::memset(p, 0, run); // untouched memory reads as zero
            }
            addr += run;
            p += run;
            n -= run;
        }
    }

    template <typename T>
    void write_obj(Addr addr, const T& v)
    {
        write(addr, &v, sizeof(T));
    }

    template <typename T>
    [[nodiscard]] T read_obj(Addr addr) const
    {
        T v;
        read(addr, &v, sizeof(T));
        return v;
    }

    /// Copy `n` bytes from `src` to `dst` within the store. Regions are
    /// copied chunk-to-chunk with no intermediate bounce buffer; an
    /// unallocated source chunk materialises as zeros at the destination.
    /// Overlapping same-chunk spans copy as if through a snapshot
    /// (memmove); cross-chunk overlap is the caller's problem, exactly as
    /// it was for the bounce-buffer version this replaces.
    void copy(Addr dst, Addr src, std::uint64_t n)
    {
        while (n > 0) {
            const std::uint64_t soff = src & kChunkMask;
            const std::uint64_t doff = dst & kChunkMask;
            const std::uint64_t run = std::min(
                n, kChunkBytes - std::max(soff, doff));
            const std::uint8_t* s = find_chunk(src);
            std::uint8_t* d = chunk_for(dst);
            if (s == nullptr) {
                std::memset(d + doff, 0, run);
            } else if (s + soff == d + doff) {
                // Same place: nothing to move.
            } else {
                std::memmove(d + doff, s + soff, run);
            }
            src += run;
            dst += run;
            n -= run;
        }
    }

    [[nodiscard]] std::size_t chunks_allocated() const
    {
        std::shared_lock rd(mu_);
        return chunks_.size();
    }

    /// Checkpoint/restore every allocated chunk (sorted by key so the
    /// byte stream is independent of directory iteration order). Load
    /// overwrites in place: workload setup re-touches a subset of the
    /// checkpointed chunks, never any others, so nothing is cleared.
    void serialize(Ckpt& ar);

  private:
    std::uint8_t* chunk_for(Addr addr)
    {
        const std::uint64_t key = addr / kChunkBytes;
        auto& memo = detail::t_store_memo;
        if (memo.store_id == id_ && memo.key == key) {
            return memo.chunk;
        }
        std::uint8_t* c = nullptr;
        {
            std::shared_lock rd(mu_);
            const auto it = chunks_.find(key);
            if (it != chunks_.end()) {
                c = it->second.get();
            }
        }
        if (c == nullptr) {
            std::unique_lock wr(mu_);
            auto& slot = chunks_[key];
            if (!slot) {
                slot = std::make_unique<std::uint8_t[]>(kChunkBytes);
                std::memset(slot.get(), 0, kChunkBytes);
            }
            c = slot.get();
        }
        memo = {id_, key, c};
        return c;
    }

    [[nodiscard]] const std::uint8_t* find_chunk(Addr addr) const
    {
        const std::uint64_t key = addr / kChunkBytes;
        auto& memo = detail::t_store_memo;
        if (memo.store_id == id_ && memo.key == key) {
            return memo.chunk;
        }
        std::uint8_t* c = nullptr;
        {
            std::shared_lock rd(mu_);
            const auto it = chunks_.find(key);
            if (it != chunks_.end()) {
                c = it->second.get();
            }
        }
        if (c != nullptr) {
            memo = {id_, key, c};
        }
        return c;
    }

    [[nodiscard]] static std::uint64_t next_store_id() noexcept
    {
        static std::atomic<std::uint64_t> n{0};
        return n.fetch_add(1, std::memory_order_relaxed) + 1;
    }

    std::unordered_map<std::uint64_t, std::unique_ptr<std::uint8_t[]>>
        chunks_;
    /// Guards the chunk directory only (chunk payloads are stable once
    /// allocated, so memoed pointers stay valid without the lock).
    mutable std::shared_mutex mu_;
    const std::uint64_t id_ = next_store_id();
};

} // namespace accesys::mem
