// Sparse functional memory image shared by a whole simulated system.
//
// Timing packets carry no payload; endpoints read/write this store when a
// transaction logically completes. Storage is allocated lazily in fixed
// chunks so multi-GB address spaces cost only what is touched.
#pragma once

#include <algorithm>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "sim/error.hh"
#include "sim/types.hh"

namespace accesys::mem {

class BackingStore {
  public:
    static constexpr std::uint64_t kChunkBytes = 64 * kKiB;
    static constexpr std::uint64_t kChunkMask = kChunkBytes - 1;

    BackingStore() = default;
    BackingStore(const BackingStore&) = delete;
    BackingStore& operator=(const BackingStore&) = delete;

    void write(Addr addr, const void* src, std::uint64_t n)
    {
        const auto* p = static_cast<const std::uint8_t*>(src);
        const std::uint64_t off = addr & kChunkMask;
        if (off + n <= kChunkBytes) {
            // Single-chunk fast path: packet-sized accesses and streaming
            // DMA bursts land here — one memo probe, one memcpy.
            std::memcpy(chunk_for(addr) + off, p, n);
            return;
        }
        while (n > 0) {
            const std::uint64_t o = addr & kChunkMask;
            const std::uint64_t run = std::min(n, kChunkBytes - o);
            std::memcpy(chunk_for(addr) + o, p, run);
            addr += run;
            p += run;
            n -= run;
        }
    }

    void read(Addr addr, void* dst, std::uint64_t n) const
    {
        auto* p = static_cast<std::uint8_t*>(dst);
        const std::uint64_t off = addr & kChunkMask;
        if (off + n <= kChunkBytes) {
            const std::uint8_t* c = find_chunk(addr);
            if (c != nullptr) {
                std::memcpy(p, c + off, n);
            } else {
                std::memset(p, 0, n); // untouched memory reads as zero
            }
            return;
        }
        while (n > 0) {
            const std::uint64_t o = addr & kChunkMask;
            const std::uint64_t run = std::min(n, kChunkBytes - o);
            const std::uint8_t* c = find_chunk(addr);
            if (c != nullptr) {
                std::memcpy(p, c + o, run);
            } else {
                std::memset(p, 0, run); // untouched memory reads as zero
            }
            addr += run;
            p += run;
            n -= run;
        }
    }

    template <typename T>
    void write_obj(Addr addr, const T& v)
    {
        write(addr, &v, sizeof(T));
    }

    template <typename T>
    [[nodiscard]] T read_obj(Addr addr) const
    {
        T v;
        read(addr, &v, sizeof(T));
        return v;
    }

    /// Copy `n` bytes from `src` to `dst` within the store. Regions are
    /// copied chunk-to-chunk with no intermediate bounce buffer; an
    /// unallocated source chunk materialises as zeros at the destination.
    /// Overlapping same-chunk spans copy as if through a snapshot
    /// (memmove); cross-chunk overlap is the caller's problem, exactly as
    /// it was for the bounce-buffer version this replaces.
    void copy(Addr dst, Addr src, std::uint64_t n)
    {
        while (n > 0) {
            const std::uint64_t soff = src & kChunkMask;
            const std::uint64_t doff = dst & kChunkMask;
            const std::uint64_t run = std::min(
                n, kChunkBytes - std::max(soff, doff));
            const std::uint8_t* s = find_chunk(src);
            std::uint8_t* d = chunk_for(dst);
            if (s == nullptr) {
                std::memset(d + doff, 0, run);
            } else if (s + soff == d + doff) {
                // Same place: nothing to move.
            } else {
                std::memmove(d + doff, s + soff, run);
            }
            src += run;
            dst += run;
            n -= run;
        }
    }

    [[nodiscard]] std::size_t chunks_allocated() const noexcept
    {
        return chunks_.size();
    }

  private:
    std::uint8_t* chunk_for(Addr addr)
    {
        const std::uint64_t key = addr / kChunkBytes;
        if (key == memo_key_ && memo_chunk_ != nullptr) {
            return memo_chunk_;
        }
        auto& slot = chunks_[key];
        if (!slot) {
            slot = std::make_unique<std::uint8_t[]>(kChunkBytes);
            std::memset(slot.get(), 0, kChunkBytes);
        }
        memo_key_ = key;
        memo_chunk_ = slot.get();
        return memo_chunk_;
    }

    [[nodiscard]] const std::uint8_t* find_chunk(Addr addr) const
    {
        const std::uint64_t key = addr / kChunkBytes;
        if (key == memo_key_ && memo_chunk_ != nullptr) {
            return memo_chunk_;
        }
        const auto it = chunks_.find(key);
        if (it == chunks_.end()) {
            return nullptr;
        }
        memo_key_ = key;
        memo_chunk_ = it->second.get();
        return memo_chunk_;
    }

    std::unordered_map<std::uint64_t, std::unique_ptr<std::uint8_t[]>>
        chunks_;
    // Last-chunk memo: accesses stream within a chunk (chunk storage is
    // stable once allocated). kChunkBytes-sized runs hit the map once.
    mutable std::uint64_t memo_key_ = ~std::uint64_t{0};
    mutable std::uint8_t* memo_chunk_ = nullptr;
};

} // namespace accesys::mem
