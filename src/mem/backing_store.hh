// Sparse functional memory image shared by a whole simulated system.
//
// Timing packets carry no payload; endpoints read/write this store when a
// transaction logically completes. Storage is allocated lazily in fixed
// chunks so multi-GB address spaces cost only what is touched.
#pragma once

#include <algorithm>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "sim/error.hh"
#include "sim/types.hh"

namespace accesys::mem {

class BackingStore {
  public:
    static constexpr std::uint64_t kChunkBytes = 64 * kKiB;

    BackingStore() = default;
    BackingStore(const BackingStore&) = delete;
    BackingStore& operator=(const BackingStore&) = delete;

    void write(Addr addr, const void* src, std::uint64_t n)
    {
        const auto* p = static_cast<const std::uint8_t*>(src);
        while (n > 0) {
            const std::uint64_t off = addr % kChunkBytes;
            const std::uint64_t run = std::min(n, kChunkBytes - off);
            std::memcpy(chunk_for(addr) + off, p, run);
            addr += run;
            p += run;
            n -= run;
        }
    }

    void read(Addr addr, void* dst, std::uint64_t n) const
    {
        auto* p = static_cast<std::uint8_t*>(dst);
        while (n > 0) {
            const std::uint64_t off = addr % kChunkBytes;
            const std::uint64_t run = std::min(n, kChunkBytes - off);
            const std::uint8_t* c = find_chunk(addr);
            if (c != nullptr) {
                std::memcpy(p, c + off, run);
            } else {
                std::memset(p, 0, run); // untouched memory reads as zero
            }
            addr += run;
            p += run;
            n -= run;
        }
    }

    template <typename T>
    void write_obj(Addr addr, const T& v)
    {
        write(addr, &v, sizeof(T));
    }

    template <typename T>
    [[nodiscard]] T read_obj(Addr addr) const
    {
        T v;
        read(addr, &v, sizeof(T));
        return v;
    }

    /// Copy `n` bytes from `src` to `dst` within the store.
    void copy(Addr dst, Addr src, std::uint64_t n)
    {
        // Chunked bounce copy; fine for simulation volumes.
        std::uint8_t buf[4096];
        while (n > 0) {
            const std::uint64_t run = std::min<std::uint64_t>(n, sizeof(buf));
            read(src, buf, run);
            write(dst, buf, run);
            src += run;
            dst += run;
            n -= run;
        }
    }

    [[nodiscard]] std::size_t chunks_allocated() const noexcept
    {
        return chunks_.size();
    }

  private:
    std::uint8_t* chunk_for(Addr addr)
    {
        const std::uint64_t key = addr / kChunkBytes;
        if (key == memo_key_ && memo_chunk_ != nullptr) {
            return memo_chunk_;
        }
        auto& slot = chunks_[key];
        if (!slot) {
            slot = std::make_unique<std::uint8_t[]>(kChunkBytes);
            std::memset(slot.get(), 0, kChunkBytes);
        }
        memo_key_ = key;
        memo_chunk_ = slot.get();
        return memo_chunk_;
    }

    [[nodiscard]] const std::uint8_t* find_chunk(Addr addr) const
    {
        const std::uint64_t key = addr / kChunkBytes;
        if (key == memo_key_ && memo_chunk_ != nullptr) {
            return memo_chunk_;
        }
        const auto it = chunks_.find(key);
        if (it == chunks_.end()) {
            return nullptr;
        }
        memo_key_ = key;
        memo_chunk_ = it->second.get();
        return memo_chunk_;
    }

    std::unordered_map<std::uint64_t, std::unique_ptr<std::uint8_t[]>>
        chunks_;
    // Last-chunk memo: accesses stream within a chunk (chunk storage is
    // stable once allocated). kChunkBytes-sized runs hit the map once.
    mutable std::uint64_t memo_key_ = ~std::uint64_t{0};
    mutable std::uint8_t* memo_chunk_ = nullptr;
};

} // namespace accesys::mem
