// Crossbar fabric: N upstream (requestor-facing) ports, M downstream
// (memory-facing) ports, address-range routing, bounded per-port queues with
// retry-based backpressure, per-port serialization, and optional snooping
// for coherence between caches attached upstream.
//
// Used as the system MemBus (coherent) and as plain interconnect elsewhere.
#pragma once

#include <memory>
#include <vector>

#include "mem/addr_range.hh"
#include "mem/port.hh"
#include "sim/simulator.hh"

namespace accesys::mem {

/// Implemented by caches that participate in bus-level coherence.
///
/// The bus calls these synchronously when traffic from *other* ports is
/// observed. The protocol is invalidation-based MSI-lite: functional data is
/// always coherent by construction (single BackingStore), so snoops only
/// maintain the timing-relevant cache state.
class Snooper {
  public:
    virtual ~Snooper() = default;

    /// Another agent writes [addr, addr+size): drop any overlapping lines.
    virtual void snoop_invalidate(Addr addr, std::uint32_t size) = 0;

    /// Another agent reads [addr, addr+size): demote dirty lines to clean.
    virtual void snoop_clean(Addr addr, std::uint32_t size) = 0;

    /// Optional occupancy counters (valid lines, dirty lines) the bus may
    /// read to skip the virtual snoop call when this snooper provably
    /// holds nothing a snoop could touch (an invalidate cannot find a
    /// line when *valid == 0; a clean cannot demote when *dirty == 0).
    /// The skipped call would have been a no-op — including on every
    /// stat — so the filter is invisible to results. Return {nullptr,
    /// nullptr} (the default) to always receive snoops.
    struct Occupancy {
        const std::uint64_t* valid = nullptr;
        const std::uint64_t* dirty = nullptr;
    };
    [[nodiscard]] virtual Occupancy snoop_occupancy() const
    {
        return {};
    }
};

struct XbarParams {
    double request_latency_ns = 3.0;  ///< decode/arbitration, request path
    double response_latency_ns = 3.0; ///< response path
    double width_gbps = 128.0;        ///< per-port serialization bandwidth
    std::size_t queue_capacity = 16;  ///< per port-direction
    bool coherent = false;            ///< enable snoop distribution
};

class Xbar final : public SimObject {
  public:
    Xbar(Simulator& sim, std::string name, const XbarParams& params);
    ~Xbar() override;

    /// Add an upstream-facing port; bind a requestor's RequestPort to it.
    ResponsePort& add_upstream(const std::string& label);

    /// Add a downstream port routing `range`; bind to a responder.
    RequestPort& add_downstream(const std::string& label, AddrRange range);

    /// Downstream port receiving any address no other range claims.
    RequestPort& add_default_downstream(const std::string& label);

    /// Register a snooping cache attached via upstream port `via` (snoops
    /// are not reflected back to their initiating port).
    void register_snooper(Snooper& snooper, const ResponsePort& via);

    void startup() override;

    /// Checkpoint/restore per-port queues, serialization horizons and
    /// retry-waiter lists (the route memo is a pure cache and is reset).
    void serialize(Ckpt& ar) override;
    void report_occupancy(std::string& out) const override;

  private:
    struct InSide;
    struct OutSide;

    bool handle_req(std::uint16_t in_idx, PacketPtr& pkt);
    bool handle_resp(std::uint16_t out_idx, PacketPtr& pkt);
    void distribute_snoops(std::uint16_t in_idx, const Packet& pkt);
    [[nodiscard]] OutSide* route(Addr addr, std::uint32_t size);

    XbarParams params_;
    // Per-hop timing constants, precomputed once (hot path avoids FP work).
    double ps_per_byte_ = 0.0;
    Tick req_lat_ticks_ = 0;
    Tick resp_lat_ticks_ = 0;
    std::vector<std::unique_ptr<InSide>> ins_;
    std::vector<std::unique_ptr<OutSide>> outs_;
    OutSide* default_out_ = nullptr;
    // One-entry route memo (startup() checks downstream ranges disjoint, so
    // the memoised answer is the answer the scan would give). Streaming
    // traffic repeats the same downstream for long runs.
    OutSide* last_route_ = nullptr;
    AddrRange last_route_range_;

    struct SnoopEntry {
        Snooper* snooper;
        std::uint16_t in_idx;
        /// Cached occupancy counters (see Snooper::snoop_occupancy);
        /// nullptr means "always snoop".
        const std::uint64_t* valid = nullptr;
        const std::uint64_t* dirty = nullptr;
    };
    std::vector<SnoopEntry> snoopers_;

    stats::Scalar n_requests_{stat_group(), "requests",
                              "requests forwarded downstream"};
    stats::Scalar n_responses_{stat_group(), "responses",
                               "responses forwarded upstream"};
    stats::Scalar n_snoops_{stat_group(), "snoops", "snoop operations issued"};
    stats::Scalar bytes_{stat_group(), "bytes", "request payload bytes moved"};
    stats::Scalar retries_{stat_group(), "retries",
                           "requests refused due to full queues"};
};

} // namespace accesys::mem
