#include "mem/backing_store.hh"

#include <algorithm>
#include <vector>

#include "sim/serialize.hh"

namespace accesys::mem {

void BackingStore::serialize(Ckpt& ar)
{
    if (ar.saving()) {
        std::vector<std::uint64_t> keys;
        keys.reserve(chunks_.size());
        for (const auto& [key, chunk] : chunks_) {
            keys.push_back(key);
        }
        std::sort(keys.begin(), keys.end());
        std::uint64_t n = keys.size();
        ar.io(n);
        for (const std::uint64_t key : keys) {
            std::uint64_t k = key;
            ar.io(k);
            ar.raw(chunks_.at(key).get(), kChunkBytes);
        }
    } else {
        std::uint64_t n = 0;
        ar.io(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            std::uint64_t key = 0;
            ar.io(key);
            ar.raw(chunk_for(key * kChunkBytes), kChunkBytes);
        }
    }
}

} // namespace accesys::mem
